// Package cmtk is a reproduction of "A Toolkit for Constraint Management
// in Heterogeneous Information Systems" (Chawathe, Garcia-Molina, Widom;
// ICDE 1996): a framework and toolkit for monitoring and enforcing
// distributed integrity constraints across loosely coupled, heterogeneous
// information systems that offer no common transaction or query facility.
//
// The implementation lives under internal/; see README.md for the
// architecture, DESIGN.md for the paper-to-module map, and EXPERIMENTS.md
// for the reproduced scenario results.  The root-level bench_test.go
// regenerates every experiment as a Go benchmark.
package cmtk
