// Validates the sample configuration files shipped under configs/ and
// exercises cmctl's inspection paths against them.
package cmtk_test

import (
	"os"
	"path/filepath"
	"testing"

	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/rule"
	"cmtk/internal/strategy"
	"cmtk/internal/translator"
)

func TestShippedConfigsParse(t *testing.T) {
	specFile, err := os.Open(filepath.Join("configs", "payroll", "strategy.spec"))
	if err != nil {
		t.Fatal(err)
	}
	defer specFile.Close()
	spec, err := rule.ParseSpec(specFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 1 || len(spec.Guarantees) != 4 {
		t.Fatalf("spec: %d rules, %d guarantees", len(spec.Rules), len(spec.Guarantees))
	}
	for _, src := range spec.Guarantees {
		if _, err := guarantee.Parse(src); err != nil {
			t.Errorf("guarantee %q: %v", src, err)
		}
	}
	cfgA, err := rid.ParseFile(filepath.Join("configs", "payroll", "a.rid"))
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := rid.ParseFile(filepath.Join("configs", "payroll", "b.rid"))
	if err != nil {
		t.Fatal(err)
	}
	// The shipped interfaces admit the propagation strategies (the cmctl
	// suggest flow).
	xCaps := translator.CapsFromStatements(cfgA.Statements, "salary1")
	yCaps := translator.CapsFromStatements(cfgB.Statements, "salary2")
	choices := strategy.SuggestCopy(
		strategy.Copy{X: "salary1", Y: "salary2", Arity: 1},
		xCaps, yCaps, cfgA.Site, cfgB.Site, strategy.Options{},
	)
	if len(choices) < 2 || choices[0].Name != "notify-propagation" {
		t.Fatalf("choices = %v", choices)
	}
}
