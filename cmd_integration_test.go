// Multi-process integration test: builds the real binaries and runs the
// paper's Figure 2 deployment as separate OS processes — two risd
// database servers and two cmshell constraint-manager shells — then
// verifies an application update at one database reaches the other.
package cmtk_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/ris/server"
)

// startProc launches a binary and returns a channel of its stdout lines
// plus a stop function.  One goroutine drains the pipe for the process's
// whole lifetime, so successive expectLine calls never compete.
func startProc(t *testing.T, name string, args ...string) (<-chan string, func()) {
	t.Helper()
	cmd := exec.Command(name, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return lines, stop
}

// expectLine reads lines until one contains marker, returning it.
func expectLine(t *testing.T, lines <-chan string, marker string) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("process exited before printing %q", marker)
			}
			if strings.Contains(line, marker) {
				return line
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q", marker)
		}
	}
}

// lastField extracts the last whitespace-separated field of a line.
func lastField(line string) string {
	fs := strings.Fields(line)
	return fs[len(fs)-1]
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/risd", "./cmd/cmshell")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	// Two autonomous database servers.
	scA, stopA := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "branch", "-demo")
	defer stopA()
	addrA := lastField(expectLine(t, scA, "serving"))
	scB, stopB := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "hq", "-demo")
	defer stopB()
	addrB := lastField(expectLine(t, scB, "serving"))

	// Configuration files: the spec and one CM-RID per site.
	dir := t.TempDir()
	specPath := filepath.Join(dir, "strategy.spec")
	writeFile(t, specPath, `
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`)
	ridAPath := filepath.Join(dir, "a.rid")
	writeFile(t, ridAPath, fmt.Sprintf(`
kind relstore
site A
addr %s
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`, addrA))
	ridBPath := filepath.Join(dir, "b.rid")
	writeFile(t, ridBPath, fmt.Sprintf(`
kind relstore
site B
addr %s
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`, addrB))

	// Shell B first (it only receives), then shell A with B as a peer.
	scShB, stopShB := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "shellB", "-spec", specPath, "-rid", ridBPath)
	defer stopShB()
	shBAddr := lastField(expectLine(t, scShB, "listening"))
	expectLine(t, scShB, "running")

	scShA, stopShA := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "shellA", "-spec", specPath, "-rid", ridAPath,
		"-peer", "shellB="+shBAddr, "-route", "B=shellB",
		"-metrics-addr", "127.0.0.1:0")
	defer stopShA()
	obsURL := strings.Fields(expectLine(t, scShA, "observability on"))[3]
	expectLine(t, scShA, "running")

	// An application updates the branch database directly over SQL.
	appA, err := server.DialRel(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer appA.Close()
	if _, err := appA.Exec("UPDATE employees SET salary = 12345 WHERE empid = 'e1'"); err != nil {
		t.Fatal(err)
	}

	// The update must surface at HQ through the two shells.
	appB, err := server.DialRel(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer appB.Close()
	deadline := time.Now().Add(20 * time.Second)
	propagated := false
	for !propagated && time.Now().Before(deadline) {
		res, err := appB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		if err == nil && len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(12345)) {
			propagated = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !propagated {
		t.Fatal("update never propagated across processes")
	}

	// Shell A's -metrics-addr surface must expose valid Prometheus text
	// covering the shell, translator, and transport layers.
	resp, err := http.Get(obsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	scrape, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cmtk_shell_fires_total{shell="shellA",scope="remote"}`,
		`cmtk_translator_ops_total{site="A",op="notify"}`,
		`cmtk_transport_sends_total{peer="shellB"}`,
		"# TYPE cmtk_shell_fire_latency_seconds histogram",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("/metrics missing %q; scrape:\n%s", want, scrape)
		}
	}

	// The firing left structured hop records in /debug/traces.
	resp2, err := http.Get(obsURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	traces, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traces), `"outcome": "sent"`) || !strings.Contains(string(traces), `"rule": "prop"`) {
		t.Errorf("/debug/traces missing sent hop for rule prop:\n%s", traces)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
