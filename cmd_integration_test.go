// Multi-process integration test: builds the real binaries and runs the
// paper's Figure 2 deployment as separate OS processes — two risd
// database servers and two cmshell constraint-manager shells — then
// verifies an application update at one database reaches the other.
package cmtk_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/ris/server"
)

// startProc launches a binary and returns a channel of its stdout lines
// plus a stop function.  One goroutine drains the pipe for the process's
// whole lifetime, so successive expectLine calls never compete.
func startProc(t *testing.T, name string, args ...string) (<-chan string, func()) {
	t.Helper()
	cmd := exec.Command(name, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return lines, stop
}

// expectLine reads lines until one contains marker, returning it.
func expectLine(t *testing.T, lines <-chan string, marker string) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("process exited before printing %q", marker)
			}
			if strings.Contains(line, marker) {
				return line
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %q", marker)
		}
	}
}

// lastField extracts the last whitespace-separated field of a line.
func lastField(line string) string {
	fs := strings.Fields(line)
	return fs[len(fs)-1]
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/risd", "./cmd/cmshell")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	// Two autonomous database servers.
	scA, stopA := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "branch", "-demo")
	defer stopA()
	addrA := lastField(expectLine(t, scA, "serving"))
	scB, stopB := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "hq", "-demo")
	defer stopB()
	addrB := lastField(expectLine(t, scB, "serving"))

	// Configuration files: the spec and one CM-RID per site.
	dir := t.TempDir()
	specPath := filepath.Join(dir, "strategy.spec")
	writeFile(t, specPath, `
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`)
	ridAPath := filepath.Join(dir, "a.rid")
	writeFile(t, ridAPath, fmt.Sprintf(`
kind relstore
site A
addr %s
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`, addrA))
	ridBPath := filepath.Join(dir, "b.rid")
	writeFile(t, ridBPath, fmt.Sprintf(`
kind relstore
site B
addr %s
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`, addrB))

	// Shell B first (it only receives), then shell A with B as a peer.
	scShB, stopShB := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "shellB", "-spec", specPath, "-rid", ridBPath)
	defer stopShB()
	shBAddr := lastField(expectLine(t, scShB, "listening"))
	expectLine(t, scShB, "running")

	scShA, stopShA := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "shellA", "-spec", specPath, "-rid", ridAPath,
		"-peer", "shellB="+shBAddr, "-route", "B=shellB",
		"-metrics-addr", "127.0.0.1:0")
	defer stopShA()
	obsURL := strings.Fields(expectLine(t, scShA, "observability on"))[3]
	expectLine(t, scShA, "running")

	// An application updates the branch database directly over SQL.
	appA, err := server.DialRel(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer appA.Close()
	if _, err := appA.Exec("UPDATE employees SET salary = 12345 WHERE empid = 'e1'"); err != nil {
		t.Fatal(err)
	}

	// The update must surface at HQ through the two shells.
	appB, err := server.DialRel(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer appB.Close()
	deadline := time.Now().Add(20 * time.Second)
	propagated := false
	for !propagated && time.Now().Before(deadline) {
		res, err := appB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		if err == nil && len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(12345)) {
			propagated = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !propagated {
		t.Fatal("update never propagated across processes")
	}

	// Shell A's -metrics-addr surface must expose valid Prometheus text
	// covering the shell, translator, and transport layers.
	resp, err := http.Get(obsURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	scrape, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cmtk_shell_fires_total{shell="shellA",scope="remote"}`,
		`cmtk_translator_ops_total{site="A",op="notify"}`,
		`cmtk_transport_sends_total{peer="shellB"}`,
		"# TYPE cmtk_shell_fire_latency_seconds histogram",
	} {
		if !strings.Contains(string(scrape), want) {
			t.Errorf("/metrics missing %q; scrape:\n%s", want, scrape)
		}
	}

	// The firing left structured hop records in /debug/traces.
	resp2, err := http.Get(obsURL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	traces, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traces), `"outcome": "sent"`) || !strings.Contains(string(traces), `"rule": "prop"`) {
		t.Errorf("/debug/traces missing sent hop for rule prop:\n%s", traces)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// scrapeCounterLine fetches /metrics and returns the integer value of the
// first line starting with prefix, or -1 when the series is absent.
func scrapeCounterLine(t *testing.T, obsURL, prefix string) int64 {
	t.Helper()
	resp, err := http.Get(obsURL + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseInt(lastField(line), 10, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestFleetRingCLI drives the fleet tooling as real processes: cmctl
// computes a route table for a spec and membership, writes the route
// file, plans a grow rebalance from it, and a cmshell started with
// -route-table joins as a fleet member.  Placement determinism across
// processes is asserted through the printed checksum: two separate
// cmctl invocations with the same inputs must compute the same table.
func TestFleetRingCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/cmctl", "./cmd/cmshell")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "fleet.spec")
	var spec strings.Builder
	spec.WriteString("site S\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&spec, "private X%d @ S\nprivate Y%d @ S\n", i, i)
		fmt.Fprintf(&spec, "rule r%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
	}
	writeFile(t, specPath, spec.String())
	tablePath := filepath.Join(dir, "table.json")

	ringOut := func(args ...string) string {
		out, err := exec.Command(filepath.Join(bin, "cmctl"), append([]string{"ring"}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("cmctl ring %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	checksumOf := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if i := strings.Index(line, "checksum "); i >= 0 {
				return strings.TrimSpace(line[i+len("checksum "):])
			}
		}
		t.Fatalf("no checksum line in:\n%s", out)
		return ""
	}

	out1 := ringOut("-spec", specPath, "-members", "s1,s2,s3", "-write", tablePath)
	if !strings.Contains(out1, "epoch 1, 3 member(s), 24 base(s)") {
		t.Fatalf("unexpected ring summary:\n%s", out1)
	}
	out2 := ringOut("-spec", specPath, "-members", "s1,s2,s3")
	if c1, c2 := checksumOf(out1), checksumOf(out2); c1 != c2 {
		t.Fatalf("two processes computed different placements: %s vs %s", c1, c2)
	}
	planOut := ringOut("-route", tablePath, "-spec", specPath, "-plan", "s1,s2,s3,s4")
	if !strings.Contains(planOut, "rebalance plan to [s1 s2 s3 s4] (epoch 2)") {
		t.Fatalf("no rebalance plan in:\n%s", planOut)
	}
	if !strings.Contains(planOut, "-> s4") {
		t.Fatalf("grow plan moved nothing to the new member:\n%s", planOut)
	}

	sc, stop := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "s1", "-spec", specPath, "-route-table", tablePath,
		"-listen", "127.0.0.1:0")
	defer stop()
	line := expectLine(t, sc, "fleet member s1 of 3")
	if !strings.Contains(line, "route table epoch 1") {
		t.Fatalf("unexpected fleet banner: %s", line)
	}
	expectLine(t, sc, "running")
}

// TestCrashRecoveryAcrossProcesses kills a cmshell with SIGKILL while its
// peer is unreachable and its outbox is full of undelivered fires, then
// restarts it over the same -state-dir.  The write-ahead log must bring
// the outbox back, the restarted process must replay the fires in order
// once the peer comes up, and the replica database must converge to the
// last pre-crash value — the Section 5 "remember messages that need to be
// sent out upon recovery" condition, demonstrated across real processes.
func TestCrashRecoveryAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/risd", "./cmd/cmshell")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	scA, stopA := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "branch", "-demo")
	defer stopA()
	addrA := lastField(expectLine(t, scA, "serving"))
	scB, stopB := startProc(t, filepath.Join(bin, "risd"), "-kind", "relstore", "-name", "hq", "-demo")
	defer stopB()
	addrB := lastField(expectLine(t, scB, "serving"))

	dir := t.TempDir()
	specPath := filepath.Join(dir, "strategy.spec")
	writeFile(t, specPath, `
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`)
	ridAPath := filepath.Join(dir, "a.rid")
	writeFile(t, ridAPath, fmt.Sprintf(`
kind relstore
site A
addr %s
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`, addrA))
	ridBPath := filepath.Join(dir, "b.rid")
	writeFile(t, ridBPath, fmt.Sprintf(`
kind relstore
site B
addr %s
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`, addrB))

	// Reserve a fixed mesh address for shell B, which starts only AFTER
	// shell A has crashed: everything A sends before then must buffer.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shBAddr := ln.Addr().String()
	ln.Close()

	stateDir := filepath.Join(dir, "state-a")
	shellAArgs := []string{
		"-id", "shellA", "-spec", specPath, "-rid", ridAPath,
		"-peer", "shellB=" + shBAddr, "-route", "B=shellB",
		"-state-dir", stateDir, "-retry", "100ms",
		"-metrics-addr", "127.0.0.1:0",
	}
	scShA, crashShA := startProc(t, filepath.Join(bin, "cmshell"), shellAArgs...)
	obsURL := strings.Fields(expectLine(t, scShA, "observability on"))[3]
	expectLine(t, scShA, "cold (recovering journals)")
	expectLine(t, scShA, "running")

	// Three ordered updates at the branch database; shell A fires for each
	// and the sends buffer against the unreachable peer.
	appA, err := server.DialRel(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer appA.Close()
	for _, salary := range []int{101, 102, 103} {
		if _, err := appA.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = 'e1'", salary)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for scrapeCounterLine(t, obsURL, `cmtk_transport_sends_total{peer="shellB"}`) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("shell A never buffered the three fires")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// SIGKILL: no flush, no clean-shutdown marker, no goodbye.
	crashShA()

	// Restart over the same state directory: the journal must replay the
	// buffered fires.
	scShA2, stopShA2 := startProc(t, filepath.Join(bin, "cmshell"), shellAArgs...)
	defer stopShA2()
	expectLine(t, scShA2, "cold (recovering journals)")
	replayLine := expectLine(t, scShA2, "replaying")
	expectLine(t, scShA2, "running")
	if !strings.Contains(replayLine, "replaying 3 unacked") {
		t.Fatalf("restart replayed the wrong outbox: %q", replayLine)
	}

	// Only now does shell B come up, at the address A has been retrying.
	scShB, stopShB := startProc(t, filepath.Join(bin, "cmshell"),
		"-id", "shellB", "-spec", specPath, "-rid", ridBPath,
		"-listen", shBAddr, "-peer", "shellA=ignored")
	defer stopShB()
	expectLine(t, scShB, "running")

	// The replayed fires arrive in order, so the replica converges to the
	// LAST pre-crash value.
	appB, err := server.DialRel(addrB)
	if err != nil {
		t.Fatal(err)
	}
	defer appB.Close()
	deadline = time.Now().Add(30 * time.Second)
	converged := false
	var got data.Value
	for time.Now().Before(deadline) {
		res, err := appB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		if err == nil && len(res.Rows) == 1 {
			got = res.Rows[0][0]
			if got.Equal(data.NewInt(103)) {
				converged = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !converged {
		t.Fatalf("replica = %v, want the last pre-crash value 103", got)
	}

	// A state directory inspection while the shell is live must be safe
	// and see the journals.
	infos, _, err := durable.Inspect(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, info := range infos {
		names[info.Name] = true
	}
	if !names["rel-shellA"] || !names["shell-shellA"] {
		t.Fatalf("state dir journals = %v, want rel-shellA and shell-shellA", names)
	}
}
