package harness

import (
	"fmt"
	"strings"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/obs"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/shell"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// LoadMeshOptions tunes a load-test deployment.  The zero value is a
// real-time in-process bus with unbounded queues — set TCP for real
// sockets (cmload's live-mesh mode) or Clock for a deterministic soak
// (the E15 chaos experiment).
type LoadMeshOptions struct {
	// Clock drives the deployment; nil means real time.
	Clock vclock.Clock
	// TCP runs the mesh over real loopback sockets (transport.TCPNetwork)
	// instead of the in-process bus.  Real-time only.
	TCP bool
	// BusLatency is the in-process link latency (ignored with TCP;
	// default 10ms).
	BusLatency time.Duration
	// Seed drives the Flaky fault layer deterministically.
	Seed int64
	// RetryInterval and MaxBackoff tune the reliable links (defaults
	// 200ms / 1s).
	RetryInterval time.Duration
	MaxBackoff    time.Duration
	// OutboxLimit caps the reliable outage buffer per link (0: the
	// transport default).
	OutboxLimit int
	// QueueLimit and Admission bound each shell's post queue (overload
	// protection; zero QueueLimit leaves queues unbounded).
	QueueLimit int
	Admission  shell.Admission
	// Metrics is the registry everything instrumented lands in; nil means
	// obs.Default (what cmload serves on /metrics).
	Metrics *obs.Registry
	// Fires, when non-nil, receives every shell's firing-trace records.
	Fires *obs.Ring
	// Keys are the employee keys pre-seeded into both databases (default
	// workload.Keys-style e1..e8).
	Keys []string
}

// LoadMesh is an assembled two-shell payroll deployment built for load
// and chaos runs: branch database at site A with a notify interface,
// HQ replica at site B, the copy constraint between them, reliable links
// over a fault-injectable network, and a per-shell skewable clock.
type LoadMesh struct {
	TK    *core.Toolkit
	Flaky *transport.Flaky
	// Clocks holds each shell's skewable clock ("shell-A", "shell-B"),
	// the injection point for chaos.Skew faults.
	Clocks map[string]*vclock.Skewed
	Reg    *obs.Registry

	dbA, dbB *relstore.DB
	keys     map[string]bool
}

// NewLoadMesh assembles and starts the deployment.  Every key in
// opts.Keys exists in both databases (value 0) before the constraint
// deploys, so a load run is pure UPDATE traffic.
func NewLoadMesh(o LoadMeshOptions) (*LoadMesh, error) {
	if o.BusLatency <= 0 {
		o.BusLatency = 10 * time.Millisecond
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 200 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default
	}
	if len(o.Keys) == 0 {
		o.Keys = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"}
	}
	clk := o.Clock
	if clk == nil {
		clk = vclock.Real{}
	}

	dbA := newEmployeesDB("branch")
	dbB := newEmployeesDB("hq")
	keys := map[string]bool{}
	for _, k := range o.Keys {
		if _, err := dbA.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('%s', 0)", k)); err != nil {
			return nil, err
		}
		if _, err := dbB.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('%s', 0)", k)); err != nil {
			return nil, err
		}
		keys[k] = true
	}

	var base transport.Network
	if o.TCP {
		base = transport.NewTCPNetwork()
	} else {
		base = transport.NewBus(clk, o.BusLatency)
	}
	flaky := transport.NewFlaky(base, transport.FlakyOptions{
		Clock: clk, Seed: o.Seed, Metrics: o.Metrics,
	})
	network := transport.NewReliable(flaky, transport.ReliableOptions{
		Clock: clk, RetryInterval: o.RetryInterval, MaxBackoff: o.MaxBackoff,
		OutboxLimit: o.OutboxLimit, Seed: o.Seed, Metrics: o.Metrics,
	})

	clocks := map[string]*vclock.Skewed{}
	tk := core.New(core.Config{
		Clock:   clk,
		Network: network,
		ShellOptions: func(name string, opts shell.Options) shell.Options {
			sk := vclock.NewSkewed(clk, 0)
			clocks[name] = sk
			opts.Clock = sk
			opts.Metrics = o.Metrics
			opts.Fires = o.Fires
			opts.QueueLimit = o.QueueLimit
			opts.Admission = o.Admission
			return opts
		},
	})
	m := &LoadMesh{TK: tk, Flaky: flaky, Clocks: clocks, Reg: o.Metrics, dbA: dbA, dbB: dbB, keys: keys}
	if err := tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}); err != nil {
		return nil, err
	}
	if err := tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}}); err != nil {
		return nil, err
	}
	if err := tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}); err != nil {
		return nil, err
	}
	if err := tk.Deploy(); err != nil {
		return nil, err
	}
	if err := tk.Start(); err != nil {
		return nil, err
	}
	return m, nil
}

// Write applies one application update at the branch database — a single
// UPDATE statement, safe to call from concurrent open-loop arrival
// goroutines.  The translator's watch turns it into the Ws event that
// triggers the copy constraint.
func (m *LoadMesh) Write(key string, val int64) error {
	if !m.keys[key] {
		return fmt.Errorf("loadmesh: key %q was not pre-seeded", key)
	}
	_, err := m.dbA.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = '%s'", val, key))
	return err
}

// Replica reads the replica's current value for key at HQ; ok is false
// when the row is missing.
func (m *LoadMesh) Replica(key string) (int64, bool) {
	res, err := m.dbB.Exec(fmt.Sprintf("SELECT salary FROM employees WHERE empid = '%s'", key))
	if err != nil || len(res.Rows) != 1 {
		return 0, false
	}
	return res.Rows[0][0].Int(), true
}

// PropagationDelays reports, per distinct value the branch item took, the
// apparent delay until the replica reflected it, plus how many values
// were never reflected before the trace horizon minus settle.  Delays are
// "apparent": they include any clock skew between the recording shells —
// exactly what the metric guarantee checkers see.
func (m *LoadMesh) PropagationDelays(settle time.Duration) (delays []time.Duration, lost int) {
	return propagationStats(m.TK.Trace(), "salary1", "salary2", settle)
}

// FireLatency returns the aggregated trigger-to-execution latency
// distribution across every shell, parsed from the registry's exposition
// text — the same path a remote scrape uses.
func (m *LoadMesh) FireLatency() (bounds []float64, cumulative []uint64, count uint64, ok bool) {
	var b strings.Builder
	m.Reg.WriteText(&b)
	bounds, cumulative, count, _, ok = obs.ParseHistogram(b.String(), "cmtk_shell_fire_latency_seconds")
	return bounds, cumulative, count, ok
}

// Stop shuts the deployment down.
func (m *LoadMesh) Stop() { m.TK.Stop() }
