package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// E14Row is one cell of the engine-saturation sweep, JSON-ready for
// BENCH_E14.json so later runs can track the trajectory with benchstat-
// style comparisons.
type E14Row struct {
	Path           string  `json:"path"`   // "clone+scan" (old) or "versioned+indexed" (new)
	Rules          int     `json:"rules"`  // owned rules on the shell
	Items          int     `json:"items"`  // data items in the interpretation
	Events         int     `json:"events"` // events recorded to the trace
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Violations     int     `json:"violations"` // Appendix A.2 checker findings (must be 0)
}

// e14Grid is the rules×items sweep: rule count scales the per-event match
// work (linear scan vs one index bucket), item count scales the per-event
// state cost (full-map clone vs O(1) timeline append).
var e14Grid = []struct{ rules, items int }{
	{1, 16}, {16, 16}, {64, 64}, {16, 128}, {16, 512},
}

// E14Rows runs the engine-saturation sweep, driving `events` spontaneous
// updates through a single shell for every grid point under both the old
// path (cloning trace + linear-scan dispatch, preserved by
// trace.NewCloning and shell.Options.ScanDispatch) and the new path
// (versioned trace + dispatch index).  Every run's trace is still
// validated against the Appendix A.2 checker.
func E14Rows(events int) []E14Row {
	e14Run("clone+scan", 1, 8, 50) // warm-up: page in code and allocator state
	var rows []E14Row
	for _, g := range e14Grid {
		for _, path := range []string{"clone+scan", "versioned+indexed"} {
			rows = append(rows, e14Run(path, g.rules, g.items, events))
		}
	}
	return rows
}

// e14Run measures one arm: a single shell hosting one site with `rules`
// copy rules over `items` private items, driven round-robin so every
// event matches exactly one rule.
func e14Run(path string, rules, items, events int) E14Row {
	if items < rules {
		items = rules // every rule needs its own item pair
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	var spec strings.Builder
	spec.WriteString("site S\n")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&spec, "private X%d @ S\nprivate Y%d @ S\n", i, i)
	}
	for r := 0; r < rules; r++ {
		fmt.Fprintf(&spec, "rule r%d: Ws(X%d, b) ->5s W(Y%d, b)\n", r, r, r)
	}
	sp, err := rule.ParseSpecString(spec.String())
	must(err)
	initial := data.NewInterpretation()
	for i := 0; i < items; i++ {
		initial.Set(data.Item(fmt.Sprintf("X%d", i)), data.NewInt(0))
		initial.Set(data.Item(fmt.Sprintf("Y%d", i)), data.NewInt(0))
	}
	var tr *trace.Trace
	scan := false
	if path == "clone+scan" {
		tr = trace.NewCloning(initial)
		scan = true
	} else {
		tr = trace.New(initial)
	}
	sh := shell.New("s", sp, shell.Options{Clock: clk, Trace: tr, ScanDispatch: scan})
	sh.AddSite("S", nil)
	must(sh.Start())
	defer sh.Stop()
	targets := make([]data.ItemName, rules)
	for r := 0; r < rules; r++ {
		targets[r] = data.Item(fmt.Sprintf("X%d", r))
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for e := 0; e < events; e++ {
		sh.Spontaneous(targets[e%rules], data.NewInt(int64(e)), data.NewInt(int64(e+1)))
		clk.Advance(time.Millisecond)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	clk.Advance(time.Minute)
	recorded := tr.Len()
	checker := trace.NewChecker(append(sp.Rules, sh.ImplicitRules()...))
	violations := len(checker.Check(tr))
	n := float64(recorded)
	return E14Row{
		Path: path, Rules: rules, Items: items, Events: recorded,
		EventsPerSec:   n / wall.Seconds(),
		NsPerEvent:     float64(wall.Nanoseconds()) / n,
		BytesPerEvent:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / n,
		Violations:     violations,
	}
}

// E14 renders the saturation sweep as an experiment table.
func E14(events int) Table {
	tbl := Table{
		ID:    "E14",
		Title: "Engine saturation: versioned trace + indexed dispatch vs clone + scan",
		Ref:   "Section 4.2.2 rule system; ROADMAP production-scale north-star",
		Columns: []string{"path", "rules", "items", "events",
			"events/sec", "ns/event", "B/event", "allocs/event", "trace"},
	}
	for _, r := range E14Rows(events) {
		tbl.Rows = append(tbl.Rows, []string{
			r.Path, fmt.Sprint(r.Rules), fmt.Sprint(r.Items), fmt.Sprint(r.Events),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.0f", r.NsPerEvent),
			fmt.Sprintf("%.0f", r.BytesPerEvent),
			fmt.Sprintf("%.1f", r.AllocsPerEvent),
			fmt.Sprintf("%d violations", r.Violations),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: the clone+scan path degrades linearly in rules (match scan) and in",
		"items (per-event interpretation clone); versioned+indexed stays flat-or-better as",
		"both scale — per-event cost independent of trace length and rule count")
	return tbl
}
