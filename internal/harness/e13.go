package harness

import (
	"fmt"
	"os"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// E13 is the crash-recovery ablation: the payroll copy constraint where
// the sending shell is killed mid-outage and restarted.  Section 5 lets a
// crash degrade to a *metric* failure only "if the database ... can
// remember messages that need to be sent out upon recovery"; the durable
// arms earn that by journaling the reliable transport's outbox and dedup
// cursors (and the shells' CM-private items) into a write-ahead log, so
// the restarted process replays its unacked fires in order — the replica
// converges and property 7 still holds.  The in-memory arm loses the
// outbox with the process: the fires written during the outage are gone
// for good, the leads guarantee FAILS, and the replica ends stale.
//
// The fsync policy arms (always / interval / never) all recover fully
// here — an in-process crash cannot lose the OS page cache, only a power
// failure can — so what the table shows is the price of each policy: the
// fsyncs column is the count of fsync calls each arm paid for its
// power-failure window.
func E13(updates int) Table {
	tbl := Table{
		ID:    "E13",
		Title: "Crash recovery ablation: durable WAL state vs in-memory across a restart",
		Ref:   "Section 5, Appendix A.2 property 7",
		Columns: []string{"state", "wal-sync", "updates", "follows", "leads",
			"prop-7 violations", "wal replayed", "fsyncs", "final value correct"},
	}
	type arm struct {
		name    string
		durable bool
		sync    durable.SyncPolicy
	}
	arms := []arm{
		{"in-memory", false, 0},
		{"durable", true, durable.SyncAlways},
		{"durable", true, durable.SyncInterval},
		{"durable", true, durable.SyncNever},
	}
	// Every log the deployment journals: the two reliable-transport
	// journals and the two shells' private-item journals.
	logs := []string{"rel-shell-A", "rel-shell-B", "shell-shell-A", "shell-shell-B"}
	for _, a := range arms {
		clk := vclock.NewVirtual(vclock.Epoch)
		// The trace and the databases survive the crash; the process state
		// (transport, shells) does not.
		tr := trace.New(nil)
		dbA := newEmployeesDB("branch")
		dbB := newEmployeesDB("hq")
		reg := obs.NewRegistry()
		dir, err := os.MkdirTemp("", "cmtk-e13-")
		must(err)

		// boot assembles one incarnation of the deployment over the shared
		// clock, trace and databases.
		boot := func() (*core.Toolkit, *transport.Flaky, *durable.Store) {
			var store *durable.Store
			if a.durable {
				st, err := durable.Open(dir, durable.Options{Sync: a.sync, Metrics: reg})
				must(err)
				store = st
			}
			flaky := transport.NewFlaky(transport.NewBus(clk, 100*time.Millisecond),
				transport.FlakyOptions{Clock: clk, Seed: 13})
			network := transport.NewReliable(flaky, transport.ReliableOptions{
				Clock: clk, RetryInterval: time.Second, MaxBackoff: 4 * time.Second,
				FailThreshold: 2, Seed: 13, Metrics: reg, Durable: store,
			})
			tk := core.New(core.Config{Clock: clk, Network: network, Trace: tr, Durable: store})
			must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
			must(tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}}))
			must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
			must(tk.Deploy())
			must(tk.Start())
			return tk, flaky, store
		}
		tk, flaky, store := boot()
		p := &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: true}

		// Healthy phase: updates propagate and are acknowledged.
		val := int64(1000)
		for i := 0; i < updates; i++ {
			p.appWrite("e1", val)
			val++
			clk.Advance(time.Second)
		}
		clk.Advance(10 * time.Second)

		// Outage phase: the link partitions, then the final values are
		// written — they buffer in the sender's outbox (and, in the durable
		// arms, in its journal).
		flaky.PartitionBoth("shell-A", "shell-B")
		final := val
		for i := 0; i < updates; i++ {
			final = val
			p.appWrite("e1", val)
			val++
			clk.Advance(time.Second)
		}

		// Crash: nothing after this instant persists.  The in-memory arm
		// loses its outbox with the process.
		if store != nil {
			store.Crash()
		}
		tk.Stop()
		if store != nil {
			store.Close()
		}
		clk.Advance(5 * time.Second)

		// Restart: a fresh incarnation over the same state directory, with
		// a healed link.  The durable arms replay their journaled outbox in
		// order; dedup cursors survive too, so replay is exactly-once.
		tk2, _, store2 := boot()
		p.tk = tk2
		var replayed uint64
		for _, lg := range logs {
			replayed += reg.Counter("cmtk_wal_recovery_replayed_total", "", "log").With(lg).Value()
		}
		clk.Advance(time.Minute)
		// A late write on another key moves the trace end well past the
		// settle window, so values lost in the crash cannot hide behind the
		// leads guarantee's settle excusal.
		p.appWrite("e2", 77)
		clk.Advance(40 * time.Second)

		follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tr)
		leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: 30 * time.Second}.Check(tr)
		prop7 := 0
		for _, v := range tk2.CheckTrace() {
			if v.Property == 7 {
				prop7++
			}
		}
		var fsyncs uint64
		for _, lg := range logs {
			fsyncs += reg.Counter("cmtk_wal_fsyncs_total", "", "log").With(lg).Value()
		}
		res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		finalOK := len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(final))
		sync := "-"
		if a.durable {
			sync = a.sync.String()
		}
		tbl.Rows = append(tbl.Rows, []string{
			a.name, sync, fmt.Sprint(2 * updates),
			holdsMark(follows.Holds), holdsMark(leads.Holds),
			fmt.Sprint(prop7), fmt.Sprint(replayed), fmt.Sprint(fsyncs),
			fmt.Sprint(finalOK),
		})
		tk2.Stop()
		if store2 != nil {
			store2.Close()
		}
		os.RemoveAll(dir)
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: the durable arms journal the outbox, so the restarted process",
		"replays the mid-outage fires in order (wal replayed > 0), the replica converges",
		"(final value correct) and every ordering guarantee holds — the crash stayed a",
		"metric failure; the in-memory arm loses the outbox with the process: leads",
		"FAILS and the replica ends stale.  All fsync policies recover fully from a",
		"process crash (the page cache survives); the fsyncs column is the price each",
		"policy pays to also survive a power failure")
	return tbl
}
