package harness

import (
	"errors"
	"fmt"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/demarcation"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/strategy"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
	"cmtk/internal/workload"
)

// buildPayroll assembles the Section 4.2 two-site deployment.  notify
// selects the notify interface at A (else read-only), strat the strategy,
// keys the polled key set for read-only A.
func buildPayroll(notify bool, strat string, opts strategy.Options) *payroll {
	return buildPayrollWrapped(notify, strat, opts, nil)
}

// buildPayrollWrapped additionally decorates site A's translator (fault
// injection).
func buildPayrollWrapped(notify bool, strat string, opts strategy.Options, wrapA func(cmi.Interface) cmi.Interface) *payroll {
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB("branch")
	dbB := newEmployeesDB("hq")
	var cfgA *rid.Config
	if notify {
		cfgA = notifyRID("A", "salary1")
	} else {
		cfgA = readOnlyRID("A", "salary1")
	}
	cfgB := writableRID("B", "salary2")
	tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	must(tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}, Wrap: wrapA}))
	must(tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}}))
	must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: strat, Options: opts}))
	must(tk.Deploy())
	must(tk.Start())
	return &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: notify}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// E1 reproduces Section 4.2.3's notify-interface claim: with Notify at A
// and Write at B, the update-propagation strategy makes guarantees
// (1)–(4) hold, with propagation latency bounded by the rule deltas.
func E1(updates int) Table {
	tbl := Table{
		ID:      "E1",
		Title:   "Notify interface + update propagation: all guarantees hold",
		Ref:     "Sections 3.3.1, 4.2.3",
		Columns: []string{"updates", "keys", "mean gap", "lat mean", "lat p99", "lat max", "lost", "trace", "guarantees"},
	}
	for _, keys := range []int{1, 10, 50} {
		p := buildPayroll(true, "notify", strategy.Options{})
		stream := workload.Stream(workload.Config{
			Seed: 1, Keys: workload.Keys(keys), N: updates, MeanGap: 2 * time.Second, Poisson: true,
		})
		start := p.clk.Now()
		for _, u := range stream {
			p.clk.AdvanceTo(start.Add(u.At))
			p.appWrite(u.Key, u.Value)
		}
		p.clk.Advance(time.Minute)
		delays, lost := propagationStats(p.tk.Trace(), "salary1", "salary2", 30*time.Second)
		violations := p.tk.CheckTrace()
		reports := p.tk.CheckGuarantees()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(updates), fmt.Sprint(keys), "2s(poisson)",
			fmtDur(workload.Mean(delays)), fmtDur(workload.Percentile(delays, 99)), fmtDur(workload.Max(delays)),
			fmt.Sprint(lost),
			fmt.Sprintf("%d violations", len(violations)),
			guaranteeSummary(reports),
		})
		p.tk.Stop()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: zero lost values, zero trace violations, all five guarantees hold;",
		"latency ≈ engine FireDelay + bus latency, far below the 5s rule bound")
	return tbl
}

// E2 reproduces the interface change of Section 4.2.3: with only a Read
// interface at A, polling keeps guarantees (1), (3), (4) but loses (2)
// once two updates land in one polling interval; the miss rate grows with
// the period/rate product.
func E2(updates int) Table {
	tbl := Table{
		ID:      "E2",
		Title:   "Read interface + polling: guarantee (2) fails, (1)(3)(4) hold",
		Ref:     "Section 4.2.3",
		Columns: []string{"poll period", "mean gap", "values", "missed", "miss %", "staleness p99", "follows", "strict", "leads"},
	}
	keys := workload.Keys(3)
	var pollKeys []data.Value
	for _, k := range keys {
		pollKeys = append(pollKeys, data.NewString(k))
	}
	for _, period := range []time.Duration{10 * time.Second, 30 * time.Second, 60 * time.Second, 120 * time.Second} {
		p := buildPayroll(false, "poll", strategy.Options{PollPeriod: period, PollKeys: pollKeys})
		stream := workload.Stream(workload.Config{
			Seed: 2, Keys: keys, N: updates, MeanGap: 20 * time.Second, Poisson: true,
		})
		start := p.clk.Now()
		for _, u := range stream {
			p.clk.AdvanceTo(start.Add(u.At))
			p.appWrite(u.Key, u.Value)
		}
		p.clk.Advance(2*period + time.Minute)
		delays, lost := propagationStats(p.tk.Trace(), "salary1", "salary2", 2*period)
		total := lost + len(delays)
		follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(p.tk.Trace())
		strict := guarantee.StrictlyFollows{X: "salary1", Y: "salary2"}.Check(p.tk.Trace())
		leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: 2 * period}.Check(p.tk.Trace())
		tbl.Rows = append(tbl.Rows, []string{
			period.String(), "20s(poisson)", fmt.Sprint(total),
			fmt.Sprint(lost), fmt.Sprintf("%.1f%%", 100*float64(lost)/float64(max(1, total))),
			fmtDur(workload.Percentile(delays, 99)),
			holdsMark(follows.Holds), holdsMark(strict.Holds), holdsMark(leads.Holds),
		})
		p.tk.Stop()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: follows/strictly-follows hold at every period; leads fails once",
		"two updates share a polling interval, and the miss rate rises with the period")
	return tbl
}

// E3 is the footnote-3 ablation: cached propagation suppresses duplicate
// values that a chatty source re-notifies, cutting write-request traffic
// by roughly the duplicate fraction; guarantees unchanged.  A kvstore
// plays the chatty source: unlike the relational engine, it notifies even
// for same-value writes.
func E3(updates int) Table {
	tbl := Table{
		ID:      "E3",
		Title:   "Cached vs naive propagation under duplicate notifications",
		Ref:     "Section 3.2 footnote 3",
		Columns: []string{"dup fraction", "strategy", "notifications", "write reqs", "saved", "guarantees"},
	}
	for _, dup := range []float64{0, 0.25, 0.5, 0.75} {
		counts := map[string]int{}
		var naiveWR int
		for _, strat := range []string{"notify", "cached"} {
			tk, clk, kv := buildKVPayroll(strat)
			stream := workload.Stream(workload.Config{
				Seed: 3, Keys: workload.Keys(5), N: updates, MeanGap: time.Second, DupFraction: dup,
			})
			start := clk.Now()
			for _, u := range stream {
				clk.AdvanceTo(start.Add(u.At))
				kv.Set(u.Key, "phone", fmt.Sprint(u.Value))
			}
			clk.Advance(time.Minute)
			wr := countMatching(tk.Trace(), "WR(salary2(n), b)")
			counts[strat] = wr
			reports := tk.CheckGuarantees()
			if strat == "notify" {
				naiveWR = wr
			}
			saved := ""
			if strat == "cached" && naiveWR > 0 {
				saved = fmt.Sprintf("%.1f%%", 100*float64(naiveWR-wr)/float64(naiveWR))
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%.2f", dup), strat,
				fmt.Sprint(countMatching(tk.Trace(), "N(phone1(n), b)")),
				fmt.Sprint(wr), saved,
				guaranteeSummary(reports),
			})
			tk.Stop()
		}
		_ = counts
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: cached write requests ≈ naive × (1 − dup fraction); guarantees identical")
	return tbl
}

// buildKVPayroll: kvstore (chatty notify) at A, relstore at B.
func buildKVPayroll(strat string) (*core.Toolkit, *vclock.Virtual, *kvStoreHandle) {
	clk := vclock.NewVirtual(vclock.Epoch)
	kv := newKV()
	cfgA, err := rid.ParseString(`
kind kvstore
site A
item phone1
  type string
  attr phone
interface Ws(phone1(n), b) ->2s N(phone1(n), b)
`)
	must(err)
	cfgB, err := rid.ParseString(`
kind relstore
site B
item salary2
  type string
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`)
	must(err)
	// The replica column is TEXT for string phone values.
	dbB2 := relstoreWithTextSalary()
	tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	must(tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{KV: kv.s}}))
	must(tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB2}}))
	must(tk.AddCopy(core.CopyConstraint{X: "phone1", Y: "salary2", Arity: 1, Strategy: strat}))
	must(tk.Deploy())
	must(tk.Start())
	return tk, clk, kv
}

// E4 reproduces Section 6.1: the Demarcation Protocol keeps X ≤ Y valid
// at every instant while updates within the local limit need no remote
// communication.  The slack budget and grant policy control the
// local-operation fraction.
func E4(updates int) Table {
	tbl := Table{
		ID:      "E4",
		Title:   "Demarcation Protocol: X ≤ Y always, local ops within slack",
		Ref:     "Section 6.1",
		Columns: []string{"slack", "policy", "updates", "local %", "remote asks", "denied", "X<=Y"},
	}
	policies := []struct {
		name string
		p    demarcation.Policy
	}{{"exact", demarcation.Exact}, {"generous", demarcation.Generous}}
	for _, slack := range []int64{1, 10, 100, 1000} {
		for _, pol := range policies {
			clk := vclock.NewVirtual(vclock.Epoch)
			tr := trace.New(nil)
			xa, ya := buildDemarcationPair(clk, tr, pol.p, 0, slack, slack, 100000)
			for i := 0; i < updates; i++ {
				xa.Update(1, nil)
				clk.Advance(500 * time.Millisecond)
			}
			clk.Advance(10 * time.Second)
			st := xa.Stats()
			inv := demarcation.Guarantee("X", "Y").Check(tr)
			_ = ya
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(slack), pol.name, fmt.Sprint(updates),
				fmt.Sprintf("%.1f%%", 100*float64(st.LocalOps)/float64(updates)),
				fmt.Sprint(st.RemoteAsks), fmt.Sprint(st.Denied),
				holdsMark(inv.Holds),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: the invariant holds in every row; the local-op fraction grows with",
		"slack, and the generous policy needs fewer remote asks than exact at equal slack")
	return tbl
}

// buildDemarcationPair wires two shells with demarcation agents.
func buildDemarcationPair(clk *vclock.Virtual, tr *trace.Trace, policy demarcation.Policy, x, lx, ly, y int64) (*demarcation.Agent, *demarcation.Agent) {
	spec, err := rule.ParseSpecString(`
site SX
site SY
item X @ SX
item Y @ SY
private Lx @ SX
private Ly @ SY
`)
	must(err)
	bus := transport.NewBus(clk, 100*time.Millisecond)
	opts := shell.Options{Clock: clk, Trace: tr}
	sx := shell.New("sx", spec, opts)
	sx.AddSite("SX", nil)
	sx.Route("SY", "sy")
	sy := shell.New("sy", spec, opts)
	sy.AddSite("SY", nil)
	sy.Route("SX", "sx")
	must(sx.Attach(bus))
	must(sy.Attach(bus))
	must(sx.Start())
	must(sy.Start())
	xa := demarcation.NewAgent(sx, "SX", "sy", data.Item("X"), data.Item("Lx"), true, policy)
	ya := demarcation.NewAgent(sy, "SY", "sx", data.Item("Y"), data.Item("Ly"), false, policy)
	xa.Init(x, lx)
	ya.Init(y, ly)
	clk.Advance(time.Second)
	return xa, ya
}

// E5 reproduces Section 6.2: the end-of-day sweep bounds every
// referential violation window by the sweep period.
func E5(days int) Table {
	tbl := Table{
		ID:      "E5",
		Title:   "Referential integrity via end-of-day sweep",
		Ref:     "Section 6.2",
		Columns: []string{"days", "inserts", "orphans", "deleted", "max window", "guarantee"},
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	projDB := relstore.New("projects")
	must2(projDB.Exec("CREATE TABLE projects (empid TEXT, proj TEXT, PRIMARY KEY (empid))"))
	salDB := relstore.New("salaries")
	must2(salDB.Exec("CREATE TABLE salaries (empid TEXT, amount INT, PRIMARY KEY (empid))"))
	projCfg, err := rid.ParseString(`
kind relstore
site P
item project
  type string
  read   SELECT proj FROM projects WHERE empid = $n
  write  UPDATE projects SET proj = $b WHERE empid = $n
  insert INSERT INTO projects (empid, proj) VALUES ($n, $b)
  delete DELETE FROM projects WHERE empid = $n
  list   SELECT empid FROM projects
`)
	must(err)
	salCfg, err := rid.ParseString(`
kind relstore
site S
item salary
  type int
  read   SELECT amount FROM salaries WHERE empid = $n
  list   SELECT empid FROM salaries
`)
	must(err)
	projT, err := translator.NewRel(projCfg, projDB, clk)
	must(err)
	salT, err := translator.NewRel(salCfg, salDB, clk)
	must(err)
	spec, err := rule.ParseSpecString("site P\nsite S\nitem project @ P\nitem salary @ S\n")
	must(err)
	sh := shell.New("p", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("P", projT)
	must(sh.Start())
	day := 24 * time.Hour
	sw := strategy.NewSweeper(sh, clk, day, projT, "project", salT, "salary")
	sw.Start()

	inserts := 0
	id := 0
	for d := 0; d < days; d++ {
		// Three hires per day: two with salary records, one orphan.
		for j := 0; j < 3; j++ {
			id++
			inserts++
			key := fmt.Sprintf("e%d", id)
			if j < 2 {
				must2(salDB.Exec(fmt.Sprintf("INSERT INTO salaries VALUES ('%s', %d)", key, 100+id)))
				sh.Spontaneous(data.Item("salary", data.NewString(key)), data.NullValue, data.NewInt(int64(100+id)))
			}
			must2(projDB.Exec(fmt.Sprintf("INSERT INTO projects VALUES ('%s', 'proj%d')", key, id)))
			sh.Spontaneous(data.Item("project", data.NewString(key)), data.NullValue, data.NewString(fmt.Sprintf("proj%d", id)))
			clk.Advance(2 * time.Hour)
		}
		clk.Advance(18 * time.Hour)
	}
	clk.Advance(2 * day)
	sweeps, orphaned, deleted := sw.Stats()
	_ = sweeps
	rep := sw.Guarantee(2 * time.Hour).Check(tr)
	maxWindow := maxViolationWindow(tr, "project", "salary")
	tbl.Rows = append(tbl.Rows, []string{
		fmt.Sprint(days), fmt.Sprint(inserts), fmt.Sprint(orphaned), fmt.Sprint(deleted),
		fmtDur(maxWindow), holdsMark(rep.Holds),
	})
	sw.Stop()
	sh.Stop()
	tbl.Notes = append(tbl.Notes,
		"expected shape: every violation window is below the 24h sweep period, so the",
		"weakened guarantee E(project(i)) => E(salary(i)) within 24h holds")
	return tbl
}

func must2(_ any, err error) { must(err) }

// maxViolationWindow measures the longest interval during which some
// project(i) existed without salary(i).
func maxViolationWindow(tr *trace.Trace, refBase, tgtBase string) time.Duration {
	keys := map[string][]data.Value{}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() && e.Desc.Item.Base == refBase {
			keys[e.Desc.Item.Key()] = e.Desc.Item.Args
		}
	}
	var maxW time.Duration
	for _, args := range keys {
		ref := data.ItemName{Base: refBase, Args: args}
		tgt := data.ItemName{Base: tgtBase, Args: args}
		var start time.Time
		inViol := false
		consider := func(at time.Time, in data.Interpretation) {
			bad := in.Has(ref) && !in.Has(tgt)
			if bad && !inViol {
				inViol, start = true, at
			} else if !bad && inViol {
				inViol = false
				if w := at.Sub(start); w > maxW {
					maxW = w
				}
			}
		}
		consider(time.Time{}, tr.Initial())
		tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
			consider(e.Time, in)
			return true
		})
		if inViol {
			if w := tr.End().Sub(start); w > maxW {
				maxW = w
			}
		}
	}
	return maxW
}

// E6 reproduces Section 6.3: when the CM can update neither copy, the
// monitor strategy maintains Flag/Tb so applications can still determine
// when the constraint held.
func E6(cycles int) Table {
	tbl := Table{
		ID:      "E6",
		Title:   "Monitoring X = Y via auxiliary Flag/Tb",
		Ref:     "Section 6.3",
		Columns: []string{"cycles", "events", "flag-true %", "monitor guarantee", "trace"},
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site M
item X @ M
item Y @ M
rule nx: Ws(X, b) ->1s N(X, b)
rule ny: Ws(Y, b) ->1s N(Y, b)
`)
	must(err)
	ch, err := strategy.Monitor(strategy.Copy{X: "X", Y: "Y"}, "M", strategy.Options{Delta: 2 * time.Second, Bound: 10 * time.Second})
	must(err)
	must(strategy.Merge(spec, ch))
	sh := shell.New("m", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("M", nil)
	must(sh.Start())

	x, y := data.Item("X"), data.Item("Y")
	cur := int64(0)
	flagTrue := time.Duration(0)
	var lastCheck time.Time = clk.Now()
	sample := func() {
		now := clk.Now()
		if v, ok := sh.ReadAux(data.Item("Flag_XY")); ok && v.Truthy() {
			flagTrue += now.Sub(lastCheck)
		}
		lastCheck = now
	}
	for c := 0; c < cycles; c++ {
		// Diverge: X moves ahead.
		old := cur
		cur++
		sh.Spontaneous(x, data.NewInt(old), data.NewInt(cur))
		clk.Advance(50 * time.Second)
		sample()
		// Converge: Y catches up.
		sh.Spontaneous(y, data.NewInt(old), data.NewInt(cur))
		clk.Advance(50 * time.Second)
		sample()
	}
	total := clk.Now().Sub(vclock.Epoch)
	rep := ch.Guarantees[0].Check(tr)
	checker := trace.NewChecker(append(spec.Rules, sh.ImplicitRules()...))
	violations := checker.Check(tr)
	tbl.Rows = append(tbl.Rows, []string{
		fmt.Sprint(cycles), fmt.Sprint(tr.Len()),
		fmt.Sprintf("%.1f%%", 100*float64(flagTrue)/float64(total)),
		holdsMark(rep.Holds),
		fmt.Sprintf("%d violations", len(violations)),
	})
	sh.Stop()
	tbl.Notes = append(tbl.Notes,
		"expected shape: Flag is true roughly half the time (the converged halves of each",
		"cycle) and the monitor guarantee holds over the whole trace")
	return tbl
}

// E7 reproduces Section 6.4: with an overnight no-update window and an
// end-of-day batch, the copies are equal every day from 17:15 to 08:00 —
// and, as a control, NOT equal over business hours.
func E7(days int) Table {
	tbl := Table{
		ID:      "E7",
		Title:   "Periodic guarantee: end-of-day balance propagation",
		Ref:     "Section 6.4",
		Columns: []string{"days", "accounts", "batches", "copied", "night guarantee", "daytime control"},
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	srcDB := relstore.New("branch")
	must2(srcDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))"))
	dstDB := relstore.New("hq")
	must2(dstDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))"))
	srcCfg, err := rid.ParseString(`
kind relstore
site BR
item bal1
  type int
  read   SELECT bal FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
	must(err)
	dstCfg, err := rid.ParseString(`
kind relstore
site HQ
item bal2
  type int
  read   SELECT bal FROM accts WHERE id = $n
  write  UPDATE accts SET bal = $b WHERE id = $n
  insert INSERT INTO accts (id, bal) VALUES ($n, $b)
  delete DELETE FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
	must(err)
	srcT, err := translator.NewRel(srcCfg, srcDB, clk)
	must(err)
	dstT, err := translator.NewRel(dstCfg, dstDB, clk)
	must(err)
	spec, err := rule.ParseSpecString("site BR\nsite HQ\nitem bal1 @ BR\nitem bal2 @ HQ\n")
	must(err)
	sh := shell.New("hq", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("HQ", dstT)
	must(sh.Start())
	b := strategy.NewBatcher(sh, clk, 17*time.Hour, srcT, "bal1", "bal2")
	b.Start()

	accounts := workload.Keys(4)
	bals := map[string]int64{}
	appWrite := func(id string, bal int64) {
		var old data.Value
		if prev, ok := bals[id]; ok {
			old = data.NewInt(prev)
			srcDB.Exec(fmt.Sprintf("UPDATE accts SET bal = %d WHERE id = '%s'", bal, id))
		} else {
			srcDB.Exec(fmt.Sprintf("INSERT INTO accts VALUES ('%s', %d)", id, bal))
		}
		bals[id] = bal
		sh.Spontaneous(data.Item("bal1", data.NewString(id)), old, data.NewInt(bal))
	}
	for d := 0; d < days; d++ {
		// Business hours 9:00–17:00: one update per account at 10:00, 14:00.
		clk.AdvanceTo(vclock.Epoch.Add(time.Duration(d)*24*time.Hour + 10*time.Hour))
		for i, a := range accounts {
			appWrite(a, int64(1000*d+100+i))
		}
		clk.Advance(4 * time.Hour)
		for i, a := range accounts {
			appWrite(a, int64(1000*d+200+i))
		}
		// The 17:00 batch and the overnight window happen on their own.
		clk.AdvanceTo(vclock.Epoch.Add(time.Duration(d+1) * 24 * time.Hour))
	}
	clk.Advance(9 * time.Hour)
	runs, copied := b.Stats()
	night := b.Guarantee(17*time.Hour+15*time.Minute, 8*time.Hour).Check(tr)
	daytime := strategy.PeriodicFamily{Src: "bal1", Dst: "bal2", From: 9 * time.Hour, To: 17 * time.Hour}.Check(tr)
	tbl.Rows = append(tbl.Rows, []string{
		fmt.Sprint(days), fmt.Sprint(len(accounts)), fmt.Sprint(runs), fmt.Sprint(copied),
		holdsMark(night.Holds), holdsMark(daytime.Holds),
	})
	b.Stop()
	sh.Stop()
	tbl.Notes = append(tbl.Notes,
		"expected shape: the 17:15–08:00 guarantee holds every day; the business-hours",
		"control fails, because balances diverge between batches")
	return tbl
}

// E8 reproduces Section 5: a metric failure invalidates metric guarantees
// while non-metric ones survive; a logical failure invalidates both; and
// a link slower than the rule bound shows up as metric trace violations.
func E8() Table {
	tbl := Table{
		ID:      "E8",
		Title:   "Failure handling: metric vs logical degradation",
		Ref:     "Section 5",
		Columns: []string{"scenario", "metric valid", "non-metric valid", "trace metric viol", "trace logical viol", "replica converged"},
	}
	var faultA *translator.Faulty
	wrap := func(iface cmi.Interface) cmi.Interface {
		faultA = translator.NewFaulty(iface, nil)
		return faultA
	}
	run := func(scenario string, inject func(p *payroll)) {
		p := buildPayrollWrapped(true, "notify", strategy.Options{}, wrap)
		p.appWrite("e1", 100)
		p.clk.Advance(5 * time.Second)
		inject(p)
		p.clk.Advance(5 * time.Second)
		p.appWrite("e1", 200)
		p.clk.Advance(time.Minute)
		metOK, metAll, nonOK, nonAll := 0, 0, 0, 0
		for _, st := range p.tk.Status() {
			if st.Metric {
				metAll++
				if st.Valid {
					metOK++
				}
			} else {
				nonAll++
				if st.Valid {
					nonOK++
				}
			}
		}
		vs := p.tk.CheckTrace()
		mv, lv := 0, 0
		for _, v := range vs {
			if v.Metric {
				mv++
			} else {
				lv++
			}
		}
		res, _ := p.dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		converged := len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(200))
		tbl.Rows = append(tbl.Rows, []string{
			scenario,
			fmt.Sprintf("%d/%d", metOK, metAll),
			fmt.Sprintf("%d/%d", nonOK, nonAll),
			fmt.Sprint(mv), fmt.Sprint(lv),
			fmt.Sprint(converged),
		})
		p.tk.Stop()
	}
	run("no failure", func(p *payroll) {})
	run("metric failure at A", func(p *payroll) {
		sh, _ := p.tk.Shell("shell-A")
		sh.ReportMetricFailure("A", "notify", errors.New("simulated overload"))
	})
	run("logical failure at A", func(p *payroll) {
		sh, _ := p.tk.Shell("shell-A")
		sh.ReportLogicalFailure("A", "notify", errors.New("simulated catastrophic failure"))
	})
	// The same degradation through the real detection path: an overloaded
	// translator raises metric failures on every late notification.
	run("overloaded translator at A", func(p *payroll) {
		faultA.SetMode(translator.Slow)
	})
	// A recoverable crash: notifications buffered during the outage are
	// replayed on recovery, so the replica converges and only metric
	// failures are recorded (the Section 5 crash→metric mapping).
	run("crash+recovery at A", func(p *payroll) {
		faultA.SetMode(translator.Crashed)
		p.appWrite("e9", 900) // update during the outage
		p.clk.Advance(2 * time.Second)
		faultA.SetMode(translator.Healthy)
	})
	tbl.Notes = append(tbl.Notes,
		"expected shape: metric failure invalidates only the metric guarantees;",
		"logical failure invalidates all guarantees involving the failed site")
	return tbl
}

// E9 reproduces the Section 4.3 retargeting claim: moving the same
// deployment from a Sybase-style schema to an Oracle-style schema touches
// only the CM-RID, and the guarantee outcomes are identical.
func E9(updates int) Table {
	tbl := Table{
		ID:      "E9",
		Title:   "CM-RID retargeting: Sybase-style vs Oracle-style schema",
		Ref:     "Sections 4.2.1, 4.3",
		Columns: []string{"dialect", "rid lines", "lines changed", "updates", "lost", "trace", "guarantees"},
	}
	sybase := writableRID("B", "salary2")
	oracleText := `
kind relstore
site B
item salary2
  type int
  read   SELECT sal FROM staff WHERE id = $n
  write  UPDATE staff SET sal = $b WHERE id = $n
  insert INSERT INTO staff (id, sal) VALUES ($n, $b)
  delete DELETE FROM staff WHERE id = $n
  list   SELECT id FROM staff
  watch  staff
  keycol id
  valcol sal
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`
	oracle, err := rid.ParseString(oracleText)
	must(err)
	diff := ridDiffLines(sybase.String(), oracle.String())
	for _, d := range []struct {
		name string
		cfg  *rid.Config
		mk   func() *relstore.DB
	}{
		{"sybase-style", sybase, func() *relstore.DB { return newEmployeesDB("hq") }},
		{"oracle-style", oracle, func() *relstore.DB {
			db := relstore.New("hq")
			must2(db.Exec("CREATE TABLE staff (id TEXT, sal INT, PRIMARY KEY (id))"))
			return db
		}},
	} {
		clk := vclock.NewVirtual(vclock.Epoch)
		dbA := newEmployeesDB("branch")
		dbB := d.mk()
		tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond})
		must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
		must(tk.AddSite(core.Site{RID: d.cfg, Local: &translator.LocalStores{Rel: dbB}}))
		must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
		must(tk.Deploy())
		must(tk.Start())
		p := &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: true}
		stream := workload.Stream(workload.Config{Seed: 9, Keys: workload.Keys(5), N: updates, MeanGap: time.Second})
		start := clk.Now()
		for _, u := range stream {
			clk.AdvanceTo(start.Add(u.At))
			p.appWrite(u.Key, u.Value)
		}
		clk.Advance(time.Minute)
		_, lost := propagationStats(tk.Trace(), "salary1", "salary2", 30*time.Second)
		vs := tk.CheckTrace()
		tbl.Rows = append(tbl.Rows, []string{
			d.name, fmt.Sprint(lineCount(d.cfg.String())), fmt.Sprint(diff),
			fmt.Sprint(updates), fmt.Sprint(lost),
			fmt.Sprintf("%d violations", len(vs)),
			guaranteeSummary(tk.CheckGuarantees()),
		})
		tk.Stop()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: identical guarantee outcomes; the retarget touches only the RID",
		"(well under the paper's 'less than a page' of changes) and zero lines of Go")
	return tbl
}

func lineCount(s string) int {
	n := 0
	for _, line := range splitLines(s) {
		if line != "" {
			n++
		}
	}
	return n
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// ridDiffLines counts lines present in one RID but not the other.
func ridDiffLines(a, b string) int {
	aset := map[string]bool{}
	for _, l := range splitLines(a) {
		aset[l] = true
	}
	n := 0
	for _, l := range splitLines(b) {
		if l != "" && !aset[l] {
			n++
		}
	}
	return n
}

// E10 reproduces the Section 4.2.3 remark that verifying the propagation
// guarantees "discovered ... a requirement for in-order message
// processing": the same deployment run over a FIFO transport and over a
// pair-swapping transport.  Out-of-order delivery breaks guarantee (3)
// and is caught by the Appendix A.2 property-7 check.
func E10(updates int) Table {
	tbl := Table{
		ID:      "E10",
		Title:   "In-order delivery ablation: FIFO vs scrambled links",
		Ref:     "Section 4.2.3, Appendix A.2 property 7",
		Columns: []string{"transport", "updates", "follows", "strict order", "prop-7 violations", "final value correct"},
	}
	for _, scrambled := range []bool{false, true} {
		clk := vclock.NewVirtual(vclock.Epoch)
		dbA := newEmployeesDB("branch")
		dbB := newEmployeesDB("hq")
		var network transport.Network = transport.NewBus(clk, 100*time.Millisecond)
		name := "fifo"
		if scrambled {
			network = transport.NewScrambled(network)
			name = "scrambled"
		}
		tk := core.New(core.Config{Clock: clk, Network: network})
		must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
		must(tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}}))
		must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
		must(tk.Deploy())
		must(tk.Start())
		p := &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: true}
		final := int64(0)
		for i := 0; i < updates; i++ {
			final = int64(1000 + i)
			p.appWrite("e1", final)
			clk.Advance(time.Second)
		}
		clk.Advance(time.Minute)
		follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
		strict := guarantee.StrictlyFollows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
		prop7 := 0
		for _, v := range tk.CheckTrace() {
			if v.Property == 7 {
				prop7++
			}
		}
		res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		finalOK := len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(final))
		tbl.Rows = append(tbl.Rows, []string{
			name, fmt.Sprint(updates),
			holdsMark(follows.Holds), holdsMark(strict.Holds),
			fmt.Sprint(prop7), fmt.Sprint(finalOK),
		})
		tk.Stop()
	}
	tbl.Rows = append(tbl.Rows, e10TCPBatch(updates))
	tbl.Notes = append(tbl.Notes,
		"expected shape: FIFO keeps strict order with zero property-7 violations; the",
		"scrambled link breaks guarantee (3), is flagged by property 7, and can leave the",
		"replica on a stale final value — the in-order requirement the paper's proofs found;",
		"tcp-batch shows the send-side batching TCP mesh preserves per-link FIFO, so the",
		"same property-7 check stays clean over coalesced wire frames")
	return tbl
}

// e10TCPBatch runs the E10 deployment over the real-socket mesh, whose
// sender coalesces queued messages into batched frames: the property-7
// check confirms batching preserves per-link FIFO delivery.  Runs on the
// real clock, like F2.
func e10TCPBatch(updates int) []string {
	dbA := newEmployeesDB("branch")
	dbB := newEmployeesDB("hq")
	tk := core.New(core.Config{Clock: vclock.Real{}, Network: transport.NewTCPNetwork()})
	must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
	must(tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}}))
	must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
	must(tk.Deploy())
	must(tk.Start())
	p := &payroll{tk: tk, dbA: dbA, dbB: dbB, notifyA: true}
	final := int64(0)
	for i := 0; i < updates; i++ {
		final = int64(1000 + i)
		p.appWrite("e1", final)
	}
	// Wait for the last value to land at B (real clock, async mesh).
	deadline := time.Now().Add(15 * time.Second)
	finalOK := false
	for time.Now().Before(deadline) {
		res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		if len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(final)) {
			finalOK = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let stragglers and implicit writes land
	follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
	strict := guarantee.StrictlyFollows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
	prop7 := 0
	for _, v := range tk.CheckTrace() {
		if v.Property == 7 {
			prop7++
		}
	}
	tk.Stop()
	return []string{
		"tcp-batch", fmt.Sprint(updates),
		holdsMark(follows.Holds), holdsMark(strict.Holds),
		fmt.Sprint(prop7), fmt.Sprint(finalOK),
	}
}

// E11 reproduces the Section 7.2 clock-skew discussion: periodic
// guarantees assume global clocks, which is safe as long as the
// guarantee's interval includes an error margin larger than the skew.
// The batcher's clock is skewed against the guarantee window: skews
// within the 15-minute margin leave the guarantee intact; a skew beyond
// it breaks the window.
func E11(days int) Table {
	tbl := Table{
		ID:      "E11",
		Title:   "Clock skew vs the periodic guarantee's error margin",
		Ref:     "Section 7.2",
		Columns: []string{"batch clock skew", "margin", "days", "night guarantee"},
	}
	for _, skew := range []time.Duration{0, 10 * time.Minute, 25 * time.Minute} {
		clk := vclock.NewVirtual(vclock.Epoch)
		tr := trace.New(nil)
		srcDB := relstore.New("branch")
		must2(srcDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))"))
		dstDB := relstore.New("hq")
		must2(dstDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))"))
		srcCfg, err := rid.ParseString(`
kind relstore
site BR
item bal1
  type int
  read   SELECT bal FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
		must(err)
		dstCfg, err := rid.ParseString(`
kind relstore
site HQ
item bal2
  type int
  read   SELECT bal FROM accts WHERE id = $n
  write  UPDATE accts SET bal = $b WHERE id = $n
  insert INSERT INTO accts (id, bal) VALUES ($n, $b)
  delete DELETE FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
		must(err)
		srcT, err := translator.NewRel(srcCfg, srcDB, clk)
		must(err)
		dstT, err := translator.NewRel(dstCfg, dstDB, clk)
		must(err)
		spec, err := rule.ParseSpecString("site BR\nsite HQ\nitem bal1 @ BR\nitem bal2 @ HQ\n")
		must(err)
		sh := shell.New("hq", spec, shell.Options{Clock: clk, Trace: tr})
		sh.AddSite("HQ", dstT)
		must(sh.Start())
		// A skewed site clock makes the 17:00 batch actually run at
		// 17:00 + skew in global time.
		b := strategy.NewBatcher(sh, clk, 17*time.Hour+skew, srcT, "bal1", "bal2")
		b.Start()
		appWrite := func(id string, bal int64, old data.Value) {
			if _, err := srcDB.Exec(fmt.Sprintf("UPDATE accts SET bal = %d WHERE id = '%s'", bal, id)); err != nil {
				panic(err)
			}
			if r, _ := srcDB.Exec(fmt.Sprintf("SELECT id FROM accts WHERE id = '%s'", id)); len(r.Rows) == 0 {
				srcDB.Exec(fmt.Sprintf("INSERT INTO accts VALUES ('%s', %d)", id, bal))
			}
			sh.Spontaneous(data.Item("bal1", data.NewString(id)), old, data.NewInt(bal))
		}
		var prev data.Value
		for d := 0; d < days; d++ {
			clk.AdvanceTo(vclock.Epoch.Add(time.Duration(d)*24*time.Hour + 10*time.Hour))
			appWrite("a1", int64(100*d+50), prev)
			prev = data.NewInt(int64(100*d + 50))
			clk.AdvanceTo(vclock.Epoch.Add(time.Duration(d+1) * 24 * time.Hour))
		}
		clk.Advance(9 * time.Hour)
		night := b.Guarantee(17*time.Hour+15*time.Minute, 8*time.Hour).Check(tr)
		tbl.Rows = append(tbl.Rows, []string{
			skew.String(), "15m", fmt.Sprint(days), holdsMark(night.Holds),
		})
		b.Stop()
		sh.Stop()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: skews inside the 15-minute margin (0, 10m) leave the 17:15–08:00",
		"guarantee intact; a 25-minute skew pushes the batch past the window start and",
		"breaks it — quantifying the paper's 'error margin in the interval' advice")
	return tbl
}
