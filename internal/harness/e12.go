package harness

import (
	"fmt"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// E12 is the reliable-delivery ablation: the payroll copy constraint run
// over faulty links (a 20-second bidirectional partition, or sustained
// 25% message loss), with and without the transport.Reliable layer.  The
// Section 5 failure model only lets an outage degrade to a metric failure
// if messages "that need to be sent out upon recovery" are remembered;
// the reliable link earns that by buffering its outbox during the outage
// and replaying it in order on heal, while the raw link silently loses
// the fires — the replica ends stale, the leads guarantee FAILS, and no
// failure is even recorded (the loss is undetected).
func E12(updates int) Table {
	tbl := Table{
		ID:    "E12",
		Title: "Reliable delivery ablation: partition and loss vs raw links",
		Ref:   "Section 5, Appendix A.2 property 7",
		Columns: []string{"link", "fault", "updates", "follows", "leads",
			"prop-7 violations", "failures m/l", "valid after heal", "replayed", "final value correct"},
	}
	type arm struct {
		link      string
		fault     string
		drop      float64
		partition bool
	}
	arms := []arm{
		{"raw", "partition 20s", 0, true},
		{"reliable", "partition 20s", 0, true},
		{"raw", "drop 25%", 0.25, false},
		{"reliable", "drop 25%", 0.25, false},
	}
	for _, a := range arms {
		clk := vclock.NewVirtual(vclock.Epoch)
		dbA := newEmployeesDB("branch")
		dbB := newEmployeesDB("hq")
		flaky := transport.NewFlaky(transport.NewBus(clk, 100*time.Millisecond),
			transport.FlakyOptions{Clock: clk, Seed: 12, Drop: a.drop})
		var network transport.Network = flaky
		if a.link == "reliable" {
			network = transport.NewReliable(flaky, transport.ReliableOptions{
				Clock: clk, RetryInterval: time.Second, MaxBackoff: 4 * time.Second,
				FailThreshold: 2, Seed: 12,
			})
		}
		tk := core.New(core.Config{Clock: clk, Network: network})
		must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
		must(tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}}))
		must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
		must(tk.Deploy())
		must(tk.Start())
		p := &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: true}

		// Healthy phase.
		val := int64(1000)
		for i := 0; i < updates; i++ {
			p.appWrite("e1", val)
			val++
			clk.Advance(time.Second)
		}
		clk.Advance(10 * time.Second)

		// Fault phase: the partition arms lose the link entirely; the drop
		// arms have had lossy links all along.  The final value is written
		// DURING the outage, so only a link that remembers it can ever
		// bring the replica up to date.
		if a.partition {
			flaky.PartitionBoth("shell-A", "shell-B")
		}
		final := val
		for i := 0; i < updates; i++ {
			final = val
			p.appWrite("e1", val)
			val++
			clk.Advance(time.Second)
		}
		clk.Advance(20 * time.Second)
		metric, logical := 0, 0
		for _, f := range tk.Failures() {
			switch f.Kind {
			case cmi.FailMetric:
				metric++
			case cmi.FailLogical:
				logical++
			}
		}
		if a.partition {
			flaky.HealAll()
		}
		clk.Advance(time.Minute)
		// A late write on another key moves the trace end well past the
		// settle window, so values lost in the fault phase cannot hide
		// behind the leads guarantee's settle excusal.
		p.appWrite("e2", 77)
		clk.Advance(40 * time.Second)

		follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
		leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: 30 * time.Second}.Check(tk.Trace())
		prop7 := 0
		for _, v := range tk.CheckTrace() {
			if v.Property == 7 {
				prop7++
			}
		}
		validOK, validAll := 0, 0
		for _, st := range tk.Status() {
			validAll++
			if st.Valid {
				validOK++
			}
		}
		var replayed uint64
		for _, name := range []string{"shell-A", "shell-B"} {
			if sh, ok := tk.Shell(name); ok {
				replayed += sh.Delivery().ReplayedSends
			}
		}
		res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
		finalOK := len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(final))
		tbl.Rows = append(tbl.Rows, []string{
			a.link, a.fault, fmt.Sprint(2 * updates),
			holdsMark(follows.Holds), holdsMark(leads.Holds),
			fmt.Sprint(prop7), fmt.Sprintf("%d/%d", metric, logical),
			fmt.Sprintf("%d/%d", validOK, validAll),
			fmt.Sprint(replayed), fmt.Sprint(finalOK),
		})
		tk.Stop()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: reliable links hold every guarantee through both faults — the",
		"outage raises only metric failures (failures m/l counts mid-outage), the outbox",
		"replays in order on heal (replayed > 0, zero property-7 violations) and the",
		"recovery notification restores full validity; raw links silently lose fires:",
		"leads FAILS, the replica ends stale, and no failure is ever recorded")
	return tbl
}
