package harness

import (
	"fmt"
	"os"
	"strings"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// E18Row is one arm of the bounded-memory retention experiment,
// JSON-ready for BENCH_E14.json.
type E18Row struct {
	Arm           string  `json:"arm"`            // "equivalence" or "soak"
	Updates       int     `json:"updates"`        // external updates driven
	Events        uint64  `json:"events"`         // lifetime events recorded (folded + retained)
	RetainedPeak  int     `json:"retained_peak"`  // max events held at any sample point
	RetainedFinal int     `json:"retained_final"` // events held when the run ended
	PrunedEvents  uint64  `json:"pruned_events"`
	PrunedMB      float64 `json:"pruned_mb"` // estimated heap MB released by folding
	EventsPerSec  float64 `json:"events_per_sec"`
	Flat          bool    `json:"flat"`             // retained peak stayed within the retention band
	VerdictsEqual bool    `json:"verdicts_equal"`   // equivalence arm: monitor == batch over unpruned control
	Violations    int     `json:"violations"`       // equivalence arm: Appendix A.2 checker findings (must be 0)
	CheckpointB   int     `json:"checkpoint_bytes"` // soak arm: final durable checkpoint size
	ColdStartTail int     `json:"cold_start_tail"`  // soak arm: WAL records replayed at cold start
	ColdStartOK   bool    `json:"cold_start_ok"`    // soak arm: checkpoint verified and imported
}

// e18Bases is the strategy width: enough independent X→Y families to
// spread writes, few enough that state cost stays out of the way of the
// retention measurement.
const e18Bases = 8

// e18Cadence is the compaction cadence on the virtual clock.
const e18Cadence = 2 * time.Second

// e18Step is the virtual time between external updates.
const e18Step = time.Millisecond

// e18Spec builds the copy strategy: Xi →1s Yi for each base family.
func e18Spec() *rule.Spec {
	var b strings.Builder
	b.WriteString("site S\n")
	for i := 0; i < e18Bases; i++ {
		fmt.Fprintf(&b, "private X%d @ S\nprivate Y%d @ S\n", i, i)
		fmt.Fprintf(&b, "rule r%d: Ws(X%d, b) ->1s W(Y%d, b)\n", i, i, i)
	}
	sp, err := rule.ParseSpecString(b.String())
	must(err)
	return sp
}

// e18Initial seeds only the invariant's item: X0 must be defined (and
// nonnegative) from the first instant.  The metric pairs stay unseeded
// on purpose — metric-leads demands a strictly later echo (t1 < t2), so
// a seeded initial value could never be discharged.
func e18Initial() data.Interpretation {
	in := data.NewInterpretation()
	in.Set(data.Item("X0"), data.NewInt(0))
	return in
}

// e18Guarantees is the monitored set; every window is finite so the
// monitor publishes a retention horizon.
func e18Guarantees() []guarantee.Guarantee {
	pred, err := rule.ParseExpr("X0 >= 0")
	must(err)
	return []guarantee.Guarantee{
		guarantee.MetricFollows{X: "X0", Y: "Y0", Kappa: 3 * time.Second},
		guarantee.MetricLeads{X: "X1", Y: "Y1", Kappa: 3 * time.Second},
		guarantee.ExistsWithin{Ref: "X2", Target: "Y2", Kappa: 3 * time.Second},
		guarantee.Invariant{Label: "x0-nonneg", Pred: pred},
	}
}

// e18Band is the expected retention ceiling in events: the widest
// monitor lookback (metric-leads 2κ = 6s) plus the strategy hold (1s)
// plus one compaction cadence of slack, at one update (two events) per
// e18Step — times a generous factor for advance/fold phase alignment.
func e18Band() int {
	lookback := 6*time.Second + time.Second + e18Cadence
	perSec := int(time.Second/e18Step) * 2
	return 3 * int(lookback/time.Second) * perSec
}

// e18Drive sends n external updates round-robin over the X bases, one
// e18Step apart, sampling the retained-event count every sampleEvery
// updates.  Returns the peak sample.
func e18Drive(sh *shell.Shell, clk *vclock.Virtual, from, n, sampleEvery int) int {
	peak := 0
	for e := from; e < from+n; e++ {
		item := data.Item(fmt.Sprintf("X%d", e%e18Bases))
		sh.Spontaneous(item, data.NewInt(int64(e)), data.NewInt(int64(e+1)))
		clk.Advance(e18Step)
		if (e+1)%sampleEvery == 0 {
			if l := sh.Trace().Len(); l > peak {
				peak = l
			}
		}
	}
	if l := sh.Trace().Len(); l > peak {
		peak = l
	}
	return peak
}

// E18Rows runs both arms of the retention experiment: an equivalence
// arm small enough to keep an unpruned control in memory (monitor
// verdicts over the compacted trace must match the batch checker over
// the control, with zero Appendix A.2 violations), and a soak arm
// driving soakUpdates updates (two recorded events each) against a
// durable checkpoint, asserting the retained count stays inside the
// retention band and that a cold start resumes from checkpoint + WAL
// tail without replaying history.
func E18Rows(soakUpdates, eqUpdates int) []E18Row {
	return []E18Row{e18Equivalence(eqUpdates), e18Soak(soakUpdates)}
}

func e18Equivalence(updates int) E18Row {
	sp := e18Spec()
	clk := vclock.NewVirtual(vclock.Epoch)
	cclk := vclock.NewVirtual(vclock.Epoch)
	sh := shell.New("e18", sp, shell.Options{Clock: clk, Trace: trace.New(e18Initial())})
	ctl := shell.New("e18ctl", sp, shell.Options{Clock: cclk, Trace: trace.New(e18Initial())})
	sh.AddSite("S", nil)
	ctl.AddSite("S", nil)
	mon, err := guarantee.NewMonitor(e18Guarantees()...)
	must(err)
	_, err = sh.EnableRetention(shell.Retention{Monitor: mon, Every: e18Cadence})
	must(err)
	must(sh.Start())
	defer sh.Stop()
	must(ctl.Start())
	defer ctl.Stop()

	start := time.Now()
	peak := e18Drive(sh, clk, 0, updates, 1000)
	wall := time.Since(start)
	e18Drive(ctl, cclk, 0, updates, updates)

	tr := sh.Trace()
	want := guarantee.CheckAll(ctl.Trace(), e18Guarantees()...)
	got := mon.Reports(tr)
	checker := trace.NewChecker(append(sp.Rules, ctl.ImplicitRules()...))
	pruned, prunedBytes := tr.Pruned()
	return E18Row{
		Arm: "equivalence", Updates: updates,
		Events:        tr.TotalEvents(),
		RetainedPeak:  peak,
		RetainedFinal: tr.Len(),
		PrunedEvents:  pruned,
		PrunedMB:      float64(prunedBytes) / (1 << 20),
		EventsPerSec:  float64(tr.TotalEvents()) / wall.Seconds(),
		Flat:          peak <= e18Band(),
		VerdictsEqual: guarantee.EqualVerdicts(want, got),
		Violations:    len(checker.Check(ctl.Trace())),
	}
}

func e18Soak(updates int) E18Row {
	dir, err := os.MkdirTemp("", "cmtk-e18-")
	must(err)
	defer os.RemoveAll(dir)
	dopts := durable.Options{Sync: durable.SyncInterval, Metrics: obs.NewRegistry()}
	st, err := durable.Open(dir, dopts)
	must(err)

	sp := e18Spec()
	clk := vclock.NewVirtual(vclock.Epoch)
	sh := shell.New("e18", sp, shell.Options{Clock: clk, Trace: trace.New(e18Initial())})
	sh.AddSite("S", nil)
	_, err = sh.EnableDurable(st)
	must(err)
	mon, err := guarantee.NewMonitor(e18Guarantees()...)
	must(err)
	// Checkpoint every ~50 fold rounds: the soak is about memory, not
	// checkpoint fsync throughput.
	_, err = sh.EnableRetention(shell.Retention{Monitor: mon, Every: e18Cadence, Store: st, CheckpointEvery: 50})
	must(err)
	must(sh.Start())

	start := time.Now()
	peak := e18Drive(sh, clk, 0, updates, 1000)
	wall := time.Since(start)
	tr := sh.Trace()
	events := tr.TotalEvents()
	retained := tr.Len()
	pruned, prunedBytes := tr.Pruned()
	finalState := tr.Final()
	sh.Stop()
	must(st.Close()) // writes the final trace checkpoint

	// Cold start: the WAL tail (private journal records past its last
	// checkpoint) is all that replays; the trace comes back from the
	// verified snapshot with no events.
	tail, err := durable.ReadLog(dir, "shell-e18")
	must(err)
	ckpt, err := durable.ReadLog(dir, "trace-e18")
	must(err)
	st2, err := durable.Open(dir, dopts)
	must(err)
	defer st2.Close()
	clk2 := vclock.NewVirtual(clk.Now().Add(time.Minute))
	sh2 := shell.New("e18", sp, shell.Options{Clock: clk2, Trace: trace.New(e18Initial())})
	sh2.AddSite("S", nil)
	_, err = sh2.EnableDurable(st2)
	must(err)
	mon2, err := guarantee.NewMonitor(e18Guarantees()...)
	must(err)
	res, err := sh2.EnableRetention(shell.Retention{Monitor: mon2, Every: e18Cadence, Store: st2})
	must(err)
	coldOK := res.Restored && res.Report.Rejected == 0 &&
		sh2.Trace().Len() == 0 && sh2.Trace().TotalEvents() == events &&
		sh2.Trace().Initial().Equal(finalState)

	return E18Row{
		Arm: "soak", Updates: updates,
		Events:        events,
		RetainedPeak:  peak,
		RetainedFinal: retained,
		PrunedEvents:  pruned,
		PrunedMB:      float64(prunedBytes) / (1 << 20),
		EventsPerSec:  float64(events) / wall.Seconds(),
		Flat:          peak <= e18Band(),
		VerdictsEqual: allHold(mon.Reports(tr)), // clean copy workload: every guarantee holds
		CheckpointB:   len(ckpt.Snapshot),
		ColdStartTail: len(tail.Records),
		ColdStartOK:   coldOK,
	}
}

func allHold(reports []guarantee.Report) bool {
	for _, r := range reports {
		if !r.Holds {
			return false
		}
	}
	return true
}

// E18 renders the retention experiment as an experiment table.
func E18(soakUpdates, eqUpdates int) Table {
	tbl := Table{
		ID:    "E18",
		Title: "Bounded-memory retention: guarantee-aware compaction + verified checkpoint cold start",
		Ref:   "DESIGN.md §12 retention model; ROADMAP bounded-memory item",
		Columns: []string{"arm", "updates", "events", "retained peak", "retained final",
			"pruned", "pruned MB", "events/sec", "flat", "verdicts", "cold start"},
	}
	for _, r := range E18Rows(soakUpdates, eqUpdates) {
		cold := "-"
		if r.Arm == "soak" {
			cold = fmt.Sprintf("ok=%v tail=%d ckpt=%dB", r.ColdStartOK, r.ColdStartTail, r.CheckpointB)
		}
		verdicts := fmt.Sprintf("equal=%v", r.VerdictsEqual)
		if r.Arm == "equivalence" {
			verdicts += fmt.Sprintf(" violations=%d", r.Violations)
		}
		tbl.Rows = append(tbl.Rows, []string{
			r.Arm, fmt.Sprint(r.Updates), fmt.Sprint(r.Events),
			fmt.Sprint(r.RetainedPeak), fmt.Sprint(r.RetainedFinal),
			fmt.Sprint(r.PrunedEvents), fmt.Sprintf("%.1f", r.PrunedMB),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprint(r.Flat), verdicts, cold,
		})
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: retained events plateau at the retention band (widest guarantee",
		"lookback + strategy hold + cadence slack) no matter how many events the soak",
		"records; the monitor's verdicts over the compacted trace equal the batch checker",
		"over an unpruned control; a cold start imports the verified checkpoint and",
		"replays only the private-journal tail")
	return tbl
}
