package harness

import (
	"fmt"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
	"cmtk/internal/workload"
)

// kvStoreHandle wraps a kvstore for driver writes.
type kvStoreHandle struct{ s *kvstore.Store }

func newKV() *kvStoreHandle {
	return &kvStoreHandle{s: kvstore.New("lookup", false, true)}
}

// Set performs an application write on the directory.
func (k *kvStoreHandle) Set(entity, attr, value string) {
	if err := k.s.Set(entity, attr, value); err != nil {
		panic(err)
	}
}

// relstoreWithTextSalary builds the replica table with a TEXT value
// column (for string-valued families like phone numbers).
func relstoreWithTextSalary() *relstore.DB {
	db := relstore.New("hq")
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary TEXT, PRIMARY KEY (empid))"); err != nil {
		panic(err)
	}
	return db
}

// F1 reproduces Figure 1's logical architecture: three heterogeneous
// sites — a relational branch database, a relational HQ database and a
// whois-style directory — where the directory site has no CM-Shell of
// its own and is hosted by HQ's shell, with two constraints sharing the
// primary.
func F1(updates int) Table {
	tbl := Table{
		ID:      "F1",
		Title:   "Figure 1 architecture: 3 sites, 2 shells, shared hosting",
		Ref:     "Figure 1, Section 4.3",
		Columns: []string{"sites", "shells", "constraints", "updates", "lost(B)", "lost(C)", "trace", "guarantees"},
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB("branch")
	dbB := newEmployeesDB("hq")
	kvC := kvstore.New("whois", false, false)
	cfgC, err := rid.ParseString(`
kind kvstore
site C
item salary3
  type int
  attr salary
interface WR(salary3(n), b) ->3s W(salary3(n), b)
`)
	must(err)
	tk := core.New(core.Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	must(tk.AddSite(core.Site{RID: notifyRID("A", "salary1"), Local: &translator.LocalStores{Rel: dbA}}))
	must(tk.AddSite(core.Site{RID: writableRID("B", "salary2"), Local: &translator.LocalStores{Rel: dbB}, Shell: "hub"}))
	// Site C has no shell of its own: hosted on the hub, like Figure 1's
	// Site 3.
	must(tk.AddSite(core.Site{RID: cfgC, Local: &translator.LocalStores{KV: kvC}, Shell: "hub"}))
	must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
	must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary3", Arity: 1, Strategy: "notify"}))
	must(tk.Deploy())
	must(tk.Start())
	p := &payroll{tk: tk, clk: clk, dbA: dbA, dbB: dbB, notifyA: true}
	stream := workload.Stream(workload.Config{Seed: 11, Keys: workload.Keys(8), N: updates, MeanGap: time.Second, Poisson: true})
	start := clk.Now()
	for _, u := range stream {
		clk.AdvanceTo(start.Add(u.At))
		p.appWrite(u.Key, u.Value)
	}
	clk.Advance(time.Minute)
	_, lostB := propagationStats(tk.Trace(), "salary1", "salary2", 30*time.Second)
	_, lostC := propagationStats(tk.Trace(), "salary1", "salary3", 30*time.Second)
	vs := tk.CheckTrace()
	tbl.Rows = append(tbl.Rows, []string{
		"3", "2", "2", fmt.Sprint(updates),
		fmt.Sprint(lostB), fmt.Sprint(lostC),
		fmt.Sprintf("%d violations", len(vs)),
		guaranteeSummary(tk.CheckGuarantees()),
	})
	tk.Stop()
	tbl.Notes = append(tbl.Notes,
		"expected shape: both replicas track the primary with zero lost values even though",
		"the directory site shares a shell, exactly as Figure 1 allows")
	return tbl
}

// F2 reproduces Figure 2's toolkit pipeline end to end over real TCP:
// the relational sources run behind network servers in their own
// dialects, the CM-Translators dial them, and the CM-Shells exchange rule
// firings over a TCP mesh — configured purely from RID text and a
// strategy choice.  Runs on the real clock.
func F2(updates int) Table {
	tbl := Table{
		ID:      "F2",
		Title:   "Figure 2 pipeline over TCP: RIS->RISI->Translator->CMI->Shell",
		Ref:     "Figure 2, Section 4.1",
		Columns: []string{"transport", "updates", "propagated", "wall time", "mean latency", "guarantees"},
	}
	// In-process baseline on the real clock for comparison.
	for _, mode := range []string{"in-process", "tcp"} {
		dbA := newEmployeesDB("branch")
		dbB := newEmployeesDB("hq")
		cfgA := notifyRID("A", "salary1")
		cfgB := writableRID("B", "salary2")
		var netCfg core.Config
		var cleanup func()
		if mode == "tcp" {
			srvA, err := server.ServeRel("127.0.0.1:0", dbA)
			must(err)
			srvB, err := server.ServeRel("127.0.0.1:0", dbB)
			must(err)
			cfgA.Addr = srvA.Addr()
			cfgB.Addr = srvB.Addr()
			netCfg = core.Config{Clock: vclock.Real{}, Network: transport.NewTCPNetwork()}
			cleanup = func() { srvA.Close(); srvB.Close() }
		} else {
			netCfg = core.Config{Clock: vclock.Real{}}
			cleanup = func() {}
		}
		tk := core.New(netCfg)
		must(tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}}))
		must(tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}}))
		must(tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"}))
		must(tk.Deploy())
		must(tk.Start())

		begin := time.Now()
		for i := 0; i < updates; i++ {
			key := fmt.Sprintf("e%d", i%5+1)
			val := int64(1000 + i)
			if _, err := dbA.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = '%s'", val, key)); err != nil {
				panic(err)
			}
			if res, _ := dbA.Exec(fmt.Sprintf("SELECT empid FROM employees WHERE empid = '%s'", key)); len(res.Rows) == 0 {
				dbA.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('%s', %d)", key, val))
			}
		}
		// Wait for the last value to land at B.
		lastKey := fmt.Sprintf("e%d", (updates-1)%5+1)
		lastVal := fmt.Sprint(1000 + updates - 1)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			res, _ := dbB.Exec(fmt.Sprintf("SELECT salary FROM employees WHERE empid = '%s'", lastKey))
			if len(res.Rows) == 1 && res.Rows[0][0].String() == lastVal {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		wall := time.Since(begin)
		time.Sleep(50 * time.Millisecond) // let stragglers land
		delays, _ := propagationStats(tk.Trace(), "salary1", "salary2", 0)
		reports := guarantee.CheckAll(tk.Trace(),
			guarantee.Follows{X: "salary1", Y: "salary2"},
			guarantee.StrictlyFollows{X: "salary1", Y: "salary2"},
		)
		tbl.Rows = append(tbl.Rows, []string{
			mode, fmt.Sprint(updates), fmt.Sprint(len(delays)),
			wall.Round(time.Millisecond).String(),
			fmtDur(workload.Mean(delays)),
			guaranteeSummary(reports),
		})
		tk.Stop()
		cleanup()
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: identical guarantee outcomes in both transports; TCP adds",
		"per-hop socket latency but the pipeline, configured only by RIDs, is unchanged")
	return tbl
}

// RunAll executes the full experiment suite at the given scale factor
// (1 = the sizes recorded in EXPERIMENTS.md).
func RunAll(scale int) []Table {
	if scale < 1 {
		scale = 1
	}
	return []Table{
		E1(100 * scale),
		E2(60 * scale),
		E3(150 * scale),
		E4(200 * scale),
		E5(8 * scale),
		E6(10 * scale),
		E7(4 * scale),
		E8(),
		E9(60 * scale),
		E10(20 * scale),
		E11(4 * scale),
		F1(100 * scale),
		F2(30 * scale),
	}
}
