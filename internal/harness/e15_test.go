package harness

import (
	"testing"
)

// TestE15ChaosSoakInvariants runs one arm per fault campaign and holds it
// to the Section 5 contract with exact counts.  The arms run on a virtual
// clock with a fixed seed, so every run of an arm is bit-identical and
// the expectations below are equalities, not lower bounds.
func TestE15ChaosSoakInvariants(t *testing.T) {
	// Deadline misses are pinned per arm: the fault window covers exactly
	// the second quarter of the schedule, and with 40 updates at 10/s the
	// runs below reproduce these counts bit-for-bit.
	wantMisses := map[string]int{
		"baseline":  0,
		"partition": 0,  // 1s retry replays the 1s outage within the 2s deadline
		"lossy50":   0,  // first retry after a drop lands within the deadline
		"slow300ms": 0,  // 400ms propagation < 2s deadline
		"skew+45s":  10, // the quarter of updates applied while B read +45s
	}
	for _, campaign := range e15Campaigns {
		row := e15Run(campaign, 10, 40)
		if row.Updates != 40 {
			t.Errorf("%s: planned %d updates, want 40", campaign, row.Updates)
		}
		// Faults may never lose values, corrupt logic, or truly reorder a
		// link — the degradation budget is metric failures and deadline
		// misses only.
		if row.Lost != 0 {
			t.Errorf("%s: lost = %d, want 0", campaign, row.Lost)
		}
		if row.LogicalFailures != 0 {
			t.Errorf("%s: logical failures = %d, want 0", campaign, row.LogicalFailures)
		}
		if row.Prop7 != 0 {
			t.Errorf("%s: true prop-7 violations = %d, want 0", campaign, row.Prop7)
		}
		if campaign != "skew+45s" && row.Prop7Apparent != 0 {
			t.Errorf("%s: apparent prop-7 violations = %d, want 0", campaign, row.Prop7Apparent)
		}
		if campaign == "skew+45s" && row.Prop7Apparent == 0 {
			t.Errorf("skew arm recorded no apparent prop-7 violations; the stepped clock must show up in the trace")
		}
		if !row.Converged {
			t.Errorf("%s: replica did not converge to the last written values", campaign)
		}
		if !row.FollowsHolds || !row.LeadsHolds {
			t.Errorf("%s: logical guarantees degraded: follows=%v leads=%v",
				campaign, row.FollowsHolds, row.LeadsHolds)
		}
		if !row.SkewExact {
			t.Errorf("%s: MetricLeads verdict diverged from the trace-derived expectation", campaign)
		}
		if want := wantMisses[campaign]; row.DeadlineMisses != want {
			t.Errorf("%s: deadline misses = %d, want exactly %d", campaign, row.DeadlineMisses, want)
		}
		// Overload protection is quiescent at this offered rate: nothing
		// shed, nothing dropped from outage buffers, queues drained.
		if row.Shed != 0 || row.BufferDropped != 0 || row.QueueDepth != 0 {
			t.Errorf("%s: shed=%d dropped=%d queue=%d, want all 0",
				campaign, row.Shed, row.BufferDropped, row.QueueDepth)
		}
		if campaign == "baseline" && row.RecoverySec != 0 {
			t.Errorf("baseline: recovery = %vs, want 0", row.RecoverySec)
		}
	}
}

// TestE15Deterministic re-runs one faulted arm and requires bit-identical
// rows: the chaos soak's exact assertions are only meaningful if the
// arm is reproducible.
func TestE15Deterministic(t *testing.T) {
	a := e15Run("partition", 10, 40)
	b := e15Run("partition", 10, 40)
	a.WallEventsPerSec, b.WallEventsPerSec = 0, 0 // real-time throughput may differ
	if a != b {
		t.Fatalf("partition arm not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}
