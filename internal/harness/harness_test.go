package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell fetches a named column of a row.
func cell(t *testing.T, tbl Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", tbl.ID, col)
	return ""
}

func wantHolds(t *testing.T, tbl Table, row int, col string) {
	t.Helper()
	if got := cell(t, tbl, row, col); got != "holds" {
		t.Errorf("%s row %d %s = %q, want holds", tbl.ID, row, col, got)
	}
}

func wantAllGuaranteesHold(t *testing.T, tbl Table, row int) {
	t.Helper()
	if s := cell(t, tbl, row, "guarantees"); strings.Contains(s, "FAILS") {
		t.Errorf("%s row %d guarantees = %q", tbl.ID, row, s)
	}
}

func wantZeroViolations(t *testing.T, tbl Table, row int) {
	t.Helper()
	if s := cell(t, tbl, row, "trace"); s != "0 violations" {
		t.Errorf("%s row %d trace = %q", tbl.ID, row, s)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

func TestE1AllGuaranteesHold(t *testing.T) {
	tbl := E1(60)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		wantZeroViolations(t, tbl, i)
		wantAllGuaranteesHold(t, tbl, i)
		if lost := atoi(t, cell(t, tbl, i, "lost")); lost != 0 {
			t.Errorf("row %d lost = %d", i, lost)
		}
	}
	if tbl.String() == "" {
		t.Error("empty rendering")
	}
}

func TestE2PollingShape(t *testing.T) {
	tbl := E2(50)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	missedAtPeriod := map[string]int{}
	for i := range tbl.Rows {
		wantHolds(t, tbl, i, "follows")
		wantHolds(t, tbl, i, "strict")
		missedAtPeriod[cell(t, tbl, i, "poll period")] = atoi(t, cell(t, tbl, i, "missed"))
	}
	// The paper's claim: leads fails once updates outpace the poll; with a
	// 20s mean gap the 60s and 120s periods must certainly lose values.
	for i := range tbl.Rows {
		period := cell(t, tbl, i, "poll period")
		if period == "1m0s" || period == "2m0s" {
			if got := cell(t, tbl, i, "leads"); got != "FAILS" {
				t.Errorf("period %s: leads = %q, want FAILS", period, got)
			}
		}
	}
	// Miss count grows (weakly) with the period.
	if missedAtPeriod["2m0s"] < missedAtPeriod["10s"] {
		t.Errorf("missed(%s)=%d < missed(%s)=%d",
			"2m0s", missedAtPeriod["2m0s"], "10s", missedAtPeriod["10s"])
	}
}

func TestE3CachedSavesTraffic(t *testing.T) {
	tbl := E3(120)
	// Rows alternate notify/cached per dup fraction.
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := 0; i < len(tbl.Rows); i += 2 {
		naive := atoi(t, cell(t, tbl, i, "write reqs"))
		cached := atoi(t, cell(t, tbl, i+1, "write reqs"))
		dup := cell(t, tbl, i, "dup fraction")
		if cached > naive {
			t.Errorf("dup %s: cached (%d) > naive (%d)", dup, cached, naive)
		}
		if dup != "0.00" && cached >= naive {
			t.Errorf("dup %s: no saving (%d vs %d)", dup, cached, naive)
		}
		wantAllGuaranteesHold(t, tbl, i)
		wantAllGuaranteesHold(t, tbl, i+1)
	}
}

func TestE4DemarcationShape(t *testing.T) {
	tbl := E4(100)
	for i := range tbl.Rows {
		wantHolds(t, tbl, i, "X<=Y")
	}
	// Larger slack means a larger local fraction.
	frac := func(row int) float64 {
		s := strings.TrimSuffix(cell(t, tbl, row, "local %"), "%")
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Rows: slack 1 (exact, generous), 10, 100, 1000.
	if frac(0) >= frac(len(tbl.Rows)-1) {
		t.Errorf("local%% did not grow with slack: %v vs %v", frac(0), frac(len(tbl.Rows)-1))
	}
}

func TestE5ReferentialShape(t *testing.T) {
	tbl := E5(5)
	wantHolds(t, tbl, 0, "guarantee")
	orphans := atoi(t, cell(t, tbl, 0, "orphans"))
	deleted := atoi(t, cell(t, tbl, 0, "deleted"))
	if orphans == 0 || deleted != orphans {
		t.Errorf("orphans=%d deleted=%d", orphans, deleted)
	}
	// Max violation window below 24h + sweep slack.
	w, err := time.ParseDuration(cell(t, tbl, 0, "max window"))
	if err != nil {
		t.Fatal(err)
	}
	if w > 25*time.Hour {
		t.Errorf("max window %v exceeds a day", w)
	}
}

func TestE6MonitorShape(t *testing.T) {
	tbl := E6(6)
	wantHolds(t, tbl, 0, "monitor guarantee")
	if s := cell(t, tbl, 0, "trace"); s != "0 violations" {
		t.Errorf("trace = %q", s)
	}
	frac := strings.TrimSuffix(cell(t, tbl, 0, "flag-true %"), "%")
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil {
		t.Fatal(err)
	}
	if f < 25 || f > 75 {
		t.Errorf("flag-true fraction %v%% implausible for alternating cycles", f)
	}
}

func TestE7PeriodicShape(t *testing.T) {
	tbl := E7(3)
	wantHolds(t, tbl, 0, "night guarantee")
	if got := cell(t, tbl, 0, "daytime control"); got != "FAILS" {
		t.Errorf("daytime control = %q, want FAILS", got)
	}
	if runs := atoi(t, cell(t, tbl, 0, "batches")); runs != 3 {
		t.Errorf("batches = %d", runs)
	}
}

func TestE8FailureShape(t *testing.T) {
	tbl := E8()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Row 0: no failure — everything valid.
	if got := cell(t, tbl, 0, "metric valid"); !validAll(got) {
		t.Errorf("no-failure metric valid = %q", got)
	}
	if got := cell(t, tbl, 0, "non-metric valid"); !validAll(got) {
		t.Errorf("no-failure non-metric valid = %q", got)
	}
	// Row 1: metric failure — metric invalid, non-metric intact.
	if got := cell(t, tbl, 1, "metric valid"); !validNone(got) {
		t.Errorf("metric-failure metric valid = %q", got)
	}
	if got := cell(t, tbl, 1, "non-metric valid"); !validAll(got) {
		t.Errorf("metric-failure non-metric valid = %q", got)
	}
	// Row 2: logical failure — everything invalid.
	if got := cell(t, tbl, 2, "metric valid"); !validNone(got) {
		t.Errorf("logical-failure metric valid = %q", got)
	}
	if got := cell(t, tbl, 2, "non-metric valid"); !validNone(got) {
		t.Errorf("logical-failure non-metric valid = %q", got)
	}
	// Row 3: overload detected through the translator path behaves like
	// the directly injected metric failure.
	if got := cell(t, tbl, 3, "metric valid"); !validNone(got) {
		t.Errorf("overload metric valid = %q", got)
	}
	if got := cell(t, tbl, 3, "non-metric valid"); !validAll(got) {
		t.Errorf("overload non-metric valid = %q", got)
	}
	// Row 4: crash + recovery — metric-only failures and a converged
	// replica (buffered notifications replayed).
	if got := cell(t, tbl, 4, "metric valid"); !validNone(got) {
		t.Errorf("crash metric valid = %q", got)
	}
	if got := cell(t, tbl, 4, "non-metric valid"); !validAll(got) {
		t.Errorf("crash non-metric valid = %q", got)
	}
	if got := cell(t, tbl, 4, "replica converged"); got != "true" {
		t.Errorf("crash replica converged = %q", got)
	}
	// Every scenario except Down leaves the replica converged.
	for i := 0; i < len(tbl.Rows); i++ {
		if got := cell(t, tbl, i, "replica converged"); got != "true" {
			t.Errorf("row %d replica converged = %q", i, got)
		}
	}
}

func validAll(frac string) bool {
	parts := strings.Split(frac, "/")
	return len(parts) == 2 && parts[0] == parts[1] && parts[0] != "0"
}

func validNone(frac string) bool {
	parts := strings.Split(frac, "/")
	return len(parts) == 2 && parts[0] == "0" && parts[1] != "0"
}

func TestE9RetargetShape(t *testing.T) {
	tbl := E9(40)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		wantZeroViolations(t, tbl, i)
		wantAllGuaranteesHold(t, tbl, i)
		if lost := atoi(t, cell(t, tbl, i, "lost")); lost != 0 {
			t.Errorf("row %d lost = %d", i, lost)
		}
	}
	// The retarget is small: well under a "page" (~50 lines).
	if diff := atoi(t, cell(t, tbl, 1, "lines changed")); diff == 0 || diff > 50 {
		t.Errorf("lines changed = %d", diff)
	}
	// Guarantee outcomes identical across dialects.
	if cell(t, tbl, 0, "guarantees") != cell(t, tbl, 1, "guarantees") {
		t.Error("guarantee outcomes differ across dialects")
	}
}

func TestF1ArchitectureShape(t *testing.T) {
	tbl := F1(60)
	wantZeroViolations(t, tbl, 0)
	wantAllGuaranteesHold(t, tbl, 0)
	if lost := atoi(t, cell(t, tbl, 0, "lost(B)")) + atoi(t, cell(t, tbl, 0, "lost(C)")); lost != 0 {
		t.Errorf("lost = %d", lost)
	}
}

func TestF2PipelineOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-clock TCP experiment")
	}
	tbl := F2(20)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		wantAllGuaranteesHold(t, tbl, i)
		// One FIFO link and the run waits for the last value, so every
		// one of the 20 distinct values has propagated — exactly, not
		// merely "some".
		if got := atoi(t, cell(t, tbl, i, "propagated")); got != 20 {
			t.Errorf("row %d propagated = %d, want exactly 20", i, got)
		}
	}
}

func TestE10InOrderAblation(t *testing.T) {
	tbl := E10(16)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// FIFO row: everything clean.
	wantHolds(t, tbl, 0, "follows")
	wantHolds(t, tbl, 0, "strict order")
	if got := atoi(t, cell(t, tbl, 0, "prop-7 violations")); got != 0 {
		t.Errorf("fifo prop-7 = %d", got)
	}
	if got := cell(t, tbl, 0, "final value correct"); got != "true" {
		t.Errorf("fifo final = %q", got)
	}
	// Scrambled row: strict order broken and detected.
	if got := cell(t, tbl, 1, "strict order"); got != "FAILS" {
		t.Errorf("scrambled strict order = %q, want FAILS", got)
	}
	// The scrambler inverts each adjacent pair on the wire, so 16 updates
	// yield exactly 8 inversions, each flagged once.
	if got := atoi(t, cell(t, tbl, 1, "prop-7 violations")); got != 8 {
		t.Errorf("scrambled prop-7 violations = %d, want exactly 8", got)
	}
	// Follows still holds: reordering cannot invent values.
	wantHolds(t, tbl, 1, "follows")
	// tcp-batch row: the batching TCP mesh keeps per-link FIFO, so the
	// same checks as the fifo row stay clean over coalesced frames.
	wantHolds(t, tbl, 2, "follows")
	wantHolds(t, tbl, 2, "strict order")
	if got := atoi(t, cell(t, tbl, 2, "prop-7 violations")); got != 0 {
		t.Errorf("tcp-batch prop-7 = %d", got)
	}
	if got := cell(t, tbl, 2, "final value correct"); got != "true" {
		t.Errorf("tcp-batch final = %q", got)
	}
}

func TestE11ClockSkewMargin(t *testing.T) {
	tbl := E11(3)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	wantHolds(t, tbl, 0, "night guarantee")
	wantHolds(t, tbl, 1, "night guarantee")
	if got := cell(t, tbl, 2, "night guarantee"); got != "FAILS" {
		t.Errorf("25m skew guarantee = %q, want FAILS", got)
	}
}
