package harness

import (
	"fmt"
	"time"

	"cmtk/internal/chaos"
	"cmtk/internal/cmi"
	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
	"cmtk/internal/workload"
)

// E15 is the chaos soak: an open-loop arrival schedule swept across
// rates and fault campaigns on a virtual clock, so every run of the same
// arm is bit-identical and its assertions can be exact.  Each arm drives
// the payroll copy constraint (LoadMesh over the in-process bus with
// reliable links), runs one chaos campaign mid-load — nothing, a
// bidirectional partition, 50% message loss, universal 300ms link slow-
// down, or a +45s clock skew at the replica shell — and then checks the
// Section 5 contract: faults may degrade guarantees only to *metric*
// failures (never logical, never silent loss), every link recovers, the
// replica converges to the last written value of every key, and the
// metric-guarantee verdict under skew flips exactly as the κ bound
// predicts.
//
// The wall-clock columns (events/sec) measure the engine's sustained
// processing rate while latency columns are virtual-time propagation
// delays — the same split E14 uses, so BENCH_LOAD.json rows diff cleanly
// across runs.

// E15Row is one arm of the sweep, JSON-ready for BENCH_LOAD.json.
type E15Row struct {
	Campaign   string  `json:"campaign"`
	RatePerSec float64 `json:"rate_per_sec"` // offered (virtual-time) arrival rate
	Updates    int     `json:"updates"`

	WallEventsPerSec float64 `json:"wall_events_per_sec"` // real-time sustained processing
	P50Ms            float64 `json:"p50_ms"`              // virtual-time fire latency
	P99Ms            float64 `json:"p99_ms"`
	P999Ms           float64 `json:"p999_ms"`

	DeadlineMisses  int `json:"deadline_misses"` // propagation > deadline (2s virtual)
	Lost            int `json:"lost"`            // values never reflected — must be 0
	MetricFailures  int `json:"metric_failures"`
	LogicalFailures int `json:"logical_failures"` // must be 0
	// Prop7Apparent counts property-7 (per-link order) violations on the
	// trace exactly as recorded.  The skew arm makes this non-zero: a
	// stepped-back clock stamps post-heal effects before skew-era ones, so
	// the FIFO detector — correctly, from its vantage point — flags the
	// inversion even though delivery order was fine.
	Prop7Apparent int `json:"prop7_apparent"`
	// Prop7 recounts after compensating the campaign's known offset
	// (shifting the skewed site's events back); any residue is true
	// delivery reordering — must be 0 on every arm.
	Prop7         int     `json:"prop7_violations"`
	FollowsHolds  bool    `json:"follows_holds"`
	LeadsHolds    bool    `json:"leads_holds"`
	RecoverySec   float64 `json:"recovery_sec"` // fault heal -> last outage value applied
	Converged     bool    `json:"converged"`    // replica == last write, every key
	Shed          uint64  `json:"shed"`
	BufferDropped uint64  `json:"buffer_dropped"`
	QueueDepth    int64   `json:"queue_depth"` // post-run; must be 0
	TraceEvents   int     `json:"trace_events"`

	// SkewExact reports, for the skew arm, whether the MetricLeads κ=30s
	// verdict matched the trace-derived expectation exactly (violation
	// count equal to the number of X samples whose apparent propagation
	// delay exceeded κ).  True on non-skew arms.
	SkewExact bool `json:"skew_exact"`
}

// e15Deadline is the per-update propagation deadline asserted in virtual
// time; generous against the 100ms bus latency, tight against outages.
const e15Deadline = 2 * time.Second

// e15Campaigns names the fault arms; the builder binds them to a mesh.
var e15Campaigns = []string{"baseline", "partition", "lossy50", "slow300ms", "skew+45s"}

// e15Rates are the offered arrival rates swept per campaign.
var e15Rates = []float64{2, 10, 50}

// E15Rows runs the full rate × campaign sweep, `updates` arrivals per
// arm.
func E15Rows(updates int) []E15Row {
	var rows []E15Row
	for _, campaign := range e15Campaigns {
		for _, rate := range e15Rates {
			rows = append(rows, e15Run(campaign, rate, updates))
		}
	}
	return rows
}

// e15Run executes one arm and asserts its invariants (panicking on
// violation — the harness's must discipline; the test wrapper turns
// these into failures).
func e15Run(campaign string, rate float64, updates int) E15Row {
	clk := vclock.NewVirtual(vclock.Epoch)
	reg := obs.NewRegistry()
	keys := workload.Keys(4)
	mesh, err := NewLoadMesh(LoadMeshOptions{
		Clock: clk, BusLatency: 100 * time.Millisecond, Seed: 15,
		RetryInterval: time.Second, MaxBackoff: 4 * time.Second,
		Metrics: reg, Keys: append(keys, "probe"),
	})
	must(err)
	defer mesh.Stop()

	total := time.Duration(float64(updates) / rate * float64(time.Second))
	sched := workload.Constant(rate, total)
	plan := sched.Updates(keys, 15, e15Deadline)

	// The fault window sits mid-run: inject at 25% of the schedule, heal
	// at 50%.
	faultAt, faultDur := total/4, total/4
	var faults []chaos.Fault
	switch campaign {
	case "baseline":
	case "partition":
		faults = append(faults, chaos.Partition(mesh.Flaky, "shell-A", "shell-B", faultAt, faultDur))
	case "lossy50":
		faults = append(faults, chaos.Lossy(mesh.Flaky, 0.5, faultAt, faultDur))
	case "slow300ms":
		faults = append(faults, chaos.Slow(mesh.Flaky, 1.0, 300*time.Millisecond, faultAt, faultDur))
	case "skew+45s":
		faults = append(faults, chaos.Skew(mesh.Clocks["shell-B"], 45*time.Second, faultAt, faultDur))
	default:
		panic("e15: unknown campaign " + campaign)
	}
	runner := chaos.Start(clk, chaos.Campaign{Name: campaign, Faults: faults})

	// Open loop on the virtual clock: advance to each planned instant and
	// fire, whether or not the mesh has caught up.
	start := clk.Now()
	wallStart := time.Now()
	last := map[string]int64{}
	for _, u := range plan {
		clk.AdvanceTo(start.Add(u.At))
		must(mesh.Write(u.Key, u.Value))
		last[u.Key] = u.Value
	}
	// Drain: outlast the longest backoff and every campaign recovery,
	// then move the trace end past the leads settle window with a marker
	// write on an untouched key.
	clk.Advance(faultAt + faultDur + 30*time.Second)
	wall := time.Since(wallStart)
	must(mesh.Write("probe", 7777))
	clk.Advance(40 * time.Second)
	runner.Stop()

	tr := mesh.TK.Trace()
	delays, lost := mesh.PropagationDelays(0)
	misses := lost
	for _, d := range delays {
		if d > e15Deadline {
			misses++
		}
	}
	metric, logical := 0, 0
	for _, f := range mesh.TK.Failures() {
		switch f.Kind {
		case cmi.FailMetric:
			metric++
		case cmi.FailLogical:
			logical++
		}
	}
	injAt, healAt := start.Add(faultAt), start.Add(faultAt+faultDur)
	prop7Apparent := prop7Count(mesh.TK, tr)
	prop7 := prop7Apparent
	if campaign == "skew+45s" {
		prop7 = prop7Count(mesh.TK, deskew(tr, "B", 45*time.Second, injAt, healAt))
	}
	follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tr)
	leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: 30 * time.Second}.Check(tr)

	converged := true
	for k, want := range last {
		if got, ok := mesh.Replica(k); !ok || got != want {
			converged = false
		}
	}

	// Recovery time: from the campaign's heal instant to the last apply
	// of a value written while the fault was active.
	var recovery time.Duration
	if campaign != "baseline" {
		if lastApply := lastApplyOfWindow(tr, "salary1", "salary2", injAt, healAt); lastApply.After(healAt) {
			recovery = lastApply.Sub(healAt)
		}
	}

	// Skew cross-check: the MetricLeads κ=30s verdict must match the
	// trace-derived expectation exactly — one violation per X sample
	// whose apparent delay exceeded κ, none else.
	const kappa = 30 * time.Second
	mrep := guarantee.MetricLeads{X: "salary1", Y: "salary2", Kappa: kappa}.Check(tr)
	kDelays, kLost := mesh.PropagationDelays(kappa)
	expected := kLost
	for _, d := range kDelays {
		if d > kappa {
			expected++
		}
	}
	skewExact := len(mrep.Violations) == expected && mrep.Holds == (expected == 0)

	bounds, cum, count, okHist := mesh.FireLatency()
	row := E15Row{
		Campaign: campaign, RatePerSec: rate, Updates: len(plan),
		WallEventsPerSec: float64(tr.Len()) / wall.Seconds(),
		DeadlineMisses:   misses, Lost: lost,
		MetricFailures: metric, LogicalFailures: logical,
		Prop7Apparent: prop7Apparent, Prop7: prop7,
		FollowsHolds: follows.Holds, LeadsHolds: leads.Holds,
		RecoverySec: recovery.Seconds(), Converged: converged,
		Shed:          uint64(reg.Snapshot().Sum("cmtk_shell_shed_total")),
		BufferDropped: uint64(reg.Snapshot().Sum("cmtk_transport_buffer_dropped_total")),
		QueueDepth:    int64(reg.Snapshot().Sum("cmtk_shell_queue_depth")),
		TraceEvents:   tr.Len(),
		SkewExact:     skewExact,
	}
	if okHist && count > 0 {
		row.P50Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.50) * 1000
		row.P99Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.99) * 1000
		row.P999Ms = obs.QuantileFromBuckets(bounds, cum, count, 0.999) * 1000
	}
	return row
}

// prop7Count runs the Appendix A.2 checker over tr with the deployment's
// rules and counts the property-7 (per-link order) violations.
func prop7Count(tk *core.Toolkit, tr *trace.Trace) int {
	n := 0
	for _, v := range trace.NewChecker(tk.Rules()).Check(tr) {
		if v.Property == 7 {
			n++
		}
	}
	return n
}

// deskew rebuilds the trace with a known clock offset compensated:
// events the skewed site stamped inside the shifted fault window (their
// recorded times sit in [from+off, to+off]) move back by off.  Running
// the order checker on the result separates true delivery reordering
// from the skewed observer's artifact — after compensation the count
// must be exactly zero.
func deskew(tr *trace.Trace, site string, off time.Duration, from, to time.Time) *trace.Trace {
	out := trace.New(tr.Initial())
	copies := map[uint64]*event.Event{}
	for _, e := range tr.Events() {
		ce := *e
		if e.Site == site && !e.Time.Before(from.Add(off)) && !e.Time.After(to.Add(off)) {
			ce.Time = e.Time.Add(-off)
		}
		// Triggers must reference the compensated copies, not the skewed
		// originals, or chained rules (a shell's own write event triggered
		// by the propagated one) would mix frames of reference.
		if e.Trigger != nil {
			if tc, ok := copies[e.Trigger.Seq]; ok {
				ce.Trigger = tc
			}
		}
		seq := e.Seq
		out.Append(&ce)
		copies[seq] = &ce
	}
	return out
}

// lastApplyOfWindow finds the latest Y-apply time of any value first
// written at X inside [from, to] — how long the outage's backlog took to
// drain after heal.
func lastApplyOfWindow(tr *trace.Trace, xBase, yBase string, from, to time.Time) time.Time {
	var lastApply time.Time
	keys := map[string][]data.Value{}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() && (e.Desc.Item.Base == xBase || e.Desc.Item.Base == yBase) {
			keys[data.ItemName{Base: "", Args: e.Desc.Item.Args}.String()] = e.Desc.Item.Args
		}
	}
	for _, args := range keys {
		ytl := tr.Timeline(data.ItemName{Base: yBase, Args: args})
		for _, xs := range tr.Timeline(data.ItemName{Base: xBase, Args: args}) {
			if xs.V.IsNull() || xs.At.Before(from) || xs.At.After(to) {
				continue
			}
			for _, ys := range ytl {
				after := ys.At.After(xs.At) || (ys.At.Equal(xs.At) && ys.Seq > xs.Seq)
				if after && ys.V.Equal(xs.V) {
					if ys.At.After(lastApply) {
						lastApply = ys.At
					}
					break
				}
			}
		}
	}
	return lastApply
}

// E15 renders the chaos soak as an experiment table.
func E15(updates int) Table {
	tbl := Table{
		ID:    "E15",
		Title: "Chaos soak: open-loop rate sweep under scheduled fault campaigns",
		Ref:   "Section 5 failure taxonomy; metric bounds of Section 3",
		Columns: []string{"campaign", "rate/s", "updates", "wall ev/s",
			"p50", "p99", "miss", "lost", "fail m/l", "prop-7",
			"follows", "leads", "recovery", "converged", "shed/drop"},
	}
	for _, r := range E15Rows(updates) {
		tbl.Rows = append(tbl.Rows, []string{
			r.Campaign, fmt.Sprintf("%.0f", r.RatePerSec), fmt.Sprint(r.Updates),
			fmt.Sprintf("%.0f", r.WallEventsPerSec),
			fmt.Sprintf("%.0fms", r.P50Ms), fmt.Sprintf("%.0fms", r.P99Ms),
			fmt.Sprint(r.DeadlineMisses), fmt.Sprint(r.Lost),
			fmt.Sprintf("%d/%d", r.MetricFailures, r.LogicalFailures),
			fmt.Sprintf("%d/%d", r.Prop7Apparent, r.Prop7),
			holdsMark(r.FollowsHolds), holdsMark(r.LeadsHolds),
			fmt.Sprintf("%.1fs", r.RecoverySec), fmt.Sprint(r.Converged),
			fmt.Sprintf("%d/%d", r.Shed, r.BufferDropped),
		})
	}
	tbl.Notes = append(tbl.Notes,
		"expected shape: every arm converges with zero lost values, zero logical failures",
		"and zero true property-7 violations (prop-7 column is apparent/true: the skew",
		"arm's stepped-back clock makes post-heal effects appear before skew-era ones, so",
		"the order detector flags them — compensating the known offset brings the count",
		"to exactly zero).  Faults degrade guarantees only to metric failures and",
		"deadline misses; the backlog drains within the retry backoff after heal; the",
		"skew arm flips the MetricLeads κ verdict exactly as the bound predicts and",
		"recovers on re-sync (skew_exact in BENCH_LOAD.json); wall ev/s is the engine's",
		"sustained real-time processing rate for the arm (the offered rate is virtual)")
	return tbl
}
