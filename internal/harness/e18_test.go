package harness

import "testing"

// TestE18RetentionShape the reduced-scale soak-smoke: both arms must
// report flat retention, batch-equal verdicts, zero checker violations,
// and a verified checkpoint cold start.  CI runs this under -race; the
// full-scale soak (≥10M recorded events) runs through `cmbench
// -retainjson` and is committed to BENCH_E14.json.
func TestE18RetentionShape(t *testing.T) {
	soak, eq := 40000, 20000
	if testing.Short() {
		soak, eq = 15000, 10000
	}
	rows := E18Rows(soak, eq)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Events < uint64(2*r.Updates) {
			t.Errorf("%s: %d events from %d updates; rules did not fire", r.Arm, r.Events, r.Updates)
		}
		if r.PrunedEvents == 0 {
			t.Errorf("%s: nothing pruned", r.Arm)
		}
		if !r.Flat {
			t.Errorf("%s: retained peak %d above band %d; memory is not bounded", r.Arm, r.RetainedPeak, e18Band())
		}
		if r.RetainedFinal > r.RetainedPeak {
			t.Errorf("%s: final %d above peak %d", r.Arm, r.RetainedFinal, r.RetainedPeak)
		}
		if !r.VerdictsEqual {
			t.Errorf("%s: verdicts diverged from control", r.Arm)
		}
		switch r.Arm {
		case "equivalence":
			if r.Violations != 0 {
				t.Errorf("checker found %d violations", r.Violations)
			}
		case "soak":
			if !r.ColdStartOK {
				t.Error("cold start did not come back from the verified checkpoint")
			}
			if r.CheckpointB == 0 {
				t.Error("no durable checkpoint written")
			}
			// O(tail): the records replayed at cold start are bounded by the
			// private journal's checkpoint threshold, not by soak length.
			if r.ColdStartTail > 10000 {
				t.Errorf("cold start replayed %d records; tail is not bounded", r.ColdStartTail)
			}
		}
	}
}
