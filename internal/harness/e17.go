package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/fleet"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
)

// E17Row is one arm of the horizontal-saturation sweep: the same
// constraint workload as E16 (copy, chain, and conditioned rules over
// independent base families) driven through a fleet of N shells with
// consistent-hash ownership instead of one multi-worker shell.
// JSON-ready for BENCH_E14.json's "e17" key.
type E17Row struct {
	Shells       int     `json:"shells"` // fleet member count
	Bases        int     `json:"bases"`  // independent base families (each carries 3 rules)
	Rules        int     `json:"rules"`  // total rules sharded across the fleet
	Events       int     `json:"events"` // external updates posted through fleet ingress
	Recorded     int     `json:"recorded"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Moved        int     `json:"moved"`      // bases moved by the mid-run rebalance (0 in static arms)
	Violations   int     `json:"violations"` // Appendix A.2 checker findings (must be 0)
}

// e17Grid sweeps shell count × constraint count, plus one arm that
// grows the fleet by a member and rebalances at the halfway point while
// the workload keeps running.
var e17Grid = []struct {
	shells, bases int
	rebalance     bool
}{
	{1, 64, false}, {2, 64, false}, {4, 64, false}, {8, 64, false}, {4, 8, false},
	{3, 64, true},
}

// E17Rows runs the horizontal-saturation sweep.  Every shell runs the
// serial engine (Workers 0) so the measured axis is fleet width, not
// in-shell parallelism; every arm's shared trace is validated against
// the Appendix A.2 checker.
func E17Rows(events int) []E17Row {
	e17Run(2, 8, 200, false) // warm-up: page in code and allocator state
	var rows []E17Row
	for _, g := range e17Grid {
		rows = append(rows, e17Run(g.shells, g.bases, events, g.rebalance))
	}
	return rows
}

// e17Spec builds the fleet workload: per base family, a copy rule
// (Ws X→W Y), a chain rule (W Y→W Z), and a conditioned rule whose
// guard reads a per-family private C — per-family rather than E16's
// shared G0, because a shared condition base would co-locate every
// family on one shard (condition reads live with the trigger base).
func e17Spec(bases int) (*rule.Spec, data.Interpretation) {
	var b strings.Builder
	b.WriteString("site S\n")
	for i := 0; i < bases; i++ {
		fmt.Fprintf(&b, "private X%d @ S\nprivate Y%d @ S\nprivate Z%d @ S\nprivate Q%d @ S\nprivate C%d @ S\n", i, i, i, i, i)
		fmt.Fprintf(&b, "rule c%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule k%d: W(Y%d, b) ->5s W(Z%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule g%d: Ws(X%d, b) && C%d = 0 ->5s W(Q%d, b)\n", i, i, i, i)
	}
	sp, err := rule.ParseSpecString(b.String())
	must(err)
	initial := data.NewInterpretation()
	for i := 0; i < bases; i++ {
		for _, fam := range []string{"X", "Y", "Z", "Q", "C"} {
			initial.Set(data.Item(fmt.Sprintf("%s%d", fam, i)), data.NewInt(0))
		}
	}
	return sp, initial
}

// e17Run measures one arm.  The fleet rides the real clock (mesh
// deliveries are timer callbacks) with a zero-latency in-process bus,
// so wall time is dominated by engine + routing work, not modelled
// latency.
func e17Run(shells, bases, events int, rebalance bool) E17Row {
	sp, initial := e17Spec(bases)
	members := make([]string, shells)
	for i := range members {
		members[i] = fmt.Sprintf("shard-%d", i+1)
	}
	f, err := fleet.New(sp, fleet.Options{
		Members: members,
		Trace:   trace.NewSharded(initial, shells+1),
		Metrics: obs.NewRegistry(),
	})
	must(err)
	must(f.Start())
	defer f.Stop()
	for i := 0; i < bases; i++ {
		must(f.WriteAux(data.Item(fmt.Sprintf("C%d", i)), data.NewInt(0)))
	}

	feeders := shells
	if feeders > bases {
		feeders = bases
	}
	perFeeder := events / feeders
	// post drives one slice of each feeder's round quota [lo, hi).
	post := func(fi, lo, hi int) {
		fLo, fHi := fi*bases/feeders, (fi+1)*bases/feeders
		span := fHi - fLo
		for e := lo; e < hi; e++ {
			i := e % span
			v := int64(e/span + 1)
			must(f.Post(data.Item(fmt.Sprintf("X%d", fLo+i)),
				data.NewInt(v-1), data.NewInt(v)))
		}
	}
	moved := 0
	start := time.Now()
	run := func(lo, hi int) {
		var wg sync.WaitGroup
		for fi := 0; fi < feeders; fi++ {
			wg.Add(1)
			go func(fi int) {
				defer wg.Done()
				post(fi, lo, hi)
			}(fi)
		}
		wg.Wait()
	}
	if rebalance {
		run(0, perFeeder/2)
		joined := fmt.Sprintf("shard-%d", shells+1)
		must(f.AddShell(joined, 0))
		rep, err := f.Rebalance(append(members, joined))
		must(err)
		moved = len(rep.Moves)
		run(perFeeder/2, perFeeder)
	} else {
		run(0, perFeeder)
	}
	f.Drain()
	wall := time.Since(start)

	tr := f.Trace()
	recorded := tr.Len()
	violations := len(f.CheckTrace())
	n := float64(recorded)
	return E17Row{
		Shells: shells, Bases: bases, Rules: len(sp.Rules),
		Events: perFeeder * feeders, Recorded: recorded,
		EventsPerSec: n / wall.Seconds(),
		NsPerEvent:   float64(wall.Nanoseconds()) / n,
		Moved:        moved,
		Violations:   violations,
	}
}

// E17 renders the horizontal-saturation sweep as an experiment table,
// with a scaling column relative to the 1-shell baseline.
func E17(events int) Table {
	tbl := Table{
		ID:    "E17",
		Title: "Horizontal saturation: fleet throughput vs shell count (with one live rebalance)",
		Ref:   "DESIGN.md section 10 fleet model; ROADMAP production-scale north-star",
		Columns: []string{"shells", "bases", "rules", "events", "recorded",
			"events/sec", "ns/event", "scaling", "moved", "trace"},
	}
	rows := E17Rows(events)
	var base float64
	for _, r := range rows {
		if r.Shells == 1 {
			base = r.EventsPerSec
			break
		}
	}
	for _, r := range rows {
		scaling := "n/a"
		if base > 0 {
			scaling = fmt.Sprintf("%.2fx", r.EventsPerSec/base)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Shells), fmt.Sprint(r.Bases), fmt.Sprint(r.Rules),
			fmt.Sprint(r.Events), fmt.Sprint(r.Recorded),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.0f", r.NsPerEvent),
			scaling,
			fmt.Sprint(r.Moved),
			fmt.Sprintf("%d violations", r.Violations),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("host has %d CPU(s); all fleet members share this process, so on a 1-CPU host", runtime.NumCPU()),
		"adding shells adds routing overhead without adding compute — scaling < 1x is the honest",
		"expectation there, and the value of these arms is the zero-violation column: ownership",
		"routing, cross-shard fires, and the mid-run rebalance preserve every Appendix A.2 property.",
		"on a multi-core host the shells>1 arms spread base families across real cores and the",
		"scaling column becomes a genuine horizontal-scaling curve (bounded by cross-shard",
		"fire traffic on the Y-chain, which always crosses the mesh).")
	return tbl
}
