// Package harness reproduces every scenario the paper's evaluation rests
// on (Sections 3.3, 4.2, 5, 6 and Figures 1–2) as runnable experiments.
// Each experiment builds a deployment, drives a workload, validates the
// recorded execution against Appendix A.2, checks the claimed guarantees,
// and reports a table.  cmd/cmbench prints the tables; EXPERIMENTS.md
// records them; the root bench_test.go wraps them as Go benchmarks.
package harness

import (
	"fmt"
	"strings"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// Table is one experiment's result.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Title   string
	Ref     string // paper section reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", t.ID, t.Title, t.Ref)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// holdsMark renders a guarantee outcome.
func holdsMark(holds bool) string {
	if holds {
		return "holds"
	}
	return "FAILS"
}

// fmtDur renders a duration compactly: sub-10ms values keep microsecond
// precision so real-clock latencies do not round to zero.
func fmtDur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// ---- deployment builders ----

// relRIDNotify is the Section 4.2 site-A configuration (notify interface).
const relRIDNotify = `
kind relstore
site %s
item %s
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(%s(n), b) ->2s N(%s(n), b)
interface RR(%s(n)) && %s(n) = b ->1s R(%s(n), b)
`

// relRIDReadOnly drops the notify interface (the interface change of
// Section 4.2.3).
const relRIDReadOnly = `
kind relstore
site %s
item %s
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface RR(%s(n)) && %s(n) = b ->1s R(%s(n), b)
`

// relRIDWritable is the Section 4.2 site-B configuration.
const relRIDWritable = `
kind relstore
site %s
item %s
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface WR(%s(n), b) ->3s W(%s(n), b)
`

func notifyRID(site, base string) *rid.Config {
	cfg, err := rid.ParseString(fmt.Sprintf(relRIDNotify, site, base, base, base, base, base, base))
	if err != nil {
		panic(err)
	}
	return cfg
}

func readOnlyRID(site, base string) *rid.Config {
	cfg, err := rid.ParseString(fmt.Sprintf(relRIDReadOnly, site, base, base, base, base))
	if err != nil {
		panic(err)
	}
	return cfg
}

func writableRID(site, base string) *rid.Config {
	cfg, err := rid.ParseString(fmt.Sprintf(relRIDWritable, site, base, base, base))
	if err != nil {
		panic(err)
	}
	return cfg
}

func newEmployeesDB(name string) *relstore.DB {
	db := relstore.New(name)
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))"); err != nil {
		panic(err)
	}
	return db
}

// payroll is one assembled copy-constraint deployment.
type payroll struct {
	tk  *core.Toolkit
	clk *vclock.Virtual
	dbA *relstore.DB
	dbB *relstore.DB
	// notifyA reports whether A's writes are CM-visible; when false the
	// driver records spontaneous writes itself.
	notifyA bool
}

func (p *payroll) appWrite(key string, val int64) {
	item := data.Item("salary1", data.NewString(key))
	var old data.Value
	res, _ := p.dbA.Exec("SELECT salary FROM employees WHERE empid = '" + key + "'")
	if len(res.Rows) == 1 {
		old = res.Rows[0][0]
		p.dbA.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = '%s'", val, key))
	} else {
		p.dbA.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('%s', %d)", key, val))
	}
	if !p.notifyA {
		p.tk.RecordSpontaneous("A", item, old, data.NewInt(val))
	}
}

// propagationStats measures, for each distinct value X took, the delay
// until Y reflected it; lost counts values never reflected before the
// horizon minus settle.
func propagationStats(tr *trace.Trace, xBase, yBase string, settle time.Duration) (delays []time.Duration, lost int) {
	// Pair keys as the guarantee checkers do.
	keys := map[string][]data.Value{}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() && (e.Desc.Item.Base == xBase || e.Desc.Item.Base == yBase) {
			keys[data.ItemName{Base: "", Args: e.Desc.Item.Args}.String()] = e.Desc.Item.Args
		}
	}
	horizon := tr.End().Add(-settle)
	for _, args := range keys {
		x := data.ItemName{Base: xBase, Args: args}
		y := data.ItemName{Base: yBase, Args: args}
		ytl := tr.Timeline(y)
		for _, xs := range tr.Timeline(x) {
			if xs.V.IsNull() || xs.At.After(horizon) {
				continue
			}
			found := false
			for _, ys := range ytl {
				after := ys.At.After(xs.At) || (ys.At.Equal(xs.At) && ys.Seq > xs.Seq)
				if after && ys.V.Equal(xs.V) {
					delays = append(delays, ys.At.Sub(xs.At))
					found = true
					break
				}
			}
			if !found {
				lost++
			}
		}
	}
	return delays, lost
}

// countMatching counts trace events matching a template source string.
func countMatching(tr *trace.Trace, tplSrc string) int {
	tpl, err := rule.ParseTemplate(tplSrc)
	if err != nil {
		panic(err)
	}
	return len(tr.Matching(tpl))
}

// guaranteeSummary renders "name=holds" pairs.
func guaranteeSummary(reports []guarantee.Report) string {
	parts := make([]string, len(reports))
	for i, r := range reports {
		parts[i] = fmt.Sprintf("%s=%s", shortName(r.Guarantee), holdsMark(r.Holds))
	}
	return strings.Join(parts, " ")
}

func shortName(full string) string {
	if i := strings.IndexByte(full, '('); i > 0 {
		return full[:i]
	}
	return full
}
