package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// E16Row is one arm of the core-scaling sweep, JSON-ready for
// BENCH_E14.json (committed alongside the E14 saturation rows so the
// serial baseline and the parallel trajectory live in one file).
type E16Row struct {
	Procs        int     `json:"procs"`  // GOMAXPROCS and shell worker count (1 = serial engine)
	Bases        int     `json:"bases"`  // independent base families (each carries 3 rules)
	Rules        int     `json:"rules"`  // total rules on the shell
	Events       int     `json:"events"` // external updates driven through the shell
	Recorded     int     `json:"recorded"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Violations   int     `json:"violations"` // Appendix A.2 checker findings (must be 0)
}

// e16Grid is the procs×bases sweep.  Base count scales the available
// parallelism (units for distinct bases never share a partition
// footprint except through the shared condition base G0); the procs axis
// is the scaling curve itself.
var e16Grid = []struct{ procs, bases int }{
	{1, 64}, {2, 64}, {4, 64}, {8, 64}, {8, 8},
}

// E16Rows runs the core-scaling sweep.  Each arm pins GOMAXPROCS, builds
// a mixed-constraint strategy (copy X→Y, chain Y→Z, and a conditioned
// rule reading the shared base G0), and drives `events` external updates
// from `procs` feeder goroutines over disjoint base slices.  procs = 1
// uses the classic serial engine, so the first row is the baseline the
// speedup column is computed against.  Every arm's trace is validated
// against the Appendix A.2 checker.
func E16Rows(events int) []E16Row {
	e16Run(2, 8, 200) // warm-up: page in code and allocator state
	var rows []E16Row
	for _, g := range e16Grid {
		rows = append(rows, e16Run(g.procs, g.bases, events))
	}
	return rows
}

// e16Run measures one arm of the sweep.
func e16Run(procs, bases, events int) E16Row {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	clk := vclock.NewVirtual(vclock.Epoch)
	var spec strings.Builder
	spec.WriteString("site S\nprivate G0 @ S\n")
	for i := 0; i < bases; i++ {
		fmt.Fprintf(&spec, "private X%d @ S\nprivate Y%d @ S\nprivate Z%d @ S\nprivate Q%d @ S\n", i, i, i, i)
		fmt.Fprintf(&spec, "rule c%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
		fmt.Fprintf(&spec, "rule k%d: W(Y%d, b) ->5s W(Z%d, b)\n", i, i, i)
		fmt.Fprintf(&spec, "rule g%d: Ws(X%d, b) && G0 = 0 ->5s W(Q%d, b)\n", i, i, i)
	}
	sp, err := rule.ParseSpecString(spec.String())
	must(err)
	initial := data.NewInterpretation()
	initial.Set(data.Item("G0"), data.NewInt(0))
	for i := 0; i < bases; i++ {
		for _, fam := range []string{"X", "Y", "Z", "Q"} {
			initial.Set(data.Item(fmt.Sprintf("%s%d", fam, i)), data.NewInt(0))
		}
	}
	sh := shell.New("s", sp, shell.Options{Clock: clk, Workers: procs,
		Trace: trace.NewSharded(initial, procs)})
	sh.AddSite("S", nil)
	sh.WriteAux(data.Item("G0"), data.NewInt(0))
	must(sh.Start())
	defer sh.Stop()

	// Feeders own disjoint base slices so per-base value order is
	// deterministic without cross-feeder coordination.
	feeders := procs
	if feeders > bases {
		feeders = bases
	}
	perFeeder := events / feeders
	start := time.Now()
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			lo, hi := f*bases/feeders, (f+1)*bases/feeders
			span := hi - lo
			counters := make([]int64, span)
			for e := 0; e < perFeeder; e++ {
				i := e % span
				counters[i]++
				sh.Spontaneous(data.Item(fmt.Sprintf("X%d", lo+i)),
					data.NewInt(counters[i]-1), data.NewInt(counters[i]))
			}
		}(f)
	}
	wg.Wait()
	sh.Drain()
	wall := time.Since(start)

	tr := sh.Trace()
	recorded := tr.Len()
	checker := trace.NewChecker(append(sp.Rules, sh.ImplicitRules()...))
	violations := len(checker.Check(tr))
	n := float64(recorded)
	return E16Row{
		Procs: procs, Bases: bases, Rules: len(sp.Rules),
		Events: perFeeder * feeders, Recorded: recorded,
		EventsPerSec: n / wall.Seconds(),
		NsPerEvent:   float64(wall.Nanoseconds()) / n,
		Violations:   violations,
	}
}

// E16 renders the core-scaling sweep as an experiment table, with a
// speedup column relative to the serial (procs = 1) baseline.
func E16(events int) Table {
	tbl := Table{
		ID:    "E16",
		Title: "Core scaling: partitioned engine throughput vs GOMAXPROCS",
		Ref:   "DESIGN.md section 9 concurrency model; ROADMAP production-scale north-star",
		Columns: []string{"procs", "bases", "rules", "events", "recorded",
			"events/sec", "ns/event", "speedup", "trace"},
	}
	rows := E16Rows(events)
	var base float64
	for _, r := range rows {
		if r.Procs == 1 {
			base = r.EventsPerSec
			break
		}
	}
	for _, r := range rows {
		speedup := "n/a"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", r.EventsPerSec/base)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.Procs), fmt.Sprint(r.Bases), fmt.Sprint(r.Rules),
			fmt.Sprint(r.Events), fmt.Sprint(r.Recorded),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.0f", r.NsPerEvent),
			speedup,
			fmt.Sprintf("%d violations", r.Violations),
		})
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("host has %d CPU(s); speedups only materialize when GOMAXPROCS procs", runtime.NumCPU()),
		"are backed by real cores — on a 1-CPU host all arms collapse to serial throughput.",
		"expected shape on a multi-core host: near-linear scaling while bases >> procs (disjoint",
		"partition footprints), flattening as bases approach procs (footprint collisions on the",
		"shared condition base G0 serialize colliding units at the ordered two-phase acquire)")
	return tbl
}
