package rule_test

import (
	"fmt"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
)

// ExampleParseRule parses the paper's cached-propagation strategy rule
// and shows its normalized form.
func ExampleParseRule() {
	r, err := rule.ParseRule("cache: N(X, b) ->5s (Cx != b)? WR(Y, b), W(Cx, b)")
	if err != nil {
		panic(err)
	}
	fmt.Println(r)
	// Output:
	// cache: N(X, b) ->5s (Cx != b)? WR(Y, b), W(Cx, b)
}

// ExampleParseExpr evaluates the Section 3.1.1 conditional-notify filter.
func ExampleParseExpr() {
	cond, err := rule.ParseExpr("abs(b - a) > 0.1 * a")
	if err != nil {
		panic(err)
	}
	env := rule.MapEnv{Params: event.Bindings{
		"a": data.NewFloat(100),
		"b": data.NewFloat(120),
	}}
	ok, _ := rule.EvalBool(cond, env)
	fmt.Println("20% change notifies:", ok)
	// Output:
	// 20% change notifies: true
}
