package rule

import (
	"fmt"
	"strings"
	"time"

	"cmtk/internal/event"
)

// Step is one right-hand-side element Ci?𝓔i of a rule: an optional guard
// condition evaluated at the site of the effect, and the event template to
// instantiate when the guard holds.
//
// ValExpr, when non-nil, computes the effect's value slot from data local
// to the effect site at firing time (written eval(...) in the concrete
// syntax); Eff.ValT is then a wildcard placeholder.  This extends the
// paper's language just enough to express the Section 7.1 decomposition
// of arithmetic constraints like X = Y + Z into copy constraints plus a
// local recomputation:
//
//	rule cy: N(Y, b) ->2s W(Yc, b), W(X, eval(Yc + Zc))
type Step struct {
	Cond    Expr // nil means unconditional
	Eff     event.Template
	ValExpr Expr // nil means the template's value term is used
}

// String renders the step in concrete syntax.
func (s Step) String() string {
	eff := s.Eff.String()
	if s.ValExpr != nil {
		eff = renderEvalEffect(s.Eff, s.ValExpr)
	}
	if s.Cond == nil {
		return eff
	}
	return "(" + condBody(s.Cond) + ")? " + eff
}

// renderEvalEffect prints op(item, eval(expr)).
func renderEvalEffect(t event.Template, e Expr) string {
	return fmt.Sprintf("%s(%s, eval(%s))", t.Op, t.Item, condBody(e))
}

// Rule is the general rule form of Appendix A.1:
//
//	𝓔0 ∧ C0 →δ C1?𝓔1, …, Ck?𝓔k
//
// Interface statements are rules with exactly one unconditional step.
// Steps execute in order at a single site within δ of the triggering
// event; a step whose condition is false is skipped (the rule as a whole
// still "fired").
type Rule struct {
	ID    string
	LHS   event.Template
	Cond  Expr // C0, evaluated at the LHS site when the LHS event occurs; nil = true
	Delta time.Duration
	Steps []Step
}

// String renders the rule in the concrete syntax accepted by ParseRule.
func (r Rule) String() string {
	var b strings.Builder
	if r.ID != "" {
		b.WriteString(r.ID)
		b.WriteString(": ")
	}
	b.WriteString(r.LHS.String())
	if r.Cond != nil {
		b.WriteString(" && (")
		b.WriteString(condBody(r.Cond))
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " ->%s ", FormatDelta(r.Delta))
	for i, s := range r.Steps {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// condBody strips one redundant outer parenthesis layer that Binary.String
// would otherwise double up.
func condBody(e Expr) string {
	s := e.String()
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		// Only strip when the outer parens actually match each other.
		depth := 0
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 && i != len(s)-1 {
					return s
				}
			}
		}
		return s[1 : len(s)-1]
	}
	return s
}

// FormatDelta renders a duration in the rule syntax: integral seconds as
// "5s", sub-second as milliseconds, otherwise Go syntax.
func FormatDelta(d time.Duration) string {
	if d == 0 {
		return "0s"
	}
	if d%time.Second == 0 {
		return fmt.Sprintf("%ds", d/time.Second)
	}
	if d%time.Millisecond == 0 {
		return fmt.Sprintf("%dms", d/time.Millisecond)
	}
	return d.String()
}

// Validate checks the static well-formedness conditions of Appendix A.1:
// the rule has at least one step; every parameter used on the RHS (in
// guards or effect templates) is bound by the LHS template; F never
// appears on the LHS in strategy position (it may — a no-spontaneous-write
// interface statement has F on the RHS, which is fine); and the LHS
// condition only uses LHS-bound parameters.
func (r Rule) Validate() error {
	if len(r.Steps) == 0 {
		return fmt.Errorf("rule %s: no right-hand side steps", r.ID)
	}
	if r.Delta < 0 {
		return fmt.Errorf("rule %s: negative delta", r.ID)
	}
	bound := map[string]bool{"now": true} // reserved: bound to the current time at firing
	for _, p := range r.LHS.Params() {
		bound[p] = true
	}
	// Equality conjuncts in the LHS condition bind additional parameters,
	// as in the Read interface RR(X) ∧ (X = b) →ε R(X, b).
	binders := map[string]bool{}
	for _, p := range CondBinders(r.Cond) {
		binders[p] = true
	}
	for _, p := range ExprParams(r.Cond) {
		if !bound[p] && !binders[p] {
			return fmt.Errorf("rule %s: LHS condition uses parameter %q not bound by the LHS event", r.ID, p)
		}
	}
	for p := range binders {
		bound[p] = true
	}
	for i, s := range r.Steps {
		for _, p := range ExprParams(s.Cond) {
			if !bound[p] {
				return fmt.Errorf("rule %s: step %d condition uses unbound parameter %q", r.ID, i+1, p)
			}
		}
		for _, p := range ExprParams(s.ValExpr) {
			if !bound[p] {
				return fmt.Errorf("rule %s: step %d value expression uses unbound parameter %q", r.ID, i+1, p)
			}
		}
		if s.ValExpr != nil && !s.Eff.Op.HasValue() {
			return fmt.Errorf("rule %s: step %d: %s events carry no value for eval(...)", r.ID, i+1, s.Eff.Op)
		}
		if s.Eff.Op == event.OpF {
			continue // F on the RHS expresses "must never happen"
		}
		for _, p := range s.Eff.Params() {
			if !bound[p] {
				return fmt.Errorf("rule %s: step %d effect uses unbound parameter %q", r.ID, i+1, p)
			}
		}
	}
	return nil
}

// IsInterfaceStatement reports whether the rule has the restricted
// interface-statement shape of Section 3.1: a single step.
func (r Rule) IsInterfaceStatement() bool { return len(r.Steps) == 1 }

// EffectSites is a helper constraint from Appendix A.1 footnote 7: all RHS
// events of a rule occur at the same site.  Site resolution lives in the
// catalog (strategy/shell layer); this accessor exposes the effect item
// bases so callers can check it.
func (r Rule) EffectItemBases() []string {
	var bases []string
	for _, s := range r.Steps {
		if s.Eff.Op.HasItem() {
			bases = append(bases, s.Eff.Item.Base)
		}
	}
	return bases
}

// Spec is a parsed specification file: the sites, the item→site catalog,
// CM-private items, and the rules.  The same format serves Strategy
// Specifications and the interface-statement section of CM-RIDs
// (Section 4.1).
type Spec struct {
	Sites   []string          // declared sites, in order
	Items   map[string]string // item base name → site
	Private map[string]string // CM-private item base → owning shell site
	Rules   []Rule
	// Guarantees holds guarantee declarations in their textual form
	// ("follows(salary1, salary2)").  The rule package stores them
	// verbatim; package guarantee parses and checks them — deployments
	// and cmctl consume the declarations from here.
	Guarantees []string

	// byID indexes Rules by ID for O(1) RuleByID on the per-message
	// receive path.  Built by Index (the parser calls it); every hit is
	// validated against Rules so a spec whose Rules were appended to after
	// indexing still answers correctly via the scan fallback.
	byID map[string]int
}

// Index (re)builds the rule-ID lookup index.  ParseSpec calls it after
// validation; hand-assembled specs may call it once Rules are final.  Not
// safe to call concurrently with RuleByID.
func (s *Spec) Index() {
	s.byID = make(map[string]int, len(s.Rules))
	for i, r := range s.Rules {
		if r.ID != "" {
			s.byID[r.ID] = i
		}
	}
}

// NewSpec returns an empty spec.
func NewSpec() *Spec {
	return &Spec{Items: map[string]string{}, Private: map[string]string{}}
}

// SiteOf resolves the site owning an item base name, consulting items then
// private items.
func (s *Spec) SiteOf(base string) (string, bool) {
	if site, ok := s.Items[base]; ok {
		return site, true
	}
	site, ok := s.Private[base]
	return site, ok
}

// HasSite reports whether the site was declared.
func (s *Spec) HasSite(site string) bool {
	for _, x := range s.Sites {
		if x == site {
			return true
		}
	}
	return false
}

// Validate checks the spec: every item maps to a declared site, every rule
// validates, every rule's LHS item is cataloged, and all RHS effects of a
// rule resolve to one site (Appendix A.1 requires this).
func (s *Spec) Validate() error {
	for base, site := range s.Items {
		if !s.HasSite(site) {
			return fmt.Errorf("spec: item %s placed at undeclared site %s", base, site)
		}
	}
	for base, site := range s.Private {
		if !s.HasSite(site) {
			return fmt.Errorf("spec: private item %s placed at undeclared site %s", base, site)
		}
		if _, dup := s.Items[base]; dup {
			return fmt.Errorf("spec: item %s declared both database and private", base)
		}
	}
	ids := map[string]bool{}
	for _, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		if r.ID != "" {
			if ids[r.ID] {
				return fmt.Errorf("spec: duplicate rule id %q", r.ID)
			}
			ids[r.ID] = true
		}
		if r.LHS.Op.HasItem() {
			if _, ok := s.SiteOf(r.LHS.Item.Base); !ok {
				return fmt.Errorf("spec: rule %s: LHS item %s has no site", r.ID, r.LHS.Item.Base)
			}
		}
		effSite := ""
		for _, step := range r.Steps {
			if step.Eff.Op == event.OpF || !step.Eff.Op.HasItem() {
				continue
			}
			site, ok := s.SiteOf(step.Eff.Item.Base)
			if !ok {
				return fmt.Errorf("spec: rule %s: effect item %s has no site", r.ID, step.Eff.Item.Base)
			}
			if effSite == "" {
				effSite = site
			} else if effSite != site {
				return fmt.Errorf("spec: rule %s: effects span sites %s and %s; all RHS events of a rule must share one site", r.ID, effSite, site)
			}
			condItems := append(ExprItems(step.Cond), ExprItems(step.ValExpr)...)
			for _, ib := range condItems {
				condSite, ok := s.SiteOf(ib)
				if !ok {
					return fmt.Errorf("spec: rule %s: condition item %s has no site", r.ID, ib)
				}
				if condSite != site {
					return fmt.Errorf("spec: rule %s: condition reads %s at site %s but effect runs at site %s; conditions may only read data local to the effect site", r.ID, ib, condSite, site)
				}
			}
		}
	}
	return nil
}

// String renders the spec in the concrete syntax accepted by ParseSpec.
func (s *Spec) String() string {
	var b strings.Builder
	for _, site := range s.Sites {
		fmt.Fprintf(&b, "site %s\n", site)
	}
	// Deterministic order for items.
	for _, base := range sortedKeys(s.Items) {
		fmt.Fprintf(&b, "item %s @ %s\n", base, s.Items[base])
	}
	for _, base := range sortedKeys(s.Private) {
		fmt.Fprintf(&b, "private %s @ %s\n", base, s.Private[base])
	}
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "rule %s\n", r)
	}
	for _, g := range s.Guarantees {
		fmt.Fprintf(&b, "guarantee %s\n", g)
	}
	return b.String()
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

// RuleByID finds a rule by id.  Indexed specs (anything from ParseSpec)
// answer in O(1); the index is verified against Rules on every hit so
// mutation after indexing degrades to the linear scan instead of
// returning stale rules.
func (s *Spec) RuleByID(id string) (Rule, bool) {
	if i, ok := s.byID[id]; ok && i < len(s.Rules) && s.Rules[i].ID == id {
		return s.Rules[i], true
	}
	for _, r := range s.Rules {
		if r.ID == id {
			return r, true
		}
	}
	return Rule{}, false
}

// RuleRefByID is RuleByID without the copy: it returns a pointer into
// Rules, valid as long as the spec is not mutated.  The shell's receive
// path uses this so each inbound firing does not heap-allocate a Rule.
func (s *Spec) RuleRefByID(id string) (*Rule, bool) {
	if i, ok := s.byID[id]; ok && i < len(s.Rules) && s.Rules[i].ID == id {
		return &s.Rules[i], true
	}
	for i := range s.Rules {
		if s.Rules[i].ID == id {
			return &s.Rules[i], true
		}
	}
	return nil, false
}
