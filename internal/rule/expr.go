// Package rule implements the paper's rule language (Section 3 and
// Appendix A.1): conditions, interface statements, strategy rules, and a
// parser for their textual form used by Strategy Specification and CM-RID
// files.
//
// The general rule form is
//
//	𝓔0 ∧ C0 →δ C1?𝓔1, …, Ck?𝓔k
//
// written in our concrete syntax as
//
//	id: N(salary1(n), b) && (b > 0) ->5s (Cx != b)? WR(salary2(n), b), W(Cx, b)
//
// Interface statements (Section 3.1) are rules with a single unconditional
// right-hand step.  Following the paper's convention, identifiers starting
// with a lower-case letter are rule parameters and identifiers starting
// with an upper-case letter are data items; parameterized item families
// such as salary1(n) are written in call form and are items regardless of
// case.
package rule

import (
	"fmt"
	"strings"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// Env supplies the two kinds of names a condition may mention: parameters
// bound by the LHS match, and data items local to the evaluating site
// (database items or CM-private items).
type Env interface {
	// Param returns the binding of a rule parameter.
	Param(name string) (data.Value, bool)
	// Item returns the current value of a local data item; exists reports
	// whether the item is present (the E(X) predicate of Section 6.2).
	Item(n data.ItemName) (v data.Value, exists bool, err error)
}

// MapEnv is an Env backed by plain maps, for tests and simple evaluation.
type MapEnv struct {
	Params event.Bindings
	Items  data.Interpretation
}

// Param implements Env.
func (m MapEnv) Param(name string) (data.Value, bool) {
	v, ok := m.Params[name]
	return v, ok
}

// Item implements Env.
func (m MapEnv) Item(n data.ItemName) (data.Value, bool, error) {
	v, ok := m.Items[n.Key()]
	return v, ok && !v.IsNull(), nil
}

// Expr is a condition expression node.
type Expr interface {
	// Eval evaluates the expression under env.
	Eval(env Env) (data.Value, error)
	// String renders the expression in concrete syntax.
	String() string
}

// Lit is a literal value.
type Lit struct{ V data.Value }

// Eval implements Expr.
func (l Lit) Eval(Env) (data.Value, error) { return l.V, nil }
func (l Lit) String() string               { return l.V.String() }

// ParamRef references a rule parameter (lower-case identifier).
type ParamRef struct{ Name string }

// Eval implements Expr.
func (p ParamRef) Eval(env Env) (data.Value, error) {
	v, ok := env.Param(p.Name)
	if !ok {
		return data.NullValue, fmt.Errorf("rule: unbound parameter %q", p.Name)
	}
	return v, nil
}
func (p ParamRef) String() string { return p.Name }

// ItemRef references a local data item, possibly parameterized:
// Cx, X, salary1(n).  Argument expressions are evaluated first.
type ItemRef struct {
	Base string
	Args []Expr
}

// Eval implements Expr.  Reading an absent item yields null (the paper's
// "may take any value" is approximated as null, which fails comparisons).
func (r ItemRef) Eval(env Env) (data.Value, error) {
	n, err := r.Resolve(env)
	if err != nil {
		return data.NullValue, err
	}
	v, _, err := env.Item(n)
	if err != nil {
		return data.NullValue, fmt.Errorf("rule: reading %s: %w", n, err)
	}
	return v, nil
}

// Resolve evaluates the argument expressions to produce the concrete item
// name.
func (r ItemRef) Resolve(env Env) (data.ItemName, error) {
	args := make([]data.Value, len(r.Args))
	for i, a := range r.Args {
		v, err := a.Eval(env)
		if err != nil {
			return data.ItemName{}, err
		}
		args[i] = v
	}
	return data.ItemName{Base: r.Base, Args: args}, nil
}

func (r ItemRef) String() string {
	if len(r.Args) == 0 {
		return r.Base
	}
	parts := make([]string, len(r.Args))
	for i, a := range r.Args {
		parts[i] = a.String()
	}
	return r.Base + "(" + strings.Join(parts, ", ") + ")"
}

// Unary is !e or -e.
type Unary struct {
	Op byte // '!' or '-'
	X  Expr
}

// Eval implements Expr.
func (u Unary) Eval(env Env) (data.Value, error) {
	v, err := u.X.Eval(env)
	if err != nil {
		return data.NullValue, err
	}
	switch u.Op {
	case '!':
		return data.NewBool(!v.Truthy()), nil
	case '-':
		return data.Arith('-', data.NewInt(0), v)
	default:
		return data.NullValue, fmt.Errorf("rule: unknown unary operator %q", string(u.Op))
	}
}

func (u Unary) String() string { return string(u.Op) + u.X.String() }

// Binary is a binary operation.  Op is one of
// "+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "&&", "||".
type Binary struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.  Comparisons between incomparable values evaluate
// to false rather than erroring: a copy constraint between a string store
// and a numeric store is simply "not equal", not broken.
func (b Binary) Eval(env Env) (data.Value, error) {
	// Short-circuit logicals.
	switch b.Op {
	case "&&":
		l, err := b.L.Eval(env)
		if err != nil {
			return data.NullValue, err
		}
		if !l.Truthy() {
			return data.NewBool(false), nil
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return data.NullValue, err
		}
		return data.NewBool(r.Truthy()), nil
	case "||":
		l, err := b.L.Eval(env)
		if err != nil {
			return data.NullValue, err
		}
		if l.Truthy() {
			return data.NewBool(true), nil
		}
		r, err := b.R.Eval(env)
		if err != nil {
			return data.NullValue, err
		}
		return data.NewBool(r.Truthy()), nil
	}
	l, err := b.L.Eval(env)
	if err != nil {
		return data.NullValue, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return data.NullValue, err
	}
	switch b.Op {
	case "+", "-", "*", "/":
		return data.Arith(b.Op[0], l, r)
	case "=":
		return data.NewBool(l.Equal(r)), nil
	case "!=":
		return data.NewBool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c, ok := l.Compare(r)
		if !ok {
			return data.NewBool(false), nil
		}
		switch b.Op {
		case "<":
			return data.NewBool(c < 0), nil
		case "<=":
			return data.NewBool(c <= 0), nil
		case ">":
			return data.NewBool(c > 0), nil
		default:
			return data.NewBool(c >= 0), nil
		}
	default:
		return data.NullValue, fmt.Errorf("rule: unknown operator %q", b.Op)
	}
}

func (b Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// NowEnv is implemented by environments that can supply the current time
// (encoded per vclock.TimeValue) for the now() builtin and the reserved
// parameter "now".
type NowEnv interface {
	NowValue() (data.Value, bool)
}

// Call is a builtin function application: abs(e), exists(item) or now().
type Call struct {
	Fn   string
	Args []Expr
}

// Eval implements Expr.
func (c Call) Eval(env Env) (data.Value, error) {
	switch c.Fn {
	case "abs":
		if len(c.Args) != 1 {
			return data.NullValue, fmt.Errorf("rule: abs takes 1 argument, got %d", len(c.Args))
		}
		v, err := c.Args[0].Eval(env)
		if err != nil {
			return data.NullValue, err
		}
		return data.Abs(v)
	case "now":
		if len(c.Args) != 0 {
			return data.NullValue, fmt.Errorf("rule: now takes no arguments")
		}
		ne, ok := env.(NowEnv)
		if !ok {
			return data.NullValue, fmt.Errorf("rule: environment cannot supply the current time")
		}
		v, ok := ne.NowValue()
		if !ok {
			return data.NullValue, fmt.Errorf("rule: environment cannot supply the current time")
		}
		return v, nil
	case "exists":
		if len(c.Args) != 1 {
			return data.NullValue, fmt.Errorf("rule: exists takes 1 argument, got %d", len(c.Args))
		}
		ref, ok := c.Args[0].(ItemRef)
		if !ok {
			return data.NullValue, fmt.Errorf("rule: exists argument must be a data item, got %s", c.Args[0])
		}
		n, err := ref.Resolve(env)
		if err != nil {
			return data.NullValue, err
		}
		_, exists, err := env.Item(n)
		if err != nil {
			return data.NullValue, fmt.Errorf("rule: exists(%s): %w", n, err)
		}
		return data.NewBool(exists), nil
	default:
		return data.NullValue, fmt.Errorf("rule: unknown function %q", c.Fn)
	}
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// EvalBool evaluates e as a condition; a nil expression is vacuously true
// (the paper permits omitting conditions).
func EvalBool(e Expr, env Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// ExprParams collects the parameter names referenced anywhere in e.
func ExprParams(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case Lit:
		case ParamRef:
			seen[x.Name] = true
		case ItemRef:
			for _, a := range x.Args {
				walk(a)
			}
		case Unary:
			walk(x.X)
		case Binary:
			walk(x.L)
			walk(x.R)
		case Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	return out
}

// ExprItems collects the item base names referenced anywhere in e.
func ExprItems(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case Lit, ParamRef:
		case ItemRef:
			seen[x.Base] = true
			for _, a := range x.Args {
				walk(a)
			}
		case Unary:
			walk(x.X)
		case Binary:
			walk(x.L)
			walk(x.R)
		case Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	return out
}

// CondBinders returns the parameters that a left-hand-side condition can
// bind through top-level equality conjuncts, as in the paper's Read
// interface RR(X) ∧ (X = b) →ε R(X, b): the conjunct (X = b) binds b to
// the current value of X.  A parameter is a binder when it appears alone
// on one side of an "=" conjunct.
func CondBinders(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		b, ok := e.(Binary)
		if !ok {
			return
		}
		switch b.Op {
		case "&&":
			walk(b.L)
			walk(b.R)
		case "=":
			if p, ok := b.L.(ParamRef); ok {
				out = append(out, p.Name)
			}
			if p, ok := b.R.(ParamRef); ok {
				out = append(out, p.Name)
			}
		}
	}
	walk(e)
	return out
}

// EvalCondBinding evaluates an LHS condition with binding semantics: when
// a top-level "=" conjunct has an unbound parameter on one side, the other
// side is evaluated and the parameter is bound to its value in b (and the
// conjunct is then true).  All other subexpressions evaluate normally
// under env, which must expose b as its parameter source.
func EvalCondBinding(e Expr, env Env, b event.Bindings) (bool, error) {
	if e == nil {
		return true, nil
	}
	bin, ok := e.(Binary)
	if !ok {
		return EvalBool(e, env)
	}
	switch bin.Op {
	case "&&":
		l, err := EvalCondBinding(bin.L, env, b)
		if err != nil || !l {
			return false, err
		}
		return EvalCondBinding(bin.R, env, b)
	case "=":
		if p, ok := bin.L.(ParamRef); ok {
			if _, bound := env.Param(p.Name); !bound {
				v, err := bin.R.Eval(env)
				if err != nil {
					return false, err
				}
				b[p.Name] = v
				return true, nil
			}
		}
		if p, ok := bin.R.(ParamRef); ok {
			if _, bound := env.Param(p.Name); !bound {
				v, err := bin.L.Eval(env)
				if err != nil {
					return false, err
				}
				b[p.Name] = v
				return true, nil
			}
		}
	}
	return EvalBool(e, env)
}
