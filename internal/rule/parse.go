package rule

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// parser is a recursive-descent parser over a token stream.
type parser struct {
	toks []token
	i    int
	// allowEval permits eval(expr) in the value slot of the template being
	// parsed (step effects only); the parsed expression lands in evalExpr.
	allowEval bool
	evalExpr  Expr
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tPunct && t.text == s
}

func (p *parser) eatPunct(s string) bool {
	if p.atPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return fmt.Errorf("rule: expected %q, got %s at offset %d", s, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) atEOF() bool { return p.cur().kind == tEOF }

// ParseExpr parses a condition expression.
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("rule: trailing input after expression: %s", p.cur())
	}
	return e, nil
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var cmpOps = []string{"==", "!=", "<=", ">=", "=", "<", ">"}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range cmpOps {
		if p.eatPunct(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			norm := op
			if norm == "==" {
				norm = "="
			}
			return Binary{Op: norm, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatPunct("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "+", L: l, R: r}
		case p.eatPunct("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatPunct("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "*", L: l, R: r}
		case p.eatPunct("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eatPunct("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: '!', X: x}, nil
	}
	if p.eatPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: '-', X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.next()
		if t.unit != "" {
			return nil, fmt.Errorf("rule: unexpected unit %q on number in expression at offset %d", t.unit, t.pos)
		}
		return Lit{V: t.val}, nil
	case tString:
		p.next()
		return Lit{V: t.val}, nil
	case tIdent:
		p.next()
		switch t.text {
		case "true":
			return Lit{V: data.NewBool(true)}, nil
		case "false":
			return Lit{V: data.NewBool(false)}, nil
		case "null":
			return Lit{V: data.NullValue}, nil
		}
		if p.atPunct("(") {
			p.next()
			var args []Expr
			if !p.atPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.eatPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if t.text == "abs" || t.text == "exists" || t.text == "now" {
				return Call{Fn: t.text, Args: args}, nil
			}
			return ItemRef{Base: t.text, Args: args}, nil
		}
		if isLowerInitial(t.text) {
			return ParamRef{Name: t.text}, nil
		}
		return ItemRef{Base: t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("rule: unexpected %s at offset %d", t, t.pos)
}

func isLowerInitial(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c >= 'a' && c <= 'z'
}

// ParseTemplate parses an event template such as N(salary1(n), b) or
// P(300s) or F.
func ParseTemplate(src string) (event.Template, error) {
	p, err := newParser(src)
	if err != nil {
		return event.Template{}, err
	}
	tpl, err := p.parseTemplate()
	if err != nil {
		return event.Template{}, err
	}
	if !p.atEOF() {
		return event.Template{}, fmt.Errorf("rule: trailing input after template: %s", p.cur())
	}
	return tpl, nil
}

func (p *parser) parseTemplate() (event.Template, error) {
	t := p.cur()
	if t.kind != tIdent {
		return event.Template{}, fmt.Errorf("rule: expected event name, got %s at offset %d", t, t.pos)
	}
	op := event.OpFromName(t.text)
	if op == event.OpInvalid {
		return event.Template{}, fmt.Errorf("rule: unknown event name %q at offset %d (want W, Ws, WR, RR, R, N, P or F)", t.text, t.pos)
	}
	p.next()
	if op == event.OpF {
		return event.TF(), nil
	}
	if err := p.expectPunct("("); err != nil {
		return event.Template{}, err
	}
	if op == event.OpP {
		d, err := p.parseDuration()
		if err != nil {
			return event.Template{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return event.Template{}, err
		}
		if d <= 0 {
			return event.Template{}, fmt.Errorf("rule: periodic event requires positive period")
		}
		return event.TP(d), nil
	}
	item, err := p.parseItemTemplate()
	if err != nil {
		return event.Template{}, err
	}
	tpl := event.Template{Op: op, Item: item, OldT: event.Wild()}
	if op.HasValue() {
		if err := p.expectPunct(","); err != nil {
			return event.Template{}, err
		}
		if p.allowEval && p.atEvalCall() {
			expr, err := p.parseEvalCall()
			if err != nil {
				return event.Template{}, err
			}
			p.evalExpr = expr
			tpl.ValT = event.Wild()
			if err := p.expectPunct(")"); err != nil {
				return event.Template{}, err
			}
			return tpl, nil
		}
		first, err := p.parseTerm()
		if err != nil {
			return event.Template{}, err
		}
		if op == event.OpWs && p.eatPunct(",") {
			// Three-argument form Ws(item, old, new).
			second, err := p.parseTerm()
			if err != nil {
				return event.Template{}, err
			}
			tpl.OldT = first
			tpl.ValT = second
		} else {
			tpl.ValT = first
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return event.Template{}, err
	}
	return tpl, nil
}

func (p *parser) parseItemTemplate() (event.ItemTemplate, error) {
	t := p.cur()
	if t.kind != tIdent {
		return event.ItemTemplate{}, fmt.Errorf("rule: expected item name, got %s at offset %d", t, t.pos)
	}
	p.next()
	it := event.ItemT(t.text)
	if p.eatPunct("(") {
		if !p.atPunct(")") {
			for {
				term, err := p.parseTerm()
				if err != nil {
					return event.ItemTemplate{}, err
				}
				it.Args = append(it.Args, term)
				if !p.eatPunct(",") {
					break
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return event.ItemTemplate{}, err
		}
	}
	return it, nil
}

// atEvalCall reports whether the next tokens are eval( .
func (p *parser) atEvalCall() bool {
	t := p.cur()
	return t.kind == tIdent && t.text == "eval" &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "("
}

// parseEvalCall parses eval(EXPR).
func (p *parser) parseEvalCall() (Expr, error) {
	p.next() // eval
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// parseTerm parses a template argument slot: *, a literal, or a parameter.
func (p *parser) parseTerm() (event.Term, error) {
	t := p.cur()
	switch {
	case t.kind == tPunct && t.text == "*":
		p.next()
		return event.Wild(), nil
	case t.kind == tPunct && t.text == "-":
		p.next()
		n := p.cur()
		if n.kind != tNumber || n.unit != "" {
			return event.Term{}, fmt.Errorf("rule: expected number after - at offset %d", t.pos)
		}
		p.next()
		neg, err := data.Arith('-', data.NewInt(0), n.val)
		if err != nil {
			return event.Term{}, err
		}
		return event.Lit(neg), nil
	case t.kind == tNumber:
		p.next()
		if t.unit != "" {
			return event.Term{}, fmt.Errorf("rule: unexpected unit %q in template argument at offset %d", t.unit, t.pos)
		}
		return event.Lit(t.val), nil
	case t.kind == tString:
		p.next()
		return event.Lit(t.val), nil
	case t.kind == tIdent:
		p.next()
		switch t.text {
		case "true":
			return event.Lit(data.NewBool(true)), nil
		case "false":
			return event.Lit(data.NewBool(false)), nil
		case "null":
			return event.Lit(data.NullValue), nil
		}
		return event.Param(t.text), nil
	default:
		return event.Term{}, fmt.Errorf("rule: expected template argument, got %s at offset %d", t, t.pos)
	}
}

// parseDuration parses a number with an optional unit suffix (ms, s, m, h,
// d); a bare number means seconds, the paper's time unit.
func (p *parser) parseDuration() (time.Duration, error) {
	t := p.cur()
	if t.kind != tNumber {
		return 0, fmt.Errorf("rule: expected duration, got %s at offset %d", t, t.pos)
	}
	p.next()
	f, _ := t.val.AsFloat()
	var unit time.Duration
	switch t.unit {
	case "", "s":
		unit = time.Second
	case "ms":
		unit = time.Millisecond
	case "us":
		unit = time.Microsecond
	case "m":
		unit = time.Minute
	case "h":
		unit = time.Hour
	case "d":
		unit = 24 * time.Hour
	default:
		return 0, fmt.Errorf("rule: unknown duration unit %q at offset %d", t.unit, t.pos)
	}
	return time.Duration(f * float64(unit)), nil
}

// ParseRule parses one rule in concrete syntax:
//
//	[id:] TEMPLATE [&& COND] ->DELTA [(COND)?] TEMPLATE {, [(COND)?] TEMPLATE}
func ParseRule(src string) (Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return Rule{}, err
	}
	r, err := p.parseRule()
	if err != nil {
		return Rule{}, err
	}
	if !p.atEOF() {
		return Rule{}, fmt.Errorf("rule: trailing input after rule: %s", p.cur())
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func (p *parser) parseRule() (Rule, error) {
	var r Rule
	// Optional "id:" prefix — an identifier followed by a colon that is not
	// an event name opening paren.
	if p.cur().kind == tIdent && p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == ":" {
		r.ID = p.next().text
		p.next() // colon
	}
	lhs, err := p.parseTemplate()
	if err != nil {
		return Rule{}, err
	}
	r.LHS = lhs
	if p.eatPunct("&&") {
		cond, err := p.parseExpr()
		if err != nil {
			return Rule{}, err
		}
		r.Cond = cond
	}
	if err := p.expectPunct("->"); err != nil {
		return Rule{}, err
	}
	d, err := p.parseDuration()
	if err != nil {
		return Rule{}, err
	}
	r.Delta = d
	for {
		step, err := p.parseStep()
		if err != nil {
			return Rule{}, err
		}
		r.Steps = append(r.Steps, step)
		if !p.eatPunct(",") {
			break
		}
	}
	return r, nil
}

func (p *parser) parseStep() (Step, error) {
	var s Step
	if p.atPunct("(") {
		// Guarded step: ( EXPR ) ? TEMPLATE
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return Step{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Step{}, err
		}
		if err := p.expectPunct("?"); err != nil {
			return Step{}, err
		}
		s.Cond = cond
	}
	p.allowEval = true
	p.evalExpr = nil
	eff, err := p.parseTemplate()
	p.allowEval = false
	if err != nil {
		return Step{}, err
	}
	s.Eff = eff
	s.ValExpr = p.evalExpr
	p.evalExpr = nil
	return s, nil
}

// ParseSpec parses a specification file (strategy specification or the
// interface section of a CM-RID).  The format is line-oriented:
//
//	# comment
//	site A
//	site B
//	item salary1 @ A
//	item salary2 @ B
//	private Cx @ A
//	rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
//
// The parsed spec is validated before being returned.
func ParseSpec(r io.Reader) (*Spec, error) {
	spec := NewSpec()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		word, rest := splitWord(line)
		switch word {
		case "site":
			name := strings.TrimSpace(rest)
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("rule: line %d: site wants exactly one name", lineNo)
			}
			if spec.HasSite(name) {
				return nil, fmt.Errorf("rule: line %d: duplicate site %s", lineNo, name)
			}
			spec.Sites = append(spec.Sites, name)
		case "item", "private":
			base, site, err := parsePlacement(rest)
			if err != nil {
				return nil, fmt.Errorf("rule: line %d: %w", lineNo, err)
			}
			m := spec.Items
			if word == "private" {
				m = spec.Private
			}
			if _, dup := spec.Items[base]; dup {
				return nil, fmt.Errorf("rule: line %d: duplicate item %s", lineNo, base)
			}
			if _, dup := spec.Private[base]; dup {
				return nil, fmt.Errorf("rule: line %d: duplicate item %s", lineNo, base)
			}
			m[base] = site
		case "guarantee":
			if rest == "" {
				return nil, fmt.Errorf("rule: line %d: guarantee wants a declaration", lineNo)
			}
			spec.Guarantees = append(spec.Guarantees, rest)
		case "rule":
			rl, err := ParseRule(rest)
			if err != nil {
				return nil, fmt.Errorf("rule: line %d: %w", lineNo, err)
			}
			if rl.ID == "" {
				rl.ID = fmt.Sprintf("r%d", len(spec.Rules)+1)
			}
			spec.Rules = append(spec.Rules, rl)
		default:
			return nil, fmt.Errorf("rule: line %d: unknown directive %q", lineNo, word)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rule: reading spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Index()
	return spec, nil
}

// ParseSpecString parses a specification from a string.
func ParseSpecString(s string) (*Spec, error) {
	return ParseSpec(strings.NewReader(s))
}

func splitWord(s string) (word, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// parsePlacement parses "base @ site".
func parsePlacement(s string) (base, site string, err error) {
	parts := strings.Split(s, "@")
	if len(parts) != 2 {
		return "", "", fmt.Errorf("placement wants \"base @ site\", got %q", s)
	}
	base = strings.TrimSpace(parts[0])
	site = strings.TrimSpace(parts[1])
	if base == "" || site == "" {
		return "", "", fmt.Errorf("placement wants \"base @ site\", got %q", s)
	}
	return base, site, nil
}
