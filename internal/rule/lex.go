package rule

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"cmtk/internal/data"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct
)

// token is one lexical token.  Numbers carry their parsed value and any
// attached unit suffix ("5s" lexes as one number token with unit "s").
type token struct {
	kind tokKind
	text string     // identifier text or punct text
	val  data.Value // for tNumber and tString
	unit string     // for tNumber: attached unit letters, "" if none
	pos  int        // byte offset, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tNumber:
		return fmt.Sprintf("number %q", t.text+t.unit)
	case tString:
		return fmt.Sprintf("string %s", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes one logical line of rule-language input.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// multi-character punctuation, longest first.
var multiPunct = []string{"->", "&&", "||", "==", "!=", "<=", ">="}

// lex tokenizes src fully, returning an error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		switch {
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(false); err != nil {
				return nil, err
			}
		case isIdentStart(r):
			l.lexIdent()
		default:
			matched := false
			for _, mp := range multiPunct {
				if strings.HasPrefix(l.src[l.pos:], mp) {
					l.toks = append(l.toks, token{kind: tPunct, text: mp, pos: start})
					l.pos += len(mp)
					matched = true
					break
				}
			}
			if matched {
				break
			}
			switch c {
			case '(', ')', ',', '?', ':', '*', '+', '-', '/', '<', '>', '=', '!', '@':
				l.toks = append(l.toks, token{kind: tPunct, text: string(c), pos: start})
				l.pos++
			default:
				return nil, fmt.Errorf("rule: unexpected character %q at offset %d", string(c), start)
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.pos++
			continue
		}
		if c == '#' || strings.HasPrefix(l.src[l.pos:], "//") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '"':
			l.pos++
			raw := l.src[start:l.pos]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return fmt.Errorf("rule: bad string literal at offset %d: %w", start, err)
			}
			l.toks = append(l.toks, token{kind: tString, val: data.NewString(s), pos: start})
			return nil
		default:
			l.pos++
		}
	}
	return fmt.Errorf("rule: unterminated string at offset %d", start)
}

func (l *lexer) lexNumber(neg bool) error {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	text := l.src[start:l.pos]
	// Attach a unit suffix of letters directly following the digits:
	// 5s, 300ms, 1.5m.
	unitStart := l.pos
	for l.pos < len(l.src) && isLetter(l.src[l.pos]) {
		l.pos++
	}
	unit := l.src[unitStart:l.pos]
	var v data.Value
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("rule: bad number %q at offset %d", text, start)
		}
		if neg {
			f = -f
		}
		v = data.NewFloat(f)
	} else {
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return fmt.Errorf("rule: bad number %q at offset %d", text, start)
		}
		if neg {
			i = -i
		}
		v = data.NewInt(i)
	}
	l.toks = append(l.toks, token{kind: tNumber, text: text, val: v, unit: unit, pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	l.toks = append(l.toks, token{kind: tIdent, text: l.src[start:l.pos], pos: start})
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
