package rule

import (
	"strings"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func evalIn(t *testing.T, src string, env Env) data.Value {
	t.Helper()
	v, err := mustExpr(t, src).Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestExprLiterals(t *testing.T) {
	env := MapEnv{}
	cases := map[string]data.Value{
		"42":      data.NewInt(42),
		"3.5":     data.NewFloat(3.5),
		`"hi"`:    data.NewString("hi"),
		"true":    data.NewBool(true),
		"false":   data.NewBool(false),
		"null":    data.NullValue,
		"-7":      data.NewInt(-7),
		"2 + 3*4": data.NewInt(14),
		"(2+3)*4": data.NewInt(20),
		"10/4":    data.NewFloat(2.5),
		"abs(-3)": data.NewInt(3),
	}
	for src, want := range cases {
		if got := evalIn(t, src, env); !got.Equal(want) {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestExprParamsAndItems(t *testing.T) {
	env := MapEnv{
		Params: event.Bindings{"b": data.NewInt(10), "n": data.NewString("e7")},
		Items: data.Interpretation{
			"Cx":            data.NewInt(9),
			`salary1("e7")`: data.NewInt(100),
			"X":             data.NewInt(5),
		},
	}
	cases := map[string]data.Value{
		"b":                  data.NewInt(10),
		"Cx":                 data.NewInt(9),
		"Cx != b":            data.NewBool(true),
		"X = 5":              data.NewBool(true),
		"X == 5":             data.NewBool(true),
		"salary1(n)":         data.NewInt(100),
		"salary1(n) > 50":    data.NewBool(true),
		"exists(X)":          data.NewBool(true),
		"exists(Y)":          data.NewBool(false),
		"exists(salary1(n))": data.NewBool(true),
		"b + Cx":             data.NewInt(19),
		"!(X = 5)":           data.NewBool(false),
		"X = 5 && b = 10":    data.NewBool(true),
		"X = 6 || b = 10":    data.NewBool(true),
		"X = 6 && b = 10":    data.NewBool(false),
	}
	for src, want := range cases {
		if got := evalIn(t, src, env); !got.Equal(want) {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestExprConditionalNotifyFromPaper(t *testing.T) {
	// Section 3.1.1: Ws(X, a, b) ∧ (|b − a| > 0.1·a) → N(X, b)
	cond := mustExpr(t, "abs(b - a) > 0.1 * a")
	yes := MapEnv{Params: event.Bindings{"a": data.NewFloat(100), "b": data.NewFloat(120)}}
	no := MapEnv{Params: event.Bindings{"a": data.NewFloat(100), "b": data.NewFloat(105)}}
	if ok, err := EvalBool(cond, yes); err != nil || !ok {
		t.Errorf("20%% change: %v, %v", ok, err)
	}
	if ok, err := EvalBool(cond, no); err != nil || ok {
		t.Errorf("5%% change: %v, %v", ok, err)
	}
}

func TestExprErrors(t *testing.T) {
	env := MapEnv{}
	for _, src := range []string{"b", `"x" + 1`, "1/0", "abs()", "abs(1,2)", "exists(1)"} {
		e, err := ParseExpr(src)
		if err != nil {
			continue // parse error is also acceptable rejection
		}
		if _, err := e.Eval(env); err == nil {
			t.Errorf("%s evaluated without error", src)
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, src := range []string{"", "1 +", "(1", "1 2", "§", `"unterminated`, "5s + 1"} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded", src)
		}
	}
}

func TestEvalBoolNilIsTrue(t *testing.T) {
	ok, err := EvalBool(nil, MapEnv{})
	if err != nil || !ok {
		t.Fatalf("EvalBool(nil) = %v, %v", ok, err)
	}
}

func TestIncomparableComparisonIsFalse(t *testing.T) {
	env := MapEnv{Params: event.Bindings{"b": data.NewString("x")}}
	if got := evalIn(t, "b < 3", env); got.Truthy() {
		t.Error("string < int evaluated true")
	}
	// Null item comparison is false, not an error.
	if got := evalIn(t, "Missing = 3", env); got.Truthy() {
		t.Error("null = 3 evaluated true")
	}
}

func TestParseTemplateForms(t *testing.T) {
	cases := []string{
		"W(X, b)",
		"Ws(X, b)",
		"Ws(X, a, b)",
		"WR(salary2(n), b)",
		"RR(X)",
		"R(X, b)",
		"N(salary1(n), b)",
		"P(300)",
		"F",
		"WR(Y, 5)",
		`N(phone("ann"), v)`,
		"W(X, *)",
	}
	for _, src := range cases {
		tpl, err := ParseTemplate(src)
		if err != nil {
			t.Errorf("ParseTemplate(%q): %v", src, err)
			continue
		}
		// Round-trip through String.
		tpl2, err := ParseTemplate(tpl.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", tpl.String(), err)
			continue
		}
		if tpl.String() != tpl2.String() {
			t.Errorf("round trip %q -> %q", tpl.String(), tpl2.String())
		}
	}
}

func TestParseTemplatePeriod(t *testing.T) {
	tpl, err := ParseTemplate("P(300s)")
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Period != 300*time.Second {
		t.Fatalf("period = %v", tpl.Period)
	}
	tpl, err = ParseTemplate("P(1.5m)")
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Period != 90*time.Second {
		t.Fatalf("period = %v", tpl.Period)
	}
	for _, bad := range []string{"P(0)", "P(-5)", "P(x)"} {
		if _, err := ParseTemplate(bad); err == nil {
			t.Errorf("ParseTemplate(%q) succeeded", bad)
		}
	}
}

func TestParseTemplateErrors(t *testing.T) {
	for _, bad := range []string{"", "Q(X, b)", "W(X)", "W(X b)", "RR(X, b)", "W X, b)", "W(X, b) extra"} {
		if _, err := ParseTemplate(bad); err == nil {
			t.Errorf("ParseTemplate(%q) succeeded", bad)
		}
	}
}

func TestParseRulePaperExamples(t *testing.T) {
	cases := []struct {
		src   string
		delta time.Duration
		steps int
	}{
		// Write interface: WR(X, b) →δ W(X, b)
		{"WR(X, b) ->3s W(X, b)", 3 * time.Second, 1},
		// No spontaneous write interface: Ws(X, b) → F
		{"Ws(X, b) ->0s F", 0, 1},
		// Notify interface: Ws(X, b) →δ N(X, b)
		{"Ws(X, b) ->2s N(X, b)", 2 * time.Second, 1},
		// Conditional notify: Ws(X, a, b) ∧ |b−a| > 0.1a →δ N(X, b)
		{"Ws(X, a, b) && abs(b - a) > 0.1 * a ->2s N(X, b)", 2 * time.Second, 1},
		// Periodic notify: P(300) ∧ (X = b) →ε N(X, b)
		{"P(300) && X = b ->1s N(X, b)", time.Second, 1},
		// Read interface: RR(X) ∧ (X = b) →ε R(X, b)
		{"RR(X) && X = b ->1s R(X, b)", time.Second, 1},
		// Parameterized notify interface.
		{"Ws(phone(n), b) ->2s N(phone(n), b)", 2 * time.Second, 1},
		// Copy strategy: N(X, v) →5 WR(Y, v)
		{"N(X, v) ->5s WR(Y, v)", 5 * time.Second, 1},
		// Cached forwarding with two ordered steps.
		{"cache: N(X, b) ->5s (Cx != b)? WR(Y, b), W(Cx, b)", 5 * time.Second, 2},
		// Polling strategy.
		{"P(60) ->1s RR(X)", time.Second, 1},
		{"R(X, b) ->1s WR(Y, b)", time.Second, 1},
	}
	for _, c := range cases {
		r, err := ParseRule(c.src)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.src, err)
			continue
		}
		if r.Delta != c.delta {
			t.Errorf("%q: delta = %v, want %v", c.src, r.Delta, c.delta)
		}
		if len(r.Steps) != c.steps {
			t.Errorf("%q: steps = %d, want %d", c.src, len(r.Steps), c.steps)
		}
		// Round-trip.
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Errorf("re-parse %q: %v", r.String(), err)
			continue
		}
		if r.String() != r2.String() {
			t.Errorf("round trip %q -> %q", r.String(), r2.String())
		}
	}
}

func TestParseRuleConditionalNotifyBinding(t *testing.T) {
	// Periodic notify binds b via the LHS condition (X = b).  Our language
	// requires RHS parameters to be LHS-bound, and condition-equality
	// binding is not supported, so P(300) && X = b should fail validation
	// when b is then used on the RHS... unless the parser treats the LHS
	// condition parameters as bound.  The paper's semantics (Appendix A.1)
	// says LHS variables are universally quantified including condition
	// matches, so we accept condition parameters as binders.
	r, err := ParseRule("P(300) && X = b ->1s N(X, b)")
	if err != nil {
		t.Fatalf("periodic notify rejected: %v", err)
	}
	if r.Cond == nil {
		t.Fatal("condition lost")
	}
}

func TestParseRuleGuardSiteLocality(t *testing.T) {
	r, err := ParseRule("N(X, b) ->5s (Cx != b)? WR(Y, b)")
	if err != nil {
		t.Fatal(err)
	}
	if r.Steps[0].Cond == nil {
		t.Fatal("guard lost")
	}
	if got := r.Steps[0].Eff.String(); got != "WR(Y, b)" {
		t.Fatalf("effect = %s", got)
	}
}

func TestRuleValidateUnboundParam(t *testing.T) {
	// c is not bound by the LHS.
	if _, err := ParseRule("N(X, b) ->5s WR(Y, c)"); err == nil {
		t.Error("unbound RHS parameter accepted")
	}
	if _, err := ParseRule("N(X, b) ->5s (c > 0)? WR(Y, b)"); err == nil {
		t.Error("unbound guard parameter accepted")
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"N(X, b)",             // no arrow
		"N(X, b) -> WR(Y, b)", // missing delta
		"N(X, b) ->5s",        // no steps
		"->5s WR(Y, b)",       // no LHS
		"N(X, b) ->5s WR(Y, b) trailing",
		"N(X, b) ->-5s WR(Y, b)",
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q) succeeded", bad)
		}
	}
}

const payrollSpec = `
# Section 4.2 payroll scenario
site A
site B
item salary1 @ A
item salary2 @ B
private Cx @ A

rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpecString(payrollSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sites) != 2 || spec.Sites[0] != "A" || spec.Sites[1] != "B" {
		t.Fatalf("sites = %v", spec.Sites)
	}
	if spec.Items["salary1"] != "A" || spec.Items["salary2"] != "B" {
		t.Fatalf("items = %v", spec.Items)
	}
	if spec.Private["Cx"] != "A" {
		t.Fatalf("private = %v", spec.Private)
	}
	if len(spec.Rules) != 1 || spec.Rules[0].ID != "prop" {
		t.Fatalf("rules = %v", spec.Rules)
	}
	if site, ok := spec.SiteOf("Cx"); !ok || site != "A" {
		t.Fatalf("SiteOf(Cx) = %s,%v", site, ok)
	}
	// Round trip.
	spec2, err := ParseSpecString(spec.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, spec.String())
	}
	if spec.String() != spec2.String() {
		t.Fatalf("round trip:\n%s\nvs\n%s", spec.String(), spec2.String())
	}
}

func TestParseSpecAutoRuleIDs(t *testing.T) {
	spec, err := ParseSpecString(`
site A
item X @ A
rule Ws(X, b) ->2s N(X, b)
rule N(X, b) ->5s WR(X, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Rules[0].ID != "r1" || spec.Rules[1].ID != "r2" {
		t.Fatalf("auto ids = %s, %s", spec.Rules[0].ID, spec.Rules[1].ID)
	}
	if _, ok := spec.RuleByID("r2"); !ok {
		t.Fatal("RuleByID failed")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"bogus directive",
		"site",
		"site A B",
		"site A\nsite A",
		"item X",                             // missing placement
		"item X @ Nowhere",                   // undeclared site
		"site A\nitem X @ A\nitem X @ A",     // dup item
		"site A\nitem X @ A\nprivate X @ A",  // item and private
		"site A\nrule N(X, b) ->5s WR(X, b)", // item X not cataloged
		"site A\nitem X @ A\nrule N(X, b) ->5s WR(Y, b)", // effect item unknown
		// Effects must share one site.
		"site A\nsite B\nitem X @ A\nitem Y @ B\nrule N(X, b) ->5s WR(X, b), WR(Y, b)",
		// Condition must be local to the effect site.
		"site A\nsite B\nitem X @ A\nitem Y @ B\nprivate Cx @ A\nrule N(X, b) ->5s (Cx != b)? WR(Y, b)",
		// Duplicate rule ids.
		"site A\nitem X @ A\nrule p: N(X, b) ->5s WR(X, b)\nrule p: N(X, b) ->5s WR(X, b)",
	}
	for _, src := range cases {
		if _, err := ParseSpecString(src); err == nil {
			t.Errorf("ParseSpecString(%q) succeeded", src)
		}
	}
}

func TestSpecConditionLocalToEffectSiteOK(t *testing.T) {
	// Cache at the destination site: guard reads Cy at site B where the
	// effect runs.  This must validate.
	src := `
site A
site B
item X @ A
item Y @ B
private Cy @ B
rule fwd: N(X, b) ->5s (Cy != b)? WR(Y, b), W(Cy, b)
`
	if _, err := ParseSpecString(src); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDelta(t *testing.T) {
	cases := map[time.Duration]string{
		0:                      "0s",
		5 * time.Second:        "5s",
		300 * time.Millisecond: "300ms",
		90 * time.Second:       "90s",
	}
	for d, want := range cases {
		if got := FormatDelta(d); got != want {
			t.Errorf("FormatDelta(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestExprParamsItemsCollection(t *testing.T) {
	e := mustExpr(t, "abs(b - a) > 0.1 * a && Cx = salary1(n) && exists(Y)")
	ps := ExprParams(e)
	wantP := map[string]bool{"a": true, "b": true, "n": true}
	if len(ps) != len(wantP) {
		t.Fatalf("params = %v", ps)
	}
	for _, p := range ps {
		if !wantP[p] {
			t.Fatalf("unexpected param %q", p)
		}
	}
	is := ExprItems(e)
	wantI := map[string]bool{"Cx": true, "salary1": true, "Y": true}
	if len(is) != len(wantI) {
		t.Fatalf("items = %v", is)
	}
	for _, i := range is {
		if !wantI[i] {
			t.Fatalf("unexpected item %q", i)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	r, err := ParseRule("  N(X, b) ->5s WR(Y, b)  # propagate")
	if err != nil {
		t.Fatal(err)
	}
	if r.LHS.Op != event.OpN {
		t.Fatal("wrong op")
	}
	if _, err := ParseRule("N(X, b) ->5s WR(Y, b) // slash comment"); err != nil {
		t.Fatal(err)
	}
}

func TestSpecStringDeterministic(t *testing.T) {
	spec, err := ParseSpecString(`
site A
item Zeta @ A
item Alpha @ A
private M @ A
`)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.String()
	if !strings.Contains(s, "item Alpha @ A\nitem Zeta @ A") {
		t.Fatalf("items not sorted:\n%s", s)
	}
}

func TestCondBinders(t *testing.T) {
	e := mustExpr(t, "X = b && c = Y && b > 0")
	got := map[string]bool{}
	for _, p := range CondBinders(e) {
		got[p] = true
	}
	if !got["b"] || !got["c"] || len(got) != 2 {
		t.Fatalf("CondBinders = %v", got)
	}
	if ps := CondBinders(mustExpr(t, "X > b")); len(ps) != 0 {
		t.Fatalf("non-equality binders = %v", ps)
	}
}

func TestEvalCondBinding(t *testing.T) {
	items := data.Interpretation{"X": data.NewInt(7)}
	b := event.Bindings{}
	env := MapEnv{Params: b, Items: items}
	ok, err := EvalCondBinding(mustExpr(t, "X = v && v > 5"), env, b)
	if err != nil || !ok {
		t.Fatalf("binding eval = %v, %v", ok, err)
	}
	if !b["v"].Equal(data.NewInt(7)) {
		t.Fatalf("v = %s", b["v"])
	}
	// Already-bound parameter: plain equality test, no rebind.
	b2 := event.Bindings{"v": data.NewInt(3)}
	env2 := MapEnv{Params: b2, Items: items}
	ok, err = EvalCondBinding(mustExpr(t, "X = v"), env2, b2)
	if err != nil || ok {
		t.Fatalf("bound mismatch eval = %v, %v", ok, err)
	}
	// Reversed sides bind too.
	b3 := event.Bindings{}
	ok, err = EvalCondBinding(mustExpr(t, "w = X"), MapEnv{Params: b3, Items: items}, b3)
	if err != nil || !ok || !b3["w"].Equal(data.NewInt(7)) {
		t.Fatalf("reverse binding = %v, %v, %v", ok, err, b3)
	}
	// A failing earlier conjunct short-circuits.
	b4 := event.Bindings{}
	ok, err = EvalCondBinding(mustExpr(t, "X = 8 && X = u"), MapEnv{Params: b4, Items: items}, b4)
	if err != nil || ok || len(b4) != 0 {
		t.Fatalf("short-circuit = %v, %v, %v", ok, err, b4)
	}
	// Nil condition is true.
	ok, err = EvalCondBinding(nil, MapEnv{}, event.Bindings{})
	if err != nil || !ok {
		t.Fatalf("nil cond = %v, %v", ok, err)
	}
}

func TestParseRuleEvalEffect(t *testing.T) {
	// Section 7.1 decomposition: recompute X from cached copies.
	r, err := ParseRule("cy: N(Y, b) ->2s W(Yc, b), W(X, eval(Yc + Zc))")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 2 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	if r.Steps[0].ValExpr != nil {
		t.Fatal("plain step got a ValExpr")
	}
	if r.Steps[1].ValExpr == nil {
		t.Fatal("eval step lost its expression")
	}
	if !r.Steps[1].Eff.ValT.IsWild() {
		t.Fatal("eval step's template value is not a wildcard")
	}
	// Round-trip.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", r.String(), err)
	}
	if r.String() != r2.String() {
		t.Fatalf("round trip %q -> %q", r.String(), r2.String())
	}
}

func TestParseRuleEvalRestrictions(t *testing.T) {
	// eval is not a term in LHS templates.
	if _, err := ParseRule("N(X, eval(Y)) ->1s W(Z, 1)"); err == nil {
		t.Fatal("eval accepted on the LHS")
	}
	// eval with an unbound parameter is rejected.
	if _, err := ParseRule("N(X, b) ->1s W(Z, eval(c + 1))"); err == nil {
		t.Fatal("unbound parameter in eval accepted")
	}
	// eval on a value-less event is rejected.
	if _, err := ParseRule("N(X, b) ->1s RR(Z, eval(1))"); err == nil {
		t.Fatal("eval on RR accepted")
	}
}

func TestEvalEffectGuardLocality(t *testing.T) {
	// The value expression reads data at the effect site only.
	src := `
site A
site B
item Y @ A
item X @ B
private Yc @ B
private Zc @ B
rule cy: N(Y, b) ->2s W(Yc, b), W(X, eval(Yc + Zc))
`
	if _, err := ParseSpecString(src); err != nil {
		t.Fatal(err)
	}
	// Reading a remote item in eval is rejected.
	bad := `
site A
site B
item Y @ A
item X @ B
private Zc @ B
rule cy: N(Y, b) ->2s W(X, eval(Y + Zc))
`
	if _, err := ParseSpecString(bad); err == nil {
		t.Fatal("cross-site eval accepted")
	}
}

func TestSpecGuaranteeDirective(t *testing.T) {
	spec, err := ParseSpecString(`
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
guarantee follows(salary1, salary2)
guarantee metric-leads(salary1, salary2, 15s)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Guarantees) != 2 || spec.Guarantees[0] != "follows(salary1, salary2)" {
		t.Fatalf("guarantees = %v", spec.Guarantees)
	}
	// Round trip keeps them.
	spec2, err := ParseSpecString(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec2.Guarantees) != 2 {
		t.Fatalf("round trip guarantees = %v", spec2.Guarantees)
	}
	if _, err := ParseSpecString("site A\nguarantee"); err == nil {
		t.Fatal("empty guarantee accepted")
	}
}
