package rule

import (
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

func BenchmarkParseRule(b *testing.B) {
	const src = "cache: N(salary1(n), v) ->5s (Cx(n) != v)? WR(salary2(n), v), W(Cx(n), v)"
	for i := 0; i < b.N; i++ {
		if _, err := ParseRule(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemplateMatch(b *testing.B) {
	tpl, err := ParseTemplate("N(salary1(n), v)")
	if err != nil {
		b.Fatal(err)
	}
	d := event.N(data.Item("salary1", data.NewString("e7")), data.NewInt(100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tpl.Match(d); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkExprEval(b *testing.B) {
	e, err := ParseExpr("abs(b - a) > 0.1 * a && Cx != b")
	if err != nil {
		b.Fatal(err)
	}
	env := MapEnv{
		Params: event.Bindings{"a": data.NewFloat(100), "b": data.NewFloat(120)},
		Items:  data.Interpretation{"Cx": data.NewInt(7)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}
