package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{NullValue, Null},
		{NewBool(true), Bool},
		{NewInt(7), Int},
		{NewFloat(2.5), Float},
		{NewString("x"), String},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !NullValue.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueEqualNumericCoercion(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Error("int 3 != float 3")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Error("int 3 == float 3.5")
	}
	if NewInt(0).Equal(NewBool(false)) {
		t.Error("int 0 == bool false")
	}
	if !NewString("a").Equal(NewString("a")) || NewString("a").Equal(NewString("b")) {
		t.Error("string equality broken")
	}
	if !NullValue.Equal(NullValue) || NullValue.Equal(NewInt(0)) {
		t.Error("null equality broken")
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, ok := a.Compare(b)
		if !ok || c >= 0 {
			t.Errorf("Compare(%s,%s) = %d,%v want <0,true", a, b, c, ok)
		}
	}
	lt(NewInt(1), NewInt(2))
	lt(NewInt(1), NewFloat(1.5))
	lt(NewFloat(-1), NewInt(0))
	lt(NewString("a"), NewString("b"))
	lt(NewBool(false), NewBool(true))
	if _, ok := NewString("a").Compare(NewInt(1)); ok {
		t.Error("string vs int comparable")
	}
	if _, ok := NullValue.Compare(NullValue); ok {
		t.Error("null vs null comparable")
	}
	if c, ok := NewInt(5).Compare(NewInt(5)); !ok || c != 0 {
		t.Error("equal ints compare nonzero")
	}
}

func TestArith(t *testing.T) {
	got, err := Arith('+', NewInt(2), NewInt(3))
	if err != nil || !got.Equal(NewInt(5)) {
		t.Errorf("2+3 = %s, %v", got, err)
	}
	got, err = Arith('*', NewInt(2), NewFloat(1.5))
	if err != nil || !got.Equal(NewFloat(3)) {
		t.Errorf("2*1.5 = %s, %v", got, err)
	}
	got, err = Arith('/', NewInt(7), NewInt(2))
	if err != nil || !got.Equal(NewFloat(3.5)) {
		t.Errorf("7/2 = %s, %v", got, err)
	}
	got, err = Arith('/', NewInt(6), NewInt(2))
	if err != nil || got.Kind() != Int || got.Int() != 3 {
		t.Errorf("6/2 = %s (%v), %v", got, got.Kind(), err)
	}
	if _, err := Arith('/', NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero succeeded")
	}
	if _, err := Arith('+', NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic succeeded")
	}
	if _, err := Arith('%', NewInt(1), NewInt(1)); err == nil {
		t.Error("unknown operator succeeded")
	}
}

func TestAbs(t *testing.T) {
	if v, err := Abs(NewInt(-4)); err != nil || v.Int() != 4 {
		t.Errorf("abs(-4) = %s, %v", v, err)
	}
	if v, err := Abs(NewFloat(-2.5)); err != nil || v.Float() != 2.5 {
		t.Errorf("abs(-2.5) = %s, %v", v, err)
	}
	if _, err := Abs(NewString("x")); err == nil {
		t.Error("abs of string succeeded")
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{NewBool(true), NewInt(1), NewFloat(0.5), NewString("x")} {
		if !v.Truthy() {
			t.Errorf("%s not truthy", v)
		}
	}
	for _, v := range []Value{NullValue, NewBool(false), NewInt(0), NewFloat(0), NewString("")} {
		if v.Truthy() {
			t.Errorf("%s truthy", v)
		}
	}
}

func TestLiteralRoundTrip(t *testing.T) {
	vals := []Value{
		NullValue, NewBool(true), NewBool(false),
		NewInt(0), NewInt(-42), NewInt(math.MaxInt64),
		NewFloat(3.5), NewFloat(-0.25),
		NewString(""), NewString("hello world"), NewString(`quo"te`), NewString("comma, paren("),
	}
	for _, v := range vals {
		got, err := ParseLiteral(v.String())
		if err != nil {
			t.Errorf("ParseLiteral(%s): %v", v, err)
			continue
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
	for _, bad := range []string{"", "nope nope", `"unterminated`} {
		if _, err := ParseLiteral(bad); err == nil {
			t.Errorf("ParseLiteral(%q) succeeded", bad)
		}
	}
}

func TestItemNameString(t *testing.T) {
	n := Item("salary1", NewString("emp7"))
	if got := n.String(); got != `salary1("emp7")` {
		t.Errorf("String = %s", got)
	}
	if got := Item("X").String(); got != "X" {
		t.Errorf("bare String = %s", got)
	}
	m := Item("phone", NewString("ann"), NewInt(2))
	if got := m.String(); got != `phone("ann", 2)` {
		t.Errorf("two-arg String = %s", got)
	}
}

func TestItemNameEqual(t *testing.T) {
	a := Item("x", NewInt(1))
	b := Item("x", NewInt(1))
	c := Item("x", NewInt(2))
	d := Item("y", NewInt(1))
	e := Item("x")
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) || a.Equal(e) {
		t.Error("ItemName.Equal broken")
	}
	// Numeric coercion applies inside arguments too.
	if !Item("x", NewInt(1)).Equal(Item("x", NewFloat(1))) {
		t.Error("numeric arg coercion broken")
	}
}

func TestParseItemNameRoundTrip(t *testing.T) {
	names := []ItemName{
		Item("X"),
		Item("salary1", NewString("emp7")),
		Item("phone", NewString("a,b"), NewInt(3)),
		Item("f", NewFloat(2.5), NewBool(true)),
	}
	for _, n := range names {
		got, err := ParseItemName(n.String())
		if err != nil {
			t.Errorf("ParseItemName(%s): %v", n, err)
			continue
		}
		if !got.Equal(n) {
			t.Errorf("round trip %s -> %s", n, got)
		}
	}
	for _, bad := range []string{"", "x(1", "(1)", "x(nope nope)"} {
		if _, err := ParseItemName(bad); err == nil {
			t.Errorf("ParseItemName(%q) succeeded", bad)
		}
	}
}

func TestInterpretationBasics(t *testing.T) {
	in := NewInterpretation()
	x := Item("X")
	if in.Has(x) || !in.Get(x).IsNull() {
		t.Error("empty interpretation has bindings")
	}
	in.Set(x, NewInt(5))
	if !in.Has(x) || !in.Get(x).Equal(NewInt(5)) {
		t.Error("Set/Get broken")
	}
	in.Set(x, NullValue)
	if in.Has(x) || len(in) != 0 {
		t.Error("Set null did not delete")
	}
}

func TestInterpretationWithIsCopy(t *testing.T) {
	in := NewInterpretation()
	x, y := Item("X"), Item("Y")
	in.Set(x, NewInt(1))
	out := in.With(y, NewInt(2))
	if in.Has(y) {
		t.Error("With mutated receiver")
	}
	if !out.Get(x).Equal(NewInt(1)) || !out.Get(y).Equal(NewInt(2)) {
		t.Error("With result wrong")
	}
	// Mutating the copy must not affect the original.
	out.Set(x, NewInt(9))
	if !in.Get(x).Equal(NewInt(1)) {
		t.Error("Clone aliasing")
	}
}

func TestInterpretationEqualAndString(t *testing.T) {
	a := Interpretation{"X": NewInt(1), "Y": NewString("a")}
	b := Interpretation{"Y": NewString("a"), "X": NewInt(1)}
	c := Interpretation{"X": NewInt(2), "Y": NewString("a")}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Interpretation{}) {
		t.Error("Equal broken")
	}
	if got := a.String(); got != `{X=1, Y="a"}` {
		t.Errorf("String = %s", got)
	}
	if got := (Interpretation{}).String(); got != "{}" {
		t.Errorf("empty String = %s", got)
	}
}

func TestNilInterpretationReads(t *testing.T) {
	var in Interpretation
	if in.Has(Item("X")) || !in.Get(Item("X")).IsNull() {
		t.Error("nil interpretation reads broken")
	}
}

// Property: ParseLiteral(v.String()) == v for generated values.
func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, sel uint8) bool {
		var v Value
		switch sel % 5 {
		case 0:
			v = NullValue
		case 1:
			v = NewBool(b)
		case 2:
			v = NewInt(i)
		case 3:
			if math.IsNaN(fl) || math.IsInf(fl, 0) {
				return true // literals do not represent these
			}
			v = NewFloat(fl)
		case 4:
			v = NewString(s)
		}
		got, err := ParseLiteral(v.String())
		if err != nil {
			return false
		}
		// Float formatting may parse back as Int when integral; Equal
		// tolerates that by numeric coercion.
		return got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: With never mutates and Set-then-Get round-trips.
func TestQuickInterpretationSetGet(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		in := NewInterpretation()
		for i, k := range keys {
			if k == "" {
				continue
			}
			var v Value
			if i < len(vals) {
				v = NewInt(vals[i])
			} else {
				v = NewInt(int64(i))
			}
			in.Set(Item(k), v)
			if !in.Get(Item(k)).Equal(v) {
				return false
			}
		}
		clone := in.Clone()
		if !clone.Equal(in) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
