// Package data defines the values, data-item names and interpretations of
// the paper's formal framework (Appendix A.1).
//
// A data item is anything a Raw Information Source stores at whatever
// granularity the deployment chooses: a single object, a column value of a
// keyed row, or a whole relation.  Items are named, and names may be
// parameterized — salary1(n) from Section 4.2 denotes the family of items
// obtained by binding n.  An Interpretation maps item names to values and
// represents a (possibly partial) state of the whole system; items absent
// from the map are "null", meaning they may take any value.
package data

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types the toolkit moves between systems.  The
// deliberately small set mirrors what heterogeneous sources can all
// represent; richer types are carried as strings by the translators.
type Kind int

// Value kinds.
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is an immutable tagged scalar.  The zero Value is Null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// NullValue is the null Value.
var NullValue = Value{}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{kind: String, s: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value { return Value{kind: Bool, b: b} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is Null.
func (v Value) IsNull() bool { return v.kind == Null }

// Int returns the integer payload; valid only when Kind()==Int.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; valid only when Kind()==Float.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Kind()==String.
func (v Value) Str() string { return v.s }

// Bool returns the bool payload; valid only when Kind()==Bool.
func (v Value) Bool() bool { return v.b }

// AsFloat converts numeric values to float64.  The second result is false
// for non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case Int:
		return float64(v.i), true
	case Float:
		return v.f, true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a rule condition:
// boolean true, nonzero number, or nonempty string.
func (v Value) Truthy() bool {
	switch v.kind {
	case Bool:
		return v.b
	case Int:
		return v.i != 0
	case Float:
		return v.f != 0
	case String:
		return v.s != ""
	default:
		return false
	}
}

// Equal reports value equality.  Int and Float compare numerically, so
// NewInt(3).Equal(NewFloat(3)) is true: heterogeneous sources disagree on
// numeric representation and copy constraints must not care.
func (v Value) Equal(w Value) bool {
	if v.kind == Null || w.kind == Null {
		return v.kind == w.kind
	}
	if vf, ok := v.AsFloat(); ok {
		if wf, ok := w.AsFloat(); ok {
			return vf == wf
		}
		return false
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case Bool:
		return v.b == w.b
	case String:
		return v.s == w.s
	}
	return false
}

// Compare orders two values.  Numerics order numerically, strings
// lexicographically, bools false<true.  The second result is false when the
// values are not comparable (mixed non-numeric kinds or nulls).
func (v Value) Compare(w Value) (int, bool) {
	if vf, vok := v.AsFloat(); vok {
		wf, wok := w.AsFloat()
		if !wok {
			return 0, false
		}
		switch {
		case vf < wf:
			return -1, true
		case vf > wf:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != w.kind {
		return 0, false
	}
	switch v.kind {
	case String:
		return strings.Compare(v.s, w.s), true
	case Bool:
		vi, wi := 0, 0
		if v.b {
			vi = 1
		}
		if w.b {
			wi = 1
		}
		return vi - wi, true
	default:
		return 0, false
	}
}

// Arith applies a binary arithmetic operator (+, -, *, /) to numeric
// values.  Two Ints yield an Int except for division, which yields a Float
// when it does not divide evenly.  It returns an error for non-numeric
// operands or division by zero.
func Arith(op byte, a, b Value) (Value, error) {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return NullValue, fmt.Errorf("data: arithmetic %c on non-numeric values %s, %s", op, a, b)
	}
	bothInt := a.kind == Int && b.kind == Int
	switch op {
	case '+':
		if bothInt {
			return NewInt(a.i + b.i), nil
		}
		return NewFloat(af + bf), nil
	case '-':
		if bothInt {
			return NewInt(a.i - b.i), nil
		}
		return NewFloat(af - bf), nil
	case '*':
		if bothInt {
			return NewInt(a.i * b.i), nil
		}
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return NullValue, fmt.Errorf("data: division by zero")
		}
		if bothInt && a.i%b.i == 0 {
			return NewInt(a.i / b.i), nil
		}
		return NewFloat(af / bf), nil
	default:
		return NullValue, fmt.Errorf("data: unknown arithmetic operator %q", string(op))
	}
}

// Abs returns the absolute value of a numeric value, preserving kind.
func Abs(v Value) (Value, error) {
	switch v.kind {
	case Int:
		if v.i < 0 {
			return NewInt(-v.i), nil
		}
		return v, nil
	case Float:
		return NewFloat(math.Abs(v.f)), nil
	default:
		return NullValue, fmt.Errorf("data: abs of non-numeric value %s", v)
	}
}

// String renders the value in the rule-language literal syntax: null, true,
// 42, 3.5, "text".
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "null"
	case Bool:
		return strconv.FormatBool(v.b)
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return strconv.Quote(v.s)
	default:
		return "?"
	}
}

// ParseLiteral parses the String form back to a Value.
func ParseLiteral(s string) (Value, error) {
	switch s {
	case "null":
		return NullValue, nil
	case "true":
		return NewBool(true), nil
	case "false":
		return NewBool(false), nil
	}
	if len(s) >= 2 && s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return NullValue, fmt.Errorf("data: bad string literal %s: %w", s, err)
		}
		return NewString(u), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f), nil
	}
	return NullValue, fmt.Errorf("data: unparseable literal %q", s)
}

// ItemName identifies a data item: a base name and, for parameterized
// families like salary1(n), the ground argument values the parameters were
// bound to.  The zero ItemName is invalid.
type ItemName struct {
	Base string
	Args []Value
}

// Item constructs an ItemName.
func Item(base string, args ...Value) ItemName {
	return ItemName{Base: base, Args: args}
}

// String renders salary1("emp7") style keys; argument-free items render as
// the bare base name.
func (n ItemName) String() string {
	if len(n.Args) == 0 {
		return n.Base
	}
	var b strings.Builder
	b.WriteString(n.Base)
	b.WriteByte('(')
	for i, a := range n.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns the canonical map key for the item.
func (n ItemName) Key() string { return n.String() }

// Equal reports whether two names denote the same item.
func (n ItemName) Equal(m ItemName) bool {
	if n.Base != m.Base || len(n.Args) != len(m.Args) {
		return false
	}
	for i := range n.Args {
		if !n.Args[i].Equal(m.Args[i]) {
			return false
		}
	}
	return true
}

// ParseItemName parses the String form of an item name.
func ParseItemName(s string) (ItemName, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if s == "" {
			return ItemName{}, fmt.Errorf("data: empty item name")
		}
		return ItemName{Base: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return ItemName{}, fmt.Errorf("data: malformed item name %q", s)
	}
	base := strings.TrimSpace(s[:open])
	if base == "" {
		return ItemName{}, fmt.Errorf("data: malformed item name %q", s)
	}
	inner := s[open+1 : len(s)-1]
	var args []Value
	for _, part := range splitTopLevel(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := ParseLiteral(part)
		if err != nil {
			return ItemName{}, fmt.Errorf("data: item name %q: %w", s, err)
		}
		args = append(args, v)
	}
	return ItemName{Base: base, Args: args}, nil
}

// splitTopLevel splits on commas that are not inside quotes.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// Interpretation maps item keys to values; it is the paper's notion of a
// (partial) system state.  A missing key means null: the item may take any
// value.  Interpretations are value-like; use Clone before mutating a
// shared one.
type Interpretation map[string]Value

// NewInterpretation returns an empty interpretation.
func NewInterpretation() Interpretation { return Interpretation{} }

// Get returns the value bound to item n, or NullValue when unbound.
func (in Interpretation) Get(n ItemName) Value {
	if in == nil {
		return NullValue
	}
	return in[n.Key()]
}

// Has reports whether item n is bound to a non-null value.
func (in Interpretation) Has(n ItemName) bool {
	if in == nil {
		return false
	}
	v, ok := in[n.Key()]
	return ok && !v.IsNull()
}

// Set binds item n to v in place.  Binding to null removes the entry.
func (in Interpretation) Set(n ItemName, v Value) {
	if v.IsNull() {
		delete(in, n.Key())
		return
	}
	in[n.Key()] = v
}

// With returns a copy of the interpretation with item n bound to v.  This
// is the old−{X=a}∪{X=b} update of Appendix A.2 property 2.
func (in Interpretation) With(n ItemName, v Value) Interpretation {
	out := in.Clone()
	out.Set(n, v)
	return out
}

// Clone returns a deep copy.
func (in Interpretation) Clone() Interpretation {
	out := make(Interpretation, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Equal reports whether two interpretations bind exactly the same items to
// equal values.
func (in Interpretation) Equal(other Interpretation) bool {
	if len(in) != len(other) {
		return false
	}
	for k, v := range in {
		w, ok := other[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// Keys returns the bound item keys in sorted order, for deterministic
// printing and hashing.
func (in Interpretation) Keys() []string {
	ks := make([]string, 0, len(in))
	for k := range in {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// String renders {X=5, Y="a"} deterministically.
func (in Interpretation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range in.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(in[k].String())
	}
	b.WriteByte('}')
	return b.String()
}
