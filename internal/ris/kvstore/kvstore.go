// Package kvstore implements a whois/finger-style directory server: named
// entities carrying string attribute maps.  It stands in for the Stanford
// "whois" and "lookup" personnel databases of Section 4.3.  The store can
// be configured read-only (a public whois mirror) or read-write (the
// department's own lookup service), and optionally offers native change
// callbacks — giving the heterogeneous capability mix that forces
// different strategies per site.
//
// All attribute values are strings: translating them to and from typed
// values is the CM-Translator's job, as the paper's footnote 2 notes for
// cross-model constraints.
package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"cmtk/internal/ris"
)

// Change describes one attribute mutation delivered to watchers.
type Change struct {
	Entity, Attr string
	Old, New     string // empty Old means created; empty New means deleted
	OldOK, NewOK bool
}

// Store is the directory.
type Store struct {
	mu       sync.RWMutex
	name     string
	readOnly bool
	notify   bool
	entities map[string]map[string]string
	watchMu  sync.Mutex
	watchers map[int64]func(Change)
	nextW    int64
}

// New creates a store.  notify enables native change callbacks (Watch);
// a store without notify forces its translator to poll.
func New(name string, readOnly, notify bool) *Store {
	return &Store{
		name:     name,
		readOnly: readOnly,
		notify:   notify,
		entities: map[string]map[string]string{},
		watchers: map[int64]func(Change){},
	}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Capabilities reports the configured capability set.
func (s *Store) Capabilities() ris.Capability {
	c := ris.CapRead | ris.CapQuery
	if !s.readOnly {
		c |= ris.CapWrite | ris.CapDelete
	}
	if s.notify {
		c |= ris.CapNotify
	}
	return c
}

// Lookup returns a copy of an entity's attributes.
func (s *Store) Lookup(entity string) (map[string]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	attrs, ok := s.entities[entity]
	if !ok {
		return nil, fmt.Errorf("kvstore: entity %q: %w", entity, ris.ErrNotFound)
	}
	out := make(map[string]string, len(attrs))
	for k, v := range attrs {
		out[k] = v
	}
	return out, nil
}

// Get returns one attribute of an entity.
func (s *Store) Get(entity, attr string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	attrs, ok := s.entities[entity]
	if !ok {
		return "", fmt.Errorf("kvstore: entity %q: %w", entity, ris.ErrNotFound)
	}
	v, ok := attrs[attr]
	if !ok {
		return "", fmt.Errorf("kvstore: %s.%s: %w", entity, attr, ris.ErrNotFound)
	}
	return v, nil
}

// Set writes one attribute, creating the entity if needed.
func (s *Store) Set(entity, attr, value string) error {
	if s.readOnly {
		return fmt.Errorf("kvstore: set %s.%s: %w", entity, attr, ris.ErrReadOnly)
	}
	s.mu.Lock()
	attrs, ok := s.entities[entity]
	if !ok {
		attrs = map[string]string{}
		s.entities[entity] = attrs
	}
	old, oldOK := attrs[attr]
	attrs[attr] = value
	s.mu.Unlock()
	s.fire(Change{Entity: entity, Attr: attr, Old: old, OldOK: oldOK, New: value, NewOK: true})
	return nil
}

// Del removes one attribute (and the entity when it becomes empty).
func (s *Store) Del(entity, attr string) error {
	if s.readOnly {
		return fmt.Errorf("kvstore: del %s.%s: %w", entity, attr, ris.ErrReadOnly)
	}
	s.mu.Lock()
	attrs, ok := s.entities[entity]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("kvstore: entity %q: %w", entity, ris.ErrNotFound)
	}
	old, oldOK := attrs[attr]
	delete(attrs, attr)
	if len(attrs) == 0 {
		delete(s.entities, entity)
	}
	s.mu.Unlock()
	if oldOK {
		s.fire(Change{Entity: entity, Attr: attr, Old: old, OldOK: true})
	}
	return nil
}

// SeedSet writes an attribute bypassing the read-only restriction, for
// populating mirrors in tests and examples (the data got there somehow).
func (s *Store) SeedSet(entity, attr, value string) {
	s.mu.Lock()
	attrs, ok := s.entities[entity]
	if !ok {
		attrs = map[string]string{}
		s.entities[entity] = attrs
	}
	attrs[attr] = value
	s.mu.Unlock()
}

// Entities lists entity names in sorted order.
func (s *Store) Entities() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.entities))
	for e := range s.entities {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Watch registers a change callback; it errors when the store does not
// offer native notification.  Callbacks run synchronously after the
// mutation commits, in registration order.
func (s *Store) Watch(fn func(Change)) (func(), error) {
	if !s.notify {
		return nil, fmt.Errorf("kvstore: %s: %w", s.name, ris.ErrUnsupported)
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	id := s.nextW
	s.nextW++
	s.watchers[id] = fn
	return func() {
		s.watchMu.Lock()
		defer s.watchMu.Unlock()
		delete(s.watchers, id)
	}, nil
}

func (s *Store) fire(c Change) {
	if !s.notify {
		return
	}
	s.watchMu.Lock()
	ids := make([]int64, 0, len(s.watchers))
	for id := range s.watchers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fns := make([]func(Change), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, s.watchers[id])
	}
	s.watchMu.Unlock()
	for _, fn := range fns {
		fn(c)
	}
}
