package kvstore

import (
	"errors"
	"testing"

	"cmtk/internal/ris"
)

func TestSetGetLookup(t *testing.T) {
	s := New("lookup", false, false)
	if err := s.Set("ann", "phone", "555-0101"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("ann", "office", "444"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("ann", "phone")
	if err != nil || v != "555-0101" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	attrs, err := s.Lookup("ann")
	if err != nil || len(attrs) != 2 {
		t.Fatalf("Lookup = %v, %v", attrs, err)
	}
	// Lookup returns a copy.
	attrs["phone"] = "tampered"
	if v, _ := s.Get("ann", "phone"); v != "555-0101" {
		t.Fatal("Lookup aliases internal state")
	}
	if _, err := s.Get("ann", "nope"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Lookup("zed"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDel(t *testing.T) {
	s := New("lookup", false, false)
	s.Set("ann", "phone", "1")
	if err := s.Del("ann", "phone"); err != nil {
		t.Fatal(err)
	}
	// Entity vanishes when empty.
	if _, err := s.Lookup("ann"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Del("ann", "phone"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOnly(t *testing.T) {
	s := New("whois", true, false)
	if err := s.Set("a", "b", "c"); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Del("a", "b"); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	s.SeedSet("a", "b", "c")
	if v, err := s.Get("a", "b"); err != nil || v != "c" {
		t.Fatalf("Get after seed = %q, %v", v, err)
	}
	caps := s.Capabilities()
	if caps.Has(ris.CapWrite) || !caps.Has(ris.CapRead) {
		t.Fatalf("caps = %v", caps)
	}
}

func TestWatch(t *testing.T) {
	s := New("lookup", false, true)
	var changes []Change
	cancel, err := s.Watch(func(c Change) { changes = append(changes, c) })
	if err != nil {
		t.Fatal(err)
	}
	s.Set("ann", "phone", "1")
	s.Set("ann", "phone", "2")
	s.Del("ann", "phone")
	if len(changes) != 3 {
		t.Fatalf("changes = %v", changes)
	}
	if changes[0].OldOK || changes[0].New != "1" || !changes[0].NewOK {
		t.Fatalf("create change: %+v", changes[0])
	}
	if changes[1].Old != "1" || changes[1].New != "2" {
		t.Fatalf("update change: %+v", changes[1])
	}
	if changes[2].NewOK || changes[2].Old != "2" {
		t.Fatalf("delete change: %+v", changes[2])
	}
	cancel()
	s.Set("bob", "phone", "3")
	if len(changes) != 3 {
		t.Fatal("watcher fired after cancel")
	}
}

func TestWatchUnsupported(t *testing.T) {
	s := New("whois", false, false)
	if _, err := s.Watch(func(Change) {}); !errors.Is(err, ris.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
	if s.Capabilities().Has(ris.CapNotify) {
		t.Error("non-notify store claims notify")
	}
	// Mutations on a non-notify store don't panic.
	s.Set("a", "b", "c")
}

func TestEntities(t *testing.T) {
	s := New("x", false, false)
	s.Set("zed", "a", "1")
	s.Set("ann", "a", "1")
	got := s.Entities()
	if len(got) != 2 || got[0] != "ann" || got[1] != "zed" {
		t.Fatalf("Entities = %v", got)
	}
	if s.Name() != "x" {
		t.Fatal("Name broken")
	}
}
