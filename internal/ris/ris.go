// Package ris defines what all Raw Information Sources (Section 4.1) have
// in common: a kind, a capability set, and an error taxonomy that the
// CM-Translators map onto metric and logical interface failures
// (Section 5).
//
// Deliberately, there is no common data-access interface here: the whole
// point of the paper's architecture is that each RIS exposes its own
// native interface (SQL text for relational stores, file operations for
// flat files, text commands for directory servers), and the CM-Translator
// for each kind adapts that native interface — configured by a CM-RID —
// to the uniform CM-Interface.
package ris

import (
	"errors"
	"fmt"
)

// Capability flags describe what a source's native interface can do.  The
// heterogeneity of capability sets across sources is what forces the
// strategy choice in Section 4.2 (notify-based propagation vs. polling).
type Capability uint

// Capability bits.
const (
	CapRead Capability = 1 << iota
	CapWrite
	CapDelete
	CapNotify // native change hooks (triggers, watch callbacks)
	CapQuery  // content queries beyond single-item reads
)

// Has reports whether all bits in want are present.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String renders e.g. "read|write|notify".
func (c Capability) String() string {
	names := []struct {
		bit  Capability
		name string
	}{
		{CapRead, "read"}, {CapWrite, "write"}, {CapDelete, "delete"},
		{CapNotify, "notify"}, {CapQuery, "query"},
	}
	out := ""
	for _, n := range names {
		if c.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Sentinel errors for the native interfaces.  Translators inspect these
// (and Transient wrappers) to classify failures.
var (
	// ErrReadOnly reports a mutation attempted on a read-only source.
	ErrReadOnly = errors.New("ris: source is read-only")
	// ErrNotFound reports a missing item, row or record.
	ErrNotFound = errors.New("ris: not found")
	// ErrUnsupported reports an operation outside the source's capability set.
	ErrUnsupported = errors.New("ris: operation not supported")
	// ErrUnavailable reports that the source cannot be reached at all; the
	// translator maps this to a logical failure of the interface.
	ErrUnavailable = errors.New("ris: source unavailable")
)

// TransientError wraps an error that is expected to clear on retry (an
// overloaded or briefly crashed source).  Translators map it to a metric
// failure: the interface obligation will be met, but late.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return fmt.Sprintf("ris: transient: %v", e.Err) }

// Unwrap exposes the wrapped error.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as transient.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is (or wraps) a transient failure.
func IsTransient(err error) bool {
	var t *TransientError
	return errors.As(err, &t)
}
