package filestore

import (
	"errors"
	"testing"
	"testing/quick"

	"cmtk/internal/ris"
)

func open(t *testing.T, readOnly bool) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), readOnly)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadDelete(t *testing.T) {
	s := open(t, false)
	if err := s.Write("phones", "ann", "555-0101"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("phones", "bob", "555-0102"); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read("phones", "ann")
	if err != nil || v != "555-0101" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	if err := s.Delete("phones", "ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("phones", "ann"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Deleting a missing key is a no-op.
	if err := s.Delete("phones", "zz"); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMissingFileEmpty(t *testing.T) {
	s := open(t, false)
	recs, err := s.Snapshot("nothing")
	if err != nil || len(recs) != 0 {
		t.Fatalf("Snapshot = %v, %v", recs, err)
	}
}

func TestOverwrite(t *testing.T) {
	s := open(t, false)
	s.Write("f", "k", "v1")
	s.Write("f", "k", "v2")
	v, err := s.Read("f", "k")
	if err != nil || v != "v2" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	recs, _ := s.Snapshot("f")
	if len(recs) != 1 {
		t.Fatalf("records = %v", recs)
	}
}

func TestReadOnly(t *testing.T) {
	s := open(t, true)
	if err := s.Write("f", "k", "v"); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Delete("f", "k"); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if s.Capabilities().Has(ris.CapWrite) {
		t.Error("read-only store claims write")
	}
	if !s.Capabilities().Has(ris.CapRead) {
		t.Error("read-only store missing read")
	}
}

func TestBadFileNames(t *testing.T) {
	s := open(t, false)
	for _, bad := range []string{"", "a/b", "..", ".hidden", `a\b`} {
		if err := s.Write(bad, "k", "v"); err == nil {
			t.Errorf("Write(%q) succeeded", bad)
		}
	}
}

func TestEscaping(t *testing.T) {
	s := open(t, false)
	cases := []struct{ k, v string }{
		{"tab\tkey", "value\twith\ttabs"},
		{"nl\nkey", "value\nwith\nnewlines"},
		{`back\slash`, `v\al`},
		{"plain", ""},
	}
	for _, c := range cases {
		if err := s.Write("esc", c.k, c.v); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cases {
		v, err := s.Read("esc", c.k)
		if err != nil || v != c.v {
			t.Fatalf("Read(%q) = %q, %v; want %q", c.k, v, err, c.v)
		}
	}
}

func TestFiles(t *testing.T) {
	s := open(t, false)
	s.Write("b", "k", "v")
	s.Write("a", "k", "v")
	fs, err := s.Files()
	if err != nil || len(fs) != 2 || fs[0] != "a" || fs[1] != "b" {
		t.Fatalf("Files = %v, %v", fs, err)
	}
}

func TestPersistenceAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	s1.Write("f", "k", "v")
	s2, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Read("f", "k")
	if err != nil || v != "v" {
		t.Fatalf("Read = %q, %v", v, err)
	}
}

// Property: any key/value set round-trips through a write-all then
// snapshot.
func TestQuickRoundTrip(t *testing.T) {
	s := open(t, false)
	i := 0
	f := func(keys []string, vals []string) bool {
		i++
		file := "q"
		want := map[string]string{}
		for j, k := range keys {
			if k == "" {
				continue
			}
			v := ""
			if j < len(vals) {
				v = vals[j]
			}
			if err := s.Write(file, k, v); err != nil {
				return false
			}
			want[k] = v
		}
		got, err := s.Snapshot(file)
		if err != nil {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
