// Package filestore implements a flat-file record store over a real
// directory, standing in for the Unix file system sources of the paper
// (Sections 4.3 and 5).  Each named file holds one record per line in the
// form "key<TAB>value".  The native interface is deliberately file-like:
// whole-file reads and atomic rewrites, with failures surfacing the way
// read(2)/write(2) failures do, so the CM-Translator's failure mapping
// (Section 5's read() example) is exercised for real.
//
// The store has no native notification; a translator that needs a Notify
// interface must poll Snapshot and diff — which is exactly the
// polling-simulates-notification fallback the paper describes.
package filestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cmtk/internal/ris"
)

// Store is a directory of record files.
type Store struct {
	dir      string
	readOnly bool
	mu       sync.Mutex // serializes rewrites per process
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string, readOnly bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	return &Store{dir: dir, readOnly: readOnly}, nil
}

// Dir returns the root directory.
func (s *Store) Dir() string { return s.dir }

// Capabilities reports read(+write/delete when not read-only); no native
// notify.
func (s *Store) Capabilities() ris.Capability {
	c := ris.CapRead | ris.CapQuery
	if !s.readOnly {
		c |= ris.CapWrite | ris.CapDelete
	}
	return c
}

func (s *Store) path(file string) (string, error) {
	if file == "" || strings.ContainsAny(file, "/\\") || strings.HasPrefix(file, ".") {
		return "", fmt.Errorf("filestore: bad file name %q", file)
	}
	return filepath.Join(s.dir, file+".rec"), nil
}

// Snapshot reads all records of a file.  A missing file reads as an empty
// record set (like an empty directory listing), not an error.
func (s *Store) Snapshot(file string) (map[string]string, error) {
	p, err := s.path(file)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]string{}, nil
		}
		return nil, fmt.Errorf("filestore: read %s: %w", file, ris.Transient(err))
	}
	out := map[string]string{}
	for ln, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("filestore: %s line %d: malformed record", file, ln+1)
		}
		out[unescape(k)] = unescape(v)
	}
	return out, nil
}

// Read returns one record's value.
func (s *Store) Read(file, key string) (string, error) {
	recs, err := s.Snapshot(file)
	if err != nil {
		return "", err
	}
	v, ok := recs[key]
	if !ok {
		return "", fmt.Errorf("filestore: %s[%s]: %w", file, key, ris.ErrNotFound)
	}
	return v, nil
}

// Write sets one record, rewriting the file atomically.
func (s *Store) Write(file, key, value string) error {
	return s.mutate(file, func(recs map[string]string) { recs[key] = value })
}

// Delete removes one record; deleting a missing record is a no-op.
func (s *Store) Delete(file, key string) error {
	return s.mutate(file, func(recs map[string]string) { delete(recs, key) })
}

func (s *Store) mutate(file string, f func(map[string]string)) error {
	if s.readOnly {
		return fmt.Errorf("filestore: write %s: %w", file, ris.ErrReadOnly)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.Snapshot(file)
	if err != nil {
		return err
	}
	f(recs)
	p, err := s.path(file)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(escape(k))
		b.WriteByte('\t')
		b.WriteString(escape(recs[k]))
		b.WriteByte('\n')
	}
	// Atomic rewrite that is actually durable: the temp file's contents
	// must reach the disk before the rename, and the rename itself before
	// success is reported — otherwise a power failure can leave the new
	// name pointing at zero-length or stale data.
	tmp := p + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("filestore: write %s: %w", file, ris.Transient(err))
	}
	if _, err := tf.WriteString(b.String()); err != nil {
		tf.Close()
		return fmt.Errorf("filestore: write %s: %w", file, ris.Transient(err))
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("filestore: sync %s: %w", file, ris.Transient(err))
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("filestore: write %s: %w", file, ris.Transient(err))
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("filestore: commit %s: %w", file, ris.Transient(err))
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Files lists the record files present, without extension.
func (s *Store) Files() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", ris.Transient(err))
	}
	var out []string
	for _, e := range ents {
		if n, ok := strings.CutSuffix(e.Name(), ".rec"); ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
