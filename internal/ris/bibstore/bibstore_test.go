package bibstore

import (
	"errors"
	"testing"

	"cmtk/internal/ris"
)

func seed(t *testing.T) *Store {
	t.Helper()
	s := New("bib")
	err := s.Load(
		Record{Key: "widom96", Author: "Widom", Title: "Constraint Toolkit", Year: 1996, Venue: "ICDE"},
		Record{Key: "widom94", Author: "Widom", Title: "Proof Rules", Year: 1994, Venue: "TR"},
		Record{Key: "gm92", Author: "Garcia-Molina", Title: "Demarcation", Year: 1992, Venue: "EDBT"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestByAuthor(t *testing.T) {
	s := seed(t)
	recs := s.ByAuthor("widom")
	if len(recs) != 2 || recs[0].Key != "widom94" || recs[1].Key != "widom96" {
		t.Fatalf("ByAuthor = %v", recs)
	}
	if got := s.ByAuthor("  WIDOM "); len(got) != 2 {
		t.Fatalf("case/space normalization broken: %v", got)
	}
	if got := s.ByAuthor("nobody"); len(got) != 0 {
		t.Fatalf("unknown author = %v", got)
	}
}

func TestGetKeysRemove(t *testing.T) {
	s := seed(t)
	r, err := s.Get("gm92")
	if err != nil || r.Year != 1992 {
		t.Fatalf("Get = %+v, %v", r, err)
	}
	if _, err := s.Get("none"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if ks := s.Keys(); len(ks) != 3 || ks[0] != "gm92" {
		t.Fatalf("Keys = %v", ks)
	}
	if err := s.Remove("widom94"); err != nil {
		t.Fatal(err)
	}
	if len(s.ByAuthor("widom")) != 1 {
		t.Fatal("author index not updated")
	}
	if err := s.Remove("widom94"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
	// Removing the last record of an author clears the index entry.
	s.Remove("gm92")
	if len(s.ByAuthor("garcia-molina")) != 0 {
		t.Fatal("author index retains removed author")
	}
}

func TestLoadErrors(t *testing.T) {
	s := seed(t)
	if err := s.Load(Record{Key: "widom96"}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := s.Load(Record{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestCapabilitiesReadOnly(t *testing.T) {
	s := New("bib")
	caps := s.Capabilities()
	if caps.Has(ris.CapWrite) || caps.Has(ris.CapNotify) {
		t.Fatalf("caps = %v", caps)
	}
	if !caps.Has(ris.CapRead | ris.CapQuery) {
		t.Fatalf("caps = %v", caps)
	}
	if s.Name() != "bib" {
		t.Fatal("Name broken")
	}
}
