// Package bibstore implements a read-only bibliographic information
// system, the WAIS-like source of Sections 4.1 and 4.3.  Its native
// interface is query-only: submit an author query, get records back.  The
// constraint manager can neither write it nor subscribe to it, so the only
// strategies available over it are polling ones, and constraints that
// would require writing it can only be monitored — exactly the situation
// Section 6.3 motivates.
package bibstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cmtk/internal/ris"
)

// Record is one bibliography entry.
type Record struct {
	Key    string // citation key, unique
	Author string // primary author
	Title  string
	Year   int
	Venue  string
}

// Store is the bibliography.
type Store struct {
	mu      sync.RWMutex
	name    string
	byKey   map[string]Record
	byAuthr map[string][]string // author -> keys
}

// New creates an empty bibliography.
func New(name string) *Store {
	return &Store{name: name, byKey: map[string]Record{}, byAuthr: map[string][]string{}}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Capabilities: read and query only.
func (s *Store) Capabilities() ris.Capability { return ris.CapRead | ris.CapQuery }

// Load adds records during setup.  This is administrative population (the
// bibliography is maintained elsewhere), not a CM-visible write path.
func (s *Store) Load(recs ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.Key == "" {
			return fmt.Errorf("bibstore: record with empty key")
		}
		if _, dup := s.byKey[r.Key]; dup {
			return fmt.Errorf("bibstore: duplicate key %q", r.Key)
		}
		s.byKey[r.Key] = r
		a := normAuthor(r.Author)
		s.byAuthr[a] = append(s.byAuthr[a], r.Key)
	}
	return nil
}

// Remove deletes a record during administrative maintenance.
func (s *Store) Remove(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byKey[key]
	if !ok {
		return fmt.Errorf("bibstore: key %q: %w", key, ris.ErrNotFound)
	}
	delete(s.byKey, key)
	a := normAuthor(r.Author)
	keys := s.byAuthr[a]
	for i, k := range keys {
		if k == key {
			s.byAuthr[a] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(s.byAuthr[a]) == 0 {
		delete(s.byAuthr, a)
	}
	return nil
}

// ByAuthor is the native query: records whose primary author matches,
// case-insensitively, sorted by key.
func (s *Store) ByAuthor(author string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := append([]string(nil), s.byAuthr[normAuthor(author)]...)
	sort.Strings(keys)
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.byKey[k])
	}
	return out
}

// Get returns one record by key.
func (s *Store) Get(key string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byKey[key]
	if !ok {
		return Record{}, fmt.Errorf("bibstore: key %q: %w", key, ris.ErrNotFound)
	}
	return r, nil
}

// Keys lists all citation keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func normAuthor(a string) string { return strings.ToLower(strings.TrimSpace(a)) }
