package ris

import (
	"errors"
	"fmt"
	"testing"
)

func TestCapabilityHasAndString(t *testing.T) {
	c := CapRead | CapWrite | CapNotify
	if !c.Has(CapRead) || !c.Has(CapRead|CapWrite) {
		t.Error("Has broken")
	}
	if c.Has(CapDelete) || c.Has(CapRead|CapDelete) {
		t.Error("Has false positive")
	}
	if got := c.String(); got != "read|write|notify" {
		t.Errorf("String = %q", got)
	}
	if got := Capability(0).String(); got != "none" {
		t.Errorf("zero String = %q", got)
	}
}

func TestTransient(t *testing.T) {
	base := errors.New("boom")
	err := Transient(base)
	if !IsTransient(err) {
		t.Error("Transient not transient")
	}
	if !errors.Is(err, base) {
		t.Error("Unwrap broken")
	}
	wrapped := fmt.Errorf("context: %w", err)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not detected")
	}
	if IsTransient(base) || IsTransient(nil) {
		t.Error("false positive")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if err.Error() == "" {
		t.Error("empty error text")
	}
}
