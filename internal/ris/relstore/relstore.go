// Package relstore implements a small in-memory relational database
// engine with a SQL subset and row-level triggers.  It stands in for the
// Sybase and Oracle systems of the paper (Section 4.2): the CM-Translator
// for relational sources speaks to it exclusively through SQL text built
// from CM-RID command templates, and implements Notify interfaces by
// declaring triggers, exactly as the paper describes.
//
// Supported SQL:
//
//	CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL, PRIMARY KEY (a))
//	DROP TABLE t
//	INSERT INTO t (a, b) VALUES (1, 'x')
//	SELECT a, b FROM t WHERE a = 1 AND b <> 'y'
//	SELECT * FROM t
//	UPDATE t SET b = 'z' WHERE a = 1
//	DELETE FROM t WHERE a = 1
//
// Comparison operators: = <> != < <= > >=.  Literals: numbers, 'strings'
// (with ” escaping), NULL, TRUE, FALSE.  WHERE conditions are
// conjunctions of column-vs-literal comparisons.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cmtk/internal/data"
	"cmtk/internal/ris"
)

// ColType enumerates column types.
type ColType int

// Column types.
const (
	TInt ColType = iota
	TFloat
	TText
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOL"
	default:
		return "?"
	}
}

// Column is one column of a table schema.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Table   string
	Columns []Column
	PK      []string // primary-key column names, possibly empty
}

// Row is one tuple, positionally matching the schema's columns.
type Row []data.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// TriggerOp distinguishes the mutation kinds visible to triggers.
type TriggerOp int

// Trigger operations.
const (
	TrigInsert TriggerOp = iota
	TrigUpdate
	TrigDelete
)

func (o TriggerOp) String() string {
	switch o {
	case TrigInsert:
		return "INSERT"
	case TrigUpdate:
		return "UPDATE"
	case TrigDelete:
		return "DELETE"
	default:
		return "?"
	}
}

// Trigger is a row-level trigger callback.  old is nil for inserts, new is
// nil for deletes.  Triggers run after the statement commits, outside the
// engine lock, in firing order.
type Trigger func(op TriggerOp, table string, old, new Row)

// Result is the outcome of executing one statement.
type Result struct {
	Columns  []string
	Rows     []Row
	Affected int
}

type table struct {
	schema Schema
	colIdx map[string]int
	pkIdx  []int
	rows   map[string]Row
	nextID int64
}

// DB is the engine.  The zero value is not usable; use New.
type DB struct {
	mu       sync.RWMutex
	name     string
	tables   map[string]*table
	trigMu   sync.Mutex
	triggers map[string]map[int64]Trigger
	nextTrig int64
}

// New creates an empty database with the given name.
func New(name string) *DB {
	return &DB{
		name:     name,
		tables:   map[string]*table{},
		triggers: map[string]map[int64]Trigger{},
	}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Capabilities reports the native capability set: full read/write/delete,
// content queries, and trigger-based notification.
func (db *DB) Capabilities() ris.Capability {
	return ris.CapRead | ris.CapWrite | ris.CapDelete | ris.CapQuery | ris.CapNotify
}

// Tables lists the table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemaOf returns the schema of a table.
func (db *DB) SchemaOf(name string) (Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return Schema{}, fmt.Errorf("relstore: table %s: %w", name, ris.ErrNotFound)
	}
	return t.schema, nil
}

// RegisterTrigger installs a trigger on a table (the moral equivalent of
// CREATE TRIGGER; Section 4.2.1 notes a Sybase CM-Translator declares
// triggers during initialization).  It returns a cancel function.
func (db *DB) RegisterTrigger(tableName string, fn Trigger) (func(), error) {
	key := strings.ToLower(tableName)
	db.mu.RLock()
	_, ok := db.tables[key]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("relstore: table %s: %w", tableName, ris.ErrNotFound)
	}
	db.trigMu.Lock()
	defer db.trigMu.Unlock()
	if db.triggers[key] == nil {
		db.triggers[key] = map[int64]Trigger{}
	}
	id := db.nextTrig
	db.nextTrig++
	db.triggers[key][id] = fn
	return func() {
		db.trigMu.Lock()
		defer db.trigMu.Unlock()
		delete(db.triggers[key], id)
	}, nil
}

// firing is one pending trigger invocation.
type firing struct {
	op       TriggerOp
	table    string
	old, new Row
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	res, fires, err := db.run(stmt)
	if err != nil {
		return nil, err
	}
	db.fire(fires)
	return res, nil
}

func (db *DB) fire(fires []firing) {
	if len(fires) == 0 {
		return
	}
	db.trigMu.Lock()
	type call struct {
		fn Trigger
		f  firing
	}
	var calls []call
	for _, f := range fires {
		trigs := db.triggers[strings.ToLower(f.table)]
		ids := make([]int64, 0, len(trigs))
		for id := range trigs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			calls = append(calls, call{trigs[id], f})
		}
	}
	db.trigMu.Unlock()
	for _, c := range calls {
		c.fn(c.f.op, c.f.table, c.f.old, c.f.new)
	}
}

func (db *DB) run(stmt Stmt) (*Result, []firing, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := stmt.(type) {
	case *CreateStmt:
		return db.runCreate(s)
	case *DropStmt:
		return db.runDrop(s)
	case *InsertStmt:
		return db.runInsert(s)
	case *SelectStmt:
		return db.runSelect(s)
	case *UpdateStmt:
		return db.runUpdate(s)
	case *DeleteStmt:
		return db.runDelete(s)
	default:
		return nil, nil, fmt.Errorf("relstore: unknown statement type %T", stmt)
	}
}

func (db *DB) runCreate(s *CreateStmt) (*Result, []firing, error) {
	key := strings.ToLower(s.Schema.Table)
	if _, exists := db.tables[key]; exists {
		return nil, nil, fmt.Errorf("relstore: table %s already exists", s.Schema.Table)
	}
	t := &table{
		schema: s.Schema,
		colIdx: map[string]int{},
		rows:   map[string]Row{},
	}
	for i, c := range s.Schema.Columns {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, nil, fmt.Errorf("relstore: duplicate column %s", c.Name)
		}
		t.colIdx[lc] = i
	}
	for _, pk := range s.Schema.PK {
		idx, ok := t.colIdx[strings.ToLower(pk)]
		if !ok {
			return nil, nil, fmt.Errorf("relstore: primary key column %s not in table", pk)
		}
		t.pkIdx = append(t.pkIdx, idx)
	}
	db.tables[key] = t
	return &Result{}, nil, nil
}

func (db *DB) runDrop(s *DropStmt) (*Result, []firing, error) {
	key := strings.ToLower(s.Table)
	if _, ok := db.tables[key]; !ok {
		return nil, nil, fmt.Errorf("relstore: table %s: %w", s.Table, ris.ErrNotFound)
	}
	delete(db.tables, key)
	return &Result{}, nil, nil
}

func (t *table) keyFor(r Row) (string, error) {
	if len(t.pkIdx) == 0 {
		return "", nil // caller assigns a rowid
	}
	parts := make([]string, len(t.pkIdx))
	for i, idx := range t.pkIdx {
		if r[idx].IsNull() {
			return "", fmt.Errorf("relstore: null in primary key column %s", t.schema.Columns[idx].Name)
		}
		parts[i] = r[idx].String()
	}
	return strings.Join(parts, "\x00"), nil
}

// coerce checks/adapts a literal to a column type.
func coerce(v data.Value, ct ColType, col string) (data.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch ct {
	case TInt:
		if v.Kind() == data.Int {
			return v, nil
		}
		if f, ok := v.AsFloat(); ok && f == float64(int64(f)) {
			return data.NewInt(int64(f)), nil
		}
	case TFloat:
		if f, ok := v.AsFloat(); ok {
			return data.NewFloat(f), nil
		}
	case TText:
		if v.Kind() == data.String {
			return v, nil
		}
	case TBool:
		if v.Kind() == data.Bool {
			return v, nil
		}
	}
	return data.NullValue, fmt.Errorf("relstore: value %s does not fit column %s %s", v, col, ct)
}

func (db *DB) runInsert(s *InsertStmt) (*Result, []firing, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, nil, fmt.Errorf("relstore: table %s: %w", s.Table, ris.ErrNotFound)
	}
	row := make(Row, len(t.schema.Columns))
	for i := range row {
		row[i] = data.NullValue
	}
	cols := s.Columns
	if len(cols) == 0 {
		if len(s.Values) != len(t.schema.Columns) {
			return nil, nil, fmt.Errorf("relstore: INSERT has %d values for %d columns", len(s.Values), len(t.schema.Columns))
		}
		for _, c := range t.schema.Columns {
			cols = append(cols, c.Name)
		}
	}
	if len(cols) != len(s.Values) {
		return nil, nil, fmt.Errorf("relstore: INSERT has %d columns but %d values", len(cols), len(s.Values))
	}
	for i, cn := range cols {
		idx, ok := t.colIdx[strings.ToLower(cn)]
		if !ok {
			return nil, nil, fmt.Errorf("relstore: no column %s in %s", cn, s.Table)
		}
		v, err := coerce(s.Values[i], t.schema.Columns[idx].Type, cn)
		if err != nil {
			return nil, nil, err
		}
		row[idx] = v
	}
	key, err := t.keyFor(row)
	if err != nil {
		return nil, nil, err
	}
	if key == "" {
		key = fmt.Sprintf("\x01rowid:%d", t.nextID)
		t.nextID++
	} else if _, dup := t.rows[key]; dup {
		return nil, nil, fmt.Errorf("relstore: duplicate primary key in %s", s.Table)
	}
	t.rows[key] = row
	return &Result{Affected: 1}, []firing{{TrigInsert, t.schema.Table, nil, row.Clone()}}, nil
}

// matchWhere evaluates the conjunction against a row.
func (t *table) matchWhere(conds []Cond, r Row) (bool, error) {
	for _, c := range conds {
		idx, ok := t.colIdx[strings.ToLower(c.Column)]
		if !ok {
			return false, fmt.Errorf("relstore: no column %s in %s", c.Column, t.schema.Table)
		}
		v := r[idx]
		switch c.Op {
		case "=":
			if !v.Equal(c.Value) {
				return false, nil
			}
		case "<>", "!=":
			if v.Equal(c.Value) {
				return false, nil
			}
		default:
			cmp, ok := v.Compare(c.Value)
			if !ok {
				return false, nil
			}
			switch c.Op {
			case "<":
				if cmp >= 0 {
					return false, nil
				}
			case "<=":
				if cmp > 0 {
					return false, nil
				}
			case ">":
				if cmp <= 0 {
					return false, nil
				}
			case ">=":
				if cmp < 0 {
					return false, nil
				}
			default:
				return false, fmt.Errorf("relstore: unknown operator %q", c.Op)
			}
		}
	}
	return true, nil
}

// pkLookup returns the storage key when the WHERE conjunction pins every
// primary-key column with an equality — the common translator pattern
// "WHERE empid = $n" — enabling O(1) row access instead of a scan.
func (t *table) pkLookup(conds []Cond) (string, bool) {
	if len(t.pkIdx) == 0 {
		return "", false
	}
	vals := make([]data.Value, len(t.pkIdx))
	have := make([]bool, len(t.pkIdx))
	for _, c := range conds {
		if c.Op != "=" {
			continue
		}
		idx, ok := t.colIdx[strings.ToLower(c.Column)]
		if !ok {
			continue
		}
		for i, pk := range t.pkIdx {
			if pk == idx && !have[i] {
				vals[i] = c.Value
				have[i] = true
			}
		}
	}
	parts := make([]string, len(vals))
	for i := range vals {
		if !have[i] || vals[i].IsNull() {
			return "", false
		}
		parts[i] = vals[i].String()
	}
	return strings.Join(parts, "\x00"), true
}

// candidateKeys returns the keys a statement's WHERE must examine, in
// deterministic order: a single key on a full PK equality, else all rows.
func (t *table) candidateKeys(conds []Cond) []string {
	if key, ok := t.pkLookup(conds); ok {
		if _, exists := t.rows[key]; exists {
			return []string{key}
		}
		return nil
	}
	return t.sortedKeys()
}

// sortedKeys iterates rows deterministically.
func (t *table) sortedKeys() []string {
	ks := make([]string, 0, len(t.rows))
	for k := range t.rows {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func (db *DB) runSelect(s *SelectStmt) (*Result, []firing, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, nil, fmt.Errorf("relstore: table %s: %w", s.Table, ris.ErrNotFound)
	}
	var colIdx []int
	var colNames []string
	if s.Star {
		for i, c := range t.schema.Columns {
			colIdx = append(colIdx, i)
			colNames = append(colNames, c.Name)
		}
	} else {
		for _, cn := range s.Columns {
			idx, ok := t.colIdx[strings.ToLower(cn)]
			if !ok {
				return nil, nil, fmt.Errorf("relstore: no column %s in %s", cn, s.Table)
			}
			colIdx = append(colIdx, idx)
			colNames = append(colNames, t.schema.Columns[idx].Name)
		}
	}
	res := &Result{Columns: colNames}
	for _, k := range t.candidateKeys(s.Where) {
		r := t.rows[k]
		ok, err := t.matchWhere(s.Where, r)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		out := make(Row, len(colIdx))
		for i, idx := range colIdx {
			out[i] = r[idx]
		}
		res.Rows = append(res.Rows, out)
	}
	res.Affected = len(res.Rows)
	return res, nil, nil
}

func (db *DB) runUpdate(s *UpdateStmt) (*Result, []firing, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, nil, fmt.Errorf("relstore: table %s: %w", s.Table, ris.ErrNotFound)
	}
	// Pre-validate SET columns.
	type setOp struct {
		idx int
		v   data.Value
	}
	var sets []setOp
	for _, a := range s.Sets {
		idx, ok := t.colIdx[strings.ToLower(a.Column)]
		if !ok {
			return nil, nil, fmt.Errorf("relstore: no column %s in %s", a.Column, s.Table)
		}
		v, err := coerce(a.Value, t.schema.Columns[idx].Type, a.Column)
		if err != nil {
			return nil, nil, err
		}
		sets = append(sets, setOp{idx, v})
	}
	var fires []firing
	affected := 0
	for _, k := range t.candidateKeys(s.Where) {
		r := t.rows[k]
		ok, err := t.matchWhere(s.Where, r)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		old := r.Clone()
		nw := r.Clone()
		for _, so := range sets {
			nw[so.idx] = so.v
		}
		newKey, err := t.keyFor(nw)
		if err != nil {
			return nil, nil, err
		}
		if newKey == "" {
			newKey = k // no PK: row keeps its rowid
		}
		if newKey != k {
			if _, dup := t.rows[newKey]; dup {
				return nil, nil, fmt.Errorf("relstore: update would duplicate primary key in %s", s.Table)
			}
			delete(t.rows, k)
		}
		t.rows[newKey] = nw
		affected++
		fires = append(fires, firing{TrigUpdate, t.schema.Table, old, nw.Clone()})
	}
	return &Result{Affected: affected}, fires, nil
}

func (db *DB) runDelete(s *DeleteStmt) (*Result, []firing, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return nil, nil, fmt.Errorf("relstore: table %s: %w", s.Table, ris.ErrNotFound)
	}
	var fires []firing
	affected := 0
	for _, k := range t.candidateKeys(s.Where) {
		r := t.rows[k]
		ok, err := t.matchWhere(s.Where, r)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		delete(t.rows, k)
		affected++
		fires = append(fires, firing{TrigDelete, t.schema.Table, r, nil})
	}
	return &Result{Affected: affected}, fires, nil
}

// RowCount reports the number of rows in a table, for tests and tools.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("relstore: table %s: %w", tableName, ris.ErrNotFound)
	}
	return len(t.rows), nil
}
