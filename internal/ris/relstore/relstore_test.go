package relstore

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cmtk/internal/data"
	"cmtk/internal/ris"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newEmployees(t *testing.T) *DB {
	t.Helper()
	db := New("payroll")
	mustExec(t, db, "CREATE TABLE employees (empid TEXT, salary INT, dept TEXT, PRIMARY KEY (empid))")
	mustExec(t, db, "INSERT INTO employees (empid, salary, dept) VALUES ('e1', 100, 'sales')")
	mustExec(t, db, "INSERT INTO employees (empid, salary, dept) VALUES ('e2', 200, 'eng')")
	mustExec(t, db, "INSERT INTO employees (empid, salary, dept) VALUES ('e3', 300, 'eng')")
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newEmployees(t)
	res := mustExec(t, db, "SELECT salary FROM employees WHERE empid = 'e2'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(200)) {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "salary" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectStarAndOrder(t *testing.T) {
	db := newEmployees(t)
	res := mustExec(t, db, "SELECT * FROM employees")
	if len(res.Rows) != 3 || len(res.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	// Deterministic order by PK.
	if !res.Rows[0][0].Equal(data.NewString("e1")) || !res.Rows[2][0].Equal(data.NewString("e3")) {
		t.Fatalf("order: %v", res.Rows)
	}
}

func TestWhereOperators(t *testing.T) {
	db := newEmployees(t)
	cases := map[string]int{
		"SELECT empid FROM employees WHERE salary > 100":                  2,
		"SELECT empid FROM employees WHERE salary >= 100":                 3,
		"SELECT empid FROM employees WHERE salary < 300":                  2,
		"SELECT empid FROM employees WHERE salary <= 100":                 1,
		"SELECT empid FROM employees WHERE salary <> 200":                 2,
		"SELECT empid FROM employees WHERE salary != 200":                 2,
		"SELECT empid FROM employees WHERE dept = 'eng' AND salary > 200": 1,
		"SELECT empid FROM employees WHERE dept = 'hr'":                   0,
	}
	for sql, want := range cases {
		res := mustExec(t, db, sql)
		if len(res.Rows) != want {
			t.Errorf("%s: %d rows, want %d", sql, len(res.Rows), want)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := newEmployees(t)
	res := mustExec(t, db, "UPDATE employees SET salary = 250 WHERE empid = 'e2'")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, db, "SELECT salary FROM employees WHERE empid = 'e2'")
	if !got.Rows[0][0].Equal(data.NewInt(250)) {
		t.Fatalf("salary = %v", got.Rows[0][0])
	}
	// Multi-row update.
	res = mustExec(t, db, "UPDATE employees SET dept = 'ops' WHERE dept = 'eng'")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestUpdatePrimaryKeyRekeys(t *testing.T) {
	db := newEmployees(t)
	mustExec(t, db, "UPDATE employees SET empid = 'e9' WHERE empid = 'e1'")
	if r := mustExec(t, db, "SELECT * FROM employees WHERE empid = 'e9'"); len(r.Rows) != 1 {
		t.Fatal("rekeyed row missing")
	}
	if r := mustExec(t, db, "SELECT * FROM employees WHERE empid = 'e1'"); len(r.Rows) != 0 {
		t.Fatal("old key still present")
	}
	// Rekey onto an existing PK fails.
	if _, err := db.Exec("UPDATE employees SET empid = 'e2' WHERE empid = 'e9'"); err == nil {
		t.Fatal("duplicate-PK update succeeded")
	}
}

func TestDelete(t *testing.T) {
	db := newEmployees(t)
	res := mustExec(t, db, "DELETE FROM employees WHERE dept = 'eng'")
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	if n, _ := db.RowCount("employees"); n != 1 {
		t.Fatalf("RowCount = %d", n)
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	db := newEmployees(t)
	if _, err := db.Exec("INSERT INTO employees (empid, salary, dept) VALUES ('e1', 1, 'x')"); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
}

func TestTypeCoercion(t *testing.T) {
	db := New("t")
	mustExec(t, db, "CREATE TABLE v (i INT, f FLOAT, s TEXT, b BOOL)")
	// Float that is integral goes into INT; int goes into FLOAT.
	mustExec(t, db, "INSERT INTO v VALUES (3.0, 4, 'x', TRUE)")
	res := mustExec(t, db, "SELECT * FROM v")
	if res.Rows[0][0].Kind() != data.Int || res.Rows[0][1].Kind() != data.Float {
		t.Fatalf("kinds: %v %v", res.Rows[0][0].Kind(), res.Rows[0][1].Kind())
	}
	// Non-integral float into INT fails.
	if _, err := db.Exec("INSERT INTO v (i) VALUES (3.5)"); err == nil {
		t.Fatal("3.5 into INT succeeded")
	}
	if _, err := db.Exec("INSERT INTO v (s) VALUES (42)"); err == nil {
		t.Fatal("int into TEXT succeeded")
	}
	if _, err := db.Exec("INSERT INTO v (b) VALUES ('yes')"); err == nil {
		t.Fatal("string into BOOL succeeded")
	}
	// NULL fits anywhere (non-PK).
	mustExec(t, db, "INSERT INTO v (i) VALUES (NULL)")
}

func TestNullPKRejected(t *testing.T) {
	db := newEmployees(t)
	if _, err := db.Exec("INSERT INTO employees (salary) VALUES (5)"); err == nil {
		t.Fatal("null PK insert succeeded")
	}
}

func TestRowsWithoutPK(t *testing.T) {
	db := New("t")
	mustExec(t, db, "CREATE TABLE log (msg TEXT)")
	mustExec(t, db, "INSERT INTO log VALUES ('a')")
	mustExec(t, db, "INSERT INTO log VALUES ('a')") // duplicates allowed
	if n, _ := db.RowCount("log"); n != 2 {
		t.Fatalf("RowCount = %d", n)
	}
	mustExec(t, db, "UPDATE log SET msg = 'b'")
	res := mustExec(t, db, "SELECT msg FROM log WHERE msg = 'b'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTriggers(t *testing.T) {
	db := newEmployees(t)
	type fire struct {
		op       TriggerOp
		old, new Row
	}
	var fires []fire
	cancel, err := db.RegisterTrigger("employees", func(op TriggerOp, tbl string, old, new Row) {
		if tbl != "employees" {
			t.Errorf("table = %s", tbl)
		}
		fires = append(fires, fire{op, old, new})
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO employees (empid, salary, dept) VALUES ('e4', 400, 'hr')")
	mustExec(t, db, "UPDATE employees SET salary = 450 WHERE empid = 'e4'")
	mustExec(t, db, "DELETE FROM employees WHERE empid = 'e4'")
	if len(fires) != 3 {
		t.Fatalf("fires = %d", len(fires))
	}
	if fires[0].op != TrigInsert || fires[0].old != nil || fires[0].new == nil {
		t.Fatalf("insert fire: %+v", fires[0])
	}
	if fires[1].op != TrigUpdate || !fires[1].old[1].Equal(data.NewInt(400)) || !fires[1].new[1].Equal(data.NewInt(450)) {
		t.Fatalf("update fire: %+v", fires[1])
	}
	if fires[2].op != TrigDelete || fires[2].new != nil {
		t.Fatalf("delete fire: %+v", fires[2])
	}
	// After cancel, no more fires.
	cancel()
	mustExec(t, db, "INSERT INTO employees (empid, salary, dept) VALUES ('e5', 1, 'hr')")
	if len(fires) != 3 {
		t.Fatalf("trigger fired after cancel")
	}
}

func TestTriggerReentrancy(t *testing.T) {
	// A trigger that issues another statement must not deadlock (triggers
	// fire outside the engine lock).
	db := New("t")
	mustExec(t, db, "CREATE TABLE a (k INT, PRIMARY KEY (k))")
	mustExec(t, db, "CREATE TABLE audit (k INT)")
	_, err := db.RegisterTrigger("a", func(op TriggerOp, tbl string, old, new Row) {
		if op == TrigInsert {
			if _, err := db.Exec("INSERT INTO audit VALUES (1)"); err != nil {
				t.Errorf("reentrant exec: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	if n, _ := db.RowCount("audit"); n != 1 {
		t.Fatalf("audit rows = %d", n)
	}
}

func TestErrorsAndDrop(t *testing.T) {
	db := New("t")
	if _, err := db.Exec("SELECT * FROM missing"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	mustExec(t, db, "CREATE TABLE x (a INT)")
	if _, err := db.Exec("CREATE TABLE x (a INT)"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := db.Exec("SELECT nope FROM x"); err == nil {
		t.Fatal("unknown column succeeded")
	}
	if _, err := db.Exec("INSERT INTO x (nope) VALUES (1)"); err == nil {
		t.Fatal("insert into unknown column succeeded")
	}
	mustExec(t, db, "DROP TABLE x")
	if _, err := db.Exec("DROP TABLE x"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("double drop err = %v", err)
	}
	if _, err := db.RegisterTrigger("x", nil); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("trigger on missing table err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"BOGUS things",
		"CREATE TABLE",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a WIBBLE)",
		"CREATE TABLE t (a INT, PRIMARY KEY (zz))", // checked at exec
		"INSERT x VALUES (1)",
		"INSERT INTO t VALUES",
		"SELECT FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a LIKE 'x'",
		"UPDATE t",
		"DELETE t",
		"SELECT a FROM t extra stuff",
		"INSERT INTO t VALUES ('unterminated)",
	}
	db := New("t")
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded", sql)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := New("t")
	mustExec(t, db, "create table People (Name TEXT, Age int, primary key (name))")
	mustExec(t, db, "insert into people (NAME, age) values ('ann', 30)")
	res := mustExec(t, db, "SELECT AGE FROM PEOPLE WHERE name = 'ann'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(30)) {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Reported column names keep declared casing.
	if res.Columns[0] != "Age" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestStringEscaping(t *testing.T) {
	db := New("t")
	mustExec(t, db, "CREATE TABLE s (v TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES ('it''s')")
	res := mustExec(t, db, "SELECT v FROM s WHERE v = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "it's" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSchemaOfAndTables(t *testing.T) {
	db := newEmployees(t)
	sch, err := db.SchemaOf("employees")
	if err != nil || sch.Table != "employees" || len(sch.Columns) != 3 || len(sch.PK) != 1 {
		t.Fatalf("schema = %+v, %v", sch, err)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "employees" {
		t.Fatalf("tables = %v", got)
	}
	if !db.Capabilities().Has(ris.CapNotify | ris.CapWrite) {
		t.Fatal("capabilities missing")
	}
}

func TestQuoteSQL(t *testing.T) {
	cases := map[string]data.Value{
		"NULL":    data.NullValue,
		"TRUE":    data.NewBool(true),
		"FALSE":   data.NewBool(false),
		"42":      data.NewInt(42),
		"3.5":     data.NewFloat(3.5),
		"'x'":     data.NewString("x"),
		"'it''s'": data.NewString("it's"),
	}
	for want, v := range cases {
		if got := QuoteSQL(v); got != want {
			t.Errorf("QuoteSQL(%s) = %q, want %q", v, got, want)
		}
	}
}

// Property: a value round-trips through QuoteSQL + INSERT + SELECT.
func TestQuickValueRoundTrip(t *testing.T) {
	db := New("t")
	mustExec(t, db, "CREATE TABLE rt (k INT, v TEXT, PRIMARY KEY (k))")
	k := int64(0)
	f := func(s string) bool {
		if strings.ContainsRune(s, 0) {
			return true // NUL not representable in our line protocols anyway
		}
		k++
		ins := "INSERT INTO rt (k, v) VALUES (" + QuoteSQL(data.NewInt(k)) + ", " + QuoteSQL(data.NewString(s)) + ")"
		if _, err := db.Exec(ins); err != nil {
			return false
		}
		sel := "SELECT v FROM rt WHERE k = " + QuoteSQL(data.NewInt(k))
		res, err := db.Exec(sel)
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		return res.Rows[0][0].Str() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WHERE equality on the PK returns exactly the inserted row.
func TestQuickPKLookup(t *testing.T) {
	f := func(keys []int64) bool {
		db := New("q")
		if _, err := db.Exec("CREATE TABLE t (k INT, PRIMARY KEY (k))"); err != nil {
			return false
		}
		seen := map[int64]bool{}
		for _, k := range keys {
			_, err := db.Exec("INSERT INTO t VALUES (" + data.NewInt(k).String() + ")")
			if seen[k] {
				if err == nil {
					return false // dup must fail
				}
				continue
			}
			if err != nil {
				return false
			}
			seen[k] = true
		}
		for k := range seen {
			res, err := db.Exec("SELECT k FROM t WHERE k = " + data.NewInt(k).String())
			if err != nil || len(res.Rows) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPKFastPathSemantics(t *testing.T) {
	db := newEmployees(t)
	// PK equality with an extra non-matching condition: no rows.
	res := mustExec(t, db, "SELECT empid FROM employees WHERE empid = 'e1' AND salary > 999")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// PK equality on a missing key.
	res = mustExec(t, db, "SELECT empid FROM employees WHERE empid = 'nobody'")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Update and delete through the fast path.
	if r := mustExec(t, db, "UPDATE employees SET salary = 1 WHERE empid = 'e2' AND dept = 'eng'"); r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	if r := mustExec(t, db, "DELETE FROM employees WHERE empid = 'e2'"); r.Affected != 1 {
		t.Fatalf("affected = %d", r.Affected)
	}
	// Numeric coercion in the key: an INT pk matched by a float literal.
	mustExec(t, db, "CREATE TABLE nums (k INT, v TEXT, PRIMARY KEY (k))")
	mustExec(t, db, "INSERT INTO nums VALUES (5, 'x')")
	res = mustExec(t, db, "SELECT v FROM nums WHERE k = 5.0")
	if len(res.Rows) != 1 {
		t.Fatalf("float-literal PK lookup rows = %v", res.Rows)
	}
	// Non-equality on the PK falls back to a scan.
	res = mustExec(t, db, "SELECT empid FROM employees WHERE empid >= 'e1'")
	if len(res.Rows) != 2 {
		t.Fatalf("range rows = %v", res.Rows)
	}
}
