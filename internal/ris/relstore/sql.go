package relstore

import (
	"fmt"
	"strconv"
	"strings"

	"cmtk/internal/data"
)

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateStmt is CREATE TABLE.
type CreateStmt struct{ Schema Schema }

// DropStmt is DROP TABLE.
type DropStmt struct{ Table string }

// InsertStmt is INSERT INTO.
type InsertStmt struct {
	Table   string
	Columns []string // empty means positional
	Values  []data.Value
}

// Cond is one WHERE conjunct: column OP literal.
type Cond struct {
	Column string
	Op     string
	Value  data.Value
}

// SelectStmt is SELECT.
type SelectStmt struct {
	Table   string
	Columns []string
	Star    bool
	Where   []Cond
}

// Assign is one SET clause of an UPDATE.
type Assign struct {
	Column string
	Value  data.Value
}

// UpdateStmt is UPDATE.
type UpdateStmt struct {
	Table string
	Sets  []Assign
	Where []Cond
}

// DeleteStmt is DELETE FROM.
type DeleteStmt struct {
	Table string
	Where []Cond
}

func (*CreateStmt) stmt() {}
func (*DropStmt) stmt()   {}
func (*InsertStmt) stmt() {}
func (*SelectStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// sqlToken kinds.
type sqlTokKind int

const (
	sEOF sqlTokKind = iota
	sWord
	sNumber
	sString
	sPunct
)

type sqlTok struct {
	kind sqlTokKind
	text string
	val  data.Value
	pos  int
}

func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("relstore: unterminated string at offset %d", start)
			}
			toks = append(toks, sqlTok{kind: sString, val: data.NewString(b.String()), pos: start})
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			if c == '-' {
				i++
			}
			dotted := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' {
					dotted = true
				}
				i++
			}
			text := src[start:i]
			if dotted {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("relstore: bad number %q", text)
				}
				toks = append(toks, sqlTok{kind: sNumber, val: data.NewFloat(f), pos: start})
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relstore: bad number %q", text)
				}
				toks = append(toks, sqlTok{kind: sNumber, val: data.NewInt(n), pos: start})
			}
		case isSQLWordStart(c):
			start := i
			for i < len(src) && isSQLWordPart(src[i]) {
				i++
			}
			toks = append(toks, sqlTok{kind: sWord, text: src[start:i], pos: start})
		default:
			start := i
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				toks = append(toks, sqlTok{kind: sPunct, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', ';':
				toks = append(toks, sqlTok{kind: sPunct, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("relstore: unexpected character %q at offset %d", string(c), start)
			}
		}
	}
	toks = append(toks, sqlTok{kind: sEOF, pos: len(src)})
	return toks, nil
}

func isSQLWordStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isSQLWordPart(c byte) bool {
	return isSQLWordStart(c) || c >= '0' && c <= '9'
}

type sqlParser struct {
	toks []sqlTok
	i    int
}

func (p *sqlParser) cur() sqlTok { return p.toks[p.i] }

func (p *sqlParser) word() (string, error) {
	t := p.cur()
	if t.kind != sWord {
		return "", fmt.Errorf("relstore: expected identifier at offset %d", t.pos)
	}
	p.i++
	return t.text, nil
}

func (p *sqlParser) keyword(kw string) bool {
	t := p.cur()
	if t.kind == sWord && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("relstore: expected %s at offset %d", kw, p.cur().pos)
	}
	return nil
}

func (p *sqlParser) punct(s string) bool {
	t := p.cur()
	if t.kind == sPunct && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("relstore: expected %q at offset %d", s, p.cur().pos)
	}
	return nil
}

func (p *sqlParser) literal() (data.Value, error) {
	t := p.cur()
	switch t.kind {
	case sNumber, sString:
		p.i++
		return t.val, nil
	case sWord:
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.i++
			return data.NullValue, nil
		case "TRUE":
			p.i++
			return data.NewBool(true), nil
		case "FALSE":
			p.i++
			return data.NewBool(false), nil
		}
	}
	return data.NullValue, fmt.Errorf("relstore: expected literal at offset %d", t.pos)
}

func (p *sqlParser) atEnd() bool {
	t := p.cur()
	if t.kind == sPunct && t.text == ";" {
		p.i++
		t = p.cur()
	}
	return t.kind == sEOF
}

// Parse parses one SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var stmt Stmt
	switch {
	case p.keyword("CREATE"):
		stmt, err = p.parseCreate()
	case p.keyword("DROP"):
		stmt, err = p.parseDrop()
	case p.keyword("INSERT"):
		stmt, err = p.parseInsert()
	case p.keyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.keyword("UPDATE"):
		stmt, err = p.parseUpdate()
	case p.keyword("DELETE"):
		stmt, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("relstore: unknown statement %q", src)
	}
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("relstore: trailing input at offset %d", p.cur().pos)
	}
	return stmt, nil
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	sch := Schema{Table: name}
	for {
		if p.keyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.word()
				if err != nil {
					return nil, err
				}
				sch.PK = append(sch.PK, col)
				if !p.punct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.word()
			if err != nil {
				return nil, err
			}
			tw, err := p.word()
			if err != nil {
				return nil, err
			}
			var ct ColType
			switch strings.ToUpper(tw) {
			case "INT", "INTEGER", "BIGINT":
				ct = TInt
			case "FLOAT", "REAL", "DOUBLE":
				ct = TFloat
			case "TEXT", "VARCHAR", "CHAR", "STRING":
				ct = TText
			case "BOOL", "BOOLEAN":
				ct = TBool
			default:
				return nil, fmt.Errorf("relstore: unknown column type %q", tw)
			}
			// Optional length suffix: VARCHAR(32).
			if p.punct("(") {
				if _, err := p.literal(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			sch.Columns = append(sch.Columns, Column{Name: col, Type: ct})
		}
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(sch.Columns) == 0 {
		return nil, fmt.Errorf("relstore: table %s has no columns", name)
	}
	return &CreateStmt{Schema: sch}, nil
}

func (p *sqlParser) parseDrop() (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Table: name}, nil
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.punct("(") {
		for {
			col, err := p.word()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Values = append(st.Values, v)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseWhere() ([]Cond, error) {
	if !p.keyword("WHERE") {
		return nil, nil
	}
	var out []Cond
	for {
		col, err := p.word()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != sPunct {
			return nil, fmt.Errorf("relstore: expected comparison operator at offset %d", t.pos)
		}
		op := t.text
		switch op {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.i++
		default:
			return nil, fmt.Errorf("relstore: bad operator %q at offset %d", op, t.pos)
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, Cond{Column: col, Op: op, Value: v})
		if !p.keyword("AND") {
			break
		}
	}
	return out, nil
}

func (p *sqlParser) parseSelect() (Stmt, error) {
	st := &SelectStmt{}
	if p.punct("*") {
		st.Star = true
	} else {
		for {
			col, err := p.word()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.punct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	st.Table = name
	st.Where, err = p.parseWhere()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.word()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, Assign{Column: col, Value: v})
		if !p.punct(",") {
			break
		}
	}
	st.Where, err = p.parseWhere()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	var err2 error
	st.Where, err2 = p.parseWhere()
	if err2 != nil {
		return nil, err2
	}
	return st, nil
}

// QuoteSQL renders a data.Value as a SQL literal for command-template
// substitution in CM-RIDs ($b in "update employees set salary = $b ...").
func QuoteSQL(v data.Value) string {
	switch v.Kind() {
	case data.Null:
		return "NULL"
	case data.Bool:
		if v.Bool() {
			return "TRUE"
		}
		return "FALSE"
	case data.String:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	default:
		return v.String()
	}
}
