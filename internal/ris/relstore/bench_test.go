package relstore

import (
	"fmt"
	"testing"

	"cmtk/internal/data"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := New("bench")
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO employees VALUES ('e%d', %d)", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkRelstoreSelectByPK(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec("SELECT salary FROM employees WHERE empid = 'e500'")
		if err != nil || len(res.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreUpdate(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = 'e500'", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelstoreUpdateWithTrigger(b *testing.B) {
	db := benchDB(b, 1000)
	fired := 0
	cancel, err := db.RegisterTrigger("employees", func(TriggerOp, string, Row, Row) { fired++ })
	if err != nil {
		b.Fatal(err)
	}
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf("UPDATE employees SET salary = %d WHERE empid = 'e500'", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fired == 0 {
		b.Fatal("trigger never fired")
	}
}

func BenchmarkSQLParse(b *testing.B) {
	const q = "UPDATE employees SET salary = 1234 WHERE empid = 'e500' AND salary > 10"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuoteSQL(b *testing.B) {
	v := data.NewString("it's a value with 'quotes'")
	for i := 0; i < b.N; i++ {
		if QuoteSQL(v) == "" {
			b.Fatal("empty")
		}
	}
}
