package server

import (
	"errors"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/ris"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/filestore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/wire"
)

func relPair(t *testing.T) (*relstore.DB, *RelClient) {
	t.Helper()
	db := relstore.New("payroll")
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))"); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRel("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := DialRel(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return db, c
}

func TestRelExecOverWire(t *testing.T) {
	_, c := relPair(t)
	if _, err := c.Exec("INSERT INTO employees VALUES ('e1', 100)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(100)) {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "salary" {
		t.Fatalf("cols = %v", res.Columns)
	}
	// SQL errors survive the wire.
	if _, err := c.Exec("SELECT x FROM missing"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	// Affected count survives.
	res, err = c.Exec("UPDATE employees SET salary = 150 WHERE empid = 'e1'")
	if err != nil || res.Affected != 1 {
		t.Fatalf("affected = %d, %v", res.Affected, err)
	}
}

func TestRelRemoteTrigger(t *testing.T) {
	db, c := relPair(t)
	fires := make(chan relstore.TriggerOp, 4)
	cancel, err := c.RegisterTrigger("employees", func(op relstore.TriggerOp, tbl string, old, new relstore.Row) {
		if op == relstore.TrigUpdate {
			if old == nil || new == nil {
				t.Errorf("update rows: old=%v new=%v", old, new)
			}
			if !new[1].Equal(data.NewInt(200)) {
				t.Errorf("new salary = %v", new[1])
			}
		}
		fires <- op
	})
	if err != nil {
		t.Fatal(err)
	}
	// Local mutation on the server side must reach the remote watcher —
	// this is the notify interface over the wire.
	if _, err := db.Exec("INSERT INTO employees VALUES ('e1', 100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE employees SET salary = 200 WHERE empid = 'e1'"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []relstore.TriggerOp{relstore.TrigInsert, relstore.TrigUpdate} {
		select {
		case op := <-fires:
			if op != want {
				t.Fatalf("op = %v, want %v", op, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("trigger never arrived")
		}
	}
	cancel()
	// Give the unwatch a moment, then mutate again: no more fires.
	time.Sleep(50 * time.Millisecond)
	db.Exec("UPDATE employees SET salary = 300 WHERE empid = 'e1'")
	select {
	case op := <-fires:
		t.Fatalf("unexpected fire %v after cancel", op)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestRelTables(t *testing.T) {
	_, c := relPair(t)
	tables, err := c.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "employees" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
}

func TestKVOverWire(t *testing.T) {
	s := kvstore.New("lookup", false, true)
	srv, err := ServeKV("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialKV(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	changes := make(chan kvstore.Change, 4)
	if _, err := c.Watch(func(ch kvstore.Change) { changes <- ch }); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("ann", "phone", "555"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("ann", "phone")
	if err != nil || v != "555" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	attrs, err := c.Lookup("ann")
	if err != nil || attrs["phone"] != "555" {
		t.Fatalf("Lookup = %v, %v", attrs, err)
	}
	ents, err := c.Entities()
	if err != nil || len(ents) != 1 || ents[0] != "ann" {
		t.Fatalf("Entities = %v, %v", ents, err)
	}
	select {
	case ch := <-changes:
		if ch.Entity != "ann" || ch.New != "555" {
			t.Fatalf("change = %+v", ch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("change never arrived")
	}
	if err := c.Del("ann", "phone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("ann", "phone"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestKVReadOnlyOverWire(t *testing.T) {
	s := kvstore.New("whois", true, false)
	s.SeedSet("ann", "phone", "555")
	srv, err := ServeKV("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialKV(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("ann", "phone", "666"); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Watch(func(kvstore.Change) {}); !errors.Is(err, ris.ErrUnsupported) {
		t.Fatalf("watch err = %v", err)
	}
}

func TestFileOverWire(t *testing.T) {
	s, err := filestore.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeFile("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialFile(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write("phones", "ann", "555"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read("phones", "ann")
	if err != nil || v != "555" {
		t.Fatalf("Read = %q, %v", v, err)
	}
	snap, err := c.Snapshot("phones")
	if err != nil || snap["ann"] != "555" {
		t.Fatalf("Snapshot = %v, %v", snap, err)
	}
	if snap, err := c.Snapshot("empty"); err != nil || len(snap) != 0 {
		t.Fatalf("empty Snapshot = %v, %v", snap, err)
	}
	files, err := c.Files()
	if err != nil || len(files) != 1 {
		t.Fatalf("Files = %v, %v", files, err)
	}
	if err := c.Delete("phones", "ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read("phones", "ann"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBibOverWire(t *testing.T) {
	s := bibstore.New("bib")
	s.Load(
		bibstore.Record{Key: "w96", Author: "Widom", Title: "Toolkit", Year: 1996, Venue: "ICDE"},
		bibstore.Record{Key: "g92", Author: "Garcia-Molina", Title: "Demarcation", Year: 1992, Venue: "EDBT"},
	)
	srv, err := ServeBib("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialBib(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, err := c.ByAuthor("widom")
	if err != nil || len(recs) != 1 || recs[0].Year != 1996 {
		t.Fatalf("ByAuthor = %v, %v", recs, err)
	}
	r, err := c.Get("g92")
	if err != nil || r.Title != "Demarcation" {
		t.Fatalf("Get = %+v, %v", r, err)
	}
	if _, err := c.Get("none"); !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 2 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
}

func TestUnknownRequestRejected(t *testing.T) {
	db := relstore.New("x")
	srv, err := ServeRel("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(wire.Message{Type: "bogus"}); !errors.Is(err, ris.ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}
