package server

import (
	"fmt"
	"strconv"
	"sync"

	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/wire"
)

// RelClient speaks the relational dialect; it mirrors the relstore native
// API so CM-Translators work identically against a local engine or a
// remote server.
type RelClient struct {
	c  *wire.Client
	mu sync.Mutex
	// watchers by table; the server pushes one trigger stream per session.
	watchers map[string][]relstore.Trigger
}

// DialRel connects to a ServeRel address.
func DialRel(addr string, opts ...wire.DialOption) (*RelClient, error) {
	rc := &RelClient{watchers: map[string][]relstore.Trigger{}}
	c, err := wire.Dial(addr, rc.onPush, opts...)
	if err != nil {
		return nil, err
	}
	rc.c = c
	return rc, nil
}

func (rc *RelClient) onPush(m wire.Message) {
	if m.Type != "trigger" || len(m.Rows) != 2 {
		return
	}
	var op relstore.TriggerOp
	switch m.Field("op") {
	case "INSERT":
		op = relstore.TrigInsert
	case "UPDATE":
		op = relstore.TrigUpdate
	case "DELETE":
		op = relstore.TrigDelete
	default:
		return
	}
	var old, new relstore.Row
	if m.Field("hasold") != "" {
		old, _ = decodeRow(m.Rows[0])
	}
	if m.Field("hasnew") != "" {
		new, _ = decodeRow(m.Rows[1])
	}
	table := m.Field("table")
	rc.mu.Lock()
	fns := append([]relstore.Trigger(nil), rc.watchers[table]...)
	rc.mu.Unlock()
	for _, fn := range fns {
		fn(op, table, old, new)
	}
}

// Exec runs one SQL statement remotely.
func (rc *RelClient) Exec(sql string) (*relstore.Result, error) {
	reply, err := rc.c.Do(wire.Message{Type: "sql", F: map[string]string{"q": sql}})
	if err != nil {
		return nil, err
	}
	res := &relstore.Result{Columns: reply.Cols}
	if a := reply.Field("affected"); a != "" {
		res.Affected, _ = strconv.Atoi(a)
	}
	for _, row := range reply.Rows {
		r, err := decodeRow(row)
		if err != nil {
			return nil, fmt.Errorf("server: decoding result row: %w", err)
		}
		res.Rows = append(res.Rows, r)
	}
	return res, nil
}

// RegisterTrigger subscribes to a table's trigger stream.
func (rc *RelClient) RegisterTrigger(table string, fn relstore.Trigger) (func(), error) {
	rc.mu.Lock()
	first := len(rc.watchers[table]) == 0
	rc.watchers[table] = append(rc.watchers[table], fn)
	idx := len(rc.watchers[table]) - 1
	rc.mu.Unlock()
	if first {
		if _, err := rc.c.Do(wire.Message{Type: "watch", F: map[string]string{"table": table}}); err != nil {
			rc.mu.Lock()
			rc.watchers[table] = rc.watchers[table][:idx]
			rc.mu.Unlock()
			return nil, err
		}
	}
	return func() {
		rc.mu.Lock()
		fns := rc.watchers[table]
		if idx < len(fns) {
			fns[idx] = nil // tombstone; keep indices stable
		}
		empty := true
		for _, f := range fns {
			if f != nil {
				empty = false
			}
		}
		if empty {
			delete(rc.watchers, table)
		}
		rc.mu.Unlock()
		if empty {
			rc.c.Do(wire.Message{Type: "unwatch", F: map[string]string{"table": table}})
		}
	}, nil
}

// Tables lists remote tables.
func (rc *RelClient) Tables() ([]string, error) {
	reply, err := rc.c.Do(wire.Message{Type: "tables"})
	if err != nil {
		return nil, err
	}
	return reply.Cols, nil
}

// Close closes the connection.
func (rc *RelClient) Close() error { return rc.c.Close() }

// KVClient speaks the directory dialect.
type KVClient struct {
	c  *wire.Client
	mu sync.Mutex
	ws []func(kvstore.Change)
}

// DialKV connects to a ServeKV address.
func DialKV(addr string, opts ...wire.DialOption) (*KVClient, error) {
	kc := &KVClient{}
	c, err := wire.Dial(addr, kc.onPush, opts...)
	if err != nil {
		return nil, err
	}
	kc.c = c
	return kc, nil
}

func (kc *KVClient) onPush(m wire.Message) {
	if m.Type != "change" {
		return
	}
	ch := kvstore.Change{
		Entity: m.Field("entity"), Attr: m.Field("attr"),
		Old: m.Field("old"), New: m.Field("new"),
		OldOK: m.Field("oldok") != "", NewOK: m.Field("newok") != "",
	}
	kc.mu.Lock()
	fns := append([]func(kvstore.Change){}, kc.ws...)
	kc.mu.Unlock()
	for _, fn := range fns {
		if fn != nil {
			fn(ch)
		}
	}
}

// Get fetches one attribute.
func (kc *KVClient) Get(entity, attr string) (string, error) {
	reply, err := kc.c.Do(wire.Message{Type: "get", F: map[string]string{"entity": entity, "attr": attr}})
	if err != nil {
		return "", err
	}
	return reply.Field("value"), nil
}

// Set writes one attribute.
func (kc *KVClient) Set(entity, attr, value string) error {
	_, err := kc.c.Do(wire.Message{Type: "set", F: map[string]string{"entity": entity, "attr": attr, "value": value}})
	return err
}

// Del removes one attribute.
func (kc *KVClient) Del(entity, attr string) error {
	_, err := kc.c.Do(wire.Message{Type: "del", F: map[string]string{"entity": entity, "attr": attr}})
	return err
}

// Lookup fetches all attributes of an entity.
func (kc *KVClient) Lookup(entity string) (map[string]string, error) {
	reply, err := kc.c.Do(wire.Message{Type: "lookup", F: map[string]string{"entity": entity}})
	if err != nil {
		return nil, err
	}
	return reply.F, nil
}

// Entities lists entity names.
func (kc *KVClient) Entities() ([]string, error) {
	reply, err := kc.c.Do(wire.Message{Type: "entities"})
	if err != nil {
		return nil, err
	}
	return reply.Cols, nil
}

// Watch subscribes to the change stream.
func (kc *KVClient) Watch(fn func(kvstore.Change)) (func(), error) {
	kc.mu.Lock()
	first := len(kc.ws) == 0
	kc.ws = append(kc.ws, fn)
	idx := len(kc.ws) - 1
	kc.mu.Unlock()
	if first {
		if _, err := kc.c.Do(wire.Message{Type: "watch"}); err != nil {
			kc.mu.Lock()
			kc.ws = kc.ws[:idx]
			kc.mu.Unlock()
			return nil, err
		}
	}
	return func() {
		kc.mu.Lock()
		if idx < len(kc.ws) {
			kc.ws[idx] = nil
		}
		kc.mu.Unlock()
	}, nil
}

// Close closes the connection.
func (kc *KVClient) Close() error { return kc.c.Close() }

// FileClient speaks the flat-file dialect.
type FileClient struct{ c *wire.Client }

// DialFile connects to a ServeFile address.
func DialFile(addr string, opts ...wire.DialOption) (*FileClient, error) {
	c, err := wire.Dial(addr, nil, opts...)
	if err != nil {
		return nil, err
	}
	return &FileClient{c: c}, nil
}

// Read fetches one record.
func (fc *FileClient) Read(file, key string) (string, error) {
	reply, err := fc.c.Do(wire.Message{Type: "read", F: map[string]string{"file": file, "key": key}})
	if err != nil {
		return "", err
	}
	return reply.Field("value"), nil
}

// Write sets one record.
func (fc *FileClient) Write(file, key, value string) error {
	_, err := fc.c.Do(wire.Message{Type: "write", F: map[string]string{"file": file, "key": key, "value": value}})
	return err
}

// Delete removes one record.
func (fc *FileClient) Delete(file, key string) error {
	_, err := fc.c.Do(wire.Message{Type: "delete", F: map[string]string{"file": file, "key": key}})
	return err
}

// Snapshot fetches all records of a file.
func (fc *FileClient) Snapshot(file string) (map[string]string, error) {
	reply, err := fc.c.Do(wire.Message{Type: "snapshot", F: map[string]string{"file": file}})
	if err != nil {
		return nil, err
	}
	if reply.F == nil {
		return map[string]string{}, nil
	}
	return reply.F, nil
}

// Files lists record files.
func (fc *FileClient) Files() ([]string, error) {
	reply, err := fc.c.Do(wire.Message{Type: "files"})
	if err != nil {
		return nil, err
	}
	return reply.Cols, nil
}

// Close closes the connection.
func (fc *FileClient) Close() error { return fc.c.Close() }

// BibClient speaks the bibliographic dialect.
type BibClient struct{ c *wire.Client }

// DialBib connects to a ServeBib address.
func DialBib(addr string, opts ...wire.DialOption) (*BibClient, error) {
	c, err := wire.Dial(addr, nil, opts...)
	if err != nil {
		return nil, err
	}
	return &BibClient{c: c}, nil
}

// ByAuthor queries records by author.
func (bc *BibClient) ByAuthor(author string) ([]bibstore.Record, error) {
	reply, err := bc.c.Do(wire.Message{Type: "byauthor", F: map[string]string{"author": author}})
	if err != nil {
		return nil, err
	}
	out := make([]bibstore.Record, 0, len(reply.Rows))
	for _, row := range reply.Rows {
		r, err := decodeRecord(row)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Get fetches one record by key.
func (bc *BibClient) Get(key string) (bibstore.Record, error) {
	reply, err := bc.c.Do(wire.Message{Type: "get", F: map[string]string{"key": key}})
	if err != nil {
		return bibstore.Record{}, err
	}
	if len(reply.Rows) != 1 {
		return bibstore.Record{}, fmt.Errorf("server: get returned %d rows", len(reply.Rows))
	}
	return decodeRecord(reply.Rows[0])
}

// Keys lists citation keys.
func (bc *BibClient) Keys() ([]string, error) {
	reply, err := bc.c.Do(wire.Message{Type: "keys"})
	if err != nil {
		return nil, err
	}
	return reply.Cols, nil
}

// Close closes the connection.
func (bc *BibClient) Close() error { return bc.c.Close() }
