package server

import (
	"cmtk/internal/obs"
	"cmtk/internal/wire"
)

// instrument wraps a dialect handler so every request and server push is
// counted in obs.Default: cmtk_ris_requests_total{kind,type,status} and
// cmtk_ris_pushes_total{kind}.  The decorator is transparent — sessions
// and the push callback pass straight through to the dialect handler.
func instrument(kind string, inner wire.Handler) wire.Handler {
	return obsHandler{
		inner: inner,
		kind:  kind,
		reqs: obs.Default.Counter("cmtk_ris_requests_total",
			"RIS server requests, by dialect, request type, and reply status.",
			"kind", "type", "status"),
		pushes: obs.Default.Counter("cmtk_ris_pushes_total",
			"Server-initiated push messages (trigger and watch notifications), by dialect.",
			"kind").With(kind),
	}
}

type obsHandler struct {
	inner  wire.Handler
	kind   string
	reqs   *obs.CounterVec
	pushes *obs.Counter
}

func (h obsHandler) NewSession(push func(wire.Message) error) (wire.Session, error) {
	s, err := h.inner.NewSession(func(m wire.Message) error {
		h.pushes.Inc()
		return push(m)
	})
	if err != nil {
		return nil, err
	}
	return obsSession{inner: s, h: h}, nil
}

type obsSession struct {
	inner wire.Session
	h     obsHandler
}

func (s obsSession) Handle(m wire.Message) wire.Message {
	reply := s.inner.Handle(m)
	status := "ok"
	if reply.Type == "error" {
		status = "error"
	}
	s.h.reqs.With(s.h.kind, m.Type, status).Inc()
	return reply
}

func (s obsSession) Close() { s.inner.Close() }
