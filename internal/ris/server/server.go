// Package server exposes each Raw Information Source kind over TCP in its
// own dialect, and provides matching clients.  The dialects deliberately
// differ per kind — SQL text for relational stores, entity/attribute
// commands for directory servers, file operations for flat files, author
// queries for bibliographies — because presenting heterogeneous native
// interfaces (the RISIs of Figure 2) is the premise of the paper's
// architecture.  Only the framing (package wire) is shared.
package server

import (
	"fmt"
	"strconv"
	"sync"

	"cmtk/internal/data"
	"cmtk/internal/ris"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/filestore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/wire"
)

// ---- relational dialect ----

// relHandler serves a relstore.DB.
type relHandler struct{ db *relstore.DB }

// ServeRel serves db over TCP at addr (":0" for ephemeral).
func ServeRel(addr string, db *relstore.DB) (*wire.Server, error) {
	return wire.Serve(addr, instrument("rel", relHandler{db}))
}

func (h relHandler) NewSession(push func(wire.Message) error) (wire.Session, error) {
	return &relSession{db: h.db, push: push, watches: map[string]func(){}}, nil
}

type relSession struct {
	db      *relstore.DB
	push    func(wire.Message) error
	mu      sync.Mutex
	watches map[string]func()
}

func (s *relSession) Handle(m wire.Message) wire.Message {
	switch m.Type {
	case "sql":
		res, err := s.db.Exec(m.Field("q"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		reply := wire.Reply(m)
		reply.Cols = res.Columns
		reply.F = map[string]string{"affected": strconv.Itoa(res.Affected)}
		for _, row := range res.Rows {
			reply.Rows = append(reply.Rows, encodeRow(row))
		}
		return reply
	case "watch":
		table := m.Field("table")
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, dup := s.watches[table]; dup {
			return wire.ErrorReply(m, fmt.Errorf("relstore: table %s already watched on this connection", table))
		}
		cancel, err := s.db.RegisterTrigger(table, func(op relstore.TriggerOp, tbl string, old, new relstore.Row) {
			ev := wire.Message{Type: "trigger", F: map[string]string{"op": op.String(), "table": tbl}}
			if old != nil {
				ev.Rows = append(ev.Rows, encodeRow(old))
				ev.F["hasold"] = "1"
			} else {
				ev.Rows = append(ev.Rows, nil)
			}
			if new != nil {
				ev.Rows = append(ev.Rows, encodeRow(new))
				ev.F["hasnew"] = "1"
			} else {
				ev.Rows = append(ev.Rows, nil)
			}
			s.push(ev) // best effort; a dead conn ends the session anyway
		})
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		s.watches[table] = cancel
		return wire.Reply(m)
	case "unwatch":
		table := m.Field("table")
		s.mu.Lock()
		defer s.mu.Unlock()
		cancel, ok := s.watches[table]
		if !ok {
			return wire.ErrorReply(m, fmt.Errorf("relstore: table %s not watched: %w", table, ris.ErrNotFound))
		}
		cancel()
		delete(s.watches, table)
		return wire.Reply(m)
	case "tables":
		reply := wire.Reply(m)
		reply.Cols = s.db.Tables()
		return reply
	default:
		return wire.ErrorReply(m, fmt.Errorf("relstore: unknown request %q: %w", m.Type, ris.ErrUnsupported))
	}
}

func (s *relSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cancel := range s.watches {
		cancel()
	}
	s.watches = map[string]func(){}
}

func encodeRow(r relstore.Row) []string {
	out := make([]string, len(r))
	for i, v := range r {
		out[i] = v.String()
	}
	return out
}

func decodeRow(r []string) (relstore.Row, error) {
	out := make(relstore.Row, len(r))
	for i, s := range r {
		v, err := data.ParseLiteral(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---- key-value (whois) dialect ----

type kvHandler struct{ s *kvstore.Store }

// ServeKV serves a directory store over TCP.
func ServeKV(addr string, s *kvstore.Store) (*wire.Server, error) {
	return wire.Serve(addr, instrument("kv", kvHandler{s}))
}

func (h kvHandler) NewSession(push func(wire.Message) error) (wire.Session, error) {
	return &kvSession{s: h.s, push: push}, nil
}

type kvSession struct {
	s      *kvstore.Store
	push   func(wire.Message) error
	mu     sync.Mutex
	cancel func()
}

func (s *kvSession) Handle(m wire.Message) wire.Message {
	switch m.Type {
	case "get":
		v, err := s.s.Get(m.Field("entity"), m.Field("attr"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m).WithField("value", v)
	case "set":
		if err := s.s.Set(m.Field("entity"), m.Field("attr"), m.Field("value")); err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m)
	case "del":
		if err := s.s.Del(m.Field("entity"), m.Field("attr")); err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m)
	case "lookup":
		attrs, err := s.s.Lookup(m.Field("entity"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		reply := wire.Reply(m)
		reply.F = attrs
		return reply
	case "entities":
		reply := wire.Reply(m)
		reply.Cols = s.s.Entities()
		return reply
	case "watch":
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.cancel != nil {
			return wire.ErrorReply(m, fmt.Errorf("kvstore: already watching on this connection"))
		}
		cancel, err := s.s.Watch(func(c kvstore.Change) {
			s.push(wire.Message{Type: "change", F: map[string]string{
				"entity": c.Entity, "attr": c.Attr,
				"old": c.Old, "new": c.New,
				"oldok": boolStr(c.OldOK), "newok": boolStr(c.NewOK),
			}})
		})
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		s.cancel = cancel
		return wire.Reply(m)
	default:
		return wire.ErrorReply(m, fmt.Errorf("kvstore: unknown request %q: %w", m.Type, ris.ErrUnsupported))
	}
}

func (s *kvSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return ""
}

// ---- flat-file dialect ----

type fileHandler struct{ s *filestore.Store }

// ServeFile serves a filestore over TCP.
func ServeFile(addr string, s *filestore.Store) (*wire.Server, error) {
	return wire.Serve(addr, instrument("file", fileHandler{s}))
}

func (h fileHandler) NewSession(func(wire.Message) error) (wire.Session, error) {
	return fileSession{h.s}, nil
}

type fileSession struct{ s *filestore.Store }

func (s fileSession) Handle(m wire.Message) wire.Message {
	switch m.Type {
	case "read":
		v, err := s.s.Read(m.Field("file"), m.Field("key"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m).WithField("value", v)
	case "write":
		if err := s.s.Write(m.Field("file"), m.Field("key"), m.Field("value")); err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m)
	case "delete":
		if err := s.s.Delete(m.Field("file"), m.Field("key")); err != nil {
			return wire.ErrorReply(m, err)
		}
		return wire.Reply(m)
	case "snapshot":
		recs, err := s.s.Snapshot(m.Field("file"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		reply := wire.Reply(m)
		reply.F = recs
		return reply
	case "files":
		fs, err := s.s.Files()
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		reply := wire.Reply(m)
		reply.Cols = fs
		return reply
	default:
		return wire.ErrorReply(m, fmt.Errorf("filestore: unknown request %q: %w", m.Type, ris.ErrUnsupported))
	}
}

func (fileSession) Close() {}

// ---- bibliographic dialect ----

type bibHandler struct{ s *bibstore.Store }

// ServeBib serves a bibliography over TCP.
func ServeBib(addr string, s *bibstore.Store) (*wire.Server, error) {
	return wire.Serve(addr, instrument("bib", bibHandler{s}))
}

func (h bibHandler) NewSession(func(wire.Message) error) (wire.Session, error) {
	return bibSession{h.s}, nil
}

type bibSession struct{ s *bibstore.Store }

func encodeRecord(r bibstore.Record) []string {
	return []string{r.Key, r.Author, r.Title, strconv.Itoa(r.Year), r.Venue}
}

func decodeRecord(row []string) (bibstore.Record, error) {
	if len(row) != 5 {
		return bibstore.Record{}, fmt.Errorf("bibstore: bad record row of %d fields", len(row))
	}
	year, err := strconv.Atoi(row[3])
	if err != nil {
		return bibstore.Record{}, fmt.Errorf("bibstore: bad year %q", row[3])
	}
	return bibstore.Record{Key: row[0], Author: row[1], Title: row[2], Year: year, Venue: row[4]}, nil
}

func (s bibSession) Handle(m wire.Message) wire.Message {
	switch m.Type {
	case "byauthor":
		reply := wire.Reply(m)
		for _, r := range s.s.ByAuthor(m.Field("author")) {
			reply.Rows = append(reply.Rows, encodeRecord(r))
		}
		return reply
	case "get":
		r, err := s.s.Get(m.Field("key"))
		if err != nil {
			return wire.ErrorReply(m, err)
		}
		reply := wire.Reply(m)
		reply.Rows = [][]string{encodeRecord(r)}
		return reply
	case "keys":
		reply := wire.Reply(m)
		reply.Cols = s.s.Keys()
		return reply
	default:
		return wire.ErrorReply(m, fmt.Errorf("bibstore: unknown request %q: %w", m.Type, ris.ErrUnsupported))
	}
}

func (bibSession) Close() {}
