package vclock

import (
	"sync"
	"time"
)

// Skewed wraps a Clock and offsets every Now reading by an adjustable
// amount, modelling a site whose local clock has drifted from the rest of
// the deployment.  Timers are unaffected: AfterFunc durations are
// relative, and a skewed site's hardware still ticks at the right rate —
// only its notion of "what time is it" is wrong.  That is exactly the
// fault mode that matters for the paper's metric guarantees: timestamps a
// skewed shell records into the trace shift by the offset, so a
// MetricFollows/MetricLeads bound of κ seconds observably fails once the
// skew eats the slack and recovers when the site re-syncs.
//
// SetOffset may be called at any time (e.g. mid-campaign from
// internal/chaos); readings are monotone per call site only insofar as the
// underlying clock is, so tests asserting exact verdicts should change the
// offset at quiescent points.
type Skewed struct {
	inner Clock
	mu    sync.Mutex
	off   time.Duration
}

// NewSkewed wraps inner with an initial offset.
func NewSkewed(inner Clock, offset time.Duration) *Skewed {
	if inner == nil {
		inner = Real{}
	}
	return &Skewed{inner: inner, off: offset}
}

// Now implements Clock: the inner clock's reading plus the current offset.
func (s *Skewed) Now() time.Time {
	s.mu.Lock()
	off := s.off
	s.mu.Unlock()
	return s.inner.Now().Add(off)
}

// AfterFunc implements Clock by delegating to the inner clock: relative
// delays are not affected by absolute skew.
func (s *Skewed) AfterFunc(d time.Duration, f func()) Timer {
	return s.inner.AfterFunc(d, f)
}

// SetOffset replaces the skew applied to Now readings.
func (s *Skewed) SetOffset(d time.Duration) {
	s.mu.Lock()
	s.off = d
	s.mu.Unlock()
}

// Offset reports the current skew.
func (s *Skewed) Offset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// Resync zeroes the offset, modelling an NTP step back to true time.
func (s *Skewed) Resync() { s.SetOffset(0) }

var _ Clock = (*Skewed)(nil)
