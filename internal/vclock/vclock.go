// Package vclock provides the notion of time used throughout the toolkit.
//
// The paper's interfaces, strategies and guarantees are all stated with
// explicit time bounds (the δ and ε subscripts of Section 3).  To make those
// bounds testable we route every timer and every timestamp through a Clock.
// Two implementations are provided: Real, a thin wrapper over package time
// for live deployments, and Virtual, a deterministic discrete-event
// scheduler used by tests, examples and the benchmark harness.  With a
// Virtual clock an entire multi-site scenario runs single-threaded and
// reproducibly, so metric guarantees such as "within κ seconds" can be
// verified exactly rather than flakily.
package vclock

import (
	"container/heap"
	"sync"
	"time"

	"cmtk/internal/data"
)

// Timer is a handle to a pending callback scheduled with AfterFunc.
type Timer interface {
	// Stop cancels the timer.  It reports whether the call stopped the
	// timer before its callback ran.
	Stop() bool
}

// Clock abstracts "now" and one-shot timers.  All toolkit components take a
// Clock rather than calling package time directly.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run once after duration d.  The callback
	// runs on an unspecified goroutine for Real clocks and synchronously
	// inside Advance/Step for Virtual clocks.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real is a Clock backed by the system clock.  The zero value is usable.
type Real struct{}

// Now implements Clock.
//
//cmlint:allow wallclock(Real is the one sanctioned bridge to the system clock)
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
//
//cmlint:allow wallclock(Real is the one sanctioned bridge to the system clock)
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

var _ Clock = Real{}

// Virtual is a deterministic simulated Clock.  Time stands still except
// inside Advance, AdvanceTo and Run, which deliver pending callbacks in
// timestamp order (ties broken by scheduling order).  Virtual is safe for
// concurrent use, but for full determinism scenarios should schedule and
// advance from a single goroutine.
type Virtual struct {
	mu   sync.Mutex
	now  time.Time
	seq  uint64
	hp   timerHeap
	busy bool // true while delivering callbacks
}

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Epoch is the conventional start instant used by tests and benches.
var Epoch = time.Date(1996, time.February, 26, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock.  A non-positive d schedules f at the current
// instant; it still will not run until the next Advance, Step or Run call.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{clock: v, when: v.now.Add(d), seq: v.seq, f: f}
	v.seq++
	heap.Push(&v.hp, t)
	return t
}

// Pending reports the number of callbacks still scheduled.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hp.Len()
}

// NextAt returns the due time of the earliest pending callback.  The second
// result is false when nothing is pending.
func (v *Virtual) NextAt() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.hp.Len() == 0 {
		return time.Time{}, false
	}
	return v.hp[0].when, true
}

// Step delivers the single earliest pending callback, moving the clock to
// its due time.  It reports whether a callback ran.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if v.hp.Len() == 0 {
		v.mu.Unlock()
		return false
	}
	t := heap.Pop(&v.hp).(*vtimer)
	t.popped = true
	if t.when.After(v.now) {
		v.now = t.when
	}
	f := t.f
	v.mu.Unlock()
	if f != nil && !t.stopped() {
		f()
	}
	return true
}

// Advance moves the clock forward by d, delivering every callback that
// falls due, in order.  Callbacks may schedule further callbacks; those are
// delivered too if they fall within the window.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock forward to instant t (never backward),
// delivering every callback due at or before t in order.
func (v *Virtual) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if v.hp.Len() == 0 || v.hp[0].when.After(t) {
			if t.After(v.now) {
				v.now = t
			}
			v.mu.Unlock()
			return
		}
		tm := heap.Pop(&v.hp).(*vtimer)
		tm.popped = true
		if tm.when.After(v.now) {
			v.now = tm.when
		}
		f := tm.f
		v.mu.Unlock()
		if f != nil && !tm.stopped() {
			f()
		}
	}
}

// Run delivers callbacks until none are pending or the limit is reached.
// A limit of 0 means no limit.  It returns the number of callbacks run.
// Periodic schedules reschedule themselves forever, so scenarios that use
// Every should prefer Advance/AdvanceTo with an explicit horizon.
func (v *Virtual) Run(limit int) int {
	n := 0
	for limit == 0 || n < limit {
		if !v.Step() {
			break
		}
		n++
	}
	return n
}

type vtimer struct {
	clock  *Virtual
	when   time.Time
	seq    uint64
	f      func()
	idx    int
	popped bool
	mu     sync.Mutex
	dead   bool
}

func (t *vtimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return false
	}
	t.dead = true
	// If still in the heap it will be skipped at delivery time; removing it
	// eagerly would require holding the clock lock here, inviting lock-order
	// trouble with callbacks that call Stop.
	return !t.popped
}

func (t *vtimer) stopped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return true
	}
	t.dead = true // callback is about to run exactly once
	return false
}

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Every schedules f to run on clock c every period p, starting one period
// from now.  It returns a Timer whose Stop cancels the schedule.  This is
// the implementation behind the paper's periodic events P(p).
func Every(c Clock, p time.Duration, f func()) Timer {
	if p <= 0 {
		panic("vclock: non-positive period")
	}
	e := &every{clock: c, period: p, f: f}
	e.mu.Lock()
	e.inner = c.AfterFunc(p, e.tick)
	e.mu.Unlock()
	return e
}

type every struct {
	clock  Clock
	period time.Duration
	f      func()
	mu     sync.Mutex
	inner  Timer
	dead   bool
}

func (e *every) tick() {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return
	}
	e.inner = e.clock.AfterFunc(e.period, e.tick)
	e.mu.Unlock()
	e.f()
}

func (e *every) Stop() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return false
	}
	e.dead = true
	if e.inner != nil {
		e.inner.Stop()
	}
	return true
}

// TimeValue encodes an instant as a data.Value holding whole seconds
// since Epoch, so rule strategies can store times in data items (the Tb
// auxiliary item of Section 6.3).
func TimeValue(t time.Time) data.Value {
	return data.NewInt(int64(t.Sub(Epoch) / time.Second))
}

// ValueTime decodes a TimeValue; ok is false for non-numeric values.
func ValueTime(v data.Value) (time.Time, bool) {
	f, ok := v.AsFloat()
	if !ok {
		return time.Time{}, false
	}
	return Epoch.Add(time.Duration(f * float64(time.Second))), true
}
