package vclock

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualNowAdvances(t *testing.T) {
	v := NewVirtual(Epoch)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
	v.Advance(3 * time.Second)
	if got, want := v.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestVirtualAfterFuncOrder(t *testing.T) {
	v := NewVirtual(Epoch)
	var got []int
	v.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	v.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	v.AfterFunc(3*time.Second, func() { got = append(got, 3) })
	v.Advance(10 * time.Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", got)
	}
}

func TestVirtualTieBreakBySchedulingOrder(t *testing.T) {
	v := NewVirtual(Epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Second, func() { got = append(got, i) })
	}
	v.Advance(time.Second)
	for i, x := range got {
		if x != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestVirtualAdvancePartial(t *testing.T) {
	v := NewVirtual(Epoch)
	ran := 0
	v.AfterFunc(1*time.Second, func() { ran++ })
	v.AfterFunc(5*time.Second, func() { ran++ })
	v.Advance(2 * time.Second)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", v.Pending())
	}
	v.Advance(3 * time.Second)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
}

func TestVirtualCallbackSchedulesCallback(t *testing.T) {
	v := NewVirtual(Epoch)
	var seen []time.Duration
	v.AfterFunc(time.Second, func() {
		seen = append(seen, v.Now().Sub(Epoch))
		v.AfterFunc(time.Second, func() {
			seen = append(seen, v.Now().Sub(Epoch))
		})
	})
	v.Advance(5 * time.Second)
	if len(seen) != 2 || seen[0] != time.Second || seen[1] != 2*time.Second {
		t.Fatalf("seen = %v, want [1s 2s]", seen)
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(Epoch)
	ran := false
	tm := v.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	v.Advance(2 * time.Second)
	if ran {
		t.Fatal("stopped timer ran")
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	v := NewVirtual(Epoch)
	tm := v.AfterFunc(time.Second, func() {})
	v.Advance(2 * time.Second)
	if tm.Stop() {
		t.Fatal("Stop after fire = true, want false")
	}
}

func TestVirtualZeroDelay(t *testing.T) {
	v := NewVirtual(Epoch)
	ran := false
	v.AfterFunc(0, func() { ran = true })
	if ran {
		t.Fatal("callback ran before Advance")
	}
	v.Advance(0)
	if !ran {
		t.Fatal("zero-delay callback did not run on Advance(0)")
	}
}

func TestVirtualNegativeDelayClamped(t *testing.T) {
	v := NewVirtual(Epoch)
	ran := false
	v.AfterFunc(-time.Hour, func() { ran = true })
	v.Advance(0)
	if !ran {
		t.Fatal("negative-delay callback did not run")
	}
	if v.Now().Before(Epoch) {
		t.Fatal("clock moved backward")
	}
}

func TestVirtualStep(t *testing.T) {
	v := NewVirtual(Epoch)
	var got []int
	v.AfterFunc(2*time.Second, func() { got = append(got, 2) })
	v.AfterFunc(1*time.Second, func() { got = append(got, 1) })
	if !v.Step() {
		t.Fatal("Step() = false with pending timers")
	}
	if got, want := v.Now(), Epoch.Add(time.Second); !got.Equal(want) {
		t.Fatalf("Now after Step = %v, want %v", got, want)
	}
	v.Step()
	if v.Step() {
		t.Fatal("Step() = true with empty heap")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got = %v", got)
	}
}

func TestVirtualRunLimit(t *testing.T) {
	v := NewVirtual(Epoch)
	for i := 0; i < 5; i++ {
		v.AfterFunc(time.Duration(i)*time.Second, func() {})
	}
	if n := v.Run(3); n != 3 {
		t.Fatalf("Run(3) = %d, want 3", n)
	}
	if n := v.Run(0); n != 2 {
		t.Fatalf("Run(0) = %d, want 2", n)
	}
}

func TestVirtualNextAt(t *testing.T) {
	v := NewVirtual(Epoch)
	if _, ok := v.NextAt(); ok {
		t.Fatal("NextAt ok on empty clock")
	}
	v.AfterFunc(4*time.Second, func() {})
	at, ok := v.NextAt()
	if !ok || !at.Equal(Epoch.Add(4*time.Second)) {
		t.Fatalf("NextAt = %v,%v", at, ok)
	}
}

func TestEveryPeriodic(t *testing.T) {
	v := NewVirtual(Epoch)
	var ticks []time.Duration
	tm := Every(v, 300*time.Second, func() {
		ticks = append(ticks, v.Now().Sub(Epoch))
	})
	v.Advance(1000 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 of them", ticks)
	}
	for i, tk := range ticks {
		if want := time.Duration(i+1) * 300 * time.Second; tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false")
	}
	v.Advance(1000 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", len(ticks))
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	Every(NewVirtual(Epoch), 0, func() {})
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Minute)) {
		t.Fatal("Real.Now() too far in the past")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.AfterFunc callback never ran")
	}
}

func TestVirtualConcurrentSchedule(t *testing.T) {
	v := NewVirtual(Epoch)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	v.Advance(time.Second)
	if count != 50 {
		t.Fatalf("count = %d, want 50", count)
	}
}

// Property: delivering k timers with arbitrary delays visits them in
// nondecreasing time order, and the clock ends at the max delay horizon.
func TestQuickDeliveryOrdered(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		v := NewVirtual(Epoch)
		var fired []time.Time
		for _, d := range delaysMs {
			v.AfterFunc(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, v.Now())
			})
		}
		v.Advance(time.Duration(1<<16) * time.Millisecond)
		if len(fired) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i].Before(fired[j]) }) {
			return false
		}
		want := make([]time.Duration, len(delaysMs))
		for i, d := range delaysMs {
			want[i] = time.Duration(d) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fired {
			if fired[i].Sub(Epoch) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset of timers means exactly the unstopped
// ones fire.
func TestQuickStopSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		v := NewVirtual(Epoch)
		n := rng.Intn(20) + 1
		fired := make([]bool, n)
		timers := make([]Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = v.AfterFunc(time.Duration(rng.Intn(100))*time.Millisecond, func() { fired[i] = true })
		}
		stopped := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				stopped[i] = timers[i].Stop()
			}
		}
		v.Advance(time.Second)
		for i := 0; i < n; i++ {
			if stopped[i] == fired[i] {
				t.Fatalf("iter %d timer %d: stopped=%v fired=%v", iter, i, stopped[i], fired[i])
			}
		}
	}
}
