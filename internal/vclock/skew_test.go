package vclock_test

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

func TestSkewedClockBasics(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	sk := vclock.NewSkewed(clk, 10*time.Second)
	if got := sk.Now(); !got.Equal(vclock.Epoch.Add(10 * time.Second)) {
		t.Fatalf("Now = %v, want Epoch+10s", got)
	}
	// Timers run on the inner clock: relative delays are unaffected by
	// absolute skew.
	ran := false
	sk.AfterFunc(5*time.Second, func() { ran = true })
	clk.Advance(4 * time.Second)
	if ran {
		t.Fatal("timer fired early")
	}
	clk.Advance(time.Second)
	if !ran {
		t.Fatal("timer did not fire after 5s of inner time")
	}
	sk.SetOffset(-3 * time.Second)
	if got, want := sk.Now(), clk.Now().Add(-3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
	sk.Resync()
	if off := sk.Offset(); off != 0 {
		t.Fatalf("offset after Resync = %v", off)
	}
	if !sk.Now().Equal(clk.Now()) {
		t.Fatal("resynced clock disagrees with inner")
	}
}

// skewScenario replays a two-process execution into a shared trace:
// process X records writes on the true clock; process Y applies each of
// X's values exactly propDelay later but stamps the event off its own,
// possibly skewed, clock — precisely what a skewed CM-Shell does to the
// trace.  offsets[i] is Y's clock offset when it applies update i.
func skewScenario(offsets []time.Duration, propDelay time.Duration) *trace.Trace {
	clk := vclock.NewVirtual(vclock.Epoch)
	yClock := vclock.NewSkewed(clk, 0)
	tr := trace.New(nil)
	itemX, itemY := data.Item("X"), data.Item("Y")
	at := func(d time.Duration) time.Time { return vclock.Epoch.Add(d) }
	for i, off := range offsets {
		v := data.NewInt(int64(i + 1))
		base := time.Duration(10*(i+1)) * time.Second
		clk.AdvanceTo(at(base))
		tr.Append(&event.Event{Time: clk.Now(), Site: "A", Desc: event.W(itemX, v)})
		clk.AdvanceTo(at(base + propDelay))
		yClock.SetOffset(off)
		tr.Append(&event.Event{Time: yClock.Now(), Site: "B", Desc: event.W(itemY, v)})
	}
	// Trailing marker so the checker's horizon covers every X sample.
	clk.Advance(time.Minute)
	tr.Append(&event.Event{Time: clk.Now(), Site: "A", Desc: event.W(data.Item("Zend"), data.NewInt(0))})
	return tr
}

// TestSkewShiftsMetricLeadsVerdictExactly walks the metric-leads bound:
// with propagation delay d and skew σ, the apparent delay is d+σ, so the
// verdict flips exactly when d+σ exceeds κ — at the boundary it still
// holds — and recovers for updates recorded after re-sync.
func TestSkewShiftsMetricLeadsVerdictExactly(t *testing.T) {
	const d = 2 * time.Second
	g := guarantee.MetricLeads{X: "X", Y: "Y", Kappa: 5 * time.Second}

	// No skew: d = 2s <= 5s for every update.
	rep := g.Check(skewScenario([]time.Duration{0, 0, 0}, d))
	if !rep.Holds || rep.Checked != 3 || len(rep.Violations) != 0 {
		t.Fatalf("no-skew: %+v", rep)
	}

	// Skew exactly at the slack (σ = κ−d): apparent delay d+σ = κ, still
	// within the bound — the verdict must NOT flip early.
	rep = g.Check(skewScenario([]time.Duration{3 * time.Second, 3 * time.Second, 3 * time.Second}, d))
	if !rep.Holds || len(rep.Violations) != 0 {
		t.Fatalf("boundary skew κ-d: %+v", rep)
	}

	// One nanosecond past the slack: every skewed update violates.
	rep = g.Check(skewScenario([]time.Duration{
		3*time.Second + time.Nanosecond,
		3*time.Second + time.Nanosecond,
		3*time.Second + time.Nanosecond,
	}, d))
	if rep.Holds || len(rep.Violations) != 3 {
		t.Fatalf("past-boundary skew: want 3 violations, got %+v", rep)
	}

	// Mid-run drift and re-sync: update 2 lands while Y is 4s fast
	// (apparent delay 6s > κ), updates 1 and 3 on a synced clock.  The
	// verdict degrades for exactly the skewed update and recovers after
	// re-sync — the exact correlation a chaos campaign asserts.
	rep = g.Check(skewScenario([]time.Duration{0, 4 * time.Second, 0}, d))
	if rep.Holds || rep.Checked != 3 || len(rep.Violations) != 1 {
		t.Fatalf("drift+resync: want exactly 1 violation of 3 checked, got %+v", rep)
	}
}

// TestNegativeSkewBreaksMetricFollowsExactly: a slow receiver clock makes
// the replica's write appear BEFORE the primary ever held the value,
// violating metric-follows; within the κ window it holds.
func TestNegativeSkewBreaksMetricFollowsExactly(t *testing.T) {
	const d = 2 * time.Second
	g := guarantee.MetricFollows{X: "X", Y: "Y", Kappa: 5 * time.Second}

	// Y stamps d-1s... offset -1s: apparent apply time is 1s after the
	// write — fine.
	rep := g.Check(skewScenario([]time.Duration{-time.Second, -time.Second, -time.Second}, d))
	if !rep.Holds || rep.Checked != 3 || len(rep.Violations) != 0 {
		t.Fatalf("small negative skew: %+v", rep)
	}

	// Offset -3s: apparent apply time precedes the primary's write by 1s —
	// Y holds a value X has never held.  Every update violates.
	rep = g.Check(skewScenario([]time.Duration{-3 * time.Second, -3 * time.Second, -3 * time.Second}, d))
	if rep.Holds || len(rep.Violations) != 3 {
		t.Fatalf("large negative skew: want 3 violations, got %+v", rep)
	}

	// Re-sync restores the verdict for later updates exactly.
	rep = g.Check(skewScenario([]time.Duration{-3 * time.Second, 0, 0}, d))
	if rep.Holds || len(rep.Violations) != 1 {
		t.Fatalf("resync: want exactly 1 violation, got %+v", rep)
	}
}
