package rid

import (
	"os"
	"strings"
	"testing"
	"time"
)

const sample = `
# CM-RID for site B (Sybase payroll)
kind relstore
site B
addr 127.0.0.1:7001

item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary

interface WR(salary2(n), b) ->3s W(salary2(n), b)
interface Ws(salary2(n), b) ->2s N(salary2(n), b)
`

func TestParseSample(t *testing.T) {
	cfg, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != KindRel || cfg.Site != "B" || cfg.Addr != "127.0.0.1:7001" {
		t.Fatalf("header = %+v", cfg)
	}
	if cfg.Local() {
		t.Fatal("networked config reports local")
	}
	b, ok := cfg.Binding("salary2")
	if !ok || b.Type != "int" || b.WatchTable != "employees" || b.KeyCol != "empid" {
		t.Fatalf("binding = %+v", b)
	}
	if !strings.Contains(b.WriteSQL, "$b") || !strings.Contains(b.ReadSQL, "$n") {
		t.Fatalf("templates = %+v", b)
	}
	if len(cfg.Statements) != 2 {
		t.Fatalf("statements = %d", len(cfg.Statements))
	}
	if cfg.Statements[0].Delta != 3*time.Second {
		t.Fatalf("delta = %v", cfg.Statements[0].Delta)
	}
}

func TestRoundTrip(t *testing.T) {
	cfg, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := ParseString(cfg.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, cfg.String())
	}
	if cfg.String() != cfg2.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", cfg.String(), cfg2.String())
	}
}

func TestLocalDefault(t *testing.T) {
	cfg, err := ParseString("kind kvstore\nsite L\nitem p\n  attr phone\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Local() {
		t.Fatal("config without addr not local")
	}
	if b, _ := cfg.Binding("p"); b.Type != "string" {
		t.Fatalf("default type = %q", b.Type)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                // missing kind
		"kind nosuch\nsite A",             // bad kind
		"kind relstore",                   // missing site
		"kind relstore\nsite A\nbogus x",  // unknown directive
		"kind relstore\nsite A\ntype int", // binding key outside item
		"kind relstore\nsite A\nitem x",   // rel binding without read
		"kind kvstore\nsite A\nitem x",    // kv binding without attr
		"kind filestore\nsite A\nitem x",  // file binding without file
		"kind bibstore\nsite A\nitem x",   // bib binding without field
		"kind relstore\nsite A\nitem x\n  read q\nitem x\n  read q", // dup item
		"kind relstore\nsite A\nitem x\n  type widget\n  read q",    // bad type
		// interface mentioning unbound item
		"kind relstore\nsite A\ninterface WR(y(n), b) ->1s W(y(n), b)",
		// interface with two steps is not an interface statement
		"kind relstore\nsite A\nitem x\n  read q\ninterface WR(x(n), b) ->1s W(x(n), b), W(x(n), b)",
		"kind relstore\nsite A\nsite", // site without name... parsed as empty
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded", src)
		}
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/b.rid"
	if err := writeFile(path, sample); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseFile(path)
	if err != nil || cfg.Site != "B" {
		t.Fatalf("ParseFile = %+v, %v", cfg, err)
	}
	if _, err := ParseFile(dir + "/missing.rid"); err == nil {
		t.Fatal("missing file parsed")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
