// Package rid implements the CM-Raw Interface Description (CM-RID) file
// format of Section 4.1.  A CM-RID configures a standard CM-Translator to
// one particular Raw Information Source: which kind of source it is, where
// it lives, how each constraint-relevant item family maps onto the
// source's native objects (SQL command templates, directory attributes,
// file records), and which interface statements the resulting translator
// honors, with their time bounds.
//
// Format (line oriented; '#' comments):
//
//	kind relstore
//	site B
//	addr 127.0.0.1:7001          # omit or "local" for in-process sources
//
//	item salary2
//	  type int
//	  read   SELECT salary FROM employees WHERE empid = $n
//	  write  UPDATE employees SET salary = $b WHERE empid = $n
//	  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
//	  delete DELETE FROM employees WHERE empid = $n
//	  list   SELECT empid FROM employees
//	  watch  employees
//	  keycol empid
//	  valcol salary
//
//	interface WR(salary2(n), b) ->3s W(salary2(n), b)
//	interface Ws(salary2(n), b) ->2s N(salary2(n), b)
//
// For kvstore sources the binding uses "attr <name>"; for filestore
// sources "file <name>"; bibstore bindings use "field title|author|venue
// |year|key".  $n substitutes the item's first argument, $b the value
// (SQL-quoted in SQL templates, raw elsewhere).
package rid

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cmtk/internal/rule"
)

// Kind names the supported source kinds.
const (
	KindRel  = "relstore"
	KindKV   = "kvstore"
	KindFile = "filestore"
	KindBib  = "bibstore"
)

// ItemBinding maps one item family onto native objects of the source.
type ItemBinding struct {
	Base string
	Type string // int | float | string | bool (value type; default string)

	// Relational bindings: SQL command templates with $n/$b placeholders.
	ReadSQL, WriteSQL, InsertSQL, DeleteSQL, ListSQL string
	WatchTable, KeyCol, ValCol                       string

	// NotifyCond makes the notify interface conditional (Section 3.1.1):
	// a change is forwarded only when the expression over a (old value)
	// and b (new value) is true, e.g. "abs(b - a) > 0.1 * a".  Evaluated
	// inside the translator, modelling filtering the database itself does.
	NotifyCond rule.Expr

	// Directory binding: the attribute carrying this family ($n = entity).
	Attr string

	// Flat-file binding: the record file ($n = record key).
	File string

	// Bibliographic binding: which record field is the item's value.
	Field string
}

// Config is a parsed CM-RID.
type Config struct {
	Kind       string
	Site       string
	Addr       string // network address, or "" / "local" for in-process
	Items      map[string]*ItemBinding
	Statements []rule.Rule
}

// Local reports whether the source is in-process.
func (c *Config) Local() bool { return c.Addr == "" || c.Addr == "local" }

// Binding returns the binding for an item base.
func (c *Config) Binding(base string) (*ItemBinding, bool) {
	b, ok := c.Items[base]
	return b, ok
}

// Parse reads a CM-RID.
func Parse(r io.Reader) (*Config, error) {
	cfg := &Config{Items: map[string]*ItemBinding{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var cur *ItemBinding
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest := splitWord(line)
		switch word {
		case "kind":
			switch rest {
			case KindRel, KindKV, KindFile, KindBib:
				cfg.Kind = rest
			default:
				return nil, fmt.Errorf("rid: line %d: unknown kind %q", lineNo, rest)
			}
		case "site":
			if rest == "" {
				return nil, fmt.Errorf("rid: line %d: site wants a name", lineNo)
			}
			cfg.Site = rest
		case "addr":
			cfg.Addr = rest
		case "item":
			if rest == "" {
				return nil, fmt.Errorf("rid: line %d: item wants a base name", lineNo)
			}
			if _, dup := cfg.Items[rest]; dup {
				return nil, fmt.Errorf("rid: line %d: duplicate item %s", lineNo, rest)
			}
			cur = &ItemBinding{Base: rest, Type: "string"}
			cfg.Items[rest] = cur
		case "interface":
			r, err := rule.ParseRule(rest)
			if err != nil {
				return nil, fmt.Errorf("rid: line %d: %w", lineNo, err)
			}
			if !r.IsInterfaceStatement() {
				return nil, fmt.Errorf("rid: line %d: interface statements must have exactly one right-hand event", lineNo)
			}
			if r.ID == "" {
				r.ID = fmt.Sprintf("if%d", len(cfg.Statements)+1)
			}
			cfg.Statements = append(cfg.Statements, r)
		case "type", "read", "write", "insert", "delete", "list", "watch",
			"keycol", "valcol", "attr", "file", "field", "notifycond":
			if cur == nil {
				return nil, fmt.Errorf("rid: line %d: %s outside an item block", lineNo, word)
			}
			if rest == "" {
				return nil, fmt.Errorf("rid: line %d: %s wants a value", lineNo, word)
			}
			switch word {
			case "type":
				switch rest {
				case "int", "float", "string", "bool":
					cur.Type = rest
				default:
					return nil, fmt.Errorf("rid: line %d: unknown type %q", lineNo, rest)
				}
			case "read":
				cur.ReadSQL = rest
			case "write":
				cur.WriteSQL = rest
			case "insert":
				cur.InsertSQL = rest
			case "delete":
				cur.DeleteSQL = rest
			case "list":
				cur.ListSQL = rest
			case "watch":
				cur.WatchTable = rest
			case "keycol":
				cur.KeyCol = rest
			case "valcol":
				cur.ValCol = rest
			case "attr":
				cur.Attr = rest
			case "file":
				cur.File = rest
			case "field":
				cur.Field = rest
			case "notifycond":
				e, err := rule.ParseExpr(rest)
				if err != nil {
					return nil, fmt.Errorf("rid: line %d: notifycond: %w", lineNo, err)
				}
				cur.NotifyCond = e
			}
		default:
			return nil, fmt.Errorf("rid: line %d: unknown directive %q", lineNo, word)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rid: reading: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseString parses a CM-RID from a string.
func ParseString(s string) (*Config, error) { return Parse(strings.NewReader(s)) }

// ParseFile parses a CM-RID file.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rid: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Validate checks kind-specific binding completeness.
func (c *Config) Validate() error {
	if c.Kind == "" {
		return fmt.Errorf("rid: missing kind")
	}
	if c.Site == "" {
		return fmt.Errorf("rid: missing site")
	}
	for base, b := range c.Items {
		switch c.Kind {
		case KindRel:
			if b.ReadSQL == "" {
				return fmt.Errorf("rid: item %s: relstore binding needs a read template", base)
			}
		case KindKV:
			if b.Attr == "" {
				return fmt.Errorf("rid: item %s: kvstore binding needs an attr", base)
			}
		case KindFile:
			if b.File == "" {
				return fmt.Errorf("rid: item %s: filestore binding needs a file", base)
			}
		case KindBib:
			if b.Field == "" {
				return fmt.Errorf("rid: item %s: bibstore binding needs a field", base)
			}
		}
	}
	// Interface statements must mention bound items.
	for _, st := range c.Statements {
		bases := map[string]bool{}
		if st.LHS.Op.HasItem() {
			bases[st.LHS.Item.Base] = true
		}
		for _, s := range st.Steps {
			if s.Eff.Op.HasItem() {
				bases[s.Eff.Item.Base] = true
			}
		}
		for base := range bases {
			if _, ok := c.Items[base]; !ok {
				return fmt.Errorf("rid: interface statement %s mentions unbound item %s", st.ID, base)
			}
		}
	}
	return nil
}

// String renders the config back in CM-RID syntax.
func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind %s\nsite %s\n", c.Kind, c.Site)
	if c.Addr != "" {
		fmt.Fprintf(&b, "addr %s\n", c.Addr)
	}
	bases := make([]string, 0, len(c.Items))
	for base := range c.Items {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		ib := c.Items[base]
		fmt.Fprintf(&b, "item %s\n", base)
		fmt.Fprintf(&b, "  type %s\n", ib.Type)
		put := func(k, v string) {
			if v != "" {
				fmt.Fprintf(&b, "  %s %s\n", k, v)
			}
		}
		put("read", ib.ReadSQL)
		put("write", ib.WriteSQL)
		put("insert", ib.InsertSQL)
		put("delete", ib.DeleteSQL)
		put("list", ib.ListSQL)
		put("watch", ib.WatchTable)
		put("keycol", ib.KeyCol)
		put("valcol", ib.ValCol)
		put("attr", ib.Attr)
		put("file", ib.File)
		put("field", ib.Field)
		if ib.NotifyCond != nil {
			fmt.Fprintf(&b, "  notifycond %s\n", ib.NotifyCond)
		}
	}
	for _, st := range c.Statements {
		fmt.Fprintf(&b, "interface %s\n", st)
	}
	return b.String()
}

func splitWord(s string) (word, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}
