package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cmtk/internal/ris"
)

// echoHandler replies to "echo" with the same fields, supports "pushme"
// which triggers a server push, and errors on anything else.
type echoHandler struct{}

type echoSession struct {
	push func(Message) error
}

func (echoHandler) NewSession(push func(Message) error) (Session, error) {
	return &echoSession{push: push}, nil
}

func (s *echoSession) Handle(m Message) Message {
	switch m.Type {
	case "echo":
		r := Reply(m)
		r.F = m.F
		return r
	case "pushme":
		go s.push(Message{Type: "event", F: map[string]string{"n": m.Field("n")}})
		return Reply(m)
	case "notfound":
		return ErrorReply(m, fmt.Errorf("thing: %w", ris.ErrNotFound))
	case "slow":
		time.Sleep(200 * time.Millisecond)
		return Reply(m)
	default:
		return ErrorReply(m, errors.New("boom"))
	}
}

func (s *echoSession) Close() {}

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestRequestResponse(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Do(Message{Type: "echo", F: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Field("k") != "v" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestErrorTaxonomySurvivesWire(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do(Message{Type: "notfound"})
	if !errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	_, err = c.Do(Message{Type: "bogus"})
	if err == nil || errors.Is(err, ris.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerPush(t *testing.T) {
	srv := startServer(t)
	got := make(chan Message, 1)
	c, err := Dial(srv.Addr(), func(m Message) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(Message{Type: "pushme", F: map[string]string{"n": "42"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Type != "event" || m.Field("n") != "42" {
			t.Fatalf("push = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never arrived")
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			reply, err := c.Do(Message{Type: "echo", F: map[string]string{"i": key}})
			if err != nil {
				errs <- err
				return
			}
			if reply.Field("i") != key {
				errs <- fmt.Errorf("mismatched reply for %s", key)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTimeout(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(20 * time.Millisecond)
	_, err = c.Do(Message{Type: "slow"})
	if !ris.IsTransient(err) {
		t.Fatalf("timeout err = %v", err)
	}
}

func TestServerCloseUnblocksClient(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	_, err = c.Do(Message{Type: "echo"})
	if err == nil {
		t.Fatal("Do succeeded after server close")
	}
}

func TestDialFailure(t *testing.T) {
	_, err := Dial("127.0.0.1:1", nil) // nothing listens on port 1
	if err == nil {
		t.Fatal("Dial succeeded")
	}
	if !ris.IsTransient(err) {
		t.Fatalf("dial err not transient: %v", err)
	}
}

func TestEncodeDecodeError(t *testing.T) {
	cases := []error{
		fmt.Errorf("x: %w", ris.ErrNotFound),
		fmt.Errorf("x: %w", ris.ErrReadOnly),
		fmt.Errorf("x: %w", ris.ErrUnsupported),
		ris.Transient(errors.New("x")),
		errors.New("plain"),
	}
	for _, err := range cases {
		got := DecodeError(EncodeError(err))
		switch {
		case errors.Is(err, ris.ErrNotFound) && !errors.Is(got, ris.ErrNotFound):
			t.Errorf("notfound lost: %v", got)
		case errors.Is(err, ris.ErrReadOnly) && !errors.Is(got, ris.ErrReadOnly):
			t.Errorf("readonly lost: %v", got)
		case errors.Is(err, ris.ErrUnsupported) && !errors.Is(got, ris.ErrUnsupported):
			t.Errorf("unsupported lost: %v", got)
		case ris.IsTransient(err) && !ris.IsTransient(got):
			t.Errorf("transient lost: %v", got)
		}
	}
	if DecodeError("") != nil || EncodeError(nil) != "" {
		t.Error("nil handling broken")
	}
}

func TestWithField(t *testing.T) {
	m := Message{Type: "x"}
	m2 := m.WithField("a", "1").WithField("b", "2")
	if m2.Field("a") != "1" || m2.Field("b") != "2" {
		t.Fatalf("m2 = %+v", m2)
	}
	if m.Field("a") != "" {
		t.Fatal("WithField mutated receiver")
	}
}

func TestDialOptions(t *testing.T) {
	srv := startServer(t)
	c, err := Dial(srv.Addr(), nil,
		WithDialTimeout(time.Second),
		WithRequestTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.timeout != 20*time.Millisecond {
		t.Fatalf("request timeout = %v", c.timeout)
	}
	// The configured request timeout governs Do: "slow" sleeps 200ms.
	if _, err := c.Do(Message{Type: "slow"}); !ris.IsTransient(err) {
		t.Fatalf("timeout err = %v", err)
	}
	// Defaults survive when no options are given.
	c2, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.timeout != 10*time.Second {
		t.Fatalf("default request timeout = %v", c2.timeout)
	}
}
