// Package wire provides the framing used by every network protocol in the
// toolkit: length-prefixed JSON messages over TCP, with synchronous
// request/response plus server-initiated push (for remote notify
// interfaces).  Messages on one connection are processed strictly in
// order, which is the in-order delivery assumption of Appendix A.2
// property 7 made concrete.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"cmtk/internal/ris"
)

// MaxFrame bounds a single message to keep a corrupt peer from forcing
// huge allocations.
const MaxFrame = 8 << 20

// Message is the single envelope used by all toolkit protocols.  Type
// names the operation (request) or reply kind; F carries scalar fields;
// Cols/Rows carry tabular payloads with values rendered as rule-language
// literals.
type Message struct {
	ID   uint64            `json:"id,omitempty"`
	Type string            `json:"type"`
	Err  string            `json:"err,omitempty"`
	F    map[string]string `json:"f,omitempty"`
	Cols []string          `json:"cols,omitempty"`
	Rows [][]string        `json:"rows,omitempty"`
}

// Field reads one scalar field, defaulting to "".
func (m Message) Field(name string) string { return m.F[name] }

// WithField returns a copy with the field set.
func (m Message) WithField(name, value string) Message {
	f := make(map[string]string, len(m.F)+1)
	for k, v := range m.F {
		f[k] = v
	}
	f[name] = value
	m.F = f
	return m
}

// Reply builds a success reply to a request.
func Reply(req Message) Message { return Message{ID: req.ID, Type: "ok"} }

// Error code prefixes carried in Message.Err so sentinel errors survive
// the wire.
const (
	codeNotFound    = "notfound: "
	codeReadOnly    = "readonly: "
	codeUnsupported = "unsupported: "
	codeTransient   = "transient: "
)

// ErrorReply builds an error reply, encoding the error taxonomy.
func ErrorReply(req Message, err error) Message {
	return Message{ID: req.ID, Type: "error", Err: EncodeError(err)}
}

// EncodeError renders an error with its taxonomy prefix.
func EncodeError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ris.ErrNotFound):
		return codeNotFound + err.Error()
	case errors.Is(err, ris.ErrReadOnly):
		return codeReadOnly + err.Error()
	case errors.Is(err, ris.ErrUnsupported):
		return codeUnsupported + err.Error()
	case ris.IsTransient(err):
		return codeTransient + err.Error()
	default:
		return err.Error()
	}
}

// DecodeError reconstructs a sentinel-wrapped error from a wire string.
func DecodeError(s string) error {
	switch {
	case s == "":
		return nil
	case strings.HasPrefix(s, codeNotFound):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(s, codeNotFound), ris.ErrNotFound)
	case strings.HasPrefix(s, codeReadOnly):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(s, codeReadOnly), ris.ErrReadOnly)
	case strings.HasPrefix(s, codeUnsupported):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(s, codeUnsupported), ris.ErrUnsupported)
	case strings.HasPrefix(s, codeTransient):
		return ris.Transient(errors.New(strings.TrimPrefix(s, codeTransient)))
	default:
		return errors.New(s)
	}
}

// Conn frames messages over a byte stream.  Reads and writes may proceed
// concurrently; writes are serialized internally.
type Conn struct {
	rw  io.ReadWriteCloser
	wmu sync.Mutex
}

// NewConn wraps a stream.
func NewConn(rw io.ReadWriteCloser) *Conn { return &Conn{rw: rw} }

// Read reads the next message.
func (c *Conn) Read() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.rw, buf); err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(buf, &m); err != nil {
		return Message{}, fmt.Errorf("wire: bad frame: %w", err)
	}
	return m, nil
}

// Write sends a message.
func (c *Conn) Write(m Message) error {
	buf, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(buf) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(buf))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(buf)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	_, err = c.rw.Write(buf)
	return err
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }

// Session handles one client connection on a server.
type Session interface {
	// Handle processes one request and returns the reply.  Requests on one
	// connection are handled sequentially in arrival order.
	Handle(m Message) Message
	// Close releases per-connection state (e.g. cancels watchers).
	Close()
}

// Handler creates sessions.  push sends an unsolicited message (ID 0) to
// the client and may be called from any goroutine until Close.
type Handler interface {
	NewSession(push func(Message) error) (Session, error)
}

// Server accepts connections and dispatches messages to sessions.
type Server struct {
	ln        net.Listener
	handler   Handler
	mu        sync.Mutex
	conns     map[*Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Serve starts a server on addr ("" or ":0" for an ephemeral port).
func Serve(addr string, handler Handler) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: map[*Conn]struct{}{}, done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all connections.  It is idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept failure; back off briefly.
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		conn := NewConn(nc)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn *Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sess, err := s.handler.NewSession(func(m Message) error {
		m.ID = 0
		return conn.Write(m)
	})
	if err != nil {
		conn.Write(Message{Type: "error", Err: EncodeError(err)})
		return
	}
	defer sess.Close()
	for {
		m, err := conn.Read()
		if err != nil {
			return
		}
		reply := sess.Handle(m)
		reply.ID = m.ID
		if reply.Type == "" {
			reply.Type = "ok"
		}
		if err := conn.Write(reply); err != nil {
			return
		}
	}
}

// Client is a synchronous request/response client with support for
// server-push messages.
type Client struct {
	conn    *Conn
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Message
	onPush  func(Message)
	closed  chan struct{}
	err     error
	timeout time.Duration
}

// DialConfig holds the tunable connection parameters; zero fields take
// the defaults (5s dial, 10s per request).
type DialConfig struct {
	DialTimeout    time.Duration
	RequestTimeout time.Duration
}

// DialOption customises a Dial call.
type DialOption func(*DialConfig)

// WithDialTimeout bounds the TCP connection attempt.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *DialConfig) { c.DialTimeout = d }
}

// WithRequestTimeout bounds each request/response round trip.
func WithRequestTimeout(d time.Duration) DialOption {
	return func(c *DialConfig) { c.RequestTimeout = d }
}

// Dial connects to a toolkit server.  onPush, when non-nil, receives
// unsolicited messages (notifications) in arrival order; it runs on the
// client's read goroutine, so it must not block on the same client.
func Dial(addr string, onPush func(Message), opts ...DialOption) (*Client, error) {
	cfg := DialConfig{DialTimeout: 5 * time.Second, RequestTimeout: 10 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, ris.Transient(err))
	}
	c := &Client{
		conn:    NewConn(nc),
		pending: map[uint64]chan Message{},
		onPush:  onPush,
		closed:  make(chan struct{}),
		timeout: cfg.RequestTimeout,
	}
	go c.readLoop()
	return c, nil
}

// SetTimeout adjusts the per-request timeout.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

func (c *Client) readLoop() {
	for {
		m, err := c.conn.Read()
		if err != nil {
			c.mu.Lock()
			c.err = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			select {
			case <-c.closed:
			default:
				close(c.closed)
			}
			return
		}
		if m.ID == 0 {
			if c.onPush != nil {
				c.onPush(m)
			}
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// Do sends a request and waits for its reply.  Protocol errors in the
// reply are decoded back to taxonomy errors.
func (c *Client) Do(m Message) (Message, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Message{}, ris.Transient(err)
	}
	c.nextID++
	m.ID = c.nextID
	ch := make(chan Message, 1)
	c.pending[m.ID] = ch
	c.mu.Unlock()
	if err := c.conn.Write(m); err != nil {
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
		return Message{}, ris.Transient(err)
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case reply, ok := <-ch:
		if !ok {
			return Message{}, fmt.Errorf("wire: connection lost: %w", ris.ErrUnavailable)
		}
		if reply.Type == "error" {
			return reply, DecodeError(reply.Err)
		}
		return reply, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, m.ID)
		c.mu.Unlock()
		return Message{}, ris.Transient(fmt.Errorf("wire: request %s timed out", m.Type))
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
