// Package chaos schedules declarative fault campaigns against a running
// deployment and records exactly what it did, when.
//
// The paper's §5 failure taxonomy promises that crashes and partitions
// degrade constraint guarantees to *metric* failures rather than silent
// violations.  PRs 1–3 built the machinery (reliable links, Flaky fault
// injection, WAL recovery); this package adds the missing discipline: a
// campaign is a list of faults with explicit injection instants and
// durations, run off a Clock (virtual in tests, real in cmload soaks),
// and every action lands in a recorded timeline.  Experiments correlate
// that timeline against guarantee verdicts and latency histograms and
// assert *exactly* which faults fired and which guarantees degraded and
// recovered — never weak ">= 1 event" counts, the failure mode ROADMAP
// open item 5 calls out.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// Timeline entry actions.
const (
	ActInject  = "inject"
	ActRecover = "recover"
)

// Fault is one scheduled fault: Inject runs At after campaign start and,
// when Duration > 0 and Recover is set, Recover runs At+Duration after
// start.  A Fault with Duration 0 never recovers on its own (a permanent
// fault, or one the scenario heals out of band).
type Fault struct {
	Name     string
	At       time.Duration
	Duration time.Duration
	Inject   func()
	Recover  func()
}

// Campaign is a named list of faults making up one chaos scenario.
type Campaign struct {
	Name   string
	Faults []Fault
}

// Entry is one recorded campaign action.
type Entry struct {
	At     time.Time
	Fault  string
	Action string // ActInject or ActRecover
}

func (e Entry) String() string {
	return fmt.Sprintf("%s %s %s", e.At.Format("15:04:05.000"), e.Action, e.Fault)
}

// Runner executes a campaign on a clock.  Faults are armed at Start;
// actions record into the timeline as they run.
type Runner struct {
	clock    vclock.Clock
	campaign Campaign

	mu       sync.Mutex
	timeline []Entry
	timers   []vclock.Timer
	stopped  bool
}

// Start arms every fault of the campaign on the given clock (nil means
// real time) and returns the runner.  Injection order among faults due at
// the same instant follows their order in the campaign, which a virtual
// clock preserves exactly.
func Start(clock vclock.Clock, c Campaign) *Runner {
	if clock == nil {
		clock = vclock.Real{}
	}
	r := &Runner{clock: clock, campaign: c}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range c.Faults {
		f := c.Faults[i]
		if f.Inject != nil {
			r.timers = append(r.timers, clock.AfterFunc(f.At, func() {
				r.act(f.Name, ActInject, f.Inject)
			}))
		}
		if f.Recover != nil && f.Duration > 0 {
			r.timers = append(r.timers, clock.AfterFunc(f.At+f.Duration, func() {
				r.act(f.Name, ActRecover, f.Recover)
			}))
		}
	}
	return r
}

// act records one action and runs it (outside the runner lock, so fault
// bodies may inspect the runner).
func (r *Runner) act(name, action string, fn func()) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.timeline = append(r.timeline, Entry{At: r.clock.Now(), Fault: name, Action: action})
	r.mu.Unlock()
	fn()
}

// Stop cancels every action not yet run.  Already-injected faults are NOT
// recovered — a stopped campaign leaves the system as it is, like a real
// operator killing a chaos job mid-run.
func (r *Runner) Stop() {
	r.mu.Lock()
	r.stopped = true
	timers := r.timers
	r.timers = nil
	r.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// Campaign returns the campaign this runner executes.
func (r *Runner) Campaign() Campaign { return r.campaign }

// Timeline returns a copy of the recorded actions in execution order.
func (r *Runner) Timeline() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.timeline...)
}

// Counts aggregates the timeline: per fault name, how many inject and
// recover actions ran.  Exact-assertion helpers for experiments.
func (r *Runner) Counts() (inject, recover map[string]int) {
	inject, recover = map[string]int{}, map[string]int{}
	for _, e := range r.Timeline() {
		if e.Action == ActInject {
			inject[e.Fault]++
		} else {
			recover[e.Fault]++
		}
	}
	return inject, recover
}

// Describe renders the timeline one entry per line, sorted by time (the
// recorded order already is), for experiment tables and debugging.
func (r *Runner) Describe() string {
	es := r.Timeline()
	sort.SliceStable(es, func(i, j int) bool { return es[i].At.Before(es[j].At) })
	out := ""
	for _, e := range es {
		out += e.String() + "\n"
	}
	return out
}

// ---- fault constructors binding to the toolkit's injection points ----

// Partition severs both directions between two shells on a Flaky network
// for dur, then heals exactly those links.
func Partition(f *transport.Flaky, a, b string, at, dur time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("partition %s<->%s", a, b),
		At:   at, Duration: dur,
		Inject: func() { f.PartitionBoth(a, b) },
		Recover: func() {
			f.Heal(a, b)
			f.Heal(b, a)
		},
	}
}

// Lossy raises the network's drop probability to p for dur, then restores
// lossless delivery.
func Lossy(f *transport.Flaky, p float64, at, dur time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("lossy %.0f%%", p*100),
		At:   at, Duration: dur,
		Inject:  func() { f.SetDrop(p) },
		Recover: func() { f.SetDrop(0) },
	}
}

// Slow defers each message with probability p by `by` for dur, modelling
// a congested or mis-routed link, then restores normal latency.
func Slow(f *transport.Flaky, p float64, by, at, dur time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("slow +%s", by),
		At:   at, Duration: dur,
		Inject:  func() { f.SetDelay(p, by) },
		Recover: func() { f.SetDelay(0, 0) },
	}
}

// Skew offsets one site's clock by off for dur, then re-syncs it — the
// NTP-drift fault whose effect on metric guarantee verdicts is exactly
// the δ/ε arithmetic of Section 3 (see vclock.Skewed).
func Skew(c *vclock.Skewed, off time.Duration, at, dur time.Duration) Fault {
	return Fault{
		Name: fmt.Sprintf("skew %s", off),
		At:   at, Duration: dur,
		Inject:  func() { c.SetOffset(off) },
		Recover: func() { c.Resync() },
	}
}

// Custom wraps arbitrary inject/recover closures — process crash/restart
// (the E13 boot closure), store.Crash, translator faults.
func Custom(name string, at, dur time.Duration, inject, recover func()) Fault {
	return Fault{Name: name, At: at, Duration: dur, Inject: inject, Recover: recover}
}
