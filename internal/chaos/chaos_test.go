package chaos

import (
	"testing"
	"time"

	"cmtk/internal/obs"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// TestCampaignExactTimeline runs a three-fault campaign on a virtual
// clock and asserts the timeline exactly: which actions, in which order,
// at which instants.
func TestCampaignExactTimeline(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	var fired []string
	mark := func(s string) func() { return func() { fired = append(fired, s) } }
	r := Start(clk, Campaign{
		Name: "test",
		Faults: []Fault{
			Custom("a", 1*time.Second, 2*time.Second, mark("a+"), mark("a-")),
			Custom("b", 2*time.Second, 0, mark("b+"), mark("b-")), // no recovery: dur 0
			Custom("c", 3*time.Second, 1*time.Second, mark("c+"), mark("c-")),
		},
	})
	clk.Advance(10 * time.Second)
	want := []Entry{
		{At: vclock.Epoch.Add(1 * time.Second), Fault: "a", Action: ActInject},
		{At: vclock.Epoch.Add(2 * time.Second), Fault: "b", Action: ActInject},
		{At: vclock.Epoch.Add(3 * time.Second), Fault: "a", Action: ActRecover},
		{At: vclock.Epoch.Add(3 * time.Second), Fault: "c", Action: ActInject},
		{At: vclock.Epoch.Add(4 * time.Second), Fault: "c", Action: ActRecover},
	}
	got := r.Timeline()
	if len(got) != len(want) {
		t.Fatalf("timeline has %d entries, want exactly %d:\n%s", len(got), len(want), r.Describe())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("timeline[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	wantFired := []string{"a+", "b+", "a-", "c+", "c-"}
	if len(fired) != len(wantFired) {
		t.Fatalf("fired = %v, want %v", fired, wantFired)
	}
	for i := range wantFired {
		if fired[i] != wantFired[i] {
			t.Fatalf("fired[%d] = %s, want %s", i, fired[i], wantFired[i])
		}
	}
	inj, rec := r.Counts()
	if inj["a"] != 1 || inj["b"] != 1 || inj["c"] != 1 || len(inj) != 3 {
		t.Fatalf("inject counts = %v", inj)
	}
	if rec["a"] != 1 || rec["c"] != 1 || len(rec) != 2 {
		t.Fatalf("recover counts = %v (b must not recover)", rec)
	}
}

// TestStopCancelsPending stops mid-campaign: actions already run stay in
// the timeline, pending ones never fire.
func TestStopCancelsPending(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	n := 0
	r := Start(clk, Campaign{Faults: []Fault{
		Custom("x", time.Second, 4*time.Second, func() { n++ }, func() { n += 100 }),
	}})
	clk.Advance(2 * time.Second) // inject ran, recover pending
	r.Stop()
	clk.Advance(10 * time.Second)
	if n != 1 {
		t.Fatalf("n = %d, want 1 (inject only; recover cancelled)", n)
	}
	if tl := r.Timeline(); len(tl) != 1 || tl[0].Action != ActInject {
		t.Fatalf("timeline = %v", tl)
	}
}

// TestPartitionFaultDropsExactly wires a Partition fault to a real Flaky
// bus and counts delivery exactly: messages sent during the fault window
// are black-holed, ones before and after arrive.
func TestPartitionFaultDropsExactly(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	reg := obs.NewRegistry()
	flaky := transport.NewFlaky(transport.NewBus(clk, 0), transport.FlakyOptions{Clock: clk, Metrics: reg})
	var got int
	if _, err := flaky.Join("B", func(transport.Message) { got++ }); err != nil {
		t.Fatal(err)
	}
	a, err := flaky.Join("A", func(transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	Start(clk, Campaign{Faults: []Fault{
		Partition(flaky, "A", "B", 2*time.Second, 3*time.Second),
	}})
	// One message per second for 8 seconds: t=1..8; the window [2s,5s)
	// swallows sends at t=2,3,4 — exactly 5 arrive.
	for i := 1; i <= 8; i++ {
		clk.AfterFunc(time.Duration(i)*time.Second, func() {
			a.Send("B", transport.Message{Kind: "fire"})
		})
	}
	clk.Advance(10 * time.Second)
	if got != 5 {
		t.Fatalf("delivered = %d, want exactly 5 (3 black-holed by the partition)", got)
	}
	if parted := reg.Snapshot()[`cmtk_flaky_faults_total{kind="partition"}`]; parted != 3 {
		t.Fatalf("partition fault count = %v, want exactly 3", parted)
	}
}

// TestLossyAndSkewFaultsToggle checks the Lossy and Skew constructors
// restore state exactly on recovery.
func TestLossyAndSkewFaultsToggle(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	reg := obs.NewRegistry()
	flaky := transport.NewFlaky(transport.NewBus(clk, 0), transport.FlakyOptions{Clock: clk, Metrics: reg, Seed: 3})
	skewed := vclock.NewSkewed(clk, 0)
	Start(clk, Campaign{Faults: []Fault{
		Lossy(flaky, 1.0, time.Second, 2*time.Second), // drop everything in [1s,3s)
		Skew(skewed, 30*time.Second, time.Second, 2*time.Second),
	}})
	clk.Advance(2 * time.Second) // inside both fault windows
	if off := skewed.Offset(); off != 30*time.Second {
		t.Fatalf("offset during fault = %v, want 30s", off)
	}
	if skewed.Now() != clk.Now().Add(30*time.Second) {
		t.Fatalf("skewed Now = %v, want inner+30s", skewed.Now())
	}
	clk.Advance(2 * time.Second) // past recovery
	if off := skewed.Offset(); off != 0 {
		t.Fatalf("offset after resync = %v, want 0", off)
	}
	// Lossy recovered too: a send now must arrive.
	var got int
	if _, err := flaky.Join("B", func(transport.Message) { got++ }); err != nil {
		t.Fatal(err)
	}
	a, err := flaky.Join("A", func(transport.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	a.Send("B", transport.Message{})
	clk.Advance(time.Second)
	if got != 1 {
		t.Fatalf("delivered after recovery = %d, want 1", got)
	}
}
