// Package fleet shards a constraint deployment across N CM-Shells: a
// consistent-hash ring with virtual nodes and bounded loads maps item
// bases to owner shells, a versioned route table distributes that
// mapping to every shell (and to ingress translators), and rebalancing
// moves ownership — including the moving bases' CM-private state through
// the durable subsystem — at an atomic epoch boundary.
//
// The paper's deployments (Fig. 1) statically assign each rule to the
// shell hosting its LHS site; that makes shell count a configuration
// detail, not a scaling axis.  The fleet layer replaces the static
// assignment with ring ownership of item bases: the shell that owns a
// rule's anchor base owns the rule, external triggers are routed (or
// forwarded) to the current owner, and cross-shard rule fires travel the
// existing reliable mesh.  DESIGN.md §10 documents the model and its
// failure modes.
package fleet

import "sort"

// Placement hashing is FNV-1a 64 with the standard offset basis and
// prime, written out so the function is frozen: ownership must be
// identical across processes and builds (a translator computing an owner
// in one process must agree with the shell computing it in another), so
// no seeded or per-process hash (maphash) can be used here.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 is the stable placement hash: FNV-1a over the bytes, then a
// fixed avalanche finalizer.  Raw FNV-1a disperses short sequential keys
// ("a#1", "a#2", …) poorly across the high bits, which skews vnode
// placement badly for small fleets; the finalizer (the murmur3 fmix64
// constants, equally frozen) fixes that without giving up cross-process
// determinism.
func hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return fmix64(h)
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: the hash of "member#vnode" and the
// member it stands for.
type ringPoint struct {
	h      uint64
	member string
}

// ring is the sorted virtual-node circle for one membership set.
type ring struct {
	points []ringPoint
}

// buildRing hashes vnodes points per member onto the circle.  Ties (two
// identical hashes) break by member name so the ring is a pure function
// of the membership set.
func buildRing(members []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	var key []byte
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			key = key[:0]
			key = append(key, m...)
			key = append(key, '#')
			key = appendUint(key, uint64(v))
			h := uint64(fnvOffset64)
			for _, b := range key {
				h = (h ^ uint64(b)) * fnvPrime64
			}
			r.points = append(r.points, ringPoint{h: fmix64(h), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// walk visits the ring's members in successor order starting at the
// first virtual node at or after hash64(key), each distinct member once,
// until fn returns true (accepted) or every member has been offered.
func (r *ring) walk(key string, fn func(member string) bool) {
	if len(r.points) == 0 {
		return
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	seen := map[string]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if fn(p.member) {
			return
		}
	}
}
