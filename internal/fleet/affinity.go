package fleet

import (
	"sort"

	"cmtk/internal/rule"
)

// Affinity derives the co-location map for a spec from its rule graph,
// in the form Params.Affinity consumes (base → group anchor).
//
// Two placement facts drive the grouping.  A rule's condition (C0) is
// evaluated at match time on the shell that owns the rule — the owner of
// the LHS anchor base — so every base the condition reads must live with
// the LHS base.  A rule's RHS executes as one unit on the shell owning
// its effect bases, evaluating step guards and computed values there, so
// all effect, guard, and value-expression bases of one rule must live
// together.  The LHS base and the effect bases are deliberately NOT
// co-located: that hop is the cross-shard rule fire the mesh carries,
// and splitting it is exactly what makes sharding shed load.
//
// Groups are merged transitively (union-find): a base shared by two
// rules pulls both rules' groups together.  A spec whose rules all read
// one global base therefore collapses to a single group — which is the
// honest answer: such a strategy cannot shard.
func Affinity(spec *rule.Spec) map[string]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(b string) string {
		p, ok := parent[b]
		if !ok || p == b {
			parent[b] = b
			return b
		}
		root := find(p)
		parent[b] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Smaller name becomes the root so the final map is deterministic.
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	for i := range spec.Rules {
		r := &spec.Rules[i]
		if r.LHS.Op.HasItem() {
			lhs := r.LHS.Item.Base
			for _, b := range rule.ExprItems(r.Cond) {
				union(lhs, b)
			}
		}
		// All of one rule's effects (plus what their guards and value
		// expressions read) execute on one shell.
		var effAnchor string
		for _, st := range r.Steps {
			if st.Eff.Op.HasItem() {
				if effAnchor == "" {
					effAnchor = st.Eff.Item.Base
				}
				union(effAnchor, st.Eff.Item.Base)
			}
		}
		if effAnchor == "" {
			continue
		}
		for _, st := range r.Steps {
			for _, b := range rule.ExprItems(st.Cond) {
				union(effAnchor, b)
			}
			for _, b := range rule.ExprItems(st.ValExpr) {
				union(effAnchor, b)
			}
		}
	}

	// Flatten to base → root, dropping singleton self-entries to keep the
	// map minimal.
	keys := make([]string, 0, len(parent))
	for b := range parent {
		keys = append(keys, b)
	}
	sort.Strings(keys)
	out := map[string]string{}
	for _, b := range keys {
		if root := find(b); root != b {
			out[b] = root
		}
	}
	return out
}

// SpecBases collects every item base a spec names (database and
// CM-private), sorted — the base universe an assignment covers.
func SpecBases(spec *rule.Spec) []string {
	set := map[string]bool{}
	for b := range spec.Items {
		set[b] = true
	}
	for b := range spec.Private {
		set[b] = true
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}
