package fleet

import (
	"fmt"
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/trace"
)

// equivRun drives the chain workload through a fleet and returns the
// per-item outcome: final values of every derived item, per-family
// guarantee verdicts, and the checker's violation count.  When grow is
// set, a new member joins and a rebalance cuts over at the halfway
// point, with the second half of the workload running on the new
// ownership — the sharded run must be observationally identical to the
// 1-shell run anyway.
func equivRun(t *testing.T, members []string, families, rounds int, grow bool) (map[string]string, map[string]bool, int) {
	t.Helper()
	sp, initial := chainSpec(t, families)
	f, err := New(sp, Options{
		Members: members,
		Trace:   trace.NewSharded(initial, len(members)+1),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	seedConds(t, f, families)

	post := func(lo, hi int) {
		for r := lo; r <= hi; r++ {
			for i := 0; i < families; i++ {
				item := data.Item(fmt.Sprintf("X%d", i))
				if err := f.Post(item, data.NewInt(int64(r-1)), data.NewInt(int64(r))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	post(1, rounds/2)
	if grow {
		f.Drain()
		if err := f.AddShell("joined", 0); err != nil {
			t.Fatal(err)
		}
		rep, err := f.Rebalance(append(append([]string{}, members...), "joined"))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Moves) == 0 {
			t.Fatal("mid-run rebalance moved nothing; the equivalence run would not exercise handoff")
		}
	}
	post(rounds/2+1, rounds)
	f.Drain()

	finals := map[string]string{}
	for i := 0; i < families; i++ {
		for _, fam := range []string{"Y", "Z", "Q"} {
			name := fmt.Sprintf("%s%d", fam, i)
			v, ok, err := f.ReadAux(data.Item(name))
			if err != nil || !ok {
				t.Fatalf("%s unreadable: ok=%v err=%v", name, ok, err)
			}
			finals[name] = v.String()
		}
	}
	verdicts := map[string]bool{}
	tr := f.Trace()
	for i := 0; i < families; i++ {
		for _, pair := range [][2]string{
			{fmt.Sprintf("X%d", i), fmt.Sprintf("Y%d", i)},
			{fmt.Sprintf("Y%d", i), fmt.Sprintf("Z%d", i)},
			{fmt.Sprintf("X%d", i), fmt.Sprintf("Q%d", i)},
		} {
			rep := guarantee.Follows{X: pair[0], Y: pair[1]}.Check(tr)
			verdicts[pair[0]+"->"+pair[1]] = rep.Holds
		}
	}
	return finals, verdicts, len(f.CheckTrace())
}

// The tentpole acceptance test: the same workload on a 1-shell fleet
// and on a 3-shell fleet that grows to 4 via a mid-run rebalance must
// produce identical per-item final values, identical guarantee
// verdicts, and zero Appendix A.2 checker violations on both sides.
func TestStaticVsShardedEquivalence(t *testing.T) {
	const families, rounds = 8, 6

	staticFinals, staticVerdicts, staticViol := equivRun(t, []string{"solo"}, families, rounds, false)
	shardFinals, shardVerdicts, shardViol := equivRun(t, []string{"s1", "s2", "s3"}, families, rounds, true)

	if staticViol != 0 {
		t.Fatalf("1-shell run: %d checker violations", staticViol)
	}
	if shardViol != 0 {
		t.Fatalf("sharded run: %d checker violations", shardViol)
	}
	for name, want := range staticFinals {
		if got := shardFinals[name]; got != want {
			t.Errorf("final %s: sharded %s, static %s", name, got, want)
		}
	}
	for g, want := range staticVerdicts {
		if !want {
			t.Errorf("guarantee %s does not hold even on the 1-shell run", g)
		}
		if got := shardVerdicts[g]; got != want {
			t.Errorf("guarantee %s: sharded verdict %v, static verdict %v", g, got, want)
		}
	}
}
