package fleet

import (
	"sync"

	"cmtk/internal/obs"
)

// Router is one shell's (or translator's) live view of the route table.
// Install is epoch-monotonic: a stale table — delivered late by a slow
// control channel — can never roll ownership backwards.  Routers
// implement shell.ShardRouter, so a shell constructed with
// Options.Router resolves rule ownership and fire targets through the
// fleet table instead of the static site→shell map.
type Router struct {
	id string

	mu sync.RWMutex
	t  Table

	epoch    *obs.Gauge
	members  *obs.Gauge
	owned    *obs.Gauge
	forwards *obs.CounterVec
	stale    *obs.Counter
}

// NewRouter creates a router for one shell (or ingress) identity.  Until
// the first Install the router resolves nothing, and a sharded shell
// falls back to static site ownership.
func NewRouter(id string, reg *obs.Registry) *Router {
	if reg == nil {
		reg = obs.Default
	}
	return &Router{
		id: id,
		epoch: reg.Gauge("cmtk_fleet_epoch",
			"Route-table epoch currently installed on the shell's router.", "shell").With(id),
		members: reg.Gauge("cmtk_fleet_members",
			"Member count of the installed route table.", "shell").With(id),
		owned: reg.Gauge("cmtk_fleet_owned_bases",
			"Item bases the installed route table assigns to this shell.", "shell").With(id),
		forwards: reg.Counter("cmtk_fleet_forwards_total",
			"Messages re-routed to the current owner because this shell no longer (or never) owned the base, by kind (fire|trigger).",
			"shell", "kind"),
		stale: reg.Counter("cmtk_fleet_stale_epoch_total",
			"Inbound messages stamped with an older route-table epoch than the one installed here.", "shell").With(id),
	}
}

// ID returns the identity the router was built for.
func (r *Router) ID() string { return r.id }

// Install adopts a table if it is newer than the current one; it reports
// whether the table was installed.  Equal-epoch reinstallation is a
// no-op (idempotent redelivery), older epochs are rejected.
func (r *Router) Install(t Table) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.t.Owners != nil && t.Epoch <= r.t.Epoch {
		return false
	}
	r.t = t
	r.epoch.Set(int64(t.Epoch))
	r.members.Set(int64(len(t.Members)))
	n := 0
	for _, m := range t.Owners {
		if m == r.id {
			n++
		}
	}
	r.owned.Set(int64(n))
	return true
}

// Table returns the installed table (zero Table before first Install).
func (r *Router) Table() Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.t
}

// Epoch returns the installed table's epoch (0 before first Install).
func (r *Router) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.t.Epoch
}

// OwnerOf resolves the owner of an item base; ok is false for bases
// outside the table (which a sharded shell routes statically, so mixed
// deployments — sharded private state, fixed translator sites — work).
func (r *Router) OwnerOf(base string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.t.Owners == nil {
		return "", false
	}
	m, ok := r.t.Owners[base]
	return m, ok
}

// Forwarded counts one message re-routed toward the current owner.
func (r *Router) Forwarded(kind string) { r.forwards.With(r.id, kind).Inc() }

// Stale counts one inbound message carrying an older epoch than the
// installed table — the in-flight tail of a rebalance.
func (r *Router) Stale() { r.stale.Inc() }
