package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Defaults for Params.
const (
	// DefaultVNodes is the virtual-node count per member.  More vnodes
	// smooth the balance at the cost of a bigger ring; 64 keeps the
	// per-member spread within a few percent for fleets of 2–16 shells.
	DefaultVNodes = 64
	// DefaultLoadFactor is the bounded-load cap multiplier: no member
	// owns more than ceil(bases/members × factor) bases.
	DefaultLoadFactor = 1.25
)

// Params configures an assignment.
type Params struct {
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// LoadFactor bounds per-member load at ceil(bases/members × factor)
	// (0 = DefaultLoadFactor).  Groups that fit nowhere under the bound
	// fall back to the least-loaded member, so assignment is total.
	LoadFactor float64
	// Affinity co-locates bases: Affinity[b] = a places b wherever a's
	// group lands.  The fleet assembler derives this from the rule graph
	// (condition reads live with the trigger base, every effect of one
	// rule lives together) so a rule firing never needs remote reads.
	Affinity map[string]string
	// Pinned forces a base's group onto a fixed member — translator-backed
	// sites whose process cannot move.  Two different pins reaching one
	// affinity group is an error.
	Pinned map[string]string
}

func (p Params) withDefaults() Params {
	if p.VNodes <= 0 {
		p.VNodes = DefaultVNodes
	}
	if p.LoadFactor <= 0 {
		p.LoadFactor = DefaultLoadFactor
	}
	return p
}

// Table is one epoch's complete ownership map: which member owns every
// item base.  It is the unit of distribution (installed into each
// shell's Router, dumped to route files, persisted in the durable
// store's "fleet-table" log) and of change — a rebalance produces a new
// Table with Epoch+1 and installs it everywhere at the cutover point.
type Table struct {
	Epoch      uint64            `json:"epoch"`
	Members    []string          `json:"members"`
	VNodes     int               `json:"vnodes"`
	LoadFactor float64           `json:"load_factor"`
	Owners     map[string]string `json:"owners"` // item base → member
}

// TableLogName is the durable log a fleet persists its current route
// table under; `cmctl ring -state-dir` reads it back.
const TableLogName = "fleet-table"

// Assign computes the epoch's ownership table: affinity groups are
// placed on the first ring successor of their anchor base with room
// under the bounded-load cap, pinned groups go to their pin.  The result
// is a pure function of (epoch, members, bases, params) — two processes
// with the same inputs compute byte-identical tables, which is what lets
// translators route without asking the shells.
func Assign(epoch uint64, members, bases []string, p Params) (Table, error) {
	p = p.withDefaults()
	members = dedupSorted(members)
	bases = dedupSorted(bases)
	if len(members) == 0 {
		return Table{}, fmt.Errorf("fleet: assignment needs at least one member")
	}

	// Resolve every base to its group anchor, following affinity chains
	// (cycles terminate at the smallest name seen, so a malformed map
	// still yields a deterministic grouping).
	anchorOf := func(b string) string {
		seen := map[string]bool{b: true}
		a := b
		for {
			next, ok := p.Affinity[a]
			if !ok || next == a {
				return a
			}
			if seen[next] {
				min := a
				for s := range seen {
					if s < min {
						min = s
					}
				}
				return min
			}
			seen[next] = true
			a = next
		}
	}
	groups := map[string][]string{}
	for _, b := range bases {
		a := anchorOf(b)
		groups[a] = append(groups[a], b)
	}
	anchors := make([]string, 0, len(groups))
	for a := range groups {
		anchors = append(anchors, a)
	}
	sort.Strings(anchors)

	// Per-group pin, if any member of the group is pinned.
	pinOf := map[string]string{}
	for _, a := range anchors {
		for _, b := range groups[a] {
			pin, ok := p.Pinned[b]
			if !ok {
				continue
			}
			if prev, dup := pinOf[a]; dup && prev != pin {
				return Table{}, fmt.Errorf("fleet: bases %q pinned to both %s and %s but co-located by affinity", a, prev, pin)
			}
			pinOf[a] = pin
		}
	}
	memberSet := map[string]bool{}
	for _, m := range members {
		memberSet[m] = true
	}
	for a, pin := range pinOf {
		if !memberSet[pin] {
			return Table{}, fmt.Errorf("fleet: group %q pinned to unknown member %s", a, pin)
		}
	}

	bound := int(math.Ceil(float64(len(bases)) * p.LoadFactor / float64(len(members))))
	if bound < 1 {
		bound = 1
	}
	ring := buildRing(members, p.VNodes)
	load := map[string]int{}
	owners := make(map[string]string, len(bases))
	place := func(a string, member string) {
		for _, b := range groups[a] {
			owners[b] = member
		}
		load[member] += len(groups[a])
	}
	// Pinned groups first: their load is a fact the bounded placement of
	// the free groups must see.
	for _, a := range anchors {
		if pin, ok := pinOf[a]; ok {
			place(a, pin)
		}
	}
	// Free groups place in two passes so membership changes move little.
	// Pass 1 gives every group its natural owner — the first ring
	// successor of its anchor, load-blind; that choice depends only on
	// the hash geometry, so a group's natural owner never changes unless
	// its successor arc does.  Pass 2 evicts overflow: members above the
	// bound shed their highest-hashed natural groups, which walk on to
	// the next member with room.  Under a stable bound the evicted set is
	// a stable suffix of each member's hash-ordered groups, so growing or
	// shrinking the fleet only moves (a) groups whose successor arc now
	// lands elsewhere and (b) the overflow delta — not the whole ring.
	natural := map[string][]string{}
	for _, a := range anchors {
		if _, ok := pinOf[a]; ok {
			continue
		}
		var owner string
		ring.walk(a, func(m string) bool { owner = m; return true })
		natural[owner] = append(natural[owner], a)
	}
	var evicted []string
	for _, m := range members {
		as := natural[m]
		sort.Slice(as, func(i, j int) bool {
			hi, hj := hash64(as[i]), hash64(as[j])
			if hi != hj {
				return hi < hj
			}
			return as[i] < as[j]
		})
		for _, a := range as {
			if load[m]+len(groups[a]) <= bound {
				place(a, m)
			} else {
				evicted = append(evicted, a)
			}
		}
	}
	sort.Strings(evicted)
	for _, a := range evicted {
		size := len(groups[a])
		chosen := ""
		ring.walk(a, func(m string) bool {
			if load[m]+size <= bound {
				chosen = m
				return true
			}
			return false
		})
		if chosen == "" {
			// The group fits nowhere under the bound (it is larger than any
			// member's slack); take the least-loaded member so assignment
			// stays total.  Ties break by name for determinism.
			for _, m := range members {
				if chosen == "" || load[m] < load[chosen] {
					chosen = m
				}
			}
		}
		place(a, chosen)
	}
	return Table{
		Epoch:      epoch,
		Members:    members,
		VNodes:     p.VNodes,
		LoadFactor: p.LoadFactor,
		Owners:     owners,
	}, nil
}

// Owner resolves the member owning an item base.
func (t Table) Owner(base string) (string, bool) {
	m, ok := t.Owners[base]
	return m, ok
}

// Counts returns the per-member owned-base counts, including zero rows
// for members that own nothing.
func (t Table) Counts() map[string]int {
	out := make(map[string]int, len(t.Members))
	for _, m := range t.Members {
		out[m] = 0
	}
	for _, m := range t.Owners {
		out[m]++
	}
	return out
}

// Bases returns the owned bases in sorted order.
func (t Table) Bases() []string {
	out := make([]string, 0, len(t.Owners))
	for b := range t.Owners {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Checksum digests the ownership map (bases, owners, epoch excluded) so
// two processes can assert they computed the same placement.
func (t Table) Checksum() uint64 {
	h := uint64(fnvOffset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
	}
	for _, b := range t.Bases() {
		mix(b)
		mix(t.Owners[b])
	}
	return h
}

// Move is one base changing owner between two tables.
type Move struct {
	Base string `json:"base"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Moves lists the bases whose owner differs between two tables, sorted
// by base.  Bases present in only one table are not moves (the universe
// is expected to be stable across epochs).
func Moves(old, next Table) []Move {
	var out []Move
	for b, from := range old.Owners {
		if to, ok := next.Owners[b]; ok && to != from {
			out = append(out, Move{Base: b, From: from, To: to})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// WriteFile dumps the table as JSON — the route file cmshell and cmctl
// consume.
func (t Table) WriteFile(path string) error {
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a route file written by WriteFile (or by hand).
func ReadFile(path string) (Table, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Table{}, err
	}
	return decodeTable(buf)
}

func decodeTable(buf []byte) (Table, error) {
	var t Table
	if err := json.Unmarshal(buf, &t); err != nil {
		return Table{}, fmt.Errorf("fleet: decoding route table: %w", err)
	}
	if t.Owners == nil {
		return Table{}, fmt.Errorf("fleet: route table has no owners map")
	}
	return t, nil
}

func dedupSorted(in []string) []string {
	out := append([]string{}, in...)
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}
