package fleet

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// A fire sent under a pre-rebalance table must be re-forwarded to the
// current owner and counted as stale — the in-flight tail of a
// rebalance.  Three shells hold deliberately skewed tables: the sender
// still routes Y0 to its old owner, which holds the next epoch and
// forwards the fire onward.
func TestStaleEpochFireForwarding(t *testing.T) {
	sp, err := rule.ParseSpecString(`site S
private X0 @ S
private Y0 @ S
private Z0 @ S
private Q0 @ S
private C0 @ S
rule c0: Ws(X0, b) ->5s W(Y0, b)
rule k0: W(Y0, b) ->5s W(Z0, b)
rule g0: Ws(X0, b) && C0 = 0 ->5s W(Q0, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	stale := Table{Epoch: 1, Members: []string{"a", "b", "c"}, Owners: map[string]string{
		"X0": "a", "C0": "a", "Q0": "a", "Y0": "b", "Z0": "c",
	}}
	next := Table{Epoch: 2, Members: []string{"a", "b", "c"}, Owners: map[string]string{
		"X0": "a", "C0": "a", "Q0": "a", "Y0": "c", "Z0": "c",
	}}

	clk := vclock.Real{}
	bus := transport.NewBus(clk, 0)
	initial := data.NewInterpretation()
	for _, b := range []string{"X0", "Y0", "Z0", "Q0", "C0"} {
		initial.Set(data.Item(b), data.NewInt(0))
	}
	tr := trace.NewSharded(initial, 3)
	reg := obs.NewRegistry()
	routers := map[string]*Router{}
	shells := map[string]*shell.Shell{}
	for id, tab := range map[string]Table{"a": stale, "b": next, "c": next} {
		rt := NewRouter(id, reg)
		rt.Install(tab)
		sh := shell.New(id, sp, shell.Options{Clock: clk, Trace: tr, Router: rt})
		sh.AddSite("S", nil)
		if err := sh.Attach(bus); err != nil {
			t.Fatal(err)
		}
		routers[id], shells[id] = rt, sh
	}
	for _, sh := range shells {
		if err := sh.Start(); err != nil {
			t.Fatal(err)
		}
		defer sh.Stop()
	}
	shells["a"].WriteAux(data.Item("C0"), data.NewInt(0))

	// a owns X0 under its stale table: c0 fires locally and the effect
	// W(Y0) is dispatched to b, Y0's owner at epoch 1.
	shells["a"].Spontaneous(data.Item("X0"), data.NewInt(0), data.NewInt(1))

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := shells["c"].ReadAux(data.Item("Z0")); ok && v.String() == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Z0 never reached 1 at the current owner; the stale fire was not re-forwarded")
		}
		time.Sleep(time.Millisecond)
	}
	if v, ok := shells["c"].ReadAux(data.Item("Y0")); !ok || v.String() != "1" {
		t.Fatalf("Y0 at the current owner = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := shells["a"].ReadAux(data.Item("Q0")); !ok || v.String() != "1" {
		t.Fatalf("Q0 at the sender = %v (ok=%v), want 1 (local conditioned rule)", v, ok)
	}
	if got := routers["b"].forwards.With("b", "fire").Value(); got != 1 {
		t.Fatalf("old owner forwarded %d fires, want exactly 1", got)
	}
	if got := routers["b"].stale.Value(); got != 1 {
		t.Fatalf("old owner counted %d stale-epoch messages, want exactly 1", got)
	}
	checker := trace.NewChecker(sp.Rules)
	if v := checker.Check(tr); len(v) != 0 {
		t.Fatalf("checker found %d violations: %v", len(v), v[0])
	}
}
