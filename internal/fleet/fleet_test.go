package fleet

import (
	"fmt"
	"strings"
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
)

// chainSpec builds the fleet test strategy: per base family i, a copy
// rule (Ws X→W Y), a chain rule (W Y→W Z), and a conditioned rule
// reading a per-family private C (so affinity must co-locate C with X,
// and a rebalance must carry C's value for the condition to keep
// holding).
func chainSpec(t *testing.T, families int) (*rule.Spec, data.Interpretation) {
	t.Helper()
	var b strings.Builder
	b.WriteString("site S\n")
	for i := 0; i < families; i++ {
		fmt.Fprintf(&b, "private X%d @ S\nprivate Y%d @ S\nprivate Z%d @ S\nprivate Q%d @ S\nprivate C%d @ S\n", i, i, i, i, i)
		fmt.Fprintf(&b, "rule c%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule k%d: W(Y%d, b) ->5s W(Z%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule g%d: Ws(X%d, b) && C%d = 0 ->5s W(Q%d, b)\n", i, i, i, i)
	}
	sp, err := rule.ParseSpecString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	initial := data.NewInterpretation()
	for i := 0; i < families; i++ {
		for _, fam := range []string{"X", "Y", "Z", "Q", "C"} {
			initial.Set(data.Item(fmt.Sprintf("%s%d", fam, i)), data.NewInt(0))
		}
	}
	return sp, initial
}

func seedConds(t *testing.T, f *Fleet, families int) {
	t.Helper()
	for i := 0; i < families; i++ {
		if err := f.WriteAux(data.Item(fmt.Sprintf("C%d", i)), data.NewInt(0)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFleetRejectsTranslatorSpecs(t *testing.T) {
	sp, err := rule.ParseSpecString("site S\nitem salary @ S\nprivate P @ S\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sp, Options{Shells: 2}); err == nil {
		t.Fatal("a spec with translator-backed items must be rejected by the in-process fleet")
	}
}

// A 3-shell fleet runs the chain strategy correctly: every cascade
// lands, cross-shard fires travel the mesh, and the Appendix A.2
// checker finds nothing.
func TestFleetShardsAndCascades(t *testing.T) {
	const families, rounds = 12, 5
	sp, initial := chainSpec(t, families)
	f, err := New(sp, Options{
		Members: []string{"s1", "s2", "s3"},
		Trace:   trace.NewSharded(initial, 3),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	seedConds(t, f, families)

	tab := f.Table()
	owners := map[string]bool{}
	for _, m := range tab.Owners {
		owners[m] = true
	}
	if len(owners) != 3 {
		t.Fatalf("12 families spread over %d of 3 shells; want all 3 used (owners %v)", len(owners), tab.Counts())
	}

	for r := 1; r <= rounds; r++ {
		for i := 0; i < families; i++ {
			item := data.Item(fmt.Sprintf("X%d", i))
			if err := f.Post(item, data.NewInt(int64(r-1)), data.NewInt(int64(r))); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Drain()

	for i := 0; i < families; i++ {
		for _, fam := range []string{"Y", "Z", "Q"} {
			v, ok, err := f.ReadAux(data.Item(fmt.Sprintf("%s%d", fam, i)))
			if err != nil || !ok {
				t.Fatalf("%s%d unreadable after drain: ok=%v err=%v", fam, i, ok, err)
			}
			if v.String() != fmt.Sprint(rounds) {
				t.Errorf("%s%d = %s after %d rounds, want %d", fam, i, v, rounds, rounds)
			}
		}
	}
	if v := f.CheckTrace(); len(v) != 0 {
		t.Fatalf("checker found %d violations: %v", len(v), v[0])
	}
}

// Ingress at the wrong member forwards the trigger to the owner over
// the mesh instead of executing locally.
func TestFleetForwardsMisroutedTriggers(t *testing.T) {
	const families = 6
	sp, initial := chainSpec(t, families)
	f, err := New(sp, Options{
		Members: []string{"s1", "s2"},
		Trace:   trace.NewSharded(initial, 2),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	seedConds(t, f, families)

	// Deliver every X-update to the member that does NOT own it.
	tab := f.Table()
	posted := 0
	for i := 0; i < families; i++ {
		base := fmt.Sprintf("X%d", i)
		wrong := "s1"
		if tab.Owners[base] == "s1" {
			wrong = "s2"
		}
		if err := f.PostVia(wrong, data.Item(base), data.NewInt(0), data.NewInt(1)); err != nil {
			t.Fatal(err)
		}
		posted++
	}
	f.Drain()

	for i := 0; i < families; i++ {
		v, ok, err := f.ReadAux(data.Item(fmt.Sprintf("Z%d", i)))
		if err != nil || !ok || v.String() != "1" {
			t.Fatalf("Z%d = %v (ok=%v err=%v); misrouted trigger was not executed at the owner", i, v, ok, err)
		}
	}
	forwards := uint64(0)
	for _, id := range f.Members() {
		forwards += f.Router(id).forwards.With(id, "trigger").Value()
	}
	if forwards != uint64(posted) {
		t.Fatalf("forwarded %d triggers, want %d (one per misrouted post)", forwards, posted)
	}
	if v := f.CheckTrace(); len(v) != 0 {
		t.Fatalf("checker found %d violations", len(v))
	}
}

// Rebalance moves ownership and the moving bases' private state; the
// fleet keeps executing correctly afterwards, and the durable store
// remembers the new table across a restart.
func TestFleetRebalanceHandsOffDurableState(t *testing.T) {
	const families = 10
	dir := t.TempDir()
	sp, initial := chainSpec(t, families)
	open := func(members ...string) *Fleet {
		st, err := durable.Open(dir, durable.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(sp, Options{
			Members: members,
			Trace:   trace.NewSharded(initial, 3),
			Store:   st,
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	f := open("s1", "s2")
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	seedConds(t, f, families)
	for i := 0; i < families; i++ {
		if err := f.Post(data.Item(fmt.Sprintf("X%d", i)), data.NewInt(0), data.NewInt(1)); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()

	if err := f.AddShell("s3", 0); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Rebalance([]string{"s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("rebalance produced epoch %d, want 2", rep.Epoch)
	}
	if len(rep.Moves) == 0 || rep.Items == 0 {
		t.Fatalf("rebalance to a new member moved %d bases / %d items; want both > 0", len(rep.Moves), rep.Items)
	}
	gained := false
	for _, m := range rep.Moves {
		if m.To == "s3" {
			gained = true
		}
	}
	if !gained {
		t.Fatal("no base moved to the new member")
	}

	// Second round after the cutover: the chain (including the C-guarded
	// rule, whose condition value had to travel with the handoff) still
	// executes for every family.
	for i := 0; i < families; i++ {
		if err := f.Post(data.Item(fmt.Sprintf("X%d", i)), data.NewInt(1), data.NewInt(2)); err != nil {
			t.Fatal(err)
		}
	}
	f.Drain()
	for i := 0; i < families; i++ {
		for _, fam := range []string{"Y", "Z", "Q"} {
			v, ok, err := f.ReadAux(data.Item(fmt.Sprintf("%s%d", fam, i)))
			if err != nil || !ok || v.String() != "2" {
				t.Fatalf("%s%d = %v (ok=%v err=%v) after rebalance, want 2", fam, i, v, ok, err)
			}
		}
	}
	if v := f.CheckTrace(); len(v) != 0 {
		t.Fatalf("checker found %d violations after rebalance", len(v))
	}
	f.Stop()

	// Restart from the same store with the same membership: the persisted
	// epoch-2 table must be adopted, not recomputed at epoch 1.
	f2 := open("s1", "s2", "s3")
	defer f2.Stop()
	if got := f2.Table().Epoch; got != 2 {
		t.Fatalf("restarted fleet installed epoch %d, want persisted epoch 2", got)
	}
	if f2.Table().Checksum() != f.Table().Checksum() {
		t.Fatal("restarted fleet computed a different placement than the persisted table")
	}
}

func TestFleetRebalanceRequiresRunningMembers(t *testing.T) {
	sp, initial := chainSpec(t, 2)
	f, err := New(sp, Options{
		Members: []string{"s1"},
		Trace:   trace.NewSharded(initial, 1),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if _, err := f.Rebalance([]string{"s1", "ghost"}); err == nil {
		t.Fatal("rebalance onto a member that was never started must fail")
	}
}
