package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// Options configures a fleet.
type Options struct {
	// Members are the shell IDs; empty derives shard-1..shard-N from
	// Shells (default 2).
	Members []string
	// Shells is the member count when Members is empty.
	Shells int
	// VNodes and LoadFactor parameterize the ring (see Params).
	VNodes     int
	LoadFactor float64
	// Clock drives the shells and the default bus.  Nil means real time —
	// which is also what an in-process fleet needs: bus deliveries ride
	// timer callbacks, and a virtual clock only fires those inside
	// Advance/Run.
	Clock vclock.Clock
	// Network is the mesh; nil builds a zero-latency in-process bus on
	// Clock.  The fleet wraps whatever network it gets with send/delivery
	// accounting so Drain and Rebalance can prove the mesh is quiescent.
	Network transport.Network
	// Trace is the shared event trace; nil allocates a sharded trace
	// sized to the member count.  All members share one trace so the
	// Appendix A.2 checker sees the whole execution.
	Trace *trace.Trace
	// Workers is each member's engine size (shell.Options.Workers).
	Workers int
	// Store enables durable state: every member journals its CM-private
	// items (handoffs land in the new owner's WAL before cutover) and the
	// fleet persists its route table under the "fleet-table" log.
	Store *durable.Store
	// Metrics is the registry (nil = obs.Default).
	Metrics *obs.Registry
}

// Fleet is an in-process sharded deployment: N shells sharing one spec,
// one trace, and one mesh, with item-base ownership assigned by a
// consistent-hash route table instead of static site hosting.  Ingress
// (Post, RequestWrite, WriteAux) routes by the current table the way a
// table-holding translator would; Rebalance moves ownership — and the
// moving bases' private state, through the durable subsystem when a
// Store is configured — at an atomic epoch boundary.
type Fleet struct {
	spec   *rule.Spec
	params Params
	bases  []string
	clock  vclock.Clock
	tr     *trace.Trace
	net    *countingNet
	store  *durable.Store
	tlog   *durable.Log
	reg    *obs.Registry

	// mu is the ingress gate: Post and friends hold it shared, Rebalance
	// holds it exclusively across drain→handoff→cutover, so no external
	// trigger can slip in mid-handoff.
	mu      sync.RWMutex
	table   Table
	shells  map[string]*shell.Shell
	routers map[string]*Router
	order   []string // all live shells, in creation order

	rebalances *obs.Counter
	moved      *obs.Counter
	handoff    *obs.Counter

	started bool
}

// countingNet wraps the mesh with send/delivery accounting: the mesh is
// quiescent exactly when every send has been received and processed
// (delivered increments after the receive callback returns).
type countingNet struct {
	inner     transport.Network
	sent      atomic.Uint64
	delivered atomic.Uint64
}

func (n *countingNet) Join(id string, recv func(transport.Message)) (transport.Endpoint, error) {
	ep, err := n.inner.Join(id, func(m transport.Message) {
		recv(m)
		n.delivered.Add(1)
	})
	if err != nil {
		return nil, err
	}
	return &countingEndpoint{ep: ep, n: n}, nil
}

type countingEndpoint struct {
	ep transport.Endpoint
	n  *countingNet
}

func (e *countingEndpoint) Send(to string, m transport.Message) error {
	e.n.sent.Add(1)
	return e.ep.Send(to, m)
}

func (e *countingEndpoint) Close() error { return e.ep.Close() }

// quiet reports whether every sent message has been fully processed.
func (n *countingNet) quiet() bool { return n.sent.Load() == n.delivered.Load() }

// New assembles a fleet for a spec.  The spec must be fully CM-private
// (no translator-backed items): the in-process fleet shards constraint
// state, while mixed deployments pin translator sites via Params.Pinned
// and cmshell's -route-table flag.
func New(spec *rule.Spec, o Options) (*Fleet, error) {
	if len(spec.Items) > 0 {
		return nil, fmt.Errorf("fleet: spec has %d translator-backed item(s); the in-process fleet shards CM-private state only (pin database sites with a route file and cmshell -route-table)", len(spec.Items))
	}
	members := dedupSorted(o.Members)
	if len(members) == 0 {
		n := o.Shells
		if n <= 0 {
			n = 2
		}
		for i := 1; i <= n; i++ {
			members = append(members, fmt.Sprintf("shard-%d", i))
		}
	}
	clock := o.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.Default
	}
	tr := o.Trace
	if tr == nil {
		tr = trace.NewSharded(nil, len(members))
	}
	inner := o.Network
	if inner == nil {
		inner = transport.NewBus(clock, 0)
	}
	f := &Fleet{
		spec:    spec,
		params:  Params{VNodes: o.VNodes, LoadFactor: o.LoadFactor, Affinity: Affinity(spec)}.withDefaults(),
		bases:   SpecBases(spec),
		clock:   clock,
		tr:      tr,
		net:     &countingNet{inner: inner},
		store:   o.Store,
		reg:     reg,
		shells:  map[string]*shell.Shell{},
		routers: map[string]*Router{},
		rebalances: reg.Counter("cmtk_fleet_rebalances_total",
			"Completed rebalance operations (epoch cutovers).").With(),
		moved: reg.Counter("cmtk_fleet_moved_bases_total",
			"Item bases whose owner changed across all rebalances.").With(),
		handoff: reg.Counter("cmtk_fleet_handoff_items_total",
			"CM-private items exported from an old owner and imported (journaled) at the new one during rebalances.").With(),
	}

	epoch := uint64(1)
	var persisted *Table
	if f.store != nil {
		lg, rec, err := f.store.Log(TableLogName)
		if err != nil {
			return nil, fmt.Errorf("fleet: opening table log: %w", err)
		}
		if rec == nil {
			return nil, fmt.Errorf("fleet: table log already open")
		}
		f.tlog = lg
		if rec.Snapshot != nil {
			t, err := decodeTable(rec.Snapshot)
			if err != nil {
				return nil, err
			}
			persisted = &t
		}
	}
	if persisted != nil && sameMembers(persisted.Members, members) {
		// Restart with unchanged membership: adopt the persisted table so
		// ownership (and the journaled private state each member restored)
		// lines up with where the last incarnation left it.
		f.table = *persisted
	} else {
		if persisted != nil {
			// Membership changed while down: compute fresh, never reuse an
			// epoch number the old fleet already stamped onto messages.
			epoch = persisted.Epoch + 1
		}
		t, err := Assign(epoch, members, f.bases, f.params)
		if err != nil {
			return nil, err
		}
		f.table = t
	}

	for _, id := range members {
		if err := f.addShellLocked(id, o.Workers); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addShellLocked builds one member: router with the current table, shell
// with the shared clock/trace/spec, every site added as private-hosted,
// full peer wiring, durable journal when configured, mesh join.
func (f *Fleet) addShellLocked(id string, workers int) error {
	if _, dup := f.shells[id]; dup {
		return fmt.Errorf("fleet: duplicate member %s", id)
	}
	rt := NewRouter(id, f.reg)
	rt.Install(f.table)
	sh := shell.New(id, f.spec, shell.Options{
		Clock:   f.clock,
		Trace:   f.tr,
		Workers: workers,
		Router:  rt,
	})
	for _, site := range f.spec.Sites {
		sh.AddSite(site, nil)
	}
	for _, peer := range f.order {
		sh.AddPeer(peer)
		f.shells[peer].AddPeer(id)
	}
	if f.store != nil {
		if _, err := sh.EnableDurable(f.store); err != nil {
			return fmt.Errorf("fleet: durable state for %s: %w", id, err)
		}
	}
	if err := sh.Attach(f.net); err != nil {
		return fmt.Errorf("fleet: joining %s to the mesh: %w", id, err)
	}
	f.shells[id] = sh
	f.routers[id] = rt
	f.order = append(f.order, id)
	if f.started {
		if err := sh.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Start starts every member and persists the initial table.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("fleet: already started")
	}
	for _, id := range f.order {
		if err := f.shells[id].Start(); err != nil {
			return err
		}
	}
	f.started = true
	return f.persistTableLocked()
}

// AddShell joins a new member to the mesh without giving it ownership;
// follow with Rebalance to move bases onto it.
func (f *Fleet) AddShell(id string, workers int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addShellLocked(id, workers)
}

// Post routes an external spontaneous update to the base's current
// owner — the ingress path a table-holding translator uses.
func (f *Fleet) Post(item data.ItemName, old, new data.Value) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sh, err := f.ownerLocked(item.Base)
	if err != nil {
		return err
	}
	sh.Spontaneous(item, old, new)
	return nil
}

// PostVia injects an update at a specific member regardless of
// ownership, exercising the shell-side forwarding path (a stale-table
// ingress does exactly this).
func (f *Fleet) PostVia(member string, item data.ItemName, old, new data.Value) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sh, ok := f.shells[member]
	if !ok {
		return fmt.Errorf("fleet: no member %s", member)
	}
	sh.Spontaneous(item, old, new)
	return nil
}

// RequestWrite routes a CM-originated write request to the owner.
func (f *Fleet) RequestWrite(item data.ItemName, v data.Value) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sh, err := f.ownerLocked(item.Base)
	if err != nil {
		return err
	}
	sh.RequestWrite(item, v)
	return nil
}

// WriteAux initializes a CM-private item at its owner (setup only).
func (f *Fleet) WriteAux(item data.ItemName, v data.Value) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sh, err := f.ownerLocked(item.Base)
	if err != nil {
		return err
	}
	sh.WriteAux(item, v)
	return nil
}

// ReadAux reads a CM-private item from its owner.
func (f *Fleet) ReadAux(item data.ItemName) (data.Value, bool, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sh, err := f.ownerLocked(item.Base)
	if err != nil {
		return data.NullValue, false, err
	}
	v, ok := sh.ReadAux(item)
	return v, ok, nil
}

func (f *Fleet) ownerLocked(base string) (*shell.Shell, error) {
	owner, ok := f.table.Owner(base)
	if !ok {
		return nil, fmt.Errorf("fleet: base %s is not in the route table", base)
	}
	sh, ok := f.shells[owner]
	if !ok {
		return nil, fmt.Errorf("fleet: table assigns %s to unknown member %s", base, owner)
	}
	return sh, nil
}

// Drain blocks until the whole fleet is quiescent: every shell's queues
// are empty and every mesh message (including forwards triggered while
// draining) has been processed.
func (f *Fleet) Drain() {
	f.mu.RLock()
	defer f.mu.RUnlock()
	f.drainLocked()
}

func (f *Fleet) drainLocked() {
	for {
		s0, d0 := f.net.sent.Load(), f.net.delivered.Load()
		for _, id := range f.order {
			f.shells[id].Drain()
		}
		if f.net.quiet() && s0 == f.net.sent.Load() && d0 == f.net.delivered.Load() {
			return
		}
		// In-flight bus deliveries ride real-clock timer goroutines; yield
		// rather than spin.  The sleep only paces this poll loop — it never
		// influences a committed timestamp or verdict.
		runtime.Gosched()
		//cmlint:allow wallclock(quiesce poll pacing only; no deterministic state reads this clock)
		time.Sleep(100 * time.Microsecond)
	}
}

// RebalanceReport describes one completed rebalance.
type RebalanceReport struct {
	Epoch uint64 `json:"epoch"` // the new table's epoch
	Moves []Move `json:"moves"` // bases that changed owner
	Items int    `json:"items"` // private items handed off
}

// Rebalance recomputes ownership over a new membership set and cuts
// over atomically:
//
//  1. the ingress gate closes (no new external triggers),
//  2. the mesh and every shell drain (the moving shards' outboxes empty),
//  3. each moving base's CM-private state is exported from its old owner
//     and imported — journaled into the WAL when durable — at the new one,
//  4. the next-epoch table installs on every router and persists,
//  5. the gate reopens.
//
// In-flight messages stamped with the old epoch that surface later (a
// cross-process mesh cannot be globally drained) are forwarded to the
// new owner by the shell's stale-epoch path.  Every member must already
// run (AddShell first to grow); members absent from the new set stay in
// the mesh but own nothing afterwards.
func (f *Fleet) Rebalance(members []string) (RebalanceReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	members = dedupSorted(members)
	for _, id := range members {
		if _, ok := f.shells[id]; !ok {
			return RebalanceReport{}, fmt.Errorf("fleet: member %s is not running (AddShell first)", id)
		}
	}
	next, err := Assign(f.table.Epoch+1, members, f.bases, f.params)
	if err != nil {
		return RebalanceReport{}, err
	}
	f.drainLocked()
	moves := Moves(f.table, next)

	// Handoff: group the moving bases by (from, to) pair so each pair is
	// one export/import.
	type hop struct{ from, to string }
	byHop := map[hop]map[string]bool{}
	for _, m := range moves {
		h := hop{m.From, m.To}
		if byHop[h] == nil {
			byHop[h] = map[string]bool{}
		}
		byHop[h][m.Base] = true
	}
	items := 0
	for _, m := range moves { // iterate moves for deterministic order
		h := hop{m.From, m.To}
		bases := byHop[h]
		if bases == nil {
			continue // pair already handed off
		}
		delete(byHop, h)
		// The handoff travels as a sectioned, CRC-verified snapshot: the
		// importer refuses a payload that rotted rather than installing
		// damaged constraint state under the new epoch.
		snap := f.shells[h.from].ExportPrivateSnap(func(b string) bool { return bases[b] }, true)
		n, _, err := f.shells[h.to].ImportPrivateSnap(snap)
		if err != nil {
			return RebalanceReport{}, err
		}
		items += n
	}

	// Cutover: one epoch boundary for the whole fleet.  Ownership refresh
	// happens inside the same gated window, so no member dispatches
	// against a half-updated rule set.
	f.table = next
	for _, id := range f.order {
		f.routers[id].Install(next)
		if err := f.shells[id].RefreshOwnership(); err != nil {
			return RebalanceReport{}, err
		}
	}
	if err := f.persistTableLocked(); err != nil {
		return RebalanceReport{}, err
	}
	f.rebalances.Inc()
	f.moved.Add(uint64(len(moves)))
	f.handoff.Add(uint64(items))
	return RebalanceReport{Epoch: next.Epoch, Moves: moves, Items: items}, nil
}

// persistTableLocked checkpoints the current table into the durable
// store's "fleet-table" log (no-op without a store).
func (f *Fleet) persistTableLocked() error {
	if f.tlog == nil {
		return nil
	}
	buf, err := json.Marshal(f.table)
	if err != nil {
		return err
	}
	return f.tlog.Checkpoint(buf)
}

// Table returns the current route table.
func (f *Fleet) Table() Table {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.table
}

// Trace returns the shared event trace.
func (f *Fleet) Trace() *trace.Trace { return f.tr }

// Shell returns a member by ID (nil if absent).
func (f *Fleet) Shell(id string) *shell.Shell {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.shells[id]
}

// Router returns a member's route-table view (nil if absent).
func (f *Fleet) Router(id string) *Router {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.routers[id]
}

// Members returns the live shells' IDs in creation order.
func (f *Fleet) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string{}, f.order...)
}

// CheckTrace validates the shared trace against the Appendix A.2
// checker, using the spec rules plus every member's implicit interface
// rules.
func (f *Fleet) CheckTrace() []trace.Violation {
	f.mu.RLock()
	rules := append([]rule.Rule{}, f.spec.Rules...)
	for _, id := range f.order {
		rules = append(rules, f.shells[id].ImplicitRules()...)
	}
	f.mu.RUnlock()
	return trace.NewChecker(rules).Check(f.tr)
}

// Stop stops every member (draining their engines) and closes their
// mesh endpoints.
func (f *Fleet) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, id := range f.order {
		f.shells[id].Stop()
	}
	f.started = false
}
