package fleet

import (
	"testing"

	"cmtk/internal/analysis/leakcheck"
)

// TestMain fails the suite if goroutines it created outlive it — the
// dynamic counterpart to the static goroleak analyzer (DESIGN §11).
func TestMain(m *testing.M) { leakcheck.Main(m) }
