package fleet

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"cmtk/internal/rule"
)

func basesN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("base%03d", i)
	}
	return out
}

// Balance: with no affinity, no member may exceed the bounded-load cap,
// and every base must be assigned.
func TestAssignBalanceWithinBound(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	bases := basesN(200)
	tab, err := Assign(1, members, bases, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Owners) != len(bases) {
		t.Fatalf("assigned %d of %d bases", len(tab.Owners), len(bases))
	}
	bound := int(math.Ceil(200 * DefaultLoadFactor / 4)) // 63
	for m, n := range tab.Counts() {
		if n > bound {
			t.Errorf("member %s owns %d bases, above the %d bound", m, n, bound)
		}
		if n == 0 {
			t.Errorf("member %s owns nothing", m)
		}
	}
}

// Minimal movement: growing 3→4 members moves exactly the bases whose
// ring successor changed — pinned as exact counts, not >=1 assertions.
// The counts are stable because placement is a pure function of the
// frozen FNV-1a hash.
func TestAssignMinimalMovementOnGrow(t *testing.T) {
	bases := basesN(120)
	old, err := Assign(1, []string{"a", "b", "c"}, bases, Params{})
	if err != nil {
		t.Fatal(err)
	}
	next, err := Assign(2, []string{"a", "b", "c", "d"}, bases, Params{})
	if err != nil {
		t.Fatal(err)
	}
	moves := Moves(old, next)
	// Golden counts for this exact input (recompute by temporarily
	// logging if the ring geometry ever changes deliberately).
	const wantMoves = 31
	if len(moves) != wantMoves {
		t.Fatalf("3→4 members moved %d bases, want exactly %d", len(moves), wantMoves)
	}
	for _, m := range moves {
		if m.To != "d" {
			t.Fatalf("base %s moved %s→%s; every move of this grow should land on the new member", m.Base, m.From, m.To)
		}
	}
	// Far fewer bases moved than a naive rehash (which would move ~3/4 of
	// them); the new member received close to its 120/4=30 fair share.
	if len(moves) > len(bases)/2 {
		t.Fatalf("moved %d of %d bases — not minimal movement", len(moves), len(bases))
	}
}

// Shrinking 4→3 moves exactly the departing member's bases and nothing
// else: survivors keep everything they had.
func TestAssignMinimalMovementOnShrink(t *testing.T) {
	bases := basesN(120)
	old, err := Assign(1, []string{"a", "b", "c", "d"}, bases, Params{})
	if err != nil {
		t.Fatal(err)
	}
	next, err := Assign(2, []string{"a", "b", "c"}, bases, Params{})
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for _, m := range old.Owners {
		if m == "d" {
			owned++
		}
	}
	moves := Moves(old, next)
	if len(moves) != owned {
		t.Fatalf("4→3 members moved %d bases; only d's %d bases should move", len(moves), owned)
	}
	for _, m := range moves {
		if m.From != "d" {
			t.Fatalf("base %s moved from surviving member %s", m.Base, m.From)
		}
	}
}

// Determinism: the placement is a pure function of its inputs.  The
// golden checksum is computed from the frozen FNV-1a geometry, so any
// process on any platform must reproduce it exactly — this is what lets
// translators compute tables independently of the shells.
func TestAssignDeterministicAcrossProcesses(t *testing.T) {
	tab, err := Assign(1, []string{"a", "b", "c"}, basesN(50), Params{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Assign(1, []string{"c", "b", "a", "a"}, basesN(50), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Checksum() != again.Checksum() {
		t.Fatal("same inputs (modulo order/dups) produced different placements")
	}
	const golden = uint64(0xe9e39a5b1b5fb811)
	if got := tab.Checksum(); got != golden {
		t.Fatalf("placement checksum %#x, want golden %#x — the hash geometry changed, which breaks cross-process routing", got, golden)
	}
}

// Affinity groups always land together, and pins drag the whole group.
func TestAssignAffinityAndPins(t *testing.T) {
	bases := []string{"A", "B", "C", "D", "E"}
	aff := map[string]string{"C": "A", "E": "D"}
	tab, err := Assign(1, []string{"m1", "m2", "m3"}, bases, Params{Affinity: aff})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Owners["A"] != tab.Owners["C"] {
		t.Errorf("affinity pair A/C split: %s vs %s", tab.Owners["A"], tab.Owners["C"])
	}
	if tab.Owners["D"] != tab.Owners["E"] {
		t.Errorf("affinity pair D/E split: %s vs %s", tab.Owners["D"], tab.Owners["E"])
	}

	pinned, err := Assign(1, []string{"m1", "m2", "m3"}, bases,
		Params{Affinity: aff, Pinned: map[string]string{"C": "m2"}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Owners["A"] != "m2" || pinned.Owners["C"] != "m2" {
		t.Errorf("pin on C should drag the A/C group to m2, got A=%s C=%s",
			pinned.Owners["A"], pinned.Owners["C"])
	}

	if _, err := Assign(1, []string{"m1", "m2"}, bases,
		Params{Affinity: aff, Pinned: map[string]string{"A": "m1", "C": "m2"}}); err == nil {
		t.Error("conflicting pins inside one affinity group should be rejected")
	}
	if _, err := Assign(1, []string{"m1"}, bases,
		Params{Pinned: map[string]string{"A": "nope"}}); err == nil {
		t.Error("pin to unknown member should be rejected")
	}
}

func TestAssignRejectsEmptyMembership(t *testing.T) {
	if _, err := Assign(1, nil, basesN(3), Params{}); err == nil {
		t.Fatal("assignment over zero members should fail")
	}
}

func TestTableRoundTripFile(t *testing.T) {
	tab, err := Assign(7, []string{"a", "b"}, basesN(10), Params{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "route.json")
	if err := tab.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 7 || back.Checksum() != tab.Checksum() {
		t.Fatalf("round trip mangled the table: epoch %d checksum %#x", back.Epoch, back.Checksum())
	}
}

// Affinity derivation from the rule graph: condition reads co-locate
// with the trigger base, all effects of one rule co-locate with each
// other, and the LHS→effect edge stays cross-shard (that hop is the
// mesh message).
func TestAffinityFromSpec(t *testing.T) {
	sp, err := rule.ParseSpecString(`site S
private A @ S
private B @ S
private C @ S
private D @ S
private E @ S
rule r1: Ws(A, b) && C = 0 ->5s W(B, b)
rule r2: W(B, b) ->5s W(D, b), W(E, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	aff := Affinity(sp)
	root := func(b string) string {
		for {
			next, ok := aff[b]
			if !ok {
				return b
			}
			b = next
		}
	}
	if root("A") != root("C") {
		t.Errorf("condition base C should co-locate with trigger base A (got roots %s, %s)", root("A"), root("C"))
	}
	if root("D") != root("E") {
		t.Errorf("effect bases D and E of one rule should co-locate (got roots %s, %s)", root("D"), root("E"))
	}
	if root("A") == root("B") {
		t.Error("LHS base A and effect base B should NOT be unioned — that hop is the cross-shard fire")
	}
	if root("B") == root("D") {
		t.Error("r2's LHS base B and its effects should NOT be unioned")
	}
}

func TestRouterInstallMonotonic(t *testing.T) {
	t1, _ := Assign(1, []string{"a", "b"}, basesN(4), Params{})
	t2, _ := Assign(2, []string{"a", "b"}, basesN(4), Params{})
	rt := NewRouter("a", nil)
	if _, ok := rt.OwnerOf("base000"); ok {
		t.Fatal("router resolved a base before any table was installed")
	}
	if !rt.Install(t2) {
		t.Fatal("installing the first table must succeed")
	}
	if rt.Install(t1) {
		t.Fatal("older epoch must be rejected")
	}
	if rt.Install(t2) {
		t.Fatal("equal epoch reinstall must be a no-op")
	}
	if rt.Epoch() != 2 {
		t.Fatalf("epoch %d after monotonic installs, want 2", rt.Epoch())
	}
	owner, ok := rt.OwnerOf("base000")
	if !ok || owner != t2.Owners["base000"] {
		t.Fatalf("OwnerOf(base000) = %s,%v; want table owner %s", owner, ok, t2.Owners["base000"])
	}
}
