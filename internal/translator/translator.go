// Package translator implements the CM-Translators of Figure 2: one
// adapter per Raw Information Source kind, each presenting the uniform
// CM-Interface (package cmi) over that source's native interface, and
// each configured purely from a CM-RID (package rid).
//
// Porting to a new source kind means writing one adapter here; retargeting
// an existing kind to a different deployment (Sybase payroll → Oracle
// inventory) means editing only the CM-RID — the "less than a page"
// property of Section 4.3.
package translator

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/obs"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// failureHub implements cmi.Interface's failure reporting for all
// translator kinds, and carries their shared obs instrumentation: every
// CM-Interface operation and every classified failure lands in the
// process-wide obs.Default registry, labelled by site.
type failureHub struct {
	site  string
	clock vclock.Clock
	mu    sync.Mutex
	fns   []func(cmi.Failure)

	// operation counters by CM-Interface entry point
	mRead, mWrite, mNotify, mList *obs.Counter
	// failure counters by Section 5 kind
	mFailMetric, mFailLogical *obs.Counter
}

func newFailureHub(site string, clock vclock.Clock) failureHub {
	if clock == nil {
		clock = vclock.Real{}
	}
	ops := obs.Default.Counter("cmtk_translator_ops_total",
		"CM-Interface operations served by a translator, by site and entry point.",
		"site", "op")
	fails := obs.Default.Counter("cmtk_translator_failures_total",
		"Interface failures classified by a translator, by Section 5 kind.",
		"site", "kind")
	return failureHub{
		site: site, clock: clock,
		mRead:        ops.With(site, "read"),
		mWrite:       ops.With(site, "write"),
		mNotify:      ops.With(site, "notify"),
		mList:        ops.With(site, "list"),
		mFailMetric:  fails.With(site, "metric"),
		mFailLogical: fails.With(site, "logical"),
	}
}

// countOp bumps the operation counter for a CM-Interface entry point.
// Translators call it on entry to Read/Write/Subscribe/List.
func (h *failureHub) countOp(op string) {
	switch op {
	case "read":
		h.mRead.Inc()
	case "write":
		h.mWrite.Inc()
	case "notify":
		h.mNotify.Inc()
	case "list":
		h.mList.Inc()
	}
}

// OnFailure implements cmi.Interface.
func (h *failureHub) OnFailure(fn func(cmi.Failure)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fns = append(h.fns, fn)
}

// report classifies err and delivers it to the failure callbacks.  It
// returns err for convenient chaining.
func (h *failureHub) report(op string, err error) error {
	if err == nil {
		return nil
	}
	f := cmi.Failure{
		Kind: cmi.Classify(err),
		Site: h.site,
		When: h.clock.Now(),
		Op:   op,
		Err:  err,
	}
	if f.Kind == cmi.FailMetric {
		h.mFailMetric.Inc()
	} else {
		h.mFailLogical.Inc()
	}
	h.mu.Lock()
	fns := append([]func(cmi.Failure){}, h.fns...)
	h.mu.Unlock()
	for _, fn := range fns {
		fn(f)
	}
	return err
}

// convert parses a raw native string into a typed value per the RID
// binding's declared type.
func convert(raw, typ string) (data.Value, error) {
	switch typ {
	case "int":
		i, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return data.NullValue, fmt.Errorf("translator: %q is not an int", raw)
		}
		return data.NewInt(i), nil
	case "float":
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return data.NullValue, fmt.Errorf("translator: %q is not a float", raw)
		}
		return data.NewFloat(f), nil
	case "bool":
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return data.NullValue, fmt.Errorf("translator: %q is not a bool", raw)
		}
		return data.NewBool(b), nil
	default: // string
		return data.NewString(raw), nil
	}
}

// render turns a typed value into the raw native string form.
func render(v data.Value) string {
	switch v.Kind() {
	case data.String:
		return v.Str()
	case data.Null:
		return ""
	default:
		return v.String()
	}
}

// keyString renders an item's first argument as the native key string
// ($n); items in the paper's scenarios are keyed by a single argument.
func keyString(item data.ItemName) (string, error) {
	if len(item.Args) == 0 {
		return "", fmt.Errorf("translator: item %s has no key argument", item)
	}
	if len(item.Args) > 1 {
		return "", fmt.Errorf("translator: item %s has %d key arguments; bindings support one", item, len(item.Args))
	}
	return render(item.Args[0]), nil
}

// notifyCondPasses evaluates a conditional-notify expression with a bound
// to the old value and b to the new (Section 3.1.1's Ws(X, a, b) ∧ C → N
// interface).  A nil condition always passes; creations and deletions
// (null old or new) always pass, since the paper's filters concern value
// changes.  Evaluation errors fail open: a broken filter must not
// silently hide updates.
func notifyCondPasses(cond rule.Expr, old, new data.Value) bool {
	if cond == nil || old.IsNull() || new.IsNull() {
		return true
	}
	env := condEnv{old: old, new: new}
	ok, err := rule.EvalBool(cond, env)
	if err != nil {
		return true
	}
	return ok
}

type condEnv struct{ old, new data.Value }

func (e condEnv) Param(name string) (data.Value, bool) {
	switch name {
	case "a":
		return e.old, true
	case "b":
		return e.new, true
	default:
		return data.NullValue, false
	}
}

func (e condEnv) Item(data.ItemName) (data.Value, bool, error) {
	return data.NullValue, false, fmt.Errorf("translator: notifycond may only reference a and b")
}

// CapsFromStatements derives the capability set a site offers for an item
// base from its declared interface statements — the paper's own notion of
// "what can the CM do here".  A WR→W statement implies write, RR→R read,
// Ws→N notify, P∧cond→N periodic notify (still notify from the shell's
// viewpoint).
func CapsFromStatements(stmts []rule.Rule, base string) ris.Capability {
	var caps ris.Capability
	for _, st := range stmts {
		if !mentionsBase(st, base) {
			continue
		}
		if len(st.Steps) != 1 {
			continue
		}
		eff := st.Steps[0].Eff
		switch {
		case st.LHS.Op == event.OpWR && eff.Op == event.OpW:
			caps |= ris.CapWrite | ris.CapDelete
		case st.LHS.Op == event.OpRR && eff.Op == event.OpR:
			caps |= ris.CapRead
		case st.LHS.Op == event.OpWs && eff.Op == event.OpN:
			caps |= ris.CapNotify
		case st.LHS.Op == event.OpP && eff.Op == event.OpN:
			caps |= ris.CapNotify
		}
	}
	return caps
}

// NotifyBases lists, in sorted order, the item bases a set of interface
// statements can push spontaneous-change notifications for (Ws → N or
// P → N statements).  A fleet ingress subscribes to exactly these bases
// and routes each callback to the base's current owner shell.
func NotifyBases(stmts []rule.Rule) []string {
	set := map[string]bool{}
	for _, st := range stmts {
		if len(st.Steps) != 1 {
			continue
		}
		eff := st.Steps[0].Eff
		if eff.Op != event.OpN {
			continue
		}
		if st.LHS.Op == event.OpWs && st.LHS.Op.HasItem() {
			set[st.LHS.Item.Base] = true
		} else if st.LHS.Op == event.OpP && eff.Op.HasItem() {
			set[eff.Item.Base] = true
		}
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

func mentionsBase(r rule.Rule, base string) bool {
	if r.LHS.Op.HasItem() && r.LHS.Item.Base == base {
		return true
	}
	for _, s := range r.Steps {
		if s.Eff.Op.HasItem() && s.Eff.Item.Base == base {
			return true
		}
	}
	return false
}

// statementsFor filters interface statements to those mentioning base.
func statementsFor(stmts []rule.Rule, base string) []rule.Rule {
	var out []rule.Rule
	for _, st := range stmts {
		if mentionsBase(st, base) {
			out = append(out, st)
		}
	}
	return out
}
