package translator

import (
	"errors"
	"fmt"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// BibSource is the native bibliographic query interface; both a local
// *bibstore.Store and a remote *server.BibClient satisfy it.
type BibSource interface {
	ByAuthor(author string) []bibstore.Record
	Get(key string) (bibstore.Record, error)
	Keys() []string
}

// LocalBib adapts an in-process bibliography; it is the identity — the
// store's methods already match — but gives deployments a uniform
// constructor shape.
type LocalBib struct{ S *bibstore.Store }

// ByAuthor implements BibSource.
func (l LocalBib) ByAuthor(author string) []bibstore.Record { return l.S.ByAuthor(author) }

// Get implements BibSource.
func (l LocalBib) Get(key string) (bibstore.Record, error) { return l.S.Get(key) }

// Keys implements BibSource.
func (l LocalBib) Keys() []string { return l.S.Keys() }

// RemoteBib adapts a client whose methods return errors (network) to the
// BibSource shape; query errors surface as empty results after being
// reported to the failure hub the translator installs.
type RemoteBib struct {
	ByAuthorFn func(string) ([]bibstore.Record, error)
	GetFn      func(string) (bibstore.Record, error)
	KeysFn     func() ([]string, error)
	onErr      func(error)
}

// ByAuthor implements BibSource.
func (r *RemoteBib) ByAuthor(author string) []bibstore.Record {
	recs, err := r.ByAuthorFn(author)
	if err != nil && r.onErr != nil {
		r.onErr(err)
	}
	return recs
}

// Get implements BibSource.
func (r *RemoteBib) Get(key string) (bibstore.Record, error) { return r.GetFn(key) }

// Keys implements BibSource.
func (r *RemoteBib) Keys() []string {
	keys, err := r.KeysFn()
	if err != nil && r.onErr != nil {
		r.onErr(err)
	}
	return keys
}

// Bib is the CM-Translator for read-only bibliographic sources.  Items
// are record fields keyed by citation key: paper("w96") with field
// "title" reads record w96's title.  All mutation attempts return
// ErrReadOnly; there is no notification — over this source the CM can
// only monitor, which is the Section 6.3 scenario.
type Bib struct {
	failureHub
	cfg *rid.Config
	src BibSource
}

// NewBib builds a bibliographic translator.
func NewBib(cfg *rid.Config, src BibSource, clock vclock.Clock) (*Bib, error) {
	if cfg.Kind != rid.KindBib {
		return nil, fmt.Errorf("translator: config kind %q is not %s", cfg.Kind, rid.KindBib)
	}
	t := &Bib{failureHub: newFailureHub(cfg.Site, clock), cfg: cfg, src: src}
	if rb, ok := src.(*RemoteBib); ok {
		rb.onErr = func(err error) { t.report("read", err) }
	}
	return t, nil
}

// Site implements cmi.Interface.
func (t *Bib) Site() string { return t.cfg.Site }

// Statements implements cmi.Interface.
func (t *Bib) Statements() []rule.Rule { return t.cfg.Statements }

// Capabilities implements cmi.Interface.
func (t *Bib) Capabilities(base string) ris.Capability {
	return CapsFromStatements(t.cfg.Statements, base)
}

// Read implements cmi.Interface.
func (t *Bib) Read(item data.ItemName) (data.Value, bool, error) {
	t.countOp("read")
	b, ok := t.cfg.Binding(item.Base)
	if !ok {
		return data.NullValue, false, t.report("read", fmt.Errorf("translator: no binding for item %s", item.Base))
	}
	key, err := keyString(item)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	rec, err := t.src.Get(key)
	if err != nil {
		if errors.Is(err, ris.ErrNotFound) {
			return data.NullValue, false, nil
		}
		return data.NullValue, false, t.report("read", err)
	}
	switch b.Field {
	case "title":
		return data.NewString(rec.Title), true, nil
	case "author":
		return data.NewString(rec.Author), true, nil
	case "venue":
		return data.NewString(rec.Venue), true, nil
	case "year":
		return data.NewInt(int64(rec.Year)), true, nil
	case "key":
		return data.NewString(rec.Key), true, nil
	default:
		return data.NullValue, false, t.report("read", fmt.Errorf("translator: unknown bib field %q", b.Field))
	}
}

// Write implements cmi.Interface; bibliographies are read-only.
func (t *Bib) Write(item data.ItemName, v data.Value) error {
	t.countOp("write")
	return t.report("write", fmt.Errorf("translator: bibliography at %s: %w", t.cfg.Site, ris.ErrReadOnly))
}

// Subscribe implements cmi.Interface; bibliographies cannot notify.
func (t *Bib) Subscribe(base string, fn cmi.NotifyFunc) (func(), error) {
	t.countOp("notify")
	return nil, fmt.Errorf("translator: bibliography at %s cannot notify: %w", t.cfg.Site, ris.ErrUnsupported)
}

// List implements cmi.Interface: all citation keys.
func (t *Bib) List(base string) ([]data.ItemName, error) {
	t.countOp("list")
	if _, ok := t.cfg.Binding(base); !ok {
		return nil, t.report("read", fmt.Errorf("translator: no binding for item %s", base))
	}
	keys := t.src.Keys()
	out := make([]data.ItemName, 0, len(keys))
	for _, k := range keys {
		out = append(out, data.Item(base, data.NewString(k)))
	}
	return out, nil
}

// ListByAuthor narrows a family listing to one author's records — the
// query the Section 4.3 referential constraint needs ("every paper
// authored by a Stanford database researcher").
func (t *Bib) ListByAuthor(base, author string) ([]data.ItemName, error) {
	t.countOp("list")
	if _, ok := t.cfg.Binding(base); !ok {
		return nil, t.report("read", fmt.Errorf("translator: no binding for item %s", base))
	}
	recs := t.src.ByAuthor(author)
	out := make([]data.ItemName, 0, len(recs))
	for _, r := range recs {
		out = append(out, data.Item(base, data.NewString(r.Key)))
	}
	return out, nil
}

// Close implements cmi.Interface.
func (t *Bib) Close() error { return nil }

var _ cmi.Interface = (*Bib)(nil)
