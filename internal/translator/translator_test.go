package translator

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/filestore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/vclock"
)

// payrollRID is the Section 4.2 site-B configuration.
const payrollRID = `
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface WR(salary2(n), b) ->3s W(salary2(n), b)
interface Ws(salary2(n), b) ->2s N(salary2(n), b)
`

func newPayrollDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.New("payroll")
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO employees VALUES ('e1', 100)"); err != nil {
		t.Fatal(err)
	}
	return db
}

func newRelTranslator(t *testing.T) (*relstore.DB, *Rel) {
	t.Helper()
	cfg, err := rid.ParseString(payrollRID)
	if err != nil {
		t.Fatal(err)
	}
	db := newPayrollDB(t)
	tr, err := NewRel(cfg, db, vclock.NewVirtual(vclock.Epoch))
	if err != nil {
		t.Fatal(err)
	}
	return db, tr
}

func item(base, key string) data.ItemName { return data.Item(base, data.NewString(key)) }

func TestRelReadWrite(t *testing.T) {
	_, tr := newRelTranslator(t)
	v, ok, err := tr.Read(item("salary2", "e1"))
	if err != nil || !ok || !v.Equal(data.NewInt(100)) {
		t.Fatalf("Read = %s, %v, %v", v, ok, err)
	}
	if err := tr.Write(item("salary2", "e1"), data.NewInt(150)); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = tr.Read(item("salary2", "e1"))
	if !ok || !v.Equal(data.NewInt(150)) {
		t.Fatalf("after write: %s, %v", v, ok)
	}
	// Missing row reads as absent, not as an error.
	_, ok, err = tr.Read(item("salary2", "nobody"))
	if err != nil || ok {
		t.Fatalf("missing read = %v, %v", ok, err)
	}
}

func TestRelUpsertAndDelete(t *testing.T) {
	_, tr := newRelTranslator(t)
	// Write to a new key: update affects 0 rows, insert template kicks in.
	if err := tr.Write(item("salary2", "e9"), data.NewInt(900)); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Read(item("salary2", "e9"))
	if !ok || !v.Equal(data.NewInt(900)) {
		t.Fatalf("upsert read = %s, %v", v, ok)
	}
	// Writing null deletes the row.
	if err := tr.Write(item("salary2", "e9"), data.NullValue); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Read(item("salary2", "e9")); ok {
		t.Fatal("row survived delete")
	}
}

func TestRelNotifyViaTrigger(t *testing.T) {
	db, tr := newRelTranslator(t)
	type note struct {
		item     data.ItemName
		old, new data.Value
	}
	var notes []note
	cancel, err := tr.Subscribe("salary2", func(i data.ItemName, old, new data.Value) {
		notes = append(notes, note{i, old, new})
	})
	if err != nil {
		t.Fatal(err)
	}
	// A spontaneous update by a local application (raw SQL, not via CM).
	db.Exec("UPDATE employees SET salary = 175 WHERE empid = 'e1'")
	if len(notes) != 1 {
		t.Fatalf("notes = %v", notes)
	}
	if !notes[0].item.Equal(item("salary2", "e1")) || !notes[0].new.Equal(data.NewInt(175)) || !notes[0].old.Equal(data.NewInt(100)) {
		t.Fatalf("note = %+v", notes[0])
	}
	// Insert notifies with null old value.
	db.Exec("INSERT INTO employees VALUES ('e2', 200)")
	if len(notes) != 2 || !notes[1].old.IsNull() {
		t.Fatalf("insert note = %+v", notes)
	}
	// Delete notifies with null new value.
	db.Exec("DELETE FROM employees WHERE empid = 'e2'")
	if len(notes) != 3 || !notes[2].new.IsNull() {
		t.Fatalf("delete note = %+v", notes)
	}
	// Updates to unrelated columns do not notify... there are none in this
	// schema; instead check same-value update is suppressed.
	db.Exec("UPDATE employees SET salary = 175 WHERE empid = 'e1'")
	if len(notes) != 3 {
		t.Fatalf("no-op update notified: %v", notes)
	}
	cancel()
	db.Exec("UPDATE employees SET salary = 999 WHERE empid = 'e1'")
	if len(notes) != 3 {
		t.Fatal("notify after cancel")
	}
}

func TestRelKeyChangeSplitsIntoDeleteInsert(t *testing.T) {
	db, tr := newRelTranslator(t)
	var notes []string
	tr.Subscribe("salary2", func(i data.ItemName, old, new data.Value) {
		kind := "upd"
		if new.IsNull() {
			kind = "del"
		} else if old.IsNull() {
			kind = "ins"
		}
		notes = append(notes, kind+":"+i.String())
	})
	db.Exec("UPDATE employees SET empid = 'e1b' WHERE empid = 'e1'")
	if len(notes) != 2 || notes[0] != `del:salary2("e1")` || notes[1] != `ins:salary2("e1b")` {
		t.Fatalf("notes = %v", notes)
	}
}

func TestRelList(t *testing.T) {
	db, tr := newRelTranslator(t)
	db.Exec("INSERT INTO employees VALUES ('e2', 200)")
	items, err := tr.List("salary2")
	if err != nil || len(items) != 2 {
		t.Fatalf("List = %v, %v", items, err)
	}
}

func TestRelCapabilitiesFromStatements(t *testing.T) {
	_, tr := newRelTranslator(t)
	caps := tr.Capabilities("salary2")
	if !caps.Has(ris.CapWrite) || !caps.Has(ris.CapNotify) {
		t.Fatalf("caps = %v", caps)
	}
	if caps.Has(ris.CapRead) {
		t.Fatalf("caps = %v: no RR->R statement was declared", caps)
	}
	if got := tr.Capabilities("other"); got != 0 {
		t.Fatalf("caps for unknown base = %v", got)
	}
}

func TestRelFailureReporting(t *testing.T) {
	_, tr := newRelTranslator(t)
	var fails []cmi.Failure
	tr.OnFailure(func(f cmi.Failure) { fails = append(fails, f) })
	// Unknown item base surfaces as a logical failure.
	if _, _, err := tr.Read(item("ghost", "x")); err == nil {
		t.Fatal("read of unbound item succeeded")
	}
	if len(fails) != 1 || fails[0].Kind != cmi.FailLogical || fails[0].Site != "B" {
		t.Fatalf("fails = %v", fails)
	}
}

func TestRelOverWire(t *testing.T) {
	// The same translator logic rides a remote source: Figure 2 end to end.
	cfg, err := rid.ParseString(payrollRID)
	if err != nil {
		t.Fatal(err)
	}
	db := newPayrollDB(t)
	srv, err := server.ServeRel("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cfg.Addr = srv.Addr()
	iface, err := Open(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer iface.Close()
	v, ok, err := iface.Read(item("salary2", "e1"))
	if err != nil || !ok || !v.Equal(data.NewInt(100)) {
		t.Fatalf("remote Read = %s, %v, %v", v, ok, err)
	}
	if err := iface.Write(item("salary2", "e1"), data.NewInt(111)); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if !got.Rows[0][0].Equal(data.NewInt(111)) {
		t.Fatalf("server state = %v", got.Rows)
	}
}

const lookupRID = `
kind kvstore
site L
item phone1
  type string
  attr phone
interface Ws(phone1(n), b) ->2s N(phone1(n), b)
interface RR(phone1(n)) && phone1(n) = b ->1s R(phone1(n), b)
`

func TestKVTranslator(t *testing.T) {
	cfg, err := rid.ParseString(lookupRID)
	if err != nil {
		t.Fatal(err)
	}
	s := kvstore.New("lookup", false, true)
	tr, err := NewKV(cfg, LocalKV{s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Absent entity reads as absent.
	if _, ok, err := tr.Read(item("phone1", "ann")); ok || err != nil {
		t.Fatalf("absent read = %v, %v", ok, err)
	}
	var notes int
	cancel, err := tr.Subscribe("phone1", func(i data.ItemName, old, new data.Value) { notes++ })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := tr.Write(item("phone1", "ann"), data.NewString("555")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Read(item("phone1", "ann"))
	if err != nil || !ok || v.Str() != "555" {
		t.Fatalf("Read = %s, %v, %v", v, ok, err)
	}
	if notes != 1 {
		t.Fatalf("notes = %d", notes)
	}
	// Changes to other attributes are filtered out.
	s.Set("ann", "office", "444")
	if notes != 1 {
		t.Fatalf("unfiltered note: %d", notes)
	}
	// List finds entities carrying the attribute.
	s.Set("bob", "office", "445") // no phone
	items, err := tr.List("phone1")
	if err != nil || len(items) != 1 || !items[0].Equal(item("phone1", "ann")) {
		t.Fatalf("List = %v, %v", items, err)
	}
	// Null write deletes.
	if err := tr.Write(item("phone1", "ann"), data.NullValue); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Read(item("phone1", "ann")); ok {
		t.Fatal("attr survived delete")
	}
	if caps := tr.Capabilities("phone1"); !caps.Has(ris.CapNotify) || !caps.Has(ris.CapRead) {
		t.Fatalf("caps = %v", caps)
	}
}

func TestKVTypedValues(t *testing.T) {
	cfg, err := rid.ParseString(`
kind kvstore
site L
item age1
  type int
  attr age
`)
	if err != nil {
		t.Fatal(err)
	}
	s := kvstore.New("lookup", false, false)
	tr, err := NewKV(cfg, LocalKV{s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(item("age1", "ann"), data.NewInt(30)); err != nil {
		t.Fatal(err)
	}
	// The native store holds the raw string.
	raw, _ := s.Get("ann", "age")
	if raw != "30" {
		t.Fatalf("raw = %q", raw)
	}
	v, ok, err := tr.Read(item("age1", "ann"))
	if err != nil || !ok || !v.Equal(data.NewInt(30)) {
		t.Fatalf("Read = %s, %v, %v", v, ok, err)
	}
	// Corrupt native data surfaces as a (logical) failure.
	var fails int
	tr.OnFailure(func(cmi.Failure) { fails++ })
	s.SeedSet("ann", "age", "not-a-number")
	if _, _, err := tr.Read(item("age1", "ann")); err == nil {
		t.Fatal("corrupt read succeeded")
	}
	if fails != 1 {
		t.Fatalf("fails = %d", fails)
	}
}

const fileRID = `
kind filestore
site F
item fphone
  type string
  file phones
interface RR(fphone(n)) && fphone(n) = b ->1s R(fphone(n), b)
interface WR(fphone(n), b) ->1s W(fphone(n), b)
`

func TestFileTranslator(t *testing.T) {
	cfg, err := rid.ParseString(fileRID)
	if err != nil {
		t.Fatal(err)
	}
	s, err := filestore.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewFile(cfg, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(item("fphone", "ann"), data.NewString("555")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Read(item("fphone", "ann"))
	if err != nil || !ok || v.Str() != "555" {
		t.Fatalf("Read = %s, %v, %v", v, ok, err)
	}
	// No native notify: ErrUnsupported pushes strategies toward polling.
	if _, err := tr.Subscribe("fphone", func(data.ItemName, data.Value, data.Value) {}); !errors.Is(err, ris.ErrUnsupported) {
		t.Fatalf("Subscribe err = %v", err)
	}
	items, err := tr.List("fphone")
	if err != nil || len(items) != 1 {
		t.Fatalf("List = %v, %v", items, err)
	}
	if err := tr.Write(item("fphone", "ann"), data.NullValue); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Read(item("fphone", "ann")); ok {
		t.Fatal("record survived delete")
	}
}

const bibRID = `
kind bibstore
site Bib
item paper
  type string
  field title
`

func TestBibTranslator(t *testing.T) {
	cfg, err := rid.ParseString(bibRID)
	if err != nil {
		t.Fatal(err)
	}
	s := bibstore.New("bib")
	s.Load(
		bibstore.Record{Key: "w96", Author: "Widom", Title: "Toolkit", Year: 1996, Venue: "ICDE"},
		bibstore.Record{Key: "g92", Author: "Garcia-Molina", Title: "Demarcation", Year: 1992, Venue: "EDBT"},
	)
	tr, err := NewBib(cfg, LocalBib{s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Read(item("paper", "w96"))
	if err != nil || !ok || v.Str() != "Toolkit" {
		t.Fatalf("Read = %s, %v, %v", v, ok, err)
	}
	if _, ok, err := tr.Read(item("paper", "none")); ok || err != nil {
		t.Fatalf("missing read = %v, %v", ok, err)
	}
	if err := tr.Write(item("paper", "w96"), data.NewString("x")); !errors.Is(err, ris.ErrReadOnly) {
		t.Fatalf("Write err = %v", err)
	}
	if _, err := tr.Subscribe("paper", nil); !errors.Is(err, ris.ErrUnsupported) {
		t.Fatalf("Subscribe err = %v", err)
	}
	items, err := tr.List("paper")
	if err != nil || len(items) != 2 {
		t.Fatalf("List = %v, %v", items, err)
	}
	byW, err := tr.ListByAuthor("paper", "widom")
	if err != nil || len(byW) != 1 || !byW[0].Equal(item("paper", "w96")) {
		t.Fatalf("ListByAuthor = %v, %v", byW, err)
	}
}

func TestOpenFactoryLocalAndErrors(t *testing.T) {
	cfg, _ := rid.ParseString(payrollRID)
	if _, err := Open(cfg, nil, nil); err == nil {
		t.Fatal("Open without local store succeeded")
	}
	db := newPayrollDB(t)
	iface, err := Open(cfg, &LocalStores{Rel: db}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iface.Site() != "B" {
		t.Fatalf("site = %s", iface.Site())
	}
	if len(iface.Statements()) != 2 {
		t.Fatalf("statements = %d", len(iface.Statements()))
	}
	// Kind mismatch errors.
	kvCfg, _ := rid.ParseString(lookupRID)
	if _, err := NewRel(kvCfg, db, nil); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestSubstSQL(t *testing.T) {
	it := data.Item("salary2", data.NewString("e'1"))
	q, err := substSQL("UPDATE t SET s = $b WHERE id = $n", it, data.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	want := "UPDATE t SET s = 5 WHERE id = 'e''1'"
	if q != want {
		t.Fatalf("q = %q, want %q", q, want)
	}
	// $n with no key argument errors.
	if _, err := substSQL("WHERE id = $n", data.Item("x"), data.NullValue); err == nil {
		t.Fatal("no-arg $n succeeded")
	}
}

func TestConvertRender(t *testing.T) {
	cases := []struct {
		raw, typ string
		want     data.Value
	}{
		{"42", "int", data.NewInt(42)},
		{"2.5", "float", data.NewFloat(2.5)},
		{"true", "bool", data.NewBool(true)},
		{"hello", "string", data.NewString("hello")},
	}
	for _, c := range cases {
		v, err := convert(c.raw, c.typ)
		if err != nil || !v.Equal(c.want) {
			t.Errorf("convert(%q, %s) = %s, %v", c.raw, c.typ, v, err)
		}
		if got := render(v); got != c.raw {
			t.Errorf("render(%s) = %q, want %q", v, got, c.raw)
		}
	}
	for _, bad := range []struct{ raw, typ string }{{"x", "int"}, {"x", "float"}, {"x", "bool"}} {
		if _, err := convert(bad.raw, bad.typ); err == nil {
			t.Errorf("convert(%q, %s) succeeded", bad.raw, bad.typ)
		}
	}
}

func TestConditionalNotifyInterface(t *testing.T) {
	// Section 3.1.1: Ws(X, a, b) ∧ (|b − a| > 0.1·a) →δ N(X, b): the
	// translator forwards only changes above 10%.
	cfg, err := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
  notifycond abs(b - a) > 0.1 * a
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`)
	if err != nil {
		t.Fatal(err)
	}
	db := newPayrollDB(t)
	tr, err := NewRel(cfg, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	var notes []data.Value
	if _, err := tr.Subscribe("salary1", func(i data.ItemName, old, new data.Value) {
		notes = append(notes, new)
	}); err != nil {
		t.Fatal(err)
	}
	// 100 -> 105: a 5% change, filtered out.
	db.Exec("UPDATE employees SET salary = 105 WHERE empid = 'e1'")
	if len(notes) != 0 {
		t.Fatalf("5%% change notified: %v", notes)
	}
	// 105 -> 140: a 33% change, forwarded.
	db.Exec("UPDATE employees SET salary = 140 WHERE empid = 'e1'")
	if len(notes) != 1 || !notes[0].Equal(data.NewInt(140)) {
		t.Fatalf("33%% change notes = %v", notes)
	}
	// Creations and deletions always notify.
	db.Exec("INSERT INTO employees VALUES ('e2', 1)")
	db.Exec("DELETE FROM employees WHERE empid = 'e2'")
	if len(notes) != 3 {
		t.Fatalf("create/delete notes = %v", notes)
	}
}

func TestConditionalNotifyKV(t *testing.T) {
	cfg, err := rid.ParseString(`
kind kvstore
site L
item age1
  type int
  attr age
  notifycond b != a
`)
	if err != nil {
		t.Fatal(err)
	}
	s := kvstore.New("lookup", false, true)
	tr, err := NewKV(cfg, LocalKV{s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var notes int
	tr.Subscribe("age1", func(data.ItemName, data.Value, data.Value) { notes++ })
	s.Set("ann", "age", "30") // creation: notifies
	s.Set("ann", "age", "30") // same value: filtered
	s.Set("ann", "age", "31") // change: notifies
	if notes != 2 {
		t.Fatalf("notes = %d, want 2", notes)
	}
}

func TestNotifyCondRIDRoundTrip(t *testing.T) {
	cfg, err := rid.ParseString(`
kind kvstore
site L
item x
  attr v
  notifycond abs(b - a) > 5
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := rid.ParseString(cfg.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, cfg.String())
	}
	if cfg2.Items["x"].NotifyCond == nil {
		t.Fatal("notifycond lost in round trip")
	}
	// Bad expressions are rejected at parse time.
	if _, err := rid.ParseString("kind kvstore\nsite L\nitem x\n  attr v\n  notifycond ((("); err == nil {
		t.Fatal("bad notifycond accepted")
	}
}

func TestFaultyWrapper(t *testing.T) {
	_, inner := newRelTranslator(t)
	f := NewFaulty(inner, vclock.NewVirtual(vclock.Epoch))
	var fails []cmi.Failure
	f.OnFailure(func(x cmi.Failure) { fails = append(fails, x) })

	// Healthy: passthrough, no failures.
	if v, ok, err := f.Read(item("salary2", "e1")); err != nil || !ok || !v.Equal(data.NewInt(100)) {
		t.Fatalf("healthy read = %s, %v, %v", v, ok, err)
	}
	if len(fails) != 0 {
		t.Fatalf("healthy fails = %v", fails)
	}
	if f.Site() != "B" || len(f.Statements()) == 0 {
		t.Fatal("delegation broken")
	}

	// Slow: the operation still succeeds but a metric failure is raised.
	f.SetMode(Slow)
	if err := f.Write(item("salary2", "e1"), data.NewInt(120)); err != nil {
		t.Fatalf("slow write failed outright: %v", err)
	}
	if v, _, _ := f.Read(item("salary2", "e1")); !v.Equal(data.NewInt(120)) {
		t.Fatal("slow write lost")
	}
	if len(fails) == 0 || fails[0].Kind != cmi.FailMetric {
		t.Fatalf("slow fails = %v", fails)
	}

	// Down: operations fail with logical failures.
	f.SetMode(Down)
	n := len(fails)
	if _, _, err := f.Read(item("salary2", "e1")); err == nil {
		t.Fatal("down read succeeded")
	}
	if err := f.Write(item("salary2", "e1"), data.NewInt(1)); err == nil {
		t.Fatal("down write succeeded")
	}
	if _, err := f.List("salary2"); err == nil {
		t.Fatal("down list succeeded")
	}
	for _, x := range fails[n:] {
		if x.Kind != cmi.FailLogical {
			t.Fatalf("down failure kind = %v", x.Kind)
		}
	}
	if f.Mode() != Down || f.Mode().String() != "down" {
		t.Fatal("mode accessors broken")
	}
}

func TestFaultySubscribeModes(t *testing.T) {
	db, inner := newRelTranslator(t)
	f := NewFaulty(inner, vclock.NewVirtual(vclock.Epoch))
	var notes int
	var fails int
	f.OnFailure(func(cmi.Failure) { fails++ })
	cancel, err := f.Subscribe("salary2", func(data.ItemName, data.Value, data.Value) { notes++ })
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	db.Exec("UPDATE employees SET salary = 101 WHERE empid = 'e1'")
	if notes != 1 {
		t.Fatalf("healthy notes = %d", notes)
	}
	// Slow: notification still arrives, metric failure raised.
	f.SetMode(Slow)
	db.Exec("UPDATE employees SET salary = 102 WHERE empid = 'e1'")
	if notes != 2 || fails == 0 {
		t.Fatalf("slow notes = %d fails = %d", notes, fails)
	}
	// Down: notifications silently lost (the paper's undetectable case).
	f.SetMode(Down)
	db.Exec("UPDATE employees SET salary = 103 WHERE empid = 'e1'")
	if notes != 2 {
		t.Fatalf("down notes = %d", notes)
	}
}

func TestOpenFactoryRemoteAllKinds(t *testing.T) {
	// Every source kind opens over the network through its dialect client.
	clk := vclock.NewVirtual(vclock.Epoch)

	// kvstore.
	kv := kvstore.New("lookup", false, true)
	kv.SeedSet("ann", "phone", "555")
	kvSrv, err := server.ServeKV("127.0.0.1:0", kv)
	if err != nil {
		t.Fatal(err)
	}
	defer kvSrv.Close()
	kvCfg, _ := rid.ParseString(lookupRID)
	kvCfg.Addr = kvSrv.Addr()
	kvIface, err := Open(kvCfg, nil, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer kvIface.Close()
	if v, ok, err := kvIface.Read(item("phone1", "ann")); err != nil || !ok || v.Str() != "555" {
		t.Fatalf("remote kv read = %s, %v, %v", v, ok, err)
	}
	var notes atomic.Int64
	if _, err := kvIface.Subscribe("phone1", func(data.ItemName, data.Value, data.Value) { notes.Add(1) }); err != nil {
		t.Fatal(err)
	}
	kv.Set("bob", "phone", "556")
	deadline := timeNowPlus(5)
	for notes.Load() == 0 && timeBefore(deadline) {
		sleepMS(5)
	}
	if notes.Load() == 0 {
		t.Fatal("remote kv notification never arrived")
	}

	// filestore.
	fs, err := filestore.Open(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	fs.Write("phones", "ann", "555")
	fsSrv, err := server.ServeFile("127.0.0.1:0", fs)
	if err != nil {
		t.Fatal(err)
	}
	defer fsSrv.Close()
	fsCfg, _ := rid.ParseString(fileRID)
	fsCfg.Addr = fsSrv.Addr()
	fsIface, err := Open(fsCfg, nil, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer fsIface.Close()
	if v, ok, err := fsIface.Read(item("fphone", "ann")); err != nil || !ok || v.Str() != "555" {
		t.Fatalf("remote file read = %s, %v, %v", v, ok, err)
	}
	if items, err := fsIface.List("fphone"); err != nil || len(items) != 1 {
		t.Fatalf("remote file list = %v, %v", items, err)
	}

	// bibstore.
	bs := bibstore.New("bib")
	bs.Load(bibstore.Record{Key: "w96", Author: "Widom", Title: "Toolkit", Year: 1996, Venue: "ICDE"})
	bsSrv, err := server.ServeBib("127.0.0.1:0", bs)
	if err != nil {
		t.Fatal(err)
	}
	defer bsSrv.Close()
	bsCfg, _ := rid.ParseString(bibRID)
	bsCfg.Addr = bsSrv.Addr()
	bsIface, err := Open(bsCfg, nil, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer bsIface.Close()
	if v, ok, err := bsIface.Read(item("paper", "w96")); err != nil || !ok || v.Str() != "Toolkit" {
		t.Fatalf("remote bib read = %s, %v, %v", v, ok, err)
	}
	if items, err := bsIface.List("paper"); err != nil || len(items) != 1 {
		t.Fatalf("remote bib list = %v, %v", items, err)
	}
	bib, ok := bsIface.(*Bib)
	if !ok {
		t.Fatal("remote bib iface not *Bib")
	}
	if recs, err := bib.ListByAuthor("paper", "widom"); err != nil || len(recs) != 1 {
		t.Fatalf("remote ListByAuthor = %v, %v", recs, err)
	}
}

func TestOpenFactoryErrors(t *testing.T) {
	// Missing local stores per kind.
	for _, src := range []string{lookupRID, fileRID, bibRID} {
		cfg, err := rid.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Open(cfg, nil, nil); err == nil {
			t.Errorf("Open(%s) without local store succeeded", cfg.Kind)
		}
		if _, err := Open(cfg, &LocalStores{}, nil); err == nil {
			t.Errorf("Open(%s) with empty local stores succeeded", cfg.Kind)
		}
	}
	// Unknown kind.
	bad := &rid.Config{Kind: "nosuch", Site: "S", Items: map[string]*rid.ItemBinding{}}
	if _, err := Open(bad, nil, nil); err == nil {
		t.Error("unknown kind accepted")
	}
	// Dead addresses fail to dial.
	cfg, _ := rid.ParseString(lookupRID)
	cfg.Addr = "127.0.0.1:1"
	if _, err := Open(cfg, nil, nil); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

func TestKeyStringErrors(t *testing.T) {
	if _, err := keyString(data.Item("x")); err == nil {
		t.Error("keyless item accepted")
	}
	if _, err := keyString(data.Item("x", data.NewInt(1), data.NewInt(2))); err == nil {
		t.Error("two-key item accepted")
	}
	if k, err := keyString(data.Item("x", data.NewString("k"))); err != nil || k != "k" {
		t.Errorf("keyString = %q, %v", k, err)
	}
}

func timeNowPlus(sec int) time.Time { return time.Now().Add(time.Duration(sec) * time.Second) }
func timeBefore(t time.Time) bool   { return time.Now().Before(t) }
func sleepMS(ms int)                { time.Sleep(time.Duration(ms) * time.Millisecond) }

func TestFaultyCrashRecoveryReplaysNotifications(t *testing.T) {
	db, inner := newRelTranslator(t)
	f := NewFaulty(inner, vclock.NewVirtual(vclock.Epoch))
	var notes []data.Value
	var kinds []cmi.FailureKind
	f.OnFailure(func(x cmi.Failure) { kinds = append(kinds, x.Kind) })
	if _, err := f.Subscribe("salary2", func(i data.ItemName, old, new data.Value) {
		notes = append(notes, new)
	}); err != nil {
		t.Fatal(err)
	}
	// Crash, then two spontaneous updates during the outage.
	f.SetMode(Crashed)
	db.Exec("UPDATE employees SET salary = 110 WHERE empid = 'e1'")
	db.Exec("UPDATE employees SET salary = 120 WHERE empid = 'e1'")
	if len(notes) != 0 {
		t.Fatalf("notes during crash = %v", notes)
	}
	// Every buffered notification surfaced a metric (not logical) failure.
	for _, k := range kinds {
		if k != cmi.FailMetric {
			t.Fatalf("crash failure kind = %v", k)
		}
	}
	if len(kinds) != 2 {
		t.Fatalf("failures = %d", len(kinds))
	}
	// Recovery replays in order.
	f.SetMode(Healthy)
	if len(notes) != 2 || !notes[0].Equal(data.NewInt(110)) || !notes[1].Equal(data.NewInt(120)) {
		t.Fatalf("replayed notes = %v", notes)
	}
	// Crashed operations fail transiently.
	f.SetMode(Crashed)
	if _, _, err := f.Read(item("salary2", "e1")); err == nil {
		t.Fatal("crashed read succeeded")
	} else if !ris.IsTransient(err) {
		t.Fatalf("crashed read err = %v", err)
	}
	if f.Mode().String() != "crashed" {
		t.Fatal("mode string")
	}
}
