package translator

import (
	"fmt"

	"cmtk/internal/cmi"
	"cmtk/internal/rid"
	"cmtk/internal/ris/bibstore"
	"cmtk/internal/ris/filestore"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/ris/server"
	"cmtk/internal/vclock"
)

// LocalStores supplies in-process sources for CM-RIDs whose addr is
// "local" (tests, examples, the benchmark harness).
type LocalStores struct {
	Rel  *relstore.DB
	KV   *kvstore.Store
	File *filestore.Store
	Bib  *bibstore.Store
}

// Open builds the right CM-Translator for a CM-RID: for network configs
// it dials the address with the matching dialect client; for local
// configs it adapts the supplied in-process store.  This is the
// "configure a standard CM-Translator to the particular underlying data
// source" step of Section 4.1.
func Open(cfg *rid.Config, local *LocalStores, clock vclock.Clock) (cmi.Interface, error) {
	switch cfg.Kind {
	case rid.KindRel:
		var src RelSource
		if cfg.Local() {
			if local == nil || local.Rel == nil {
				return nil, fmt.Errorf("translator: local relstore for site %s not supplied", cfg.Site)
			}
			src = local.Rel
		} else {
			c, err := server.DialRel(cfg.Addr)
			if err != nil {
				return nil, err
			}
			src = c
		}
		return NewRel(cfg, src, clock)
	case rid.KindKV:
		var src KVSource
		if cfg.Local() {
			if local == nil || local.KV == nil {
				return nil, fmt.Errorf("translator: local kvstore for site %s not supplied", cfg.Site)
			}
			src = LocalKV{local.KV}
		} else {
			c, err := server.DialKV(cfg.Addr)
			if err != nil {
				return nil, err
			}
			src = c
		}
		return NewKV(cfg, src, clock)
	case rid.KindFile:
		var src FileSource
		if cfg.Local() {
			if local == nil || local.File == nil {
				return nil, fmt.Errorf("translator: local filestore for site %s not supplied", cfg.Site)
			}
			src = local.File
		} else {
			c, err := server.DialFile(cfg.Addr)
			if err != nil {
				return nil, err
			}
			src = c
		}
		return NewFile(cfg, src, clock)
	case rid.KindBib:
		var src BibSource
		if cfg.Local() {
			if local == nil || local.Bib == nil {
				return nil, fmt.Errorf("translator: local bibstore for site %s not supplied", cfg.Site)
			}
			src = LocalBib{local.Bib}
		} else {
			c, err := server.DialBib(cfg.Addr)
			if err != nil {
				return nil, err
			}
			src = &RemoteBib{ByAuthorFn: c.ByAuthor, GetFn: c.Get, KeysFn: c.Keys}
		}
		return NewBib(cfg, src, clock)
	default:
		return nil, fmt.Errorf("translator: unknown source kind %q", cfg.Kind)
	}
}
