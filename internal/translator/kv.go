package translator

import (
	"errors"
	"fmt"
	"sync"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/ris/kvstore"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// KVSource is the native directory interface the translator consumes.
// *server.KVClient satisfies it directly; wrap a local *kvstore.Store with
// LocalKV.
type KVSource interface {
	Get(entity, attr string) (string, error)
	Set(entity, attr, value string) error
	Del(entity, attr string) error
	Entities() ([]string, error)
	Watch(fn func(kvstore.Change)) (func(), error)
}

// LocalKV adapts an in-process store to KVSource.
type LocalKV struct{ S *kvstore.Store }

// Get implements KVSource.
func (l LocalKV) Get(entity, attr string) (string, error) { return l.S.Get(entity, attr) }

// Set implements KVSource.
func (l LocalKV) Set(entity, attr, value string) error { return l.S.Set(entity, attr, value) }

// Del implements KVSource.
func (l LocalKV) Del(entity, attr string) error { return l.S.Del(entity, attr) }

// Entities implements KVSource.
func (l LocalKV) Entities() ([]string, error) { return l.S.Entities(), nil }

// Watch implements KVSource.
func (l LocalKV) Watch(fn func(kvstore.Change)) (func(), error) { return l.S.Watch(fn) }

// KV is the CM-Translator for directory (whois/lookup) sources.
type KV struct {
	failureHub
	cfg     *rid.Config
	src     KVSource
	mu      sync.Mutex
	cancels []func()
}

// NewKV builds a directory translator.
func NewKV(cfg *rid.Config, src KVSource, clock vclock.Clock) (*KV, error) {
	if cfg.Kind != rid.KindKV {
		return nil, fmt.Errorf("translator: config kind %q is not %s", cfg.Kind, rid.KindKV)
	}
	return &KV{failureHub: newFailureHub(cfg.Site, clock), cfg: cfg, src: src}, nil
}

// Site implements cmi.Interface.
func (t *KV) Site() string { return t.cfg.Site }

// Statements implements cmi.Interface.
func (t *KV) Statements() []rule.Rule { return t.cfg.Statements }

// Capabilities implements cmi.Interface.
func (t *KV) Capabilities(base string) ris.Capability {
	return CapsFromStatements(t.cfg.Statements, base)
}

func (t *KV) binding(base string) (*rid.ItemBinding, error) {
	b, ok := t.cfg.Binding(base)
	if !ok {
		return nil, fmt.Errorf("translator: no binding for item %s at site %s", base, t.cfg.Site)
	}
	return b, nil
}

// Read implements cmi.Interface: the item's first argument is the entity,
// the binding names the attribute.
func (t *KV) Read(item data.ItemName) (data.Value, bool, error) {
	t.countOp("read")
	b, err := t.binding(item.Base)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	entity, err := keyString(item)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	raw, err := t.src.Get(entity, b.Attr)
	if err != nil {
		if errors.Is(err, ris.ErrNotFound) {
			return data.NullValue, false, nil
		}
		return data.NullValue, false, t.report("read", err)
	}
	v, err := convert(raw, b.Type)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	return v, true, nil
}

// Write implements cmi.Interface.
func (t *KV) Write(item data.ItemName, v data.Value) error {
	t.countOp("write")
	b, err := t.binding(item.Base)
	if err != nil {
		return t.report("write", err)
	}
	entity, err := keyString(item)
	if err != nil {
		return t.report("write", err)
	}
	if v.IsNull() {
		err := t.src.Del(entity, b.Attr)
		if errors.Is(err, ris.ErrNotFound) {
			return nil
		}
		return t.report("write", err)
	}
	return t.report("write", t.src.Set(entity, b.Attr, render(v)))
}

// Subscribe implements cmi.Interface using the store's native change
// stream, filtered to the bound attribute.
func (t *KV) Subscribe(base string, fn cmi.NotifyFunc) (func(), error) {
	t.countOp("notify")
	b, err := t.binding(base)
	if err != nil {
		return nil, t.report("notify", err)
	}
	cancel, err := t.src.Watch(func(c kvstore.Change) {
		if c.Attr != b.Attr {
			return
		}
		item := data.Item(base, data.NewString(c.Entity))
		var oldV, newV data.Value
		if c.OldOK {
			if v, err := convert(c.Old, b.Type); err == nil {
				oldV = v
			}
		}
		if c.NewOK {
			v, err := convert(c.New, b.Type)
			if err != nil {
				t.report("notify", err)
				return
			}
			newV = v
		}
		if !notifyCondPasses(b.NotifyCond, oldV, newV) {
			return
		}
		fn(item, oldV, newV)
	})
	if err != nil {
		return nil, t.report("notify", err)
	}
	t.mu.Lock()
	t.cancels = append(t.cancels, cancel)
	t.mu.Unlock()
	return cancel, nil
}

// List implements cmi.Interface: entities that carry the bound attribute.
func (t *KV) List(base string) ([]data.ItemName, error) {
	t.countOp("list")
	b, err := t.binding(base)
	if err != nil {
		return nil, t.report("read", err)
	}
	ents, err := t.src.Entities()
	if err != nil {
		return nil, t.report("read", err)
	}
	var out []data.ItemName
	for _, e := range ents {
		if _, err := t.src.Get(e, b.Attr); err == nil {
			out = append(out, data.Item(base, data.NewString(e)))
		}
	}
	return out, nil
}

// Close implements cmi.Interface.
func (t *KV) Close() error {
	t.mu.Lock()
	cancels := t.cancels
	t.cancels = nil
	t.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

var _ cmi.Interface = (*KV)(nil)
