package translator

import (
	"fmt"
	"strings"
	"sync"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// RelSource is the native relational interface the translator consumes:
// SQL text in, results out, plus trigger registration.  Both a local
// *relstore.DB and a remote *server.RelClient satisfy it.
type RelSource interface {
	Exec(sql string) (*relstore.Result, error)
	RegisterTrigger(table string, fn relstore.Trigger) (func(), error)
}

// Rel is the CM-Translator for relational sources.
type Rel struct {
	failureHub
	cfg     *rid.Config
	db      RelSource
	mu      sync.Mutex
	cancels []func()
}

// NewRel builds a relational translator from a CM-RID and a source.
// clock may be nil for real time.
func NewRel(cfg *rid.Config, db RelSource, clock vclock.Clock) (*Rel, error) {
	if cfg.Kind != rid.KindRel {
		return nil, fmt.Errorf("translator: config kind %q is not %s", cfg.Kind, rid.KindRel)
	}
	return &Rel{failureHub: newFailureHub(cfg.Site, clock), cfg: cfg, db: db}, nil
}

// Site implements cmi.Interface.
func (t *Rel) Site() string { return t.cfg.Site }

// Statements implements cmi.Interface.
func (t *Rel) Statements() []rule.Rule { return t.cfg.Statements }

// Capabilities implements cmi.Interface.
func (t *Rel) Capabilities(base string) ris.Capability {
	return CapsFromStatements(t.cfg.Statements, base)
}

// substSQL expands $n and $b in a SQL command template (Section 4.2.1:
// "Our CM-Translator performs the necessary substitution given a
// particular instance of n").
func substSQL(tpl string, item data.ItemName, v data.Value) (string, error) {
	out := tpl
	if strings.Contains(out, "$n") {
		if len(item.Args) != 1 {
			return "", fmt.Errorf("translator: template %q wants $n but item %s has %d arguments", tpl, item, len(item.Args))
		}
		out = strings.ReplaceAll(out, "$n", relstore.QuoteSQL(item.Args[0]))
	}
	if strings.Contains(out, "$b") {
		out = strings.ReplaceAll(out, "$b", relstore.QuoteSQL(v))
	}
	return out, nil
}

func (t *Rel) binding(item data.ItemName) (*rid.ItemBinding, error) {
	b, ok := t.cfg.Binding(item.Base)
	if !ok {
		return nil, fmt.Errorf("translator: no binding for item %s at site %s", item.Base, t.cfg.Site)
	}
	return b, nil
}

// Read implements cmi.Interface.
func (t *Rel) Read(item data.ItemName) (data.Value, bool, error) {
	t.countOp("read")
	b, err := t.binding(item)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	q, err := substSQL(b.ReadSQL, item, data.NullValue)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	res, err := t.db.Exec(q)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	if len(res.Rows) == 0 {
		return data.NullValue, false, nil
	}
	if len(res.Rows[0]) == 0 {
		return data.NullValue, false, t.report("read", fmt.Errorf("translator: read template %q returned no columns", b.ReadSQL))
	}
	v := res.Rows[0][0]
	if v.IsNull() {
		return data.NullValue, false, nil
	}
	return v, true, nil
}

// Write implements cmi.Interface.  Writing null deletes; an update that
// affects no rows falls back to the insert template when one is bound
// (upsert semantics, so parameterized copy constraints can create rows at
// the replica).
func (t *Rel) Write(item data.ItemName, v data.Value) error {
	t.countOp("write")
	b, err := t.binding(item)
	if err != nil {
		return t.report("write", err)
	}
	if v.IsNull() {
		if b.DeleteSQL == "" {
			return t.report("write", fmt.Errorf("translator: item %s has no delete template: %w", item.Base, ris.ErrUnsupported))
		}
		q, err := substSQL(b.DeleteSQL, item, v)
		if err != nil {
			return t.report("write", err)
		}
		if _, err := t.db.Exec(q); err != nil {
			return t.report("write", err)
		}
		return nil
	}
	if b.WriteSQL == "" {
		return t.report("write", fmt.Errorf("translator: item %s has no write template: %w", item.Base, ris.ErrReadOnly))
	}
	q, err := substSQL(b.WriteSQL, item, v)
	if err != nil {
		return t.report("write", err)
	}
	res, err := t.db.Exec(q)
	if err != nil {
		return t.report("write", err)
	}
	if res.Affected == 0 && b.InsertSQL != "" {
		q, err := substSQL(b.InsertSQL, item, v)
		if err != nil {
			return t.report("write", err)
		}
		if _, err := t.db.Exec(q); err != nil {
			return t.report("write", err)
		}
	}
	return nil
}

// Subscribe implements cmi.Interface by declaring a trigger on the bound
// table and mapping trigger rows back to items via the key and value
// columns.
func (t *Rel) Subscribe(base string, fn cmi.NotifyFunc) (func(), error) {
	t.countOp("notify")
	b, ok := t.cfg.Binding(base)
	if !ok {
		return nil, t.report("notify", fmt.Errorf("translator: no binding for item %s", base))
	}
	if b.WatchTable == "" || b.KeyCol == "" || b.ValCol == "" {
		return nil, fmt.Errorf("translator: item %s has no watch binding: %w", base, ris.ErrUnsupported)
	}
	// Learn the table's column order once; SELECT * reports columns even
	// on an empty table.
	res, err := t.db.Exec("SELECT * FROM " + b.WatchTable)
	if err != nil {
		return nil, t.report("notify", err)
	}
	keyIdx, valIdx := -1, -1
	for i, c := range res.Columns {
		if strings.EqualFold(c, b.KeyCol) {
			keyIdx = i
		}
		if strings.EqualFold(c, b.ValCol) {
			valIdx = i
		}
	}
	if keyIdx < 0 || valIdx < 0 {
		return nil, t.report("notify", fmt.Errorf("translator: table %s lacks columns %s/%s", b.WatchTable, b.KeyCol, b.ValCol))
	}
	cancel, err := t.db.RegisterTrigger(b.WatchTable, func(op relstore.TriggerOp, _ string, oldRow, newRow relstore.Row) {
		var oldV, newV data.Value
		var key data.Value
		if oldRow != nil {
			key = oldRow[keyIdx]
			oldV = oldRow[valIdx]
		}
		if newRow != nil {
			key = newRow[keyIdx]
			newV = newRow[valIdx]
		}
		if op == relstore.TrigUpdate && oldRow != nil && newRow != nil {
			// Key change shows up as delete+insert on the item level.
			if !oldRow[keyIdx].Equal(newRow[keyIdx]) {
				fn(data.Item(base, oldRow[keyIdx]), oldV, data.NullValue)
				fn(data.Item(base, newRow[keyIdx]), data.NullValue, newV)
				return
			}
			if oldV.Equal(newV) {
				return // update to an unrelated column
			}
		}
		if key.IsNull() {
			return
		}
		if !notifyCondPasses(b.NotifyCond, oldV, newV) {
			return
		}
		fn(data.Item(base, key), oldV, newV)
	})
	if err != nil {
		return nil, t.report("notify", err)
	}
	t.mu.Lock()
	t.cancels = append(t.cancels, cancel)
	t.mu.Unlock()
	return cancel, nil
}

// List implements cmi.Interface using the list template.
func (t *Rel) List(base string) ([]data.ItemName, error) {
	t.countOp("list")
	b, ok := t.cfg.Binding(base)
	if !ok {
		return nil, t.report("read", fmt.Errorf("translator: no binding for item %s", base))
	}
	if b.ListSQL == "" {
		return nil, fmt.Errorf("translator: item %s has no list template: %w", base, ris.ErrUnsupported)
	}
	res, err := t.db.Exec(b.ListSQL)
	if err != nil {
		return nil, t.report("read", err)
	}
	out := make([]data.ItemName, 0, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) == 0 || row[0].IsNull() {
			continue
		}
		out = append(out, data.Item(base, row[0]))
	}
	return out, nil
}

// Close implements cmi.Interface.
func (t *Rel) Close() error {
	t.mu.Lock()
	cancels := t.cancels
	t.cancels = nil
	t.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return nil
}

var _ cmi.Interface = (*Rel)(nil)
