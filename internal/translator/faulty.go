package translator

import (
	"fmt"
	"sync"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// FaultMode selects the injected failure behaviour of a Faulty wrapper.
type FaultMode int

// Fault modes.
const (
	// Healthy passes operations through untouched.
	Healthy FaultMode = iota
	// Slow models the paper's metric failure (Section 5): the database is
	// overloaded — operations still succeed, but each one raises a metric
	// failure because the interface time bound cannot be honored.
	Slow
	// Down models a logical failure: operations fail outright and raise a
	// logical failure; the interface statements no longer hold at all.
	Down
	// Crashed models the paper's recoverable crash (Section 5: "crashes
	// can be mapped to metric failures if the database has some basic
	// recovery facilities and can remember messages that need to be sent
	// out upon recovery"): operations fail transiently (metric failure)
	// and notifications are buffered, then replayed in order when the
	// mode returns to Healthy.
	Crashed
)

func (m FaultMode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case Slow:
		return "slow"
	case Crashed:
		return "crashed"
	default:
		return "down"
	}
}

// Faulty wraps a CM-Translator with switchable fault injection, so tests
// and the benchmark harness can drive the Section 5 failure-handling
// machinery through the same code path real failures take.
type Faulty struct {
	failureHub
	inner cmi.Interface
	mu    sync.Mutex
	mode  FaultMode
	// held buffers notifications while Crashed, for replay on recovery.
	held []heldNote
}

type heldNote struct {
	fn       cmi.NotifyFunc
	item     data.ItemName
	old, new data.Value
}

// NewFaulty wraps inner; the wrapper starts Healthy.
func NewFaulty(inner cmi.Interface, clock vclock.Clock) *Faulty {
	return &Faulty{failureHub: newFailureHub(inner.Site(), clock), inner: inner}
}

// SetMode switches the injected behaviour.  Recovering from Crashed
// replays the notifications buffered during the outage, in order — the
// paper's "remember messages that need to be sent out upon recovery".
func (f *Faulty) SetMode(m FaultMode) {
	f.mu.Lock()
	wasCrashed := f.mode == Crashed
	f.mode = m
	var replay []heldNote
	if wasCrashed && m == Healthy {
		replay = f.held
		f.held = nil
	}
	f.mu.Unlock()
	for _, h := range replay {
		h.fn(h.item, h.old, h.new)
	}
}

// Mode returns the current mode.
func (f *Faulty) Mode() FaultMode {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mode
}

// inject applies the current mode to an operation about to run.  It
// returns a non-nil error when the operation must not proceed.
func (f *Faulty) inject(op string) error {
	switch f.Mode() {
	case Slow:
		// The operation proceeds, late: metric failure, work still done.
		f.report(op, ris.Transient(fmt.Errorf("translator: injected overload at %s", f.inner.Site())))
		return nil
	case Crashed:
		// Recoverable crash: the caller must retry later; metric failure.
		return f.report(op, ris.Transient(fmt.Errorf("translator: injected crash at %s", f.inner.Site())))
	case Down:
		return f.report(op, fmt.Errorf("translator: injected outage at %s: %w", f.inner.Site(), ris.ErrUnavailable))
	default:
		return nil
	}
}

// Site implements cmi.Interface.
func (f *Faulty) Site() string { return f.inner.Site() }

// Statements implements cmi.Interface.
func (f *Faulty) Statements() []rule.Rule { return f.inner.Statements() }

// Capabilities implements cmi.Interface.
func (f *Faulty) Capabilities(base string) ris.Capability { return f.inner.Capabilities(base) }

// Read implements cmi.Interface.
func (f *Faulty) Read(item data.ItemName) (data.Value, bool, error) {
	if err := f.inject("read"); err != nil {
		return data.NullValue, false, err
	}
	return f.inner.Read(item)
}

// Write implements cmi.Interface.
func (f *Faulty) Write(item data.ItemName, v data.Value) error {
	if err := f.inject("write"); err != nil {
		return err
	}
	return f.inner.Write(item, v)
}

// Subscribe implements cmi.Interface.  Notifications keep flowing in Slow
// mode (late), are buffered for replay in Crashed mode, and are dropped
// in Down mode — the silent-failure case the paper warns about for
// notify interfaces.
func (f *Faulty) Subscribe(base string, fn cmi.NotifyFunc) (func(), error) {
	return f.inner.Subscribe(base, func(item data.ItemName, old, new data.Value) {
		switch f.Mode() {
		case Down:
			return // silently lost
		case Crashed:
			f.mu.Lock()
			f.held = append(f.held, heldNote{fn: fn, item: item, old: old, new: new})
			f.mu.Unlock()
			f.report("notify", ris.Transient(fmt.Errorf("translator: crash buffered a notification at %s", f.inner.Site())))
			return
		case Slow:
			f.report("notify", ris.Transient(fmt.Errorf("translator: injected overload at %s", f.inner.Site())))
		}
		fn(item, old, new)
	})
}

// List implements cmi.Interface.
func (f *Faulty) List(base string) ([]data.ItemName, error) {
	if err := f.inject("read"); err != nil {
		return nil, err
	}
	return f.inner.List(base)
}

// Close implements cmi.Interface.
func (f *Faulty) Close() error { return f.inner.Close() }

var _ cmi.Interface = (*Faulty)(nil)
