package translator

import (
	"errors"
	"fmt"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

// FileSource is the native flat-file interface; both *filestore.Store and
// *server.FileClient satisfy it.
type FileSource interface {
	Read(file, key string) (string, error)
	Write(file, key, value string) error
	Delete(file, key string) error
	Snapshot(file string) (map[string]string, error)
}

// File is the CM-Translator for flat-file sources.  File sources have no
// native notification: Subscribe returns ErrUnsupported, which pushes the
// deployment toward a polling strategy, as in the Section 4.2 interface
// change and the Section 5 discussion of simulating notification by
// polling.
type File struct {
	failureHub
	cfg *rid.Config
	src FileSource
}

// NewFile builds a flat-file translator.
func NewFile(cfg *rid.Config, src FileSource, clock vclock.Clock) (*File, error) {
	if cfg.Kind != rid.KindFile {
		return nil, fmt.Errorf("translator: config kind %q is not %s", cfg.Kind, rid.KindFile)
	}
	return &File{failureHub: newFailureHub(cfg.Site, clock), cfg: cfg, src: src}, nil
}

// Site implements cmi.Interface.
func (t *File) Site() string { return t.cfg.Site }

// Statements implements cmi.Interface.
func (t *File) Statements() []rule.Rule { return t.cfg.Statements }

// Capabilities implements cmi.Interface.
func (t *File) Capabilities(base string) ris.Capability {
	return CapsFromStatements(t.cfg.Statements, base)
}

func (t *File) binding(base string) (*rid.ItemBinding, error) {
	b, ok := t.cfg.Binding(base)
	if !ok {
		return nil, fmt.Errorf("translator: no binding for item %s at site %s", base, t.cfg.Site)
	}
	return b, nil
}

// Read implements cmi.Interface: the item's first argument is the record
// key within the bound file.
func (t *File) Read(item data.ItemName) (data.Value, bool, error) {
	t.countOp("read")
	b, err := t.binding(item.Base)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	key, err := keyString(item)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	raw, err := t.src.Read(b.File, key)
	if err != nil {
		if errors.Is(err, ris.ErrNotFound) {
			return data.NullValue, false, nil
		}
		return data.NullValue, false, t.report("read", err)
	}
	v, err := convert(raw, b.Type)
	if err != nil {
		return data.NullValue, false, t.report("read", err)
	}
	return v, true, nil
}

// Write implements cmi.Interface.
func (t *File) Write(item data.ItemName, v data.Value) error {
	t.countOp("write")
	b, err := t.binding(item.Base)
	if err != nil {
		return t.report("write", err)
	}
	key, err := keyString(item)
	if err != nil {
		return t.report("write", err)
	}
	if v.IsNull() {
		return t.report("write", t.src.Delete(b.File, key))
	}
	return t.report("write", t.src.Write(b.File, key, render(v)))
}

// Subscribe implements cmi.Interface; flat files cannot notify.
func (t *File) Subscribe(base string, fn cmi.NotifyFunc) (func(), error) {
	t.countOp("notify")
	return nil, fmt.Errorf("translator: flat-file source at %s cannot notify: %w", t.cfg.Site, ris.ErrUnsupported)
}

// List implements cmi.Interface.
func (t *File) List(base string) ([]data.ItemName, error) {
	t.countOp("list")
	b, err := t.binding(base)
	if err != nil {
		return nil, t.report("read", err)
	}
	recs, err := t.src.Snapshot(b.File)
	if err != nil {
		return nil, t.report("read", err)
	}
	keys := make([]string, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	// Deterministic order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]data.ItemName, 0, len(keys))
	for _, k := range keys {
		out = append(out, data.Item(base, data.NewString(k)))
	}
	return out, nil
}

// Close implements cmi.Interface.
func (t *File) Close() error { return nil }

var _ cmi.Interface = (*File)(nil)
