// Guarantee-aware compaction: the trace folds event prefixes that can
// no longer change any verdict into its per-shard base interpretations,
// making trace memory proportional to the retention horizon instead of
// to the execution's age.
//
// The horizon comes from the caller (normally guarantee.Monitor): any
// event older than the widest pending guarantee window — plus
// demarcation/strategy holds — can never participate in a check again,
// so its only remaining contribution is its write effect, which the
// fold preserves exactly.  This is the amalgamated-knowledge-base move:
// a certified base state plus a bounded delta log.
//
// Locking: CompactBefore takes the commit mutex (rank 20) and then
// every shard mutex in ascending index order (rank 30) — the same rank
// sequence AppendUnit uses — so compaction is atomic with respect to
// both single appends and unit commits.  DESIGN.md §12 documents the
// retention model; cmlint's lockorder analyzer machine-checks the rank
// annotations.
package trace

import (
	"fmt"
	"sort"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// CompactStats reports what one CompactBefore call folded away.
type CompactStats struct {
	PrunedEvents int       // events removed from the shards this call
	PrunedBytes  uint64    // estimated heap bytes those events pinned
	CutSeq       uint64    // first retained sequence number after the call
	CutTime      time.Time // time of the last folded event (zero when none)
	Retained     int       // events still held after the call
}

// CompactBefore folds away every event the trace can prove irrelevant
// to instants at or after horizon, and returns what it pruned.  hold
// widens the band of folded events that keep materialized state views:
// folded events young enough that a retained (or soon-to-be-appended)
// event may still reference them as its trigger get eager old/new maps
// before their timelines are cut, so Appendix A.2 provenance checks on
// the retained suffix keep answering exactly as before.  Callers pass
// the widest rule δ plus any demarcation hold.
//
// The cut is a global sequence prefix: the minimum across shards of the
// first event at or after horizon.  Taking the minimum means every
// pruned event is older than horizon AND no retained event is ordered
// before a pruned one, so per-shard state reconstruction from the new
// base stays exact for every retained sequence point.
//
// The call is a no-op (zero stats) when nothing is old enough to fold.
//
//cmlint:acquires 20, 30
func (t *Trace) CompactBefore(horizon time.Time, hold time.Duration) CompactStats {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
	defer func() {
		for i := range t.shards {
			t.shards[i].mu.Unlock()
		}
	}()

	// Pass 1: the cut is the smallest sequence number that must survive.
	// Shard event lists are time-nondecreasing in any healthy trace; the
	// scan is linear in the pruned prefix, so compaction costs O(pruned),
	// not O(retained).
	cut := t.seq.Load() // all events eligible unless some shard bounds us
	for i := range t.shards {
		sh := &t.shards[i]
		j := 0
		for j < len(sh.events) && sh.events[j].Time.Before(horizon) {
			j++
		}
		if j < len(sh.events) && sh.events[j].Seq < cut {
			cut = sh.events[j].Seq
		}
	}
	if cut <= t.baseSeq.Load() {
		return CompactStats{CutSeq: t.baseSeq.Load(), Retained: t.lenLocked()}
	}

	// Pass 2: collect the pruned prefixes and decide which folded events
	// must keep materialized state views — those inside the hold band
	// plus any already referenced as a trigger by a retained event.
	parts := make([][]*event.Event, 0, len(t.shards))
	cuts := make([]int, len(t.shards))
	total := 0
	keep := map[*event.Event]bool{}
	for i := range t.shards {
		sh := &t.shards[i]
		p := sort.Search(len(sh.events), func(j int) bool { return sh.events[j].Seq >= cut })
		cuts[i] = p
		if p > 0 {
			parts = append(parts, sh.events[:p])
			total += p
		}
		for _, e := range sh.events[p:] {
			if tr := e.Trigger; tr != nil && tr.Seq < cut && !tr.HasEagerStates() {
				keep[tr] = true
			}
		}
	}
	pruned := mergeBySeq(parts, total)
	bandStart := horizon.Add(-hold)

	// Pass 3: walk the pruned prefix in sequence order, materializing
	// eager views where needed, severing trigger chains so the folded
	// events stop pinning the history behind them, and accounting bytes.
	state := data.NewInterpretation()
	for i := range t.shards {
		for k, v := range t.shards[i].base {
			state[k] = v
		}
	}
	var bytes uint64
	var cutTime time.Time
	for _, e := range pruned {
		need := !e.HasEagerStates() && (keep[e] || !e.Time.Before(bandStart))
		var old data.Interpretation
		if need {
			old = state.Clone()
		}
		if e.Desc.Op.IsWrite() {
			state.Set(e.Desc.Item, e.Desc.Val)
		}
		if need {
			e.SetStates(old, state.Clone())
		}
		e.Trigger = nil
		bytes += eventFootprint(e)
		cutTime = e.Time
	}

	// Pass 4: fold each shard's pruned writes into its base, cut the
	// event and timeline prefixes (copying, so the backing arrays of the
	// folded prefix are released), and publish the accounting.
	for i := range t.shards {
		sh := &t.shards[i]
		p := cuts[i]
		if p == 0 {
			continue
		}
		touched := map[string]bool{}
		for _, e := range sh.events[:p] {
			if e.Desc.Op.IsWrite() {
				sh.base.Set(e.Desc.Item, e.Desc.Val)
				touched[e.Desc.Item.Key()] = true
			}
		}
		sh.events = append(make([]*event.Event, 0, len(sh.events)-p), sh.events[p:]...)
		for key := range touched {
			tl := sh.timelines[key]
			q := sort.Search(len(tl), func(j int) bool { return tl[j].Seq >= cut })
			if q == len(tl) {
				delete(sh.timelines, key)
			} else if q > 0 {
				sh.timelines[key] = append(make([]*event.Event, 0, len(tl)-q), tl[q:]...)
			}
		}
	}
	t.baseSeq.Store(cut)
	if !cutTime.IsZero() {
		t.baseNanos.Store(cutTime.UnixNano())
	}
	t.prunedEvents.Add(uint64(total))
	t.prunedBytes.Add(bytes)
	return CompactStats{
		PrunedEvents: total,
		PrunedBytes:  bytes,
		CutSeq:       cut,
		CutTime:      cutTime,
		Retained:     t.lenLocked(),
	}
}

// lenLocked counts retained events; every shard lock is already held.
func (t *Trace) lenLocked() int {
	n := 0
	for i := range t.shards {
		n += len(t.shards[i].events)
	}
	return n
}

// eventFootprint estimates the heap bytes one recorded event pins: the
// struct, its descriptor strings, a timeline slot, and any eager state
// maps.  An estimate is enough — the accounting exists so operators can
// see pruning keep pace with recording, not to balance an allocator.
func eventFootprint(e *event.Event) uint64 {
	n := 176 + len(e.Site) + len(e.Host) + len(e.Desc.Item.Base) + 16*len(e.Desc.Item.Args)
	if e.HasEagerStates() {
		n += 48 * (len(e.Old()) + len(e.New()))
	}
	return uint64(n)
}

// BaseSeq returns the first retained sequence number: 0 until the first
// compaction or restore, the fold cut afterwards.
func (t *Trace) BaseSeq() uint64 { return t.baseSeq.Load() }

// BaseTime returns the timestamp of the last folded event, or the zero
// time when nothing has been folded.
func (t *Trace) BaseTime() time.Time {
	n := t.baseNanos.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Pruned reports the cumulative folded-away totals: events and their
// estimated bytes.  Len() counts only retained events, so the lifetime
// event count is Pruned events + Len().
func (t *Trace) Pruned() (events, bytes uint64) {
	return t.prunedEvents.Load(), t.prunedBytes.Load()
}

// TotalEvents reports the lifetime number of recorded events, folded or
// retained.
func (t *Trace) TotalEvents() uint64 {
	return t.prunedEvents.Load() + uint64(t.Len())
}

// CheckpointState is the trace's exportable fold: everything a restart
// needs to resume recording without the history.  Base maps item keys
// to literal renderings of their values at the checkpoint instant;
// NextSeq is where sequence numbering resumes so restored executions
// never reuse a folded sequence number.
type CheckpointState struct {
	NextSeq      uint64            `json:"next_seq"`
	BaseTime     time.Time         `json:"base_time"`
	PrunedEvents uint64            `json:"pruned_events"`
	PrunedBytes  uint64            `json:"pruned_bytes"`
	Base         map[string]string `json:"base"`
}

// Checkpoint captures the full current state as a restorable fold: the
// final interpretation, the next sequence number, and the lifetime
// accounting (everything up to the checkpoint counts as folded once a
// restart restores from it).  Taken under the commit mutex so the
// snapshot sits on a unit boundary.
//
//cmlint:acquires 20, 30
func (t *Trace) Checkpoint() CheckpointState {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	cs := CheckpointState{Base: map[string]string{}}
	retained := 0
	var last time.Time
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, v := range sh.state {
			cs.Base[k] = v.String()
		}
		if n := len(sh.events); n > 0 {
			if at := sh.events[n-1].Time; at.After(last) {
				last = at
			}
		}
		retained += len(sh.events)
		sh.mu.Unlock()
	}
	cs.NextSeq = t.seq.Load()
	cs.BaseTime = last
	if last.IsZero() {
		cs.BaseTime = t.BaseTime()
	}
	cs.PrunedEvents = t.prunedEvents.Load() + uint64(retained)
	cs.PrunedBytes = t.prunedBytes.Load()
	return cs
}

// Restore seeds an empty trace from a checkpoint: shard bases and
// current state become the checkpointed interpretation, sequence
// numbering resumes at NextSeq, and the fold accounting carries over.
// Only a trace that has recorded nothing can be restored.
func (t *Trace) Restore(cs CheckpointState) error {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	if t.seq.Load() != 0 || t.prunedEvents.Load() != 0 {
		return fmt.Errorf("trace: restore into a non-empty trace (seq=%d)", t.seq.Load())
	}
	for key, lit := range cs.Base {
		item, err := data.ParseItemName(key)
		if err != nil {
			return fmt.Errorf("trace: checkpoint item %q: %w", key, err)
		}
		v, err := data.ParseLiteral(lit)
		if err != nil {
			return fmt.Errorf("trace: checkpoint value %q for %q: %w", lit, key, err)
		}
		sh := &t.shards[t.ShardOf(item.Base)]
		sh.mu.Lock()
		sh.base.Set(item, v)
		sh.state.Set(item, v)
		sh.mu.Unlock()
	}
	t.seq.Store(cs.NextSeq)
	t.baseSeq.Store(cs.NextSeq)
	if !cs.BaseTime.IsZero() {
		t.baseNanos.Store(cs.BaseTime.UnixNano())
	}
	t.prunedEvents.Store(cs.PrunedEvents)
	t.prunedBytes.Store(cs.PrunedBytes)
	return nil
}
