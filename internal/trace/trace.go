// Package trace records executions — sequences of events with their before
// and after interpretations — and checks them against the seven validity
// properties of Appendix A.2.  Every simulated scenario in the test suite
// and the benchmark harness records a trace and re-validates it, replacing
// the paper's manual proofs with a machine check on every run.
//
// State is stored as a versioned store: one timeline of write events per
// data item plus the current interpretation, mutated in place.  Appending
// an event is O(1) in the number of items and events; the per-event old
// and new interpretations of the formal model are lazy views (Event.Old /
// Event.New) reconstructed from the timelines on demand, so only readers
// that genuinely need a full interpretation — the Appendix A.2 checker,
// mostly — pay for materializing one.  NewCloning preserves the original
// clone-per-append representation for equivalence testing and as the
// baseline arm of the E14 saturation experiment.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// Trace is an append-only record of an execution.  It maintains the
// running interpretation and per-item write timelines so that appended
// events can answer for their old/new components per Appendix A.2
// properties 2 and 3.  Trace is safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	events  []*event.Event
	state   data.Interpretation // current state, mutated in place
	initial data.Interpretation
	// timelines holds, per item key, the performed-write events on that
	// item in sequence order.  Write events are the only ones that change
	// state, so the timelines are a complete versioned store: the state
	// after any event is initial overlaid with each item's last write at
	// or before that sequence number.
	timelines map[string][]*event.Event
	seq       uint64
	// cloning selects the legacy representation: every append clones the
	// full interpretation and stores eager old/new maps on the event.
	cloning bool
}

// New returns a trace starting from the given initial interpretation
// (cloned; nil means the empty state).
func New(initial data.Interpretation) *Trace {
	if initial == nil {
		initial = data.NewInterpretation()
	}
	return &Trace{
		state:     initial.Clone(),
		initial:   initial.Clone(),
		timelines: map[string][]*event.Event{},
	}
}

// NewCloning returns a trace using the legacy clone-per-append
// representation: each event stores eager old/new interpretation maps,
// costing O(items) time and memory per write event.  It exists as the
// baseline arm for equivalence tests and the E14 saturation experiment;
// all read APIs behave identically to New.
func NewCloning(initial data.Interpretation) *Trace {
	t := New(initial)
	t.cloning = true
	return t
}

// Append records the event, assigning its sequence number and wiring up
// its old and new interpretation views from the running state.  It
// returns the event for convenience.  The caller fills Time, Site, Desc,
// Rule and Trigger; the state views and Seq are owned by the trace.
func (t *Trace) Append(e *event.Event) *event.Event {
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	if t.cloning {
		old := t.state
		if e.Desc.Op.IsWrite() {
			t.state = t.state.With(e.Desc.Item, e.Desc.Val)
		}
		e.SetStates(old, t.state)
	} else {
		e.SetStateSource(t)
	}
	if e.Desc.Op.IsWrite() {
		key := e.Desc.Item.Key()
		t.timelines[key] = append(t.timelines[key], e)
		if !t.cloning {
			t.state.Set(e.Desc.Item, e.Desc.Val)
		}
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
	return e
}

// StateBefore implements event.StateSource: the interpretation in force
// before event seq.
func (t *Trace) StateBefore(seq uint64) data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stateAtSeqLocked(seq, false)
}

// StateAfter implements event.StateSource: the interpretation in force
// after event seq.
func (t *Trace) StateAfter(seq uint64) data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stateAtSeqLocked(seq, true)
}

// stateAtSeqLocked materializes the interpretation at a sequence point:
// initial overlaid with each item's last write before seq (or at seq,
// when inclusive).  O(items × log writes).
func (t *Trace) stateAtSeqLocked(seq uint64, inclusive bool) data.Interpretation {
	bound := seq
	if inclusive {
		bound++
	}
	out := t.initial.Clone()
	for key, tl := range t.timelines {
		// First write with w.Seq >= bound; the one before it is in force.
		i := sort.Search(len(tl), func(i int) bool { return tl[i].Seq >= bound })
		if i == 0 {
			continue
		}
		v := tl[i-1].Desc.Val
		if v.IsNull() {
			delete(out, key)
		} else {
			out[key] = v
		}
	}
	return out
}

// Find returns the recorded event with the given sequence number, or nil.
// Append assigns sequence numbers densely from zero, so the lookup is a
// direct index.  Deployments that share one trace across shells use this
// to re-link a firing's trigger after the message lost its in-process
// event pointer (a journaled replay, which crosses a process boundary in
// spirit even when it does not in fact).
func (t *Trace) Find(seq uint64) *event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq >= uint64(len(t.events)) {
		return nil
	}
	return t.events[seq]
}

// Events returns the recorded events as a read-only snapshot.  The slice
// is shared with the trace (events are appended once and never mutated,
// and the capacity is capped so a caller's append cannot clobber later
// records); callers that need to reorder or extend it must copy —
// experiment loops call this on every lookup, so the common read path
// must not copy the whole history each time.
func (t *Trace) Events() []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events[:len(t.events):len(t.events)]
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Initial returns the initial interpretation.
func (t *Trace) Initial() data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.initial.Clone()
}

// Final returns the interpretation after the last recorded event.
func (t *Trace) Final() data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state.Clone()
}

// StateAt returns the interpretation in force at instant at: the new
// interpretation of the last event with Time <= at, or the initial
// interpretation when no event has happened yet.  Events at the same
// instant apply in sequence order, so the returned state reflects all of
// them.
func (t *Trace) StateAt(at time.Time) data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Mirror the historical scan: the state is that of the last event
	// before the first one whose time exceeds at (times are normally
	// non-decreasing, but a violated trace may not be — the checker still
	// sees the same state the eager representation would have recorded).
	last := -1
	for i, e := range t.events {
		if e.Time.After(at) {
			break
		}
		last = i
	}
	if last < 0 {
		return t.initial.Clone()
	}
	return t.stateAtSeqLocked(t.events[last].Seq, true)
}

// WalkNewStates calls fn for each recorded event in sequence order with
// the interpretation the event left in force (its New view), maintaining
// one running reconstruction so the whole walk costs O(events + writes)
// instead of materializing a fresh interpretation per event.  The map
// passed to fn is reused between calls: fn must not retain or mutate it.
// fn returning false stops the walk.  Events carrying eager state
// overrides yield those instead, exactly as Event.New would.
func (t *Trace) WalkNewStates(fn func(e *event.Event, in data.Interpretation) bool) {
	events := t.Events()
	cur := t.Initial()
	for _, e := range events {
		if e.Desc.Op.IsWrite() {
			cur.Set(e.Desc.Item, e.Desc.Val)
		}
		in := cur
		if e.HasEagerStates() {
			in = e.New()
		}
		if !fn(e, in) {
			return
		}
	}
}

// Sample is one point in a value timeline.
type Sample struct {
	At  time.Time
	Seq uint64
	V   data.Value
}

// Timeline returns the distinct values item held over the execution, in
// order, starting with its initial value.  Consecutive equal values are
// collapsed; the guarantee checkers consume this.  Only the item's own
// write timeline is scanned — O(writes to item), not O(events).
func (t *Trace) Timeline(item data.ItemName) []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := []Sample{{V: t.initial.Get(item)}}
	for _, e := range t.timelines[item.Key()] {
		v := e.Desc.Val
		if !v.Equal(out[len(out)-1].V) {
			out = append(out, Sample{At: e.Time, Seq: e.Seq, V: v})
		}
	}
	return out
}

// Writes returns the performed-write events (W and Ws) on item, in order.
func (t *Trace) Writes(item data.ItemName) []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	tl := t.timelines[item.Key()]
	if len(tl) == 0 {
		return nil
	}
	return append([]*event.Event(nil), tl...)
}

// Matching returns events whose descriptor matches the template.
func (t *Trace) Matching(tpl event.Template) []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*event.Event
	for _, e := range t.events {
		if _, ok := tpl.Match(e.Desc); ok {
			out = append(out, e)
		}
	}
	return out
}

// End returns the time of the last event, or the zero time for an empty
// trace.
func (t *Trace) End() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return time.Time{}
	}
	return t.events[len(t.events)-1].Time
}

// String renders the whole trace, one event per line, for debugging.
func (t *Trace) String() string {
	var b []byte
	for _, e := range t.Events() {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// Violation reports one failure of a validity property or rule obligation.
type Violation struct {
	Property int    // Appendix A.2 property number 1..7
	Metric   bool   // true when the obligation was met but late (a metric failure, Section 5)
	Seq      uint64 // sequence number of the offending event
	Msg      string
}

func (v Violation) String() string {
	kind := "logical"
	if v.Metric {
		kind = "metric"
	}
	return fmt.Sprintf("property %d (%s) at #%d: %s", v.Property, kind, v.Seq, v.Msg)
}
