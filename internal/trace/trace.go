// Package trace records executions — sequences of events with their before
// and after interpretations — and checks them against the seven validity
// properties of Appendix A.2.  Every simulated scenario in the test suite
// and the benchmark harness records a trace and re-validates it, replacing
// the paper's manual proofs with a machine check on every run.
//
// State is stored as a versioned store: one timeline of write events per
// data item plus the current interpretation, mutated in place.  Appending
// an event is O(1) in the number of items and events; the per-event old
// and new interpretations of the formal model are lazy views (Event.Old /
// Event.New) reconstructed from the timelines on demand, so only readers
// that genuinely need a full interpretation — the Appendix A.2 checker,
// mostly — pay for materializing one.  NewCloning preserves the original
// clone-per-append representation for equivalence testing and as the
// baseline arm of the E14 saturation experiment.
//
// # Concurrency
//
// The store is lock-striped by item base: NewSharded splits the per-item
// timelines, the current state, and the event log across N shards, each
// behind its own mutex, so appends to unrelated item bases contend only
// on the atomic sequence counter.  Sequence numbers come from one atomic
// counter, which makes seq order a linearization of the execution: if
// Append(A) returns before Append(B) is called, A.Seq < B.Seq.  Readers
// that need the whole execution (Events, the checker) merge the shards by
// sequence number.
//
// AppendUnit is the serialized commit point the parallel shell engine
// uses: it assigns one contiguous block of sequence numbers to a whole
// unit of work (a trigger event plus everything its rule firings
// generated), stamps the unit's events with a single commit-time
// timestamp, and publishes them to their shards — all under one commit
// mutex, so units are atomic in seq order and commit-time order equals
// seq order.  DESIGN.md §9 documents why this preserves the checker's
// observed order.
package trace

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// Trace is an append-only record of an execution.  It maintains the
// running interpretation and per-item write timelines so that appended
// events can answer for their old/new components per Appendix A.2
// properties 2 and 3.  Trace is safe for concurrent use.
type Trace struct {
	shards []traceShard
	mask   uint64
	seq    atomic.Uint64
	// Retention accounting (see compact.go).  baseSeq is the first
	// retained sequence number: every event below it has been folded into
	// the shard base interpretations by CompactBefore or Restore.
	baseSeq      atomic.Uint64
	baseNanos    atomic.Int64 // Time of the last folded event (UnixNano; 0 = none)
	prunedEvents atomic.Uint64
	prunedBytes  atomic.Uint64
	// commitMu serializes AppendUnit commits: sequence-block assignment,
	// commit-time stamping, shard publication, and the caller's post-commit
	// hook happen atomically with respect to other units.
	//cmlint:lockrank 20
	commitMu sync.Mutex
	// cloning selects the legacy representation: every append clones the
	// full interpretation and stores eager old/new maps on the event.
	// Cloning traces always have exactly one shard.
	cloning bool
}

// traceShard is one lock stripe of the store: the events, per-item write
// timelines, and current-state slice for the item bases that hash here.
type traceShard struct {
	//cmlint:lockrank 30
	mu     sync.Mutex
	events []*event.Event // seq-ascending, all with Seq >= the trace's baseSeq
	// base is the folded initial interpretation for this shard's items:
	// the trace's initial state overlaid with every write that compaction
	// has pruned.  Lazy state reconstruction (stateAtSeq, Timeline) starts
	// from base instead of the construction-time initial, so folding a
	// prefix away never changes what the retained suffix reports.
	base data.Interpretation
	// timelines holds, per item key, the performed-write events on that
	// item in sequence order.  Write events are the only ones that change
	// state, so the timelines are a complete versioned store: the state
	// after any event is initial overlaid with each item's last write at
	// or before that sequence number.
	timelines map[string][]*event.Event
	state     data.Interpretation // current values of this shard's items
}

// shardSeed keys the base-name hash; one process-wide seed keeps shard
// assignment consistent across traces (tests rely only on determinism
// within a process).
var shardSeed = maphash.MakeSeed()

// New returns a trace starting from the given initial interpretation
// (cloned; nil means the empty state).
func New(initial data.Interpretation) *Trace {
	return NewSharded(initial, 1)
}

// NewSharded returns a trace whose storage is striped across n shards by
// item base (n is rounded up to a power of two; n < 1 means 1).  All read
// APIs behave identically to New; parallel shell engines use a sharded
// trace so appends on unrelated item bases do not serialize on one lock.
func NewSharded(initial data.Interpretation, n int) *Trace {
	if initial == nil {
		initial = data.NewInterpretation()
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	t := &Trace{
		shards: make([]traceShard, shards),
		mask:   uint64(shards - 1),
	}
	for i := range t.shards {
		t.shards[i].timelines = map[string][]*event.Event{}
		t.shards[i].base = data.NewInterpretation()
		t.shards[i].state = data.NewInterpretation()
	}
	// Seed each shard's base and state slices with the initial items that
	// hash to it, so Initial, Final and stateAtSeq are disjoint unions of
	// the shards.
	for key, v := range initial {
		sh := &t.shards[t.ShardOf(baseOfKey(key))]
		sh.base[key] = v
		sh.state[key] = v
	}
	return t
}

// NewCloning returns a trace using the legacy clone-per-append
// representation: each event stores eager old/new interpretation maps,
// costing O(items) time and memory per write event.  It exists as the
// baseline arm for equivalence tests and the E14 saturation experiment;
// all read APIs behave identically to New.
func NewCloning(initial data.Interpretation) *Trace {
	t := New(initial)
	t.cloning = true
	return t
}

// Shards reports the number of lock stripes.
func (t *Trace) Shards() int { return len(t.shards) }

// ShardOf returns the shard index an item base maps to.
func (t *Trace) ShardOf(base string) int {
	if t.mask == 0 {
		return 0
	}
	return int(maphash.String(shardSeed, base) & t.mask)
}

// baseOfKey extracts the item base from an interpretation key
// (`salary1("e7")` → `salary1`; argument-free keys are their own base).
func baseOfKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '(' {
			return key[:i]
		}
	}
	return key
}

// shardForEvent picks the shard an event lands in: the shard of its item
// base, or shard 0 for item-less events (P and F descriptors).
func (t *Trace) shardForEvent(e *event.Event) *traceShard {
	if !e.Desc.Op.HasItem() {
		return &t.shards[0]
	}
	return &t.shards[t.ShardOf(e.Desc.Item.Base)]
}

// Append records the event, assigning its sequence number and wiring up
// its old and new interpretation views from the running state.  It
// returns the event for convenience.  The caller fills Time, Site, Desc,
// Rule and Trigger; the state views and Seq are owned by the trace.
func (t *Trace) Append(e *event.Event) *event.Event {
	sh := t.shardForEvent(e)
	sh.mu.Lock()
	e.Seq = t.seq.Add(1) - 1
	t.appendLocked(sh, e)
	sh.mu.Unlock()
	return e
}

// appendLocked publishes an event into its shard; the caller holds the
// shard lock and has already assigned e.Seq.  Events normally arrive in
// seq order per shard (the seq draw happens under the shard lock, or
// under the commit mutex for units); the out-of-order guard keeps the
// shard's invariants if a single-append path races a unit commit into
// the same shard.
func (t *Trace) appendLocked(sh *traceShard, e *event.Event) {
	if t.cloning {
		old := sh.state
		if e.Desc.Op.IsWrite() {
			sh.state = sh.state.With(e.Desc.Item, e.Desc.Val)
		}
		e.SetStates(old, sh.state)
	} else {
		e.SetStateSource(t)
	}
	if e.Desc.Op.IsWrite() {
		key := e.Desc.Item.Key()
		sh.timelines[key] = insertBySeq(sh.timelines[key], e)
		if !t.cloning {
			sh.state.Set(e.Desc.Item, e.Desc.Val)
		}
	}
	sh.events = insertBySeq(sh.events, e)
}

// insertBySeq appends e to a seq-ascending slice, falling back to a
// sorted insert when e arrived out of order (rare: a raw Append racing a
// unit commit into the same shard).
func insertBySeq(s []*event.Event, e *event.Event) []*event.Event {
	if n := len(s); n == 0 || s[n-1].Seq < e.Seq {
		return append(s, e)
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].Seq > e.Seq })
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

// AppendUnit atomically commits a unit of work: it assigns the events one
// contiguous block of sequence numbers (in slice order), stamps every
// event with a single commit-time timestamp from now (when non-nil), and
// publishes them to their shards — all under the trace's commit mutex, so
// concurrent units are atomic in seq order and commit order equals both
// seq order and stamp order.  then, when non-nil, runs while the commit
// mutex is still held; the parallel shell engine flushes the unit's
// remote sends there so per-link send order matches trace commit order
// (Appendix A.2 property 7 across shells).
//
//cmlint:acquires 20, 30
func (t *Trace) AppendUnit(events []*event.Event, now func() time.Time, then func()) {
	if len(events) == 0 && then == nil {
		return
	}
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	if n := len(events); n > 0 {
		base := t.seq.Add(uint64(n)) - uint64(n)
		var stamp time.Time
		if now != nil {
			stamp = now()
		}
		for i, e := range events {
			e.Seq = base + uint64(i)
			if now != nil {
				e.Time = stamp
			}
		}
		for _, e := range events {
			sh := t.shardForEvent(e)
			sh.mu.Lock()
			t.appendLocked(sh, e)
			sh.mu.Unlock()
		}
	}
	if then != nil {
		then()
	}
}

// StateBefore implements event.StateSource: the interpretation in force
// before event seq.
func (t *Trace) StateBefore(seq uint64) data.Interpretation {
	return t.stateAtSeq(seq, false)
}

// StateAfter implements event.StateSource: the interpretation in force
// after event seq.
func (t *Trace) StateAfter(seq uint64) data.Interpretation {
	return t.stateAtSeq(seq, true)
}

// stateAtSeq materializes the interpretation at a sequence point: the
// folded base overlaid with each item's last retained write before seq
// (or at seq, when inclusive).  O(items × log writes).  All shard locks
// are taken in index order for a consistent cross-shard snapshot.  For
// sequence points below the compaction cut the result is the folded
// base itself — the trace no longer distinguishes states inside the
// folded prefix.
func (t *Trace) stateAtSeq(seq uint64, inclusive bool) data.Interpretation {
	bound := seq
	if inclusive {
		bound++
	}
	out := data.NewInterpretation()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, v := range sh.base {
			out[key] = v
		}
		for key, tl := range sh.timelines {
			// First write with w.Seq >= bound; the one before it is in force.
			j := sort.Search(len(tl), func(j int) bool { return tl[j].Seq >= bound })
			if j == 0 {
				continue
			}
			v := tl[j-1].Desc.Val
			if v.IsNull() {
				delete(out, key)
			} else {
				out[key] = v
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Find returns the recorded event with the given sequence number, or nil.
// Each shard's event list is seq-ascending, so the lookup is a binary
// search per shard.  Deployments that share one trace across shells use
// this to re-link a firing's trigger after the message lost its
// in-process event pointer (a journaled replay, which crosses a process
// boundary in spirit even when it does not in fact).
func (t *Trace) Find(seq uint64) *event.Event {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		j := sort.Search(len(sh.events), func(j int) bool { return sh.events[j].Seq >= seq })
		if j < len(sh.events) && sh.events[j].Seq == seq {
			e := sh.events[j]
			sh.mu.Unlock()
			return e
		}
		sh.mu.Unlock()
	}
	return nil
}

// Events returns the recorded events in sequence order.  For a single
// shard the slice is a read-only snapshot shared with the trace (events
// are appended once and never mutated, and the capacity is capped so a
// caller's append cannot clobber later records) — experiment loops call
// this on every lookup, so the common read path must not copy the whole
// history each time.  A sharded trace merges its stripes into a fresh
// slice.
func (t *Trace) Events() []*event.Event {
	if len(t.shards) == 1 {
		sh := &t.shards[0]
		sh.mu.Lock()
		out := sh.events[:len(sh.events):len(sh.events)]
		sh.mu.Unlock()
		return out
	}
	parts := make([][]*event.Event, len(t.shards))
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		parts[i] = sh.events[:len(sh.events):len(sh.events)]
		sh.mu.Unlock()
		total += len(parts[i])
	}
	return mergeBySeq(parts, total)
}

// mergeBySeq k-way merges seq-ascending event slices.
func mergeBySeq(parts [][]*event.Event, total int) []*event.Event {
	out := make([]*event.Event, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		var bestSeq uint64
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if s := p[idx[i]].Seq; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.events)
		sh.mu.Unlock()
	}
	return n
}

// Initial returns the interpretation the retained suffix starts from:
// the construction-time initial state for an uncompacted trace, or the
// folded base (initial plus every pruned write) once CompactBefore has
// run.  Shard bases are disjoint by item base, so the result is their
// union.
func (t *Trace) Initial() data.Interpretation {
	out := data.NewInterpretation()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, v := range sh.base {
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// Final returns the interpretation after the last recorded event.  Shard
// states are disjoint by item base, so the result is their union.
func (t *Trace) Final() data.Interpretation {
	out := data.NewInterpretation()
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, v := range sh.state {
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// StateAt returns the interpretation in force at instant at: the new
// interpretation of the last event with Time <= at, or the initial
// interpretation when no event has happened yet.  Events at the same
// instant apply in sequence order, so the returned state reflects all of
// them.
func (t *Trace) StateAt(at time.Time) data.Interpretation {
	events := t.Events()
	// Mirror the historical scan: the state is that of the last event
	// before the first one whose time exceeds at (times are normally
	// non-decreasing, but a violated trace may not be — the checker still
	// sees the same state the eager representation would have recorded).
	last := -1
	for i, e := range events {
		if e.Time.After(at) {
			break
		}
		last = i
	}
	if last < 0 {
		return t.Initial()
	}
	return t.stateAtSeq(events[last].Seq, true)
}

// WalkNewStates calls fn for each recorded event in sequence order with
// the interpretation the event left in force (its New view), maintaining
// one running reconstruction so the whole walk costs O(events + writes)
// instead of materializing a fresh interpretation per event.  The map
// passed to fn is reused between calls: fn must not retain or mutate it.
// fn returning false stops the walk.  Events carrying eager state
// overrides yield those instead, exactly as Event.New would.
func (t *Trace) WalkNewStates(fn func(e *event.Event, in data.Interpretation) bool) {
	events := t.Events()
	cur := t.Initial()
	for _, e := range events {
		if e.Desc.Op.IsWrite() {
			cur.Set(e.Desc.Item, e.Desc.Val)
		}
		in := cur
		if e.HasEagerStates() {
			in = e.New()
		}
		if !fn(e, in) {
			return
		}
	}
}

// Sample is one point in a value timeline.
type Sample struct {
	At  time.Time
	Seq uint64
	V   data.Value
}

// Timeline returns the distinct values item held over the execution, in
// order, starting with its initial value.  Consecutive equal values are
// collapsed; the guarantee checkers consume this.  Only the item's own
// write timeline is scanned — O(writes to item), not O(events) — and only
// the item's own shard is locked.
func (t *Trace) Timeline(item data.ItemName) []Sample {
	sh := &t.shards[t.ShardOf(item.Base)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := []Sample{{V: sh.base.Get(item)}}
	for _, e := range sh.timelines[item.Key()] {
		v := e.Desc.Val
		if !v.Equal(out[len(out)-1].V) {
			out = append(out, Sample{At: e.Time, Seq: e.Seq, V: v})
		}
	}
	return out
}

// Writes returns the performed-write events (W and Ws) on item, in order.
func (t *Trace) Writes(item data.ItemName) []*event.Event {
	sh := &t.shards[t.ShardOf(item.Base)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tl := sh.timelines[item.Key()]
	if len(tl) == 0 {
		return nil
	}
	return append([]*event.Event(nil), tl...)
}

// Matching returns events whose descriptor matches the template.
func (t *Trace) Matching(tpl event.Template) []*event.Event {
	var out []*event.Event
	for _, e := range t.Events() {
		if _, ok := tpl.Match(e.Desc); ok {
			out = append(out, e)
		}
	}
	return out
}

// End returns the time of the last event, or the zero time for an empty
// trace.
func (t *Trace) End() time.Time {
	var last *event.Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if n := len(sh.events); n > 0 {
			if e := sh.events[n-1]; last == nil || e.Seq > last.Seq {
				last = e
			}
		}
		sh.mu.Unlock()
	}
	if last == nil {
		return time.Time{}
	}
	return last.Time
}

// String renders the whole trace, one event per line, for debugging.
func (t *Trace) String() string {
	var b []byte
	for _, e := range t.Events() {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// Violation reports one failure of a validity property or rule obligation.
type Violation struct {
	Property int    // Appendix A.2 property number 1..7
	Metric   bool   // true when the obligation was met but late (a metric failure, Section 5)
	Seq      uint64 // sequence number of the offending event
	Msg      string
}

func (v Violation) String() string {
	kind := "logical"
	if v.Metric {
		kind = "metric"
	}
	return fmt.Sprintf("property %d (%s) at #%d: %s", v.Property, kind, v.Seq, v.Msg)
}
