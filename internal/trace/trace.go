// Package trace records executions — sequences of events with their before
// and after interpretations — and checks them against the seven validity
// properties of Appendix A.2.  Every simulated scenario in the test suite
// and the benchmark harness records a trace and re-validates it, replacing
// the paper's manual proofs with a machine check on every run.
package trace

import (
	"fmt"
	"sync"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// Trace is an append-only record of an execution.  It maintains the
// running interpretation so that appended events get their old/new
// components filled in per Appendix A.2 properties 2 and 3.  Trace is safe
// for concurrent use.
type Trace struct {
	mu      sync.Mutex
	events  []*event.Event
	state   data.Interpretation
	initial data.Interpretation
	seq     uint64
}

// New returns a trace starting from the given initial interpretation
// (cloned; nil means the empty state).
func New(initial data.Interpretation) *Trace {
	if initial == nil {
		initial = data.NewInterpretation()
	}
	return &Trace{state: initial.Clone(), initial: initial.Clone()}
}

// Append records the event, assigning its sequence number and computing
// its old and new interpretations from the running state.  It returns the
// event for convenience.  The caller fills Time, Site, Desc, Rule and
// Trigger; Old, New and Seq are owned by the trace.
func (t *Trace) Append(e *event.Event) *event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = t.seq
	t.seq++
	e.Old = t.state
	if e.Desc.Op.IsWrite() {
		t.state = t.state.With(e.Desc.Item, e.Desc.Val)
	}
	e.New = t.state
	t.events = append(t.events, e)
	return e
}

// Find returns the recorded event with the given sequence number, or nil.
// Append assigns sequence numbers densely from zero, so the lookup is a
// direct index.  Deployments that share one trace across shells use this
// to re-link a firing's trigger after the message lost its in-process
// event pointer (a journaled replay, which crosses a process boundary in
// spirit even when it does not in fact).
func (t *Trace) Find(seq uint64) *event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq >= uint64(len(t.events)) {
		return nil
	}
	return t.events[seq]
}

// Events returns a snapshot of the recorded events.
func (t *Trace) Events() []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*event.Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len reports the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Initial returns the initial interpretation.
func (t *Trace) Initial() data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.initial.Clone()
}

// Final returns the interpretation after the last recorded event.
func (t *Trace) Final() data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state.Clone()
}

// StateAt returns the interpretation in force at instant at: the new
// interpretation of the last event with Time <= at, or the initial
// interpretation when no event has happened yet.  Events at the same
// instant apply in sequence order, so the returned state reflects all of
// them.
func (t *Trace) StateAt(at time.Time) data.Interpretation {
	t.mu.Lock()
	defer t.mu.Unlock()
	state := t.initial
	for _, e := range t.events {
		if e.Time.After(at) {
			break
		}
		state = e.New
	}
	return state
}

// Sample is one point in a value timeline.
type Sample struct {
	At  time.Time
	Seq uint64
	V   data.Value
}

// Timeline returns the distinct values item held over the execution, in
// order, starting with its initial value.  Consecutive equal values are
// collapsed; the guarantee checkers consume this.
func (t *Trace) Timeline(item data.ItemName) []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := []Sample{{V: t.initial.Get(item)}}
	for _, e := range t.events {
		v := e.New.Get(item)
		if !v.Equal(out[len(out)-1].V) {
			out = append(out, Sample{At: e.Time, Seq: e.Seq, V: v})
		}
	}
	return out
}

// Writes returns the performed-write events (W and Ws) on item, in order.
func (t *Trace) Writes(item data.ItemName) []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*event.Event
	for _, e := range t.events {
		if e.Desc.Op.IsWrite() && e.Desc.Item.Equal(item) {
			out = append(out, e)
		}
	}
	return out
}

// Matching returns events whose descriptor matches the template.
func (t *Trace) Matching(tpl event.Template) []*event.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*event.Event
	for _, e := range t.events {
		if _, ok := tpl.Match(e.Desc); ok {
			out = append(out, e)
		}
	}
	return out
}

// End returns the time of the last event, or the zero time for an empty
// trace.
func (t *Trace) End() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) == 0 {
		return time.Time{}
	}
	return t.events[len(t.events)-1].Time
}

// String renders the whole trace, one event per line, for debugging.
func (t *Trace) String() string {
	var b []byte
	for _, e := range t.Events() {
		b = append(b, e.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// Violation reports one failure of a validity property or rule obligation.
type Violation struct {
	Property int    // Appendix A.2 property number 1..7
	Metric   bool   // true when the obligation was met but late (a metric failure, Section 5)
	Seq      uint64 // sequence number of the offending event
	Msg      string
}

func (v Violation) String() string {
	kind := "logical"
	if v.Metric {
		kind = "metric"
	}
	return fmt.Sprintf("property %d (%s) at #%d: %s", v.Property, kind, v.Seq, v.Msg)
}
