package trace

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// buildPair appends the same pseudo-random event sequence — writes,
// deletes, notifications, write requests across several items — to a
// versioned trace and a legacy cloning trace.
func buildPair(seed int64, n int) (*Trace, *Trace) {
	items := []data.ItemName{data.Item("X"), data.Item("Y"), data.Item("Z"), data.Item("emp.42")}
	initial := data.Interpretation{"X": data.NewInt(1)}
	versioned, cloning := New(initial), NewCloning(initial)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		item := items[rng.Intn(len(items))]
		var d event.Desc
		switch rng.Intn(5) {
		case 0:
			d = event.Ws(item, data.NullValue, data.NewInt(int64(rng.Intn(10))))
		case 1:
			d = event.W(item, data.NewInt(int64(rng.Intn(10))))
		case 2:
			d = event.Ws(item, data.NullValue, data.NullValue) // delete
		case 3:
			d = event.N(item, data.NewInt(int64(rng.Intn(10))))
		default:
			d = event.WR(item, data.NewInt(int64(rng.Intn(10))))
		}
		when := at(i)
		versioned.Append(&event.Event{Time: when, Site: "A", Desc: d})
		cloning.Append(&event.Event{Time: when, Site: "A", Desc: d})
	}
	return versioned, cloning
}

// TestVersionedMatchesCloning drives both representations through the
// same execution and demands identical answers from every read API: the
// lazy Old/New views, StateAt, Timeline, Writes and Final.
func TestVersionedMatchesCloning(t *testing.T) {
	const n = 200
	v, c := buildPair(1996, n)
	ve, ce := v.Events(), c.Events()
	if len(ve) != n || len(ce) != n {
		t.Fatalf("lengths %d, %d", len(ve), len(ce))
	}
	for i := range ve {
		if !ve[i].Old().Equal(ce[i].Old()) {
			t.Fatalf("event %d: Old %s (versioned) != %s (cloning)", i, ve[i].Old(), ce[i].Old())
		}
		if !ve[i].New().Equal(ce[i].New()) {
			t.Fatalf("event %d: New %s (versioned) != %s (cloning)", i, ve[i].New(), ce[i].New())
		}
	}
	for s := -1; s <= n; s += 7 {
		if got, want := v.StateAt(at(s)), c.StateAt(at(s)); !got.Equal(want) {
			t.Fatalf("StateAt(%d): %s != %s", s, got, want)
		}
	}
	for _, item := range []data.ItemName{data.Item("X"), data.Item("Y"), data.Item("Z"), data.Item("emp.42"), data.Item("untouched")} {
		vt, ct := v.Timeline(item), c.Timeline(item)
		if len(vt) != len(ct) {
			t.Fatalf("Timeline(%s): %d samples != %d", item, len(vt), len(ct))
		}
		for i := range vt {
			if !vt[i].V.Equal(ct[i].V) || vt[i].Seq != ct[i].Seq {
				t.Fatalf("Timeline(%s)[%d]: %+v != %+v", item, i, vt[i], ct[i])
			}
		}
		if len(v.Writes(item)) != len(c.Writes(item)) {
			t.Fatalf("Writes(%s) lengths differ", item)
		}
	}
	if !v.Final().Equal(c.Final()) {
		t.Fatalf("Final: %s != %s", v.Final(), c.Final())
	}
}

// TestVersionedCheckerEquivalence runs the Appendix A.2 checker over both
// representations of the same valid execution and of the same corrupted
// one, demanding identical verdicts.
func TestVersionedCheckerEquivalence(t *testing.T) {
	v, c := buildPair(42, 150)
	ck := NewChecker(nil)
	if vv, cv := ck.Check(v), ck.Check(c); len(vv) != len(cv) {
		t.Fatalf("valid trace: %d violations (versioned) vs %d (cloning): %v / %v", len(vv), len(cv), vv, cv)
	}
	// Corrupt the same event in both: eager states override the source.
	for _, tr := range []*Trace{v, c} {
		e := tr.Events()[10]
		e.SetStates(e.Old(), e.New().With(data.Item("ghost"), data.NewInt(99)))
	}
	vv, cv := ck.Check(v), ck.Check(c)
	if len(vv) == 0 || len(cv) == 0 {
		t.Fatalf("corruption undetected: versioned=%v cloning=%v", vv, cv)
	}
	if len(vv) != len(cv) {
		t.Fatalf("corrupted trace: %d violations (versioned) vs %d (cloning)", len(vv), len(cv))
	}
}

// TestEventsSnapshotIsStable verifies the zero-copy Events snapshot:
// appending to the returned slice must not clobber events recorded after
// the snapshot was taken (the capacity cap forces a reallocation).
func TestEventsSnapshotIsStable(t *testing.T) {
	tr := New(nil)
	spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	snap := tr.Events()
	later := spontaneousWrite(tr, at(1), "A", itemY, data.NewInt(2))
	bogus := &event.Event{Time: at(9), Site: "Z", Desc: event.N(itemX, data.NewInt(0))}
	_ = append(snap, bogus)
	if got := tr.Events()[1]; got != later {
		t.Fatalf("append through snapshot clobbered the trace: got %v", got)
	}
}

// TestTraceConcurrentAccess hammers one trace from concurrent appenders
// and readers — the shape multiple shells sharing a trace produce.  Run
// under -race this validates the versioned store's locking.
func TestTraceConcurrentAccess(t *testing.T) {
	tr := New(data.Interpretation{"X": data.NewInt(0)})
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			item := data.Item(fmt.Sprintf("it%d", w))
			for i := 0; i < perWriter; i++ {
				e := tr.Append(&event.Event{Time: at(i), Site: "A", Desc: event.Ws(item, data.NullValue, data.NewInt(int64(i)))})
				_ = e.New() // exercise the lazy view concurrently with appends
			}
		}(w)
	}
	ck := NewChecker(nil)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = tr.StateAt(at(i))
				_ = tr.Timeline(data.Item("it0"))
				_ = tr.Final()
				_ = ck.checkProvenance(tr.Events())
			}
		}()
	}
	wg.Wait()
	if tr.Len() != writers*perWriter {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The full checker needs a time-ordered trace; here we only assert the
	// per-writer timelines survived the contention intact.
	for w := 0; w < writers; w++ {
		if got := len(tr.Writes(data.Item(fmt.Sprintf("it%d", w)))); got != perWriter {
			t.Fatalf("writer %d recorded %d writes", w, got)
		}
	}
	_ = tr.String()
	var zero time.Time
	if tr.End().Equal(zero) {
		t.Fatal("End is zero on a non-empty trace")
	}
}
