package trace

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// writeN appends n spontaneous writes round-robin over the given items,
// one second apart starting at second start, and returns the appended
// events.
func writeN(tr *Trace, items []data.ItemName, start, n int) []*event.Event {
	out := make([]*event.Event, 0, n)
	for i := 0; i < n; i++ {
		item := items[i%len(items)]
		out = append(out, spontaneousWrite(tr, at(start+i), "A", item, data.NewInt(int64(i))))
	}
	return out
}

func compactItems(n int) []data.ItemName {
	out := make([]data.ItemName, n)
	for i := range out {
		out[i] = data.Item(fmt.Sprintf("C%d", i))
	}
	return out
}

// TestCompactPreservesRetainedViews folds a prefix away and checks that
// every read API answers identically to an uncompacted control for the
// retained suffix — on the sharded, single-shard, and legacy cloning
// stores alike (the NewCloning path shares the retention accounting).
func TestCompactPreservesRetainedViews(t *testing.T) {
	stores := map[string]func() *Trace{
		"sharded": func() *Trace { return NewSharded(data.Interpretation{"Init": data.NewInt(7)}, 4) },
		"single":  func() *Trace { return New(data.Interpretation{"Init": data.NewInt(7)}) },
		"cloning": func() *Trace { return NewCloning(data.Interpretation{"Init": data.NewInt(7)}) },
	}
	items := compactItems(5)
	for name, mk := range stores {
		t.Run(name, func(t *testing.T) {
			tr, ctl := mk(), mk()
			writeN(tr, items, 1, 200)
			writeN(ctl, items, 1, 200)

			stats := tr.CompactBefore(at(100), 10*time.Second)
			if stats.PrunedEvents == 0 || stats.PrunedBytes == 0 {
				t.Fatalf("nothing pruned: %+v", stats)
			}
			if got, want := stats.PrunedEvents+stats.Retained, 200; got != want {
				t.Fatalf("pruned %d + retained %d != %d", stats.PrunedEvents, stats.Retained, want)
			}
			if tr.Len() != stats.Retained {
				t.Fatalf("Len %d != retained %d", tr.Len(), stats.Retained)
			}
			if pe, _ := tr.Pruned(); tr.TotalEvents() != 200 || pe != uint64(stats.PrunedEvents) {
				t.Fatalf("TotalEvents %d, pruned %d", tr.TotalEvents(), pe)
			}
			if tr.BaseSeq() != stats.CutSeq || tr.BaseSeq() == 0 {
				t.Fatalf("BaseSeq %d, cut %d", tr.BaseSeq(), stats.CutSeq)
			}
			if tr.BaseTime().IsZero() || !tr.BaseTime().Before(at(100)) {
				t.Fatalf("BaseTime %v", tr.BaseTime())
			}

			// Every pruned event carried Time < horizon and every retained
			// one a seq at or after the cut.
			for _, e := range tr.Events() {
				if e.Seq < stats.CutSeq {
					t.Fatalf("retained event below cut: %v", e)
				}
			}
			if !tr.Final().Equal(ctl.Final()) {
				t.Fatalf("Final diverged: %s vs %s", tr.Final(), ctl.Final())
			}
			// Initial() is now the folded base: control's state just before
			// the cut.
			if want := ctl.StateBefore(stats.CutSeq); !tr.Initial().Equal(want) {
				t.Fatalf("Initial %s, want folded %s", tr.Initial(), want)
			}
			// Retained-suffix views agree with the control everywhere at or
			// after the cut.
			for seq := stats.CutSeq; seq < 200; seq++ {
				if !tr.StateBefore(seq).Equal(ctl.StateBefore(seq)) {
					t.Fatalf("StateBefore(%d) diverged", seq)
				}
				if !tr.StateAfter(seq).Equal(ctl.StateAfter(seq)) {
					t.Fatalf("StateAfter(%d) diverged", seq)
				}
			}
			// Timelines: retained samples identical; the head sample holds
			// the folded value.
			for _, item := range items {
				got, want := tr.Timeline(item), ctl.Timeline(item)
				if len(got) == 0 || len(want) < len(got) {
					t.Fatalf("timeline %s: %d vs %d samples", item, len(got), len(want))
				}
				tail := want[len(want)-(len(got)-1):]
				for i, s := range got[1:] {
					if s.Seq != tail[i].Seq || !s.V.Equal(tail[i].V) {
						t.Fatalf("timeline %s sample %d diverged", item, i)
					}
				}
			}
			// Appending after a fold keeps working, and a second fold makes
			// progress from the new history.
			writeN(tr, items, 300, 50)
			writeN(ctl, items, 300, 50)
			if !tr.Final().Equal(ctl.Final()) {
				t.Fatal("Final diverged after post-fold appends")
			}
			again := tr.CompactBefore(at(320), 5*time.Second)
			if again.PrunedEvents == 0 {
				t.Fatalf("second fold pruned nothing: %+v", again)
			}
			if !tr.Final().Equal(ctl.Final()) {
				t.Fatal("Final diverged after second fold")
			}
		})
	}
}

// TestCompactNoopBelowBase re-folding at or before the current base
// does nothing.
func TestCompactNoopBelowBase(t *testing.T) {
	tr := New(nil)
	items := compactItems(3)
	writeN(tr, items, 1, 50)
	first := tr.CompactBefore(at(40), 0)
	if first.PrunedEvents == 0 {
		t.Fatalf("first fold pruned nothing")
	}
	second := tr.CompactBefore(at(10), 0)
	if second.PrunedEvents != 0 || second.CutSeq != first.CutSeq {
		t.Fatalf("re-fold moved the cut: %+v vs %+v", second, first)
	}
	if tr.Len() != first.Retained {
		t.Fatalf("no-op fold changed retention: %d vs %d", tr.Len(), first.Retained)
	}
}

// TestCompactMaterializesHeldTriggers a retained effect whose trigger
// falls inside the fold must still answer provenance queries: the fold
// materializes eager views on hold-band events and severs their own
// trigger chains.
func TestCompactMaterializesHeldTriggers(t *testing.T) {
	tr := New(nil)
	old := spontaneousWrite(tr, at(1), "A", itemX, data.NewInt(1))
	trig := generated(tr, at(50), "A", event.W(itemX, data.NewInt(2)), "r0", old)
	eff := generated(tr, at(52), "B", event.W(itemY, data.NewInt(2)), "r1", trig)

	stats := tr.CompactBefore(at(51), 5*time.Second)
	if stats.PrunedEvents != 2 {
		t.Fatalf("pruned %d, want 2", stats.PrunedEvents)
	}
	if !trig.HasEagerStates() {
		t.Fatal("hold-band trigger was not materialized")
	}
	if got := eff.Trigger.New().Get(itemX); !got.Equal(data.NewInt(2)) {
		t.Fatalf("trigger New view = %s", got)
	}
	if got := eff.Trigger.Old().Get(itemX); !got.Equal(data.NewInt(1)) {
		t.Fatalf("trigger Old view = %s", got)
	}
	if trig.Trigger != nil {
		t.Fatal("folded trigger still pins its own trigger chain")
	}
}

// TestCompactConcurrentAppends folds repeatedly while writers append,
// then checks the union of folded base and retained events equals the
// control (run under -race in CI).
func TestCompactConcurrentAppends(t *testing.T) {
	tr := NewSharded(nil, 4)
	items := compactItems(8)
	var compactor, writersWG sync.WaitGroup
	stop := make(chan struct{})
	compactor.Add(1)
	go func() {
		defer compactor.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.CompactBefore(at(rng.Intn(400)), 2*time.Second)
		}
	}()
	const writers, per = 4, 200
	writersWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < per; i++ {
				spontaneousWrite(tr, at(i), "A", items[(w+i)%len(items)], data.NewInt(int64(w*per+i)))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	compactor.Wait()
	if got := tr.TotalEvents(); got != writers*per {
		t.Fatalf("TotalEvents %d, want %d", got, writers*per)
	}
	if tr.Len()+int(func() uint64 { n, _ := tr.Pruned(); return n }()) != writers*per {
		t.Fatal("retained + pruned != appended")
	}
}

// TestCheckpointRestoreRoundTrip a restored trace resumes sequence
// numbering past the checkpoint and reports the checkpointed state as
// its base.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	tr := New(data.Interpretation{"Init": data.NewInt(7)})
	items := compactItems(4)
	writeN(tr, items, 1, 120)
	tr.CompactBefore(at(100), 0)
	cs := tr.Checkpoint()
	if cs.NextSeq != 120 || cs.PrunedEvents != 120 {
		t.Fatalf("checkpoint %+v", cs)
	}
	if cs.BaseTime.IsZero() {
		t.Fatal("checkpoint BaseTime unset")
	}

	fresh := New(nil)
	if err := fresh.Restore(cs); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !fresh.Initial().Equal(tr.Final()) || !fresh.Final().Equal(tr.Final()) {
		t.Fatalf("restored base %s, want %s", fresh.Initial(), tr.Final())
	}
	if fresh.BaseSeq() != 120 || fresh.TotalEvents() != 120 {
		t.Fatalf("restored accounting: base %d total %d", fresh.BaseSeq(), fresh.TotalEvents())
	}
	e := spontaneousWrite(fresh, at(200), "A", items[0], data.NewInt(999))
	if e.Seq != 120 {
		t.Fatalf("post-restore seq %d, want 120", e.Seq)
	}
	if !fresh.Final().Get(items[0]).Equal(data.NewInt(999)) {
		t.Fatal("post-restore append lost")
	}

	// Restoring into a non-empty trace must fail.
	if err := fresh.Restore(cs); err == nil {
		t.Fatal("Restore into non-empty trace succeeded")
	}
}
