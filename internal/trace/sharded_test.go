package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// TestShardedMatchesSerialTrace drives the same single-threaded event
// stream into a 1-shard and an 8-shard trace and asserts every read API
// observes the same execution: sharding is a storage layout, not a
// semantic change.
func TestShardedMatchesSerialTrace(t *testing.T) {
	initial := data.NewInterpretation()
	for i := 0; i < 8; i++ {
		initial.Set(data.Item(fmt.Sprintf("X%d", i)), data.NewInt(0))
	}
	serial := New(initial)
	sharded := NewSharded(initial, 8)
	if got := sharded.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}

	epoch := time.Unix(0, 0)
	feed := func(tr *Trace) {
		for e := 0; e < 200; e++ {
			base := fmt.Sprintf("X%d", e%8)
			tr.Append(&event.Event{
				Time: epoch.Add(time.Duration(e) * time.Millisecond),
				Site: "S",
				Desc: event.Desc{Op: event.OpWs, Item: data.Item(base), Val: data.NewInt(int64(e))},
			})
		}
	}
	feed(serial)
	feed(sharded)

	if serial.Len() != sharded.Len() {
		t.Fatalf("Len: serial %d, sharded %d", serial.Len(), sharded.Len())
	}
	se, pe := serial.Events(), sharded.Events()
	for i := range se {
		if se[i].Seq != pe[i].Seq || se[i].String() != pe[i].String() {
			t.Fatalf("event %d differs:\n  serial  %s\n  sharded %s", i, se[i], pe[i])
		}
	}
	for i := 0; i < 8; i++ {
		item := data.Item(fmt.Sprintf("X%d", i))
		st, sh := serial.Timeline(item), sharded.Timeline(item)
		if len(st) != len(sh) {
			t.Fatalf("timeline %s: serial %d samples, sharded %d", item, len(st), len(sh))
		}
		for j := range st {
			if st[j].Seq != sh[j].Seq || !st[j].V.Equal(sh[j].V) {
				t.Fatalf("timeline %s sample %d differs", item, j)
			}
		}
		if len(serial.Writes(item)) != len(sharded.Writes(item)) {
			t.Fatalf("writes %s differ", item)
		}
	}
	if s, p := fmt.Sprint(serial.Final()), fmt.Sprint(sharded.Final()); s != p {
		t.Fatalf("Final differs:\n  serial  %s\n  sharded %s", s, p)
	}
	for _, seq := range []uint64{0, 7, 99, 199} {
		se, pe := serial.Find(seq), sharded.Find(seq)
		if se == nil || pe == nil || se.String() != pe.String() {
			t.Fatalf("Find(%d) differs", seq)
		}
		if s, p := fmt.Sprint(serial.StateAfter(seq)), fmt.Sprint(sharded.StateAfter(seq)); s != p {
			t.Fatalf("StateAfter(%d) differs", seq)
		}
	}
	if !serial.End().Equal(sharded.End()) {
		t.Fatalf("End differs: %v vs %v", serial.End(), sharded.End())
	}
}

// TestAppendUnitAtomicity commits units concurrently and asserts each
// unit's events hold one contiguous block of sequence numbers, a single
// timestamp, and that the post-commit hooks ran in seq order — the three
// invariants the parallel shell engine's ordering argument rests on.
func TestAppendUnitAtomicity(t *testing.T) {
	tr := NewSharded(nil, 4)
	clk := time.Unix(0, 0)
	var clkMu sync.Mutex
	now := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		clk = clk.Add(time.Microsecond)
		return clk
	}

	const units, perUnit = 64, 5
	var orderMu sync.Mutex
	var commitOrder [][]*event.Event
	var wg sync.WaitGroup
	for u := 0; u < units; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			evs := make([]*event.Event, perUnit)
			for i := range evs {
				base := fmt.Sprintf("B%d", (u+i)%7)
				evs[i] = &event.Event{
					Site: "S",
					Desc: event.Desc{Op: event.OpW, Item: data.Item(base), Val: data.NewInt(int64(u*perUnit + i))},
				}
			}
			tr.AppendUnit(evs, now, func() {
				orderMu.Lock()
				commitOrder = append(commitOrder, evs)
				orderMu.Unlock()
			})
		}(u)
	}
	wg.Wait()

	if got := tr.Len(); got != units*perUnit {
		t.Fatalf("Len = %d, want %d", got, units*perUnit)
	}
	var prevLast uint64
	for i, evs := range commitOrder {
		for j, e := range evs {
			if j > 0 && e.Seq != evs[j-1].Seq+1 {
				t.Fatalf("unit %d: non-contiguous seqs %d then %d", i, evs[j-1].Seq, e.Seq)
			}
			if !e.Time.Equal(evs[0].Time) {
				t.Fatalf("unit %d: events stamped with different times", i)
			}
		}
		if i > 0 && evs[0].Seq != prevLast+1 {
			t.Fatalf("commit order does not match seq order: unit %d starts at %d after %d",
				i, evs[0].Seq, prevLast)
		}
		prevLast = evs[perUnit-1].Seq
	}
	// Times must be non-decreasing in seq order (checker property 1).
	all := tr.Events()
	for i := 1; i < len(all); i++ {
		if all[i].Time.Before(all[i-1].Time) {
			t.Fatalf("time regressed at seq %d", all[i].Seq)
		}
	}
}

// TestShardedConcurrentAppend hammers Append from many goroutines; run
// under -race this is the memory-safety check for the lock striping.
func TestShardedConcurrentAppend(t *testing.T) {
	tr := NewSharded(nil, 8)
	var wg sync.WaitGroup
	const gs, per = 16, 250
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := fmt.Sprintf("X%d", g%5)
			for i := 0; i < per; i++ {
				tr.Append(&event.Event{
					Site: "S",
					Desc: event.Desc{Op: event.OpW, Item: data.Item(base), Val: data.NewInt(int64(g*per + i))},
				})
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != gs*per {
		t.Fatalf("Len = %d, want %d", got, gs*per)
	}
	evs := tr.Events()
	for i := range evs {
		if evs[i].Seq != uint64(i) {
			t.Fatalf("Events not seq-ordered at %d: seq %d", i, evs[i].Seq)
		}
	}
}
