package trace

import (
	"fmt"
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// BenchmarkTraceAppend measures the per-event cost of recording a write
// as the interpretation grows.  The versioned store appends in O(1)
// regardless of item count; the legacy cloning store clones the full
// interpretation per write, so its cost (and B/op) scales with items.
func BenchmarkTraceAppend(b *testing.B) {
	for _, items := range []int{16, 512} {
		initial := data.NewInterpretation()
		names := make([]data.ItemName, items)
		for i := 0; i < items; i++ {
			names[i] = data.Item(fmt.Sprintf("X%d", i))
			initial.Set(names[i], data.NewInt(0))
		}
		for _, mode := range []string{"versioned", "cloning"} {
			b.Run(fmt.Sprintf("%s/items=%d", mode, items), func(b *testing.B) {
				var tr *Trace
				if mode == "cloning" {
					tr = NewCloning(initial)
				} else {
					tr = New(initial)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Append(&event.Event{
						Time: at(i), Site: "A",
						Desc: event.W(names[i%items], data.NewInt(int64(i))),
					})
				}
			})
		}
	}
}

// BenchmarkTraceCompact measures the amortized cost of folding: a
// steady-state loop appends a batch of writes and then folds everything
// older than a fixed window, so each event is appended once and pruned
// once.  Reported per event, it is the overhead bounded-memory
// operation adds to the recording hot path.
func BenchmarkTraceCompact(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tr := NewSharded(nil, shards)
			names := make([]data.ItemName, 32)
			for i := range names {
				names[i] = data.Item(fmt.Sprintf("X%d", i))
			}
			const batch = 1024
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Append(&event.Event{
					Time: at(i), Site: "A",
					Desc: event.W(names[i%len(names)], data.NewInt(int64(i))),
				})
				if i%batch == batch-1 {
					tr.CompactBefore(at(i-batch/2), 0)
				}
			}
			b.StopTimer()
			if pe, _ := tr.Pruned(); b.N > 2*batch && pe == 0 {
				b.Fatal("compaction never pruned")
			}
		})
	}
}
