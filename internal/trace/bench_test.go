package trace

import (
	"fmt"
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/event"
)

// BenchmarkTraceAppend measures the per-event cost of recording a write
// as the interpretation grows.  The versioned store appends in O(1)
// regardless of item count; the legacy cloning store clones the full
// interpretation per write, so its cost (and B/op) scales with items.
func BenchmarkTraceAppend(b *testing.B) {
	for _, items := range []int{16, 512} {
		initial := data.NewInterpretation()
		names := make([]data.ItemName, items)
		for i := 0; i < items; i++ {
			names[i] = data.Item(fmt.Sprintf("X%d", i))
			initial.Set(names[i], data.NewInt(0))
		}
		for _, mode := range []string{"versioned", "cloning"} {
			b.Run(fmt.Sprintf("%s/items=%d", mode, items), func(b *testing.B) {
				var tr *Trace
				if mode == "cloning" {
					tr = NewCloning(initial)
				} else {
					tr = New(initial)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Append(&event.Event{
						Time: at(i), Site: "A",
						Desc: event.W(names[i%items], data.NewInt(int64(i))),
					})
				}
			})
		}
	}
}
