package trace

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

var (
	itemX = data.Item("X")
	itemY = data.Item("Y")
)

func at(s int) time.Time { return vclock.Epoch.Add(time.Duration(s) * time.Second) }

func spontaneousWrite(t *Trace, when time.Time, site string, item data.ItemName, v data.Value) *event.Event {
	return t.Append(&event.Event{
		Time: when,
		Site: site,
		Desc: event.Ws(item, data.NullValue, v),
	})
}

func generated(t *Trace, when time.Time, site string, d event.Desc, ruleID string, trig *event.Event) *event.Event {
	return t.Append(&event.Event{Time: when, Site: site, Desc: d, Rule: ruleID, Trigger: trig})
}

func mustRule(t *testing.T, src string) rule.Rule {
	t.Helper()
	r, err := rule.ParseRule(src)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", src, err)
	}
	return r
}

func TestAppendMaintainsInterpretations(t *testing.T) {
	tr := New(nil)
	e1 := spontaneousWrite(tr, at(1), "A", itemX, data.NewInt(5))
	if !e1.Old().Equal(data.Interpretation{}) {
		t.Fatalf("e1.Old = %s", e1.Old())
	}
	if !e1.New().Get(itemX).Equal(data.NewInt(5)) {
		t.Fatalf("e1.New = %s", e1.New())
	}
	// A non-write event leaves the state unchanged.
	e2 := tr.Append(&event.Event{Time: at(2), Site: "A", Desc: event.N(itemX, data.NewInt(5))})
	if !e2.Old().Equal(e2.New()) {
		t.Fatal("notification changed the state")
	}
	if e1.Seq != 0 || e2.Seq != 1 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestStateAtAndTimeline(t *testing.T) {
	init := data.Interpretation{"X": data.NewInt(1)}
	tr := New(init)
	spontaneousWrite(tr, at(10), "A", itemX, data.NewInt(2))
	spontaneousWrite(tr, at(20), "A", itemX, data.NewInt(3))
	if got := tr.StateAt(at(5)).Get(itemX); !got.Equal(data.NewInt(1)) {
		t.Fatalf("StateAt(5) X = %s", got)
	}
	if got := tr.StateAt(at(10)).Get(itemX); !got.Equal(data.NewInt(2)) {
		t.Fatalf("StateAt(10) X = %s", got)
	}
	if got := tr.StateAt(at(25)).Get(itemX); !got.Equal(data.NewInt(3)) {
		t.Fatalf("StateAt(25) X = %s", got)
	}
	tl := tr.Timeline(itemX)
	if len(tl) != 3 {
		t.Fatalf("timeline = %v", tl)
	}
	want := []int64{1, 2, 3}
	for i, s := range tl {
		if !s.V.Equal(data.NewInt(want[i])) {
			t.Fatalf("timeline[%d] = %s, want %d", i, s.V, want[i])
		}
	}
	// Timeline collapses repeated values.
	spontaneousWrite(tr, at(30), "A", itemX, data.NewInt(3))
	if got := len(tr.Timeline(itemX)); got != 3 {
		t.Fatalf("timeline after duplicate write = %d entries", got)
	}
}

func TestWritesAndMatching(t *testing.T) {
	tr := New(nil)
	spontaneousWrite(tr, at(1), "A", itemX, data.NewInt(1))
	spontaneousWrite(tr, at(2), "B", itemY, data.NewInt(2))
	tr.Append(&event.Event{Time: at(3), Site: "A", Desc: event.N(itemX, data.NewInt(1))})
	if got := len(tr.Writes(itemX)); got != 1 {
		t.Fatalf("Writes(X) = %d", got)
	}
	tpl, err := rule.ParseTemplate("Ws(X, b)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Matching(tpl)); got != 1 {
		t.Fatalf("Matching(Ws(X,b)) = %d", got)
	}
	if !tr.End().Equal(at(3)) {
		t.Fatalf("End = %v", tr.End())
	}
}

// validPropagationTrace builds the paper's Section 4.2 flow: spontaneous
// write at A, notification (notify interface), write request at B
// (strategy), performed write at B (write interface).
func validPropagationTrace(t *testing.T) (*Trace, *Checker) {
	t.Helper()
	notify := mustRule(t, "notif: Ws(X, b) ->2s N(X, b)")
	strat := mustRule(t, "prop: N(X, b) ->5s WR(Y, b)")
	write := mustRule(t, "wr: WR(Y, b) ->3s W(Y, b)")
	tr := New(nil)
	ws := spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(7))
	n := generated(tr, at(1), "A", event.N(itemX, data.NewInt(7)), "notif", ws)
	wr := generated(tr, at(3), "B", event.WR(itemY, data.NewInt(7)), "prop", n)
	generated(tr, at(5), "B", event.W(itemY, data.NewInt(7)), "wr", wr)
	return tr, NewChecker([]rule.Rule{notify, strat, write})
}

func TestCheckValidExecution(t *testing.T) {
	tr, ck := validPropagationTrace(t)
	if vs := ck.Check(tr); len(vs) != 0 {
		t.Fatalf("violations on valid trace: %v", vs)
	}
}

func TestCheckDetectsTimeDisorder(t *testing.T) {
	tr := New(nil)
	spontaneousWrite(tr, at(5), "A", itemX, data.NewInt(1))
	spontaneousWrite(tr, at(3), "A", itemX, data.NewInt(2))
	vs := NewChecker(nil).Check(tr)
	if !hasProperty(vs, 1) {
		t.Fatalf("no property-1 violation: %v", vs)
	}
}

func TestCheckDetectsBadInterpretation(t *testing.T) {
	tr := New(nil)
	e := spontaneousWrite(tr, at(1), "A", itemX, data.NewInt(1))
	// Corrupt the new interpretation after the fact: eager states override
	// the trace's lazy source, exactly as the old mutable fields did.
	e.SetStates(e.Old(), e.New().With(itemY, data.NewInt(99)))
	vs := NewChecker(nil).Check(tr)
	if !hasProperty(vs, 2) && !hasProperty(vs, 3) {
		t.Fatalf("no property-2/3 violation: %v", vs)
	}
}

func TestCheckDetectsHalfProvenance(t *testing.T) {
	tr := New(nil)
	tr.Append(&event.Event{Time: at(1), Site: "A", Desc: event.N(itemX, data.NewInt(1)), Rule: "r"})
	vs := NewChecker(nil).Check(tr)
	if !hasProperty(vs, 4) {
		t.Fatalf("no property-4 violation: %v", vs)
	}
}

func TestCheckDetectsUnknownRule(t *testing.T) {
	tr := New(nil)
	ws := spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	generated(tr, at(1), "A", event.N(itemX, data.NewInt(1)), "ghost", ws)
	vs := NewChecker(nil).Check(tr)
	if !hasProperty(vs, 5) {
		t.Fatalf("no property-5 violation: %v", vs)
	}
}

func TestCheckDetectsWrongInstantiation(t *testing.T) {
	notify := mustRule(t, "notif: Ws(X, b) ->2s N(X, b)")
	tr := New(nil)
	ws := spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	// Notification carries the wrong value: not an instantiation.
	generated(tr, at(1), "A", event.N(itemX, data.NewInt(9)), "notif", ws)
	vs := NewChecker([]rule.Rule{notify}).Check(tr)
	if !hasProperty(vs, 5) {
		t.Fatalf("no property-5 violation: %v", vs)
	}
}

func TestCheckDetectsLateFiring(t *testing.T) {
	notify := mustRule(t, "notif: Ws(X, b) ->2s N(X, b)")
	tr := New(nil)
	ws := spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	generated(tr, at(10), "A", event.N(itemX, data.NewInt(1)), "notif", ws)
	vs := NewChecker([]rule.Rule{notify}).Check(tr)
	foundMetric := false
	for _, v := range vs {
		if v.Metric {
			foundMetric = true
		}
	}
	if !foundMetric {
		t.Fatalf("no metric violation: %v", vs)
	}
}

func TestCheckDetectsMissingObligation(t *testing.T) {
	// Notify interface promised but the notification never happened.
	notify := mustRule(t, "notif: Ws(X, b) ->2s N(X, b)")
	tr := New(nil)
	spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	// Horizon must extend past the obligation window.
	spontaneousWrite(tr, at(100), "A", itemY, data.NewInt(1))
	vs := NewChecker([]rule.Rule{notify}).Check(tr)
	if !hasProperty(vs, 6) {
		t.Fatalf("no property-6 violation: %v", vs)
	}
}

func TestCheckObligationWindowStillOpen(t *testing.T) {
	// The trace ends before the notify deadline: no violation yet.
	notify := mustRule(t, "notif: Ws(X, b) ->20s N(X, b)")
	tr := New(nil)
	spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	spontaneousWrite(tr, at(5), "A", itemY, data.NewInt(1))
	vs := NewChecker([]rule.Rule{notify}).Check(tr)
	if len(vs) != 0 {
		t.Fatalf("violations with open window: %v", vs)
	}
}

func TestCheckNoSpontaneousWriteInterface(t *testing.T) {
	// Ws(X, b) -> F : any spontaneous write to X is a violation.
	nospont := mustRule(t, "nospont: Ws(X, b) ->0s F")
	tr := New(nil)
	spontaneousWrite(tr, at(0), "A", itemX, data.NewInt(1))
	spontaneousWrite(tr, at(10), "A", itemY, data.NewInt(2))
	vs := NewChecker([]rule.Rule{nospont}).Check(tr)
	if !hasProperty(vs, 6) {
		t.Fatalf("no property-6 violation for spontaneous write: %v", vs)
	}
	// Writes to Y are not covered by the interface.
	for _, v := range vs {
		if v.Seq != 0 {
			t.Fatalf("violation attributed to wrong event: %v", v)
		}
	}
}

func TestCheckGuardedStepSkipAllowed(t *testing.T) {
	// Cached propagation: guard (Cx != b) false throughout the window, so
	// skipping the WR step is fine.
	strat := mustRule(t, "fwd: N(X, b) ->5s (Cx != b)? WR(Y, b)")
	init := data.Interpretation{"Cx": data.NewInt(7)}
	tr := New(init)
	tr.Append(&event.Event{Time: at(0), Site: "A", Desc: event.N(itemX, data.NewInt(7))})
	spontaneousWrite(tr, at(50), "A", data.Item("Z"), data.NewInt(0)) // horizon
	vs := NewChecker([]rule.Rule{strat}).Check(tr)
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestCheckGuardedStepRequiredWhenGuardTrue(t *testing.T) {
	strat := mustRule(t, "fwd: N(X, b) ->5s (Cx != b)? WR(Y, b)")
	init := data.Interpretation{"Cx": data.NewInt(999)}
	tr := New(init)
	tr.Append(&event.Event{Time: at(0), Site: "A", Desc: event.N(itemX, data.NewInt(7))})
	spontaneousWrite(tr, at(50), "A", data.Item("Z"), data.NewInt(0))
	vs := NewChecker([]rule.Rule{strat}).Check(tr)
	if !hasProperty(vs, 6) {
		t.Fatalf("guard-true skip not detected: %v", vs)
	}
}

func TestCheckInOrderViolation(t *testing.T) {
	strat := mustRule(t, "prop: N(X, b) ->60s WR(Y, b)")
	tr := New(nil)
	n1 := tr.Append(&event.Event{Time: at(0), Site: "A", Desc: event.N(itemX, data.NewInt(1))})
	n2 := tr.Append(&event.Event{Time: at(1), Site: "A", Desc: event.N(itemX, data.NewInt(2))})
	// Deliveries inverted: n2's effect lands before n1's.
	generated(tr, at(2), "B", event.WR(itemY, data.NewInt(2)), "prop", n2)
	generated(tr, at(3), "B", event.WR(itemY, data.NewInt(1)), "prop", n1)
	vs := NewChecker([]rule.Rule{strat}).Check(tr)
	if !hasProperty(vs, 7) {
		t.Fatalf("no property-7 violation: %v", vs)
	}
}

func TestCheckInOrderOK(t *testing.T) {
	strat := mustRule(t, "prop: N(X, b) ->60s WR(Y, b)")
	tr := New(nil)
	n1 := tr.Append(&event.Event{Time: at(0), Site: "A", Desc: event.N(itemX, data.NewInt(1))})
	n2 := tr.Append(&event.Event{Time: at(1), Site: "A", Desc: event.N(itemX, data.NewInt(2))})
	generated(tr, at(2), "B", event.WR(itemY, data.NewInt(1)), "prop", n1)
	generated(tr, at(3), "B", event.WR(itemY, data.NewInt(2)), "prop", n2)
	vs := NewChecker([]rule.Rule{strat}).Check(tr)
	for _, v := range vs {
		if v.Property == 7 {
			t.Fatalf("spurious property-7 violation: %v", v)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: 6, Metric: true, Seq: 3, Msg: "late"}
	if s := v.String(); s == "" {
		t.Fatal("empty violation string")
	}
	v2 := Violation{Property: 1, Seq: 0, Msg: "x"}
	if v2.String() == v.String() {
		t.Fatal("indistinct violation strings")
	}
}

func TestTraceStringNonEmpty(t *testing.T) {
	tr, _ := validPropagationTrace(t)
	if tr.String() == "" {
		t.Fatal("empty trace string")
	}
}

func hasProperty(vs []Violation, p int) bool {
	for _, v := range vs {
		if v.Property == p {
			return true
		}
	}
	return false
}
