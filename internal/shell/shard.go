// Sharded (fleet) operation.  A shell constructed with Options.Router
// resolves rule ownership and fire targets through a fleet route table
// instead of the static site→shell map: the shell owning a rule's
// anchor base (its LHS base; first sited effect base for P rules) owns
// the rule, external triggers arriving at a non-owner are forwarded to
// the current owner as "fleet-trigger" messages, and inbound fires for
// bases this shell no longer owns — the in-flight tail of a rebalance,
// stamped with a stale route-table epoch — are re-forwarded with a hop
// cap.  Bases absent from the table fall back to static site routing,
// so a deployment can shard its CM-private constraint state while
// translator-backed sites stay pinned.  DESIGN.md §10 documents the
// model; package fleet builds the tables.

package shell

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/event"
	"cmtk/internal/rule"
	"cmtk/internal/transport"
)

// ShardRouter is the shell's view of a fleet route table
// (fleet.Router implements it).  OwnerOf resolves an item base to the
// shell currently owning it; Epoch stamps outbound messages so
// receivers can spot in-flight traffic from before a rebalance;
// Forwarded and Stale are metric hooks for the re-routing paths.
type ShardRouter interface {
	OwnerOf(base string) (owner string, ok bool)
	Epoch() uint64
	Forwarded(kind string)
	Stale()
}

// maxShardHops caps forwarding chains: a message re-routed this many
// times is dropped as a logical failure instead of orbiting a fleet
// whose members hold mutually stale tables.
const maxShardHops = 8

// ruleAnchor is the base whose owner owns the rule: the LHS item base,
// or the first sited effect base for item-less periodic rules.
func ruleAnchor(r *rule.Rule) (string, bool) {
	if r.LHS.Op.HasItem() {
		return r.LHS.Item.Base, true
	}
	if r.LHS.Op == event.OpP {
		for _, st := range r.Steps {
			if st.Eff.Op.HasItem() {
				return st.Eff.Item.Base, true
			}
		}
	}
	return "", false
}

// effectBase is the base whose owner executes the rule's RHS (all of a
// rule's effects resolve to one owner — the fleet assignment co-locates
// them by affinity, mirroring Appendix A.1's one-site RHS restriction).
func effectBase(r *rule.Rule) (string, bool) {
	for _, st := range r.Steps {
		if st.Eff.Op.HasItem() {
			return st.Eff.Item.Base, true
		}
	}
	return "", false
}

// shardOwner resolves a base through the route table; ok is false in
// static deployments and for bases outside the table.
func (s *Shell) shardOwner(base string) (string, bool) {
	if s.opts.Router == nil {
		return "", false
	}
	return s.opts.Router.OwnerOf(base)
}

// noteStaleEpoch counts an inbound message stamped before the installed
// table — the in-flight tail of a rebalance.
func (s *Shell) noteStaleEpoch(m *transport.Message) {
	if s.opts.Router != nil && m.Epoch != 0 && m.Epoch < s.opts.Router.Epoch() {
		s.opts.Router.Stale()
	}
}

// forwardShard re-routes an inbound message toward the base's current
// owner, restamping it with the local epoch and bumping the hop count.
// kind is "fire" or "trigger" (the forwards metric label).
func (s *Shell) forwardShard(m transport.Message, owner, kind string) {
	hops := 0
	if m.Payload != nil {
		hops, _ = strconv.Atoi(m.Payload["fleet-hops"])
	}
	if hops >= maxShardHops {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "forward", Err: fmt.Errorf("%s message dropped after %d forwarding hops (owner %s)", kind, hops, owner),
		}, true)
		return
	}
	if s.ep == nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "forward", Err: fmt.Errorf("shell %s has no transport to forward %s to %s", s.id, kind, owner),
		}, true)
		return
	}
	// The payload may be shared with the sender's in-process message;
	// clone before stamping the hop count.
	np := make(map[string]string, len(m.Payload)+1)
	for k, v := range m.Payload {
		np[k] = v
	}
	np["fleet-hops"] = strconv.Itoa(hops + 1)
	m.Payload = np
	m.Epoch = s.opts.Router.Epoch()
	s.opts.Router.Forwarded(kind)
	if err := s.ep.Send(owner, m); err != nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailMetric, Site: s.id, When: s.clock.Now(),
			Op: "forward", Err: fmt.Errorf("forwarding %s to %s: %w", kind, owner, err),
		}, true)
	}
}

// forwardTrigger ships an external trigger (spontaneous update,
// translator notification, write request) to the base's owner as a
// "fleet-trigger" message.  Values travel as literal encodings; the
// owner replays the trigger through the same local path the original
// shell would have used.
func (s *Shell) forwardTrigger(op, site string, item data.ItemName, old, new data.Value, owner string) {
	m := transport.Message{
		Kind: "fleet-trigger",
		Payload: map[string]string{
			"op":   op,
			"item": item.String(),
			"old":  old.String(),
			"new":  new.String(),
		},
	}
	if site != "" {
		m.Payload["site"] = site
	}
	if s.opts.Router != nil {
		m.Epoch = s.opts.Router.Epoch()
	}
	s.opts.Router.Forwarded("trigger")
	if s.ep == nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "forward", Err: fmt.Errorf("shell %s has no transport to forward trigger for %s to %s", s.id, item, owner),
		}, true)
		return
	}
	if err := s.ep.Send(owner, m); err != nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailMetric, Site: s.id, When: s.clock.Now(),
			Op: "forward", Err: fmt.Errorf("forwarding trigger for %s to %s: %w", item, owner, err),
		}, true)
	}
}

// receiveTrigger handles an inbound "fleet-trigger": if this shell owns
// the base, the trigger replays through the local path it would have
// taken had it arrived here first; otherwise it is forwarded onward
// (the sender held a stale table).
func (s *Shell) receiveTrigger(m transport.Message) {
	s.noteStaleEpoch(&m)
	item, err := data.ParseItemName(m.Payload["item"])
	if err != nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "receive", Err: fmt.Errorf("fleet-trigger from %s: %w", m.From, err),
		}, false)
		return
	}
	if owner, ok := s.shardOwner(item.Base); ok && owner != s.id {
		s.forwardShard(m, owner, "trigger")
		return
	}
	parse := func(key string) (data.Value, error) {
		lit, ok := m.Payload[key]
		if !ok {
			return data.NullValue, nil
		}
		return data.ParseLiteral(lit)
	}
	old, err1 := parse("old")
	newV, err2 := parse("new")
	if err1 != nil || err2 != nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "receive", Err: fmt.Errorf("fleet-trigger for %s from %s: bad value encoding", item, m.From),
		}, false)
		return
	}
	switch op := m.Payload["op"]; op {
	case "ws":
		s.spontaneousLocal(item, old, newV)
	case "notify":
		s.notifyLocal(m.Payload["site"], item, old, newV)
	case "wr":
		s.requestWriteLocal(item, newV)
	default:
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
			Op: "receive", Err: fmt.Errorf("fleet-trigger from %s: unknown op %q", m.From, op),
		}, false)
	}
}

// RefreshOwnership recomputes the owned-rule set and dispatch index
// against the currently installed route table.  The fleet calls it on
// every member right after a rebalance installs the next-epoch table,
// inside the drained + ingress-gated cutover window, so no trigger can
// observe a half-updated rule set.  Periodic (P-LHS) rules keep their
// Start-time owner: their timers were created there and do not migrate
// (a documented v1 limitation — DESIGN.md §10).
func (s *Shell) RefreshOwnership() error {
	if s.opts.Router == nil || !s.started {
		return nil
	}
	var owned []rule.Rule
	for _, r := range s.spec.Rules {
		if r.LHS.Op == event.OpP {
			continue
		}
		site, err := ruleSite(s.spec, r)
		if err != nil {
			return err
		}
		_, hosted := s.sites[site]
		owns := hosted
		if base, ok := ruleAnchor(&r); ok {
			if owner, ok := s.opts.Router.OwnerOf(base); ok {
				owns = owner == s.id
			}
		}
		if owns {
			owned = append(owned, r)
		}
	}
	for i := range s.owned {
		if s.owned[i].LHS.Op == event.OpP {
			owned = append(owned, s.owned[i])
		}
	}
	s.owned = owned
	s.buildDispatchIndex()
	return nil
}

// AddPeer declares a fleet member this shell can reach that hosts no
// site in the static routing map — sharded fleets address each other
// through the ownership table, but failure propagation and recovery
// notifications still need the membership list.
func (s *Shell) AddPeer(shellID string) {
	s.peerMu.Lock()
	if s.peers == nil {
		s.peers = map[string]bool{}
	}
	s.peers[shellID] = true
	s.peerMu.Unlock()
}

// peerSet is every peer shell reachable for propagation: static routes
// plus declared fleet peers.
func (s *Shell) peerSet() map[string]bool {
	peers := map[string]bool{}
	for _, shellID := range s.routing {
		if shellID != s.id {
			peers[shellID] = true
		}
	}
	s.peerMu.RLock()
	for p := range s.peers {
		if p != s.id {
			peers[p] = true
		}
	}
	s.peerMu.RUnlock()
	return peers
}

// ExportPrivate snapshots the CM-private items whose base satisfies sel,
// as literal encodings keyed by item key — the handoff payload of a
// fleet rebalance.  With remove set the items are also cleared here and
// the removals journaled, so a crash-recovered shell cannot resurrect
// state it handed off.
func (s *Shell) ExportPrivate(sel func(base string) bool, remove bool) map[string]string {
	s.privMu.Lock()
	defer s.privMu.Unlock()
	out := map[string]string{}
	for k, v := range s.private {
		name, err := data.ParseItemName(k)
		if err != nil || !sel(name.Base) {
			continue
		}
		if !v.IsNull() {
			out[k] = v.String()
		}
		if remove {
			delete(s.private, k)
			s.journalPrivateLocked(name, data.NullValue)
		}
	}
	return out
}

// handoffMeta is the verifiable frame around a private-state handoff:
// who exported it and how many items, so an importer can cross-check
// the payload against the exporter's intent.
type handoffMeta struct {
	From  string `json:"from"`
	Items int    `json:"items"`
}

// ExportPrivateSnap is ExportPrivate wrapped in a sectioned, CRC-framed
// snapshot — the verified handoff payload of a fleet rebalance.  The
// receiving ImportPrivateSnap refuses a payload that rotted in flight
// or on a relay's disk, instead of silently installing damaged
// constraint state under a new epoch.
func (s *Shell) ExportPrivateSnap(sel func(base string) bool, remove bool) []byte {
	items := s.ExportPrivate(sel, remove)
	meta, _ := json.Marshal(handoffMeta{From: s.id, Items: len(items)})
	payload, _ := json.Marshal(items)
	return durable.EncodeSections([]durable.Section{
		{Name: "meta", Data: meta},
		{Name: "private", Data: payload},
	})
}

// ImportPrivateSnap verifies a sectioned handoff and installs its items
// all-or-nothing: any section failing its CRC (or a payload that does
// not match the exporter's declared item count) rejects the whole
// snapshot and installs nothing.  It returns the number of items
// imported plus the granular section report.
func (s *Shell) ImportPrivateSnap(snap []byte) (int, durable.ImportReport, error) {
	secs, rep := durable.DecodeSections(snap)
	if err := rep.Err(); err != nil {
		return 0, rep, fmt.Errorf("shell %s: handoff rejected: %w", s.id, err)
	}
	var meta handoffMeta
	if raw, ok := secs["meta"]; ok {
		if err := json.Unmarshal(raw, &meta); err != nil {
			return 0, rep, fmt.Errorf("shell %s: handoff meta: %w", s.id, err)
		}
	} else {
		return 0, rep, fmt.Errorf("shell %s: handoff missing meta section", s.id)
	}
	var items map[string]string
	if err := json.Unmarshal(secs["private"], &items); err != nil {
		return 0, rep, fmt.Errorf("shell %s: handoff payload: %w", s.id, err)
	}
	if len(items) != meta.Items {
		return 0, rep, fmt.Errorf("shell %s: handoff declared %d items, carries %d", s.id, meta.Items, len(items))
	}
	if err := s.ImportPrivate(items); err != nil {
		return 0, rep, err
	}
	return len(items), rep, nil
}

// ImportPrivate installs handed-off CM-private items, journaling each
// write when durable state is enabled — the receiving side of a
// rebalance, so the moving shard's state lands in the new owner's WAL
// before the epoch cutover makes it authoritative.
func (s *Shell) ImportPrivate(items map[string]string) error {
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, err := data.ParseItemName(k)
		if err != nil {
			return fmt.Errorf("shell %s: importing %q: %w", s.id, k, err)
		}
		v, err := data.ParseLiteral(items[k])
		if err != nil {
			return fmt.Errorf("shell %s: importing %q: %w", s.id, k, err)
		}
		s.setPrivate(name, v)
	}
	return nil
}
