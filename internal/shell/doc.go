// Package shell implements the CM-Shell (Figures 1 and 2): a
// general-purpose distributed rule engine configured by a Strategy
// Specification.  Each shell hosts one or more sites (a site without its
// own shell is hosted by a peer, as for Site 3 in Figure 1), owns the
// strategy rules whose left-hand-side events occur at its sites, keeps
// CM-private data items for use in strategies, generates periodic events,
// routes rule firings to the shells owning the right-hand-side sites, and
// propagates interface failures so guarantees can be marked invalid
// (Section 5).
//
// Every event that flows through a shell is recorded to a trace, so a
// deployment can be re-validated against the Appendix A.2 execution
// properties and its guarantees checked after the fact.
//
// # Observability
//
// Shells are instrumented through package obs.  Each shell registers, at
// construction, atomic counter handles labelled with its shell ID —
// cmtk_shell_events_total, cmtk_shell_rule_matches_total,
// cmtk_shell_fires_total{scope=local|remote|received},
// cmtk_shell_remote_fires_dropped_total,
// cmtk_shell_remote_fires_retried_total,
// cmtk_shell_replayed_sends_total,
// cmtk_shell_failures_total{kind=metric|logical} — plus the
// cmtk_shell_fire_latency_seconds histogram (trigger event to RHS
// execution, on the shell clock).  Every rule firing additionally leaves
// structured hop records (matched → dispatched → executed, with outcome)
// in the configured obs.Ring.  Options.Metrics and Options.Fires select
// the registry and ring; nil means the process-wide obs.Default and
// obs.DefaultRing, which cmd/cmshell serves at -metrics-addr under
// /metrics and /debug/traces.  Delivery() reads back this shell
// instance's remote-delivery counters for programmatic use (the
// registry-backed replacement for the removed Stats plumbing); metric
// names, labels, and the trace schema are catalogued in OBSERVABILITY.md.
package shell
