package shell

import (
	"sync"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

func newOverloadShell(t *testing.T, limit int, policy Admission, reg *obs.Registry) *Shell {
	t.Helper()
	spec, err := rule.ParseSpecString("site S\nprivate X @ S\n")
	if err != nil {
		t.Fatal(err)
	}
	s := New("s", spec, Options{
		Clock:      vclock.NewVirtual(vclock.Epoch),
		Metrics:    reg,
		Fires:      obs.NewRing(8),
		QueueLimit: limit,
		Admission:  policy,
	})
	s.AddSite("S", nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestAdmitShedExactCounts holds the queue busy and pushes 10 external
// updates through a 4-deep queue: exactly 4 are admitted (in arrival
// order — A.2 ordering for admitted events) and exactly 6 are shed.
func TestAdmitShedExactCounts(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOverloadShell(t, 4, AdmitShed, reg)
	s.Do(func() {
		// Queue is being drained by this callback; everything posted here
		// stays queued until it returns, so admission sees depth exactly.
		for i := 0; i < 10; i++ {
			s.Spontaneous(data.Item("X"), data.NewInt(int64(i)), data.NewInt(int64(100+i)))
		}
	})
	shed := reg.Snapshot()[`cmtk_shell_shed_total{shell="s"}`]
	if shed != 6 {
		t.Fatalf("shed = %v, want exactly 6", shed)
	}
	evs := s.Trace().Events()
	if len(evs) != 4 {
		t.Fatalf("trace has %d events, want exactly 4 (admitted only)", len(evs))
	}
	for i, e := range evs {
		want := data.NewInt(int64(100 + i))
		if !e.Desc.Val.Equal(want) {
			t.Fatalf("admitted event %d is %s, want value %s (FIFO order broken)", i, e.Desc, want)
		}
	}
	if depth := reg.Snapshot()[`cmtk_shell_queue_depth{shell="s"}`]; depth != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", depth)
	}
}

// TestAdmitBlockWaitsForDrain parks an external producer at the limit and
// checks it is admitted once the drainer frees a slot: nothing shed,
// every update eventually in the trace.
func TestAdmitBlockWaitsForDrain(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOverloadShell(t, 1, AdmitBlock, reg)
	release := make(chan struct{})
	started := make(chan struct{})
	go s.Do(func() {
		close(started)
		<-release
	})
	<-started
	// The drainer is parked in the callback.  Fill the one queue slot,
	// then start a second producer that must block.
	s.Spontaneous(data.Item("X"), data.NewInt(0), data.NewInt(100))
	var wg sync.WaitGroup
	wg.Add(1)
	blocked := make(chan struct{})
	go func() {
		defer wg.Done()
		close(blocked)
		s.Spontaneous(data.Item("X"), data.NewInt(0), data.NewInt(101))
	}()
	<-blocked
	time.Sleep(20 * time.Millisecond) // give the producer time to park
	if evs := s.Trace().Events(); len(evs) != 0 {
		t.Fatalf("events processed while drainer parked: %d", len(evs))
	}
	close(release)
	wg.Wait()
	s.Do(func() {}) // barrier: both admitted updates fully processed
	if shed := reg.Snapshot()[`cmtk_shell_shed_total{shell="s"}`]; shed != 0 {
		t.Fatalf("AdmitBlock shed %v updates, want 0", shed)
	}
	evs := s.Trace().Events()
	if len(evs) != 2 {
		t.Fatalf("trace has %d events, want exactly 2", len(evs))
	}
}

// TestAdmitBlockSelfDrainerBypassesWait: external work generated on the
// drainer goroutine itself (a translator trigger inside RHS execution)
// must be admitted, not deadlocked, even with the queue at its limit.
func TestAdmitBlockSelfDrainerBypassesWait(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOverloadShell(t, 1, AdmitBlock, reg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Do(func() {
			for i := 0; i < 3; i++ {
				s.Spontaneous(data.Item("X"), data.NewInt(0), data.NewInt(int64(200+i)))
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("self-drainer admission deadlocked")
	}
	if evs := s.Trace().Events(); len(evs) != 3 {
		t.Fatalf("trace has %d events, want exactly 3", len(evs))
	}
	if shed := reg.Snapshot()[`cmtk_shell_shed_total{shell="s"}`]; shed != 0 {
		t.Fatalf("shed = %v, want 0", shed)
	}
}

// TestAdmitAllUnbounded: the default policy admits past the limit and
// counts nothing as shed — the pre-overload-protection behavior.
func TestAdmitAllUnbounded(t *testing.T) {
	reg := obs.NewRegistry()
	s := newOverloadShell(t, 2, AdmitAll, reg)
	s.Do(func() {
		for i := 0; i < 8; i++ {
			s.Spontaneous(data.Item("X"), data.NewInt(0), data.NewInt(int64(300+i)))
		}
	})
	if shed := reg.Snapshot()[`cmtk_shell_shed_total{shell="s"}`]; shed != 0 {
		t.Fatalf("AdmitAll shed %v, want 0", shed)
	}
	if evs := s.Trace().Events(); len(evs) != 8 {
		t.Fatalf("trace has %d events, want all 8", len(evs))
	}
}
