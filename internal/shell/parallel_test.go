package shell

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// paraSpec builds a mixed-constraint strategy over n base families at one
// site: a copy rule X→Y, a chain rule Y→Z (exercising in-unit cascades),
// and a conditioned rule X→Q whose condition reads the shared base G0
// (exercising the cross-partition footprint and ordered two-phase
// acquire).
func paraSpec(t *testing.T, n int) *rule.Spec {
	t.Helper()
	var b strings.Builder
	b.WriteString("site S\nprivate G0 @ S\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "private X%d @ S\nprivate Y%d @ S\nprivate Z%d @ S\nprivate Q%d @ S\n", i, i, i, i)
		fmt.Fprintf(&b, "rule c%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule k%d: W(Y%d, b) ->5s W(Z%d, b)\n", i, i, i)
		fmt.Fprintf(&b, "rule g%d: Ws(X%d, b) && G0 = 0 ->5s W(Q%d, b)\n", i, i, i)
	}
	sp, err := rule.ParseSpecString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// paraRun replays a fixed seeded update stream through an engine with the
// given worker count and returns its trace; updates for one base always
// carry that base's own increasing counter, so per-base value order is
// the replay invariant.
func paraRun(t *testing.T, workers, bases, events int) (*trace.Trace, *Shell) {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	sp := paraSpec(t, bases)
	initial := data.NewInterpretation()
	initial.Set(data.Item("G0"), data.NewInt(0))
	sh := New("s", sp, Options{Clock: clk, Workers: workers,
		Trace: trace.NewSharded(initial, workers)})
	sh.AddSite("S", nil)
	sh.WriteAux(data.Item("G0"), data.NewInt(0))
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	counters := make([]int64, bases)
	for e := 0; e < events; e++ {
		i := rng.Intn(bases)
		counters[i]++
		sh.Spontaneous(data.Item(fmt.Sprintf("X%d", i)),
			data.NewInt(counters[i]-1), data.NewInt(counters[i]))
	}
	sh.Drain()
	sh.Stop()
	return sh.Trace(), sh
}

// values renders an item's timeline as its value sequence — the part of
// the execution that must be engine-independent.  (Sequence numbers and
// global interleaving legitimately differ between the serial and parallel
// engines; per-item value order must not.)
func values(tr *trace.Trace, item data.ItemName) string {
	var b strings.Builder
	for _, s := range tr.Timeline(item) {
		b.WriteString(s.V.String())
		b.WriteByte(',')
	}
	return b.String()
}

// TestSerialParallelEquivalence replays the same seeded update stream
// through the serial engine and a 4-partition parallel engine and asserts
// byte-identical per-item timelines, a zero-violation Appendix A.2 check
// on both traces, and identical guarantee verdicts.
func TestSerialParallelEquivalence(t *testing.T) {
	const bases, events = 8, 400
	serialTr, serialSh := paraRun(t, 1, bases, events)
	parTr, parSh := paraRun(t, 4, bases, events)

	if w := parSh.Workers(); w != 4 {
		t.Fatalf("parallel shell Workers() = %d, want 4", w)
	}
	if serialTr.Len() != parTr.Len() {
		t.Fatalf("event counts differ: serial %d, parallel %d", serialTr.Len(), parTr.Len())
	}
	for i := 0; i < bases; i++ {
		for _, fam := range []string{"X", "Y", "Z", "Q"} {
			item := data.Item(fmt.Sprintf("%s%d", fam, i))
			s, p := values(serialTr, item), values(parTr, item)
			if s != p {
				t.Errorf("timeline %s differs:\n  serial   %s\n  parallel %s", item, s, p)
			}
		}
	}
	for name, pair := range map[string][2]*trace.Trace{"serial": {serialTr}, "parallel": {parTr}} {
		tr := pair[0]
		sh := serialSh
		if name == "parallel" {
			sh = parSh
		}
		checker := trace.NewChecker(append(sh.spec.Rules, sh.ImplicitRules()...))
		if vs := checker.Check(tr); len(vs) != 0 {
			t.Errorf("%s trace: %d violations, first: %s", name, len(vs), vs[0])
		}
	}
	for i := 0; i < bases; i++ {
		x, y := fmt.Sprintf("X%d", i), fmt.Sprintf("Y%d", i)
		s := guarantee.Follows{X: x, Y: y}.Check(serialTr).String()
		p := guarantee.Follows{X: x, Y: y}.Check(parTr).String()
		if s != p {
			t.Errorf("follows(%s,%s) verdicts differ:\n  serial   %s\n  parallel %s", x, y, s, p)
		}
	}
}

// TestParallelHotBaseRace hammers a single item base from many goroutines
// on a 4-partition engine: per-base FIFO admission must keep the hot
// base's timeline equal to the admitted value order, the cascade must
// copy every write, and the trace must stay checker-clean.  Run with
// -race this is the engine's memory-safety stress.
func TestParallelHotBaseRace(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	sp := paraSpec(t, 2)
	initial := data.NewInterpretation()
	initial.Set(data.Item("G0"), data.NewInt(0))
	sh := New("s", sp, Options{Clock: clk, Workers: 4,
		Trace: trace.NewSharded(initial, 4)})
	sh.AddSite("S", nil)
	sh.WriteAux(data.Item("G0"), data.NewInt(0))
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	const gs, per = 8, 100
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				mu.Lock()
				next++
				v := next
				mu.Unlock()
				sh.Spontaneous(data.Item("X0"), data.NewInt(v-1), data.NewInt(v))
			}
		}()
	}
	wg.Wait()
	sh.Drain()
	sh.Stop()

	tr := sh.Trace()
	x0, y0 := tr.Timeline(data.Item("X0")), tr.Timeline(data.Item("Y0"))
	if len(x0) != gs*per+1 {
		t.Fatalf("X0 timeline has %d samples, want %d", len(x0), gs*per+1)
	}
	if len(y0) != len(x0) {
		t.Fatalf("Y0 copied %d values for %d X0 writes", len(y0)-1, len(x0)-1)
	}
	// Y0's value order must equal X0's committed order (per-base FIFO).
	for i := range x0 {
		if !x0[i].V.Equal(y0[i].V) {
			t.Fatalf("Y0[%d] = %s, want X0's %s", i, y0[i].V, x0[i].V)
		}
	}
	checker := trace.NewChecker(append(sp.Rules, sh.ImplicitRules()...))
	if vs := checker.Check(tr); len(vs) != 0 {
		t.Fatalf("%d violations, first: %s", len(vs), vs[0])
	}
}

// TestFootprintClosure checks the precomputed unit footprints: a trigger
// base's footprint must cover the partitions of everything its cascade
// can reach — the copy target, the chain target, the conditioned target,
// and the shared condition base — while an unrelated base stays confined
// to its own partition.
func TestFootprintClosure(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	sp := paraSpec(t, 4)
	sh := New("s", sp, Options{Clock: clk, Workers: 4})
	sh.AddSite("S", nil)
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	p := sh.par
	fp := p.baseFootprint("X1")
	for _, base := range []string{"X1", "Y1", "Z1", "Q1", "G0"} {
		if fp&(1<<p.partOf(base)) == 0 {
			t.Errorf("footprint of X1 misses partition of %s", base)
		}
	}
	if got := p.baseFootprint("unrelated"); got != 1<<p.partOf("unrelated") {
		t.Errorf("unknown base footprint = %b, want its own partition only", got)
	}
	// The chain rule k1 fires on W(Y1): its footprint covers Y1 and Z1.
	r, ok := sp.RuleRefByID("k1")
	if !ok {
		t.Fatal("rule k1 missing")
	}
	rfp := p.ruleFootprint(r)
	for _, base := range []string{"Y1", "Z1"} {
		if rfp&(1<<p.partOf(base)) == 0 {
			t.Errorf("footprint of rule k1 misses partition of %s", base)
		}
	}
}

// TestParallelAdmission exercises per-partition overload protection: with
// every partition's worker wedged on a full-footprint unit, external work
// beyond QueueLimit must be shed and counted, and everything admitted
// must still execute.
func TestParallelAdmission(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	sp := paraSpec(t, 2)
	sh := New("s", sp, Options{Clock: clk, Workers: 2, QueueLimit: 1, Admission: AdmitShed})
	sh.AddSite("S", nil)
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	running := make(chan struct{})
	release := make(chan struct{})
	sh.Do(func() {
		close(running)
		<-release
	})
	<-running // all partitions' data locks are now held by the Do unit
	shed0 := sh.m.shed.Value()
	for i := 0; i < 6; i++ {
		sh.Spontaneous(data.Item("X0"), data.NewInt(int64(i)), data.NewInt(int64(i+1)))
	}
	if got := sh.m.shed.Value() - shed0; got == 0 {
		t.Error("no external work was shed past QueueLimit")
	}
	close(release)
	sh.Drain()
	if vs := trace.NewChecker(append(sp.Rules, sh.ImplicitRules()...)).Check(sh.Trace()); len(vs) != 0 {
		t.Fatalf("%d violations after shedding, first: %s", len(vs), vs[0])
	}
}
