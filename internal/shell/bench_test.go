package shell

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// BenchmarkEngineThroughput measures end-to-end events per operation for
// one spontaneous update flowing through notify + propagation + write on
// two shells over the in-process bus (the full Figure 2 path minus real
// sockets).  Each b.N iteration is one application update propagated.
func BenchmarkEngineThroughput(b *testing.B) {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site A
site B
private X @ A
private Y @ B
rule prop: Ws(X, b) ->5s WR(Y, b)
`)
	if err != nil {
		b.Fatal(err)
	}
	bus := transport.NewBus(clk, 0)
	sa := New("sa", spec, Options{Clock: clk, Trace: tr})
	sa.AddSite("A", nil)
	sa.Route("B", "sb")
	sb := New("sb", spec, Options{Clock: clk, Trace: tr})
	sb.AddSite("B", nil)
	sb.Route("A", "sa")
	if err := sa.Attach(bus); err != nil {
		b.Fatal(err)
	}
	if err := sb.Attach(bus); err != nil {
		b.Fatal(err)
	}
	if err := sa.Start(); err != nil {
		b.Fatal(err)
	}
	if err := sb.Start(); err != nil {
		b.Fatal(err)
	}
	defer sa.Stop()
	defer sb.Stop()
	x := itemOf("X")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.Spontaneous(x, valueOf(int64(i)), valueOf(int64(i+1)))
		clk.Advance(time.Millisecond)
	}
	b.StopTimer()
	clk.Advance(time.Second)
	if v, ok := sb.ReadAux(itemOf("Y")); !ok || v.Int() != int64(b.N) {
		b.Fatalf("Y = %s, %v after %d updates", v, ok, b.N)
	}
	b.ReportMetric(float64(tr.Len())/float64(b.N), "events/op")
}

// BenchmarkRuleDispatch measures matching one spontaneous event against a
// shell owning many rules: the dispatch index touches only the (op, item)
// bucket, so its cost is flat in rule count, while the legacy linear scan
// (Options.ScanDispatch) evaluates every owned rule per event.
func BenchmarkRuleDispatch(b *testing.B) {
	const rules = 64
	var src strings.Builder
	src.WriteString("site S\n")
	for r := 0; r < rules; r++ {
		fmt.Fprintf(&src, "private X%d @ S\nprivate Y%d @ S\n", r, r)
		fmt.Fprintf(&src, "rule r%d: Ws(X%d, b) ->5s W(Y%d, b)\n", r, r, r)
	}
	spec, err := rule.ParseSpecString(src.String())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"indexed", "scan"} {
		b.Run(fmt.Sprintf("%s/rules=%d", mode, rules), func(b *testing.B) {
			clk := vclock.NewVirtual(vclock.Epoch)
			s := New("s", spec, Options{
				Clock: clk, Trace: trace.New(nil), ScanDispatch: mode == "scan",
			})
			s.AddSite("S", nil)
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			x := itemOf("X0")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Spontaneous(x, valueOf(int64(i)), valueOf(int64(i+1)))
				clk.Advance(time.Millisecond)
			}
		})
	}
}

// BenchmarkParallelEngine measures one shell's unit throughput on the
// serial engine vs the partitioned parallel engine (DESIGN.md §9) over a
// 32-base copy-rule workload.  On a single-core host the arms collapse
// to the same throughput minus lock overhead; the speedup only shows on
// real cores (the E16 experiment sweeps that axis explicitly).
func BenchmarkParallelEngine(b *testing.B) {
	const bases = 32
	var src strings.Builder
	src.WriteString("site S\n")
	for i := 0; i < bases; i++ {
		fmt.Fprintf(&src, "private X%d @ S\nprivate Y%d @ S\n", i, i)
		fmt.Fprintf(&src, "rule r%d: Ws(X%d, b) ->5s W(Y%d, b)\n", i, i, i)
	}
	spec, err := rule.ParseSpecString(src.String())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			clk := vclock.NewVirtual(vclock.Epoch)
			s := New("s", spec, Options{Clock: clk, Workers: workers,
				Trace: trace.NewSharded(nil, workers)})
			s.AddSite("S", nil)
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			var counters [bases]int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := i % bases
				counters[base]++
				s.Spontaneous(itemOf(fmt.Sprintf("X%d", base)),
					valueOf(counters[base]-1), valueOf(counters[base]))
			}
			s.Drain()
			b.StopTimer()
			if got := s.Trace().Len(); got != 2*b.N {
				b.Fatalf("trace recorded %d events for %d updates", got, b.N)
			}
		})
	}
}

// BenchmarkTraceCheck measures validating a recorded execution.
func BenchmarkTraceCheck(b *testing.B) {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site A
private X @ A
private Y @ A
rule prop: Ws(X, b) ->5s W(Y, b)
`)
	if err != nil {
		b.Fatal(err)
	}
	s := New("s", spec, Options{Clock: clk, Trace: tr})
	s.AddSite("A", nil)
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 500; i++ {
		s.Spontaneous(itemOf("X"), valueOf(int64(i)), valueOf(int64(i+1)))
		clk.Advance(time.Millisecond)
	}
	clk.Advance(time.Minute)
	rules := append(spec.Rules, s.ImplicitRules()...)
	checker := trace.NewChecker(rules)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := checker.Check(tr); len(vs) != 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
	b.ReportMetric(float64(tr.Len()), "events/trace")
}

func itemOf(base string) data.ItemName { return data.Item(base) }
func valueOf(i int64) data.Value       { return data.NewInt(i) }
