package shell

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/event"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// Options configures a shell.
type Options struct {
	// Clock drives timers and timestamps; nil means real time.
	Clock vclock.Clock
	// Trace records events; nil allocates a private trace.  Simulated
	// deployments share one trace across shells so the checker sees the
	// whole execution.
	Trace *trace.Trace
	// FireDelay is the engine's processing delay between matching a rule's
	// LHS and dispatching its RHS, modelling CM load.  It must be well
	// under the smallest rule δ for metric guarantees to hold.
	FireDelay time.Duration
	// Metrics is the registry the shell's counters land in; nil means
	// obs.Default, so a deployment's shells share one scrape surface.
	Metrics *obs.Registry
	// Fires receives structured rule-firing trace records; nil means
	// obs.DefaultRing.
	Fires *obs.Ring
	// ScanDispatch disables the (op, item base) dispatch index and matches
	// every event against every owned rule by linear scan — the
	// pre-optimization behavior, kept as the baseline arm of the E14
	// saturation experiment.
	ScanDispatch bool
	// QueueLimit bounds the post queue's depth for external work
	// (spontaneous updates, translator notifications, inbound firings,
	// CM-originated write requests).  0 means unbounded — the pre-overload-
	// protection behavior.  Internal continuations (RHS execution steps,
	// events generated while handling an event) are always admitted, so a
	// unit of admitted work always runs to completion; the limit only
	// gates new work entering the shell.
	QueueLimit int
	// Admission picks what happens to external work that arrives with the
	// queue at QueueLimit: admit anyway (AdmitAll, the default), make the
	// caller wait (AdmitBlock), or drop it with a cmtk_shell_shed_total
	// increment (AdmitShed).  Shedding drops whole external units and never
	// reorders admitted ones, so the Appendix A.2 ordering properties still
	// hold for everything admitted.
	Admission Admission
	// Workers selects the execution engine.  0 or 1 keeps the classic
	// single-goroutine run-to-completion queue; N > 1 partitions the
	// dispatch index by item base into N lock-striped partitions, each
	// drained by its own worker goroutine, with rule firings isolated by
	// per-partition footprint locks and committed to the trace through a
	// single serialized commit point (DESIGN.md §9 documents the model and
	// why the Appendix A.2 checker order is preserved).  WorkersAuto sizes
	// the pool to GOMAXPROCS.  In parallel mode QueueLimit bounds each
	// partition's queue separately.
	Workers int
	// Router makes the shell a fleet member: rule ownership, fire targets
	// and external-trigger routing resolve through the installed route
	// table (see shard.go and package fleet) instead of the static
	// site→shell map, with bases outside the table falling back to static
	// routing.  Nil keeps the classic Fig. 1 static assignment.
	Router ShardRouter
}

// Admission is the policy applied to external work when the post queue
// is at QueueLimit.
type Admission int

// Admission policies.
const (
	// AdmitAll never rejects: the queue grows past the limit (metrics
	// still report the depth).
	AdmitAll Admission = iota
	// AdmitBlock parks the posting goroutine until the queue drains below
	// the limit.  On a TCP mesh this propagates backpressure: the inbox
	// goroutine stalls, its channel fills, and the sender's Send blocks.
	// Callers that are themselves the queue's drainer are admitted instead
	// of blocked (waiting would deadlock the shell).
	AdmitBlock
	// AdmitShed drops the work, counted in cmtk_shell_shed_total.  The
	// shell stays responsive and bounded; the dropped update is simply a
	// change the mesh never saw, which degrades timeliness (metric
	// guarantees), never consistency of admitted events.
	AdmitShed
)

// Shell is one CM-Shell process.
type Shell struct {
	id    string
	spec  *rule.Spec
	clock vclock.Clock
	tr    *trace.Trace
	opts  Options

	// run-to-completion event queue
	qmu        sync.Mutex
	queue      funcRing
	processing bool
	// qcond wakes AdmitBlock waiters as the queue drains; procGID is the
	// goroutine currently draining, recorded so a blocked-admission caller
	// that is itself the drainer is admitted rather than deadlocked.
	qcond   *sync.Cond
	procGID uint64

	// bases with an active notification subscription; only their writes
	// need echo suppression.
	subscribed map[string]bool

	// configuration (fixed after Start)
	sites     map[string]cmi.Interface // hosted site -> translator (nil for private-only sites)
	routing   map[string]string        // site -> shell ID
	ep        transport.Endpoint
	owned     []rule.Rule
	periodics []vclock.Timer
	cancels   []func()
	started   bool

	// dispatchIdx maps (op, LHS item base) to the owned rules that can
	// possibly match an event with that descriptor shape — item bases in
	// templates are always literal, so the index is exact and handleEvent
	// touches only candidate rules instead of scanning all of s.owned.
	// Periodic rules live under {OpP, ""}.  Built by Start; scanAll keeps
	// the pre-index linear scan alive for the E14 baseline arm.
	dispatchIdx map[dispatchKey][]*rule.Rule
	scanAll     bool

	// eng is the serial execution context (scratch bindings + eval env for
	// the match loop); the post queue serializes all use of it.  In
	// parallel mode each partition worker has its own exec and eng backs
	// only pre-Start and timer-goroutine paths.
	eng *exec
	// par is the parallel engine (nil in serial mode), built by Start when
	// Options.Workers resolves to more than one partition.
	par     *parallel
	workers int

	// private CM data (Section 3.2: "Each CM-Shell can have private data");
	// dur journals every write when durable state is enabled, durErr
	// latches the first journaling failure (both guarded by privMu)
	privMu  sync.RWMutex
	private data.Interpretation
	dur     *durable.Log
	durErr  error

	// CM-initiated writes pending confirmation, to tell W from Ws when the
	// underlying source's trigger fires for our own write.
	pendMu  sync.Mutex
	pending map[pendID]int

	// implicit interface rules generated for provenance, keyed by
	// (kind, site, base) so cache hits on the write path do not build the
	// "if:kind:site:base" id string every time
	implMu   sync.Mutex
	implicit map[implID]rule.Rule

	// failures observed locally or propagated from peers
	failMu     sync.Mutex
	failures   []cmi.Failure
	failureFns []func(cmi.Failure)
	custom     map[string]func(transport.Message)

	// fleet peers declared by AddPeer: members reachable for failure
	// propagation that host no site in the static routing map
	peerMu sync.RWMutex
	peers  map[string]bool

	// observability handles, resolved once at construction (atomic on the
	// hot path; see package obs)
	m shellMetrics

	// bounded-memory retention (guarantee-aware trace compaction); set by
	// EnableRetention, nil otherwise
	retainMu sync.Mutex
	retain   *retention
}

// shellMetrics bundles the shell's pre-resolved obs handles plus the
// counter values at construction, so Delivery() reports per-instance
// deltas even though series are shared by shell ID across instances.
type shellMetrics struct {
	events       *obs.Counter
	matches      *obs.Counter
	localFires   *obs.Counter
	remoteFires  *obs.Counter
	recvFires    *obs.Counter
	droppedFires *obs.Counter
	retriedFires *obs.Counter
	replayed     *obs.Counter
	failMetric   *obs.Counter
	failLogical  *obs.Counter
	latencyVec   *obs.HistogramVec
	shed         *obs.Counter
	qdepth       *obs.Gauge
	workers      *obs.Gauge
	partDepth    *obs.GaugeVec
	ring         *obs.Ring
	base         DeliveryCounts
}

// DeliveryCounts is a point-in-time view of one shell instance's
// remote-fire delivery counters — the programmatic face of the
// cmtk_shell_* registry metrics (and the replacement for the removed
// ad-hoc Stats plumbing).
type DeliveryCounts struct {
	// RemoteFires is the number of rule firings handed to the transport
	// for a remote shell (cmtk_shell_fires_total{scope="remote"}).
	RemoteFires uint64
	// DroppedFires counts remote firings lost for good: raw-endpoint send
	// errors, reliable-link outbox overflow, or retry-budget exhaustion
	// (cmtk_shell_remote_fires_dropped_total).
	DroppedFires uint64
	// RetriedFires counts firing retransmissions by the reliability layer
	// (cmtk_shell_remote_fires_retried_total; the same firing may be
	// retried more than once).
	RetriedFires uint64
	// ReplayedSends is the number of buffered messages replayed in order
	// and acknowledged after a degraded link recovered
	// (cmtk_shell_replayed_sends_total).
	ReplayedSends uint64
}

// newShellMetrics resolves the per-shell obs handles.
func newShellMetrics(reg *obs.Registry, ring *obs.Ring, id string) shellMetrics {
	if reg == nil {
		reg = obs.Default
	}
	if ring == nil {
		ring = obs.DefaultRing
	}
	fires := reg.Counter("cmtk_shell_fires_total",
		"Rule firings by scope: dispatched locally, sent to a remote shell, or received from one.",
		"shell", "scope")
	m := shellMetrics{
		events: reg.Counter("cmtk_shell_events_total",
			"Events recorded to the shell's trace.", "shell").With(id),
		matches: reg.Counter("cmtk_shell_rule_matches_total",
			"LHS matches whose condition passed (each becomes a firing).", "shell").With(id),
		localFires:  fires.With(id, "local"),
		remoteFires: fires.With(id, "remote"),
		recvFires:   fires.With(id, "received"),
		droppedFires: reg.Counter("cmtk_shell_remote_fires_dropped_total",
			"Remote firings lost for good: raw send errors, outbox overflow, retry-budget exhaustion.", "shell").With(id),
		retriedFires: reg.Counter("cmtk_shell_remote_fires_retried_total",
			"Firing retransmissions by the reliability layer.", "shell").With(id),
		replayed: reg.Counter("cmtk_shell_replayed_sends_total",
			"Buffered messages replayed in order and acknowledged after a degraded link recovered.", "shell").With(id),
		failMetric: reg.Counter("cmtk_shell_failures_total",
			"Interface failures observed (local and propagated), by Section 5 kind.", "shell", "kind").With(id, "metric"),
		latencyVec: reg.Histogram("cmtk_shell_fire_latency_seconds",
			"Delay from trigger event to RHS execution, on the shell clock.", nil, "shell", "partition"),
		shed: reg.Counter("cmtk_shell_shed_total",
			"External work rejected by AdmitShed because the post queue was at QueueLimit.", "shell").With(id),
		qdepth: reg.Gauge("cmtk_shell_queue_depth",
			"Current depth of the shell's run-to-completion post queue.", "shell").With(id),
		workers: reg.Gauge("cmtk_shell_workers",
			"Configured execution partitions/workers for the shell (1 = serial engine).", "shell").With(id),
		partDepth: reg.Gauge("cmtk_shell_partition_depth",
			"Current depth of one partition's unit queue in the parallel engine.", "shell", "partition"),
		ring: ring,
	}
	m.failLogical = reg.Counter("cmtk_shell_failures_total", "", "shell", "kind").With(id, "logical")
	m.base = DeliveryCounts{
		RemoteFires:   m.remoteFires.Value(),
		DroppedFires:  m.droppedFires.Value(),
		RetriedFires:  m.retriedFires.Value(),
		ReplayedSends: m.replayed.Value(),
	}
	return m
}

// New creates a shell for the given strategy specification.
func New(id string, spec *rule.Spec, opts Options) *Shell {
	clock := opts.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	workers := resolveWorkers(opts.Workers)
	tr := opts.Trace
	if tr == nil {
		// A private trace for a parallel engine is sharded to match the
		// partition count, so trace appends on unrelated item bases do not
		// re-serialize on one lock.
		tr = trace.NewSharded(nil, workers)
	}
	s := &Shell{
		id:         id,
		spec:       spec,
		clock:      clock,
		tr:         tr,
		opts:       opts,
		workers:    workers,
		sites:      map[string]cmi.Interface{},
		routing:    map[string]string{},
		private:    data.NewInterpretation(),
		pending:    map[pendID]int{},
		implicit:   map[implID]rule.Rule{},
		subscribed: map[string]bool{},
		scanAll:    opts.ScanDispatch,
		m:          newShellMetrics(opts.Metrics, opts.Fires, id),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.eng = newExec(s, 0)
	s.m.workers.Set(int64(workers))
	return s
}

// ID returns the shell's identity.
func (s *Shell) ID() string { return s.id }

// Trace returns the shell's event trace.
func (s *Shell) Trace() *trace.Trace { return s.tr }

// AddSite declares that this shell hosts a site.  iface may be nil for a
// site holding only CM-private items.  The shell also registers itself as
// that site's route.
func (s *Shell) AddSite(site string, iface cmi.Interface) {
	s.sites[site] = iface
	s.routing[site] = s.id
	if iface != nil {
		iface.OnFailure(func(f cmi.Failure) { s.reportFailure(f, true) })
	}
}

// Route declares that a remote shell hosts a site.
func (s *Shell) Route(site, shellID string) { s.routing[site] = shellID }

// Attach joins the shell to an inter-shell network.
func (s *Shell) Attach(n transport.Network) error {
	ep, err := n.Join(s.id, s.receive)
	if err != nil {
		return err
	}
	s.ep = ep
	s.watchLinks(ep)
	return nil
}

// AttachEndpoint installs a pre-built endpoint (used by the TCP mesh,
// whose endpoint is constructed with the receive callback up front).
func (s *Shell) AttachEndpoint(ep transport.Endpoint) {
	s.ep = ep
	s.watchLinks(ep)
}

// linkWatcher is satisfied by transport.ReliableEndpoint; when the
// attached endpoint reports link health, the shell folds those events
// into the Section 5 failure taxonomy.
type linkWatcher interface {
	OnLinkEvent(func(transport.LinkEvent))
}

func (s *Shell) watchLinks(ep transport.Endpoint) {
	if lw, ok := ep.(linkWatcher); ok {
		lw.OnLinkEvent(s.onLinkEvent)
	}
}

// sitesRoutedTo lists the sites this shell reaches through a peer shell.
// Routing is fixed after Start, like the other configuration maps.
func (s *Shell) sitesRoutedTo(peer string) []string {
	var sites []string
	for site, shellID := range s.routing {
		if shellID == peer {
			sites = append(sites, site)
		}
	}
	return sites
}

// onLinkEvent maps reliability-layer link events onto the failure
// taxonomy: a degraded link is a metric failure (the outbox "can remember
// messages that need to be sent out upon recovery", Section 5) for every
// site reached through the peer; dropped messages (overflow, exhausted
// retry budget) are logical failures; recovery clears the link's metric
// failures here and tells peers to do the same.
// linkErrSuffix renders a link event's error for a failure message; the
// batching TCP path reports delivery failures asynchronously, so the
// event may carry no error at all.
func linkErrSuffix(err error) string {
	if err == nil {
		return ""
	}
	return ": " + err.Error()
}

func (s *Shell) onLinkEvent(ev transport.LinkEvent) {
	switch ev.Kind {
	case transport.LinkRetry:
		s.m.retriedFires.Add(uint64(ev.Fires))
	case transport.LinkDegraded:
		for _, site := range s.sitesRoutedTo(ev.Peer) {
			s.reportFailure(cmi.Failure{
				Kind: cmi.FailMetric, Site: site, When: s.clock.Now(),
				Op: "link", Err: fmt.Errorf("link to %s degraded after %d attempts (%d buffered)%s",
					ev.Peer, ev.Attempts, ev.Messages, linkErrSuffix(ev.Err)),
			}, true)
		}
	case transport.LinkOverflow, transport.LinkGaveUp:
		s.m.droppedFires.Add(uint64(ev.Fires))
		for _, site := range s.sitesRoutedTo(ev.Peer) {
			s.reportFailure(cmi.Failure{
				Kind: cmi.FailLogical, Site: site, When: s.clock.Now(),
				Op: "link", Err: fmt.Errorf("link to %s lost %d message(s) (%s)%s",
					ev.Peer, ev.Messages, ev.Kind, linkErrSuffix(ev.Err)),
			}, true)
		}
	case transport.LinkRecovered:
		s.m.replayed.Add(uint64(ev.Messages))
		sites := s.sitesRoutedTo(ev.Peer)
		for _, site := range sites {
			s.clearLinkFailures(site)
		}
		// Tell every peer the outage is repaired so they can clear the
		// propagated copies (the recovery notification of Section 5).
		if s.ep != nil {
			for peer := range s.peerSet() {
				for _, site := range sites {
					s.ep.Send(peer, transport.Message{Kind: "recovered", FailSite: site, FailOp: "link"})
				}
			}
		}
	}
}

// clearLinkFailures drops recorded metric link failures for a site — the
// targeted counterpart of ClearFailures, safe to apply automatically
// because a drained outbox proves no message was lost.
func (s *Shell) clearLinkFailures(site string) {
	s.failMu.Lock()
	kept := s.failures[:0]
	for _, f := range s.failures {
		if f.Kind == cmi.FailMetric && f.Op == "link" && f.Site == site {
			continue
		}
		kept = append(kept, f)
	}
	s.failures = kept
	s.failMu.Unlock()
}

// Delivery reads back this shell instance's remote-fire delivery
// counters from the metrics registry, net of any activity recorded
// against the same shell ID before this instance was constructed.
func (s *Shell) Delivery() DeliveryCounts {
	return DeliveryCounts{
		RemoteFires:   s.m.remoteFires.Value() - s.m.base.RemoteFires,
		DroppedFires:  s.m.droppedFires.Value() - s.m.base.DroppedFires,
		RetriedFires:  s.m.retriedFires.Value() - s.m.base.RetriedFires,
		ReplayedSends: s.m.replayed.Value() - s.m.base.ReplayedSends,
	}
}

// Receive is the inbound message callback to wire into transports that
// are constructed before the shell (e.g. transport.NewTCP).
func (s *Shell) Receive(m transport.Message) { s.receive(m) }

// ruleSite computes the site owning a rule: the site of its LHS item, or
// for periodic rules the site of the first RHS effect.
func ruleSite(spec *rule.Spec, r rule.Rule) (string, error) {
	if r.LHS.Op.HasItem() {
		site, ok := spec.SiteOf(r.LHS.Item.Base)
		if !ok {
			return "", fmt.Errorf("shell: rule %s: no site for item %s", r.ID, r.LHS.Item.Base)
		}
		return site, nil
	}
	if r.LHS.Op == event.OpP {
		for _, st := range r.Steps {
			if st.Eff.Op.HasItem() {
				site, ok := spec.SiteOf(st.Eff.Item.Base)
				if !ok {
					return "", fmt.Errorf("shell: rule %s: no site for item %s", r.ID, st.Eff.Item.Base)
				}
				return site, nil
			}
		}
		return "", fmt.Errorf("shell: periodic rule %s has no sited effect", r.ID)
	}
	return "", fmt.Errorf("shell: rule %s has unplaceable LHS %s", r.ID, r.LHS)
}

// effectSite computes the single site at which a rule's RHS executes.
func effectSite(spec *rule.Spec, r rule.Rule) (string, error) {
	for _, st := range r.Steps {
		if st.Eff.Op.HasItem() {
			site, ok := spec.SiteOf(st.Eff.Item.Base)
			if !ok {
				return "", fmt.Errorf("shell: rule %s: no site for effect item %s", r.ID, st.Eff.Item.Base)
			}
			return site, nil
		}
	}
	// All effects are F: the rule never executes anything.
	return "", nil
}

// Start computes rule ownership, subscribes to notification interfaces,
// and starts periodic event generation.  The toolkit calls this after all
// sites, routes and the transport are in place (the initialization phase
// of Section 4.1).
func (s *Shell) Start() error {
	if s.started {
		return fmt.Errorf("shell %s: already started", s.id)
	}
	// Own the rules whose LHS site is hosted here — or, when a fleet
	// route table is installed, the rules whose anchor base the table
	// assigns to this shell (bases outside the table keep the static
	// Fig. 1 assignment).
	needNotify := map[string]string{} // item base -> site, for N/Ws LHS rules
	periods := map[time.Duration]string{}
	for _, r := range s.spec.Rules {
		site, err := ruleSite(s.spec, r)
		if err != nil {
			return err
		}
		_, hosted := s.sites[site]
		owns := hosted
		routed := false
		if s.opts.Router != nil {
			if base, ok := ruleAnchor(&r); ok {
				if owner, ok := s.opts.Router.OwnerOf(base); ok {
					owns, routed = owner == s.id, true
				}
			}
		}
		if routed && !owns && hosted && s.sites[site] != nil {
			// Sharded ownership moved the rule off the hosting shell, but
			// the translator's callbacks still arrive here: keep the
			// subscription and forward each trigger to the owner
			// (onSourceChange routes by the table).
			switch r.LHS.Op {
			case event.OpN, event.OpWs:
				needNotify[r.LHS.Item.Base] = site
			}
		}
		if !owns {
			continue
		}
		s.owned = append(s.owned, r)
		switch r.LHS.Op {
		case event.OpN, event.OpWs:
			needNotify[r.LHS.Item.Base] = site
		case event.OpP:
			periods[r.LHS.Period] = site
		}
	}
	// Subscribe to spontaneous-change notification for bases the strategy
	// listens to.
	for base, site := range needNotify {
		iface := s.sites[site]
		if iface == nil {
			continue // private items: writes flow through the engine itself
		}
		base := base
		site := site
		cancel, err := iface.Subscribe(base, func(item data.ItemName, old, new data.Value) {
			s.onSourceChange(site, item, old, new)
		})
		if err != nil {
			return fmt.Errorf("shell %s: subscribing to %s at %s: %w", s.id, base, site, err)
		}
		s.subscribed[base] = true
		s.cancels = append(s.cancels, cancel)
	}
	// Periodic events.  P rules may touch anything their cascades reach, so
	// in parallel mode the unit takes the full footprint.
	for p, site := range periods {
		p := p
		site := site
		tm := vclock.Every(s.clock, p, func() {
			s.execAll(false, func(x *exec) {
				e := x.record(&event.Event{Time: s.clock.Now(), Site: site, Desc: event.P(p)})
				x.handleEvent(e)
			})
		})
		s.periodics = append(s.periodics, tm)
	}
	s.buildDispatchIndex()
	if s.workers > 1 {
		s.par = newParallel(s)
	}
	s.started = true
	return nil
}

// dispatchKey addresses one bucket of the rule dispatch index: the LHS
// operation plus the literal item base (empty for item-less P rules).
type dispatchKey struct {
	op   event.Op
	base string
}

// buildDispatchIndex groups s.owned by (LHS op, item base).  Template
// item bases are always literal (only argument slots may be parameters or
// wildcards) so an event can only match rules in its own bucket; F rules
// match nothing and are left out entirely.
func (s *Shell) buildDispatchIndex() {
	s.dispatchIdx = make(map[dispatchKey][]*rule.Rule, len(s.owned))
	for i := range s.owned {
		r := &s.owned[i]
		k := dispatchKey{op: r.LHS.Op}
		switch {
		case r.LHS.Op == event.OpF:
			continue
		case r.LHS.Op.HasItem():
			k.base = r.LHS.Item.Base
		}
		s.dispatchIdx[k] = append(s.dispatchIdx[k], r)
	}
}

// Stop cancels subscriptions and periodic schedules.  A parallel engine
// drains its queued units and joins its workers before the transport
// closes, so in-flight firings are committed, not lost.
func (s *Shell) Stop() {
	for _, tm := range s.periodics {
		tm.Stop()
	}
	s.periodics = nil
	for _, c := range s.cancels {
		c()
	}
	s.cancels = nil
	if s.par != nil {
		s.par.close()
		s.par = nil
	}
	if s.ep != nil {
		s.ep.Close()
	}
	s.started = false
}

// funcRing is a reusable FIFO ring buffer of queued thunks.  The post
// queue used to be a slice resliced on every pop, which leaks the drained
// prefix's capacity and reallocates the backing array on every burst; the
// ring reuses its storage across bursts and grows only when a burst
// outsizes every previous one.
type funcRing struct {
	buf  []func()
	head int
	n    int
}

func (r *funcRing) push(f func()) {
	if r.n == len(r.buf) {
		grown := make([]func(), max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = f
	r.n++
}

// pop removes and returns the oldest thunk, or nil when empty.  The slot
// is cleared so the ring does not pin executed closures.
func (r *funcRing) pop() func() {
	if r.n == 0 {
		return nil
	}
	f := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return f
}

// post runs f on the shell's run-to-completion queue: events generated
// while handling an event are processed after it, never reentrantly.
// Internal continuations use post directly and are always admitted.
func (s *Shell) post(f func()) { s.enqueue(f, false) }

// enqueue is post plus admission control.  External work (external=true)
// is subject to Options.QueueLimit and the configured Admission policy;
// it reports whether the work was admitted.  Admitted work always keeps
// its arrival order — shedding drops whole units, never reorders — so the
// Appendix A.2 ordering properties are preserved for admitted events.
func (s *Shell) enqueue(f func(), external bool) bool {
	gated := external && s.opts.QueueLimit > 0
	s.qmu.Lock()
	for gated && s.queue.n >= s.opts.QueueLimit {
		if s.opts.Admission == AdmitShed {
			s.qmu.Unlock()
			s.m.shed.Inc()
			return false
		}
		if s.opts.Admission != AdmitBlock {
			break // AdmitAll: over-limit work is admitted anyway
		}
		if !s.processing || s.procGID == curGID() {
			// No drainer to wait on (this caller would become it), or the
			// caller IS the drainer (a translator trigger firing inside RHS
			// execution): blocking would deadlock the shell.  Admit.
			break
		}
		s.qcond.Wait()
	}
	s.queue.push(f)
	s.m.qdepth.Set(int64(s.queue.n))
	if s.processing {
		s.qmu.Unlock()
		return true
	}
	s.processing = true
	if s.opts.QueueLimit > 0 && s.opts.Admission == AdmitBlock {
		s.procGID = curGID()
	}
	for {
		next := s.queue.pop()
		s.m.qdepth.Set(int64(s.queue.n))
		s.qcond.Signal()
		if next == nil {
			s.processing = false
			s.procGID = 0
			s.qcond.Broadcast()
			s.qmu.Unlock()
			return true
		}
		s.qmu.Unlock()
		next()
		s.qmu.Lock()
	}
}

// curGID returns the calling goroutine's id, parsed from the stack
// header.  Only the AdmitBlock slow path (queue already at its limit)
// pays for this; it exists solely to detect self-blocking.
func curGID() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	hdr := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(hdr, ' '); i > 0 {
		id, _ := strconv.ParseUint(hdr[:i], 10, 64)
		return id
	}
	return 0
}

// record appends an event to the trace — directly in serial mode, or
// into the running unit's buffer in parallel mode, where the sequence
// number and final timestamp are assigned at the unit's commit point.
//
// A sharded serial shell shares its trace with peer shells committing
// concurrently; Append would draw the seq at commit while keeping the
// construction-time stamp, so two shells can interleave in an order
// that inverts time vs seq (an Appendix A.2 property-1 violation).
// Those shells commit through AppendUnit instead: the stamp is drawn
// under the trace's commit mutex, exactly as the parallel engine does,
// so seq order, commit order, and stamp order agree fleet-wide.
func (x *exec) record(e *event.Event) *event.Event {
	x.s.m.events.Inc()
	e.Host = x.s.id
	if x.unit != nil {
		x.unit.events = append(x.unit.events, e)
		return e
	}
	if x.s.opts.Router != nil {
		x.one[0] = e
		x.s.tr.AppendUnit(x.one[:], x.s.clock.Now, nil)
		x.one[0] = nil
		return e
	}
	return x.s.tr.Append(e)
}

// Drain blocks until every queued and in-flight unit of work has been
// processed (serial: the post queue is empty and idle; parallel: all
// partition queues are empty, no unit is running, and buffered remote
// sends have been handed to the transport).  Work scheduled on timers
// that have not fired yet is not waited for.
func (s *Shell) Drain() {
	if s.par != nil {
		s.par.drain()
		return
	}
	s.qmu.Lock()
	for s.queue.n > 0 || s.processing {
		s.qcond.Wait()
	}
	s.qmu.Unlock()
}

// pendID identifies a CM-initiated write for trigger suppression; a
// comparable struct key avoids building a separator-joined string per
// write.
type pendID struct{ item, val string }

// implID identifies one generated interface rule in the cache.
type implID struct{ kind, site, base string }

func pendKey(item data.ItemName, v data.Value) pendID {
	return pendID{item: item.Key(), val: v.String()}
}

// onSourceChange receives a native change callback from a translator and
// decides whether it is the echo of a CM write (suppressed — the W event
// was recorded by the write path) or a genuinely spontaneous update, which
// becomes Ws then N per the notify interface statement.
func (s *Shell) onSourceChange(site string, item data.ItemName, old, new data.Value) {
	s.pendMu.Lock()
	k := pendKey(item, new)
	if s.pending[k] > 0 {
		s.pending[k]--
		if s.pending[k] == 0 {
			delete(s.pending, k)
		}
		s.pendMu.Unlock()
		return
	}
	s.pendMu.Unlock()
	if owner, ok := s.shardOwner(item.Base); ok && owner != s.id {
		// Sharded rule ownership: this shell hosts the translator but the
		// rules listening to the base live elsewhere.  Ship the trigger to
		// the owner; it replays notifyLocal there.  The owner's implicit
		// notify rule uses the default 1s bound (it has no translator to
		// read the declared one from) — conservative, documented in
		// DESIGN.md §10.
		s.forwardTrigger("notify", site, item, old, new, owner)
		return
	}
	s.notifyLocal(site, item, old, new)
}

// notifyLocal records the Ws/N pair for a spontaneous source change and
// runs the rules it triggers.  The owner-side half of onSourceChange.
func (s *Shell) notifyLocal(site string, item data.ItemName, old, new data.Value) {
	s.execBase(item.Base, true, func(x *exec) {
		now := s.clock.Now()
		ws := x.record(&event.Event{Time: now, Site: site, Desc: event.Ws(item, old, new)})
		notifRule := s.implicitRule("notify", site, item)
		n := x.record(&event.Event{
			Time: now, Site: site,
			Desc: event.N(item, new),
			Rule: notifRule.ID, Trigger: ws,
		})
		x.handleEvent(ws)
		x.handleEvent(n)
	})
}

// Spontaneous injects a spontaneous write for items without a translator
// (CM-private scenarios and tests).  It mirrors onSourceChange.
func (s *Shell) Spontaneous(item data.ItemName, old, new data.Value) {
	if owner, ok := s.shardOwner(item.Base); ok && owner != s.id {
		// Not ours: route to the owner, which maintains the private copy
		// and runs the triggered rules.
		s.forwardTrigger("ws", "", item, old, new, owner)
		return
	}
	s.spontaneousLocal(item, old, new)
}

// spontaneousLocal is the owner-side half of Spontaneous.
func (s *Shell) spontaneousLocal(item data.ItemName, old, new data.Value) {
	site, ok := s.spec.SiteOf(item.Base)
	if !ok {
		site = s.id
	}
	if _, hosted := s.sites[site]; hosted {
		if s.spec.Private[item.Base] == site {
			s.setPrivate(item, new)
		}
	}
	s.execBase(item.Base, true, func(x *exec) {
		e := x.record(&event.Event{Time: s.clock.Now(), Site: site, Desc: event.Ws(item, old, new)})
		x.handleEvent(e)
	})
}

// handleEvent matches an event against the owned rules and dispatches
// firings.  It must run on the shell's queue (serial) or inside a unit
// whose footprint covers the event's base (parallel).
func (x *exec) handleEvent(e *event.Event) {
	s := x.s
	if s.scanAll || s.dispatchIdx == nil {
		for i := range s.owned {
			x.matchRule(&s.owned[i], e)
		}
		return
	}
	k := dispatchKey{op: e.Desc.Op}
	if e.Desc.Op.HasItem() {
		k.base = e.Desc.Item.Base
	}
	for _, r := range s.dispatchIdx[k] {
		x.matchRule(r, e)
	}
}

// matchRule tries one rule against one event, dispatching on a match
// whose condition holds.  The scratch bindings map is reused across
// attempts (each exec is single-threaded) and cloned only for actual
// firings.
func (x *exec) matchRule(r *rule.Rule, e *event.Event) {
	s := x.s
	b := x.scratchB
	clear(b)
	if !r.LHS.MatchInto(e.Desc, b) {
		return
	}
	// C0 is evaluated at the LHS site at trigger time, with
	// equality-binding semantics (Read interface pattern).  A nil
	// condition needs no environment at all.
	if r.Cond != nil {
		condOK, err := rule.EvalCondBinding(r.Cond, x.env(e.Site, b), b)
		if err != nil {
			s.reportFailure(cmi.Failure{
				Kind: cmi.FailLogical, Site: e.Site, When: s.clock.Now(),
				Op: "condition", Err: fmt.Errorf("rule %s: %w", r.ID, err),
			}, true)
			return
		}
		if !condOK {
			return
		}
	}
	s.m.matches.Inc()
	bCopy := b.Clone()
	if s.opts.FireDelay == 0 {
		// Dispatch inline: the exec runs one unit at a time, so firings
		// leave in match order and the FIFO transport keeps them ordered —
		// required on the real clock, where timer goroutines would
		// otherwise race (Appendix A.2 property 7).
		x.dispatch(r, bCopy, e)
		return
	}
	trigger := e
	s.clock.AfterFunc(s.opts.FireDelay, func() {
		// The timer goroutine is outside any unit: in serial mode dispatch
		// posts to the shell queue exactly as before; in parallel mode the
		// delayed firing becomes its own unit keyed by the rule.
		if s.par != nil {
			s.execRuleKey("rule:"+r.ID, r, false, func(x *exec) {
				x.dispatch(r, bCopy, trigger)
			})
			return
		}
		s.eng.dispatch(r, bCopy, trigger)
	})
}

// dispatch routes a rule firing to the shell hosting the RHS site.  It
// takes ownership of b.
func (x *exec) dispatch(r *rule.Rule, b event.Bindings, trigger *event.Event) {
	s := x.s
	effSite, err := effectSite(s.spec, *r)
	if err != nil || effSite == "" {
		return
	}
	target, ok := s.routing[effSite]
	if base, sited := effectBase(r); sited {
		// Fleet mode: the RHS executes at the effect base's current owner,
		// not at the static hosting shell.
		if owner, shard := s.shardOwner(base); shard {
			target, ok = owner, true
		}
	}
	if !ok {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: effSite, When: s.clock.Now(),
			Op: "route", Err: fmt.Errorf("no shell hosts site %s", effSite),
		}, true)
		return
	}
	if target == s.id {
		s.m.localFires.Inc()
		s.m.ring.Record(obs.FireTrace{
			Rule: r.ID, Shell: s.id, Site: trigger.Site,
			Outcome: obs.OutcomeLocal,
			TriggerDesc: &trigger.Desc, Seq: trigger.Seq,
			Matched: trigger.Time, Dispatched: s.clock.Now(),
		})
		if x.unit != nil {
			// The cascade stays inside the current unit: the continuation
			// runs after the trigger's other matches, exactly like the
			// serial queue, and its events commit in the same seq block.
			x.unit.cont.push(func() { x.executeSteps(r, b, trigger) })
			return
		}
		s.post(func() { s.eng.executeSteps(r, b, trigger) })
		return
	}
	if s.ep == nil {
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: effSite, When: s.clock.Now(),
			Op: "route", Err: fmt.Errorf("shell %s has no transport", s.id),
		}, true)
		return
	}
	if x.unit != nil {
		// Buffer the send: it is flushed at the unit's commit point, after
		// the trigger's sequence number and timestamp are final, so
		// per-link send order equals trace commit order (property 7).
		x.unit.sends = append(x.unit.sends, pendingSend{
			target: target, effSite: effSite, r: r, b: b, trigger: trigger,
		})
		return
	}
	s.sendFire(pendingSend{target: target, effSite: effSite, r: r, b: b, trigger: trigger})
}

// sendFire hands one rule firing to the transport.  Serial dispatch calls
// it inline; the parallel engine's sender goroutine calls it after the
// firing's unit committed.
func (s *Shell) sendFire(ps pendingSend) {
	r, trigger := ps.r, ps.trigger
	// Trigger.Desc stays blank and the bindings ride as values: an
	// in-process receiver uses TriggerEvent and BindingsVal directly, and a
	// serializing transport renders both wire fields via Message.WireReady
	// only when the message actually leaves the process.
	msg := transport.Message{
		Kind:         "fire",
		Rule:         r.ID,
		BindingsVal:  ps.b,
		Trigger:      transport.EventRef{Site: trigger.Site, Seq: trigger.Seq, Time: trigger.Time},
		TriggerEvent: trigger,
	}
	if s.opts.Router != nil {
		// Stamp the route-table epoch so a receiver that rebalanced since
		// can tell in-flight pre-cutover traffic from misrouting.
		msg.Epoch = s.opts.Router.Epoch()
	}
	s.m.remoteFires.Inc()
	if err := s.ep.Send(ps.target, msg); err != nil {
		// A raw endpoint rejected the send and the firing is gone for good;
		// a reliable endpoint never errors here — it buffers and reports
		// link health through onLinkEvent instead.
		s.m.droppedFires.Inc()
		s.m.ring.Record(obs.FireTrace{
			Rule: r.ID, Shell: s.id, Site: trigger.Site, Target: ps.target,
			Outcome: obs.OutcomeDropped,
			TriggerDesc: &trigger.Desc, Seq: trigger.Seq,
			Matched: trigger.Time, Dispatched: s.clock.Now(),
		})
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailMetric, Site: ps.effSite, When: s.clock.Now(),
			Op:  "send fire " + r.ID,
			Err: fmt.Errorf("rule %s to shell %s: %w", r.ID, ps.target, err),
		}, true)
		return
	}
	s.m.ring.Record(obs.FireTrace{
		Rule: r.ID, Shell: s.id, Site: trigger.Site, Target: ps.target,
		Outcome: obs.OutcomeSent,
		TriggerDesc: &trigger.Desc, Seq: trigger.Seq,
		Matched: trigger.Time, Dispatched: s.clock.Now(),
	})
}

// receive handles an inbound transport message.
func (s *Shell) receive(m transport.Message) {
	switch m.Kind {
	case "fire":
		r, ok := s.spec.RuleRefByID(m.Rule)
		if !ok {
			s.reportFailure(cmi.Failure{
				Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
				Op: "receive", Err: fmt.Errorf("unknown rule %q from %s", m.Rule, m.From),
			}, false)
			return
		}
		s.noteStaleEpoch(&m)
		if base, sited := effectBase(r); sited {
			// A fire for a base this shell no longer owns — the sender held
			// a pre-rebalance table.  Re-route to the current owner.
			if owner, shard := s.shardOwner(base); shard && owner != s.id {
				s.forwardShard(m, owner, "fire")
				return
			}
		}
		// In-process fast path: the sender's dispatch handed over a private
		// bindings map as values, so take ownership directly (Bindings wins
		// when a serializing hop already materialized it).
		b := m.BindingsVal
		if m.Bindings != nil || b == nil {
			var err error
			b, err = decodeBindings(m.Bindings)
			if err != nil {
				s.reportFailure(cmi.Failure{
					Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
					Op: "receive", Err: err,
				}, false)
				return
			}
		}
		trigger := m.TriggerEvent
		if trigger == nil {
			// A message that lost its in-process event pointer (journaled
			// replay after a restart, or a cross-process mesh): when the
			// deployment shares one trace, the original trigger is still in
			// it — re-link so provenance checking (property 5) survives.
			if e := s.tr.Find(m.Trigger.Seq); e != nil && e.Site == m.Trigger.Site &&
				e.Desc.String() == m.Trigger.Desc {
				trigger = e
			} else {
				trigger = stubTrigger(m.Trigger)
			}
		}
		s.m.recvFires.Inc()
		// Route by sender link, not effect base: the transport delivers each
		// link's fires in order, and keeping one link's fires on one
		// partition queue preserves that order through execution — two fires
		// for different bases at the same effect site must not commit
		// inverted (Appendix A.2 property 7 groups by trigger and effect
		// site, not by item).
		s.execRuleKey("link:"+m.From, r, true, func(x *exec) { x.executeSteps(r, b, trigger) })
	case "failure":
		kind := cmi.FailMetric
		if m.FailKind == "logical" {
			kind = cmi.FailLogical
		}
		s.reportFailure(cmi.Failure{
			Kind: kind, Site: m.FailSite, When: s.clock.Now(),
			Op: m.FailOp, Err: fmt.Errorf("%s", m.FailErr),
		}, false)
	case "recovered":
		// A peer's degraded link drained its outbox: the propagated metric
		// link failures for that site are moot.
		s.clearLinkFailures(m.FailSite)
	case "fleet-trigger":
		// An external trigger forwarded from a non-owner fleet member.
		s.receiveTrigger(m)
	default:
		// Kept out of receive itself: capturing m in a closure here would
		// make the parameter escape on every call, heap-copying the Message
		// even for the hot "fire" path.
		s.receiveCustom(m)
	}
}

// receiveCustom queues a registered handler for a custom message kind.
func (s *Shell) receiveCustom(m transport.Message) {
	s.failMu.Lock()
	fn := s.custom[m.Kind]
	s.failMu.Unlock()
	if fn != nil {
		s.execAll(false, func(*exec) { fn(m) })
	}
}

// RequestWrite issues a CM-originated write request outside any rule (a
// programmatic strategy action, like the Section 6.2 end-of-day sweep).
// The WR event is recorded as spontaneous — the sweeper plays the role of
// an application — and the performed W chains from it through the write
// interface rule.  It runs asynchronously on the shell's queue.
func (s *Shell) RequestWrite(item data.ItemName, v data.Value) {
	if owner, ok := s.shardOwner(item.Base); ok && owner != s.id {
		s.forwardTrigger("wr", "", item, data.NullValue, v, owner)
		return
	}
	s.requestWriteLocal(item, v)
}

// requestWriteLocal is the owner-side half of RequestWrite.
func (s *Shell) requestWriteLocal(item data.ItemName, v data.Value) {
	site, ok := s.spec.SiteOf(item.Base)
	if !ok {
		site = s.id
	}
	s.execBase(item.Base, true, func(x *exec) {
		desc := event.WR(item, v)
		wr := x.record(&event.Event{Time: s.clock.Now(), Site: site, Desc: desc})
		x.handleEvent(wr)
		iface := s.sites[site]
		if s.spec.Private[item.Base] != "" {
			iface = nil // CM-private items never go through a translator
		}
		if iface == nil {
			s.setPrivate(item, v)
			writeRule := s.implicitRule("write", site, item)
			w := x.record(&event.Event{Time: s.clock.Now(), Site: site,
				Desc: event.W(item, v), Rule: writeRule.ID, Trigger: wr})
			x.handleEvent(w)
			return
		}
		if !s.translatorWrite(iface, desc) {
			return
		}
		writeRule := s.implicitRule("write", site, item)
		w := x.record(&event.Event{Time: s.clock.Now(), Site: site,
			Desc: event.W(item, v), Rule: writeRule.ID, Trigger: wr})
		x.handleEvent(w)
	})
}

// Interface returns the translator for a hosted site (nil when the site
// is private-only or not hosted here).
func (s *Shell) Interface(site string) cmi.Interface { return s.sites[site] }

// Do runs f on the shell's event queue, serialized with event handling.
// In parallel mode the unit takes the full footprint, so f excludes every
// concurrent rule firing, like the serial queue always did.
func (s *Shell) Do(f func()) { s.execAll(false, func(*exec) { f() }) }

// HandleKind registers a handler for a custom inter-shell message kind
// (programmatic strategy components such as the Demarcation Protocol use
// this for their own request/grant traffic).  Handlers run on the shell's
// event queue.
func (s *Shell) HandleKind(kind string, fn func(transport.Message)) {
	s.failMu.Lock() // reuse; handler registration is rare
	if s.custom == nil {
		s.custom = map[string]func(transport.Message){}
	}
	s.custom[kind] = fn
	s.failMu.Unlock()
}

// SendCustom sends a custom message to a peer shell.
func (s *Shell) SendCustom(to string, m transport.Message) error {
	if s.ep == nil {
		return fmt.Errorf("shell %s: no transport", s.id)
	}
	return s.ep.Send(to, m)
}

// stubTrigger reconstructs a trigger event from its wire reference; the
// interpretations are unknown, so remote deployments skip full trace
// checking (simulated deployments share a trace and never hit this path).
func stubTrigger(ref transport.EventRef) *event.Event {
	e := &event.Event{Site: ref.Site, Seq: ref.Seq, Time: ref.Time}
	if tpl, err := rule.ParseTemplate(ref.Desc); err == nil {
		if d, err := tpl.Subst(event.Bindings{}); err == nil {
			e.Desc = d
		}
	}
	return e
}

// executeSteps runs the RHS of a rule at this shell.  Runs on the queue
// or inside a unit; it owns b (both callers — dispatch and receive — hand
// over a private map, so no defensive clone is needed to extend it).
func (x *exec) executeSteps(r *rule.Rule, b event.Bindings, trigger *event.Event) {
	s := x.s
	now := s.clock.Now()
	s.m.ring.Record(obs.FireTrace{
		Rule: r.ID, Shell: s.id, Site: trigger.Site,
		Outcome: obs.OutcomeExecuted,
		TriggerDesc: &trigger.Desc, Seq: trigger.Seq,
		Matched: trigger.Time, Executed: now,
	})
	if d := now.Sub(trigger.Time); d >= 0 && !trigger.Time.IsZero() {
		x.latency.Observe(d.Seconds())
	}
	// The reserved parameter "now" is bound to the current time at the
	// effect site when the rule fires (used by monitor strategies to
	// record Tb, Section 6.3).
	b["now"] = vclock.TimeValue(now)
	for _, step := range r.Steps {
		if step.Eff.Op == event.OpF {
			continue // promises, not actions
		}
		var desc event.Desc
		if step.ValExpr != nil {
			// Computed effect value: evaluate the expression against data
			// local to the effect site at firing time (the Section 7.1
			// recomputation pattern).
			item, err := step.Eff.Item.Subst(b)
			if err != nil {
				s.reportFailure(cmi.Failure{
					Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
					Op: "execute", Err: fmt.Errorf("rule %s: %w", r.ID, err),
				}, true)
				continue
			}
			evalSite, ok := s.spec.SiteOf(item.Base)
			if !ok {
				evalSite = s.id
			}
			v, err := step.ValExpr.Eval(x.env(evalSite, b))
			if err != nil {
				s.reportFailure(cmi.Failure{
					Kind: cmi.FailLogical, Site: evalSite, When: s.clock.Now(),
					Op: "execute", Err: fmt.Errorf("rule %s eval: %w", r.ID, err),
				}, true)
				continue
			}
			desc = event.Desc{Op: step.Eff.Op, Item: item, Val: v}
		} else {
			var err error
			desc, err = step.Eff.Subst(b)
			if err != nil {
				s.reportFailure(cmi.Failure{
					Kind: cmi.FailLogical, Site: s.id, When: s.clock.Now(),
					Op: "execute", Err: fmt.Errorf("rule %s: %w", r.ID, err),
				}, true)
				continue
			}
		}
		site, ok := s.spec.SiteOf(desc.Item.Base)
		if !ok {
			site = s.id
		}
		// The step guard is evaluated against data local to the effect
		// site at firing time.
		if step.Cond != nil {
			ok, err := rule.EvalBool(step.Cond, x.env(site, b))
			if err != nil {
				s.reportFailure(cmi.Failure{
					Kind: cmi.FailLogical, Site: site, When: s.clock.Now(),
					Op: "guard", Err: fmt.Errorf("rule %s: %w", r.ID, err),
				}, true)
				continue
			}
			if !ok {
				continue
			}
		}
		x.emit(r, desc, site, trigger)
	}
}

// emit performs one effect event.
func (x *exec) emit(r *rule.Rule, desc event.Desc, site string, trigger *event.Event) {
	s := x.s
	now := s.clock.Now()
	switch desc.Op {
	case event.OpWR:
		wr := x.record(&event.Event{Time: now, Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
		x.handleEvent(wr)
		iface := s.sites[site]
		if iface == nil {
			// No translator: treat as a write to private/engine state.
			x.performPrivateWrite(r, desc, site, wr)
			return
		}
		if !s.translatorWrite(iface, desc) {
			return // failure already reported by the translator hub
		}
		writeRule := s.implicitRule("write", site, desc.Item)
		w := x.record(&event.Event{
			Time: s.clock.Now(), Site: site,
			Desc: event.W(desc.Item, desc.Val),
			Rule: writeRule.ID, Trigger: wr,
		})
		x.handleEvent(w)
	case event.OpW:
		// Direct write: CM-private items live in the shell; a W effect on
		// a database item performs the write immediately (no request hop).
		if s.spec.Private[desc.Item.Base] != "" {
			w := x.record(&event.Event{Time: now, Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
			s.setPrivate(desc.Item, desc.Val)
			x.handleEvent(w)
			return
		}
		iface := s.sites[site]
		if iface == nil {
			w := x.record(&event.Event{Time: now, Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
			s.setPrivate(desc.Item, desc.Val)
			x.handleEvent(w)
			return
		}
		if !s.translatorWrite(iface, desc) {
			return
		}
		w := x.record(&event.Event{Time: s.clock.Now(), Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
		x.handleEvent(w)
	case event.OpRR:
		rr := x.record(&event.Event{Time: now, Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
		x.handleEvent(rr)
		iface := s.sites[site]
		var v data.Value
		if iface != nil {
			val, exists, err := iface.Read(desc.Item)
			if err != nil {
				return // reported by the hub
			}
			if exists {
				v = val
			}
		} else {
			s.privMu.RLock()
			v = s.private.Get(desc.Item)
			s.privMu.RUnlock()
		}
		readRule := s.implicitRule("read", site, desc.Item)
		resp := x.record(&event.Event{
			Time: s.clock.Now(), Site: site,
			Desc: event.R(desc.Item, v),
			Rule: readRule.ID, Trigger: rr,
		})
		x.handleEvent(resp)
	case event.OpN:
		n := x.record(&event.Event{Time: now, Site: site, Desc: desc, Rule: r.ID, Trigger: trigger})
		x.handleEvent(n)
	default:
		s.reportFailure(cmi.Failure{
			Kind: cmi.FailLogical, Site: site, When: now,
			Op: "execute", Err: fmt.Errorf("rule %s: cannot emit %s", r.ID, desc),
		}, true)
	}
}

func (x *exec) performPrivateWrite(r *rule.Rule, desc event.Desc, site string, wr *event.Event) {
	s := x.s
	s.setPrivate(desc.Item, desc.Val)
	writeRule := s.implicitRule("write", site, desc.Item)
	w := x.record(&event.Event{
		Time: s.clock.Now(), Site: site,
		Desc: event.W(desc.Item, desc.Val),
		Rule: writeRule.ID, Trigger: wr,
	})
	x.handleEvent(w)
}

// translatorWrite performs a write through a translator with echo
// suppression: if the base is subscribed, the source's own trigger for
// this write must not be mistaken for a spontaneous update.  It reports
// whether the write succeeded.
func (s *Shell) translatorWrite(iface cmi.Interface, desc event.Desc) bool {
	suppress := s.subscribed[desc.Item.Base]
	k := pendKey(desc.Item, desc.Val)
	if suppress {
		s.pendMu.Lock()
		s.pending[k]++
		s.pendMu.Unlock()
	}
	if err := iface.Write(desc.Item, desc.Val); err != nil {
		if suppress {
			s.pendMu.Lock()
			if s.pending[k] > 0 {
				s.pending[k]--
				if s.pending[k] == 0 {
					delete(s.pending, k)
				}
			}
			s.pendMu.Unlock()
		}
		return false
	}
	return true
}

// env builds the condition-evaluation environment for a site: CM-private
// items plus the site's database items through its translator.  The
// exec's single evalEnv is reused — expression evaluation is synchronous
// and each exec runs one unit at a time, so returning a pointer into the
// exec costs no allocation per evaluation.
func (x *exec) env(site string, b event.Bindings) rule.Env {
	x.evalEnv.site = site
	x.evalEnv.params = b
	return &x.evalEnv
}

type shellEnv struct {
	s      *Shell
	site   string
	params event.Bindings
}

func (e *shellEnv) Param(name string) (data.Value, bool) {
	v, ok := e.params[name]
	return v, ok
}

// NowValue implements rule.NowEnv for the now() builtin.
func (e *shellEnv) NowValue() (data.Value, bool) {
	return vclock.TimeValue(e.s.clock.Now()), true
}

func (e *shellEnv) Item(n data.ItemName) (data.Value, bool, error) {
	if e.s.spec.Private[n.Base] != "" {
		e.s.privMu.RLock()
		defer e.s.privMu.RUnlock()
		v, ok := e.s.private[n.Key()]
		return v, ok && !v.IsNull(), nil
	}
	iface := e.s.sites[e.site]
	if iface == nil {
		e.s.privMu.RLock()
		defer e.s.privMu.RUnlock()
		v, ok := e.s.private[n.Key()]
		return v, ok && !v.IsNull(), nil
	}
	return iface.Read(n)
}

// implicitRule returns (generating on first use) the canonical interface
// statement rule for provenance of translator-performed actions:
// if:write:SITE:BASE, if:read:SITE:BASE, if:notify:SITE:BASE.  The time
// bound is taken from the site's declared interface statements when one
// matches, else a conservative 1s.
func (s *Shell) implicitRule(kind, site string, item data.ItemName) rule.Rule {
	key := implID{kind: kind, site: site, base: item.Base}
	s.implMu.Lock()
	defer s.implMu.Unlock()
	if r, ok := s.implicit[key]; ok {
		return r
	}
	id := "if:" + kind + ":" + site + ":" + item.Base
	// Parameter slots matching the item's arity.
	args := make([]event.Term, len(item.Args))
	condArgs := make([]rule.Expr, len(item.Args))
	for i := range item.Args {
		p := fmt.Sprintf("k%d", i+1)
		args[i] = event.Param(p)
		condArgs[i] = rule.ParamRef{Name: p}
	}
	it := event.ItemT(item.Base, args...)
	delta := s.declaredDelta(kind, site, item.Base)
	var r rule.Rule
	switch kind {
	case "write":
		r = rule.Rule{ID: id, LHS: event.TWR(it, event.Param("v")), Delta: delta,
			Steps: []rule.Step{{Eff: event.TW(it, event.Param("v"))}}}
	case "read":
		r = rule.Rule{ID: id, LHS: event.TRR(it), Delta: delta,
			Cond:  rule.Binary{Op: "=", L: rule.ItemRef{Base: item.Base, Args: condArgs}, R: rule.ParamRef{Name: "v"}},
			Steps: []rule.Step{{Eff: event.TR(it, event.Param("v"))}}}
	case "notify":
		r = rule.Rule{ID: id, LHS: event.TWs2(it, event.Param("v")), Delta: delta,
			Steps: []rule.Step{{Eff: event.TN(it, event.Param("v"))}}}
	default:
		panic("shell: unknown implicit rule kind " + kind)
	}
	s.implicit[key] = r
	return r
}

// declaredDelta finds the time bound a site's CM-RID declared for an
// interface kind over an item base.
func (s *Shell) declaredDelta(kind, site, base string) time.Duration {
	iface := s.sites[site]
	if iface == nil {
		return time.Second
	}
	for _, st := range iface.Statements() {
		if len(st.Steps) != 1 {
			continue
		}
		eff := st.Steps[0].Eff
		match := false
		switch kind {
		case "write":
			match = st.LHS.Op == event.OpWR && eff.Op == event.OpW && st.LHS.Item.Base == base
		case "read":
			match = st.LHS.Op == event.OpRR && eff.Op == event.OpR && st.LHS.Item.Base == base
		case "notify":
			match = st.LHS.Op == event.OpWs && eff.Op == event.OpN && st.LHS.Item.Base == base
		}
		if match {
			return st.Delta
		}
	}
	return time.Second
}

// ImplicitRules returns the interface rules generated so far; deployments
// hand these to the trace checker together with the strategy rules.
func (s *Shell) ImplicitRules() []rule.Rule {
	s.implMu.Lock()
	defer s.implMu.Unlock()
	out := make([]rule.Rule, 0, len(s.implicit))
	for _, r := range s.implicit {
		out = append(out, r)
	}
	return out
}

// ReadAux reads a CM-private data item — the application interface of
// Section 4.1 ("a simple programmatic interface to allow applications to
// read auxiliary CM data").
func (s *Shell) ReadAux(item data.ItemName) (data.Value, bool) {
	s.privMu.RLock()
	defer s.privMu.RUnlock()
	v, ok := s.private[item.Key()]
	return v, ok && !v.IsNull()
}

// WriteAux initializes a CM-private data item (setup only; strategies
// write private data through W effects).
func (s *Shell) WriteAux(item data.ItemName, v data.Value) {
	s.setPrivate(item, v)
}

// OnFailure registers a failure observer.
func (s *Shell) OnFailure(fn func(cmi.Failure)) {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	s.failureFns = append(s.failureFns, fn)
}

// Failures returns the failures observed so far (local and propagated).
func (s *Shell) Failures() []cmi.Failure {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return append([]cmi.Failure{}, s.failures...)
}

// reportFailure records a failure, notifies observers and, when the
// failure was detected locally, propagates it to all peer shells so they
// can mark affected guarantees invalid (Section 5).
func (s *Shell) reportFailure(f cmi.Failure, propagate bool) {
	if f.Kind == cmi.FailMetric {
		s.m.failMetric.Inc()
	} else {
		s.m.failLogical.Inc()
	}
	s.failMu.Lock()
	s.failures = append(s.failures, f)
	fns := append([]func(cmi.Failure){}, s.failureFns...)
	s.failMu.Unlock()
	for _, fn := range fns {
		fn(f)
	}
	if !propagate || s.ep == nil {
		return
	}
	for peer := range s.peerSet() {
		s.ep.Send(peer, transport.Message{
			Kind:     "failure",
			FailSite: f.Site,
			FailKind: f.Kind.String(),
			FailOp:   f.Op,
			FailErr:  fmt.Sprint(f.Err),
		})
	}
}

func encodeBindings(b event.Bindings) map[string]string {
	out := make(map[string]string, len(b))
	for k, v := range b {
		out[k] = v.String()
	}
	return out
}

func decodeBindings(m map[string]string) (event.Bindings, error) {
	out := make(event.Bindings, len(m))
	for k, s := range m {
		v, err := data.ParseLiteral(s)
		if err != nil {
			return nil, fmt.Errorf("shell: bad binding %s=%q: %w", k, s, err)
		}
		out[k] = v
	}
	return out, nil
}

// ReportMetricFailure injects a metric failure observation (used by fault
// injection in tests and the benchmark harness) and propagates it to
// peers like any translator-detected failure.
func (s *Shell) ReportMetricFailure(site, op string, err error) {
	s.reportFailure(cmi.Failure{
		Kind: cmi.FailMetric, Site: site, When: s.clock.Now(), Op: op, Err: err,
	}, true)
}

// ReportLogicalFailure injects a logical failure observation.
func (s *Shell) ReportLogicalFailure(site, op string, err error) {
	s.reportFailure(cmi.Failure{
		Kind: cmi.FailLogical, Site: site, When: s.clock.Now(), Op: op, Err: err,
	}, true)
}

// ClearFailures forgets all recorded failures — the local half of the
// Section 5 "system reset" that restores guarantee validity after a
// logical failure has been repaired.
func (s *Shell) ClearFailures() {
	s.failMu.Lock()
	s.failures = nil
	s.failMu.Unlock()
}
