package shell

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

const retainPairs = 4

// retainShell builds a shell hosting retainPairs X→Y copy rules (δ=1s)
// on a virtual clock starting at `start`.
func retainShell(t *testing.T, id string, start time.Time, reg *obs.Registry) (*Shell, *vclock.Virtual) {
	t.Helper()
	var spec strings.Builder
	spec.WriteString("site S\n")
	for i := 0; i < retainPairs; i++ {
		fmt.Fprintf(&spec, "private X%d @ S\nprivate Y%d @ S\n", i, i)
		fmt.Fprintf(&spec, "rule r%d: Ws(X%d, b) ->1s W(Y%d, b)\n", i, i, i)
	}
	sp, err := rule.ParseSpecString(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual(start)
	s := New(id, sp, Options{Clock: clk, Metrics: reg, Fires: obs.NewRing(8)})
	s.AddSite("S", nil)
	return s, clk
}

// retainGuarantees is the monitored set for the retention tests: every
// window is finite, so the monitor publishes a horizon.
func retainGuarantees() []guarantee.Guarantee {
	return []guarantee.Guarantee{
		guarantee.MetricFollows{X: "X0", Y: "Y0", Kappa: 3 * time.Second},
		guarantee.MetricLeads{X: "X1", Y: "Y1", Kappa: 3 * time.Second},
		guarantee.ExistsWithin{Ref: "X2", Target: "Y2", Kappa: 3 * time.Second},
	}
}

// driveRetained sends n spontaneous updates round-robin over the X
// items, one millisecond apart.
func driveRetained(s *Shell, clk *vclock.Virtual, from, n int) {
	for e := from; e < from+n; e++ {
		item := data.Item(fmt.Sprintf("X%d", e%retainPairs))
		s.Spontaneous(item, data.NewInt(int64(e)), data.NewInt(int64(e+1)))
		clk.Advance(time.Millisecond)
	}
}

// TestRetentionBoundsTraceAndPreservesVerdicts the periodic compactor
// must keep retained events bounded while the monitor's verdicts stay
// identical to the batch checker over an unpruned control shell fed the
// same workload.
func TestRetentionBoundsTraceAndPreservesVerdicts(t *testing.T) {
	reg := obs.NewRegistry()
	s, clk := retainShell(t, "ret", vclock.Epoch, reg)
	ctl, cclk := retainShell(t, "ctl", vclock.Epoch, obs.NewRegistry())
	mon, err := guarantee.NewMonitor(retainGuarantees()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableRetention(Retention{Monitor: mon, Every: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableRetention(Retention{Monitor: mon}); err == nil {
		t.Fatal("double EnableRetention succeeded")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()

	const n = 30000 // 30s of virtual time against a ~7s retention band
	driveRetained(s, clk, 0, n)
	driveRetained(ctl, cclk, 0, n)

	tr := s.Trace()
	if pruned, _ := tr.Pruned(); pruned == 0 {
		t.Fatal("periodic compactor pruned nothing")
	}
	if tr.TotalEvents() != uint64(ctl.Trace().Len()) {
		t.Fatalf("lifetime events %d, control %d", tr.TotalEvents(), ctl.Trace().Len())
	}
	if tr.Len() > ctl.Trace().Len()/2 {
		t.Fatalf("retained %d of %d events; retention is not bounding memory", tr.Len(), ctl.Trace().Len())
	}
	want := guarantee.CheckAll(ctl.Trace(), retainGuarantees()...)
	got := mon.Reports(tr)
	if !guarantee.EqualVerdicts(want, got) {
		t.Fatalf("verdicts diverged:\nbatch:   %+v\nmonitor: %+v", want, got)
	}
	for _, r := range got {
		if !r.Holds || r.Checked == 0 {
			t.Fatalf("guarantee %s: %+v", r.Guarantee, r)
		}
	}
	g := reg.Gauge("cmtk_trace_retained_events", "", "shell").With("ret")
	if int(g.Value()) != tr.Len() {
		t.Fatalf("retained gauge %d, trace holds %d", g.Value(), tr.Len())
	}
	if c := reg.Counter("cmtk_trace_pruned_total", "", "shell").With("ret"); c.Value() == 0 {
		t.Fatal("pruned counter never moved")
	}
	if err := s.RetentionError(); err != nil {
		t.Fatal(err)
	}
}

// retainStore opens a durable store for the retention tests.
func retainStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRetentionColdStartFromCheckpoint a restarted shell must come back
// from the durable checkpoint alone — no events replayed, sequence
// numbering and lifetime accounting continuous — and keep monitoring.
func TestRetentionColdStartFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := retainStore(t, dir)
	s1, clk1 := retainShell(t, "s", vclock.Epoch, obs.NewRegistry())
	m1, err := guarantee.NewMonitor(retainGuarantees()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.EnableRetention(Retention{Monitor: m1, Every: 2 * time.Second, Store: st}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	driveRetained(s1, clk1, 0, 10000)
	s1.CompactNow()
	total1, final1 := s1.Trace().TotalEvents(), s1.Trace().Final()
	s1.Stop()
	if err := st.Close(); err != nil { // OnClose writes the final checkpoint
		t.Fatal(err)
	}

	st2 := retainStore(t, dir)
	defer st2.Close()
	s2, clk2 := retainShell(t, "s", clk1.Now().Add(time.Minute), obs.NewRegistry())
	m2, err := guarantee.NewMonitor(retainGuarantees()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.EnableRetention(Retention{Monitor: m2, Every: 2 * time.Second, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Restored || res.BaseSeq != total1 {
		t.Fatalf("restore: %+v, want restored at seq %d", res, total1)
	}
	if res.Report.Err() != nil || res.Report.Rejected != 0 {
		t.Fatalf("clean checkpoint reported damage: %+v", res.Report)
	}
	tr := s2.Trace()
	if tr.Len() != 0 || tr.TotalEvents() != total1 {
		t.Fatalf("cold start replayed events: len %d, total %d (want 0, %d)", tr.Len(), tr.TotalEvents(), total1)
	}
	if !tr.Initial().Equal(final1) {
		t.Fatalf("restored base %s, want %s", tr.Initial(), final1)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	driveRetained(s2, clk2, 10000, 5000)
	for _, r := range m2.Reports(s2.Trace()) {
		if !r.Holds {
			t.Fatalf("guarantee broke across restart: %+v", r)
		}
	}
	if err := s2.RetentionError(); err != nil {
		t.Fatal(err)
	}
}

// corruptCheckpointSection flips one byte inside the sectioned
// snapshot carried by a durable checkpoint file and re-seals the outer
// frame checksum — simulating payload corruption that happened before
// the checkpoint was written, which only the per-section CRCs catch.
func corruptCheckpointSection(t *testing.T, path, section string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Outer frame: [u32 len][u32 crc][type byte][u64 minSeg][snapshot].
	const snapOff = 8 + 1 + 8
	snap := raw[snapOff:]
	// A section frame opens with the u16 name length, so match that too
	// — the bare name can occur inside another section's JSON payload.
	needle := string([]byte{byte(len(section)), 0}) + section
	idx := strings.Index(string(snap), needle)
	if idx < 0 {
		t.Fatalf("section %q not found in %s", section, path)
	}
	// Section frame after the name: u32 length, u32 CRC, payload.
	snap[idx+len(needle)+8] ^= 0x40
	binary.LittleEndian.PutUint32(raw[4:8], crc32.ChecksumIEEE(raw[8:]))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionCorruptedCheckpointRecovery a bit-flipped checkpoint
// section must be rejected granularly (nothing imported, the damaged
// section named and counted) while the shell still recovers everything
// the WAL tail holds — private state journaled in the shell log is
// unaffected and new traffic monitors cleanly.
func TestCompactionCorruptedCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	st := retainStore(t, dir)
	s1, clk1 := retainShell(t, "s", vclock.Epoch, obs.NewRegistry())
	m1, err := guarantee.NewMonitor(retainGuarantees()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.EnableDurable(st); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.EnableRetention(Retention{Monitor: m1, Every: 2 * time.Second, Store: st}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	s1.WriteAux(data.Item("X0"), data.NewInt(0))
	driveRetained(s1, clk1, 0, 8000)
	s1.Stop()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	corruptCheckpointSection(t, filepath.Join(dir, "trace-s.ckpt"), "base")

	st2 := retainStore(t, dir)
	defer st2.Close()
	reg := obs.NewRegistry()
	s2, clk2 := retainShell(t, "s", clk1.Now().Add(time.Minute), reg)
	// WAL-tail-only recovery: the shell's private journal is undamaged.
	if restored, err := s2.EnableDurable(st2); err != nil || restored == 0 {
		t.Fatalf("private recovery: %d items, err %v", restored, err)
	}
	m2, err := guarantee.NewMonitor(retainGuarantees()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.EnableRetention(Retention{Monitor: m2, Every: 2 * time.Second, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restored {
		t.Fatal("corrupted checkpoint imported")
	}
	if res.Report.Rejected != 1 {
		t.Fatalf("rejected %d sections, want exactly 1: %+v", res.Report.Rejected, res.Report)
	}
	var bad string
	for _, sec := range res.Report.Sections {
		if sec.Err != "" {
			bad = sec.Name + ":" + sec.Err
		}
	}
	if bad != "base:crc" {
		t.Fatalf("granular verdicts: %v", res.Report.Sections)
	}
	rej := reg.Counter("cmtk_snapshot_import_rejected_total", "", "shell", "reason").With("s", "crc")
	if rej.Value() != 1 {
		t.Fatalf("rejection counter %d, want 1", rej.Value())
	}
	if tr := s2.Trace(); tr.TotalEvents() != 0 || tr.BaseSeq() != 0 {
		t.Fatal("rejected snapshot still mutated the trace")
	}
	// The shell works on: new traffic records, compacts, and monitors
	// cleanly from the WAL tail alone.
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	driveRetained(s2, clk2, 0, 8000)
	if pruned, _ := s2.Trace().Pruned(); pruned == 0 {
		t.Fatal("post-recovery compaction pruned nothing")
	}
	for _, r := range m2.Reports(s2.Trace()) {
		if !r.Holds {
			t.Fatalf("post-recovery guarantee: %+v", r)
		}
	}
}

// TestPrivateSnapHandoffVerifies the sectioned private-state handoff
// must round-trip intact payloads and refuse corrupted ones without
// installing anything.
func TestPrivateSnapHandoffVerifies(t *testing.T) {
	a, _ := retainShell(t, "a", vclock.Epoch, obs.NewRegistry())
	b, _ := retainShell(t, "b", vclock.Epoch, obs.NewRegistry())
	a.WriteAux(data.Item("X0"), data.NewInt(11))
	a.WriteAux(data.Item("X1"), data.NewInt(22))

	snap := a.ExportPrivateSnap(func(base string) bool { return base == "X0" || base == "X1" }, true)
	if v, ok := a.ReadAux(data.Item("X0")); ok {
		t.Fatalf("export with remove left X0 = %v", v)
	}

	// Corrupt one payload byte: the import must reject all-or-nothing.
	damaged := append([]byte(nil), snap...)
	damaged[len(damaged)-2] ^= 0x01
	if n, rep, err := b.ImportPrivateSnap(damaged); err == nil || n != 0 || rep.Rejected == 0 {
		t.Fatalf("damaged handoff imported: n=%d rep=%+v err=%v", n, rep, err)
	}
	if _, ok := b.ReadAux(data.Item("X0")); ok {
		t.Fatal("rejected handoff installed items")
	}

	n, rep, err := b.ImportPrivateSnap(snap)
	if err != nil || n != 2 || rep.Rejected != 0 {
		t.Fatalf("clean handoff: n=%d rep=%+v err=%v", n, rep, err)
	}
	if v, ok := b.ReadAux(data.Item("X1")); !ok || v.String() != "22" {
		t.Fatalf("handed-off X1 = %v/%v", v, ok)
	}
}
