package shell

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

const ridA = `
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
interface RR(salary1(n)) && salary1(n) = b ->1s R(salary1(n), b)
`

const ridB = `
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`

// payroll assembles the Section 4.2 scenario: database A (notify
// interface) and database B (write interface) on two shells linked by an
// in-process bus, driven by a virtual clock, recording to a shared trace.
type payroll struct {
	clk    *vclock.Virtual
	tr     *trace.Trace
	dbA    *relstore.DB
	dbB    *relstore.DB
	shellA *Shell
	shellB *Shell
	spec   *rule.Spec
}

func newPayroll(t *testing.T, strategy string) *payroll {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)

	dbA := relstore.New("branch")
	mustExec(t, dbA, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("hq")
	mustExec(t, dbB, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")

	cfgA, err := rid.ParseString(ridA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := rid.ParseString(ridB)
	if err != nil {
		t.Fatal(err)
	}
	trA, err := translator.NewRel(cfgA, dbA, clk)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := translator.NewRel(cfgB, dbB, clk)
	if err != nil {
		t.Fatal(err)
	}

	spec, err := rule.ParseSpecString(strategy)
	if err != nil {
		t.Fatal(err)
	}
	bus := transport.NewBus(clk, 200*time.Millisecond)
	opts := Options{Clock: clk, Trace: tr, FireDelay: 100 * time.Millisecond}

	sa := New("shellA", spec, opts)
	sa.AddSite("A", trA)
	sa.Route("B", "shellB")
	sb := New("shellB", spec, opts)
	sb.AddSite("B", trB)
	sb.Route("A", "shellA")
	if err := sa.Attach(bus); err != nil {
		t.Fatal(err)
	}
	if err := sb.Attach(bus); err != nil {
		t.Fatal(err)
	}
	if err := sa.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sa.Stop(); sb.Stop() })
	return &payroll{clk: clk, tr: tr, dbA: dbA, dbB: dbB, shellA: sa, shellB: sb, spec: spec}
}

func mustExec(t *testing.T, db *relstore.DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

// allRules collects strategy plus generated interface rules for checking.
func (p *payroll) allRules() []rule.Rule {
	rules := append([]rule.Rule{}, p.spec.Rules...)
	rules = append(rules, p.shellA.ImplicitRules()...)
	rules = append(rules, p.shellB.ImplicitRules()...)
	return rules
}

func (p *payroll) checkTrace(t *testing.T) {
	t.Helper()
	vs := trace.NewChecker(p.allRules()).Check(p.tr)
	if len(vs) != 0 {
		t.Fatalf("trace violations:\n%v\ntrace:\n%s", vs, p.tr)
	}
}

func (p *payroll) salaryAt(t *testing.T, db *relstore.DB, emp string) (int64, bool) {
	t.Helper()
	res, err := db.Exec("SELECT salary FROM employees WHERE empid = '" + emp + "'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		return 0, false
	}
	return res.Rows[0][0].Int(), true
}

const notifyStrategy = `
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`

func TestNotifyPropagationEndToEnd(t *testing.T) {
	p := newPayroll(t, notifyStrategy)
	// A local application updates the branch database.
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 100)")
	p.clk.Advance(2 * time.Second)
	if got, ok := p.salaryAt(t, p.dbB, "e1"); !ok || got != 100 {
		t.Fatalf("B salary = %d, %v", got, ok)
	}
	mustExec(t, p.dbA, "UPDATE employees SET salary = 150 WHERE empid = 'e1'")
	p.clk.Advance(2 * time.Second)
	if got, _ := p.salaryAt(t, p.dbB, "e1"); got != 150 {
		t.Fatalf("B salary = %d", got)
	}
	p.checkTrace(t)
	// Guarantees (1), (2), (3) and metric (4) all hold (Section 4.2.3).
	reports := guarantee.CheckAll(p.tr,
		guarantee.Follows{X: "salary1", Y: "salary2"},
		guarantee.Leads{X: "salary1", Y: "salary2", Settle: 10 * time.Second},
		guarantee.StrictlyFollows{X: "salary1", Y: "salary2"},
		guarantee.MetricFollows{X: "salary1", Y: "salary2", Kappa: 5 * time.Second},
		guarantee.MetricLeads{X: "salary1", Y: "salary2", Kappa: 5 * time.Second},
	)
	for _, r := range reports {
		if !r.Holds {
			t.Errorf("%s: %v", r.Guarantee, r.Violations)
		}
	}
}

func TestNotifyPropagationManyKeysOrdered(t *testing.T) {
	p := newPayroll(t, notifyStrategy)
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 1)")
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e2', 2)")
	for i := 0; i < 20; i++ {
		mustExec(t, p.dbA, "UPDATE employees SET salary = "+data.NewInt(int64(10+i)).String()+" WHERE empid = 'e1'")
		p.clk.Advance(500 * time.Millisecond)
	}
	p.clk.Advance(10 * time.Second)
	if got, _ := p.salaryAt(t, p.dbB, "e1"); got != 29 {
		t.Fatalf("B e1 salary = %d", got)
	}
	if got, _ := p.salaryAt(t, p.dbB, "e2"); got != 2 {
		t.Fatalf("B e2 salary = %d", got)
	}
	p.checkTrace(t)
	rep := guarantee.StrictlyFollows{X: "salary1", Y: "salary2"}.Check(p.tr)
	if !rep.Holds {
		t.Fatalf("strict order: %v", rep.Violations)
	}
}

const pollingStrategy = `
site A
site B
item salary1 @ A
item salary2 @ B
rule poll: P(60) ->1s RR(salary1("e1"))
rule fwd: R(salary1(n), b) ->1s WR(salary2(n), b)
`

func TestPollingMissesUpdatesButKeepsOrder(t *testing.T) {
	p := newPayroll(t, pollingStrategy)
	// With a read-only interface the CM cannot observe writes, so the
	// driver records the spontaneous-write events itself: the trace models
	// the whole system's state, not just what the CM saw (Appendix A.1).
	appWrite := func(sql string, old, new data.Value) {
		mustExec(t, p.dbA, sql)
		p.shellA.Spontaneous(data.Item("salary1", data.NewString("e1")), old, new)
	}
	appWrite("INSERT INTO employees VALUES ('e1', 1)", data.NullValue, data.NewInt(1))
	p.clk.Advance(65 * time.Second) // first poll picks up 1
	// Two updates inside one polling interval: the middle value is lost.
	appWrite("UPDATE employees SET salary = 2 WHERE empid = 'e1'", data.NewInt(1), data.NewInt(2))
	p.clk.Advance(time.Second)
	appWrite("UPDATE employees SET salary = 3 WHERE empid = 'e1'", data.NewInt(2), data.NewInt(3))
	p.clk.Advance(120 * time.Second)
	if got, _ := p.salaryAt(t, p.dbB, "e1"); got != 3 {
		t.Fatalf("B salary = %d", got)
	}
	p.checkTrace(t)
	// Section 4.2.3: (1), (3), (4) hold; (2) does not.
	follows := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(p.tr)
	if !follows.Holds {
		t.Fatalf("follows: %v", follows.Violations)
	}
	strict := guarantee.StrictlyFollows{X: "salary1", Y: "salary2"}.Check(p.tr)
	if !strict.Holds {
		t.Fatalf("strictly-follows: %v", strict.Violations)
	}
	leads := guarantee.Leads{X: "salary1", Y: "salary2", Settle: 70 * time.Second}.Check(p.tr)
	if leads.Holds {
		t.Fatal("leads held despite missed update")
	}
}

const cachedStrategy = `
site A
site B
item salary1 @ A
item salary2 @ B
private C @ B
rule fwd: N(salary1(n), b) ->5s (C(n) != b)? WR(salary2(n), b), W(C(n), b)
`

func TestCachedPropagationSuppressesDuplicates(t *testing.T) {
	p := newPayroll(t, cachedStrategy)
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 100)")
	p.clk.Advance(2 * time.Second)
	if got, ok := p.salaryAt(t, p.dbB, "e1"); !ok || got != 100 {
		t.Fatalf("B salary = %d, %v", got, ok)
	}
	// A chatty source re-notifies the same value (fn. 3 of the paper: the
	// cache lets the CM propagate only when the value actually changed).
	wrTpl, _ := rule.ParseTemplate(`WR(salary2("e1"), 100)`)
	before := len(p.tr.Matching(wrTpl))
	p.shellA.onSourceChange("A", data.Item("salary1", data.NewString("e1")), data.NewInt(100), data.NewInt(100))
	p.clk.Advance(10 * time.Second)
	after := len(p.tr.Matching(wrTpl))
	if after != before {
		t.Fatalf("duplicate value reached B: %d -> %d write requests", before, after)
	}
	// A genuinely new value still propagates.
	mustExec(t, p.dbA, "UPDATE employees SET salary = 120 WHERE empid = 'e1'")
	p.clk.Advance(10 * time.Second)
	if got, _ := p.salaryAt(t, p.dbB, "e1"); got != 120 {
		t.Fatalf("B salary = %d", got)
	}
	p.checkTrace(t)
}

func TestPrivateDataAndReadAux(t *testing.T) {
	p := newPayroll(t, cachedStrategy)
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 42)")
	p.clk.Advance(2 * time.Second)
	v, ok := p.shellB.ReadAux(data.Item("C", data.NewString("e1")))
	if !ok || !v.Equal(data.NewInt(42)) {
		t.Fatalf("ReadAux = %s, %v", v, ok)
	}
	// WriteAux seeds private data.
	p.shellB.WriteAux(data.Item("Flag"), data.NewBool(true))
	if v, ok := p.shellB.ReadAux(data.Item("Flag")); !ok || !v.Truthy() {
		t.Fatalf("Flag = %s, %v", v, ok)
	}
}

func TestFailurePropagation(t *testing.T) {
	p := newPayroll(t, notifyStrategy)
	var seenB []cmi.Failure
	p.shellB.OnFailure(func(f cmi.Failure) { seenB = append(seenB, f) })
	// A failure detected at shell A must reach shell B.
	p.shellA.reportFailure(cmi.Failure{
		Kind: cmi.FailMetric, Site: "A", When: p.clk.Now(),
		Op: "notify", Err: errors.New("simulated overload"),
	}, true)
	p.clk.Advance(time.Second)
	if len(seenB) != 1 || seenB[0].Kind != cmi.FailMetric || seenB[0].Site != "A" {
		t.Fatalf("propagated failures = %v", seenB)
	}
	if got := p.shellB.Failures(); len(got) != 1 {
		t.Fatalf("Failures() = %v", got)
	}
}

func TestDeleteFlowsThroughCopyConstraint(t *testing.T) {
	p := newPayroll(t, notifyStrategy)
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 100)")
	p.clk.Advance(2 * time.Second)
	mustExec(t, p.dbA, "DELETE FROM employees WHERE empid = 'e1'")
	p.clk.Advance(2 * time.Second)
	if _, ok := p.salaryAt(t, p.dbB, "e1"); ok {
		t.Fatal("row survived at B after delete at A")
	}
	p.checkTrace(t)
}

func TestShellDoubleStartAndStop(t *testing.T) {
	p := newPayroll(t, notifyStrategy)
	if err := p.shellA.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
	p.shellA.Stop()
	// Stopping cancels subscriptions: further spontaneous writes at A do
	// not propagate.
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e9', 9)")
	p.clk.Advance(5 * time.Second)
	if _, ok := p.salaryAt(t, p.dbB, "e9"); ok {
		t.Fatal("propagation after Stop")
	}
}

func TestSpontaneousOnPrivateItems(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site S
private X @ S
private Y @ S
rule copy: Ws(X, b) ->1s W(Y, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	s := New("s", spec, Options{Clock: clk, Trace: tr})
	s.AddSite("S", nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Spontaneous(data.Item("X"), data.NullValue, data.NewInt(5))
	clk.Advance(time.Second)
	v, ok := s.ReadAux(data.Item("Y"))
	if !ok || !v.Equal(data.NewInt(5)) {
		t.Fatalf("Y = %s, %v", v, ok)
	}
	rules := append(spec.Rules, s.ImplicitRules()...)
	if vs := trace.NewChecker(rules).Check(tr); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMetricObligationViolatedBySlowLink(t *testing.T) {
	// With 4s of engine+link delay against a 5s rule bound the deadline
	// holds; stretch the link to 10s and the trace checker must flag a
	// metric violation (the paper's metric failure, Section 5).
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	dbA := relstore.New("a")
	mustExec(t, dbA, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("b")
	mustExec(t, dbB, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	cfgA, _ := rid.ParseString(ridA)
	cfgB, _ := rid.ParseString(ridB)
	trA, _ := translator.NewRel(cfgA, dbA, clk)
	trB, _ := translator.NewRel(cfgB, dbB, clk)
	spec, _ := rule.ParseSpecString(notifyStrategy)
	bus := transport.NewBus(clk, 10*time.Second) // pathological link
	opts := Options{Clock: clk, Trace: tr}
	sa := New("shellA", spec, opts)
	sa.AddSite("A", trA)
	sa.Route("B", "shellB")
	sb := New("shellB", spec, opts)
	sb.AddSite("B", trB)
	sb.Route("A", "shellA")
	sa.Attach(bus)
	sb.Attach(bus)
	sa.Start()
	sb.Start()
	defer sa.Stop()
	defer sb.Stop()

	mustExec(t, dbA, "INSERT INTO employees VALUES ('e1', 1)")
	clk.Advance(30 * time.Second)
	rules := append(spec.Rules, sa.ImplicitRules()...)
	rules = append(rules, sb.ImplicitRules()...)
	vs := trace.NewChecker(rules).Check(tr)
	metric := 0
	for _, v := range vs {
		if v.Metric {
			metric++
		} else {
			t.Fatalf("unexpected logical violation: %v", v)
		}
	}
	if metric == 0 {
		t.Fatalf("no metric violation on a 10s link against a 5s bound; trace:\n%s", tr)
	}
}

const periodicNotifyStrategy = `
site A
site B
item salary1 @ A
item salary2 @ B
rule pn: P(60) && salary1("e1") = b ->1s N(salary1("e1"), b)
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
`

func TestPeriodicNotifyInterfaceAsRules(t *testing.T) {
	// Section 3.1.1's Periodic Notify Interface expressed directly in the
	// rule language: every 60s the current value of salary1("e1") is
	// turned into a notification, which the propagation rule then ships.
	p := newPayroll(t, periodicNotifyStrategy)
	// The prop rule's N(...) LHS activates the notify subscription, so
	// application SQL writes are observed directly; the periodic rule
	// re-notifies the current value every minute on top of that.
	mustExec(t, p.dbA, "INSERT INTO employees VALUES ('e1', 100)")
	p.clk.Advance(65 * time.Second)
	if got, ok := p.salaryAt(t, p.dbB, "e1"); !ok || got != 100 {
		t.Fatalf("B salary = %d, %v", got, ok)
	}
	mustExec(t, p.dbA, "UPDATE employees SET salary = 130 WHERE empid = 'e1'")
	p.clk.Advance(70 * time.Second)
	if got, _ := p.salaryAt(t, p.dbB, "e1"); got != 130 {
		t.Fatalf("B salary = %d", got)
	}
	p.checkTrace(t)
	// Like polling, periodic notify preserves order but can lose
	// intermediate values; follows must hold.
	rep := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(p.tr)
	if !rep.Holds {
		t.Fatalf("follows: %v", rep.Violations)
	}
}

// Property: randomized end-to-end runs (mixed inserts, updates, deletes
// across many keys and seeds) always yield valid executions, hold the
// propagation guarantees, and converge the replica to the primary.
func TestRandomSimulationsAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := newPayroll(t, notifyStrategy)
		rng := rand.New(rand.NewSource(seed))
		keys := []string{"e1", "e2", "e3", "e4"}
		live := map[string]int64{}
		for op := 0; op < 120; op++ {
			k := keys[rng.Intn(len(keys))]
			switch {
			case live[k] == 0: // insert
				v := int64(rng.Intn(1000) + 1)
				mustExec(t, p.dbA, "INSERT INTO employees VALUES ('"+k+"', "+data.NewInt(v).String()+")")
				live[k] = v
			case rng.Intn(5) == 0: // delete
				mustExec(t, p.dbA, "DELETE FROM employees WHERE empid = '"+k+"'")
				live[k] = 0
			default: // update
				v := int64(rng.Intn(1000) + 1)
				mustExec(t, p.dbA, "UPDATE employees SET salary = "+data.NewInt(v).String()+" WHERE empid = '"+k+"'")
				live[k] = v
			}
			p.clk.Advance(time.Duration(rng.Intn(2000)) * time.Millisecond)
		}
		p.clk.Advance(time.Minute)
		// Convergence: B mirrors A exactly.
		for _, k := range keys {
			got, ok := p.salaryAt(t, p.dbB, k)
			if live[k] == 0 {
				if ok {
					t.Fatalf("seed %d: %s survived at B after delete", seed, k)
				}
			} else if !ok || got != live[k] {
				t.Fatalf("seed %d: B[%s] = %d,%v want %d", seed, k, got, ok, live[k])
			}
		}
		p.checkTrace(t)
		reports := guarantee.CheckAll(p.tr,
			guarantee.Follows{X: "salary1", Y: "salary2"},
			guarantee.StrictlyFollows{X: "salary1", Y: "salary2"},
			guarantee.Leads{X: "salary1", Y: "salary2", Settle: 10 * time.Second},
		)
		for _, r := range reports {
			if !r.Holds {
				t.Fatalf("seed %d: %s: %v", seed, r.Guarantee, r.Violations)
			}
		}
		p.shellA.Stop()
		p.shellB.Stop()
	}
}
