package shell

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/durable"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
	"cmtk/internal/vclock"
)

func durShell(t *testing.T, store *durable.Store) (*Shell, int) {
	t.Helper()
	spec, err := rule.ParseSpecString(`
site S
private cx @ S
private flag @ S
private tb @ S
`)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual(vclock.Epoch)
	s := New("s", spec, Options{Clock: clk, Metrics: obs.NewRegistry(), Fires: obs.NewRing(8)})
	s.AddSite("S", nil)
	restored, err := s.EnableDurable(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s, restored
}

func openTestStore(t *testing.T, dir string) *durable.Store {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPrivateStateSurvivesRestart: Cx / Flag / Tb style private items set
// through every write path come back after a clean restart.
func TestPrivateStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, restored := durShell(t, st)
	if restored != 0 {
		t.Fatalf("fresh shell restored %d items", restored)
	}
	s.WriteAux(data.Item("cx"), data.NewInt(42))
	s.WriteAux(data.Item("flag"), data.NewString("armed"))
	s.RequestWrite(data.Item("tb"), data.NewInt(77)) // private: engine write path
	s.Stop()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2, restored := durShell(t, st2)
	defer s2.Stop()
	if restored != 3 {
		t.Fatalf("restored %d items, want 3", restored)
	}
	if v, ok := s2.ReadAux(data.Item("cx")); !ok || v.String() != "42" {
		t.Fatalf("cx = %v/%v", v, ok)
	}
	if v, ok := s2.ReadAux(data.Item("flag")); !ok || v.String() != `"armed"` {
		t.Fatalf("flag = %v/%v", v, ok)
	}
	if v, ok := s2.ReadAux(data.Item("tb")); !ok || v.String() != "77" {
		t.Fatalf("tb = %v/%v", v, ok)
	}
}

// TestPrivateStateCrashKeepsFlushedWrites: a hard crash preserves exactly
// the journaled prefix; writes after the crash instant are gone.
func TestPrivateStateCrashKeepsFlushedWrites(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, _ := durShell(t, st)
	s.WriteAux(data.Item("cx"), data.NewInt(1))
	st.Crash()
	s.WriteAux(data.Item("cx"), data.NewInt(2)) // post-crash: not persisted
	if s.DurableError() == nil {
		t.Fatal("journaling survived the crash")
	}
	s.Stop()
	st.Close()

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2, restored := durShell(t, st2)
	defer s2.Stop()
	if restored != 1 {
		t.Fatalf("restored %d items, want 1", restored)
	}
	if v, ok := s2.ReadAux(data.Item("cx")); !ok || v.String() != "1" {
		t.Fatalf("cx = %v/%v, want the pre-crash 1", v, ok)
	}
}

// TestPrivateStateTimestampRoundTrip: time-valued private items (the Tb
// of the Section 6.3 monitor) survive the literal round trip.
func TestPrivateStateTimestampRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s, _ := durShell(t, st)
	when := vclock.Epoch.Add(90 * time.Minute)
	s.WriteAux(data.Item("tb"), vclock.TimeValue(when))
	s.Stop()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2, _ := durShell(t, st2)
	defer s2.Stop()
	v, ok := s2.ReadAux(data.Item("tb"))
	if !ok || v.String() != vclock.TimeValue(when).String() {
		t.Fatalf("tb = %v/%v, want %v", v, ok, vclock.TimeValue(when))
	}
}

func TestEnableDurableTwiceRejected(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s, _ := durShell(t, st)
	defer s.Stop()
	if _, err := s.EnableDurable(st); err == nil {
		t.Fatal("second EnableDurable accepted")
	}
}
