package shell

import (
	"testing"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// TestDistributedShellsOverTCP runs the payroll propagation across two
// shells connected by a real TCP mesh on the real clock — the
// cmd/cmshell deployment shape, exercising binding serialization and
// trigger-stub reconstruction.
func TestDistributedShellsOverTCP(t *testing.T) {
	dbA := relstore.New("branch")
	mustExec(t, dbA, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("hq")
	mustExec(t, dbB, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	cfgA, err := rid.ParseString(ridA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := rid.ParseString(ridB)
	if err != nil {
		t.Fatal(err)
	}
	trA, err := translator.NewRel(cfgA, dbA, nil)
	if err != nil {
		t.Fatal(err)
	}
	trB, err := translator.NewRel(cfgB, dbB, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := rule.ParseSpecString(notifyStrategy)
	if err != nil {
		t.Fatal(err)
	}
	// Each shell keeps its own trace, like separate processes would.
	sa := New("shellA", spec, Options{})
	sa.AddSite("A", trA)
	sa.Route("B", "shellB")
	sb := New("shellB", spec, Options{})
	sb.AddSite("B", trB)
	sb.Route("A", "shellA")

	meshB, err := transport.NewTCP("shellB", "127.0.0.1:0", nil, sb.Receive)
	if err != nil {
		t.Fatal(err)
	}
	meshA, err := transport.NewTCP("shellA", "127.0.0.1:0", map[string]string{"shellB": meshB.Addr()}, sa.Receive)
	if err != nil {
		t.Fatal(err)
	}
	sa.AttachEndpoint(meshA)
	sb.AttachEndpoint(meshB)
	if err := sa.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Start(); err != nil {
		t.Fatal(err)
	}
	defer sa.Stop()
	defer sb.Stop()

	mustExec(t, dbA, "INSERT INTO employees VALUES ('e7', 321)")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e7'")
		if len(res.Rows) == 1 && res.Rows[0][0].Equal(data.NewInt(321)) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("update never reached B over TCP")
}

func TestReceiveUnknownRuleRecordsFailure(t *testing.T) {
	spec, _ := rule.ParseSpecString("site S\nprivate X @ S\n")
	s := New("s", spec, Options{Clock: vclock.NewVirtual(vclock.Epoch)})
	s.AddSite("S", nil)
	s.Receive(transport.Message{Kind: "fire", Rule: "ghost", From: "peer"})
	fs := s.Failures()
	if len(fs) != 1 || fs[0].Kind != cmi.FailLogical {
		t.Fatalf("failures = %v", fs)
	}
	// Bad bindings are rejected too.
	spec2, _ := rule.ParseSpecString("site S\nprivate X @ S\nrule r: Ws(X, b) ->1s W(X, b)\n")
	s2 := New("s", spec2, Options{Clock: vclock.NewVirtual(vclock.Epoch)})
	s2.AddSite("S", nil)
	s2.Receive(transport.Message{Kind: "fire", Rule: "r", Bindings: map[string]string{"b": "not a literal"}})
	if len(s2.Failures()) != 1 {
		t.Fatalf("failures = %v", s2.Failures())
	}
}

func TestReceiveFireWithStubTrigger(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, _ := rule.ParseSpecString("site S\nprivate X @ S\nrule r: N(X, b) ->1s W(X, b)\n")
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("S", nil)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// A fire message arriving from a remote peer carries only the trigger
	// reference, not the event object.
	s.Receive(transport.Message{
		Kind:     "fire",
		Rule:     "r",
		Bindings: map[string]string{"b": "42"},
		Trigger:  transport.EventRef{Site: "S", Seq: 9, Time: clk.Now(), Desc: "N(X, 42)"},
	})
	clk.Advance(time.Second)
	v, ok := s.ReadAux(data.Item("X"))
	if !ok || !v.Equal(data.NewInt(42)) {
		t.Fatalf("X = %s, %v", v, ok)
	}
}

func TestDispatchWithoutRouteReportsFailure(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, _ := rule.ParseSpecString(`
site S
site R
private X @ S
private Y @ R
rule r: Ws(X, b) ->1s W(Y, b)
`)
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("S", nil)
	// Site R is routed nowhere and there is no transport.
	s.Route("R", "remote")
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Spontaneous(data.Item("X"), data.NullValue, data.NewInt(1))
	clk.Advance(time.Second)
	fs := s.Failures()
	if len(fs) == 0 {
		t.Fatal("no failure for missing transport")
	}
}

func TestRequestWriteOnPrivateAndTranslatorSites(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	db := relstore.New("d")
	mustExec(t, db, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	cfg, _ := rid.ParseString(ridB)
	tr, err := translator.NewRel(cfg, db, clk)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := rule.ParseSpecString("site B\nitem salary2 @ B\nprivate P @ B\n")
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("B", tr)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// Translator-backed write.
	s.RequestWrite(data.Item("salary2", data.NewString("e1")), data.NewInt(7))
	clk.Advance(time.Second)
	res, _ := db.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(7)) {
		t.Fatalf("db rows = %v", res.Rows)
	}
	// Private write.
	s.RequestWrite(data.Item("P"), data.NewInt(3))
	clk.Advance(time.Second)
	if v, ok := s.ReadAux(data.Item("P")); !ok || !v.Equal(data.NewInt(3)) {
		t.Fatalf("P = %s, %v", v, ok)
	}
	// The trace stays valid: RequestWrite WRs are spontaneous, the Ws
	// follow the implicit write rule.
	rules := append(spec.Rules, s.ImplicitRules()...)
	if vs := traceCheck(s, rules); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func traceCheck(s *Shell, rules []rule.Rule) []trace.Violation {
	return trace.NewChecker(rules).Check(s.Trace())
}

func TestCustomMessageKinds(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, _ := rule.ParseSpecString("site S\nprivate X @ S\n")
	bus := transport.NewBus(clk, 50*time.Millisecond)
	a := New("a", spec, Options{Clock: clk})
	a.AddSite("S", nil)
	b := New("b", spec, Options{Clock: clk})
	if err := a.Attach(bus); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(bus); err != nil {
		t.Fatal(err)
	}
	var got []string
	b.HandleKind("ping", func(m transport.Message) { got = append(got, m.Payload["x"]) })
	if err := a.SendCustom("b", transport.Message{Kind: "ping", Payload: map[string]string{"x": "1"}}); err != nil {
		t.Fatal(err)
	}
	// Unregistered kinds are dropped silently.
	a.SendCustom("b", transport.Message{Kind: "unknown"})
	clk.Advance(time.Second)
	if len(got) != 1 || got[0] != "1" {
		t.Fatalf("got = %v", got)
	}
	// SendCustom without a transport errors.
	c := New("c", spec, Options{Clock: clk})
	if err := c.SendCustom("b", transport.Message{Kind: "ping"}); err == nil {
		t.Fatal("send without transport succeeded")
	}
}

func TestRuleSitePlacementErrors(t *testing.T) {
	// A rule whose LHS item has no site fails Start.
	spec := rule.NewSpec()
	spec.Sites = []string{"S"}
	spec.Private["X"] = "S"
	r, err := rule.ParseRule("r: N(Y, b) ->1s W(X, b)")
	if err != nil {
		t.Fatal(err)
	}
	spec.Rules = append(spec.Rules, r)
	s := New("s", spec, Options{Clock: vclock.NewVirtual(vclock.Epoch)})
	s.AddSite("S", nil)
	if err := s.Start(); err == nil {
		t.Fatal("Start accepted a rule with an unplaced LHS")
	}
}

func TestSubscribeFailureSurfacesAtStart(t *testing.T) {
	// A strategy that listens on a base whose translator cannot notify
	// (no watch binding) must fail Start with a clear error.
	clk := vclock.NewVirtual(vclock.Epoch)
	db := relstore.New("d")
	mustExec(t, db, "CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	cfg, err := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read SELECT salary FROM employees WHERE empid = $n
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := translator.NewRel(cfg, db, clk)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := rule.ParseSpecString(`
site A
item salary1 @ A
rule r: N(salary1(n), b) ->1s WR(salary1(n), b)
`)
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("A", tr)
	if err := s.Start(); err == nil {
		t.Fatal("Start succeeded without a notify binding")
	}
}
