// Bounded-memory retention.  A shell's trace grows without bound under
// sustained load; the only reader that needs deep history is the
// guarantee checker, and every monitorable guarantee declares a finite
// window.  EnableRetention wires the three pieces together: a
// guarantee.Monitor advances incrementally over the trace and publishes
// a retention horizon (nothing before it can change any verdict), the
// shell widens that horizon by its strategy hold (the largest rule δ,
// so in-flight firings keep their trigger provenance), and the trace
// folds everything older into its base interpretation.  Each fold is
// persisted as a sectioned, CRC-verified checkpoint through
// internal/durable, so a restarted shell cold-starts from checkpoint +
// WAL tail instead of replaying history.
package shell

import (
	"encoding/json"
	"fmt"
	"time"

	"cmtk/internal/durable"
	"cmtk/internal/guarantee"
	"cmtk/internal/obs"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// Retention configures guarantee-aware trace compaction for a shell.
type Retention struct {
	// Monitor supplies the retention horizon: only guarantees registered
	// here are consulted, and all of them must be incrementally
	// monitorable (finite window).  Required.
	Monitor *guarantee.Monitor

	// Every is the compaction cadence on the shell clock; 0 disables the
	// periodic driver (CompactNow can still be called directly).
	Every time.Duration

	// Hold widens the retention band beyond the monitor horizon and the
	// strategy hold, for operators who want extra queryable history.
	Hold time.Duration

	// Store, when set, persists folds as verified checkpoints (log
	// "trace-"+id) and restores from one on enable.
	Store *durable.Store

	// CheckpointEvery writes the durable checkpoint on every Nth pruning
	// round instead of after each one (default 1), trading checkpoint
	// fsyncs against how stale a crash-recovered base may be.  A clean
	// shutdown is unaffected: the store's close hook always writes a
	// final checkpoint.
	CheckpointEvery int
}

// RetentionRestore reports what EnableRetention recovered at cold start.
type RetentionRestore struct {
	// Restored is true when a verified checkpoint was imported into the
	// trace (and the monitor resumed from it, when one was checkpointed).
	Restored bool
	// BaseSeq is the sequence number recording resumes at after restore.
	BaseSeq uint64
	// Report is the granular section-by-section import verdict.  When the
	// snapshot failed verification the import is rejected whole and the
	// shell falls back to WAL-tail-only recovery; Report names exactly
	// which sections rotted.
	Report durable.ImportReport
}

// retention is the live compaction driver behind EnableRetention.
type retention struct {
	mon       *guarantee.Monitor
	hold      time.Duration
	log       *durable.Log
	timer     vclock.Timer
	ckptEvery int
	rounds    int   // pruning rounds since the last checkpoint
	err       error // first checkpoint-write failure, latched
	m         retainMetrics
}

type retainMetrics struct {
	retained    *obs.Gauge
	pruned      *obs.Counter
	prunedBytes *obs.Counter
	compactions *obs.Counter
	ckptBytes   *obs.Gauge
	rejected    *obs.CounterVec
	shell       string
}

func newRetainMetrics(reg *obs.Registry, id string) retainMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return retainMetrics{
		retained: reg.Gauge("cmtk_trace_retained_events",
			"Events currently held in the shell's trace (history before the retention horizon is folded away).", "shell").With(id),
		pruned: reg.Counter("cmtk_trace_pruned_total",
			"Events folded out of the trace by guarantee-aware compaction.", "shell").With(id),
		prunedBytes: reg.Counter("cmtk_trace_pruned_bytes_total",
			"Estimated heap bytes released by trace compaction.", "shell").With(id),
		compactions: reg.Counter("cmtk_trace_compactions_total",
			"Compaction rounds that folded at least one event.", "shell").With(id),
		ckptBytes: reg.Gauge("cmtk_trace_checkpoint_bytes",
			"Size of the last durable trace checkpoint (sectioned snapshot).", "shell").With(id),
		rejected: reg.Counter("cmtk_snapshot_import_rejected_total",
			"Checkpoint snapshot sections rejected at import, by failure reason; a rejected snapshot falls back to WAL-tail-only recovery.", "shell", "reason"),
		shell: id,
	}
}

// strategyHold is how far behind the guarantee horizon the fold must
// stay for the strategy's sake: the widest rule δ still admits firings
// whose trigger event is that old, and those firings need trigger
// provenance.  Implicit interface rules use the default δ, so that is
// the floor.
func (s *Shell) strategyHold() time.Duration {
	hold := time.Second // implicit interface rules default to δ = 1s
	if s.spec != nil {
		for _, r := range s.spec.Rules {
			if r.Delta > hold {
				hold = r.Delta
			}
		}
	}
	return hold
}

// EnableRetention bounds the shell's trace memory: history older than
// the monitor's horizon (widened by the strategy hold and r.Hold) is
// folded into the trace base on a periodic cadence, and each fold is
// checkpointed durably when a store is given.  On enable, a persisted
// checkpoint is verified section-by-section and imported all-or-nothing
// — a damaged snapshot is rejected with granular counts and the shell
// recovers from the WAL tail alone.  Call after New and before Start or
// any traffic (a restore into a non-empty trace fails).
func (s *Shell) EnableRetention(r Retention) (RetentionRestore, error) {
	var res RetentionRestore
	if r.Monitor == nil {
		return res, fmt.Errorf("shell %s: retention needs a guarantee monitor", s.id)
	}
	s.retainMu.Lock()
	defer s.retainMu.Unlock()
	if s.retain != nil {
		return res, fmt.Errorf("shell %s: retention already enabled", s.id)
	}
	rt := &retention{
		mon:       r.Monitor,
		hold:      s.strategyHold() + r.Hold,
		ckptEvery: max(r.CheckpointEvery, 1),
		m:         newRetainMetrics(s.opts.Metrics, s.id),
	}
	if r.Store != nil {
		lg, rec, err := r.Store.Log("trace-" + s.id)
		if err != nil {
			return res, err
		}
		if rec == nil {
			return res, fmt.Errorf("shell %s: trace log already in use", s.id)
		}
		rt.log = lg
		if rec.Snapshot != nil {
			restored, err := s.importTraceSnapshot(rt, r.Monitor, rec.Snapshot, &res)
			if err != nil {
				return res, err
			}
			res.Restored = restored
		} else if len(rec.Damage) > 0 {
			// The log layer's own frame checksum already rejected the
			// checkpoint file; same outcome, same counter.
			rt.m.rejected.With(rt.m.shell, "checkpoint").Inc()
		}
		r.Store.OnClose(func() error {
			s.retainMu.Lock()
			defer s.retainMu.Unlock()
			s.checkpointTraceLocked(rt)
			return rt.err
		})
	}
	if r.Every > 0 {
		rt.timer = vclock.Every(s.clock, r.Every, func() { s.CompactNow() })
		s.cancels = append(s.cancels, func() { rt.timer.Stop() })
	}
	rt.m.retained.Set(int64(s.tr.Len()))
	s.retain = rt
	return res, nil
}

// importTraceSnapshot verifies and applies one persisted checkpoint.
// Verification failures are not errors: they are counted per section and
// the shell proceeds empty-handed (WAL-tail-only recovery).  Failures
// *after* verification — a trace that already has events, a monitor that
// cannot resume — are real errors, because half-applying a verified
// checkpoint would be worse than rejecting it.
func (s *Shell) importTraceSnapshot(rt *retention, mon *guarantee.Monitor, snap []byte, res *RetentionRestore) (bool, error) {
	secs, rep := durable.DecodeSections(snap)
	res.Report = rep
	if err := rep.Err(); err != nil {
		rt.countRejections(rep)
		return false, nil
	}
	cs, err := decodeTraceCheckpoint(secs)
	if err != nil {
		rt.m.rejected.With(rt.m.shell, "decode").Inc()
		return false, nil
	}
	if err := s.tr.Restore(cs); err != nil {
		return false, fmt.Errorf("shell %s: restoring trace checkpoint: %w", s.id, err)
	}
	if blob, ok := secs["monitor"]; ok {
		if err := mon.Resume(blob); err != nil {
			return false, fmt.Errorf("shell %s: resuming monitor from checkpoint: %w", s.id, err)
		}
	}
	res.BaseSeq = s.tr.BaseSeq()
	return true, nil
}

func (rt *retention) countRejections(rep durable.ImportReport) {
	if rep.Reason != "" {
		rt.m.rejected.With(rt.m.shell, rep.Reason).Inc()
		return
	}
	for _, st := range rep.Sections {
		if st.Err != "" {
			rt.m.rejected.With(rt.m.shell, st.Err).Inc()
		}
	}
}

// CompactNow runs one retention round: advance the monitor over the
// trace, fold everything older than horizon − hold, publish the
// retention gauges, and (when a store is attached) write the fold as a
// durable checkpoint.  It is the body of the periodic driver and safe to
// call directly; rounds are serialized by retainMu.
//
//cmlint:acquires 10, 20, 30
func (s *Shell) CompactNow() trace.CompactStats {
	s.retainMu.Lock()
	defer s.retainMu.Unlock()
	rt := s.retain
	if rt == nil {
		return trace.CompactStats{}
	}
	rt.mon.Advance(s.tr)
	var stats trace.CompactStats
	if h, ok := rt.mon.Horizon(); ok {
		stats = s.tr.CompactBefore(h.Add(-rt.hold), rt.hold)
	}
	rt.m.retained.Set(int64(s.tr.Len()))
	if stats.PrunedEvents > 0 {
		rt.m.pruned.Add(uint64(stats.PrunedEvents))
		rt.m.prunedBytes.Add(stats.PrunedBytes)
		rt.m.compactions.Inc()
		if rt.rounds++; rt.rounds >= rt.ckptEvery {
			s.checkpointTraceLocked(rt)
			rt.rounds = 0
		}
	}
	return stats
}

// RetentionError reports the first durable checkpoint failure, if any
// (latched, like the private-state journal: the last checkpoint that
// reached disk is what the next incarnation recovers).
func (s *Shell) RetentionError() error {
	s.retainMu.Lock()
	defer s.retainMu.Unlock()
	if s.retain == nil {
		return nil
	}
	return s.retain.err
}

// checkpointTraceLocked writes the current fold as a sectioned snapshot:
// "meta" carries the sequence/accounting frame, "base" the folded
// interpretation, "monitor" the guarantee monitor's pending obligations.
// Caller holds retainMu.
func (s *Shell) checkpointTraceLocked(rt *retention) {
	if rt.log == nil || rt.err != nil {
		return
	}
	cs := s.tr.Checkpoint()
	meta := cs
	meta.Base = nil
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		rt.err = err
		return
	}
	baseJSON, err := json.Marshal(cs.Base)
	if err != nil {
		rt.err = err
		return
	}
	monBlob, err := rt.mon.Handoff()
	if err != nil {
		rt.err = err
		return
	}
	snap := durable.EncodeSections([]durable.Section{
		{Name: "meta", Data: metaJSON},
		{Name: "base", Data: baseJSON},
		{Name: "monitor", Data: monBlob},
	})
	if err := rt.log.Checkpoint(snap); err != nil {
		rt.err = err
		return
	}
	rt.m.ckptBytes.Set(int64(len(snap)))
}

// decodeTraceCheckpoint reassembles a trace.CheckpointState from the
// verified "meta" and "base" sections.
func decodeTraceCheckpoint(secs map[string][]byte) (trace.CheckpointState, error) {
	var cs trace.CheckpointState
	meta, ok := secs["meta"]
	if !ok {
		return cs, fmt.Errorf("shell: checkpoint missing meta section")
	}
	if err := json.Unmarshal(meta, &cs); err != nil {
		return cs, fmt.Errorf("shell: decoding checkpoint meta: %w", err)
	}
	if base, ok := secs["base"]; ok {
		if err := json.Unmarshal(base, &cs.Base); err != nil {
			return cs, fmt.Errorf("shell: decoding checkpoint base: %w", err)
		}
	}
	return cs, nil
}
