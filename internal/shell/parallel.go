// Parallel execution engine: lock-striped partitions by item base, one
// worker goroutine per partition, footprint locks for cross-partition
// rule firings, and a single serialized trace commit point per unit of
// work.  DESIGN.md §9 documents the concurrency model and the argument
// for why the Appendix A.2 checker's observed order is preserved.
//
// The unit is the atom of execution: one external trigger (spontaneous
// update, inbound firing, write request, periodic tick) plus every local
// rule firing it transitively causes.  A unit runs entirely on one
// worker, buffering its trace appends and remote sends; at the end the
// buffered events are committed through trace.AppendUnit, which assigns
// them one contiguous block of sequence numbers and a single commit
// timestamp under the trace's commit mutex.  Units are therefore atomic
// in sequence order, which is what keeps properties 2 and 7 intact under
// concurrency.
//
// Lock order (must never be acquired in reverse):
//
//	partition dataMu (ascending index) → trace commitMu → trace shard mu
//
// A unit's footprint — the set of partitions whose item bases it can
// possibly read or write, precomputed as a transitive closure over the
// rule graph — is locked in ascending partition order before the unit
// runs (the "ordered two-phase acquire"), so cross-partition firings
// cannot deadlock and conditions never observe a concurrent unit's
// half-applied writes.
package shell

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"cmtk/internal/event"
	"cmtk/internal/obs"
	"cmtk/internal/rule"
)

// WorkersAuto sizes Options.Workers to runtime.GOMAXPROCS(0).
const WorkersAuto = -1

// maxWorkers caps the partition count so a unit's footprint fits in one
// 64-bit mask.
const maxWorkers = 64

// resolveWorkers maps Options.Workers onto an engine size: anything
// below 2 (including the zero value) keeps the serial engine, WorkersAuto
// asks for one partition per core.
func resolveWorkers(w int) int {
	if w == WorkersAuto {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > maxWorkers {
		w = maxWorkers
	}
	return w
}

// partMask is a bitmask of partition indexes — a unit's footprint.
type partMask uint64

// exec is one execution context: the scratch state the match loop and
// expression evaluator reuse, plus (in parallel mode) the unit buffer for
// the work in flight.  The serial engine has exactly one exec, serialized
// by the post queue; the parallel engine has one per partition, used only
// by that partition's worker.
type exec struct {
	s        *Shell
	scratchB event.Bindings
	evalEnv  shellEnv
	// unit is non-nil while a parallel unit is running on this exec;
	// record and dispatch buffer into it instead of touching the trace and
	// transport directly.
	unit    *unit
	latency *obs.Histogram
	// one is record's scratch slice for the sharded serial path, which
	// commits single events through AppendUnit without allocating.
	one [1]*event.Event
}

func newExec(s *Shell, part int) *exec {
	x := &exec{
		s:        s,
		scratchB: event.Bindings{},
		latency:  s.m.latencyVec.With(s.id, strconv.Itoa(part)),
	}
	x.evalEnv.s = s
	return x
}

// unit buffers one atom of parallel work until its commit point.
type unit struct {
	events []*event.Event // trace appends, in processing order
	sends  []pendingSend  // remote firings, flushed in commit order
	// cont queues local cascade continuations, replacing the serial post
	// queue inside the unit: an event's other matches run before the
	// firings it caused, exactly like the run-to-completion queue.
	cont funcRing
}

// pendingSend is one remote rule firing awaiting its unit's commit; the
// transport message is built only at send time, after the trigger's
// sequence number and timestamp are final.
type pendingSend struct {
	target  string
	effSite string
	r       *rule.Rule
	b       event.Bindings
	trigger *event.Event
}

// queuedUnit is one admitted-but-not-yet-run unit on a partition queue.
type queuedUnit struct {
	fp partMask
	fn func(*exec)
}

// unitRing is a FIFO ring buffer of queued units (same shape as
// funcRing).
type unitRing struct {
	buf  []queuedUnit
	head int
	n    int
}

func (r *unitRing) push(u queuedUnit) {
	if r.n == len(r.buf) {
		grown := make([]queuedUnit, max(8, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = u
	r.n++
}

func (r *unitRing) pop() (queuedUnit, bool) {
	if r.n == 0 {
		return queuedUnit{}, false
	}
	u := r.buf[r.head]
	r.buf[r.head] = queuedUnit{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return u, true
}

// partition is one lock stripe of the parallel engine: a FIFO unit queue
// drained by a dedicated worker (preserving per-base admission order),
// the partition's data lock (a member of every overlapping unit's
// footprint), and the worker's exec.
type partition struct {
	mu   sync.Mutex // guards q; cond signals both the worker and AdmitBlock waiters
	cond *sync.Cond
	q    unitRing
	// dataMu is the footprint lock: held, in ascending partition order
	// with the rest of the unit's footprint, while any unit that can touch
	// this partition's item bases runs.
	//cmlint:lockrank 10
	dataMu sync.Mutex
	eng    *exec
	depth  *obs.Gauge
}

// parallel is the multi-core engine for one shell.
type parallel struct {
	s     *Shell
	parts []*partition
	all   partMask

	// Footprints, precomputed at Start from the rule graph; read-only
	// afterwards.  baseFp[b] covers everything a unit triggered by an
	// event on base b can reach; ruleFp[id] covers one rule's firing.
	baseFp map[string]partMask
	ruleFp map[string]partMask

	// workerGIDs marks the engine's own goroutines so a worker that posts
	// external work mid-unit (a translator echo, a cascading update) is
	// admitted instead of blocking on its own queue under AdmitBlock.
	gidMu      sync.RWMutex
	workerGIDs map[uint64]bool

	closed atomic.Bool

	// pending counts admitted units not yet committed; Drain waits on it.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// Remote sends flushed at commit points land on sendQ in commit order
	// and a dedicated sender goroutine performs them, so a blocking
	// transport (or a backpressured peer) stalls only the sender, never a
	// worker holding the trace's commit mutex.
	sendMu   sync.Mutex
	sendCond *sync.Cond
	sendQ    []pendingSend
	sendBusy bool

	workerWG sync.WaitGroup
	senderWG sync.WaitGroup
}

// newParallel builds and starts the engine; Start calls it after the
// dispatch index and routing are final.
func newParallel(s *Shell) *parallel {
	p := &parallel{
		s:          s,
		parts:      make([]*partition, s.workers),
		all:        partMask(1)<<s.workers - 1,
		workerGIDs: map[uint64]bool{},
	}
	p.pendCond = sync.NewCond(&p.pendMu)
	p.sendCond = sync.NewCond(&p.sendMu)
	for i := range p.parts {
		pt := &partition{
			eng:   newExec(s, i),
			depth: s.m.partDepth.With(s.id, strconv.Itoa(i)),
		}
		pt.cond = sync.NewCond(&pt.mu)
		p.parts[i] = pt
	}
	p.computeFootprints()
	var ready sync.WaitGroup
	ready.Add(len(p.parts))
	p.workerWG.Add(len(p.parts))
	for i := range p.parts {
		go p.worker(i, &ready)
	}
	p.senderWG.Add(1)
	go p.sender()
	ready.Wait() // worker GIDs registered before any unit can be admitted
	return p
}

// partOf hashes an item base (or any ordering key) onto a partition
// (FNV-1a).
func (p *parallel) partOf(base string) int {
	h := uint32(2166136261)
	for i := 0; i < len(base); i++ {
		h = (h ^ uint32(base[i])) * 16777619
	}
	return int(h % uint32(len(p.parts)))
}

// ruleBases collects the item bases one firing of r can touch: effect
// items, condition reads, guard reads, and computed-value reads.
func ruleBases(r *rule.Rule, out map[string]bool) {
	for _, b := range rule.ExprItems(r.Cond) {
		out[b] = true
	}
	for _, st := range r.Steps {
		if st.Eff.Op.HasItem() {
			out[st.Eff.Item.Base] = true
		}
		for _, b := range rule.ExprItems(st.Cond) {
			out[b] = true
		}
		for _, b := range rule.ExprItems(st.ValExpr) {
			out[b] = true
		}
	}
}

// computeFootprints precomputes, for every item base and rule in the
// spec, the transitive closure of partitions a unit rooted there can
// reach: an event on base b can fire any rule whose LHS names b; each
// firing touches its condition/guard/value bases and writes its effect
// bases, whose events can fire further rules.  The closure runs over the
// whole spec (not just owned rules) — locking a partition we never touch
// costs a little concurrency, never correctness.  Bases outside the spec
// match no rules, so their closure is just their own partition.
func (p *parallel) computeFootprints() {
	spec := p.s.spec
	rulesByBase := map[string][]*rule.Rule{}
	for i := range spec.Rules {
		r := &spec.Rules[i]
		if r.LHS.Op.HasItem() {
			rulesByBase[r.LHS.Item.Base] = append(rulesByBase[r.LHS.Item.Base], r)
		}
	}
	// closure(base) via DFS over trigger bases; memoized per base.
	p.baseFp = make(map[string]partMask, len(rulesByBase))
	var visit func(base string, seen map[string]bool, touched map[string]bool)
	visit = func(base string, seen, touched map[string]bool) {
		if seen[base] {
			return
		}
		seen[base] = true
		touched[base] = true
		for _, r := range rulesByBase[base] {
			rt := map[string]bool{}
			ruleBases(r, rt)
			for b := range rt {
				touched[b] = true
			}
			// Only effect bases generate further events; condition reads
			// do not trigger rules.
			for _, st := range r.Steps {
				if st.Eff.Op.HasItem() {
					visit(st.Eff.Item.Base, seen, touched)
				}
			}
		}
	}
	maskOf := func(bases map[string]bool) partMask {
		var m partMask
		for b := range bases {
			m |= 1 << p.partOf(b)
		}
		return m
	}
	for base := range rulesByBase {
		touched := map[string]bool{base: true}
		visit(base, map[string]bool{}, touched)
		p.baseFp[base] = maskOf(touched)
	}
	// Per-rule footprints for inbound remote firings and delayed
	// dispatches: the rule's own bases plus the closure of its effects.
	p.ruleFp = make(map[string]partMask, len(spec.Rules))
	for i := range spec.Rules {
		r := &spec.Rules[i]
		touched := map[string]bool{}
		ruleBases(r, touched)
		seen := map[string]bool{}
		for _, st := range r.Steps {
			if st.Eff.Op.HasItem() {
				visit(st.Eff.Item.Base, seen, touched)
			}
		}
		if r.LHS.Op.HasItem() {
			touched[r.LHS.Item.Base] = true
		}
		p.ruleFp[r.ID] = maskOf(touched)
	}
}

// baseFootprint returns the closure footprint for an event on base; a
// base no rule names can only ever touch its own partition.
func (p *parallel) baseFootprint(base string) partMask {
	if fp, ok := p.baseFp[base]; ok {
		return fp
	}
	return 1 << p.partOf(base)
}

// ruleFootprint returns the footprint for firing r, falling back to the
// full mask for rules outside the spec (custom or implicit).
func (p *parallel) ruleFootprint(r *rule.Rule) partMask {
	if fp, ok := p.ruleFp[r.ID]; ok {
		return fp
	}
	return p.all
}

func (p *parallel) isWorker(gid uint64) bool {
	p.gidMu.RLock()
	ok := p.workerGIDs[gid]
	p.gidMu.RUnlock()
	return ok
}

// enqueue admits one unit onto a partition queue, applying the shell's
// admission policy per partition.  It reports whether the unit was
// admitted.
func (p *parallel) enqueue(home int, fp partMask, external bool, fn func(*exec)) bool {
	if p.closed.Load() {
		return false
	}
	s := p.s
	pt := p.parts[home]
	gated := external && s.opts.QueueLimit > 0
	pt.mu.Lock()
	for gated && pt.q.n >= s.opts.QueueLimit {
		if s.opts.Admission == AdmitShed {
			pt.mu.Unlock()
			s.m.shed.Inc()
			return false
		}
		if s.opts.Admission != AdmitBlock {
			break // AdmitAll: over-limit work is admitted anyway
		}
		if p.isWorker(curGID()) {
			// A worker generating external work mid-unit (translator echo)
			// must not wait on a queue only workers drain.
			break
		}
		pt.cond.Wait()
		if p.closed.Load() {
			pt.mu.Unlock()
			return false
		}
	}
	p.pendMu.Lock()
	p.pending++
	p.pendMu.Unlock()
	pt.q.push(queuedUnit{fp: fp, fn: fn})
	pt.depth.Set(int64(pt.q.n))
	pt.cond.Broadcast()
	pt.mu.Unlock()
	return true
}

// worker drains one partition's queue, running each unit to completion
// in admission order.
func (p *parallel) worker(i int, ready *sync.WaitGroup) {
	defer p.workerWG.Done()
	p.gidMu.Lock()
	p.workerGIDs[curGID()] = true
	p.gidMu.Unlock()
	ready.Done()
	pt := p.parts[i]
	for {
		pt.mu.Lock()
		for pt.q.n == 0 && !p.closed.Load() {
			pt.cond.Wait()
		}
		qu, ok := pt.q.pop()
		if !ok { // empty and closed: remaining work was drained first
			pt.mu.Unlock()
			return
		}
		pt.depth.Set(int64(pt.q.n))
		pt.cond.Broadcast() // wake AdmitBlock waiters
		pt.mu.Unlock()
		p.runUnit(pt, qu)
	}
}

// runUnit executes one unit under its footprint locks and commits it.
func (p *parallel) runUnit(pt *partition, qu queuedUnit) {
	for i := 0; i < len(p.parts); i++ {
		if qu.fp&(1<<i) != 0 {
			p.parts[i].dataMu.Lock()
		}
	}
	x := pt.eng
	u := &unit{}
	x.unit = u
	qu.fn(x)
	for f := u.cont.pop(); f != nil; f = u.cont.pop() {
		f()
	}
	x.unit = nil
	if len(u.events) > 0 || len(u.sends) > 0 {
		// The commit point: one contiguous seq block, one commit
		// timestamp, sends queued in commit order — all under the trace's
		// commit mutex.
		p.s.tr.AppendUnit(u.events, p.s.clock.Now, func() {
			if len(u.sends) > 0 {
				p.queueSends(u.sends)
			}
		})
	}
	for i := len(p.parts) - 1; i >= 0; i-- {
		if qu.fp&(1<<i) != 0 {
			p.parts[i].dataMu.Unlock()
		}
	}
	p.pendMu.Lock()
	p.pending--
	if p.pending == 0 {
		p.pendCond.Broadcast()
	}
	p.pendMu.Unlock()
}

// queueSends appends a committed unit's sends to the sender queue; called
// under the trace's commit mutex, so queue order is commit order.
func (p *parallel) queueSends(sends []pendingSend) {
	p.sendMu.Lock()
	p.sendQ = append(p.sendQ, sends...)
	p.sendCond.Broadcast()
	p.sendMu.Unlock()
}

// sender performs buffered remote sends in commit order on its own
// goroutine: a blocking Send (TCP backpressure, a peer's AdmitBlock)
// stalls only this goroutine, and every worker keeps committing.
func (p *parallel) sender() {
	defer p.senderWG.Done()
	for {
		p.sendMu.Lock()
		for len(p.sendQ) == 0 && !p.closed.Load() {
			p.sendCond.Wait()
		}
		if len(p.sendQ) == 0 {
			p.sendMu.Unlock()
			return
		}
		batch := p.sendQ
		p.sendQ = nil
		p.sendBusy = true
		p.sendMu.Unlock()
		for _, ps := range batch {
			p.s.sendFire(ps)
		}
		p.sendMu.Lock()
		p.sendBusy = false
		if len(p.sendQ) == 0 {
			p.sendCond.Broadcast()
		}
		p.sendMu.Unlock()
	}
}

// drain blocks until every admitted unit has committed and every buffered
// send has been handed to the transport.
func (p *parallel) drain() {
	p.pendMu.Lock()
	for p.pending > 0 {
		p.pendCond.Wait()
	}
	p.pendMu.Unlock()
	p.sendMu.Lock()
	for len(p.sendQ) > 0 || p.sendBusy {
		p.sendCond.Wait()
	}
	p.sendMu.Unlock()
}

// close drains queued units, then stops workers and the sender.
func (p *parallel) close() {
	p.closed.Store(true)
	for _, pt := range p.parts {
		pt.mu.Lock()
		pt.cond.Broadcast()
		pt.mu.Unlock()
	}
	p.workerWG.Wait()
	p.sendMu.Lock()
	p.sendCond.Broadcast()
	p.sendMu.Unlock()
	p.senderWG.Wait()
}

// execSerial runs fn on the serial engine's post queue.
func (s *Shell) execSerial(external bool, fn func(*exec)) bool {
	return s.enqueue(func() { fn(s.eng) }, external)
}

// execBase routes a unit keyed by item base: admission is FIFO per base
// (the base's home partition queue), and the unit locks the base's
// closure footprint.
func (s *Shell) execBase(base string, external bool, fn func(*exec)) bool {
	if s.par == nil {
		return s.execSerial(external, fn)
	}
	return s.par.enqueue(s.par.partOf(base), s.par.baseFootprint(base), external, fn)
}

// execRuleKey routes a rule-firing unit with an explicit ordering key:
// units sharing a key share a partition queue and therefore commit in
// admission order (per-link for inbound fires, per-rule for delayed
// dispatches).
func (s *Shell) execRuleKey(key string, r *rule.Rule, external bool, fn func(*exec)) bool {
	if s.par == nil {
		return s.execSerial(external, fn)
	}
	return s.par.enqueue(s.par.partOf(key), s.par.ruleFootprint(r), external, fn)
}

// execAll routes a unit that may touch anything — periodic ticks, custom
// message handlers, Do — with the full footprint, giving it the same
// total mutual exclusion the serial queue provides.
func (s *Shell) execAll(external bool, fn func(*exec)) bool {
	if s.par == nil {
		return s.execSerial(external, fn)
	}
	return s.par.enqueue(0, s.par.all, external, fn)
}

// Workers reports the engine's partition count (1 = serial).
func (s *Shell) Workers() int { return s.workers }
