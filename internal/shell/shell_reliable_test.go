package shell

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/rule"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// brokenEndpoint rejects every send, like a raw TCP endpoint with a dead
// peer.
type brokenEndpoint struct{}

func (brokenEndpoint) Send(string, transport.Message) error {
	return errors.New("connection refused")
}
func (brokenEndpoint) Close() error { return nil }

const twoSiteSpec = `
site S
site R
private X @ S
private Y @ R
rule r: Ws(X, b) ->1s W(Y, b)
`

func TestSendFailureReportEnrichedAndCounted(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, err := rule.ParseSpecString(twoSiteSpec)
	if err != nil {
		t.Fatal(err)
	}
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("S", nil)
	s.Route("R", "remote")
	s.AttachEndpoint(brokenEndpoint{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Spontaneous(data.Item("X"), data.NullValue, data.NewInt(1))
	clk.Advance(time.Second)
	fs := s.Failures()
	if len(fs) != 1 {
		t.Fatalf("failures = %v", fs)
	}
	f := fs[0]
	if f.Kind != cmi.FailMetric || f.Site != "R" {
		t.Fatalf("failure = %+v", f)
	}
	// The report names the rule and the target shell.
	if !strings.Contains(f.Op, "r") || !strings.Contains(f.Err.Error(), "rule r") ||
		!strings.Contains(f.Err.Error(), "shell remote") {
		t.Fatalf("unenriched failure: op=%q err=%q", f.Op, f.Err)
	}
	st := s.Delivery()
	if st.RemoteFires != 1 || st.DroppedFires != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecoveredMessageClearsLinkFailures(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, _ := rule.ParseSpecString("site S\nprivate X @ S\n")
	s := New("s", spec, Options{Clock: clk})
	s.AddSite("S", nil)
	s.Receive(transport.Message{Kind: "failure", FailSite: "R", FailKind: "metric", FailOp: "link", FailErr: "down"})
	s.Receive(transport.Message{Kind: "failure", FailSite: "R", FailKind: "metric", FailOp: "send", FailErr: "other"})
	if len(s.Failures()) != 2 {
		t.Fatalf("failures = %v", s.Failures())
	}
	s.Receive(transport.Message{Kind: "recovered", FailSite: "R", FailOp: "link"})
	fs := s.Failures()
	// Only the link failure is cleared; unrelated failures stay.
	if len(fs) != 1 || fs[0].Op != "send" {
		t.Fatalf("failures after recovery = %v", fs)
	}
}

// TestShellsSurvivePartitionWithReliableLinks drives a two-shell
// deployment over Reliable(Flaky(Bus)) through a full outage cycle:
// during the partition the sender records only metric link failures and
// keeps buffering; after heal the outbox replays in order, the remote
// write lands, and the recovery notification clears the link failures on
// both shells.
func TestShellsSurvivePartitionWithReliableLinks(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	spec, err := rule.ParseSpecString(twoSiteSpec)
	if err != nil {
		t.Fatal(err)
	}
	flaky := transport.NewFlaky(transport.NewBus(clk, 10*time.Millisecond),
		transport.FlakyOptions{Clock: clk})
	rel := transport.NewReliable(flaky, transport.ReliableOptions{
		Clock: clk, RetryInterval: time.Second, MaxBackoff: 2 * time.Second,
		FailThreshold: 2, Seed: 5,
	})
	a := New("a", spec, Options{Clock: clk})
	a.AddSite("S", nil)
	a.Route("R", "b")
	b := New("b", spec, Options{Clock: clk})
	b.AddSite("R", nil)
	b.Route("S", "a")
	if err := a.Attach(rel); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(rel); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	defer b.Stop()

	// Healthy link: the remote write propagates.
	a.Spontaneous(data.Item("X"), data.NullValue, data.NewInt(1))
	clk.Advance(5 * time.Second)
	if v, ok := b.ReadAux(data.Item("Y")); !ok || !v.Equal(data.NewInt(1)) {
		t.Fatalf("Y = %s, %v", v, ok)
	}

	// Outage: updates buffer, the link degrades to a metric failure.
	flaky.PartitionBoth("a", "b")
	a.Spontaneous(data.Item("X"), data.NewInt(1), data.NewInt(2))
	a.Spontaneous(data.Item("X"), data.NewInt(2), data.NewInt(3))
	clk.Advance(30 * time.Second)
	if v, _ := b.ReadAux(data.Item("Y")); !v.Equal(data.NewInt(1)) {
		t.Fatalf("Y crossed a partition: %s", v)
	}
	var metric, logical int
	for _, f := range a.Failures() {
		switch f.Kind {
		case cmi.FailMetric:
			metric++
		case cmi.FailLogical:
			logical++
		}
	}
	if metric == 0 || logical != 0 {
		t.Fatalf("during outage: %d metric, %d logical: %v", metric, logical, a.Failures())
	}
	// The retry cadence is driven by the virtual clock against seeded
	// backoff, so the 30s outage produces exactly this many fire
	// retransmission attempts for the two buffered updates.
	if st := a.Delivery(); st.RetriedFires != 28 {
		t.Fatalf("retried fires during outage = %d, want exactly 28: %+v", st.RetriedFires, st)
	}

	// Heal: ordered replay, then recovery clears the failures everywhere.
	flaky.HealAll()
	clk.Advance(30 * time.Second)
	if v, ok := b.ReadAux(data.Item("Y")); !ok || !v.Equal(data.NewInt(3)) {
		t.Fatalf("after heal Y = %s, %v", v, ok)
	}
	// Heal replays exactly the outage backlog — the two buffered fires
	// plus the retransmission in flight when the link came back — and
	// drops nothing.
	if st := a.Delivery(); st.ReplayedSends != 3 || st.DroppedFires != 0 {
		t.Fatalf("stats after heal: %+v, want exactly 3 replayed, 0 dropped", st)
	}
	for name, sh := range map[string]*Shell{"a": a, "b": b} {
		for _, f := range sh.Failures() {
			if f.Op == "link" {
				t.Fatalf("shell %s still records link failure after recovery: %v", name, f)
			}
		}
	}
}
