// Durable CM-private state.  Section 3.2 gives each CM-Shell private data
// items — constraint variables (Cx), flags, timestamps (Tb) — that exist
// nowhere but in the shell, so a crash without persistence silently
// erases them and every strategy built on them (banking sweeps, alarm
// monitors, demarcation limits) restarts from nothing.  EnableDurable
// journals every private write to a durable.Log and restores the
// interpretation on the next start, making the shell's auxiliary state as
// crash-proof as the databases it manages.

package shell

import (
	"encoding/json"
	"fmt"

	"cmtk/internal/data"
	"cmtk/internal/durable"
)

// pSetRec is the journal record type for one private-item write; its data
// is JSON {K: item key, V: literal encoding of the value}.
const pSetRec byte = 1

type pSet struct {
	K string
	V string
}

// durCheckpointBytes is the journal size that triggers compaction.
const durCheckpointBytes = 256 << 10

// EnableDurable makes the shell's private data crash-recoverable: the
// interpretation persisted in the store (log "shell-"+id) is restored,
// and every subsequent private write is journaled before the shell acts
// on it.  Call it after New and before Start or any traffic.  It returns
// the number of restored items.
func (s *Shell) EnableDurable(store *durable.Store) (int, error) {
	lg, rec, err := store.Log("shell-" + s.id)
	if err != nil {
		return 0, err
	}
	if rec == nil {
		return 0, fmt.Errorf("shell %s: durable log already in use", s.id)
	}
	restored, err := decodePrivate(rec)
	if err != nil {
		return 0, err
	}
	s.privMu.Lock()
	if s.dur != nil {
		s.privMu.Unlock()
		return 0, fmt.Errorf("shell %s: durable state already enabled", s.id)
	}
	for k, v := range restored {
		s.private[k] = v
	}
	s.dur = lg
	s.checkpointPrivateLocked()
	s.privMu.Unlock()
	store.OnClose(func() error {
		s.privMu.Lock()
		defer s.privMu.Unlock()
		s.checkpointPrivateLocked()
		return s.durErr
	})
	return len(restored), nil
}

// decodePrivate folds a recovery into an interpretation: the checkpoint
// snapshot (a JSON key→literal map), then each journaled write in order.
func decodePrivate(rec *durable.Recovery) (data.Interpretation, error) {
	out := data.NewInterpretation()
	if rec.Snapshot != nil {
		var snap map[string]string
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("shell: decoding private snapshot: %w", err)
		}
		for k, lit := range snap {
			v, err := data.ParseLiteral(lit)
			if err != nil {
				return nil, fmt.Errorf("shell: bad persisted value %s=%q: %w", k, lit, err)
			}
			out[k] = v
		}
	}
	for _, r := range rec.Records {
		if r.Type != pSetRec {
			continue
		}
		var p pSet
		if err := json.Unmarshal(r.Data, &p); err != nil {
			return nil, fmt.Errorf("shell: decoding private write: %w", err)
		}
		v, err := data.ParseLiteral(p.V)
		if err != nil {
			return nil, fmt.Errorf("shell: bad persisted value %s=%q: %w", p.K, p.V, err)
		}
		out[p.K] = v
	}
	return out, nil
}

// setPrivate is the single mutation point for CM-private data: every
// write lands in the interpretation and, when durable state is enabled,
// in the journal — in that order, under one critical section, so the
// journal never lags a state the rest of the shell has already seen.
func (s *Shell) setPrivate(item data.ItemName, v data.Value) {
	s.privMu.Lock()
	s.private.Set(item, v)
	s.journalPrivateLocked(item, v)
	s.privMu.Unlock()
}

func (s *Shell) journalPrivateLocked(item data.ItemName, v data.Value) {
	if s.dur == nil || s.durErr != nil {
		return
	}
	b, err := json.Marshal(pSet{K: item.Key(), V: v.String()})
	if err == nil {
		err = s.dur.Append(pSetRec, b)
	}
	if err != nil {
		// Latch, like a dead disk: whatever reached the log is what the
		// next incarnation recovers.
		s.durErr = err
		return
	}
	if s.dur.WALSize() >= durCheckpointBytes {
		s.checkpointPrivateLocked()
	}
}

// checkpointPrivateLocked snapshots the whole interpretation and
// truncates the journal.
func (s *Shell) checkpointPrivateLocked() {
	if s.dur == nil || s.durErr != nil {
		return
	}
	snap := make(map[string]string, len(s.private))
	for k, v := range s.private {
		snap[k] = v.String()
	}
	b, err := json.Marshal(snap)
	if err == nil {
		err = s.dur.Checkpoint(b)
	}
	if err != nil {
		s.durErr = err
	}
}

// DurableError reports the first private-state journaling failure, if any.
func (s *Shell) DurableError() error {
	s.privMu.RLock()
	defer s.privMu.RUnlock()
	return s.durErr
}
