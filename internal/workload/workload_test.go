package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKeys(t *testing.T) {
	ks := Keys(3)
	if len(ks) != 3 || ks[0] != "e1" || ks[2] != "e3" {
		t.Fatalf("Keys = %v", ks)
	}
	if len(Keys(0)) != 0 {
		t.Fatal("Keys(0) nonempty")
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Keys: Keys(5), N: 50, MeanGap: time.Second, Poisson: true, Zipf: true, DupFraction: 0.3}
	a := Stream(cfg)
	b := Stream(cfg)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamMonotoneTimes(t *testing.T) {
	us := Stream(Config{Seed: 1, Keys: Keys(2), N: 100, MeanGap: time.Second, Poisson: true})
	for i := 1; i < len(us); i++ {
		if us[i].At < us[i-1].At {
			t.Fatalf("times go backward at %d", i)
		}
	}
}

func TestStreamRegularGap(t *testing.T) {
	us := Stream(Config{Seed: 1, Keys: Keys(1), N: 5, MeanGap: 2 * time.Second})
	for i, u := range us {
		if want := time.Duration(i+1) * 2 * time.Second; u.At != want {
			t.Fatalf("update %d at %v, want %v", i, u.At, want)
		}
	}
}

func TestStreamDupFraction(t *testing.T) {
	// With DupFraction 1, after the first value per key everything repeats.
	us := Stream(Config{Seed: 1, Keys: Keys(1), N: 20, MeanGap: time.Second, DupFraction: 1})
	first := us[0].Value
	for _, u := range us {
		if u.Value != first {
			t.Fatalf("value changed despite dup=1: %v", us)
		}
	}
	// With DupFraction 0 every update changes the key's value.
	us0 := Stream(Config{Seed: 1, Keys: Keys(1), N: 20, MeanGap: time.Second})
	dv := DistinctValues(us0)
	if dv["e1"] != 20 {
		t.Fatalf("distinct = %v", dv)
	}
}

func TestStreamEmptyConfigs(t *testing.T) {
	if Stream(Config{}) != nil {
		t.Fatal("empty config produced updates")
	}
	if Stream(Config{N: 5}) != nil {
		t.Fatal("keyless config produced updates")
	}
}

func TestStatsHelpers(t *testing.T) {
	ds := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if Mean(ds) != 2*time.Second {
		t.Fatalf("Mean = %v", Mean(ds))
	}
	if Max(ds) != 3*time.Second {
		t.Fatalf("Max = %v", Max(ds))
	}
	if Percentile(ds, 50) != 2*time.Second {
		t.Fatalf("P50 = %v", Percentile(ds, 50))
	}
	if Percentile(ds, 100) != 3*time.Second {
		t.Fatalf("P100 = %v", Percentile(ds, 100))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Percentile(nil, 99) != 0 {
		t.Fatal("empty-slice helpers nonzero")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			d := time.Duration(r)
			if d < 0 {
				d = -d
			}
			ds[i] = d * time.Millisecond
		}
		lo := float64(pa % 101)
		hi := float64(pb % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := Percentile(ds, lo), Percentile(ds, hi)
		return a <= b && b <= Max(ds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
