package workload

import (
	"math/rand"
	"time"
)

// Phase is one segment of an open-loop arrival schedule.  The arrival
// rate moves linearly from StartRate to EndRate (updates per second) over
// Duration; a constant phase sets both to the same value.
type Phase struct {
	Duration  time.Duration
	StartRate float64
	EndRate   float64
}

// Schedule is an open-loop arrival plan: a sequence of rate phases.
// Where Stream describes a stream by interarrival gaps, Schedule is meant
// for open-loop drivers (cmd/cmload, E15) that fire at the planned
// instants whether or not earlier updates have completed — the arrival
// process never slows down for the system, so overload is reachable.
type Schedule struct {
	Phases []Phase
}

// Constant is a single-phase schedule at a fixed rate.
func Constant(rate float64, d time.Duration) Schedule {
	return Schedule{Phases: []Phase{{Duration: d, StartRate: rate, EndRate: rate}}}
}

// Ramp moves linearly from one rate to another over d.
func Ramp(from, to float64, d time.Duration) Schedule {
	return Schedule{Phases: []Phase{{Duration: d, StartRate: from, EndRate: to}}}
}

// Spike holds base rate, jumps to peak for spikeLen starting at spikeAt,
// then returns to base for the remainder of total.
func Spike(base, peak float64, total, spikeAt, spikeLen time.Duration) Schedule {
	if spikeAt < 0 {
		spikeAt = 0
	}
	if spikeAt+spikeLen > total {
		spikeLen = total - spikeAt
	}
	var ps []Phase
	if spikeAt > 0 {
		ps = append(ps, Phase{Duration: spikeAt, StartRate: base, EndRate: base})
	}
	if spikeLen > 0 {
		ps = append(ps, Phase{Duration: spikeLen, StartRate: peak, EndRate: peak})
	}
	if rest := total - spikeAt - spikeLen; rest > 0 {
		ps = append(ps, Phase{Duration: rest, StartRate: base, EndRate: base})
	}
	return Schedule{Phases: ps}
}

// Total is the schedule's full duration.
func (s Schedule) Total() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// RateAt returns the planned rate at offset off from the schedule start.
// Offsets past the end report the final rate; negative offsets the first.
func (s Schedule) RateAt(off time.Duration) float64 {
	if len(s.Phases) == 0 {
		return 0
	}
	if off < 0 {
		return s.Phases[0].StartRate
	}
	for _, p := range s.Phases {
		if off < p.Duration {
			if p.Duration <= 0 {
				return p.StartRate
			}
			frac := float64(off) / float64(p.Duration)
			return p.StartRate + (p.EndRate-p.StartRate)*frac
		}
		off -= p.Duration
	}
	return s.Phases[len(s.Phases)-1].EndRate
}

// Arrivals returns the deterministic open-loop arrival offsets: starting
// at the schedule origin, each next arrival is one reciprocal-rate gap
// after the previous, evaluated at the instantaneous planned rate.  A
// constant phase of rate r and duration d therefore contributes exactly
// floor(r·d/1s) arrivals, which keeps campaign assertions exact.  Phases
// at rate <= 0 contribute nothing (a planned quiet period).
func (s Schedule) Arrivals() []time.Duration {
	total := s.Total()
	var out []time.Duration
	at := time.Duration(0)
	for at < total {
		r := s.RateAt(at)
		if r <= 0 {
			// Skip to the next phase boundary.
			var edge time.Duration
			for _, p := range s.Phases {
				edge += p.Duration
				if edge > at {
					break
				}
			}
			if edge <= at {
				break
			}
			at = edge
			continue
		}
		gap := time.Duration(float64(time.Second) / r)
		if gap <= 0 {
			gap = time.Nanosecond
		}
		at += gap
		if at > total {
			break
		}
		out = append(out, at)
	}
	return out
}

// TimedUpdate is one open-loop update with its admission deadline: the
// driver fires it at At and expects the mesh to have executed the
// resulting constraint actions by At+Deadline.
type TimedUpdate struct {
	Update
	Deadline time.Duration
}

// Updates maps the schedule's arrivals onto keyed updates.  Keys are
// chosen by a seeded PRNG (uniform) and every update writes a fresh
// value, so each one forces real constraint propagation.  deadline is
// attached verbatim to every update.
func (s Schedule) Updates(keys []string, seed int64, deadline time.Duration) []TimedUpdate {
	arrivals := s.Arrivals()
	if len(keys) == 0 || len(arrivals) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	next := int64(5000)
	out := make([]TimedUpdate, 0, len(arrivals))
	for _, at := range arrivals {
		next++
		out = append(out, TimedUpdate{
			Update:   Update{At: at, Key: keys[rng.Intn(len(keys))], Value: next},
			Deadline: deadline,
		})
	}
	return out
}
