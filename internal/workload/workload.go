// Package workload generates deterministic update streams for the
// benchmark harness: keyed updates with uniform or Zipf key popularity,
// regular or Poisson arrivals, and tunable duplicate-value fractions (for
// the cached-propagation ablation).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Keys returns n employee-style keys e1..en.
func Keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("e%d", i+1)
	}
	return out
}

// Update is one application write.
type Update struct {
	At    time.Duration // offset from stream start
	Key   string
	Value int64
}

// Config tunes a stream.
type Config struct {
	Seed int64
	Keys []string
	// N is the number of updates.
	N int
	// MeanGap is the mean interarrival time.
	MeanGap time.Duration
	// Poisson selects exponential interarrivals; false means regular.
	Poisson bool
	// Zipf skews key popularity (s=1.2); false means uniform.
	Zipf bool
	// DupFraction in [0,1] is the probability an update repeats the key's
	// current value instead of changing it.
	DupFraction float64
}

// Stream generates the configured update sequence.  The same Config
// always yields the same stream.
func Stream(cfg Config) []Update {
	if cfg.N <= 0 || len(cfg.Keys) == 0 {
		return nil
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Zipf && len(cfg.Keys) > 1 {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(len(cfg.Keys)-1))
	}
	current := map[string]int64{}
	next := int64(1000)
	at := time.Duration(0)
	out := make([]Update, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if cfg.Poisson {
			at += time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		} else {
			at += cfg.MeanGap
		}
		var key string
		if zipf != nil {
			key = cfg.Keys[zipf.Uint64()]
		} else {
			key = cfg.Keys[rng.Intn(len(cfg.Keys))]
		}
		var val int64
		if cur, ok := current[key]; ok && rng.Float64() < cfg.DupFraction {
			val = cur
		} else {
			next++
			val = next
		}
		current[key] = val
		out = append(out, Update{At: at, Key: key, Value: val})
	}
	return out
}

// DistinctValues counts, per key, how many distinct consecutive values
// the stream assigns — the number of changes the replica must see for the
// leads guarantee to hold.
func DistinctValues(us []Update) map[string]int {
	out := map[string]int{}
	last := map[string]int64{}
	for _, u := range us {
		if prev, ok := last[u.Key]; !ok || prev != u.Value {
			out[u.Key]++
			last[u.Key] = u.Value
		}
	}
	return out
}

// Mean returns the arithmetic mean of ds.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Max returns the maximum of ds.
func Max(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of ds.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration{}, ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
