package workload

import (
	"testing"
	"time"
)

func TestConstantScheduleExactArrivals(t *testing.T) {
	s := Constant(10, 2*time.Second) // 10/s for 2s → exactly 20 arrivals
	got := s.Arrivals()
	if len(got) != 20 {
		t.Fatalf("constant 10/s x 2s: got %d arrivals, want 20", len(got))
	}
	for i, at := range got {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
	if s.Total() != 2*time.Second {
		t.Fatalf("Total = %v, want 2s", s.Total())
	}
}

func TestRampScheduleRatesAndMonotoneGaps(t *testing.T) {
	s := Ramp(10, 100, 10*time.Second)
	if r := s.RateAt(0); r != 10 {
		t.Fatalf("RateAt(0) = %v, want 10", r)
	}
	if r := s.RateAt(5 * time.Second); r != 55 {
		t.Fatalf("RateAt(5s) = %v, want 55", r)
	}
	if r := s.RateAt(20 * time.Second); r != 100 {
		t.Fatalf("RateAt(past end) = %v, want 100", r)
	}
	got := s.Arrivals()
	if len(got) == 0 {
		t.Fatal("ramp produced no arrivals")
	}
	// Open-loop ramp: interarrival gaps must shrink monotonically.
	for i := 2; i < len(got); i++ {
		prev := got[i-1] - got[i-2]
		cur := got[i] - got[i-1]
		if cur > prev {
			t.Fatalf("gap grew during up-ramp at arrival %d: %v after %v", i, cur, prev)
		}
	}
	// Determinism: same schedule, same arrivals.
	again := s.Arrivals()
	if len(again) != len(got) {
		t.Fatalf("non-deterministic arrival count: %d vs %d", len(again), len(got))
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("non-deterministic arrival %d: %v vs %v", i, got[i], again[i])
		}
	}
}

func TestSpikeSchedulePhases(t *testing.T) {
	s := Spike(5, 50, 10*time.Second, 4*time.Second, 2*time.Second)
	if len(s.Phases) != 3 {
		t.Fatalf("spike phases = %d, want 3", len(s.Phases))
	}
	if r := s.RateAt(1 * time.Second); r != 5 {
		t.Fatalf("pre-spike rate = %v, want 5", r)
	}
	if r := s.RateAt(5 * time.Second); r != 50 {
		t.Fatalf("in-spike rate = %v, want 50", r)
	}
	if r := s.RateAt(8 * time.Second); r != 5 {
		t.Fatalf("post-spike rate = %v, want 5", r)
	}
	// 5/s·4s + 50/s·2s + 5/s·4s = 20 + 100 + 20 = 140 arrivals.
	if got := s.Arrivals(); len(got) != 140 {
		t.Fatalf("spike arrivals = %d, want 140", len(got))
	}
}

func TestScheduleUpdatesDeterministicFreshValues(t *testing.T) {
	s := Constant(20, time.Second)
	us := s.Updates(Keys(4), 7, 250*time.Millisecond)
	if len(us) != 20 {
		t.Fatalf("updates = %d, want 20", len(us))
	}
	seen := map[int64]bool{}
	for i, u := range us {
		if u.Deadline != 250*time.Millisecond {
			t.Fatalf("update %d deadline = %v", i, u.Deadline)
		}
		if seen[u.Value] {
			t.Fatalf("update %d reuses value %d", i, u.Value)
		}
		seen[u.Value] = true
	}
	again := s.Updates(Keys(4), 7, 250*time.Millisecond)
	for i := range us {
		if us[i] != again[i] {
			t.Fatalf("non-deterministic update %d: %+v vs %+v", i, us[i], again[i])
		}
	}
}
