package event

import (
	"testing"
	"testing/quick"
	"time"

	"cmtk/internal/data"
)

func item(base string, args ...data.Value) data.ItemName { return data.Item(base, args...) }

func TestDescString(t *testing.T) {
	cases := []struct {
		d    Desc
		want string
	}{
		{W(item("X"), data.NewInt(5)), "W(X, 5)"},
		{Ws(item("X"), data.NullValue, data.NewInt(5)), "Ws(X, 5)"},
		{Ws(item("X"), data.NewInt(4), data.NewInt(5)), "Ws(X, 4, 5)"},
		{WR(item("Y"), data.NewString("v")), `WR(Y, "v")`},
		{RR(item("X")), "RR(X)"},
		{R(item("X"), data.NewInt(1)), "R(X, 1)"},
		{N(item("salary1", data.NewString("e7")), data.NewInt(100)), `N(salary1("e7"), 100)`},
		{P(300 * time.Second), "P(300)"},
		{Desc{Op: OpF}, "F"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestOpProperties(t *testing.T) {
	if !OpW.IsWrite() || !OpWs.IsWrite() {
		t.Error("performed writes not IsWrite")
	}
	for _, op := range []Op{OpWR, OpRR, OpR, OpN, OpP, OpF} {
		if op.IsWrite() {
			t.Errorf("%v IsWrite", op)
		}
	}
	if !OpWs.HasOldValue() || OpW.HasOldValue() {
		t.Error("HasOldValue wrong")
	}
	if OpRR.HasValue() || !OpN.HasValue() {
		t.Error("HasValue wrong")
	}
	if OpP.HasItem() || OpF.HasItem() || !OpRR.HasItem() {
		t.Error("HasItem wrong")
	}
}

func TestOpFromName(t *testing.T) {
	for _, op := range []Op{OpW, OpWs, OpWR, OpRR, OpR, OpN, OpP, OpF} {
		if got := OpFromName(op.String()); got != op {
			t.Errorf("OpFromName(%s) = %v", op, got)
		}
	}
	if OpFromName("XYZ") != OpInvalid {
		t.Error("unknown name not OpInvalid")
	}
}

func TestTemplateMatchSimple(t *testing.T) {
	// N(X, b) against N(X, 5) binds b=5.
	tpl := TN(ItemT("X"), Param("b"))
	b, ok := tpl.Match(N(item("X"), data.NewInt(5)))
	if !ok {
		t.Fatal("no match")
	}
	if !b["b"].Equal(data.NewInt(5)) {
		t.Fatalf("b = %v", b)
	}
	// Different op does not match.
	if _, ok := tpl.Match(W(item("X"), data.NewInt(5))); ok {
		t.Error("N template matched W event")
	}
	// Different item does not match.
	if _, ok := tpl.Match(N(item("Y"), data.NewInt(5))); ok {
		t.Error("matched wrong item")
	}
}

func TestTemplateMatchParameterizedItem(t *testing.T) {
	// N(salary1(n), b) against N(salary1("e7"), 100).
	tpl := TN(ItemT("salary1", Param("n")), Param("b"))
	d := N(item("salary1", data.NewString("e7")), data.NewInt(100))
	b, ok := tpl.Match(d)
	if !ok {
		t.Fatal("no match")
	}
	if !b["n"].Equal(data.NewString("e7")) || !b["b"].Equal(data.NewInt(100)) {
		t.Fatalf("bindings = %v", b)
	}
	// Arity mismatch.
	if _, ok := tpl.Match(N(item("salary1"), data.NewInt(1))); ok {
		t.Error("matched wrong arity")
	}
}

func TestTemplateMatchLiteralAndWildcard(t *testing.T) {
	// WR(X, 5) only matches value 5.
	tpl := TWR(ItemT("X"), Lit(data.NewInt(5)))
	if _, ok := tpl.Match(WR(item("X"), data.NewInt(5))); !ok {
		t.Error("literal failed to match")
	}
	if _, ok := tpl.Match(WR(item("X"), data.NewInt(6))); ok {
		t.Error("literal matched wrong value")
	}
	// W(*, *) style: wildcard value.
	tpl2 := TW(ItemT("X"), Wild())
	if _, ok := tpl2.Match(W(item("X"), data.NewInt(99))); !ok {
		t.Error("wildcard failed to match")
	}
}

func TestTemplateRepeatedParamMustAgree(t *testing.T) {
	// Ws(X, b, b): old and new must be equal for a match.
	tpl := TWs(ItemT("X"), Param("b"), Param("b"))
	if _, ok := tpl.Match(Ws(item("X"), data.NewInt(3), data.NewInt(3))); !ok {
		t.Error("repeated param equal values failed")
	}
	if _, ok := tpl.Match(Ws(item("X"), data.NewInt(3), data.NewInt(4))); ok {
		t.Error("repeated param unequal values matched")
	}
}

func TestTemplateWsShorthand(t *testing.T) {
	// Ws(X, b) = Ws(X, *, b) matches any old value.
	tpl := TWs2(ItemT("X"), Param("b"))
	b, ok := tpl.Match(Ws(item("X"), data.NewInt(1), data.NewInt(2)))
	if !ok || !b["b"].Equal(data.NewInt(2)) {
		t.Fatalf("shorthand match = %v, %v", b, ok)
	}
	if got := tpl.String(); got != "Ws(X, b)" {
		t.Errorf("String = %q", got)
	}
	full := TWs(ItemT("X"), Param("a"), Param("b"))
	if got := full.String(); got != "Ws(X, a, b)" {
		t.Errorf("String = %q", got)
	}
}

func TestFalseTemplateNeverMatches(t *testing.T) {
	tpl := TF()
	for _, d := range []Desc{
		W(item("X"), data.NewInt(1)),
		P(time.Second),
		{Op: OpF},
	} {
		if _, ok := tpl.Match(d); ok {
			t.Errorf("F matched %s", d)
		}
	}
	if _, err := tpl.Subst(Bindings{}); err == nil {
		t.Error("instantiating F succeeded")
	}
}

func TestPeriodicTemplateMatch(t *testing.T) {
	tpl := TP(300 * time.Second)
	if _, ok := tpl.Match(P(300 * time.Second)); !ok {
		t.Error("P(300) failed to match")
	}
	if _, ok := tpl.Match(P(60 * time.Second)); ok {
		t.Error("P(300) matched P(60)")
	}
}

func TestSubst(t *testing.T) {
	tpl := TWR(ItemT("salary2", Param("n")), Param("b"))
	b := Bindings{"n": data.NewString("e7"), "b": data.NewInt(100)}
	d, err := tpl.Subst(b)
	if err != nil {
		t.Fatal(err)
	}
	want := WR(item("salary2", data.NewString("e7")), data.NewInt(100))
	if !d.Equal(want) {
		t.Fatalf("Subst = %s, want %s", d, want)
	}
}

func TestSubstUnboundFails(t *testing.T) {
	tpl := TWR(ItemT("Y"), Param("missing"))
	if _, err := tpl.Subst(Bindings{}); err == nil {
		t.Error("unbound parameter substitution succeeded")
	}
	tplW := TWR(ItemT("Y"), Wild())
	if _, err := tplW.Subst(Bindings{}); err == nil {
		t.Error("wildcard substitution succeeded")
	}
}

func TestSubstWsOldValue(t *testing.T) {
	tpl := TWs(ItemT("X"), Param("a"), Param("b"))
	b := Bindings{"a": data.NewInt(1), "b": data.NewInt(2)}
	d, err := tpl.Subst(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OldVal.Equal(data.NewInt(1)) || !d.Val.Equal(data.NewInt(2)) {
		t.Fatalf("Subst = %s", d)
	}
}

func TestParams(t *testing.T) {
	tpl := TWs(ItemT("phone", Param("n")), Param("a"), Param("b"))
	ps := tpl.Params()
	want := map[string]bool{"n": true, "a": true, "b": true}
	if len(ps) != 3 {
		t.Fatalf("Params = %v", ps)
	}
	for _, p := range ps {
		if !want[p] {
			t.Fatalf("unexpected param %q", p)
		}
	}
	if got := TP(time.Second).Params(); len(got) != 0 {
		t.Errorf("P params = %v", got)
	}
}

func TestEventSpontaneousAndString(t *testing.T) {
	e := &Event{
		Time: time.Date(1996, 2, 26, 9, 0, 0, 0, time.UTC),
		Seq:  7,
		Site: "A",
		Desc: Ws(item("X"), data.NullValue, data.NewInt(5)),
	}
	if !e.Spontaneous() {
		t.Error("event with no rule not spontaneous")
	}
	gen := &Event{Desc: W(item("Y"), data.NewInt(5)), Rule: "r1", Trigger: e}
	if gen.Spontaneous() {
		t.Error("generated event spontaneous")
	}
	if s := e.String(); s == "" {
		t.Error("empty String")
	}
	if s := gen.String(); s == "" || !contains(s, "r1") {
		t.Errorf("generated String = %q, want rule id", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (stringIndex(s, sub) >= 0))
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestBindingsClone(t *testing.T) {
	b := Bindings{"x": data.NewInt(1)}
	c := b.Clone()
	c["x"] = data.NewInt(2)
	if !b["x"].Equal(data.NewInt(1)) {
		t.Error("Clone aliases")
	}
}

// Property: match-then-subst is the identity on ground descriptors, for any
// template whose slots are all parameters (the fully general template).
func TestQuickMatchSubstRoundTrip(t *testing.T) {
	f := func(base string, argI int64, val int64, opSel uint8) bool {
		if base == "" {
			base = "X"
		}
		ops := []Op{OpW, OpWR, OpR, OpN}
		op := ops[int(opSel)%len(ops)]
		it := item(base, data.NewInt(argI))
		d := Desc{Op: op, Item: it, Val: data.NewInt(val)}
		tpl := Template{Op: op, Item: ItemT(base, Param("k")), ValT: Param("v")}
		b, ok := tpl.Match(d)
		if !ok {
			return false
		}
		got, err := tpl.Subst(b)
		if err != nil {
			return false
		}
		return got.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a template never matches a descriptor with a different op.
func TestQuickOpMismatchNeverMatches(t *testing.T) {
	f := func(a, b uint8) bool {
		ops := []Op{OpW, OpWs, OpWR, OpRR, OpR, OpN}
		opA, opB := ops[int(a)%len(ops)], ops[int(b)%len(ops)]
		if opA == opB {
			return true
		}
		tpl := Template{Op: opA, Item: ItemT("X"), OldT: Wild(), ValT: Wild()}
		d := Desc{Op: opB, Item: item("X"), Val: data.NewInt(1)}
		_, ok := tpl.Match(d)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
