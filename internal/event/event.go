// Package event implements the event model of the paper's framework
// (Section 3.1 and Appendix A.1): event descriptors, the six-tuple event
// record, event templates with parameters and wildcards, and the matching
// interpretation mi(E, 𝓔).
//
// Descriptor vocabulary (Section 3.1.1):
//
//	W(X, b)      the database performs the write X ← b (generated)
//	Ws(X, a, b)  an application spontaneously writes X from a to b;
//	             Ws(X, b) is shorthand for Ws(X, *, b)
//	WR(X, b)     the database receives a write request X ← b from the CM
//	RR(X)        the database receives a read request for X from the CM
//	R(X, b)      the CM receives the read response: X had value b
//	N(X, b)      the CM receives a notification of the update X ← b
//	P(p)         a periodic event that occurs every p seconds by definition
//	F            the false event, which never occurs
//
// Deleting an item is modeled as writing null to it, which makes the
// existence predicate E(X) of Section 6.2 expressible over interpretations.
package event

import (
	"fmt"
	"strings"
	"time"

	"cmtk/internal/data"
)

// Op enumerates the event descriptor kinds.
type Op int

// Event operation kinds.
const (
	OpInvalid Op = iota
	OpW          // generated write performed
	OpWs         // spontaneous write performed
	OpWR         // write request received
	OpRR         // read request received
	OpR          // read response received
	OpN          // notification received
	OpP          // periodic event
	OpF          // the false event
)

var opNames = map[Op]string{
	OpW:  "W",
	OpWs: "Ws",
	OpWR: "WR",
	OpRR: "RR",
	OpR:  "R",
	OpN:  "N",
	OpP:  "P",
	OpF:  "F",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// OpFromName parses an operation name; it returns OpInvalid for unknown
// names.
func OpFromName(s string) Op {
	for op, name := range opNames {
		if name == s {
			return op
		}
	}
	return OpInvalid
}

// HasOldValue reports whether the op carries an old-value slot (only the
// three-argument spontaneous write Ws(X, a, b)).
func (o Op) HasOldValue() bool { return o == OpWs }

// HasValue reports whether the op carries a value slot.
func (o Op) HasValue() bool {
	switch o {
	case OpW, OpWs, OpWR, OpR, OpN:
		return true
	default:
		return false
	}
}

// HasItem reports whether the op names a data item.
func (o Op) HasItem() bool { return o != OpP && o != OpF && o != OpInvalid }

// IsWrite reports whether the op changes the system state (Appendix A.2
// property 2): only performed writes do; requests and notifications do not.
func (o Op) IsWrite() bool { return o == OpW || o == OpWs }

// Desc is a ground event descriptor: an operation applied to concrete
// arguments.  Unused slots hold zero values.
type Desc struct {
	Op     Op
	Item   data.ItemName // for item-bearing ops
	OldVal data.Value    // only for Ws
	Val    data.Value    // for value-bearing ops
	Period time.Duration // only for P
}

// W builds a generated-write descriptor W(item, v).
func W(item data.ItemName, v data.Value) Desc { return Desc{Op: OpW, Item: item, Val: v} }

// Ws builds a spontaneous-write descriptor Ws(item, old, v).
func Ws(item data.ItemName, old, v data.Value) Desc {
	return Desc{Op: OpWs, Item: item, OldVal: old, Val: v}
}

// WR builds a write-request descriptor WR(item, v).
func WR(item data.ItemName, v data.Value) Desc { return Desc{Op: OpWR, Item: item, Val: v} }

// RR builds a read-request descriptor RR(item).
func RR(item data.ItemName) Desc { return Desc{Op: OpRR, Item: item} }

// R builds a read-response descriptor R(item, v).
func R(item data.ItemName, v data.Value) Desc { return Desc{Op: OpR, Item: item, Val: v} }

// N builds a notification descriptor N(item, v).
func N(item data.ItemName, v data.Value) Desc { return Desc{Op: OpN, Item: item, Val: v} }

// P builds a periodic descriptor P(period).
func P(period time.Duration) Desc { return Desc{Op: OpP, Period: period} }

// String renders the descriptor in the paper's syntax, e.g. N(salary1("e7"), 100).
func (d Desc) String() string {
	switch d.Op {
	case OpF:
		return "F"
	case OpP:
		return fmt.Sprintf("P(%g)", d.Period.Seconds())
	case OpRR:
		return fmt.Sprintf("RR(%s)", d.Item)
	case OpWs:
		if d.OldVal.IsNull() {
			return fmt.Sprintf("Ws(%s, %s)", d.Item, d.Val)
		}
		return fmt.Sprintf("Ws(%s, %s, %s)", d.Item, d.OldVal, d.Val)
	default:
		return fmt.Sprintf("%s(%s, %s)", d.Op, d.Item, d.Val)
	}
}

// Equal reports descriptor equality.
func (d Desc) Equal(e Desc) bool {
	return d.Op == e.Op &&
		d.Item.Equal(e.Item) &&
		d.OldVal.Equal(e.OldVal) &&
		d.Val.Equal(e.Val) &&
		d.Period == e.Period
}

// Event is the six-tuple of Appendix A.1: (time, desc, old, new, rule,
// trigger), extended with the site at which the event occurs ("each event
// has a unique site") and a global sequence number used for deterministic
// ordering and tracing.
//
// The old and new interpretations are views, read through Old and New:
// a trace that stores state as per-item version timelines installs a
// StateSource and the views are reconstructed on demand, so appending an
// event costs O(1) instead of cloning the whole interpretation.  Events
// that never joined such a trace (stub triggers, hand-built tests) carry
// eager interpretations set with SetStates.
type Event struct {
	Time time.Time
	Seq  uint64
	Site string
	// Host is the shell that recorded the event.  In static deployments a
	// site lives on exactly one shell, so Host adds no information; in a
	// sharded fleet one site spans many shells and Host identifies which
	// shard executed — the checker's in-order property (Appendix A.2
	// property 7) holds per (site, host) link, the granularity at which
	// the mesh actually guarantees FIFO delivery.
	Host    string
	Desc    Desc
	Rule    string // ID of the rule whose firing generated this event; "" if spontaneous
	Trigger *Event // event that caused Rule to fire; nil if spontaneous

	// state views: eager interpretations win over the lazy source, so a
	// test can override what a trace recorded.
	old, new data.Interpretation
	src      StateSource
}

// StateSource reconstructs the interpretations around an event from a
// versioned store, keyed by the event's sequence number.
type StateSource interface {
	// StateBefore returns the interpretation in force before event seq.
	StateBefore(seq uint64) data.Interpretation
	// StateAfter returns the interpretation in force after event seq.
	StateAfter(seq uint64) data.Interpretation
}

// Old returns the interpretation in force when the event occurred.  The
// result must be treated as read-only when a StateSource is not installed
// (it may alias state shared with neighbouring events).
func (e *Event) Old() data.Interpretation {
	if e.old != nil || e.src == nil {
		return e.old
	}
	return e.src.StateBefore(e.Seq)
}

// New returns the interpretation the event left in force (property 2 of
// Appendix A.2).  Read-only under the same rule as Old.
func (e *Event) New() data.Interpretation {
	if e.new != nil || e.src == nil {
		return e.new
	}
	return e.src.StateAfter(e.Seq)
}

// SetStates installs eager old/new interpretations, overriding any
// StateSource (used by cloning traces, stub triggers and tests).
func (e *Event) SetStates(old, new data.Interpretation) {
	e.old, e.new = old, new
}

// SetStateSource installs the lazy view source; the trace that assigned
// the event's sequence number calls this during Append.
func (e *Event) SetStateSource(src StateSource) { e.src = src }

// HasEagerStates reports whether eager interpretations are installed, in
// which case Old/New answer from them instead of the StateSource.
// Sequential readers (the trace checker, guarantee walkers) use this to
// replay state incrementally for source-backed events and pay the full
// materialization only for overridden ones.
func (e *Event) HasEagerStates() bool { return e.old != nil || e.new != nil }

// Spontaneous reports whether the event occurred independently of the
// constraint manager (Appendix A.2 property 4).
func (e *Event) Spontaneous() bool { return e.Rule == "" && e.Trigger == nil }

// String renders a compact single-line form for logs and test failures.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s @%s #%d] %s", e.Site, e.Time.Format("15:04:05.000"), e.Seq, e.Desc)
	if e.Rule != "" {
		fmt.Fprintf(&b, " by %s", e.Rule)
	}
	return b.String()
}

// Bindings maps parameter names to the values a template match assigned
// them; it is the matching interpretation mi(E, 𝓔) of Appendix A.1.
type Bindings map[string]data.Value

// Clone returns a copy of the bindings.
func (b Bindings) Clone() Bindings {
	out := make(Bindings, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// bind records name=v, failing when name is already bound to a different
// value (a template like W(X, b, b) requires both slots equal).
func (b Bindings) bind(name string, v data.Value) bool {
	if old, ok := b[name]; ok {
		return old.Equal(v)
	}
	b[name] = v
	return true
}

// Term is one argument slot of a template: a literal value, a parameter to
// bind, or a wildcard.
type Term struct {
	kind  termKind
	lit   data.Value
	param string
}

type termKind int

const (
	termLit termKind = iota
	termParam
	termWild
)

// Lit returns a literal term.
func Lit(v data.Value) Term { return Term{kind: termLit, lit: v} }

// Param returns a parameter term with the given name.
func Param(name string) Term { return Term{kind: termParam, param: name} }

// Wild returns the wildcard term "*".
func Wild() Term { return Term{kind: termWild} }

// IsParam reports whether the term is a parameter, returning its name.
func (t Term) IsParam() (string, bool) { return t.param, t.kind == termParam }

// IsWild reports whether the term is the wildcard.
func (t Term) IsWild() bool { return t.kind == termWild }

// IsLit reports whether the term is a literal, returning its value.
func (t Term) IsLit() (data.Value, bool) { return t.lit, t.kind == termLit }

// String renders the term in template syntax.
func (t Term) String() string {
	switch t.kind {
	case termLit:
		return t.lit.String()
	case termParam:
		return t.param
	default:
		return "*"
	}
}

// match attempts to match the term against a concrete value, extending b.
func (t Term) match(v data.Value, b Bindings) bool {
	switch t.kind {
	case termWild:
		return true
	case termLit:
		return t.lit.Equal(v)
	default:
		return b.bind(t.param, v)
	}
}

// subst instantiates the term under bindings.  Wildcards and unbound
// parameters are errors: a rule's RHS must be fully determined by its LHS
// match (Appendix A.1: RHS-only variables are existentially quantified and
// our implementation requires them to be absent from generated events).
func (t Term) subst(b Bindings) (data.Value, error) {
	switch t.kind {
	case termLit:
		return t.lit, nil
	case termWild:
		return data.NullValue, fmt.Errorf("event: wildcard in substitution position")
	default:
		v, ok := b[t.param]
		if !ok {
			return data.NullValue, fmt.Errorf("event: unbound parameter %q", t.param)
		}
		return v, nil
	}
}

// ItemTemplate is a possibly-parameterized data item name, e.g.
// salary1(n): a literal base with term arguments.
type ItemTemplate struct {
	Base string
	Args []Term
}

// ItemT builds an item template.
func ItemT(base string, args ...Term) ItemTemplate { return ItemTemplate{Base: base, Args: args} }

// GroundItem builds a template that matches exactly one concrete item.
func GroundItem(n data.ItemName) ItemTemplate {
	args := make([]Term, len(n.Args))
	for i, a := range n.Args {
		args[i] = Lit(a)
	}
	return ItemTemplate{Base: n.Base, Args: args}
}

// String renders salary1(n) style.
func (it ItemTemplate) String() string {
	if len(it.Args) == 0 {
		return it.Base
	}
	parts := make([]string, len(it.Args))
	for i, a := range it.Args {
		parts[i] = a.String()
	}
	return it.Base + "(" + strings.Join(parts, ", ") + ")"
}

// Match attempts to match the template against a concrete item name.
func (it ItemTemplate) Match(n data.ItemName, b Bindings) bool {
	if it.Base != n.Base || len(it.Args) != len(n.Args) {
		return false
	}
	for i, a := range it.Args {
		if !a.match(n.Args[i], b) {
			return false
		}
	}
	return true
}

// Subst instantiates the template into a concrete item name.
func (it ItemTemplate) Subst(b Bindings) (data.ItemName, error) {
	args := make([]data.Value, len(it.Args))
	for i, a := range it.Args {
		v, err := a.subst(b)
		if err != nil {
			return data.ItemName{}, fmt.Errorf("event: item %s: %w", it.Base, err)
		}
		args[i] = v
	}
	return data.ItemName{Base: it.Base, Args: args}, nil
}

// Params returns the parameter names appearing in the template.
func (it ItemTemplate) Params() []string {
	var ps []string
	for _, a := range it.Args {
		if n, ok := a.IsParam(); ok {
			ps = append(ps, n)
		}
	}
	return ps
}

// Template is an event template 𝓔: an operation with term slots.  It
// represents the set of ground descriptors obtained by substituting values
// for parameters and wildcards.
type Template struct {
	Op     Op
	Item   ItemTemplate  // for item-bearing ops
	OldT   Term          // only for Ws; Lit(null) when the two-argument shorthand was used
	ValT   Term          // for value-bearing ops
	Period time.Duration // only for P; periods are always literal
}

// TW etc. build templates for each op.
func TW(item ItemTemplate, v Term) Template  { return Template{Op: OpW, Item: item, ValT: v} }
func TWR(item ItemTemplate, v Term) Template { return Template{Op: OpWR, Item: item, ValT: v} }
func TR(item ItemTemplate, v Term) Template  { return Template{Op: OpR, Item: item, ValT: v} }
func TN(item ItemTemplate, v Term) Template  { return Template{Op: OpN, Item: item, ValT: v} }
func TRR(item ItemTemplate) Template         { return Template{Op: OpRR, Item: item} }
func TP(p time.Duration) Template            { return Template{Op: OpP, Period: p} }
func TF() Template                           { return Template{Op: OpF} }

// TWs builds the three-argument spontaneous write template Ws(item, old, new).
func TWs(item ItemTemplate, old, v Term) Template {
	return Template{Op: OpWs, Item: item, OldT: old, ValT: v}
}

// TWs2 builds the two-argument shorthand Ws(item, new) = Ws(item, *, new).
func TWs2(item ItemTemplate, v Term) Template {
	return Template{Op: OpWs, Item: item, OldT: Wild(), ValT: v}
}

// String renders the template in the paper's syntax.
func (t Template) String() string {
	switch t.Op {
	case OpF:
		return "F"
	case OpP:
		return fmt.Sprintf("P(%g)", t.Period.Seconds())
	case OpRR:
		return fmt.Sprintf("RR(%s)", t.Item)
	case OpWs:
		if t.OldT.IsWild() {
			return fmt.Sprintf("Ws(%s, %s)", t.Item, t.ValT)
		}
		return fmt.Sprintf("Ws(%s, %s, %s)", t.Item, t.OldT, t.ValT)
	default:
		return fmt.Sprintf("%s(%s, %s)", t.Op, t.Item, t.ValT)
	}
}

// Match attempts to match a ground descriptor against the template,
// returning the matching interpretation mi(E, 𝓔).  The false template F
// matches nothing by definition.
func (t Template) Match(d Desc) (Bindings, bool) {
	b := Bindings{}
	if !t.MatchInto(d, b) {
		return nil, false
	}
	return b, true
}

// MatchInto matches against d extending existing bindings b; on failure b
// may be partially extended and should be discarded.
func (t Template) MatchInto(d Desc, b Bindings) bool {
	if t.Op == OpF || t.Op != d.Op {
		return false
	}
	switch t.Op {
	case OpP:
		return t.Period == d.Period
	case OpRR:
		return t.Item.Match(d.Item, b)
	case OpWs:
		return t.Item.Match(d.Item, b) && t.OldT.match(d.OldVal, b) && t.ValT.match(d.Val, b)
	default:
		return t.Item.Match(d.Item, b) && t.ValT.match(d.Val, b)
	}
}

// Subst instantiates the template into a ground descriptor under bindings.
func (t Template) Subst(b Bindings) (Desc, error) {
	switch t.Op {
	case OpF:
		return Desc{}, fmt.Errorf("event: cannot instantiate the false template")
	case OpP:
		return P(t.Period), nil
	}
	item, err := t.Item.Subst(b)
	if err != nil {
		return Desc{}, err
	}
	d := Desc{Op: t.Op, Item: item}
	if t.Op.HasValue() {
		v, err := t.ValT.subst(b)
		if err != nil {
			return Desc{}, err
		}
		d.Val = v
	}
	if t.Op == OpWs && !t.OldT.IsWild() {
		old, err := t.OldT.subst(b)
		if err != nil {
			return Desc{}, err
		}
		d.OldVal = old
	}
	return d, nil
}

// Params returns the parameter names appearing anywhere in the template.
func (t Template) Params() []string {
	var ps []string
	if t.Op.HasItem() {
		ps = append(ps, t.Item.Params()...)
	}
	if t.Op == OpWs {
		if n, ok := t.OldT.IsParam(); ok {
			ps = append(ps, n)
		}
	}
	if t.Op.HasValue() {
		if n, ok := t.ValT.IsParam(); ok {
			ps = append(ps, n)
		}
	}
	return ps
}
