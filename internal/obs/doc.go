// Package obs is the toolkit's observability layer: a dependency-free
// metrics registry and a structured trace stream for rule firings, shared
// by every component from the CM-Shells down to the transports and the
// Raw Information Source servers.
//
// The paper's guarantees are statements an operator must be able to
// audit — staleness bounds, failure classifications, message counts — so
// the same counters that the evaluation harness reads (cmbench -obs) are
// the ones a production deployment scrapes over HTTP.  Three instrument
// kinds cover the toolkit's needs:
//
//   - Counter: a monotone uint64 (events recorded, fires sent, retries).
//   - Gauge: an instantaneous int64 (outbox depth).
//   - Histogram: fixed-bucket latency recording (fire-to-execution delay).
//
// All three are updated with single atomic operations; label lookup
// happens once, when a component acquires its handles, so the hot path
// performs no allocation and takes no lock.  Families are registered
// idempotently by name: two shells asking for cmtk_shell_events_total get
// the same family, and each label combination ("series") is a distinct
// atomically-updated cell.
//
// The Default registry is the process-wide instance every component uses
// unless configured otherwise; DefaultRing likewise collects FireTrace
// records for rule firings (matched → dispatched → executed hops with
// timestamps and outcome).  Handler exposes both over HTTP:
//
//	/metrics        Prometheus text exposition format (version 0.0.4)
//	/debug/traces   JSON dump of the firing-trace ring buffer
//
// cmd/cmshell and cmd/risd serve this surface behind -metrics-addr;
// cmd/cmbench snapshots Default around each experiment (-obs) and prints
// the per-experiment deltas.  OBSERVABILITY.md at the repository root
// catalogues every metric name, label, and trace field, and walks through
// diagnosing a stale replica and a degraded link from this surface alone.
package obs
