package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Firing outcomes recorded in FireTrace.Outcome.
const (
	// OutcomeLocal: the rule's RHS site is hosted by the matching shell;
	// the firing was queued for local execution.
	OutcomeLocal = "local"
	// OutcomeSent: the firing was handed to the transport for a remote
	// shell.
	OutcomeSent = "sent"
	// OutcomeExecuted: a shell ran the rule's RHS (the terminal hop of
	// both local and remote firings).
	OutcomeExecuted = "executed"
	// OutcomeDropped: a raw endpoint rejected the send and the firing is
	// lost for good.
	OutcomeDropped = "dropped"
)

// FireTrace is one structured record of a rule-firing hop.  A local
// firing produces a "local" record then an "executed" record; a remote
// firing produces "sent" at the matching shell and "executed" at the
// target.  ID is assigned by the ring, monotone per process, so an
// operator can correlate /debug/traces dumps across scrapes.
type FireTrace struct {
	ID      uint64 `json:"id"`
	Rule    string `json:"rule"`
	Shell   string `json:"shell"`            // shell recording the hop
	Site    string `json:"site"`             // LHS (trigger) site
	Target  string `json:"target,omitempty"` // destination shell for sent/dropped
	Outcome string `json:"outcome"`
	Trigger string `json:"trigger,omitempty"` // trigger event descriptor
	Seq     uint64 `json:"seq,omitempty"`     // trigger event sequence number

	// TriggerDesc is the deferred form of Trigger: recording hot paths
	// store the descriptor's Stringer instead of rendering it, and the
	// ring renders on read (Events/WriteJSON).  When both are set, Trigger
	// wins.  Boxing an existing pointer costs nothing; building the string
	// per record cost two allocations per firing.
	TriggerDesc fmt.Stringer `json:"-"`

	// Hop timestamps on the recording shell's clock: Matched is the
	// trigger event time, Dispatched when the firing left the matcher,
	// Executed when the RHS ran.  Zero values mean the hop did not happen
	// on this record.
	Matched    time.Time `json:"matched,omitempty"`
	Dispatched time.Time `json:"dispatched,omitempty"`
	Executed   time.Time `json:"executed,omitempty"`
}

// Ring is a bounded buffer of the most recent FireTrace records.
type Ring struct {
	mu    sync.Mutex
	buf   []FireTrace
	cap   int
	next  int    // buf write position
	total uint64 // records ever written, also the ID source
}

// NewRing creates a ring keeping the last capacity records (<=0 means
// 1024).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]FireTrace, 0, capacity), cap: capacity}
}

// DefaultRing is the process-wide firing-trace buffer, the companion of
// the Default registry.
var DefaultRing = NewRing(4096)

// Record appends a trace record, assigning and returning its ID.
func (r *Ring) Record(ev FireTrace) uint64 {
	r.mu.Lock()
	r.total++
	ev.ID = r.total
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next = (r.next + 1) % r.cap
	r.mu.Unlock()
	return ev.ID
}

// Events returns the buffered records, oldest first, with any deferred
// trigger descriptors rendered.
func (r *Ring) Events() []FireTrace {
	r.mu.Lock()
	var out []FireTrace
	if len(r.buf) < r.cap {
		// Not yet wrapped: everything is in write order already.
		out = append([]FireTrace(nil), r.buf...)
	} else {
		out = make([]FireTrace, 0, r.cap)
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	}
	r.mu.Unlock()
	for i := range out {
		if out[i].Trigger == "" && out[i].TriggerDesc != nil {
			out[i].Trigger = out[i].TriggerDesc.String()
			out[i].TriggerDesc = nil
		}
	}
	return out
}

// Total reports how many records were ever written (IDs run 1..Total).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ringDump is the /debug/traces JSON shape.
type ringDump struct {
	Total    uint64      `json:"total"`
	Capacity int         `json:"capacity"`
	Events   []FireTrace `json:"events"`
}

// WriteJSON dumps the ring as one JSON document: total records ever
// written, the ring capacity, and the retained events oldest-first.
func (r *Ring) WriteJSON(w io.Writer) error {
	d := ringDump{Total: r.Total(), Capacity: r.cap, Events: r.Events()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
