package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families.  All methods are safe for concurrent
// use; the instrument handles it hands out update with single atomic
// operations and are the intended hot path.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Default is the process-wide registry.  Components fall back to it when
// their options carry no explicit registry, so one scrape covers a whole
// deployment without any plumbing.
var Default = NewRegistry()

// family is one named metric with a fixed label-key schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's cell.
type series struct {
	labelVals []string

	// counter: val counts.  gauge: val holds an int64 bit pattern.
	val atomic.Uint64

	// histogram state; counts[i] observes v <= buckets[i].
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// seriesKey joins label values into a map key.  \xff cannot appear in
// UTF-8 label values, so the join is unambiguous.
func seriesKey(vals []string) string { return strings.Join(vals, "\xff") }

// register finds or creates a family, enforcing schema consistency: a
// second registration of the same name must agree on kind, label keys,
// and buckets.  Mismatch panics — it is a programming error on the order
// of redeclaring a type.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with labels %v (was %v)", name, labels, f.labels))
			}
		}
		if kind == KindHistogram && len(f.buckets) != len(buckets) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with %d buckets (was %d)", name, len(buckets), len(f.buckets)))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: map[string]*series{}}
	r.fams[name] = f
	return f
}

// with finds or creates the series cell for a label-value combination.
func (f *family) with(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := seriesKey(vals)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), vals...)}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// snapshotSeries returns the family's series sorted by label values, for
// deterministic exposition.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.RUnlock()
	return out
}

// ---- counters ----

// CounterVec is a counter family; With resolves one label combination to
// its Counter cell.
type CounterVec struct{ f *family }

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, nil, labels)}
}

// With returns the counter cell for the given label values.  Callers on
// hot paths should acquire the cell once and keep it.
func (v *CounterVec) With(values ...string) *Counter { return (*Counter)(v.f.with(values)) }

// Counter is a monotone event count.
type Counter series

// Inc adds one.
func (c *Counter) Inc() { c.val.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.val.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.val.Load() }

// ---- gauges ----

// GaugeVec is a gauge family.
type GaugeVec struct{ f *family }

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, nil, labels)}
}

// With returns the gauge cell for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return (*Gauge)(v.f.with(values)) }

// Gauge is an instantaneous integer level.
type Gauge series

// Set stores n.
func (g *Gauge) Set(n int64) { g.val.Store(uint64(n)) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.val.Add(uint64(n)) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return int64(g.val.Load()) }

// ---- histograms ----

// HistogramVec is a histogram family with fixed bucket bounds.
type HistogramVec struct{ f *family }

// DefBuckets are latency-oriented default bounds in seconds, spanning
// sub-millisecond engine hops to multi-second retry backoffs.
var DefBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// Histogram registers (or finds) a histogram family.  buckets are the
// ascending upper bounds (an implicit +Inf bucket is always present); nil
// means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending: %v", name, bs))
		}
	}
	return &HistogramVec{r.register(name, help, KindHistogram, bs, labels)}
}

// With returns the histogram cell for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.with(values), buckets: v.f.buckets}
}

// Histogram records observations into fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value: three atomic adds (bucket, count, sum) and a
// binary search — no locks, no allocation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.buckets) {
		h.s.counts[i].Add(1)
	}
	h.s.count.Add(1)
	for {
		old := h.s.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sum.Load()) }
