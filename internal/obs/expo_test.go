package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteTextGolden pins the Prometheus text exposition byte-for-byte:
// sorted families and series, HELP/TYPE lines, label escaping, and
// cumulative histogram buckets with +Inf, _sum, and _count.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	fires := reg.Counter("cmtk_shell_fires_total", "Rule firings by scope.", "shell", "scope")
	fires.With("shell-A", "remote").Add(3)
	fires.With("shell-A", "local").Add(1)
	fires.With("shell-B", "received").Add(3)
	reg.Counter("plain_total", "").With().Add(42)
	reg.Counter("escape_total", `help with \ and
newline`, "l").With(`va"l\ue`+"\n").Inc()
	reg.Gauge("cmtk_transport_outbox_depth", "Unacked messages buffered.", "peer").With("shell-B").Set(-2)
	h := reg.Histogram("cmtk_shell_fire_latency_seconds", "Trigger-to-execution delay.", []float64{0.005, 0.05, 0.5, 2.5}, "shell")
	for _, v := range []float64{0.001, 0.05, 0.3, 10} {
		h.With("shell-A").Observe(v)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s (run with -update to accept):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestHandlerEndpoints drives the HTTP surface end to end: /metrics
// content type and body, /debug/traces JSON shape, and the index.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "").With().Inc()
	ring := NewRing(8)
	ring.Record(FireTrace{Rule: "r1", Shell: "A", Site: "S", Outcome: OutcomeLocal,
		Matched: time.Unix(1, 0).UTC()})

	srv, addr, err := Serve("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body, ctype := httpGet(t, "http://"+addr+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	if !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, ctype = httpGet(t, "http://"+addr+"/debug/traces")
	if ctype != "application/json" {
		t.Fatalf("content type = %q", ctype)
	}
	var dump struct {
		Total    uint64      `json:"total"`
		Capacity int         `json:"capacity"`
		Events   []FireTrace `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v\n%s", err, body)
	}
	if dump.Total != 1 || dump.Capacity != 8 || len(dump.Events) != 1 ||
		dump.Events[0].Rule != "r1" || dump.Events[0].ID != 1 {
		t.Fatalf("dump = %+v", dump)
	}

	body, _ = httpGet(t, "http://"+addr+"/")
	if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/debug/traces") {
		t.Fatalf("index body:\n%s", body)
	}
}

func httpGet(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestRingWrap checks oldest-first ordering across the wrap point and
// monotone IDs.
func TestRingWrap(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		id := r.Record(FireTrace{Rule: "r", Seq: uint64(i)})
		if id != uint64(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+3) || ev.ID != uint64(i+3) {
			t.Fatalf("events[%d] = %+v, want seq/id %d", i, ev, i+3)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
}
