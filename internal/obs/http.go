package obs

import (
	"fmt"
	"net"
	"net/http"
)

// Handler serves the observability surface for a registry and a firing-
// trace ring (nil means Default/DefaultRing):
//
//	/metrics        Prometheus text exposition
//	/debug/traces   JSON dump of the firing-trace ring
//	/               a plain-text index of the two
func Handler(reg *Registry, ring *Ring) http.Handler {
	if reg == nil {
		reg = Default
	}
	if ring == nil {
		ring = DefaultRing
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ring.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "cmtk observability\n\n/metrics\n/debug/traces")
	})
	return mux
}

// Serve starts the observability surface on addr (":0" for an ephemeral
// port) in a background goroutine and returns the server plus the bound
// address.  Close the returned server to stop it.
func Serve(addr string, reg *Registry, ring *Ring) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, ring)}
	//cmlint:allow goroleak(the caller owns shutdown: closing the returned http.Server stops Serve)
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
