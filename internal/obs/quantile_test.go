package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test_seconds", "", []float64{0.1, 0.5, 1, 5}, "site").With("A")
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should yield NaN")
	}
	// 80 observations in (0, 0.1], 15 in (0.1, 0.5], 5 in (0.5, 1].
	for i := 0; i < 80; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 15; i++ {
		h.Observe(0.3)
	}
	for i := 0; i < 5; i++ {
		h.Observe(0.7)
	}
	// p50 rank 50 inside first bucket: 0 + 0.1*(50/80) = 0.0625.
	if got := h.Quantile(0.50); math.Abs(got-0.0625) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.0625", got)
	}
	// p99 rank 99 inside (0.5,1]: 0.5 + 0.5*(99-95)/5 = 0.9.
	if got := h.Quantile(0.99); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.9", got)
	}
	// Beyond the last finite bound: clamp.
	h.Observe(30)
	if got := h.Quantile(0.9999); got != 5 {
		t.Fatalf("p99.99 = %v, want clamp to 5", got)
	}
}

func TestParseHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "round trip", []float64{0.01, 0.1, 1}, "shell")
	a, b := h.With("A"), h.With("B")
	for i := 0; i < 10; i++ {
		a.Observe(0.005)
	}
	for i := 0; i < 4; i++ {
		b.Observe(0.05)
	}
	a.Observe(2) // +Inf bucket
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	bounds, cum, count, sum, ok := ParseHistogram(sb.String(), "rt_seconds")
	if !ok {
		t.Fatal("family not found in exposition")
	}
	if len(bounds) != 3 || bounds[0] != 0.01 || bounds[2] != 1 {
		t.Fatalf("bounds = %v", bounds)
	}
	if count != 15 {
		t.Fatalf("count = %d, want 15", count)
	}
	if math.Abs(sum-(10*0.005+4*0.05+2)) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	// Aggregated cumulative counts: le=0.01 → 10, le=0.1 → 14, le=1 → 14.
	if cum[0] != 10 || cum[1] != 14 || cum[2] != 14 {
		t.Fatalf("cumulative = %v", cum)
	}
	// p50 over the aggregate: rank 7.5 in first bucket → 0.0075.
	if got := QuantileFromBuckets(bounds, cum, count, 0.5); math.Abs(got-0.0075) > 1e-9 {
		t.Fatalf("aggregate p50 = %v", got)
	}
	if _, _, _, _, ok := ParseHistogram(sb.String(), "missing_family"); ok {
		t.Fatal("missing family reported ok")
	}
}
