package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// counters, a gauge, and a histogram sharing series — and checks the
// totals.  Run under -race this is the hot path's data-race regression
// test.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 16
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hits_total", "", "who").With("w")
			g := reg.Gauge("depth", "").With()
			h := reg.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1}).With()
			for i := 0; i < perW; i++ {
				c.Inc()
				if w%2 == 0 {
					g.Add(1)
				} else {
					g.Add(-1)
				}
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits_total", "", "who").With("w").Value(); got != workers*perW {
		t.Fatalf("counter = %d, want %d", got, workers*perW)
	}
	if got := reg.Gauge("depth", "").With().Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := reg.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1}).With()
	if h.Count() != workers*perW {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perW)
	}
	if math.Abs(h.Sum()-0.05*workers*perW) > 1 {
		t.Fatalf("histogram sum = %g, want ≈%g", h.Sum(), 0.05*float64(workers*perW))
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics:
// an observation equal to an upper bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.1, 0.5, 1, 5}
	cases := []struct {
		v       float64
		cum     []uint64 // expected cumulative bucket counts after observing v alone
		inRange bool     // false: only +Inf counts it
	}{
		{0, []uint64{1, 1, 1, 1}, true},
		{0.05, []uint64{1, 1, 1, 1}, true},
		{0.1, []uint64{1, 1, 1, 1}, true}, // equal to bound: le-inclusive
		{0.10001, []uint64{0, 1, 1, 1}, true},
		{0.5, []uint64{0, 1, 1, 1}, true},
		{0.75, []uint64{0, 0, 1, 1}, true},
		{1, []uint64{0, 0, 1, 1}, true},
		{4.999, []uint64{0, 0, 0, 1}, true},
		{5, []uint64{0, 0, 0, 1}, true},
		{5.001, []uint64{0, 0, 0, 0}, false},
		{100, []uint64{0, 0, 0, 0}, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("v=%g", tc.v), func(t *testing.T) {
			reg := NewRegistry()
			h := reg.Histogram("h", "", bounds).With()
			h.Observe(tc.v)
			s := h.s
			var cum uint64
			for i := range bounds {
				cum += s.counts[i].Load()
				if cum != tc.cum[i] {
					t.Fatalf("bucket le=%g cumulative = %d, want %d", bounds[i], cum, tc.cum[i])
				}
			}
			if h.Count() != 1 {
				t.Fatalf("count = %d, want 1", h.Count())
			}
			if inRange := cum == 1; inRange != tc.inRange {
				t.Fatalf("finite-bucket coverage = %v, want %v", inRange, tc.inRange)
			}
		})
	}
}

// TestRegisterIdempotentAndMismatch checks that re-registering the same
// family is a no-op while changing its shape is a programming error.
func TestRegisterIdempotentAndMismatch(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", "l")
	b := reg.Counter("x_total", "other help ignored", "l")
	a.With("v").Inc()
	if got := b.With("v").Value(); got != 1 {
		t.Fatalf("second registration sees %d, want 1 (same family)", got)
	}
	mustPanic(t, func() { reg.Gauge("x_total", "") })
	mustPanic(t, func() { reg.Counter("x_total", "", "l", "m") })
	reg.Histogram("h", "", []float64{1, 2})
	mustPanic(t, func() { reg.Histogram("h", "", []float64{1, 2, 3}) })
	mustPanic(t, func() { reg.Histogram("bad", "", []float64{2, 1}) })
	mustPanic(t, func() { a.With("v", "extra") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestSnapshotDeltaSum covers the cmbench -obs primitives.
func TestSnapshotDeltaSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "", "op")
	c.With("read").Add(3)
	c.With("write").Add(2)
	reg.Gauge("depth", "").With().Set(7)
	before := reg.Snapshot()
	c.With("read").Add(4)
	reg.Gauge("depth", "").With().Set(5)
	delta := reg.Snapshot().Delta(before)
	if len(delta) != 2 {
		t.Fatalf("delta = %v, want 2 entries", delta)
	}
	if delta[`ops_total{op="read"}`] != 4 {
		t.Fatalf("read delta = %v", delta[`ops_total{op="read"}`])
	}
	if delta["depth"] != -2 {
		t.Fatalf("gauge delta = %v", delta["depth"])
	}
	if got := reg.Snapshot().Sum("ops_total"); got != 9 {
		t.Fatalf("Sum(ops_total) = %g, want 9", got)
	}
}
