package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label values, histograms with cumulative le buckets plus _sum and
// _count.  The output is deterministic for a given registry state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshotSeries() {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPairs(f.labels, s.labelVals, "", ""), s.val.Load())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPairs(f.labels, s.labelVals, "", ""), int64(s.val.Load()))
			case KindHistogram:
				cum := uint64(0)
				for i, bound := range f.buckets {
					cum += s.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, s.labelVals, "le", formatFloat(bound)), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, s.labelVals, "le", "+Inf"), s.count.Load())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), formatFloat(math.Float64frombits(s.sum.Load())))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelPairs(f.labels, s.labelVals, "", ""), s.count.Load())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// labelPairs renders {k1="v1",...}; extraKey/extraVal append a synthetic
// label (le for histogram buckets).  Empty when there are no labels.
func labelPairs(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Snapshot is a point-in-time numeric view of a registry, keyed by the
// exposition series identity (name{labels}).  Histograms contribute their
// _count and _sum series; buckets are omitted.
type Snapshot map[string]float64

// Snapshot captures every counter, gauge, and histogram count/sum.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		for _, s := range f.snapshotSeries() {
			lp := labelPairs(f.labels, s.labelVals, "", "")
			switch f.kind {
			case KindCounter:
				out[f.name+lp] = float64(s.val.Load())
			case KindGauge:
				out[f.name+lp] = float64(int64(s.val.Load()))
			case KindHistogram:
				out[f.name+"_count"+lp] = float64(s.count.Load())
				out[f.name+"_sum"+lp] = math.Float64frombits(s.sum.Load())
			}
		}
	}
	return out
}

// Delta returns s minus prev, keeping only series that changed (or are
// new and non-zero).  Counters yield the activity in the interval;
// gauges yield their net movement.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{}
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Sum totals every series of the named family (all label combinations).
func (s Snapshot) Sum(name string) float64 {
	total := 0.0
	for k, v := range s {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}

// Format renders the snapshot as sorted "series value" lines, one per
// entry — the shape cmbench -obs prints per experiment.
func (s Snapshot) Format() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, formatFloat(s[k]))
	}
	return b.String()
}
