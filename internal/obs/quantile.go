package obs

import (
	"bufio"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Buckets returns the histogram's finite upper bounds and the cumulative
// observation counts at each bound (Prometheus `le` semantics).  The
// returned slices are snapshots; concurrent Observe calls may land between
// reads of adjacent cells, which is the usual scrape-consistency caveat.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.buckets...)
	cumulative = make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.s.counts {
		cum += h.s.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the recorded
// observations by linear interpolation inside the owning bucket, the same
// estimator as PromQL's histogram_quantile.  Observations beyond the last
// finite bound clamp to that bound; an empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum := h.Buckets()
	return QuantileFromBuckets(bounds, cum, h.Count(), q)
}

// QuantileFromBuckets is the estimator behind Histogram.Quantile, exposed
// for callers that obtained bucket data elsewhere (e.g. by scraping a
// remote shell's /metrics — see ParseHistogram).  bounds are ascending
// finite upper bounds and cumulative the counts at each bound; total is
// the overall observation count including the +Inf bucket.
func QuantileFromBuckets(bounds []float64, cumulative []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	idx := sort.Search(len(bounds), func(i int) bool {
		return float64(cumulative[i]) >= rank
	})
	if idx == len(bounds) {
		// The quantile lands in the +Inf bucket: all we can say is "beyond
		// the last finite bound"; clamp, as histogram_quantile does.
		return bounds[len(bounds)-1]
	}
	lo, loCount := 0.0, 0.0
	if idx > 0 {
		lo, loCount = bounds[idx-1], float64(cumulative[idx-1])
	}
	hi, hiCount := bounds[idx], float64(cumulative[idx])
	if hiCount == loCount {
		return hi
	}
	return lo + (hi-lo)*(rank-loCount)/(hiCount-loCount)
}

// ParseHistogram extracts one histogram family from Prometheus 0.0.4 text
// exposition (the format Handler serves), aggregating across every label
// combination of that family.  It returns ascending finite bounds with
// cumulative counts, the total count and sum, and ok=false when the family
// does not appear.  This is how cmload reads trigger-to-execution latency
// off a live cmshell's /metrics endpoint.
func ParseHistogram(text, name string) (bounds []float64, cumulative []uint64, count uint64, sum float64, ok bool) {
	byBound := map[float64]uint64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		metric, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		base := metric
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			base = metric[:i]
		}
		switch base {
		case name + "_bucket":
			le, found := labelValue(metric, "le")
			if !found {
				continue
			}
			if le == "+Inf" {
				continue // recovered from _count
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			byBound[b] += uint64(val)
			ok = true
		case name + "_count":
			count += uint64(val)
			ok = true
		case name + "_sum":
			sum += val
			ok = true
		}
	}
	if !ok {
		return nil, nil, 0, 0, false
	}
	bounds = make([]float64, 0, len(byBound))
	for b := range byBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cumulative = make([]uint64, len(bounds))
	for i, b := range bounds {
		cumulative[i] = byBound[b]
	}
	return bounds, cumulative, count, sum, true
}

// labelValue pulls one label's (unescaped) value out of a series name like
// name{a="x",le="0.5"}.
func labelValue(metric, key string) (string, bool) {
	i := strings.IndexByte(metric, '{')
	if i < 0 {
		return "", false
	}
	rest := metric[i+1:]
	needle := key + `="`
	for {
		j := strings.Index(rest, needle)
		if j < 0 {
			return "", false
		}
		// Must start a label: preceded by '{' start or ','.
		if j > 0 && rest[j-1] != ',' {
			rest = rest[j+len(needle):]
			continue
		}
		v := rest[j+len(needle):]
		var b strings.Builder
		for k := 0; k < len(v); k++ {
			c := v[k]
			if c == '\\' && k+1 < len(v) {
				k++
				switch v[k] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(v[k])
				}
				continue
			}
			if c == '"' {
				return b.String(), true
			}
			b.WriteByte(c)
		}
		return "", false
	}
}
