// Package core is the toolkit's public facade: it assembles Raw
// Information Sources (via CM-RIDs and translators), CM-Shells, the
// inter-shell transport, constraints with chosen or suggested strategies,
// and the resulting guarantees into one runnable deployment — the whole
// of Figure 2 behind one API.
//
// A deployment is built declaratively:
//
//	tk := core.New(core.Config{Clock: clk})
//	tk.AddSite(core.Site{RID: ridA, Local: &translator.LocalStores{Rel: dbA}})
//	tk.AddSite(core.Site{RID: ridB, Local: &translator.LocalStores{Rel: dbB}})
//	tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1})
//	tk.Deploy()
//	tk.Start()
//	...
//	reports := tk.CheckGuarantees()
//
// After (or during) a run, CheckGuarantees re-validates every declared
// guarantee against the recorded execution, CheckTrace re-validates the
// Appendix A.2 execution properties, and GuaranteeStatus reports which
// guarantees are currently invalidated by interface failures (Section 5).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/demarcation"
	"cmtk/internal/durable"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/strategy"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

// Config tunes a deployment.
type Config struct {
	// Clock drives the whole deployment; nil means real time.
	Clock vclock.Clock
	// BusLatency models the inter-shell link latency on the in-process
	// bus.  Ignored when an external Network is supplied.
	BusLatency time.Duration
	// FireDelay models per-shell rule processing delay.
	FireDelay time.Duration
	// Network overrides the in-process bus (e.g. a TCP mesh).  When nil a
	// Bus on the deployment clock is used.
	Network transport.Network
	// Trace, when non-nil, is the event trace the deployment records into
	// instead of a fresh one.  A restarted deployment that shares its
	// predecessor's trace lets the checker and the guarantees see the whole
	// history across the crash.
	Trace *trace.Trace
	// StateDir, when non-empty, makes the deployment crash-recoverable:
	// Deploy opens a durable.Store there (tuned by DurableOptions) and
	// every shell journals its CM-private items and every demarcation
	// agent its limits into it.  Stop closes the store.  To journal the
	// transport outbox too, point ReliableOptions.Durable at tk.Durable()
	// — or at the same store — when building the Network.
	StateDir string
	// DurableOptions tunes the store opened for StateDir (fsync policy,
	// segment size, metrics registry).
	DurableOptions durable.Options
	// Durable supplies an already-open store instead of StateDir — the
	// caller keeps ownership (Stop does not close it).  Harnesses use this
	// to share one store between the toolkit and a Reliable network, and
	// to simulate crashes with store.Crash.
	Durable *durable.Store
	// ShellOptions, when non-nil, rewrites each shell's options just
	// before construction: per-shell clock skew (vclock.Skewed), queue
	// limits and admission policies (overload protection), or a private
	// metrics registry.  The hook receives the shell's name and the
	// deployment-wide defaults and returns what the shell should use.
	ShellOptions func(name string, o shell.Options) shell.Options
}

// Site declares one information source.
type Site struct {
	// RID configures the CM-Translator for this source.
	RID *rid.Config
	// Local supplies in-process stores for local RIDs.
	Local *translator.LocalStores
	// Shell optionally names the shell hosting this site; sites sharing a
	// name share a shell (Figure 1's Site 3 has no shell of its own).
	// Empty means a dedicated shell named "shell-<site>".
	Shell string
	// Wrap, when non-nil, decorates the site's translator after it opens —
	// the hook fault injection (translator.Faulty) uses.
	Wrap func(cmi.Interface) cmi.Interface
}

// CopyConstraint declares X = Y with X primary.
type CopyConstraint struct {
	X, Y  string
	Arity int
	// Strategy picks from the menu: "notify", "cached", "poll", "monitor"
	// or "" / "auto" for the strongest applicable.
	Strategy string
	Options  strategy.Options
}

// guaranteeEntry ties a guarantee to the sites it depends on, for failure
// bookkeeping.
type guaranteeEntry struct {
	G      guarantee.Guarantee
	Sites  []string
	Metric bool
}

// Toolkit is one deployment under construction or running.
type Toolkit struct {
	cfg    Config
	clock  vclock.Clock
	tr     *trace.Trace
	spec   *rule.Spec
	sites  []Site
	copies []CopyConstraint

	userSpecs []*rule.Spec
	sweepers  []*strategy.Sweeper
	deployed  bool
	started   bool
	shells    map[string]*shell.Shell
	ifaces    map[string]cmi.Interface // by site
	entries   []guaranteeEntry
	network   transport.Network
	store     *durable.Store
	ownStore  bool
	restored  int
}

// New creates an empty deployment.
func New(cfg Config) *Toolkit {
	clock := cfg.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New(nil)
	}
	return &Toolkit{
		cfg:    cfg,
		clock:  clock,
		tr:     tr,
		spec:   rule.NewSpec(),
		shells: map[string]*shell.Shell{},
		ifaces: map[string]cmi.Interface{},
	}
}

// Trace returns the deployment's shared event trace.
func (tk *Toolkit) Trace() *trace.Trace { return tk.tr }

// Clock returns the deployment clock.
func (tk *Toolkit) Clock() vclock.Clock { return tk.clock }

// Spec returns the (merged) strategy specification.
func (tk *Toolkit) Spec() *rule.Spec { return tk.spec }

// AddSite declares a source.  Must be called before Deploy.
func (tk *Toolkit) AddSite(s Site) error {
	if tk.deployed {
		return fmt.Errorf("core: deployment already built")
	}
	if s.RID == nil {
		return fmt.Errorf("core: site needs a CM-RID")
	}
	for _, prev := range tk.sites {
		if prev.RID.Site == s.RID.Site {
			return fmt.Errorf("core: duplicate site %s", s.RID.Site)
		}
	}
	tk.sites = append(tk.sites, s)
	return nil
}

// AddCopy declares a copy constraint.  Must be called before Deploy.
func (tk *Toolkit) AddCopy(c CopyConstraint) error {
	if tk.deployed {
		return fmt.Errorf("core: deployment already built")
	}
	tk.copies = append(tk.copies, c)
	return nil
}

// AddGuarantee registers an extra guarantee to track (programmatic
// strategies like the demarcation agents add theirs this way).
func (tk *Toolkit) AddGuarantee(g guarantee.Guarantee, sites ...string) {
	tk.entries = append(tk.entries, guaranteeEntry{G: g, Sites: sites, Metric: IsMetric(g)})
}

// siteOfItem finds which declared RID binds an item base.
func (tk *Toolkit) siteOfItem(base string) (Site, bool) {
	for _, s := range tk.sites {
		if _, ok := s.RID.Items[base]; ok {
			return s, true
		}
	}
	return Site{}, false
}

// Suggestions lists the strategies applicable to a copy constraint, in
// strength order — the Section 4.1 initialization dialogue.
func (tk *Toolkit) Suggestions(c CopyConstraint) ([]strategy.Choice, error) {
	xs, ok := tk.siteOfItem(c.X)
	if !ok {
		return nil, fmt.Errorf("core: no site binds item %s", c.X)
	}
	ys, ok := tk.siteOfItem(c.Y)
	if !ok {
		return nil, fmt.Errorf("core: no site binds item %s", c.Y)
	}
	xCaps := translator.CapsFromStatements(xs.RID.Statements, c.X)
	yCaps := translator.CapsFromStatements(ys.RID.Statements, c.Y)
	return strategy.SuggestCopy(
		strategy.Copy{X: c.X, Y: c.Y, Arity: c.Arity},
		xCaps, yCaps, xs.RID.Site, ys.RID.Site, c.Options,
	), nil
}

// Deploy builds translators, merges strategies into the spec, creates the
// shells and wires the transport.  After Deploy the topology is fixed;
// Start begins rule execution.
func (tk *Toolkit) Deploy() error {
	if tk.deployed {
		return fmt.Errorf("core: already deployed")
	}
	// 1. Sites and items into the spec; translators up.
	for _, s := range tk.sites {
		site := s.RID.Site
		tk.spec.Sites = append(tk.spec.Sites, site)
		for base := range s.RID.Items {
			if owner, dup := tk.spec.Items[base]; dup {
				return fmt.Errorf("core: item %s bound at both %s and %s", base, owner, site)
			}
			tk.spec.Items[base] = site
		}
		iface, err := translator.Open(s.RID, s.Local, tk.clock)
		if err != nil {
			return fmt.Errorf("core: opening translator for %s: %w", site, err)
		}
		if s.Wrap != nil {
			iface = s.Wrap(iface)
		}
		tk.ifaces[site] = iface
		// No-spontaneous-write promises (Ws(X, b) → F, Section 3.1.1) are
		// adopted as active rules: the shell then subscribes to the base
		// and any spontaneous write shows up as a property-6 violation of
		// the F obligation — the promise is monitored, not assumed.
		for _, st := range s.RID.Statements {
			if len(st.Steps) == 1 && st.Steps[0].Eff.Op == event.OpF {
				promise := st
				promise.ID = site + ":" + st.ID
				tk.spec.Rules = append(tk.spec.Rules, promise)
			}
		}
	}
	if err := tk.mergeUserSpecs(); err != nil {
		return err
	}
	// 2. Strategies for the declared constraints.
	for _, c := range tk.copies {
		choice, err := tk.pickStrategy(c)
		if err != nil {
			return err
		}
		if err := strategy.Merge(tk.spec, choice); err != nil {
			return fmt.Errorf("core: merging strategy %s: %w", choice.Name, err)
		}
		xs, _ := tk.siteOfItem(c.X)
		ys, _ := tk.siteOfItem(c.Y)
		for _, g := range choice.Guarantees {
			tk.AddGuarantee(g, xs.RID.Site, ys.RID.Site)
		}
	}
	// 3. Shells: group sites by shell name.
	byShell := map[string][]Site{}
	for _, s := range tk.sites {
		name := s.Shell
		if name == "" {
			name = "shell-" + s.RID.Site
		}
		byShell[name] = append(byShell[name], s)
	}
	// Private-item hosting sites may not be RIS sites; ensure each private
	// site exists (hosted by the shell of the site it names, or its own).
	for base, site := range tk.spec.Private {
		if !tk.spec.HasSite(site) {
			return fmt.Errorf("core: private item %s at unknown site %s", base, site)
		}
	}
	network := tk.cfg.Network
	if network == nil {
		network = transport.NewBus(tk.clock, tk.cfg.BusLatency)
	}
	tk.network = network
	names := make([]string, 0, len(byShell))
	for name := range byShell {
		names = append(names, name)
	}
	sort.Strings(names)
	// Durable state: adopt the caller's store or open one in StateDir, then
	// give every shell a journal for its CM-private items.
	switch {
	case tk.cfg.Durable != nil:
		tk.store = tk.cfg.Durable
	case tk.cfg.StateDir != "":
		st, err := durable.Open(tk.cfg.StateDir, tk.cfg.DurableOptions)
		if err != nil {
			return fmt.Errorf("core: opening state dir: %w", err)
		}
		tk.store = st
		tk.ownStore = true
	}
	opts := shell.Options{Clock: tk.clock, Trace: tk.tr, FireDelay: tk.cfg.FireDelay}
	for _, name := range names {
		shOpts := opts
		if tk.cfg.ShellOptions != nil {
			shOpts = tk.cfg.ShellOptions(name, opts)
		}
		sh := shell.New(name, tk.spec, shOpts)
		for _, s := range byShell[name] {
			sh.AddSite(s.RID.Site, tk.ifaces[s.RID.Site])
		}
		if tk.store != nil {
			n, err := sh.EnableDurable(tk.store)
			if err != nil {
				return fmt.Errorf("core: durable state for shell %s: %w", name, err)
			}
			tk.restored += n
		}
		tk.shells[name] = sh
	}
	// Routing: every shell learns every site's host.
	siteShell := map[string]string{}
	for name, group := range byShell {
		for _, s := range group {
			siteShell[s.RID.Site] = name
		}
	}
	for _, sh := range tk.shells {
		for site, host := range siteShell {
			if host != sh.ID() {
				sh.Route(site, host)
			}
		}
		if err := sh.Attach(network); err != nil {
			return err
		}
	}
	if err := tk.spec.Validate(); err != nil {
		return err
	}
	tk.deployed = true
	return nil
}

// pickStrategy resolves a constraint's strategy choice.
func (tk *Toolkit) pickStrategy(c CopyConstraint) (strategy.Choice, error) {
	suggestions, err := tk.Suggestions(c)
	if err != nil {
		return strategy.Choice{}, err
	}
	if len(suggestions) == 0 {
		return strategy.Choice{}, fmt.Errorf("core: no applicable strategy for %s = %s with the declared interfaces", c.X, c.Y)
	}
	want := c.Strategy
	if want == "" || want == "auto" {
		return suggestions[0], nil
	}
	alias := map[string]string{
		"notify":  "notify-propagation",
		"cached":  "cached-propagation",
		"poll":    "polling",
		"monitor": "monitor",
	}
	if full, ok := alias[want]; ok {
		want = full
	}
	for _, s := range suggestions {
		if s.Name == want {
			return s, nil
		}
	}
	return strategy.Choice{}, fmt.Errorf("core: strategy %q not applicable for %s = %s (applicable: %v)",
		c.Strategy, c.X, c.Y, choiceNames(suggestions))
}

func choiceNames(cs []strategy.Choice) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

// Start begins rule execution on every shell.
func (tk *Toolkit) Start() error {
	if !tk.deployed {
		return fmt.Errorf("core: Deploy before Start")
	}
	if tk.started {
		return fmt.Errorf("core: already started")
	}
	names := tk.shellNames()
	for _, name := range names {
		if err := tk.shells[name].Start(); err != nil {
			return err
		}
	}
	tk.started = true
	return nil
}

// Stop halts all shells, sweepers and translators.
func (tk *Toolkit) Stop() {
	for _, sw := range tk.sweepers {
		sw.Stop()
	}
	for _, name := range tk.shellNames() {
		tk.shells[name].Stop()
	}
	for _, iface := range tk.ifaces {
		iface.Close()
	}
	if tk.store != nil && tk.ownStore {
		tk.store.Close()
		tk.store = nil
	}
	tk.started = false
}

// Durable returns the deployment's durable store, if any — the one opened
// for Config.StateDir or supplied through Config.Durable.  Callers use it
// to share the store with a Reliable network, inspect WasClean, or inject
// a crash in tests.
func (tk *Toolkit) Durable() *durable.Store { return tk.store }

// RestoredItems reports how many CM-private items Deploy recovered from
// the durable store across all shells (0 on a cold start).
func (tk *Toolkit) RestoredItems() int { return tk.restored }

func (tk *Toolkit) shellNames() []string {
	names := make([]string, 0, len(tk.shells))
	for name := range tk.shells {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Shell returns a shell by name.
func (tk *Toolkit) Shell(name string) (*shell.Shell, bool) {
	sh, ok := tk.shells[name]
	return sh, ok
}

// ShellOfSite returns the shell hosting a site.
func (tk *Toolkit) ShellOfSite(site string) (*shell.Shell, bool) {
	for _, name := range tk.shellNames() {
		sh := tk.shells[name]
		if sh.Interface(site) != nil {
			return sh, true
		}
	}
	// The site may be hosted with a nil interface; fall back to routing by
	// name convention.
	sh, ok := tk.shells["shell-"+site]
	return sh, ok
}

// Interface returns the translator for a site.
func (tk *Toolkit) Interface(site string) (cmi.Interface, bool) {
	iface, ok := tk.ifaces[site]
	return iface, ok
}

// Guarantees lists the tracked guarantees.
func (tk *Toolkit) Guarantees() []guarantee.Guarantee {
	out := make([]guarantee.Guarantee, len(tk.entries))
	for i, e := range tk.entries {
		out[i] = e.G
	}
	return out
}

// CheckGuarantees evaluates every tracked guarantee against the recorded
// trace.
func (tk *Toolkit) CheckGuarantees() []guarantee.Report {
	return guarantee.CheckAll(tk.tr, tk.Guarantees()...)
}

// Rules returns all rules active in the deployment: strategy rules plus
// the interface rules the shells generated, as the trace checker needs.
func (tk *Toolkit) Rules() []rule.Rule {
	rules := append([]rule.Rule{}, tk.spec.Rules...)
	for _, name := range tk.shellNames() {
		rules = append(rules, tk.shells[name].ImplicitRules()...)
	}
	return rules
}

// CheckTrace validates the recorded execution against the Appendix A.2
// properties.
func (tk *Toolkit) CheckTrace() []trace.Violation {
	return trace.NewChecker(tk.Rules()).Check(tk.tr)
}

// Failures aggregates failures observed by all shells, deduplicated.
func (tk *Toolkit) Failures() []cmi.Failure {
	seen := map[string]bool{}
	var out []cmi.Failure
	for _, name := range tk.shellNames() {
		for _, f := range tk.shells[name].Failures() {
			key := fmt.Sprintf("%s|%s|%s|%v|%v", f.Kind, f.Site, f.Op, f.When, f.Err)
			if !seen[key] {
				seen[key] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// GuaranteeStatus reports, for each tracked guarantee, whether it is
// currently valid given the observed failures (Section 5): a metric
// failure at an involved site invalidates its metric guarantees only; a
// logical failure invalidates all of them.
type GuaranteeStatus struct {
	Guarantee string
	Formula   string
	Metric    bool
	Valid     bool
	Reason    string
}

// Status computes the current guarantee validity.
func (tk *Toolkit) Status() []GuaranteeStatus {
	failed := map[string]cmi.FailureKind{}
	for _, f := range tk.Failures() {
		if prev, ok := failed[f.Site]; !ok || (prev == cmi.FailMetric && f.Kind == cmi.FailLogical) {
			failed[f.Site] = f.Kind
		}
	}
	out := make([]GuaranteeStatus, len(tk.entries))
	for i, e := range tk.entries {
		st := GuaranteeStatus{
			Guarantee: e.G.Name(),
			Formula:   e.G.Formula(),
			Metric:    e.Metric,
			Valid:     true,
		}
		for _, site := range e.Sites {
			kind, ok := failed[site]
			if !ok {
				continue
			}
			if kind == cmi.FailLogical {
				st.Valid = false
				st.Reason = fmt.Sprintf("logical failure at site %s", site)
				break
			}
			if e.Metric {
				st.Valid = false
				st.Reason = fmt.Sprintf("metric failure at site %s", site)
				break
			}
		}
		out[i] = st
	}
	return out
}

// IsMetric classifies a guarantee per Section 3.3: metric guarantees
// reference explicit time bounds, non-metric ones only event ordering.
func IsMetric(g guarantee.Guarantee) bool {
	switch g.(type) {
	case guarantee.Follows, guarantee.Leads, guarantee.StrictlyFollows, guarantee.Invariant:
		return false
	default:
		return true
	}
}

// AppWrite performs an application write against a site's database and,
// when the hosting shell has no notification subscription for the base
// (read-only or polling deployments), records the spontaneous write into
// the trace so executions model the whole system's state.  Scenario
// drivers and the benchmark harness write through this.
func (tk *Toolkit) AppWrite(site string, item data.ItemName, v data.Value) error {
	iface, ok := tk.ifaces[site]
	if !ok {
		return fmt.Errorf("core: unknown site %s", site)
	}
	old, _, err := iface.Read(item)
	if err != nil {
		return err
	}
	caps := translator.CapsFromStatements(iface.Statements(), item.Base)
	notifies := caps.Has(ris.CapNotify)
	if err := iface.Write(item, v); err != nil {
		return err
	}
	if !notifies {
		if sh, ok := tk.ShellOfSite(site); ok {
			sh.Spontaneous(item, old, v)
		}
	}
	return nil
}

// RecordSpontaneous records an application write that the CM could not
// observe (no notify interface), so the trace still models the whole
// system.  Harness code that writes a store natively (e.g. raw SQL) calls
// this right after the write.
func (tk *Toolkit) RecordSpontaneous(site string, item data.ItemName, old, new data.Value) error {
	sh, ok := tk.ShellOfSite(site)
	if !ok {
		return fmt.Errorf("core: no shell hosts site %s", site)
	}
	sh.Spontaneous(item, old, new)
	return nil
}

// Inequality declares X ≤ Y between two CM-managed counters, maintained
// by the Demarcation Protocol (Section 6.1).  Unlike copy constraints,
// updates to demarcation-managed items flow through the returned agents
// (the protocol must see every update to enforce the local limits), so
// AddInequality is called after Deploy and returns the two agents.
type Inequality struct {
	X, Y string // item base names; X at its site must stay ≤ Y at its
	// InitX/InitY are the initial values, LimX/LimY the initial limits;
	// they must satisfy InitX ≤ LimX ≤ LimY ≤ InitY.
	InitX, LimX, LimY, InitY int64
	// Policy selects the slack-grant policy; nil means demarcation.Exact.
	Policy demarcation.Policy
}

// AddInequality wires demarcation agents for c onto the shells hosting
// the two items' sites and registers the X ≤ Y invariant guarantee.
func (tk *Toolkit) AddInequality(c Inequality) (xAgent, yAgent *demarcation.Agent, err error) {
	if !tk.deployed {
		return nil, nil, fmt.Errorf("core: AddInequality requires a deployed toolkit")
	}
	if !(c.InitX <= c.LimX && c.LimX <= c.LimY && c.LimY <= c.InitY) {
		return nil, nil, fmt.Errorf("core: initial values violate X <= Lx <= Ly <= Y (%d, %d, %d, %d)",
			c.InitX, c.LimX, c.LimY, c.InitY)
	}
	xSite, ok := tk.spec.SiteOf(c.X)
	if !ok {
		return nil, nil, fmt.Errorf("core: no site for item %s", c.X)
	}
	ySite, ok := tk.spec.SiteOf(c.Y)
	if !ok {
		return nil, nil, fmt.Errorf("core: no site for item %s", c.Y)
	}
	xShell, ok := tk.ShellOfSite(xSite)
	if !ok {
		return nil, nil, fmt.Errorf("core: no shell hosts site %s", xSite)
	}
	yShell, ok := tk.ShellOfSite(ySite)
	if !ok {
		return nil, nil, fmt.Errorf("core: no shell hosts site %s", ySite)
	}
	if xShell.ID() == yShell.ID() {
		return nil, nil, fmt.Errorf("core: demarcation needs the two items on different shells")
	}
	// The limits live as CM-private items beside the constrained items.
	lx, ly := "L_"+c.X, "L_"+c.Y
	if _, dup := tk.spec.Private[lx]; !dup {
		tk.spec.Private[lx] = xSite
	}
	if _, dup := tk.spec.Private[ly]; !dup {
		tk.spec.Private[ly] = ySite
	}
	xAgent = demarcation.NewAgent(xShell, xSite, yShell.ID(), data.Item(c.X), data.Item(lx), true, c.Policy)
	yAgent = demarcation.NewAgent(yShell, ySite, xShell.ID(), data.Item(c.Y), data.Item(ly), false, c.Policy)
	if tk.store != nil {
		// Recovered agents keep their persisted position through the Init
		// below — re-running the deployment's initialization after a crash
		// must not resurrect slack a side already granted away.
		if _, err := xAgent.EnableDurable(tk.store); err != nil {
			return nil, nil, fmt.Errorf("core: durable limits for %s: %w", xSite, err)
		}
		if _, err := yAgent.EnableDurable(tk.store); err != nil {
			return nil, nil, fmt.Errorf("core: durable limits for %s: %w", ySite, err)
		}
	}
	xAgent.Init(c.InitX, c.LimX)
	yAgent.Init(c.InitY, c.LimY)
	tk.AddGuarantee(demarcation.Guarantee(c.X, c.Y), xSite, ySite)
	return xAgent, yAgent, nil
}

// UseSpec merges a hand-written strategy specification into the
// deployment: its rules, CM-private items and guarantee declarations.
// This is the fully config-driven path — the spec file that cmd/cmshell
// consumes works here unchanged — usable alongside or instead of AddCopy.
// Must be called before Deploy; the spec's sites must be declared through
// AddSite (they are checked at Deploy).
func (tk *Toolkit) UseSpec(spec *rule.Spec) error {
	if tk.deployed {
		return fmt.Errorf("core: deployment already built")
	}
	tk.userSpecs = append(tk.userSpecs, spec)
	return nil
}

// mergeUserSpecs folds UseSpec contributions into the deployment spec.
func (tk *Toolkit) mergeUserSpecs() error {
	for _, spec := range tk.userSpecs {
		for base, site := range spec.Private {
			if prev, dup := tk.spec.Private[base]; dup && prev != site {
				return fmt.Errorf("core: private item %s declared at both %s and %s", base, prev, site)
			}
			tk.spec.Private[base] = site
		}
		tk.spec.Rules = append(tk.spec.Rules, spec.Rules...)
		for _, src := range spec.Guarantees {
			g, err := guarantee.Parse(src)
			if err != nil {
				return fmt.Errorf("core: guarantee %q: %w", src, err)
			}
			tk.AddGuarantee(g, guaranteeSites(tk.spec, src)...)
		}
	}
	return nil
}

// guaranteeSites best-effort extracts the sites a declared guarantee
// involves by resolving the item bases named in its arguments.
func guaranteeSites(spec *rule.Spec, src string) []string {
	seen := map[string]bool{}
	var out []string
	fields := strings.FieldsFunc(src, func(r rune) bool {
		return !(r == '_' || r == '-' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9'))
	})
	for _, f := range fields {
		if site, ok := spec.SiteOf(f); ok && !seen[site] {
			seen[site] = true
			out = append(out, site)
		}
	}
	return out
}

// Referential declares the weakened referential-integrity constraint of
// Section 6.2: every item of family Ref must have a matching item of
// family Target within Period (the sweep interval).
type Referential struct {
	Ref, Target string
	// Period is the sweep interval; zero means daily.
	Period time.Duration
	// ReportOnly monitors instead of enforcing (the fallback when the
	// referencing database offers no delete interface).
	ReportOnly bool
}

// AddReferential wires a sweep strategy for c onto the shell hosting the
// referencing site and registers the exists-within guarantee.  Called
// after Deploy; the returned sweeper is started and stopped with the
// toolkit (Stop stops its timer via the shell teardown is NOT automatic —
// callers stop it or let the process exit; tests call its Stop).
func (tk *Toolkit) AddReferential(c Referential) (*strategy.Sweeper, error) {
	if !tk.deployed {
		return nil, fmt.Errorf("core: AddReferential requires a deployed toolkit")
	}
	if c.Period <= 0 {
		c.Period = 24 * time.Hour
	}
	refSite, ok := tk.spec.SiteOf(c.Ref)
	if !ok {
		return nil, fmt.Errorf("core: no site for item %s", c.Ref)
	}
	tgtSite, ok := tk.spec.SiteOf(c.Target)
	if !ok {
		return nil, fmt.Errorf("core: no site for item %s", c.Target)
	}
	refIface, ok := tk.Interface(refSite)
	if !ok {
		return nil, fmt.Errorf("core: no translator for site %s", refSite)
	}
	tgtIface, ok := tk.Interface(tgtSite)
	if !ok {
		return nil, fmt.Errorf("core: no translator for site %s", tgtSite)
	}
	sh, ok := tk.ShellOfSite(refSite)
	if !ok {
		return nil, fmt.Errorf("core: no shell hosts site %s", refSite)
	}
	sw := strategy.NewSweeper(sh, tk.clock, c.Period, refIface, c.Ref, tgtIface, c.Target)
	sw.ReportOnly = c.ReportOnly
	sw.Start()
	tk.sweepers = append(tk.sweepers, sw)
	tk.AddGuarantee(sw.Guarantee(c.Period/10), refSite, tgtSite)
	return sw, nil
}

// Reset clears all recorded failures — the Section 5 "system reset" after
// which guarantees involving a logically failed site become valid again.
// The caller is responsible for having actually repaired the sources.
func (tk *Toolkit) Reset() {
	for _, name := range tk.shellNames() {
		tk.shells[name].ClearFailures()
	}
}
