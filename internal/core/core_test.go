package core

import (
	"errors"
	"testing"
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/strategy"
	"cmtk/internal/translator"
	"cmtk/internal/vclock"
)

const ridA = `
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
interface RR(salary1(n)) && salary1(n) = b ->1s R(salary1(n), b)
`

const ridB = `
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`

func newEmployeesDB(t *testing.T, name string) *relstore.DB {
	t.Helper()
	db := relstore.New(name)
	if _, err := db.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))"); err != nil {
		t.Fatal(err)
	}
	return db
}

func buildPayroll(t *testing.T, strat string) (*Toolkit, *vclock.Virtual, *relstore.DB, *relstore.DB) {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "branch")
	dbB := newEmployeesDB(t, "hq")
	cfgA, err := rid.ParseString(ridA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := rid.ParseString(ridB)
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk, BusLatency: 100 * time.Millisecond, FireDelay: 50 * time.Millisecond})
	if err := tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}}); err != nil {
		t.Fatal(err)
	}
	if err := tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}}); err != nil {
		t.Fatal(err)
	}
	if err := tk.AddCopy(CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: strat}); err != nil {
		t.Fatal(err)
	}
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tk.Stop)
	return tk, clk, dbA, dbB
}

func TestDeployAndPropagate(t *testing.T) {
	tk, clk, dbA, dbB := buildPayroll(t, "auto")
	dbA.Exec("INSERT INTO employees VALUES ('e1', 100)")
	clk.Advance(2 * time.Second)
	res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(100)) {
		t.Fatalf("B rows = %v", res.Rows)
	}
	if vs := tk.CheckTrace(); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
	reports := tk.CheckGuarantees()
	if len(reports) == 0 || !guarantee.AllHold(reports) {
		t.Fatalf("guarantees: %v", reports)
	}
}

func TestSuggestionsOrder(t *testing.T) {
	tk, _, _, _ := buildPayroll(t, "auto")
	sugg, err := tk.Suggestions(CopyConstraint{X: "salary1", Y: "salary2", Arity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) != 2 || sugg[0].Name != "notify-propagation" {
		t.Fatalf("suggestions = %v", choiceNames(sugg))
	}
}

func TestExplicitStrategySelection(t *testing.T) {
	tk, clk, dbA, dbB := buildPayroll(t, "cached")
	dbA.Exec("INSERT INTO employees VALUES ('e1', 100)")
	clk.Advance(2 * time.Second)
	res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if len(res.Rows) != 1 {
		t.Fatalf("B rows = %v", res.Rows)
	}
	// The cache private item ended up in the spec.
	if tk.Spec().Private["cache_salary2"] != "B" {
		t.Fatalf("private items = %v", tk.Spec().Private)
	}
}

func TestStrategyNotApplicableRejected(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "a")
	dbB := newEmployeesDB(t, "b")
	cfgA, _ := rid.ParseString(ridA)
	cfgB, _ := rid.ParseString(ridB)
	tk := New(Config{Clock: clk})
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	// "monitor" is inapplicable: B offers write.
	tk.AddCopy(CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "monitor"})
	if err := tk.Deploy(); err == nil {
		t.Fatal("inapplicable strategy deployed")
	}
}

func TestSharedShellFigureOne(t *testing.T) {
	// Site B has no shell of its own: shell "main" hosts both sites, as
	// for Site 3 in Figure 1.
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "a")
	dbB := newEmployeesDB(t, "b")
	cfgA, _ := rid.ParseString(ridA)
	cfgB, _ := rid.ParseString(ridB)
	tk := New(Config{Clock: clk})
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}, Shell: "main"})
	tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}, Shell: "main"})
	tk.AddCopy(CopyConstraint{X: "salary1", Y: "salary2", Arity: 1})
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	defer tk.Stop()
	if len(tk.shellNames()) != 1 {
		t.Fatalf("shells = %v", tk.shellNames())
	}
	dbA.Exec("INSERT INTO employees VALUES ('e1', 7)")
	clk.Advance(2 * time.Second)
	res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(7)) {
		t.Fatalf("B rows = %v", res.Rows)
	}
	if vs := tk.CheckTrace(); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
}

func TestStatusAfterFailures(t *testing.T) {
	tk, clk, _, _ := buildPayroll(t, "auto")
	for _, st := range tk.Status() {
		if !st.Valid {
			t.Fatalf("guarantee invalid before any failure: %+v", st)
		}
	}
	// Inject a metric failure at site A.
	sh, ok := tk.ShellOfSite("A")
	if !ok {
		t.Fatal("no shell for A")
	}
	_ = sh
	iface, _ := tk.Interface("A")
	// Reading an unbound item produces a logical failure; simulate a
	// metric one directly through the shell instead.
	shA, _ := tk.Shell("shell-A")
	shA.OnFailure(func(cmi.Failure) {})
	// Use the translator hub by reading a bogus item: logical failure.
	iface.Read(data.Item("ghost", data.NewString("x")))
	clk.Advance(time.Second)
	status := tk.Status()
	invalid := 0
	for _, st := range status {
		if !st.Valid {
			invalid++
			if st.Reason == "" {
				t.Fatalf("missing reason: %+v", st)
			}
		}
	}
	// Logical failure invalidates all guarantees involving site A.
	if invalid != len(status) {
		t.Fatalf("status = %+v", status)
	}
	if len(tk.Failures()) == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestMetricFailureSparesNonMetricGuarantees(t *testing.T) {
	tk, clk, _, _ := buildPayroll(t, "auto")
	shA, _ := tk.Shell("shell-A")
	// Deliver a metric failure as the translator hub would.
	shA.Do(func() {})
	shAFail(tk, clk)
	metInvalid, nonMetInvalid := 0, 0
	for _, st := range tk.Status() {
		if !st.Valid {
			if st.Metric {
				metInvalid++
			} else {
				nonMetInvalid++
			}
		}
	}
	if metInvalid == 0 {
		t.Fatal("metric guarantees survived a metric failure")
	}
	if nonMetInvalid != 0 {
		t.Fatal("non-metric guarantees invalidated by a metric failure")
	}
}

// shAFail injects a metric failure via the failure-propagation path.
func shAFail(tk *Toolkit, clk *vclock.Virtual) {
	shA, _ := tk.Shell("shell-A")
	shA.ReportMetricFailure("A", "test", errors.New("simulated overload"))
	clk.Advance(time.Second)
}

func TestErrorsOnMisuse(t *testing.T) {
	tk := New(Config{Clock: vclock.NewVirtual(vclock.Epoch)})
	if err := tk.AddSite(Site{}); err == nil {
		t.Fatal("site without RID accepted")
	}
	if err := tk.Start(); err == nil {
		t.Fatal("Start before Deploy accepted")
	}
	cfgA, _ := rid.ParseString(ridA)
	dbA := newEmployeesDB(t, "a")
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	if err := tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}}); err == nil {
		t.Fatal("duplicate site accepted")
	}
	tk.AddCopy(CopyConstraint{X: "salary1", Y: "nowhere"})
	if err := tk.Deploy(); err == nil {
		t.Fatal("constraint on unbound item deployed")
	}
}

func TestIsMetric(t *testing.T) {
	if IsMetric(guarantee.Follows{}) || IsMetric(guarantee.Invariant{}) {
		t.Error("non-metric classified metric")
	}
	if !IsMetric(guarantee.MetricFollows{}) || !IsMetric(guarantee.ExistsWithin{}) {
		t.Error("metric classified non-metric")
	}
}

func TestAppWriteRecordsWhenNoNotify(t *testing.T) {
	// Polling deployment: app writes at A are invisible to the CM, so
	// AppWrite/RecordSpontaneous must mirror them into the trace.
	tk, clk, dbA, _ := buildPayrollPolling(t)
	item := data.Item("salary1", data.NewString("e1"))
	dbA.Exec("INSERT INTO employees VALUES ('e1', 5)")
	tk.RecordSpontaneous("A", item, data.NullValue, data.NewInt(5))
	clk.Advance(65 * time.Second)
	if vs := tk.CheckTrace(); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
	rep := guarantee.Follows{X: "salary1", Y: "salary2"}.Check(tk.Trace())
	if !rep.Holds || rep.Checked == 0 {
		t.Fatalf("follows: %+v", rep)
	}
}

func buildPayrollPolling(t *testing.T) (*Toolkit, *vclock.Virtual, *relstore.DB, *relstore.DB) {
	t.Helper()
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "branch")
	dbB := newEmployeesDB(t, "hq")
	// Site A offers only a read interface this time (the Section 4.2.3
	// interface change).
	cfgA, err := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface RR(salary1(n)) && salary1(n) = b ->1s R(salary1(n), b)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, _ := rid.ParseString(ridB)
	tk := New(Config{Clock: clk, BusLatency: 100 * time.Millisecond})
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	tk.AddCopy(CopyConstraint{
		X: "salary1", Y: "salary2", Arity: 1,
		Options: strategyOptionsWithKeys("e1"),
	})
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tk.Stop)
	// Sanity: auto selection picked polling (the only applicable one).
	picked := false
	for _, r := range tk.Spec().Rules {
		if r.LHS.Op.String() == "P" {
			picked = true
		}
	}
	if !picked {
		t.Fatalf("polling not selected; rules: %v", tk.Spec().Rules)
	}
	return tk, clk, dbA, dbB
}

func strategyOptionsWithKeys(keys ...string) strategy.Options {
	vals := make([]data.Value, len(keys))
	for i, k := range keys {
		vals[i] = data.NewString(k)
	}
	return strategy.Options{PollPeriod: 60 * time.Second, PollKeys: vals}
}

func TestAddInequalityDemarcation(t *testing.T) {
	// X and Y are integer items in two relational databases; the
	// demarcation agents keep X <= Y with local limits.
	clk := vclock.NewVirtual(vclock.Epoch)
	dbX := newEmployeesDB(t, "x")
	dbY := newEmployeesDB(t, "y")
	cfgX, err := rid.ParseString(`
kind relstore
site SX
item X
  type int
  read   SELECT salary FROM employees WHERE empid = 'x'
  write  UPDATE employees SET salary = $b WHERE empid = 'x'
  insert INSERT INTO employees (empid, salary) VALUES ('x', $b)
  delete DELETE FROM employees WHERE empid = 'x'
interface WR(X, b) ->1s W(X, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfgY, err := rid.ParseString(`
kind relstore
site SY
item Y
  type int
  read   SELECT salary FROM employees WHERE empid = 'y'
  write  UPDATE employees SET salary = $b WHERE empid = 'y'
  insert INSERT INTO employees (empid, salary) VALUES ('y', $b)
  delete DELETE FROM employees WHERE empid = 'y'
interface WR(Y, b) ->1s W(Y, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk, BusLatency: 50 * time.Millisecond})
	if err := tk.AddSite(Site{RID: cfgX, Local: &translator.LocalStores{Rel: dbX}}); err != nil {
		t.Fatal(err)
	}
	if err := tk.AddSite(Site{RID: cfgY, Local: &translator.LocalStores{Rel: dbY}}); err != nil {
		t.Fatal(err)
	}
	// Before Deploy it is rejected.
	if _, _, err := tk.AddInequality(Inequality{X: "X", Y: "Y"}); err == nil {
		t.Fatal("AddInequality before Deploy succeeded")
	}
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	defer tk.Stop()

	xa, ya, err := tk.AddInequality(Inequality{X: "X", Y: "Y", InitX: 0, LimX: 50, LimY: 50, InitY: 100})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	// The initial values reached the databases through the translators.
	res, _ := dbX.Exec("SELECT salary FROM employees WHERE empid = 'x'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(0)) {
		t.Fatalf("X db = %v", res.Rows)
	}
	// In-slack increments are local; a limit-crossing one round-trips.
	for i := 0; i < 50; i++ {
		xa.Update(1, nil)
	}
	clk.Advance(time.Second)
	var granted bool
	xa.Update(10, func(ok bool) { granted = ok })
	clk.Advance(5 * time.Second)
	if !granted || xa.Value() != 60 {
		t.Fatalf("granted=%v X=%d", granted, xa.Value())
	}
	if ya.Limit() < xa.Limit() {
		t.Fatalf("limits crossed: Lx=%d Ly=%d", xa.Limit(), ya.Limit())
	}
	// The database mirrors the protocol's value.
	res, _ = dbX.Exec("SELECT salary FROM employees WHERE empid = 'x'")
	if !res.Rows[0][0].Equal(data.NewInt(60)) {
		t.Fatalf("X db = %v", res.Rows)
	}
	// The invariant guarantee is tracked and holds.
	reports := tk.CheckGuarantees()
	found := false
	for _, r := range reports {
		if r.Guarantee == "invariant(X<=Y)" {
			found = true
			if !r.Holds {
				t.Fatalf("invariant: %v", r.Violations)
			}
		}
	}
	if !found {
		t.Fatalf("invariant guarantee not tracked: %v", reports)
	}
	// Bad initial values rejected.
	if _, _, err := tk.AddInequality(Inequality{X: "X", Y: "Y", InitX: 10, LimX: 5, LimY: 50, InitY: 100}); err == nil {
		t.Fatal("bad initial values accepted")
	}
}

func TestUseSpecConfigDriven(t *testing.T) {
	// A deployment driven entirely by a hand-written spec file, including
	// guarantee declarations.
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "a")
	dbB := newEmployeesDB(t, "b")
	cfgA, _ := rid.ParseString(ridA)
	cfgB, _ := rid.ParseString(ridB)
	spec, err := rule.ParseSpecString(`
site A
site B
item salary1 @ A
item salary2 @ B
rule prop: N(salary1(n), b) ->5s WR(salary2(n), b)
guarantee follows(salary1, salary2)
guarantee metric-leads(salary1, salary2, 15s)
`)
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk, BusLatency: 50 * time.Millisecond})
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	if err := tk.UseSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	defer tk.Stop()
	dbA.Exec("INSERT INTO employees VALUES ('e1', 9)")
	clk.Advance(30 * time.Second)
	res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e1'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(9)) {
		t.Fatalf("B rows = %v", res.Rows)
	}
	reports := tk.CheckGuarantees()
	if len(reports) != 2 {
		t.Fatalf("reports = %v", reports)
	}
	if !guarantee.AllHold(reports) {
		t.Fatalf("declared guarantees: %v", reports)
	}
	// The failure bookkeeping attributed sites to the declared guarantees.
	shA, _ := tk.Shell("shell-A")
	shA.ReportLogicalFailure("A", "test", errors.New("boom"))
	clk.Advance(time.Second)
	for _, st := range tk.Status() {
		if st.Valid {
			t.Fatalf("guarantee survived a logical failure at A: %+v", st)
		}
	}
	// Bad declared guarantees fail Deploy.
	tk2 := New(Config{Clock: clk})
	cfgA2, _ := rid.ParseString(ridA)
	dbA2 := newEmployeesDB(t, "a2")
	tk2.AddSite(Site{RID: cfgA2, Local: &translator.LocalStores{Rel: dbA2}})
	badSpec := rule.NewSpec()
	badSpec.Guarantees = []string{"nosuch(x, y)"}
	tk2.UseSpec(badSpec)
	if err := tk2.Deploy(); err == nil {
		t.Fatal("bad guarantee deployed")
	}
}

func TestAddReferentialSweep(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	projDB := relstore.New("projects")
	projDB.Exec("CREATE TABLE projects (empid TEXT, proj TEXT, PRIMARY KEY (empid))")
	salDB := relstore.New("salaries")
	salDB.Exec("CREATE TABLE salaries (empid TEXT, amount INT, PRIMARY KEY (empid))")
	projCfg, err := rid.ParseString(`
kind relstore
site P
item project
  type string
  read   SELECT proj FROM projects WHERE empid = $n
  write  UPDATE projects SET proj = $b WHERE empid = $n
  insert INSERT INTO projects (empid, proj) VALUES ($n, $b)
  delete DELETE FROM projects WHERE empid = $n
  list   SELECT empid FROM projects
`)
	if err != nil {
		t.Fatal(err)
	}
	salCfg, err := rid.ParseString(`
kind relstore
site S
item salary
  type int
  read   SELECT amount FROM salaries WHERE empid = $n
  list   SELECT empid FROM salaries
`)
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk})
	tk.AddSite(Site{RID: projCfg, Local: &translator.LocalStores{Rel: projDB}})
	tk.AddSite(Site{RID: salCfg, Local: &translator.LocalStores{Rel: salDB}})
	// Before Deploy: rejected.
	if _, err := tk.AddReferential(Referential{Ref: "project", Target: "salary"}); err == nil {
		t.Fatal("AddReferential before Deploy succeeded")
	}
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	defer tk.Stop()
	sw, err := tk.AddReferential(Referential{Ref: "project", Target: "salary", Period: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// One matched record, one orphan.
	salDB.Exec("INSERT INTO salaries VALUES ('e1', 100)")
	projDB.Exec("INSERT INTO projects VALUES ('e1', 'apollo')")
	projDB.Exec("INSERT INTO projects VALUES ('e2', 'zeus')")
	tk.RecordSpontaneous("P", data.Item("project", data.NewString("e1")), data.NullValue, data.NewString("apollo"))
	tk.RecordSpontaneous("P", data.Item("project", data.NewString("e2")), data.NullValue, data.NewString("zeus"))
	tk.RecordSpontaneous("S", data.Item("salary", data.NewString("e1")), data.NullValue, data.NewInt(100))
	clk.Advance(25 * time.Hour)
	if n, _ := projDB.RowCount("projects"); n != 1 {
		t.Fatalf("projects rows = %d", n)
	}
	if _, orphans, deleted := sw.Stats(); orphans != 1 || deleted != 1 {
		t.Fatalf("stats = %d, %d", orphans, deleted)
	}
	clk.Advance(3 * time.Hour)
	// The guarantee is tracked and holds.
	for _, r := range tk.CheckGuarantees() {
		if !r.Holds {
			t.Fatalf("%s: %v", r.Guarantee, r.Violations)
		}
	}
	// Unknown bases are rejected.
	if _, err := tk.AddReferential(Referential{Ref: "ghost", Target: "salary"}); err == nil {
		t.Fatal("unknown ref accepted")
	}
}

func TestResetRestoresGuaranteeValidity(t *testing.T) {
	tk, clk, _, _ := buildPayroll(t, "auto")
	shA, _ := tk.Shell("shell-A")
	shA.ReportLogicalFailure("A", "test", errors.New("catastrophe"))
	clk.Advance(time.Second)
	invalid := 0
	for _, st := range tk.Status() {
		if !st.Valid {
			invalid++
		}
	}
	if invalid == 0 {
		t.Fatal("no guarantees invalidated")
	}
	// The Section 5 reset: after repair, validity is restored.
	tk.Reset()
	for _, st := range tk.Status() {
		if !st.Valid {
			t.Fatalf("guarantee still invalid after reset: %+v", st)
		}
	}
}

func TestNoSpontaneousWritePromiseMonitored(t *testing.T) {
	// Site B promises "no spontaneous writes" (Ws(salary2(n), b) → F).
	// CM-initiated propagation must not trip it, but a rogue local write
	// at B must surface as a violated F obligation in the trace check.
	clk := vclock.NewVirtual(vclock.Epoch)
	dbA := newEmployeesDB(t, "a")
	dbB := newEmployeesDB(t, "b")
	cfgA, _ := rid.ParseString(ridA)
	cfgB, err := rid.ParseString(ridB + "interface Ws(salary2(n), b) ->0s F\n")
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk, BusLatency: 50 * time.Millisecond})
	tk.AddSite(Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	tk.AddCopy(CopyConstraint{X: "salary1", Y: "salary2", Arity: 1, Strategy: "notify"})
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	defer tk.Stop()

	// Legitimate CM propagation: no violations.
	dbA.Exec("INSERT INTO employees VALUES ('e1', 100)")
	clk.Advance(5 * time.Second)
	if vs := tk.CheckTrace(); len(vs) != 0 {
		t.Fatalf("CM propagation tripped the promise: %v", vs)
	}
	// A rogue local application writes the replica directly.
	dbB.Exec("UPDATE employees SET salary = 999 WHERE empid = 'e1'")
	clk.Advance(5 * time.Second)
	vs := tk.CheckTrace()
	found := false
	for _, v := range vs {
		if v.Property == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("rogue write not flagged: %v", vs)
	}
}
