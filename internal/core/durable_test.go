package core

import (
	"testing"
	"time"

	"cmtk/internal/rid"
	"cmtk/internal/translator"
	"cmtk/internal/vclock"
)

const durRidX = `
kind relstore
site SX
item X
  type int
  read   SELECT salary FROM employees WHERE empid = 'x'
  write  UPDATE employees SET salary = $b WHERE empid = 'x'
  insert INSERT INTO employees (empid, salary) VALUES ('x', $b)
  delete DELETE FROM employees WHERE empid = 'x'
interface WR(X, b) ->1s W(X, b)
`

const durRidY = `
kind relstore
site SY
item Y
  type int
  read   SELECT salary FROM employees WHERE empid = 'y'
  write  UPDATE employees SET salary = $b WHERE empid = 'y'
  insert INSERT INTO employees (empid, salary) VALUES ('y', $b)
  delete DELETE FROM employees WHERE empid = 'y'
interface WR(Y, b) ->1s W(Y, b)
`

// buildDurableToolkit assembles a two-site demarcation deployment whose
// durable state lives in dir, modelling one incarnation of a process.
func buildDurableToolkit(t *testing.T, dir string, clk *vclock.Virtual) (*Toolkit, *demarcationAgents) {
	t.Helper()
	cfgX, err := rid.ParseString(durRidX)
	if err != nil {
		t.Fatal(err)
	}
	cfgY, err := rid.ParseString(durRidY)
	if err != nil {
		t.Fatal(err)
	}
	tk := New(Config{Clock: clk, BusLatency: 50 * time.Millisecond, StateDir: dir})
	if err := tk.AddSite(Site{RID: cfgX, Local: &translator.LocalStores{Rel: newEmployeesDB(t, "x")}}); err != nil {
		t.Fatal(err)
	}
	if err := tk.AddSite(Site{RID: cfgY, Local: &translator.LocalStores{Rel: newEmployeesDB(t, "y")}}); err != nil {
		t.Fatal(err)
	}
	if err := tk.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	// The deployment re-runs its initialization every start, exactly as a
	// restarted process would; recovered agents must keep their position.
	xa, ya, err := tk.AddInequality(Inequality{X: "X", Y: "Y", InitX: 10, LimX: 50, LimY: 50, InitY: 100})
	if err != nil {
		t.Fatal(err)
	}
	return tk, &demarcationAgents{xa: xa, ya: ya}
}

type demarcationAgents struct {
	xa, ya interface {
		Value() int64
		Limit() int64
		Update(int64, func(bool))
	}
}

// TestToolkitStateDirSurvivesRestart: a toolkit built with StateDir
// persists its demarcation limits and CM-private items; a second toolkit
// over the same directory resumes the moved position instead of the
// initial arguments.
func TestToolkitStateDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewVirtual(vclock.Epoch)
	tk, ag := buildDurableToolkit(t, dir, clk)
	if tk.Durable() == nil {
		t.Fatal("StateDir set but Durable() is nil")
	}
	if tk.RestoredItems() != 0 {
		t.Fatalf("fresh deployment restored %d items", tk.RestoredItems())
	}
	// Force a limit-change round trip: X wants 60, Lx is 50.
	okCh := make(chan bool, 1)
	ag.xa.Update(50, func(ok bool) { okCh <- ok })
	clk.Advance(5 * time.Second)
	select {
	case ok := <-okCh:
		if !ok {
			t.Fatal("update denied despite available slack")
		}
	default:
		t.Fatal("update never completed")
	}
	xv, xl := ag.xa.Value(), ag.xa.Limit()
	yl := ag.ya.Limit()
	if xl == 50 && yl == 50 {
		t.Fatalf("limits never moved: Lx=%d Ly=%d", xl, yl)
	}
	tk.Stop()
	if tk.Durable() != nil {
		t.Fatal("Stop left an owned store open")
	}

	clk2 := vclock.NewVirtual(vclock.Epoch)
	tk2, ag2 := buildDurableToolkit(t, dir, clk2)
	defer tk2.Stop()
	if !tk2.Durable().WasClean() {
		t.Fatal("clean Stop left no clean-shutdown marker")
	}
	if tk2.RestoredItems() == 0 {
		t.Fatal("restart restored no private items")
	}
	if got, gotL := ag2.xa.Value(), ag2.xa.Limit(); got != xv || gotL != xl {
		t.Fatalf("X side = (%d, %d), want recovered (%d, %d)", got, gotL, xv, xl)
	}
	if x, lx, ly, y := ag2.xa.Value(), ag2.xa.Limit(), ag2.ya.Limit(), ag2.ya.Value(); !(x <= lx && lx <= ly && ly <= y) {
		t.Fatalf("invariant broken after restart: X=%d Lx=%d Ly=%d Y=%d", x, lx, ly, y)
	}
}
