package core_test

import (
	"fmt"
	"time"

	"cmtk/internal/core"
	"cmtk/internal/data"
	"cmtk/internal/rid"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/strategy"
	"cmtk/internal/translator"
	"cmtk/internal/vclock"
)

// Example assembles the paper's Section 4.2 payroll deployment: a branch
// database with a notify interface, a headquarters database with a write
// interface, one parameterized copy constraint, and machine-checked
// guarantees over the recorded execution.
func Example() {
	// Two autonomous relational databases.
	dbA := relstore.New("branch")
	dbA.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("hq")
	dbB.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")

	// CM-RIDs describe each source in its own native terms.
	cfgA, _ := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
  watch  employees
  keycol empid
  valcol salary
interface Ws(salary1(n), b) ->2s N(salary1(n), b)
`)
	cfgB, _ := rid.ParseString(`
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
  insert INSERT INTO employees (empid, salary) VALUES ($n, $b)
  delete DELETE FROM employees WHERE empid = $n
  list   SELECT empid FROM employees
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`)

	clk := vclock.NewVirtual(vclock.Epoch)
	tk := core.New(core.Config{Clock: clk})
	tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	tk.AddCopy(core.CopyConstraint{X: "salary1", Y: "salary2", Arity: 1})
	tk.Deploy()
	tk.Start()
	defer tk.Stop()

	// An application updates the branch; the toolkit propagates.
	dbA.Exec("INSERT INTO employees VALUES ('e7', 100)")
	clk.Advance(time.Minute)

	res, _ := dbB.Exec("SELECT salary FROM employees WHERE empid = 'e7'")
	fmt.Println("hq sees:", res.Rows[0][0])
	fmt.Println("trace violations:", len(tk.CheckTrace()))
	for _, rep := range tk.CheckGuarantees()[:2] {
		fmt.Println(rep.Guarantee, "holds:", rep.Holds)
	}
	// Output:
	// hq sees: 100
	// trace violations: 0
	// follows(salary1,salary2) holds: true
	// leads(salary1,salary2) holds: true
}

// ExampleToolkit_Suggestions shows the Section 4.1 initialization
// dialogue: given the declared interfaces, which strategies apply.
func ExampleToolkit_Suggestions() {
	dbA := relstore.New("a")
	dbA.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	dbB := relstore.New("b")
	dbB.Exec("CREATE TABLE employees (empid TEXT, salary INT, PRIMARY KEY (empid))")
	cfgA, _ := rid.ParseString(`
kind relstore
site A
item salary1
  type int
  read SELECT salary FROM employees WHERE empid = $n
interface RR(salary1(n)) && salary1(n) = b ->1s R(salary1(n), b)
`)
	cfgB, _ := rid.ParseString(`
kind relstore
site B
item salary2
  type int
  read   SELECT salary FROM employees WHERE empid = $n
  write  UPDATE employees SET salary = $b WHERE empid = $n
interface WR(salary2(n), b) ->3s W(salary2(n), b)
`)
	tk := core.New(core.Config{Clock: vclock.NewVirtual(vclock.Epoch)})
	tk.AddSite(core.Site{RID: cfgA, Local: &translator.LocalStores{Rel: dbA}})
	tk.AddSite(core.Site{RID: cfgB, Local: &translator.LocalStores{Rel: dbB}})
	// Site A only offers Read, so only polling applies (Section 4.2.3).
	sugg, _ := tk.Suggestions(core.CopyConstraint{
		X: "salary1", Y: "salary2", Arity: 1,
		Options: pollKeys("e1"),
	})
	for _, s := range sugg {
		fmt.Println(s.Name)
	}
	// Output:
	// polling
}

// pollKeys builds polling options for the example.
func pollKeys(keys ...string) strategy.Options {
	vals := make([]data.Value, len(keys))
	for i, k := range keys {
		vals[i] = data.NewString(k)
	}
	return strategy.Options{PollPeriod: 60 * time.Second, PollKeys: vals}
}
