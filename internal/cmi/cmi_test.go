package cmi

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cmtk/internal/ris"
)

func TestClassify(t *testing.T) {
	if Classify(ris.Transient(errors.New("x"))) != FailMetric {
		t.Error("transient not metric")
	}
	if Classify(errors.New("x")) != FailLogical {
		t.Error("plain error not logical")
	}
	if Classify(fmt.Errorf("wrap: %w", ris.Transient(errors.New("x")))) != FailMetric {
		t.Error("wrapped transient not metric")
	}
	if Classify(ris.ErrUnavailable) != FailLogical {
		t.Error("unavailable not logical")
	}
}

func TestFailureKindString(t *testing.T) {
	if FailMetric.String() != "metric" || FailLogical.String() != "logical" {
		t.Error("kind strings wrong")
	}
}

func TestFailureString(t *testing.T) {
	f := Failure{
		Kind: FailMetric, Site: "A", When: time.Now(),
		Op: "read", Err: errors.New("timeout"),
	}
	s := f.String()
	for _, want := range []string{"metric", "A", "read", "timeout"} {
		if !contains(s, want) {
			t.Errorf("Failure.String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
