// Package cmi defines the CM-Interface (Figure 2): the uniform interface
// every CM-Translator presents to the CM-Shells, regardless of how exotic
// the underlying Raw Information Source is.  A shell never sees SQL, file
// formats or directory protocols — only items, values, notifications, the
// interface statements the translator promises to honor, and failures
// classified as metric or logical (Section 5).
package cmi

import (
	"fmt"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
)

// FailureKind classifies interface failures per Section 5.
type FailureKind int

// Failure kinds.
const (
	// FailMetric: the interface's actions will happen, but not within the
	// promised time bound (overload, brief crash with recovery).  Metric
	// guarantees are invalidated; non-metric guarantees survive.
	FailMetric FailureKind = iota
	// FailLogical: the interface statements no longer hold at all
	// (catastrophic failure).  All guarantees involving the site are
	// invalid until the system is reset.
	FailLogical
)

func (k FailureKind) String() string {
	if k == FailMetric {
		return "metric"
	}
	return "logical"
}

// Failure describes one detected interface failure.
type Failure struct {
	Kind FailureKind
	Site string
	When time.Time
	Op   string // operation that surfaced it: "read", "write", "notify"
	Err  error
}

func (f Failure) String() string {
	return fmt.Sprintf("%s failure at site %s during %s: %v", f.Kind, f.Site, f.Op, f.Err)
}

// Classify maps a native-interface error to a failure kind using the ris
// error taxonomy: transient errors are metric failures, everything else is
// logical.
func Classify(err error) FailureKind {
	if ris.IsTransient(err) {
		return FailMetric
	}
	return FailLogical
}

// NotifyFunc receives a spontaneous-change notification for one item.
// old is null for creations; new is null for deletions.
type NotifyFunc func(item data.ItemName, old, new data.Value)

// Interface is the uniform CM-Interface for one site's items.
type Interface interface {
	// Site names the site this translator serves.
	Site() string
	// Statements returns the interface statements (Section 3.1) this
	// translator is configured to honor, in the rule language.  The
	// toolkit's strategy suggestion consults these.
	Statements() []rule.Rule
	// Capabilities reports the native capability set behind an item base.
	Capabilities(base string) ris.Capability
	// Read returns the current value of an item; exists is false when the
	// item is absent (the E(X) predicate).
	Read(item data.ItemName) (v data.Value, exists bool, err error)
	// Write asks the source to perform item ← v.  Writing null deletes
	// the item.  Sources without a write interface return ErrReadOnly.
	Write(item data.ItemName, v data.Value) error
	// Subscribe requests notification of spontaneous changes to an item
	// family.  Sources without native notification return ErrUnsupported
	// — the strategy layer then falls back to polling, as in Section 4.2.
	Subscribe(base string, fn NotifyFunc) (cancel func(), err error)
	// List enumerates the current members of an item family.
	List(base string) ([]data.ItemName, error)
	// OnFailure registers a callback invoked whenever the translator
	// detects an interface failure.  Multiple callbacks accumulate.
	OnFailure(fn func(Failure))
	// Close releases subscriptions and connections.
	Close() error
}
