// Package durable is the crash-recovery substrate of the toolkit: an
// append-only, segment-rotating write-ahead log with CRC32-framed records
// and checkpoint files, grouped per process under one state directory
// (a Store).
//
// Section 5 of the paper only lets a site crash degrade to a *metric*
// failure "if the database ... can remember messages that need to be sent
// out upon recovery".  The components that must remember — the reliable
// transport's outbox and dedup state, a shell's CM-private items, a
// demarcation agent's value and limit — each journal their mutations into
// a named Log and snapshot their full state into its checkpoint, so a
// killed process replays its way back to the pre-crash state instead of
// silently losing fires.
//
// Records are framed as [4-byte length][4-byte CRC32(payload)][payload],
// where payload is [1-byte type][data]; the type byte is the component's
// own codec tag.  On open the log scans its segments in order and stops
// at the first damage — a torn tail is truncated, a CRC mismatch cuts the
// log there, and later segments are never replayed past the failure — so
// recovery never panics and never applies a corrupt record.  The fsync
// policy is configurable (always / interval / never) and its cost is
// visible through the cmtk_wal_* metrics (see OBSERVABILITY.md).
package durable

import (
	"fmt"
	"time"

	"cmtk/internal/obs"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

// Fsync policies.
const (
	// SyncAlways fsyncs after every append: no record is lost to a power
	// failure, at one fsync per record.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs lazily, at most once per SyncEvery, bounding the
	// window of records a power failure can lose.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache: a process crash
	// loses nothing (the kernel holds the writes), a power failure may
	// lose the unflushed tail.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown sync policy %q (want always|interval|never)", s)
}

// Options tunes a Store and the Logs it opens.
type Options struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the lazy-fsync interval under SyncInterval (default
	// 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment when it would exceed this
	// size (default 4MB).
	SegmentBytes int64
	// Metrics is the registry the cmtk_wal_* families land in; nil means
	// obs.Default.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}
