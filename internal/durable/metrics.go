package durable

import "cmtk/internal/obs"

// walMetrics holds the cmtk_wal_* families (see OBSERVABILITY.md); each
// Log resolves its own label cells once at open.
type walMetrics struct {
	appends, fsyncs, bytes  *obs.CounterVec
	checkpoints, replayed   *obs.CounterVec
	damage                  *obs.CounterVec // log, kind
	size, segments, ckptAge *obs.GaugeVec
}

func newWALMetrics(reg *obs.Registry) walMetrics {
	if reg == nil {
		reg = obs.Default
	}
	return walMetrics{
		appends: reg.Counter("cmtk_wal_appends_total",
			"Records appended to a write-ahead log.", "log"),
		fsyncs: reg.Counter("cmtk_wal_fsyncs_total",
			"fsync calls issued by a log (appends per the sync policy, checkpoints, clean shutdown).", "log"),
		bytes: reg.Counter("cmtk_wal_appended_bytes_total",
			"Bytes appended to a write-ahead log, including framing.", "log"),
		checkpoints: reg.Counter("cmtk_wal_checkpoints_total",
			"Checkpoints taken: snapshot written, log truncated.", "log"),
		replayed: reg.Counter("cmtk_wal_recovery_replayed_total",
			"Records replayed from the log during recovery at open.", "log"),
		damage: reg.Counter("cmtk_wal_recovery_damage_total",
			"Damage found during recovery, by kind (torn-tail, crc, orphaned-segment, checkpoint).", "log", "kind"),
		size: reg.Gauge("cmtk_wal_size_bytes",
			"Current size of a log's live segments.", "log"),
		segments: reg.Gauge("cmtk_wal_segments",
			"Live segment files of a log.", "log"),
		ckptAge: reg.Gauge("cmtk_wal_last_checkpoint_unix_seconds",
			"Unix time of a log's last checkpoint (0: none yet); age = now - value.", "log"),
	}
}

// logMetrics are one log's resolved cells.
type logMetrics struct {
	appends, fsyncs, bytes *obs.Counter
	checkpoints, replayed  *obs.Counter
	size, segments, ckpt   *obs.Gauge
	damage                 func(kind string) *obs.Counter
}

func (m walMetrics) forLog(name string) logMetrics {
	return logMetrics{
		appends:     m.appends.With(name),
		fsyncs:      m.fsyncs.With(name),
		bytes:       m.bytes.With(name),
		checkpoints: m.checkpoints.With(name),
		replayed:    m.replayed.With(name),
		size:        m.size.With(name),
		segments:    m.segments.With(name),
		ckpt:        m.ckptAge.With(name),
		damage:      func(kind string) *obs.Counter { return m.damage.With(name, kind) },
	}
}
