package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Frame layout: [4-byte little-endian length N][4-byte CRC32-IEEE of the
// payload][payload], payload = [1-byte record type][data], so N =
// 1+len(data).  A record can never be empty (the type byte is always
// there), which lets the scanner treat a zero length as corruption rather
// than ambiguity.
const (
	frameHeader    = 8
	maxRecordBytes = 16 << 20
)

// Record is one journaled entry: an opaque component-defined type tag and
// its encoded data.
type Record struct {
	Type byte
	Data []byte
}

// Damage describes one recovery finding: where scanning stopped and why.
// Recovery truncates the log at the last valid record and reports the
// damage instead of replaying past it.
type Damage struct {
	Log     string // log name
	Segment string // segment file name
	Offset  int64  // byte offset of the first bad frame
	Kind    string // "torn-tail", "crc", "orphaned-segment", "checkpoint"
	Detail  string
}

func (d Damage) String() string {
	return fmt.Sprintf("%s: %s at %s+%d: %s", d.Log, d.Kind, d.Segment, d.Offset, d.Detail)
}

// appendFrame appends one framed record to buf.
func appendFrame(buf []byte, typ byte, data []byte) []byte {
	payload := make([]byte, 0, 1+len(data))
	payload = append(payload, typ)
	payload = append(payload, data...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// segRe parses segment file names: <log>.<6-digit index>.wal.
var segRe = regexp.MustCompile(`^(.+)\.(\d{6})\.wal$`)

func segName(log string, idx int) string { return fmt.Sprintf("%s.%06d.wal", log, idx) }

// segments lists a log's segment files in ascending index order.
func segments(dir, log string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []int
	for _, e := range ents {
		m := segRe.FindStringSubmatch(e.Name())
		if m == nil || m[1] != log {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		idxs = append(idxs, n)
	}
	sort.Ints(idxs)
	return idxs, nil
}

// scanSegment reads one segment's records, stopping at the first invalid
// frame.  It returns the records read, the byte offset of the last valid
// frame's end, and a non-nil Damage when the segment is cut short.  It
// never fails on corrupt content — only on I/O errors.
func scanSegment(log, path string) (recs []Record, valid int64, dmg *Damage, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, nil, err
	}
	base := filepath.Base(path)
	off := int64(0)
	for int64(len(raw))-off > 0 {
		rest := raw[off:]
		if len(rest) < frameHeader {
			return recs, off, &Damage{Log: log, Segment: base, Offset: off, Kind: "torn-tail",
				Detail: fmt.Sprintf("%d trailing byte(s), less than a frame header", len(rest))}, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxRecordBytes {
			return recs, off, &Damage{Log: log, Segment: base, Offset: off, Kind: "crc",
				Detail: fmt.Sprintf("implausible record length %d", n)}, nil
		}
		if int64(len(rest)) < frameHeader+int64(n) {
			return recs, off, &Damage{Log: log, Segment: base, Offset: off, Kind: "torn-tail",
				Detail: fmt.Sprintf("record of %d byte(s) cut off after %d", n, len(rest)-frameHeader)}, nil
		}
		payload := rest[frameHeader : frameHeader+int64(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, &Damage{Log: log, Segment: base, Offset: off, Kind: "crc",
				Detail: "checksum mismatch"}, nil
		}
		recs = append(recs, Record{Type: payload[0], Data: append([]byte(nil), payload[1:]...)})
		off += frameHeader + int64(n)
	}
	return recs, off, nil, nil
}

// fsyncDir flushes directory metadata so renames and unlinks within it
// survive power loss.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileAtomic writes path via a temp file: write, fsync, rename,
// fsync the directory.  Readers see either the old content or the new,
// never a torn mix, even across power loss.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return fsyncDir(filepath.Dir(path))
}
