package durable

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// LogInfo is a read-only summary of one log in a state directory.
type LogInfo struct {
	Name          string
	Segments      int
	WALBytes      int64
	Records       int // valid records after the checkpoint
	Damage        []Damage
	HasCheckpoint bool
	CheckpointAt  time.Time
	CheckpointLen int64 // snapshot bytes
}

// Inspect summarizes every log in a state directory without modifying it
// (no truncation, no repair, no marker consumption) — safe against a
// directory another process is writing.  clean reports whether the
// clean-shutdown marker is present.
func Inspect(dir string) (infos []LogInfo, clean bool, err error) {
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); err == nil {
		clean = true
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	names := map[string]bool{}
	for _, e := range ents {
		if m := segRe.FindStringSubmatch(e.Name()); m != nil {
			names[m[1]] = true
		} else if n, ok := cutCkpt(e.Name()); ok {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		rec, info, err := readLogDir(dir, name)
		if err != nil {
			return nil, clean, err
		}
		info.Records = len(rec.Records)
		info.Damage = rec.Damage
		infos = append(infos, info)
	}
	return infos, clean, nil
}

func cutCkpt(fname string) (string, bool) {
	const suf = ".ckpt"
	if len(fname) > len(suf) && fname[len(fname)-len(suf):] == suf {
		return fname[:len(fname)-len(suf)], true
	}
	return "", false
}

// ReadLog decodes one log read-only: the checkpoint snapshot plus the
// valid records after it, stopping at (and reporting) any damage, exactly
// as recovery would — but without repairing the files.
func ReadLog(dir, name string) (*Recovery, error) {
	rec, _, err := readLogDir(dir, name)
	return rec, err
}

func readLogDir(dir, name string) (*Recovery, LogInfo, error) {
	info := LogInfo{Name: name}
	rec := &Recovery{}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); err == nil {
		rec.Clean = true
	}
	ckptPath := filepath.Join(dir, name+".ckpt")
	snapshot, minSeg, dmg, err := readCheckpoint(name, ckptPath)
	if err != nil {
		return nil, info, err
	}
	if dmg != nil {
		rec.Damage = append(rec.Damage, *dmg)
	} else if fi, err := os.Stat(ckptPath); err == nil {
		rec.Snapshot = snapshot
		info.HasCheckpoint = true
		info.CheckpointAt = fi.ModTime()
		info.CheckpointLen = int64(len(snapshot))
	}
	idxs, err := segments(dir, name)
	if err != nil {
		return nil, info, err
	}
	cut := false
	for _, idx := range idxs {
		if idx < minSeg {
			continue // stale pre-checkpoint segment
		}
		path := filepath.Join(dir, segName(name, idx))
		if cut {
			rec.Damage = append(rec.Damage, Damage{Log: name, Segment: segName(name, idx),
				Kind: "orphaned-segment", Detail: "follows a damaged segment"})
			continue
		}
		recs, valid, dmg, err := scanSegment(name, path)
		if err != nil {
			return nil, info, err
		}
		rec.Records = append(rec.Records, recs...)
		info.Segments++
		info.WALBytes += valid
		if dmg != nil {
			rec.Damage = append(rec.Damage, *dmg)
			cut = true
		}
	}
	return rec, info, nil
}
