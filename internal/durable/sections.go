// Sectioned snapshots: a self-validating container for checkpoint
// payloads, modeled on history-file importers that refuse to trust a
// byte they cannot verify.  A snapshot is magic + version framing
// followed by named sections, each carrying its own length and CRC, so
// an importer can tell exactly which section rotted and report granular
// rejection counts — while the import itself stays all-or-nothing: one
// bad section and nothing is applied.
//
// Layout (little-endian, matching the WAL framing):
//
//	[8]byte  magic "CMTKSNP1"
//	u16      version
//	u16      section count
//	then per section:
//	  u16    name length, name bytes
//	  u32    payload length
//	  u32    CRC32-IEEE of payload
//	  payload
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// SnapshotMagic opens every sectioned snapshot.
const SnapshotMagic = "CMTKSNP1"

// SnapshotVersion is the current container version; importers accept
// anything up to the version they were built with.
const SnapshotVersion = 1

// Section is one named, independently verified payload.
type Section struct {
	Name string
	Data []byte
}

// SectionStatus is one section's import verdict.
type SectionStatus struct {
	Name  string // "" when the frame was too damaged to recover a name
	Bytes int
	Err   string // "" = verified
}

// ImportReport is the granular outcome of decoding one snapshot: every
// section's verdict, plus the container-level failure (if any).  A
// snapshot imports all-or-nothing, but the report still names each
// rejected section so operators can see what rotted.
type ImportReport struct {
	Version  uint16
	Sections []SectionStatus
	Rejected int    // sections that failed verification
	Reason   string // container-level failure: "magic", "version", "truncated"
}

// Err returns a summarizing error when the snapshot failed to verify.
func (r ImportReport) Err() error {
	if r.Reason != "" {
		return fmt.Errorf("durable: snapshot rejected: %s", r.Reason)
	}
	if r.Rejected > 0 {
		return fmt.Errorf("durable: snapshot rejected: %d of %d sections failed verification", r.Rejected, len(r.Sections))
	}
	return nil
}

// EncodeSections renders sections into a verifiable snapshot.
func EncodeSections(sections []Section) []byte {
	size := len(SnapshotMagic) + 4
	for _, s := range sections {
		size += 2 + len(s.Name) + 8 + len(s.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, SnapshotMagic...)
	out = binary.LittleEndian.AppendUint16(out, SnapshotVersion)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(sections)))
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Name)))
		out = append(out, s.Name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Data)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(s.Data))
		out = append(out, s.Data...)
	}
	return out
}

// DecodeSections verifies a snapshot and returns its sections by name.
// The map is non-nil only when every section verified (all-or-nothing);
// the report is always populated, naming each section's verdict so a
// caller can count granular rejections.  Damage to one section's frame
// can hide the sections behind it — those are reported as truncated.
func DecodeSections(raw []byte) (map[string][]byte, ImportReport) {
	rep := ImportReport{}
	if len(raw) < len(SnapshotMagic)+4 {
		rep.Reason = "truncated"
		return nil, rep
	}
	if string(raw[:len(SnapshotMagic)]) != SnapshotMagic {
		rep.Reason = "magic"
		return nil, rep
	}
	raw = raw[len(SnapshotMagic):]
	rep.Version = binary.LittleEndian.Uint16(raw[0:2])
	count := int(binary.LittleEndian.Uint16(raw[2:4]))
	raw = raw[4:]
	if rep.Version == 0 || rep.Version > SnapshotVersion {
		rep.Reason = "version"
		return nil, rep
	}
	out := map[string][]byte{}
	for i := 0; i < count; i++ {
		if len(raw) < 2 {
			rep.Sections = append(rep.Sections, SectionStatus{Err: "truncated"})
			rep.Rejected += count - i
			break
		}
		nameLen := int(binary.LittleEndian.Uint16(raw[0:2]))
		raw = raw[2:]
		if len(raw) < nameLen+8 {
			rep.Sections = append(rep.Sections, SectionStatus{Err: "truncated"})
			rep.Rejected += count - i
			break
		}
		name := string(raw[:nameLen])
		dataLen := int(binary.LittleEndian.Uint32(raw[nameLen : nameLen+4]))
		sum := binary.LittleEndian.Uint32(raw[nameLen+4 : nameLen+8])
		raw = raw[nameLen+8:]
		if len(raw) < dataLen {
			rep.Sections = append(rep.Sections, SectionStatus{Name: name, Err: "truncated"})
			rep.Rejected += count - i
			break
		}
		payload := raw[:dataLen]
		raw = raw[dataLen:]
		st := SectionStatus{Name: name, Bytes: dataLen}
		if crc32.ChecksumIEEE(payload) != sum {
			st.Err = "crc"
			rep.Rejected++
		} else if _, dup := out[name]; dup {
			st.Err = "duplicate"
			rep.Rejected++
		} else {
			out[name] = payload
		}
		rep.Sections = append(rep.Sections, st)
	}
	if rep.Rejected > 0 {
		return nil, rep
	}
	return out, rep
}
