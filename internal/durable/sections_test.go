package durable

import (
	"bytes"
	"testing"
)

func sampleSections() []Section {
	return []Section{
		{Name: "meta", Data: []byte(`{"next_seq":42}`)},
		{Name: "base", Data: bytes.Repeat([]byte("kv"), 100)},
		{Name: "monitor", Data: []byte(`{"entries":[]}`)},
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	raw := EncodeSections(sampleSections())
	got, rep := DecodeSections(raw)
	if err := rep.Err(); err != nil {
		t.Fatalf("clean snapshot rejected: %v (%+v)", err, rep)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d sections", len(got))
	}
	for _, s := range sampleSections() {
		if !bytes.Equal(got[s.Name], s.Data) {
			t.Fatalf("section %s diverged", s.Name)
		}
	}
	if rep.Version != SnapshotVersion || rep.Rejected != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestSectionsBitFlipGranularRejection flipping any payload byte must
// reject the import entirely (all-or-nothing) while the report names
// exactly the damaged section.
func TestSectionsBitFlipGranularRejection(t *testing.T) {
	clean := EncodeSections(sampleSections())
	// Locate the "base" payload and flip one bit in it.
	idx := bytes.Index(clean, bytes.Repeat([]byte("kv"), 100))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	raw := append([]byte(nil), clean...)
	raw[idx+50] ^= 0x40

	got, rep := DecodeSections(raw)
	if got != nil || rep.Err() == nil {
		t.Fatalf("corrupted snapshot imported: %+v", rep)
	}
	if rep.Rejected != 1 {
		t.Fatalf("rejected %d sections, want exactly 1", rep.Rejected)
	}
	var bad []string
	for _, s := range rep.Sections {
		if s.Err != "" {
			bad = append(bad, s.Name+":"+s.Err)
		}
	}
	if len(bad) != 1 || bad[0] != "base:crc" {
		t.Fatalf("rejections: %v", bad)
	}
}

func TestSectionsContainerDamage(t *testing.T) {
	clean := EncodeSections(sampleSections())

	// Wrong magic.
	raw := append([]byte(nil), clean...)
	raw[0] ^= 0xFF
	if got, rep := DecodeSections(raw); got != nil || rep.Reason != "magic" {
		t.Fatalf("magic damage: %+v", rep)
	}

	// Future version.
	raw = append([]byte(nil), clean...)
	raw[len(SnapshotMagic)] = 0xEE
	if got, rep := DecodeSections(raw); got != nil || rep.Reason != "version" {
		t.Fatalf("version damage: %+v", rep)
	}

	// Truncated mid-section: remaining sections counted as rejected.
	if got, rep := DecodeSections(clean[:len(clean)-30]); got != nil || rep.Rejected == 0 {
		t.Fatalf("truncation accepted: %+v", rep)
	}

	// Too short for any header.
	if got, rep := DecodeSections([]byte("CM")); got != nil || rep.Reason != "truncated" {
		t.Fatalf("short snapshot: %+v", rep)
	}

	// Empty section list round-trips.
	if got, rep := DecodeSections(EncodeSections(nil)); got == nil || rep.Err() != nil {
		t.Fatalf("empty snapshot rejected: %+v", rep)
	}
}
