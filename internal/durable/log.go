package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCrashed is returned by mutating Log methods after the owning Store's
// Crash hook fired (crash simulation in tests and the harness).
var ErrCrashed = errors.New("durable: store crashed")

// ckptType is the reserved frame type of a checkpoint file's single
// record; component record types must stay below it.
const ckptType byte = 0xFF

// Log is one named write-ahead log plus its checkpoint file, owned by a
// Store.  Appends go to the active segment under the store's fsync
// policy; Checkpoint atomically replaces the snapshot and truncates the
// segments.  Log is safe for concurrent use.
type Log struct {
	name    string
	dir     string
	opts    Options
	met     logMetrics
	crashed *atomic.Bool // shared with the owning Store

	mu        sync.Mutex
	f         *os.File // active segment
	seg       int      // active segment index
	segSize   int64
	totalSize int64 // across live segments
	nsegs     int
	lastSync  time.Time
	closed    bool
}

// Recovery is what a Log found on open: the last checkpoint snapshot (nil
// when none was ever taken), the valid records appended after it in
// order, any damage that cut the scan short, and whether the store was
// last closed cleanly (in which case the records are a flushed tail, not
// evidence of a crash).
type Recovery struct {
	Snapshot []byte
	Records  []Record
	Damage   []Damage
	Clean    bool
}

// readCheckpoint parses a checkpoint file: one frame of ckptType whose
// data is [8-byte first post-checkpoint segment index][snapshot].
func readCheckpoint(log, path string) (snapshot []byte, minSeg int, dmg *Damage, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil, nil
		}
		return nil, 0, nil, err
	}
	base := filepath.Base(path)
	bad := func(detail string) (*Damage, error) {
		return &Damage{Log: log, Segment: base, Kind: "checkpoint", Detail: detail}, nil
	}
	if len(raw) < frameHeader+9 {
		dmg, err = bad(fmt.Sprintf("file of %d byte(s) shorter than a checkpoint frame", len(raw)))
		return nil, 0, dmg, err
	}
	n := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	if int64(n) != int64(len(raw)-frameHeader) {
		dmg, err = bad("frame length does not match file size")
		return nil, 0, dmg, err
	}
	payload := raw[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		dmg, err = bad("checksum mismatch")
		return nil, 0, dmg, err
	}
	if payload[0] != ckptType {
		dmg, err = bad(fmt.Sprintf("unexpected record type 0x%02x", payload[0]))
		return nil, 0, dmg, err
	}
	minSeg = int(binary.LittleEndian.Uint64(payload[1:9]))
	return append([]byte(nil), payload[9:]...), minSeg, nil, nil
}

func (l *Log) ckptPath() string { return filepath.Join(l.dir, l.name+".ckpt") }

// openLog recovers a log's state from dir and opens it for appending.
// Damage is repaired in place: a damaged segment is truncated at its last
// valid record and everything after the cut — including whole later
// segments — is removed, so the on-disk log always equals what recovery
// replayed.
func openLog(dir, name string, opts Options, met walMetrics, clean bool, crashed *atomic.Bool) (*Log, *Recovery, error) {
	l := &Log{
		name: name, dir: dir, opts: opts,
		met: met.forLog(name), crashed: crashed,
	}
	rec := &Recovery{Clean: clean}

	snapshot, minSeg, dmg, err := readCheckpoint(name, l.ckptPath())
	if err != nil {
		return nil, nil, fmt.Errorf("durable: reading checkpoint of %s: %w", name, err)
	}
	if dmg != nil {
		// The checkpoint is atomic (temp + rename), so damage here is bit
		// rot, not a torn write.  The snapshot is lost; the log segments
		// are still replayable on their own.
		rec.Damage = append(rec.Damage, *dmg)
		l.met.damage(dmg.Kind).Inc()
	} else {
		rec.Snapshot = snapshot
	}
	if fi, err := os.Stat(l.ckptPath()); err == nil {
		l.met.ckpt.Set(fi.ModTime().Unix())
	}

	idxs, err := segments(dir, name)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: listing segments of %s: %w", name, err)
	}
	cut := false // a damaged segment was found; later segments are orphans
	for _, idx := range idxs {
		path := filepath.Join(dir, segName(name, idx))
		if idx < minSeg {
			// Snapshotted by the checkpoint but not yet deleted (crash
			// between the checkpoint rename and the truncation): routine
			// cleanup, not damage.
			os.Remove(path)
			continue
		}
		if cut {
			d := Damage{Log: name, Segment: segName(name, idx), Kind: "orphaned-segment",
				Detail: "follows a damaged segment; its records are past the failure and cannot be replayed"}
			rec.Damage = append(rec.Damage, d)
			l.met.damage(d.Kind).Inc()
			os.Remove(path)
			continue
		}
		recs, valid, dmg, err := scanSegment(name, path)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: scanning %s: %w", path, err)
		}
		rec.Records = append(rec.Records, recs...)
		if dmg != nil {
			rec.Damage = append(rec.Damage, *dmg)
			l.met.damage(dmg.Kind).Inc()
			if err := os.Truncate(path, valid); err != nil {
				return nil, nil, fmt.Errorf("durable: truncating %s: %w", path, err)
			}
			cut = true
		}
		l.seg = idx
		l.segSize = valid
		l.totalSize += valid
		l.nsegs++
	}
	if l.nsegs == 0 {
		l.seg = minSeg
		if l.seg == 0 {
			l.seg = 1
		}
		path := filepath.Join(dir, segName(name, l.seg))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: creating segment: %w", err)
		}
		l.f = f
		l.nsegs = 1
	} else {
		path := filepath.Join(dir, segName(name, l.seg))
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: opening segment: %w", err)
		}
		l.f = f
	}
	l.met.replayed.Add(uint64(len(rec.Records)))
	l.met.size.Set(l.totalSize)
	l.met.segments.Set(int64(l.nsegs))
	return l, rec, nil
}

// Name returns the log's name within its store.
func (l *Log) Name() string { return l.name }

// Append journals one record under the store's fsync policy.
func (l *Log) Append(typ byte, data []byte) error {
	if typ >= ckptType {
		return fmt.Errorf("durable: record type 0x%02x is reserved", typ)
	}
	if l.crashed.Load() {
		return ErrCrashed
	}
	frame := appendFrame(nil, typ, data)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: log %s is closed", l.name)
	}
	if l.segSize > 0 && l.segSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append to %s: %w", l.name, err)
	}
	l.segSize += int64(len(frame))
	l.totalSize += int64(len(frame))
	l.met.appends.Inc()
	l.met.bytes.Add(uint64(len(frame)))
	l.met.size.Set(l.totalSize)
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.  The
// sealed segment is flushed (unless the policy is SyncNever) so its tail
// cannot tear once it stops being written.
func (l *Log) rotateLocked() error {
	if l.opts.Sync != SyncNever {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seg++
	path := filepath.Join(l.dir, segName(l.name, l.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: rotating %s: %w", l.name, err)
	}
	l.f = f
	l.segSize = 0
	l.nsegs++
	l.met.segments.Set(int64(l.nsegs))
	return nil
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync %s: %w", l.name, err)
	}
	l.met.fsyncs.Inc()
	l.lastSync = time.Now()
	return nil
}

// Sync flushes the active segment regardless of policy.
func (l *Log) Sync() error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// WALSize reports the current byte size of the live segments — the replay
// cost of a crash right now.  Components use it to trigger checkpoints.
func (l *Log) WALSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalSize
}

// Checkpoint atomically replaces the log's snapshot with the given full
// state and truncates the segments: recovery then starts from the
// snapshot and replays only records appended after this call.  The
// snapshot file is written temp-fsync-rename-dirsync, so a crash at any
// point leaves either the old checkpoint+log or the new.
func (l *Log) Checkpoint(snapshot []byte) error {
	if l.crashed.Load() {
		return ErrCrashed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: log %s is closed", l.name)
	}
	// Seal the current segment and move to a fresh one; the checkpoint
	// names it as the first post-checkpoint segment, so a crash between
	// the rename and the deletes below just leaves stale segments that
	// recovery discards by index.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	data := make([]byte, 9, 9+len(snapshot))
	data[0] = ckptType
	binary.LittleEndian.PutUint64(data[1:9], uint64(l.seg))
	data = append(data, snapshot...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(data))
	if err := writeFileAtomic(l.ckptPath(), append(hdr[:], data...)); err != nil {
		return fmt.Errorf("durable: writing checkpoint of %s: %w", l.name, err)
	}
	l.met.fsyncs.Add(2) // temp file + directory
	for idx := l.seg - 1; idx >= 1; idx-- {
		path := filepath.Join(l.dir, segName(l.name, idx))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return fmt.Errorf("durable: truncating %s: %w", l.name, err)
		}
		l.nsegs--
	}
	l.totalSize = l.segSize
	l.met.checkpoints.Inc()
	l.met.ckpt.Set(time.Now().Unix())
	l.met.size.Set(l.totalSize)
	l.met.segments.Set(int64(l.nsegs))
	return nil
}

// close flushes (best effort on crash) and closes the active segment.
func (l *Log) close(flush bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if flush {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
