package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cleanMarkerFile flags a clean shutdown.  It is written (and fsynced) as
// the last act of Store.Close and consumed by the next Open, so its
// presence proves every log was checkpointed and flushed — a warm restart
// recovers from checkpoints alone, with nothing substantial to replay —
// while its absence means the process died and the log tails are the
// authoritative record.
const cleanMarkerFile = "CLEAN"

var logNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Store is one process's durable state directory: a family of named Logs
// plus the clean-shutdown marker.  Components open their Log once, apply
// its Recovery, then journal mutations; Close checkpoints (through the
// registered hooks), flushes, and marks the shutdown clean.
type Store struct {
	dir  string
	opts Options
	met  walMetrics

	crashed atomic.Bool

	mu       sync.Mutex
	logs     map[string]*Log
	wasClean bool
	closed   bool
	closers  []func() error
}

// Open opens (creating if needed) a state directory.  The clean-shutdown
// marker is consumed: it is read, then removed, so only the matching
// Close restores it.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts.withDefaults(),
		met:  newWALMetrics(opts.Metrics),
		logs: map[string]*Log{},
	}
	marker := filepath.Join(dir, cleanMarkerFile)
	if _, err := os.Stat(marker); err == nil {
		s.wasClean = true
		if err := os.Remove(marker); err != nil {
			return nil, fmt.Errorf("durable: consuming clean marker: %w", err)
		}
		if err := fsyncDir(dir); err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
	}
	return s, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// WasClean reports whether the previous shutdown was clean (the marker
// was present at Open).
func (s *Store) WasClean() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wasClean
}

// Log opens (once; later calls return the same Log with a nil Recovery)
// a named log, recovering its checkpoint and records.
func (s *Store) Log(name string) (*Log, *Recovery, error) {
	if !logNameRe.MatchString(name) || name == cleanMarkerFile {
		return nil, nil, fmt.Errorf("durable: bad log name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, fmt.Errorf("durable: store is closed")
	}
	if l, ok := s.logs[name]; ok {
		return l, nil, nil
	}
	l, rec, err := openLog(s.dir, name, s.opts, s.met, s.wasClean, &s.crashed)
	if err != nil {
		return nil, nil, err
	}
	s.logs[name] = l
	return l, rec, nil
}

// OnClose registers a final-checkpoint hook to run during a clean Close,
// before the marker is written (components snapshot their state here so
// warm restarts skip log replay).
func (s *Store) OnClose(fn func() error) {
	s.mu.Lock()
	s.closers = append(s.closers, fn)
	s.mu.Unlock()
}

// Crash simulates kill -9 for tests and the harness: every subsequent
// Append/Sync/Checkpoint fails with ErrCrashed and Close skips the hooks,
// the flush, and the clean marker — whatever reached the OS is exactly
// what the next Open recovers.
func (s *Store) Crash() { s.crashed.Store(true) }

// Crashed reports whether Crash was called.
func (s *Store) Crashed() bool { return s.crashed.Load() }

// Close shuts the store down.  On the clean path it runs the registered
// final-checkpoint hooks, flushes and closes every log, and writes the
// clean-shutdown marker; after Crash it only releases file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	closers := s.closers
	logs := make([]*Log, 0, len(s.logs))
	names := make([]string, 0, len(s.logs))
	for name := range s.logs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		logs = append(logs, s.logs[name])
	}
	s.mu.Unlock()

	if s.crashed.Load() {
		for _, l := range logs {
			l.close(false)
		}
		return nil
	}
	var err error
	for _, fn := range closers {
		if e := fn(); err == nil {
			err = e
		}
	}
	for _, l := range logs {
		if e := l.close(true); err == nil {
			err = e
		}
	}
	marker := filepath.Join(s.dir, cleanMarkerFile)
	stamp := []byte(fmt.Sprintf("clean shutdown at %s\n", time.Now().UTC().Format(time.RFC3339)))
	if e := writeFileAtomic(marker, stamp); err == nil {
		err = e
	}
	return err
}
