package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	lg, rec := mustLog(t, s, "ck")
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %v / %v", rec.Snapshot, rec.Records)
	}
	for i := 0; i < 5; i++ {
		if err := lg.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Checkpoint([]byte("state after five")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(2, []byte("post-ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	_, rec2 := mustLog(t, s2, "ck")
	if string(rec2.Snapshot) != "state after five" {
		t.Fatalf("snapshot = %q", rec2.Snapshot)
	}
	if len(rec2.Records) != 1 || rec2.Records[0].Type != 2 || string(rec2.Records[0].Data) != "post-ckpt" {
		t.Fatalf("records = %v, want only the post-checkpoint one", rec2.Records)
	}
	if !rec2.Clean {
		t.Fatal("clean shutdown not detected")
	}
}

func TestCleanMarkerConsumedAndCrashSkipsIt(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	lg, _ := mustLog(t, s, "m")
	if err := lg.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); err != nil {
		t.Fatalf("clean marker missing after Close: %v", err)
	}

	// Reopen: the marker is consumed, so a crash now leaves no stale
	// marker behind.
	s2 := openStore(t, dir, Options{})
	if !s2.WasClean() {
		t.Fatal("WasClean = false after a clean shutdown")
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); !os.IsNotExist(err) {
		t.Fatal("marker not consumed at open")
	}
	lg2, rec := mustLog(t, s2, "m")
	if !rec.Clean || len(rec.Records) != 1 {
		t.Fatalf("recovery = clean:%v records:%d", rec.Clean, len(rec.Records))
	}
	if err := lg2.Append(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	s2.Crash()
	if err := lg2.Append(1, []byte("lost")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash = %v, want ErrCrashed", err)
	}
	if err := lg2.Checkpoint(nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("checkpoint after crash = %v, want ErrCrashed", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); !os.IsNotExist(err) {
		t.Fatal("crashed Close wrote the clean marker")
	}

	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	if s3.WasClean() {
		t.Fatal("WasClean = true after a crash")
	}
	_, rec3 := mustLog(t, s3, "m")
	if rec3.Clean || len(rec3.Records) != 2 {
		t.Fatalf("post-crash recovery = clean:%v records:%d, want dirty with both appends", rec3.Clean, len(rec3.Records))
	}
}

func TestOnCloseHooksCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	lg, _ := mustLog(t, s, "h")
	for i := 0; i < 3; i++ {
		if err := lg.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.OnClose(func() error { return lg.Checkpoint([]byte("final")) })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	_, rec := mustLog(t, s2, "h")
	if string(rec.Snapshot) != "final" || len(rec.Records) != 0 {
		t.Fatalf("warm restart recovered snapshot %q + %d records, want checkpoint only", rec.Snapshot, len(rec.Records))
	}
}

func TestLogOpenIsOnceAndNamesValidated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	l1, rec1 := mustLog(t, s, "once")
	if rec1 == nil {
		t.Fatal("first open returned nil recovery")
	}
	l2, rec2, err := s.Log("once")
	if err != nil || l2 != l1 || rec2 != nil {
		t.Fatalf("second open = %v/%v/%v, want same log, nil recovery", l2, rec2, err)
	}
	for _, bad := range []string{"", "a/b", "..", ".hidden", "CLEAN"} {
		if _, _, err := s.Log(bad); err == nil {
			t.Errorf("log name %q accepted", bad)
		}
	}
	if err := l1.Append(ckptType, nil); err == nil {
		t.Error("reserved record type accepted")
	}
}

func TestWALSizeAndCheckpointResetsIt(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	defer s.Close()
	lg, _ := mustLog(t, s, "sz")
	if lg.WALSize() != 0 {
		t.Fatalf("fresh WALSize = %d", lg.WALSize())
	}
	payload := bytes.Repeat([]byte("d"), 100)
	for i := 0; i < 10; i++ {
		if err := lg.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	grown := lg.WALSize()
	if grown < 1000 {
		t.Fatalf("WALSize = %d after 10x100-byte appends", grown)
	}
	if err := lg.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if lg.WALSize() != 0 {
		t.Fatalf("WALSize = %d after checkpoint, want 0", lg.WALSize())
	}
}

func TestInspectIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{})
	lg, _ := mustLog(t, s, "ins")
	for i := 0; i < 4; i++ {
		if err := lg.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Checkpoint([]byte("snapshot!")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail, then inspect: the damage is reported but NOT repaired.
	seg := filepath.Join(dir, "ins.000002.wal")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	before, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	infos, clean, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !clean {
		t.Error("clean marker not reported")
	}
	if len(infos) != 1 {
		t.Fatalf("infos = %v", infos)
	}
	in := infos[0]
	if in.Name != "ins" || !in.HasCheckpoint || in.CheckpointLen != int64(len("snapshot!")) || in.Records != 1 {
		t.Fatalf("info = %+v", in)
	}
	if len(in.Damage) != 1 || in.Damage[0].Kind != "torn-tail" {
		t.Fatalf("damage = %v", in.Damage)
	}
	rec, err := ReadLog(dir, "ins")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "snapshot!" || len(rec.Records) != 1 || string(rec.Records[0].Data) != "tail" {
		t.Fatalf("ReadLog = %q / %v", rec.Snapshot, rec.Records)
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("Inspect/ReadLog modified the segment")
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarkerFile)); err != nil {
		t.Fatal("Inspect consumed the clean marker")
	}
}
