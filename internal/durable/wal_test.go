package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"cmtk/internal/obs"
)

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustLog(t *testing.T, s *Store, name string) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := s.Log(name)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// TestRecordRoundTripQuick is the WAL codec property test: any sequence
// of (type, data) records appended and recovered comes back identical, in
// order.
func TestRecordRoundTripQuick(t *testing.T) {
	reg := obs.NewRegistry()
	root := t.TempDir()
	check := func(types []byte, datas [][]byte) bool {
		n := len(types)
		if len(datas) < n {
			n = len(datas)
		}
		dir, err := os.MkdirTemp(root, "q")
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{Metrics: reg, SegmentBytes: 256}) // force rotation too
		if err != nil {
			t.Fatal(err)
		}
		lg, _, err := s.Log("prop")
		if err != nil {
			t.Fatal(err)
		}
		want := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			typ := types[i] % ckptType // component types stay below the reserved tag
			if err := lg.Append(typ, datas[i]); err != nil {
				t.Fatal(err)
			}
			want = append(want, Record{Type: typ, Data: datas[i]})
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		_, rec, err := s2.Log("prop")
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Clean || len(rec.Damage) != 0 || len(rec.Records) != len(want) {
			return false
		}
		for i, r := range rec.Records {
			if r.Type != want[i].Type || !bytes.Equal(r.Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// corruptSetup appends records and returns the store dir and the path of
// the single live segment.
func corruptSetup(t *testing.T, recs []Record) (dir, seg string) {
	t.Helper()
	dir = t.TempDir()
	s := openStore(t, dir, Options{})
	lg, _ := mustLog(t, s, "j")
	for _, r := range recs {
		if err := lg.Append(r.Type, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, "j.000001.wal")
}

func reopen(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s := openStore(t, dir, Options{})
	_, rec := mustLog(t, s, "j")
	return s, rec
}

func threeRecords() []Record {
	return []Record{
		{Type: 1, Data: []byte("first record")},
		{Type: 2, Data: []byte("second record")},
		{Type: 3, Data: []byte("third record")},
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir, seg := corruptSetup(t, threeRecords())
	// A torn write: half a frame header dangling at the tail.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, rec := reopen(t, dir)
	defer s.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("records = %d, want the 3 intact ones", len(rec.Records))
	}
	if len(rec.Damage) != 1 || rec.Damage[0].Kind != "torn-tail" {
		t.Fatalf("damage = %v, want one torn-tail", rec.Damage)
	}
	// The repair truncated the tail: appending and re-recovering works.
	lg, _ := mustLog(t, s, "j")
	if err := lg.Append(4, []byte("after repair")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec2 := reopen(t, dir)
	defer s2.Close()
	if len(rec2.Records) != 4 || len(rec2.Damage) != 0 {
		t.Fatalf("after repair: %d records, damage %v", len(rec2.Records), rec2.Damage)
	}
}

func TestTruncatedSegment(t *testing.T) {
	dir, seg := corruptSetup(t, threeRecords())
	// Cut the file mid-record (inside the second record's payload).
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	first := int64(frameHeader + 1 + len("first record"))
	if err := os.Truncate(seg, first+(fi.Size()-first)/2); err != nil {
		t.Fatal(err)
	}
	s, rec := reopen(t, dir)
	defer s.Close()
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "first record" {
		t.Fatalf("records = %v, want only the first", rec.Records)
	}
	if len(rec.Damage) != 1 || rec.Damage[0].Kind != "torn-tail" {
		t.Fatalf("damage = %v, want one torn-tail", rec.Damage)
	}
}

// TestBitFlipStopsReplay proves recovery never replays a record past a
// CRC failure: flipping one bit in the second record cuts the log after
// the first, and the intact third record is NOT recovered.
func TestBitFlipStopsReplay(t *testing.T) {
	dir, seg := corruptSetup(t, threeRecords())
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	second := frameHeader + 1 + len("first record") + frameHeader + 3
	raw[second] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec := reopen(t, dir)
	defer s.Close()
	if len(rec.Records) != 1 || rec.Records[0].Type != 1 {
		t.Fatalf("records = %v, want replay to stop before the flipped record", rec.Records)
	}
	if len(rec.Damage) != 1 || rec.Damage[0].Kind != "crc" {
		t.Fatalf("damage = %v, want one crc", rec.Damage)
	}
}

// TestOrphanedSegmentsDropped: damage in an early segment makes every
// later segment unreplayable (they are past the failure), and recovery
// reports each as damage instead of panicking or replaying them.
func TestOrphanedSegmentsDropped(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 32}) // rotate nearly every record
	lg, _ := mustLog(t, s, "j")
	for i := 0; i < 6; i++ {
		if err := lg.Append(1, bytes.Repeat([]byte{byte('a' + i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "j.*.wal"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHeader+2] ^= 0x01
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := reopen(t, dir)
	defer s2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("records = %d, want none (damage in the first segment)", len(rec.Records))
	}
	kinds := map[string]int{}
	for _, d := range rec.Damage {
		kinds[d.Kind]++
	}
	if kinds["crc"] != 1 || kinds["orphaned-segment"] != len(segs)-1 {
		t.Fatalf("damage kinds = %v, want 1 crc and %d orphaned-segment", kinds, len(segs)-1)
	}
	// The orphans are gone from disk: a later append + recovery is sane.
	left, _ := filepath.Glob(filepath.Join(dir, "j.*.wal"))
	if len(left) != 1 {
		t.Fatalf("segments after repair = %v, want only the truncated first", left)
	}
}

func TestSegmentRotationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{SegmentBytes: 64})
	lg, _ := mustLog(t, s, "rot")
	for i := 0; i < 20; i++ {
		if err := lg.Append(byte(i%7), bytes.Repeat([]byte{byte(i)}, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	_, rec := mustLog(t, s2, "rot")
	if len(rec.Records) != 20 || len(rec.Damage) != 0 {
		t.Fatalf("recovered %d records (damage %v), want 20", len(rec.Records), rec.Damage)
	}
	for i, r := range rec.Records {
		if r.Type != byte(i%7) || len(r.Data) != i {
			t.Fatalf("record %d = {%d, %d bytes}, want {%d, %d bytes}", i, r.Type, len(r.Data), i%7, i)
		}
	}
}

func TestSyncPolicyFsyncCounts(t *testing.T) {
	counts := map[SyncPolicy]uint64{}
	for _, pol := range []SyncPolicy{SyncAlways, SyncNever} {
		reg := obs.NewRegistry()
		dir := t.TempDir()
		s := openStore(t, dir, Options{Sync: pol, Metrics: reg})
		lg, _ := mustLog(t, s, "p")
		for i := 0; i < 50; i++ {
			if err := lg.Append(1, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		counts[pol] = reg.Counter("cmtk_wal_fsyncs_total", "", "log").With("p").Value()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if counts[SyncAlways] < 50 {
		t.Errorf("always policy fsynced %d times for 50 appends", counts[SyncAlways])
	}
	if counts[SyncNever] != 0 {
		t.Errorf("never policy fsynced %d times before close", counts[SyncNever])
	}
}
