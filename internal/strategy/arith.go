package strategy

import (
	"fmt"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/rule"
	"cmtk/internal/trace"
)

// Arithmetic maintains the derived constraint X = Y op Z (op "+" or "-")
// across three sites, the Section 7.1 decomposition: Y and Z are cached
// at X's site by copy propagation, and X is recomputed locally from the
// caches on every change —
//
//	ay: N(Y, b) →δ W(CY, b), (exists(CZ))? W(X, eval(CY op CZ))
//	az: N(Z, b) →δ W(CZ, b), (exists(CY))? W(X, eval(CY op CZ))
//
// Only the two copy constraints are distributed; the arithmetic is a
// purely local computation, so no global transactions are needed.
// Requires notify interfaces on Y and Z and a write interface on X.
func Arithmetic(x, y, z, op, xSite string, o Options) (Choice, error) {
	if op != "+" && op != "-" {
		return Choice{}, fmt.Errorf("strategy: arithmetic supports + and -, got %q", op)
	}
	cy, cz := "C"+y, "C"+z
	sum := rule.Binary{Op: op, L: rule.ItemRef{Base: cy}, R: rule.ItemRef{Base: cz}}
	bothSet := func(other string) rule.Expr {
		return rule.Call{Fn: "exists", Args: []rule.Expr{rule.ItemRef{Base: other}}}
	}
	mk := func(id, src, cache, other string) rule.Rule {
		return rule.Rule{
			ID:    id,
			LHS:   event.TN(event.ItemT(src), event.Param("b")),
			Delta: o.delta(),
			Steps: []rule.Step{
				{Eff: event.TW(event.ItemT(cache), event.Param("b"))},
				{Cond: bothSet(other), Eff: event.TW(event.ItemT(x), event.Wild()), ValExpr: sum},
			},
		}
	}
	k := o.bound()
	return Choice{
		Name:        "arithmetic",
		Description: fmt.Sprintf("maintain %s = %s %s %s via caches at %s", x, y, op, z, xSite),
		Rules: []rule.Rule{
			mk(fmt.Sprintf("ay:%s", y), y, cy, cz),
			mk(fmt.Sprintf("az:%s", z), z, cz, cy),
		},
		Private: map[string]string{cy: xSite, cz: xSite},
		Guarantees: []guarantee.Guarantee{
			DerivedLag{X: x, Y: y, Z: z, Op: op, Kappa: k},
		},
		Kappa: k,
	}, nil
}

// DerivedLag is the guarantee the arithmetic strategy realizes: whenever
// Y op Z held a stable value for at least Kappa, X equals it by the end
// of that stable period.  (During propagation X may briefly lag, exactly
// like a copy constraint's metric guarantees.)
type DerivedLag struct {
	X, Y, Z string
	Op      string
	Kappa   time.Duration
}

// Name implements guarantee.Guarantee.
func (g DerivedLag) Name() string {
	return fmt.Sprintf("derived(%s=%s%s%s,%s)", g.X, g.Y, g.Op, g.Z, g.Kappa)
}

// Formula implements guarantee.Guarantee.
func (g DerivedLag) Formula() string {
	return fmt.Sprintf("(%s %s %s = v)@@[t, t+%s] => (%s = v)@(t+%s)",
		g.Y, g.Op, g.Z, g.Kappa, g.X, g.Kappa)
}

// Check implements guarantee.Guarantee.
func (g DerivedLag) Check(tr *trace.Trace) guarantee.Report {
	rep := guarantee.Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	events := tr.Events()
	if len(events) == 0 {
		return rep
	}
	// Build the timeline of Y op Z.
	type sample struct {
		at time.Time
		v  data.Value
		ok bool
	}
	var sums []sample
	compute := func(in data.Interpretation) (data.Value, bool) {
		yv, zv := in.Get(data.Item(g.Y)), in.Get(data.Item(g.Z))
		if yv.IsNull() || zv.IsNull() {
			return data.NullValue, false
		}
		v, err := data.Arith(g.Op[0], yv, zv)
		if err != nil {
			return data.NullValue, false
		}
		return v, true
	}
	v0, ok0 := compute(tr.Initial())
	sums = append(sums, sample{at: events[0].Time, v: v0, ok: ok0})
	tr.WalkNewStates(func(e *event.Event, in data.Interpretation) bool {
		v, ok := compute(in)
		last := sums[len(sums)-1]
		if ok != last.ok || (ok && !v.Equal(last.v)) {
			sums = append(sums, sample{at: e.Time, v: v, ok: ok})
		}
		return true
	})
	end := tr.End()
	for i, s := range sums {
		if !s.ok {
			continue
		}
		stableUntil := end
		if i+1 < len(sums) {
			stableUntil = sums[i+1].at
		}
		if stableUntil.Sub(s.at) < g.Kappa {
			continue // never stable long enough to obligate
		}
		rep.Checked++
		at := s.at.Add(g.Kappa)
		x := tr.StateAt(at).Get(data.Item(g.X))
		if !x.Equal(s.v) {
			rep.Violate("%s %s %s settled to %s at %s but %s = %s after %s",
				g.Y, g.Op, g.Z, s.v, s.at.Format(time.TimeOnly), g.X, x, g.Kappa)
		}
	}
	return rep
}
