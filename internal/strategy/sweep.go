package strategy

import (
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/shell"
	"cmtk/internal/vclock"
)

// Sweeper implements the Section 6.2 referential-integrity strategy: at
// the end of each period, delete (or just report) every record of the
// referencing family that lacks a matching record in the target family.
// The weakened guarantee it realizes is
//
//	E(ref(i))@t ⇒ E(target(i))@[t, t+κ]     with κ = the sweep period
//
// The sweeper is a programmatic strategy component: rule-language rules
// fire per event and cannot iterate over a dynamic key set, so this
// piece, like the paper's own end-of-day job, runs as a periodic task on
// the CM-Shell hosting the referencing database.
type Sweeper struct {
	sh      *shell.Shell
	clock   vclock.Clock
	period  time.Duration
	ref     cmi.Interface // translator for the referencing database
	refBase string
	tgt     cmi.Interface // translator for the target database (read access suffices)
	tgtBase string
	// ReportOnly monitors instead of enforcing: orphans are counted but
	// not deleted (the fallback when the referencing database offers no
	// delete interface, Section 6.2).
	ReportOnly bool

	timer    vclock.Timer
	sweeps   int
	deleted  int
	orphaned int
}

// NewSweeper builds a sweeper.  sh must host the referencing database's
// site so deletions flow through it (and into its trace).
func NewSweeper(sh *shell.Shell, clock vclock.Clock, period time.Duration,
	ref cmi.Interface, refBase string, tgt cmi.Interface, tgtBase string) *Sweeper {
	return &Sweeper{
		sh: sh, clock: clock, period: period,
		ref: ref, refBase: refBase,
		tgt: tgt, tgtBase: tgtBase,
	}
}

// Guarantee returns the weakened referential guarantee the sweeper
// realizes; slack covers one sweep's processing time.
func (s *Sweeper) Guarantee(slack time.Duration) guarantee.Guarantee {
	return guarantee.ExistsWithin{Ref: s.refBase, Target: s.tgtBase, Kappa: s.period + slack}
}

// Start schedules the periodic sweep.
func (s *Sweeper) Start() {
	s.timer = vclock.Every(s.clock, s.period, s.sweep)
}

// Stop cancels the schedule.
func (s *Sweeper) Stop() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// SweepNow runs one sweep immediately (tests and cmctl use this).
func (s *Sweeper) SweepNow() { s.sweep() }

func (s *Sweeper) sweep() {
	s.sweeps++
	items, err := s.ref.List(s.refBase)
	if err != nil {
		return // failure already reported via the translator's hub
	}
	for _, it := range items {
		if len(it.Args) == 0 {
			continue
		}
		tgtItem := data.ItemName{Base: s.tgtBase, Args: it.Args}
		_, exists, err := s.tgt.Read(tgtItem)
		if err != nil {
			return
		}
		if exists {
			continue
		}
		s.orphaned++
		if s.ReportOnly {
			continue
		}
		// Deleting the orphan re-establishes the constraint; the write
		// request is recorded through the shell so the trace sees it.
		s.sh.RequestWrite(it, data.NullValue)
		s.deleted++
	}
}

// Stats reports sweeps run, orphans seen, and orphans deleted.
func (s *Sweeper) Stats() (sweeps, orphaned, deleted int) {
	return s.sweeps, s.orphaned, s.deleted
}
