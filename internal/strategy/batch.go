package strategy

import (
	"time"

	"cmtk/internal/cmi"
	"cmtk/internal/data"
	"cmtk/internal/guarantee"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/vclock"
)

// Batcher implements the Section 6.4 end-of-day strategy for the banking
// scenario: once a day, after the update window closes, copy every value
// of the source family to the destination family.  Combined with the
// source's promise that no updates happen overnight, it realizes the
// periodic guarantee that the copies are equal from shortly after the
// batch until the next morning.
type Batcher struct {
	sh      *shell.Shell
	clock   vclock.Clock
	at      time.Duration // time of day the batch starts (e.g. 17h)
	src     cmi.Interface
	srcBase string
	dstBase string
	timer   vclock.Timer
	runs    int
	copied  int
}

// NewBatcher builds a batcher that runs daily at offset `at` past
// midnight on the given clock.  sh must host (or route to) the
// destination site; copies flow through shell write requests.
func NewBatcher(sh *shell.Shell, clock vclock.Clock, at time.Duration,
	src cmi.Interface, srcBase, dstBase string) *Batcher {
	return &Batcher{sh: sh, clock: clock, at: at, src: src, srcBase: srcBase, dstBase: dstBase}
}

// Guarantee returns the periodic guarantee: src(k) = dst(k) for every
// observed key k, every day from windowStart to windowEnd (offsets past
// midnight), assuming the source is quiet outside business hours.
func (b *Batcher) Guarantee(windowStart, windowEnd time.Duration) guarantee.Guarantee {
	return PeriodicFamily{
		Src: b.srcBase, Dst: b.dstBase,
		From: windowStart, To: windowEnd,
	}
}

// PeriodicFamily checks src(k) = dst(k) for every key k observed in the
// trace, at all instants inside the daily window.
type PeriodicFamily struct {
	Src, Dst string
	From, To time.Duration
}

// Name implements guarantee.Guarantee.
func (g PeriodicFamily) Name() string {
	return "periodic(" + g.Src + "=" + g.Dst + ")"
}

// Formula implements guarantee.Guarantee.
func (g PeriodicFamily) Formula() string {
	return "(" + g.Src + "(k) = " + g.Dst + "(k))@t for all k, all t with tod(t) in [" +
		g.From.String() + ", " + g.To.String() + ")"
}

// Check implements guarantee.Guarantee: one Periodic invariant per key
// seen on either family, reports merged.
func (g PeriodicFamily) Check(tr *trace.Trace) guarantee.Report {
	keys := map[string][]data.Value{}
	for _, e := range tr.Events() {
		if e.Desc.Op.HasItem() && (e.Desc.Item.Base == g.Src || e.Desc.Item.Base == g.Dst) {
			keys[data.ItemName{Base: "", Args: e.Desc.Item.Args}.String()] = e.Desc.Item.Args
		}
	}
	out := guarantee.Report{Guarantee: g.Name(), Formula: g.Formula(), Holds: true}
	for _, args := range keys {
		exprArgs := make([]rule.Expr, len(args))
		for i, a := range args {
			exprArgs[i] = rule.Lit{V: a}
		}
		pred := rule.Binary{Op: "=",
			L: rule.ItemRef{Base: g.Src, Args: exprArgs},
			R: rule.ItemRef{Base: g.Dst, Args: exprArgs},
		}
		rep := guarantee.Periodic{
			Label: g.Name(), Pred: pred, From: g.From, To: g.To,
		}.Check(tr)
		out.Checked += rep.Checked
		if !rep.Holds {
			out.Holds = false
			out.Violations = append(out.Violations, rep.Violations...)
		}
	}
	return out
}

// Start schedules the daily batch, aligned to the next occurrence of the
// configured time of day.
func (b *Batcher) Start() {
	now := b.clock.Now()
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, now.Location())
	next := midnight.Add(b.at)
	for !next.After(now) {
		next = next.Add(24 * time.Hour)
	}
	b.timer = b.clock.AfterFunc(next.Sub(now), b.tick)
}

func (b *Batcher) tick() {
	b.RunOnce()
	b.timer = b.clock.AfterFunc(24*time.Hour, b.tick)
}

// Stop cancels the schedule.
func (b *Batcher) Stop() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
}

// RunOnce performs one batch copy.
func (b *Batcher) RunOnce() {
	b.runs++
	items, err := b.src.List(b.srcBase)
	if err != nil {
		return
	}
	for _, it := range items {
		v, exists, err := b.src.Read(it)
		if err != nil {
			return
		}
		if !exists {
			continue
		}
		b.sh.RequestWrite(data.ItemName{Base: b.dstBase, Args: it.Args}, v)
		b.copied++
	}
}

// Stats reports batches run and values copied.
func (b *Batcher) Stats() (runs, copied int) { return b.runs, b.copied }
