package strategy

import (
	"testing"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/rid"
	"cmtk/internal/ris"
	"cmtk/internal/ris/relstore"
	"cmtk/internal/rule"
	"cmtk/internal/shell"
	"cmtk/internal/trace"
	"cmtk/internal/translator"
	"cmtk/internal/transport"
	"cmtk/internal/vclock"
)

func TestNotifyPropagationRules(t *testing.T) {
	ch := NotifyPropagation(Copy{X: "salary1", Y: "salary2", Arity: 1}, Options{Delta: 5 * time.Second})
	if len(ch.Rules) != 1 {
		t.Fatalf("rules = %v", ch.Rules)
	}
	want := "prop:salary1:salary2: N(salary1(n1), b) ->5s WR(salary2(n1), b)"
	if got := ch.Rules[0].String(); got != want {
		t.Fatalf("rule = %q, want %q", got, want)
	}
	if len(ch.Guarantees) != 5 {
		t.Fatalf("guarantees = %d", len(ch.Guarantees))
	}
	if err := ch.Rules[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCachedPropagationRules(t *testing.T) {
	ch := CachedPropagation(Copy{X: "salary1", Y: "salary2", Arity: 1}, "B", Options{})
	if ch.Private["cache_salary2"] != "B" {
		t.Fatalf("private = %v", ch.Private)
	}
	r := ch.Rules[0]
	if len(r.Steps) != 2 || r.Steps[0].Cond == nil || r.Steps[1].Cond != nil {
		t.Fatalf("steps = %v", r.Steps)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPollingRules(t *testing.T) {
	keys := []data.Value{data.NewString("e1"), data.NewString("e2")}
	ch, err := Polling(Copy{X: "salary1", Y: "salary2", Arity: 1}, Options{PollPeriod: 60 * time.Second, PollKeys: keys})
	if err != nil {
		t.Fatal(err)
	}
	// Two poll rules plus one forward rule.
	if len(ch.Rules) != 3 {
		t.Fatalf("rules = %v", ch.Rules)
	}
	// Guarantee (2) must be absent under polling.
	for _, g := range ch.Guarantees {
		if _, isLeads := g.(guarantee.Leads); isLeads {
			t.Fatal("polling claims the leads guarantee")
		}
	}
	if _, err := Polling(Copy{X: "x", Y: "y", Arity: 1}, Options{}); err == nil {
		t.Fatal("polling without keys accepted")
	}
	// Arity 0 needs no keys.
	ch0, err := Polling(Copy{X: "X", Y: "Y"}, Options{})
	if err != nil || len(ch0.Rules) != 2 {
		t.Fatalf("arity-0 polling = %v, %v", ch0.Rules, err)
	}
}

func TestMonitorRules(t *testing.T) {
	ch, err := Monitor(Copy{X: "X", Y: "Y"}, "M", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Rules) != 2 || len(ch.Private) != 4 {
		t.Fatalf("rules=%d private=%v", len(ch.Rules), ch.Private)
	}
	for _, r := range ch.Rules {
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
	}
	if _, err := Monitor(Copy{X: "X", Y: "Y", Arity: 1}, "M", Options{}); err == nil {
		t.Fatal("keyed monitor accepted")
	}
}

func TestSuggestCopy(t *testing.T) {
	c := Copy{X: "salary1", Y: "salary2", Arity: 1}
	o := Options{PollKeys: []data.Value{data.NewString("e1")}}
	// Notify + write: propagation strategies lead.
	got := SuggestCopy(c, ris.CapNotify, ris.CapWrite, "A", "B", o)
	if len(got) != 2 || got[0].Name != "notify-propagation" || got[1].Name != "cached-propagation" {
		t.Fatalf("suggestions = %v", names(got))
	}
	// Read-only source: polling only.
	got = SuggestCopy(c, ris.CapRead, ris.CapWrite, "A", "B", o)
	if len(got) != 1 || got[0].Name != "polling" {
		t.Fatalf("suggestions = %v", names(got))
	}
	// Notify both sides, no write anywhere: monitor (single items only).
	got = SuggestCopy(Copy{X: "X", Y: "Y"}, ris.CapNotify, ris.CapNotify, "A", "B", o)
	if len(got) != 1 || got[0].Name != "monitor" {
		t.Fatalf("suggestions = %v", names(got))
	}
	// Nothing applicable.
	got = SuggestCopy(c, ris.CapRead, ris.CapRead, "A", "B", o)
	if len(got) != 0 {
		t.Fatalf("suggestions = %v", names(got))
	}
}

func names(cs []Choice) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func TestMergeIntoSpec(t *testing.T) {
	spec, err := rule.ParseSpecString(`
site A
site B
item salary1 @ A
item salary2 @ B
`)
	if err != nil {
		t.Fatal(err)
	}
	ch := CachedPropagation(Copy{X: "salary1", Y: "salary2", Arity: 1}, "B", Options{})
	if err := Merge(spec, ch); err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 1 || spec.Private["cache_salary2"] != "B" {
		t.Fatalf("spec = %s", spec)
	}
	// Double merge collides on the private item.
	if err := Merge(spec, ch); err == nil {
		t.Fatal("double merge accepted")
	}
	// Private item at undeclared site fails.
	bad := Choice{Private: map[string]string{"z": "Nowhere"}}
	if err := Merge(spec, bad); err == nil {
		t.Fatal("undeclared site accepted")
	}
}

// monitorScenario drives the Section 6.3 monitor end to end on private
// items at one shell.
func TestMonitorScenarioEndToEnd(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site M
item X @ M
item Y @ M
`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Monitor(Copy{X: "X", Y: "Y"}, "M", Options{Delta: 2 * time.Second, Bound: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := Merge(spec, ch); err != nil {
		t.Fatal(err)
	}
	sh := shell.New("m", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("M", nil)
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	// The monitor consumes N events; without translators we inject them
	// through spontaneous writes followed by the shell's own notify step.
	// Simplest faithful driver: write the items and notify via rules —
	// here we inject N events by adding notify rules for private-less
	// items is overkill, so we call the monitor rules through Ws->N
	// emulation: record the writes and notifications directly.
	notify := func(base string, v int64, old data.Value) {
		item := data.Item(base)
		sh.Spontaneous(item, old, data.NewInt(v))
	}
	// Add notify rules so Ws events produce N events at the shell.
	_ = notify
	// Instead of hand-driving N, extend the spec: Ws(X,b) ->1s N(X,b).
	// (Declared up front in a fresh scenario below.)
	sh.Stop()

	spec2, err := rule.ParseSpecString(`
site M
item X @ M
item Y @ M
rule nx: Ws(X, b) ->1s N(X, b)
rule ny: Ws(Y, b) ->1s N(Y, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Merge(spec2, ch); err != nil {
		t.Fatal(err)
	}
	clk2 := vclock.NewVirtual(vclock.Epoch)
	tr2 := trace.New(nil)
	sh2 := shell.New("m", spec2, shell.Options{Clock: clk2, Trace: tr2})
	sh2.AddSite("M", nil)
	if err := sh2.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh2.Stop()

	x, y := data.Item("X"), data.Item("Y")
	sh2.Spontaneous(x, data.NullValue, data.NewInt(1))
	sh2.Spontaneous(y, data.NullValue, data.NewInt(1))
	clk2.Advance(5 * time.Second)
	flag, _ := sh2.ReadAux(data.Item("Flag_XY"))
	if !flag.Truthy() {
		t.Fatalf("Flag = %s after agreement", flag)
	}
	tb, ok := sh2.ReadAux(data.Item("Tb_XY"))
	if !ok {
		t.Fatal("Tb unset")
	}
	if _, ok := vclock.ValueTime(tb); !ok {
		t.Fatalf("Tb = %s not a time", tb)
	}
	// Divergence clears the flag.
	sh2.Spontaneous(x, data.NewInt(1), data.NewInt(2))
	clk2.Advance(5 * time.Second)
	flag, _ = sh2.ReadAux(data.Item("Flag_XY"))
	if flag.Truthy() {
		t.Fatal("Flag still set after divergence")
	}
	// Re-agreement sets it again with a fresh Tb.
	sh2.Spontaneous(y, data.NewInt(1), data.NewInt(2))
	clk2.Advance(5 * time.Second)
	flag, _ = sh2.ReadAux(data.Item("Flag_XY"))
	if !flag.Truthy() {
		t.Fatal("Flag not set after re-agreement")
	}
	// The monitor guarantee holds on the recorded trace.
	rep := ch.Guarantees[0].Check(tr2)
	if !rep.Holds {
		t.Fatalf("monitor guarantee: %v", rep.Violations)
	}
}

func TestSweeper(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)

	// Referencing DB: projects; target DB: salaries.
	projDB := relstore.New("projects")
	if _, err := projDB.Exec("CREATE TABLE projects (empid TEXT, proj TEXT, PRIMARY KEY (empid))"); err != nil {
		t.Fatal(err)
	}
	salDB := relstore.New("salaries")
	if _, err := salDB.Exec("CREATE TABLE salaries (empid TEXT, amount INT, PRIMARY KEY (empid))"); err != nil {
		t.Fatal(err)
	}
	projCfg, err := rid.ParseString(`
kind relstore
site P
item project
  type string
  read   SELECT proj FROM projects WHERE empid = $n
  write  UPDATE projects SET proj = $b WHERE empid = $n
  insert INSERT INTO projects (empid, proj) VALUES ($n, $b)
  delete DELETE FROM projects WHERE empid = $n
  list   SELECT empid FROM projects
`)
	if err != nil {
		t.Fatal(err)
	}
	salCfg, err := rid.ParseString(`
kind relstore
site S
item salary
  type int
  read   SELECT amount FROM salaries WHERE empid = $n
  list   SELECT empid FROM salaries
`)
	if err != nil {
		t.Fatal(err)
	}
	projT, err := translator.NewRel(projCfg, projDB, clk)
	if err != nil {
		t.Fatal(err)
	}
	salT, err := translator.NewRel(salCfg, salDB, clk)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := rule.ParseSpecString("site P\nsite S\nitem project @ P\nitem salary @ S\n")
	if err != nil {
		t.Fatal(err)
	}
	sh := shell.New("p", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("P", projT)
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	day := 24 * time.Hour
	sw := NewSweeper(sh, clk, day, projT, "project", salT, "salary")
	sw.Start()
	defer sw.Stop()

	// e1 has a salary record; e2 is an orphan.
	salDB.Exec("INSERT INTO salaries VALUES ('e1', 100)")
	projDB.Exec("INSERT INTO projects VALUES ('e1', 'apollo')")
	// Record the spontaneous insert of the orphan so the trace knows it.
	projDB.Exec("INSERT INTO projects VALUES ('e2', 'zeus')")
	sh.Spontaneous(data.Item("project", data.NewString("e1")), data.NullValue, data.NewString("apollo"))
	sh.Spontaneous(data.Item("project", data.NewString("e2")), data.NullValue, data.NewString("zeus"))
	sh.Spontaneous(data.Item("salary", data.NewString("e1")), data.NullValue, data.NewInt(100))

	clk.Advance(25 * time.Hour) // one sweep
	if n, _ := projDB.RowCount("projects"); n != 1 {
		t.Fatalf("projects rows = %d, want 1 (orphan deleted)", n)
	}
	sweeps, orphaned, deleted := sw.Stats()
	if sweeps != 1 || orphaned != 1 || deleted != 1 {
		t.Fatalf("stats = %d, %d, %d", sweeps, orphaned, deleted)
	}
	clk.Advance(time.Hour) // settle trace horizon past the deletion
	rep := sw.Guarantee(2 * time.Hour).Check(tr)
	if !rep.Holds {
		t.Fatalf("referential guarantee: %v", rep.Violations)
	}

	// Report-only mode counts without deleting.
	sw.ReportOnly = true
	projDB.Exec("INSERT INTO projects VALUES ('e3', 'hera')")
	sw.SweepNow()
	if n, _ := projDB.RowCount("projects"); n != 2 {
		t.Fatalf("report-only deleted rows: %d", n)
	}
}

func TestBatcherPeriodicGuarantee(t *testing.T) {
	clk := vclock.NewVirtual(vclock.Epoch) // midnight
	tr := trace.New(nil)
	srcDB := relstore.New("branch")
	srcDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))")
	dstDB := relstore.New("hq")
	dstDB.Exec("CREATE TABLE accts (id TEXT, bal INT, PRIMARY KEY (id))")
	srcCfg, _ := rid.ParseString(`
kind relstore
site BR
item bal1
  type int
  read   SELECT bal FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
	dstCfg, _ := rid.ParseString(`
kind relstore
site HQ
item bal2
  type int
  read   SELECT bal FROM accts WHERE id = $n
  write  UPDATE accts SET bal = $b WHERE id = $n
  insert INSERT INTO accts (id, bal) VALUES ($n, $b)
  delete DELETE FROM accts WHERE id = $n
  list   SELECT id FROM accts
`)
	srcT, _ := translator.NewRel(srcCfg, srcDB, clk)
	dstT, _ := translator.NewRel(dstCfg, dstDB, clk)
	spec, _ := rule.ParseSpecString("site BR\nsite HQ\nitem bal1 @ BR\nitem bal2 @ HQ\n")
	sh := shell.New("hq", spec, shell.Options{Clock: clk, Trace: tr})
	sh.AddSite("HQ", dstT)
	if err := sh.Start(); err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()

	b := NewBatcher(sh, clk, 17*time.Hour, srcT, "bal1", "bal2")
	b.Start()
	defer b.Stop()

	appWrite := func(id string, bal int64, old data.Value) {
		srcDB.Exec("UPDATE accts SET bal = " + data.NewInt(bal).String() + " WHERE id = '" + id + "'")
		if r, _ := srcDB.Exec("SELECT id FROM accts WHERE id = '" + id + "'"); len(r.Rows) == 0 {
			srcDB.Exec("INSERT INTO accts VALUES ('" + id + "', " + data.NewInt(bal).String() + ")")
		}
		sh.Spontaneous(data.Item("bal1", data.NewString(id)), old, data.NewInt(bal))
	}
	// Business-hours updates on day 1 (10:00, 14:00).
	clk.Advance(10 * time.Hour)
	appWrite("a1", 50, data.NullValue)
	clk.Advance(4 * time.Hour)
	appWrite("a1", 80, data.NewInt(50))
	// Batch at 17:00, then overnight quiet until 08:00 next day.
	clk.Advance(20 * time.Hour) // now day 2, 10:00
	if runs, copied := b.Stats(); runs != 1 || copied != 1 {
		t.Fatalf("batch stats = %d, %d", runs, copied)
	}
	res, _ := dstDB.Exec("SELECT bal FROM accts WHERE id = 'a1'")
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(data.NewInt(80)) {
		t.Fatalf("hq balance = %v", res.Rows)
	}
	// Day-2 business updates, then another batch.
	appWrite("a1", 95, data.NewInt(80))
	clk.Advance(24 * time.Hour)

	g := b.Guarantee(17*time.Hour+15*time.Minute, 8*time.Hour)
	rep := g.Check(tr)
	if !rep.Holds {
		t.Fatalf("periodic guarantee: %v", rep.Violations)
	}
	// Sanity: the same guarantee over business hours must fail (balances
	// diverge during the day).
	bad := PeriodicFamily{Src: "bal1", Dst: "bal2", From: 9 * time.Hour, To: 17 * time.Hour}
	if rep := bad.Check(tr); rep.Holds {
		t.Fatal("daytime equality held unexpectedly")
	}
}

func TestArithmeticStrategyEndToEnd(t *testing.T) {
	// Section 7.1: X = Y + Z with Y, Z at remote sites.  The strategy
	// caches Y and Z at X's site and recomputes X locally.
	clk := vclock.NewVirtual(vclock.Epoch)
	tr := trace.New(nil)
	spec, err := rule.ParseSpecString(`
site SY
site SZ
site SX
item Y @ SY
item Z @ SZ
item X @ SX
rule ny: Ws(Y, b) ->1s N(Y, b)
rule nz: Ws(Z, b) ->1s N(Z, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Arithmetic("X", "Y", "Z", "+", "SX", Options{Delta: 2 * time.Second, Bound: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := Merge(spec, ch); err != nil {
		t.Fatal(err)
	}

	bus := transport.NewBus(clk, 100*time.Millisecond)
	opts := shell.Options{Clock: clk, Trace: tr}
	shY := shell.New("sy", spec, opts)
	shY.AddSite("SY", nil)
	shZ := shell.New("sz", spec, opts)
	shZ.AddSite("SZ", nil)
	shX := shell.New("sx", spec, opts)
	shX.AddSite("SX", nil)
	for _, sh := range []*shell.Shell{shY, shZ, shX} {
		sh.Route("SY", "sy")
		sh.Route("SZ", "sz")
		sh.Route("SX", "sx")
		if err := sh.Attach(bus); err != nil {
			t.Fatal(err)
		}
		if err := sh.Start(); err != nil {
			t.Fatal(err)
		}
		defer sh.Stop()
	}

	y, z, x := data.Item("Y"), data.Item("Z"), data.Item("X")
	shY.Spontaneous(y, data.NullValue, data.NewInt(10))
	clk.Advance(time.Minute)
	// Only Y known: X not yet derivable, no write.
	if v, ok := shX.ReadAux(x); ok && !v.IsNull() {
		t.Fatalf("X set before both inputs known: %s", v)
	}
	shZ.Spontaneous(z, data.NullValue, data.NewInt(5))
	clk.Advance(time.Minute)
	if v, ok := shX.ReadAux(x); !ok || !v.Equal(data.NewInt(15)) {
		t.Fatalf("X = %s, %v; want 15", v, ok)
	}
	shY.Spontaneous(y, data.NewInt(10), data.NewInt(20))
	clk.Advance(time.Minute)
	if v, _ := shX.ReadAux(x); !v.Equal(data.NewInt(25)) {
		t.Fatalf("X = %s, want 25", v)
	}

	// The derived guarantee and full execution validity.
	rep := ch.Guarantees[0].Check(tr)
	if !rep.Holds || rep.Checked == 0 {
		t.Fatalf("derived guarantee: %+v", rep)
	}
	rules := append(spec.Rules, shY.ImplicitRules()...)
	rules = append(rules, shZ.ImplicitRules()...)
	rules = append(rules, shX.ImplicitRules()...)
	if vs := trace.NewChecker(rules).Check(tr); len(vs) != 0 {
		t.Fatalf("trace violations: %v\n%s", vs, tr)
	}
}

func TestArithmeticSubtractAndErrors(t *testing.T) {
	if _, err := Arithmetic("X", "Y", "Z", "*", "S", Options{}); err == nil {
		t.Fatal("multiplication accepted")
	}
	ch, err := Arithmetic("X", "Y", "Z", "-", "S", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ch.Rules {
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: %v", r.ID, err)
		}
	}
}

func TestDerivedLagDetectsViolation(t *testing.T) {
	// A trace where Y+Z settles but X never follows.
	tr := trace.New(nil)
	app := func(sec int, base string, v int64) {
		tr.Append(&event.Event{Time: vclock.Epoch.Add(time.Duration(sec) * time.Second),
			Site: "s", Desc: event.W(data.Item(base), data.NewInt(v))})
	}
	app(0, "Y", 1)
	app(1, "Z", 2)
	app(500, "Q", 0) // horizon
	g := DerivedLag{X: "X", Y: "Y", Z: "Z", Op: "+", Kappa: 10 * time.Second}
	if rep := g.Check(tr); rep.Holds {
		t.Fatal("missing derivation passed")
	}
	// And one where X does follow.
	app(501, "X", 3)
	tr2 := trace.New(nil)
	app2 := func(sec int, base string, v int64) {
		tr2.Append(&event.Event{Time: vclock.Epoch.Add(time.Duration(sec) * time.Second),
			Site: "s", Desc: event.W(data.Item(base), data.NewInt(v))})
	}
	app2(0, "Y", 1)
	app2(1, "Z", 2)
	app2(3, "X", 3)
	app2(500, "Q", 0)
	if rep := g.Check(tr2); !rep.Holds {
		t.Fatalf("correct derivation failed: %+v", rep)
	}
}
