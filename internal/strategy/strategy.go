// Package strategy provides the toolkit's library of proven constraint
// management strategies (Section 4.1: "a library of common interfaces and
// strategies ... selected from available menus of proven strategies"),
// and the suggestion engine that matches strategies to the interfaces the
// sites actually offer ("The CM then suggests strategies that are
// applicable to these interfaces, along with the associated guarantees").
//
// Rule-expressible strategies (update propagation, cached propagation,
// polling, monitoring) are generated as rule sets to merge into a
// strategy specification.  Strategies that need iteration over dynamic
// key sets (the Section 6.2 referential sweep, the Section 6.4 end-of-day
// batch) are provided as programmatic components driving a CM-Shell.
package strategy

import (
	"fmt"
	"time"

	"cmtk/internal/data"
	"cmtk/internal/event"
	"cmtk/internal/guarantee"
	"cmtk/internal/ris"
	"cmtk/internal/rule"
)

// Choice is one applicable strategy: the rules and private items to merge
// into the deployment's strategy specification, and the guarantees the
// paper proves for it (which the toolkit re-checks on recorded traces).
type Choice struct {
	Name        string
	Description string
	Rules       []rule.Rule
	Private     map[string]string // private item base -> hosting site
	Guarantees  []guarantee.Guarantee
	// Kappa is the end-to-end metric bound the strategy achieves, used in
	// the metric guarantees above.
	Kappa time.Duration
}

// Copy describes a copy constraint X = Y between item families: every
// item X(n) at X's site must equal Y(n) at Y's site, with X primary.
type Copy struct {
	X, Y string
	// Arity is the number of key arguments of the families (0 for single
	// items, 1 for salary1(n)-style families).
	Arity int
}

// params returns fresh parameter terms n1..nk for the copy's arity.
func (c Copy) params() []event.Term {
	out := make([]event.Term, c.Arity)
	for i := range out {
		out[i] = event.Param(fmt.Sprintf("n%d", i+1))
	}
	return out
}

// Options tunes strategy generation.
type Options struct {
	// Delta is the per-rule reaction bound; zero defaults to 5s.
	Delta time.Duration
	// PollPeriod is the polling interval for read-interface strategies;
	// zero defaults to 60s.
	PollPeriod time.Duration
	// PollKeys are the key values to poll (polling cannot discover keys by
	// itself; the deployment lists them at configuration time).  Ignored
	// for arity-0 constraints.
	PollKeys []data.Value
	// Bound is the end-to-end propagation bound used in metric guarantees;
	// zero derives 3×Delta (notify + engine + write hops).
	Bound time.Duration
}

func (o Options) delta() time.Duration {
	if o.Delta > 0 {
		return o.Delta
	}
	return 5 * time.Second
}

func (o Options) pollPeriod() time.Duration {
	if o.PollPeriod > 0 {
		return o.PollPeriod
	}
	return 60 * time.Second
}

func (o Options) bound() time.Duration {
	if o.Bound > 0 {
		return o.Bound
	}
	return 3 * o.delta()
}

// NotifyPropagation is the Section 4.2 strategy: forward every
// notification from X as a write request on Y.
//
//	N(X(n), b) →δ WR(Y(n), b)
//
// Requires a notify interface on X and a write interface on Y.  All of
// guarantees (1)–(4) hold (Section 4.2.3).
func NotifyPropagation(c Copy, o Options) Choice {
	ps := c.params()
	r := rule.Rule{
		ID:    fmt.Sprintf("prop:%s:%s", c.X, c.Y),
		LHS:   event.TN(event.ItemT(c.X, ps...), event.Param("b")),
		Delta: o.delta(),
		Steps: []rule.Step{{Eff: event.TWR(event.ItemT(c.Y, ps...), event.Param("b"))}},
	}
	k := o.bound()
	return Choice{
		Name:        "notify-propagation",
		Description: fmt.Sprintf("forward notifications from %s as write requests on %s", c.X, c.Y),
		Rules:       []rule.Rule{r},
		Guarantees: []guarantee.Guarantee{
			guarantee.Follows{X: c.X, Y: c.Y},
			guarantee.Leads{X: c.X, Y: c.Y, Settle: k},
			guarantee.StrictlyFollows{X: c.X, Y: c.Y},
			guarantee.MetricFollows{X: c.X, Y: c.Y, Kappa: k},
			guarantee.MetricLeads{X: c.X, Y: c.Y, Kappa: k},
		},
		Kappa: k,
	}
}

// CachedPropagation refines NotifyPropagation with a CM-private cache at
// Y's site so duplicate values are not re-written (footnote 3):
//
//	N(X(n), b) →δ (C(n) ≠ b)? WR(Y(n), b), W(C(n), b)
//
// The guarantees are those of NotifyPropagation; the gain is message and
// write traffic.
func CachedPropagation(c Copy, ySite string, o Options) Choice {
	ps := c.params()
	cache := "cache_" + c.Y
	guard := rule.Binary{Op: "!=",
		L: cacheRef(cache, c.Arity),
		R: rule.ParamRef{Name: "b"},
	}
	r := rule.Rule{
		ID:    fmt.Sprintf("cprop:%s:%s", c.X, c.Y),
		LHS:   event.TN(event.ItemT(c.X, ps...), event.Param("b")),
		Delta: o.delta(),
		Steps: []rule.Step{
			{Cond: guard, Eff: event.TWR(event.ItemT(c.Y, ps...), event.Param("b"))},
			{Eff: event.TW(event.ItemT(cache, ps...), event.Param("b"))},
		},
	}
	base := NotifyPropagation(c, o)
	return Choice{
		Name:        "cached-propagation",
		Description: fmt.Sprintf("forward notifications from %s to %s, suppressing unchanged values via a CM cache", c.X, c.Y),
		Rules:       []rule.Rule{r},
		Private:     map[string]string{cache: ySite},
		Guarantees:  base.Guarantees,
		Kappa:       base.Kappa,
	}
}

func cacheRef(base string, arity int) rule.Expr {
	args := make([]rule.Expr, arity)
	for i := range args {
		args[i] = rule.ParamRef{Name: fmt.Sprintf("n%d", i+1)}
	}
	return rule.ItemRef{Base: base, Args: args}
}

// Polling is the Section 4.2.3 fallback when X offers only a read
// interface:
//
//	P(p) →ε RR(X(k))      for each polled key k
//	R(X(n), b) →ε WR(Y(n), b)
//
// Guarantees (1), (3) and metric (4) hold; guarantee (2) does not — two
// updates inside one polling interval lose the earlier value.
func Polling(c Copy, o Options) (Choice, error) {
	eps := time.Second
	if o.Delta > 0 && o.Delta < eps {
		eps = o.Delta
	}
	var rules []rule.Rule
	if c.Arity == 0 {
		rules = append(rules, rule.Rule{
			ID:    fmt.Sprintf("poll:%s", c.X),
			LHS:   event.TP(o.pollPeriod()),
			Delta: eps,
			Steps: []rule.Step{{Eff: event.TRR(event.ItemT(c.X))}},
		})
	} else {
		if len(o.PollKeys) == 0 {
			return Choice{}, fmt.Errorf("strategy: polling a keyed family %s requires PollKeys", c.X)
		}
		if c.Arity != 1 {
			return Choice{}, fmt.Errorf("strategy: polling supports arity 0 or 1, got %d", c.Arity)
		}
		for i, k := range o.PollKeys {
			rules = append(rules, rule.Rule{
				ID:    fmt.Sprintf("poll:%s:%d", c.X, i),
				LHS:   event.TP(o.pollPeriod()),
				Delta: eps,
				Steps: []rule.Step{{Eff: event.TRR(event.ItemT(c.X, event.Lit(k)))}},
			})
		}
	}
	ps := c.params()
	rules = append(rules, rule.Rule{
		ID:    fmt.Sprintf("fwd:%s:%s", c.X, c.Y),
		LHS:   event.TR(event.ItemT(c.X, ps...), event.Param("b")),
		Delta: eps,
		Steps: []rule.Step{{Eff: event.TWR(event.ItemT(c.Y, ps...), event.Param("b"))}},
	})
	k := o.pollPeriod() + o.bound()
	return Choice{
		Name:        "polling",
		Description: fmt.Sprintf("poll %s every %s and forward values to %s", c.X, o.pollPeriod(), c.Y),
		Rules:       rules,
		Guarantees: []guarantee.Guarantee{
			guarantee.Follows{X: c.X, Y: c.Y},
			guarantee.StrictlyFollows{X: c.X, Y: c.Y},
			guarantee.MetricFollows{X: c.X, Y: c.Y, Kappa: k},
			// Note: Leads (guarantee 2) is deliberately absent.
		},
		Kappa: k,
	}, nil
}

// Monitor is the Section 6.3 strategy for when the CM can update neither
// side of X = Y: cache both sides' notifications at a monitoring site and
// maintain the auxiliary items Flag and Tb so that applications get
//
//	((Flag = true) ∧ (Tb = s))@t ⇒ (X = Y)@@[s, t−κ]
//
// Applies to single items (arity 0).  The private items are MX_, MY_
// (caches), Flag and Tb, hosted at monitorSite.
func Monitor(c Copy, monitorSite string, o Options) (Choice, error) {
	if c.Arity != 0 {
		return Choice{}, fmt.Errorf("strategy: monitor applies to single items, got arity %d", c.Arity)
	}
	cx, cy := "MX_"+c.X, "MY_"+c.Y
	flag, tb := "Flag_"+c.X+c.Y, "Tb_"+c.X+c.Y
	eq := rule.Binary{Op: "=", L: rule.ItemRef{Base: cx}, R: rule.ItemRef{Base: cy}}
	neq := rule.Binary{Op: "!=", L: rule.ItemRef{Base: cx}, R: rule.ItemRef{Base: cy}}
	eqAndDown := rule.Binary{Op: "&&", L: eq, R: rule.Unary{Op: '!', X: rule.ItemRef{Base: flag}}}
	mk := func(id, src, cache string) rule.Rule {
		return rule.Rule{
			ID:    id,
			LHS:   event.TN(event.ItemT(src), event.Param("b")),
			Delta: o.delta(),
			Steps: []rule.Step{
				{Eff: event.TW(event.ItemT(cache), event.Param("b"))},
				{Cond: neq, Eff: event.TW(event.ItemT(flag), event.Lit(data.NewBool(false)))},
				{Cond: eqAndDown, Eff: event.TW(event.ItemT(tb), event.Param("now"))},
				{Cond: eq, Eff: event.TW(event.ItemT(flag), event.Lit(data.NewBool(true)))},
			},
		}
	}
	k := o.bound()
	return Choice{
		Name:        "monitor",
		Description: fmt.Sprintf("monitor %s = %s via cached notifications; applications read Flag/Tb", c.X, c.Y),
		Rules: []rule.Rule{
			mk(fmt.Sprintf("monx:%s", c.X), c.X, cx),
			mk(fmt.Sprintf("mony:%s", c.Y), c.Y, cy),
		},
		Private: map[string]string{
			cx: monitorSite, cy: monitorSite, flag: monitorSite, tb: monitorSite,
		},
		Guarantees: []guarantee.Guarantee{
			guarantee.MonitorFlag{
				Flag: data.Item(flag), Tb: data.Item(tb),
				X: data.Item(c.X), Y: data.Item(c.Y),
				Kappa: k,
			},
		},
		Kappa: k,
	}, nil
}

// SuggestCopy enumerates the strategies applicable to a copy constraint
// given the capability each site's interface statements declare — the
// initialization-time dialogue of Section 4.1.  Strategies are ordered
// strongest first.
func SuggestCopy(c Copy, xCaps, yCaps ris.Capability, xSite, ySite string, o Options) []Choice {
	var out []Choice
	if xCaps.Has(ris.CapNotify) && yCaps.Has(ris.CapWrite) {
		out = append(out, NotifyPropagation(c, o))
		out = append(out, CachedPropagation(c, ySite, o))
	}
	if xCaps.Has(ris.CapRead) && yCaps.Has(ris.CapWrite) {
		if ch, err := Polling(c, o); err == nil {
			out = append(out, ch)
		}
	}
	if xCaps.Has(ris.CapNotify) && yCaps.Has(ris.CapNotify) && !yCaps.Has(ris.CapWrite) {
		if ch, err := Monitor(c, ySite, o); err == nil {
			out = append(out, ch)
		}
	}
	return out
}

// Merge folds a choice's rules and private items into a strategy spec.
func Merge(spec *rule.Spec, ch Choice) error {
	for base, site := range ch.Private {
		if !spec.HasSite(site) {
			return fmt.Errorf("strategy: private item %s needs undeclared site %s", base, site)
		}
		if _, dup := spec.Private[base]; dup {
			return fmt.Errorf("strategy: private item %s already declared", base)
		}
		spec.Private[base] = site
	}
	spec.Rules = append(spec.Rules, ch.Rules...)
	return spec.Validate()
}
