package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmtk/internal/analysis"
)

// writeFixture lays a tiny package on disk for loader tests.
func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirSkipsTestsAndParsesComments(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a.go", "package a\n\n//cmlint:allow demo(justified)\nvar X = 1\n")
	writeFixture(t, dir, "a_test.go", "package a\n\nvar Y = 2\n")
	pkg, err := analysis.LoadDir(dir, "", "", analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "a" || len(pkg.Files) != 1 {
		t.Fatalf("got pkg %q with %d files, want a with 1 (tests excluded)", pkg.Name, len(pkg.Files))
	}
}

func TestMalformedAllowIsReported(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a.go", "package a\n\n//cmlint:allow demo\nvar X = 1\n\n//cmlint:allow demo()\nvar Y = 2\n")
	pkg, err := analysis.LoadDir(dir, "", "", analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noop := &analysis.Analyzer{Name: "demo", Run: func(p *analysis.Pass) error { return nil }}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{noop}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing reason + empty reason): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("diagnostic attributed to %q, want allow", d.Analyzer)
		}
	}
}

func TestAllowSuppressesSameLineAndLineAbove(t *testing.T) {
	dir := t.TempDir()
	// An allow suppresses its own line and the next — trailing-comment
	// and standalone-comment placement respectively.  The blank line
	// after B keeps C outside both allows' reach.
	writeFixture(t, dir, "a.go", strings.Join([]string{
		"package a",
		"",
		"//cmlint:allow demo(above)",
		"var A = 1",
		"var B = 2 //cmlint:allow demo(same line)",
		"",
		"var C = 3",
		"",
	}, "\n"))
	pkg, err := analysis.LoadDir(dir, "", "", analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Report one diagnostic on every var declaration; only C's survives.
	probe := &analysis.Analyzer{Name: "demo", Run: func(p *analysis.Pass) error {
		for _, f := range p.Pkg.Files {
			for _, d := range f.Decls {
				p.Reportf(d.Pos(), "probe")
			}
		}
		return nil
	}}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Line != 7 {
		t.Fatalf("got %v, want exactly one surviving diagnostic on line 7", diags)
	}
}

func TestProseMentionOfAllowIsNotADirective(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a.go",
		"package a\n\n// This package documents cmlint:allow demo in prose.\nvar X = 1\n")
	pkg, err := analysis.LoadDir(dir, "", "", analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	probe := &analysis.Analyzer{Name: "demo", Run: func(p *analysis.Pass) error {
		for _, f := range p.Pkg.Files {
			for _, d := range f.Decls {
				p.Reportf(d.Pos(), "probe")
			}
		}
		return nil
	}}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe}, dir)
	if err != nil {
		t.Fatal(err)
	}
	// The prose mention neither suppresses the probe nor reports a
	// malformed directive.
	if len(diags) != 1 || diags[0].Analyzer != "demo" {
		t.Fatalf("got %v, want exactly the probe diagnostic", diags)
	}
}

func TestFindModuleResolvesRepoRoot(t *testing.T) {
	root, path, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "cmtk" {
		t.Fatalf("module path %q, want cmtk", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod", root)
	}
}

func TestLoadTreeCoversRepoPackages(t *testing.T) {
	root, _, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadTree(root, analysis.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"cmtk/internal/shell": true, "cmtk/internal/trace": true,
		"cmtk/internal/transport": true, "cmtk/internal/fleet": true,
		"cmtk/cmd/cmlint": true,
	}
	for _, p := range pkgs {
		delete(want, p.Path)
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("LoadTree descended into %s", p.Dir)
		}
	}
	if len(want) > 0 {
		t.Errorf("LoadTree missed packages: %v", want)
	}
}

func TestSelectorPathCollapsesIndexes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go",
		"package x\nfunc f() { p.parts[i].dataMu.Lock(); s.mu.Lock() }", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				got = append(got, analysis.SelectorPath(sel.X))
			}
		}
		return true
	})
	if len(got) != 2 || got[0] != "p.parts.dataMu" || got[1] != "s.mu" {
		t.Fatalf("SelectorPath got %v", got)
	}
}
